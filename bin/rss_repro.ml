(* Command-line driver: run ad-hoc simulations of the four systems with
   tunable workload parameters and print latency/consistency summaries.
   The paper's figures live in bench/main.exe; this tool is for exploration.

   Examples:
     rss_repro spanner --mode rss --theta 0.9 --duration 30
     rss_repro gryff --mode lin --conflict 0.25 --write-ratio 0.3
     rss_repro trace --protocol spanner-rss --trace-out run.json
     rss_repro check --demo fig4 *)

open Cmdliner

(* Shared --trace-out plumbing: when the flag is given, install a live
   span sink for the run and export it as Chrome trace_event JSON. *)
let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Record a structured span trace of the run and write it as \
           Chrome trace_event JSON (load in chrome://tracing or \
           ui.perfetto.dev). Tracing is passive: the traced run follows \
           the exact seeded schedule of an untraced one.")

let tracer_for = function
  | None -> Obs.Trace.disabled
  | Some _ -> Obs.Trace.create ()

(* Shared --check plumbing: pick how the run's history is verified. *)
let check_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("offline", `Offline); ("online", `Online); ("none", `No_check) ])
        `Offline
    & info [ "check" ] ~docv:"MODE"
        ~doc:
          "History verification: $(b,offline) buffers the run and checks \
           post-hoc, $(b,online) verifies incrementally as operations are \
           recorded (near-linear; use for long runs), $(b,none) skips \
           verification. Never affects the simulated schedule.")

let save_trace tracer = function
  | None -> ()
  | Some path ->
    Obs.Trace.save_chrome tracer ~path;
    Fmt.pr "trace: %d spans written to %s@." (Obs.Trace.n_spans tracer) path

(* Shared --batch-* plumbing: group commit / adaptive message batching on
   the run's simulated network. Off by default — an unbatched run is
   byte-identical to pre-batching builds. *)
let batch_us_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "batch-us" ] ~docv:"US"
        ~doc:
          "Enable link-level message batching: buffer messages per directed \
           site pair and flush each buffer as one envelope after $(docv) \
           microseconds (or earlier; see $(b,--batch-max) and \
           $(b,--batch-adaptive)). Replication appends and acks coalesced \
           into one envelope are the simulator's group commit. Off by \
           default; batch.* counters appear in the metrics table when any \
           envelope flushed.")

let batch_max_arg =
  Arg.(
    value & opt int 32
    & info [ "batch-max" ] ~docv:"N"
        ~doc:
          "Flush a link's buffer immediately once it holds $(docv) messages, \
           without waiting for the $(b,--batch-us) deadline (requires \
           $(b,--batch-us)).")

let batch_adaptive_arg =
  Arg.(
    value & flag
    & info [ "batch-adaptive" ]
        ~doc:
          "Adaptive flush policy: send immediately while the link is idle \
           and fall back to the $(b,--batch-us) deadline only under load \
           (requires $(b,--batch-us)).")

(* Shared --deadline-us plumbing: a client deadline on every operation.
   None (the default) keeps each driver's historical behavior. *)
let deadline_us_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-us" ] ~docv:"US"
        ~doc:
          "Put a client deadline of $(docv) microseconds on every \
           operation. Operations past their deadline abandon instead of \
           retrying forever; under the chaos subcommand this bounds how \
           long a client slot waits before retiring its session. Off by \
           default (the spanner driver still arms its 10 s failover \
           fallback when crash recovery is on).")

let deadline_us_of = function
  | Some d when d <= 0 ->
    Fmt.epr "error: --deadline-us must be positive@.";
    exit 1
  | d -> d

let batching_of ~batch_us ~batch_max ~batch_adaptive =
  match batch_us with
  | None ->
    if batch_adaptive then
      (Fmt.epr "error: --batch-adaptive requires --batch-us@."; exit 1);
    None
  | Some us ->
    if us <= 0 then (Fmt.epr "error: --batch-us must be positive@."; exit 1);
    if batch_max <= 0 then
      (Fmt.epr "error: --batch-max must be positive@."; exit 1);
    Some { Sim.Net.batch_us = us; batch_max; adaptive = batch_adaptive }

let spanner_cmd =
  let mode =
    Arg.(
      value
      & opt (enum [ ("strict", Spanner.Config.Strict); ("rss", Spanner.Config.Rss) ])
          Spanner.Config.Rss
      & info [ "mode" ] ~doc:"Consistency mode: strict or rss.")
  in
  let theta = Arg.(value & opt float 0.75 & info [ "theta" ] ~doc:"Zipfian skew.") in
  let duration =
    Arg.(value & opt float 30.0 & info [ "duration" ] ~doc:"Simulated seconds.")
  in
  let rate =
    Arg.(value & opt float 40.0 & info [ "rate" ] ~doc:"Session arrivals per second.")
  in
  let keys = Arg.(value & opt int 1_000_000 & info [ "keys" ] ~doc:"Keyspace size.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let reshard =
    Arg.(
      value
      & opt (some float) None
      & info [ "reshard" ] ~docv:"FRAC"
          ~doc:
            "Schedule one live key-range migration at $(docv) of the run \
             (e.g. 0.5 = halfway). The moved range defaults to the Zipfian-hot \
             eighth of the keyspace; see $(b,--reshard-range) and \
             $(b,--reshard-dst). Migration counters appear in the metrics \
             table as place.*.")
  in
  let reshard_range =
    Arg.(
      value
      & opt (some (pair ~sep:':' int int)) None
      & info [ "reshard-range" ] ~docv:"LO:HI"
          ~doc:
            "Key range [LO, HI) to migrate (requires $(b,--reshard); default \
             0:keys/8).")
  in
  let reshard_dst =
    Arg.(
      value & opt int 1
      & info [ "reshard-dst" ] ~docv:"SHARD"
          ~doc:"Destination shard for the migrated range (default 1).")
  in
  let reshard_no_fence =
    Arg.(
      value & flag
      & info [ "reshard-no-fence" ]
          ~doc:
            "Unsafe mutation control: skip the migration's fence, drain and \
             TrueTime barrier. Writes racing the snapshot are lost at the \
             destination; run with $(b,--check) online or offline to watch \
             the checker flag the stale reads.")
  in
  let export =
    Arg.(
      value
      & opt (some string) None
      & info [ "export" ] ~docv:"FILE"
          ~doc:"Save the run's transactional history as a trace (re-checkable \
                with the check-trace subcommand; keep runs small for the \
                search checkers).")
  in
  let run mode theta duration rate keys seed reshard reshard_range reshard_dst
      reshard_no_fence export trace_out check batch_us batch_max batch_adaptive
      deadline_us =
    if rate <= 0.0 then (Fmt.epr "error: --rate must be positive@."; exit 1);
    if theta < 0.0 then (Fmt.epr "error: --theta must be non-negative@."; exit 1);
    if duration <= 0.0 then (Fmt.epr "error: --duration must be positive@."; exit 1);
    if keys <= 0 then (Fmt.epr "error: --keys must be positive@."; exit 1);
    if seed < 0 then (Fmt.epr "error: --seed must be non-negative@."; exit 1);
    let reshard_specs =
      match reshard with
      | None ->
        if reshard_range <> None || reshard_no_fence then
          (Fmt.epr
             "error: --reshard-range/--reshard-no-fence require --reshard@.";
           exit 1);
        []
      | Some frac ->
        if frac <= 0.0 || frac >= 1.0 then
          (Fmt.epr "error: --reshard must be in (0, 1)@."; exit 1);
        let lo, hi =
          Option.value reshard_range ~default:(0, max 1 (keys / 8))
        in
        if lo < 0 || hi <= lo || hi > keys then
          (Fmt.epr "error: --reshard-range must satisfy 0 <= LO < HI <= keys@.";
           exit 1);
        if reshard_dst < 0 then
          (Fmt.epr "error: --reshard-dst must be non-negative@."; exit 1);
        [
          {
            Harness.rs_at = frac;
            rs_lo = lo;
            rs_hi = hi;
            rs_dst = reshard_dst;
            rs_no_fence = reshard_no_fence;
          };
        ]
    in
    let tracer = tracer_for trace_out in
    let env =
      Harness.Env.(
        default |> with_trace tracer |> with_check check
        |> with_reshard reshard_specs
        |> with_batching (batching_of ~batch_us ~batch_max ~batch_adaptive)
        |> with_deadline_us (deadline_us_of deadline_us))
    in
    let r =
      Harness.spanner_wan ~env ~mode ~theta ~n_keys:keys
        ~arrival_rate_per_sec:rate ~duration_s:duration ~seed ()
    in
    Harness.Run.print_latencies ~header:"latency (ms)" r;
    Harness.Run.print_metrics ~header:"spanner" r;
    (match r.Harness.Run.check with
    | Harness.Run.Pass ->
      Fmt.pr "history: verified (%s)@."
        (match mode with
        | Spanner.Config.Strict -> "strict serializability"
        | Spanner.Config.Rss -> "RSS")
    | Harness.Run.Fail m -> Fmt.pr "history: VIOLATION — %s@." m
    | Harness.Run.Unknown m -> Fmt.pr "history: verdict UNKNOWN — %s@." m);
    save_trace tracer trace_out;
    match export with
    | None -> ()
    | Some path ->
      let records =
        match r.Harness.Run.records with
        | Harness.Run.Spanner_txns a -> a
        | Harness.Run.Gryff_ops _ -> [||]
      in
      let txns =
        Array.to_list records
        |> List.mapi (fun i (w : Rss_core.Witness.txn) ->
               {
                 Rss_core.Txn_history.id = i;
                 proc = w.Rss_core.Witness.proc;
                 reads = w.Rss_core.Witness.reads;
                 writes = w.Rss_core.Witness.writes;
                 inv = w.Rss_core.Witness.inv;
                 resp =
                   (if w.Rss_core.Witness.resp = max_int then None
                    else Some w.Rss_core.Witness.resp);
               })
      in
      Rss_core.Trace.save ~path (Rss_core.Txn_history.make txns);
      Fmt.pr "trace: %d transactions written to %s@." (List.length txns) path
  in
  Cmd.v
    (Cmd.info "spanner" ~doc:"Simulate Spanner / Spanner-RSS on Retwis.")
    Term.(
      const run $ mode $ theta $ duration $ rate $ keys $ seed $ reshard
      $ reshard_range $ reshard_dst $ reshard_no_fence $ export
      $ trace_out_arg $ check_arg $ batch_us_arg $ batch_max_arg
      $ batch_adaptive_arg $ deadline_us_arg)

let gryff_cmd =
  let mode =
    Arg.(
      value
      & opt (enum [ ("lin", Gryff.Config.Lin); ("rsc", Gryff.Config.Rsc) ])
          Gryff.Config.Rsc
      & info [ "mode" ] ~doc:"Consistency mode: lin or rsc.")
  in
  let conflict =
    Arg.(value & opt float 0.1 & info [ "conflict" ] ~doc:"Conflict fraction.")
  in
  let write_ratio =
    Arg.(value & opt float 0.3 & info [ "write-ratio" ] ~doc:"Write fraction.")
  in
  let duration =
    Arg.(value & opt float 30.0 & info [ "duration" ] ~doc:"Simulated seconds.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let run mode conflict write_ratio duration seed trace_out check batch_us
      batch_max batch_adaptive deadline_us =
    if conflict < 0.0 || conflict > 1.0 then
      (Fmt.epr "error: --conflict must be in [0, 1]@."; exit 1);
    if write_ratio < 0.0 || write_ratio > 1.0 then
      (Fmt.epr "error: --write-ratio must be in [0, 1]@."; exit 1);
    if duration <= 0.0 then (Fmt.epr "error: --duration must be positive@."; exit 1);
    if seed < 0 then (Fmt.epr "error: --seed must be non-negative@."; exit 1);
    let tracer = tracer_for trace_out in
    let env =
      Harness.Env.(
        default |> with_trace tracer |> with_check check
        |> with_batching (batching_of ~batch_us ~batch_max ~batch_adaptive)
        |> with_deadline_us (deadline_us_of deadline_us))
    in
    let r =
      Harness.gryff_wan ~env ~mode ~conflict ~write_ratio ~n_keys:100_000
        ~duration_s:duration ~seed ()
    in
    Harness.Run.print_latencies ~header:"latency (ms)" r;
    Harness.Run.print_metrics ~header:"gryff" r;
    (match r.Harness.Run.check with
    | Harness.Run.Pass -> Fmt.pr "history: verified@."
    | Harness.Run.Fail m -> Fmt.pr "history: VIOLATION — %s@." m
    | Harness.Run.Unknown m -> Fmt.pr "history: verdict UNKNOWN — %s@." m);
    save_trace tracer trace_out
  in
  Cmd.v
    (Cmd.info "gryff" ~doc:"Simulate Gryff / Gryff-RSC on YCSB.")
    Term.(const run $ mode $ conflict $ write_ratio $ duration $ seed
          $ trace_out_arg $ check_arg $ batch_us_arg $ batch_max_arg
          $ batch_adaptive_arg $ deadline_us_arg)

let check_cmd =
  let demo =
    Arg.(
      value
      & opt (enum [ ("fig4", `Fig4); ("i2", `I2); ("fig9", `Fig9) ]) `Fig4
      & info [ "demo" ] ~doc:"Which paper execution to check: fig4, i2, or fig9.")
  in
  let run demo =
    let h =
      match demo with
      | `Fig4 ->
        Rss_core.Txn_history.make
          [
            Rss_core.Txn_history.rw ~id:0 ~proc:0 ~writes:[ ("a", 1); ("b", 2) ]
              ~inv:0 ~resp:100 ();
            Rss_core.Txn_history.ro ~id:1 ~proc:1
              ~reads:[ ("a", Some 1); ("b", Some 2) ]
              ~inv:10 ~resp:20 ();
            Rss_core.Txn_history.ro ~id:2 ~proc:2
              ~reads:[ ("a", None); ("b", None) ]
              ~inv:30 ~resp:40 ();
          ]
      | `I2 ->
        Rss_core.Txn_history.make ~msg_edges:[ (0, 1) ]
          [
            Rss_core.Txn_history.rw ~id:0 ~proc:0
              ~writes:[ ("photo", 7); ("album", 1) ]
              ~inv:0 ~resp:10 ();
            Rss_core.Txn_history.ro ~id:1 ~proc:1 ~reads:[ ("photo", None) ]
              ~inv:20 ~resp:30 ();
          ]
      | `Fig9 ->
        Rss_core.Txn_history.make
          [
            Rss_core.Txn_history.rw ~id:0 ~proc:0 ~writes:[ ("x1", 1) ] ~inv:0
              ~resp:10 ();
            Rss_core.Txn_history.rw ~id:1 ~proc:1 ~writes:[ ("x2", 1) ] ~inv:20
              ~resp:30 ();
            Rss_core.Txn_history.ro ~id:2 ~proc:2
              ~reads:[ ("x1", None); ("x2", Some 1) ]
              ~inv:5 ~resp:35 ();
          ]
    in
    Fmt.pr "%-22s %s@." "model" "verdict";
    List.iter
      (fun m ->
        let verdict =
          match Rss_core.Check_txn.check h m with
          | Rss_core.Check_txn.Sat order ->
            Fmt.str "satisfiable  (witness: %s)"
              (String.concat " < " (List.map string_of_int order))
          | Rss_core.Check_txn.Unsat -> "violated"
          | Rss_core.Check_txn.Unknown -> "unknown (budget)"
        in
        Fmt.pr "%-22s %s@." (Rss_core.Check_txn.model_name m) verdict)
      Rss_core.Check_txn.all_models
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Run the consistency checkers on paper executions.")
    Term.(const run $ demo)

let check_trace_cmd =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Trace file.")
  in
  let model =
    Arg.(
      value
      & opt
          (enum
             (List.map
                (fun m -> (Rss_core.Check_txn.model_name m, m))
                Rss_core.Check_txn.all_models))
          Rss_core.Check_txn.Rss
      & info [ "model" ] ~doc:"Consistency model to check against.")
  in
  let budget =
    Arg.(value & opt int 2_000_000 & info [ "budget" ] ~doc:"Search state budget.")
  in
  let run path model budget =
    match Rss_core.Trace.load ~path with
    | Error m ->
      Fmt.epr "error: %s@." m;
      exit 1
    | Ok h -> (
      Fmt.pr "%d transactions, %d message edges@."
        (Rss_core.Txn_history.n_txns h)
        (List.length h.Rss_core.Txn_history.msg_edges);
      match Rss_core.Check_txn.check ~max_states:budget h model with
      | Rss_core.Check_txn.Sat order ->
        Fmt.pr "%s: SATISFIED@.witness: %s@."
          (Rss_core.Check_txn.model_name model)
          (String.concat " < " (List.map string_of_int order))
      | Rss_core.Check_txn.Unsat ->
        Fmt.pr "%s: VIOLATED@." (Rss_core.Check_txn.model_name model);
        exit 2
      | Rss_core.Check_txn.Unknown ->
        Fmt.pr "%s: UNKNOWN (budget exhausted; raise --budget)@."
          (Rss_core.Check_txn.model_name model);
        exit 3)
  in
  Cmd.v
    (Cmd.info "check-trace"
       ~doc:"Check a saved transactional trace against a model.")
    Term.(const run $ path $ model $ budget)

let trace_cmd =
  let protocol =
    Arg.(
      value
      & opt
          (enum
             [
               ("spanner", `Spanner);
               ("spanner-rss", `Spanner_rss);
               ("gryff", `Gryff);
               ("gryff-rsc", `Gryff_rsc);
             ])
          `Spanner_rss
      & info [ "protocol" ]
          ~doc:"Protocol to trace: spanner, spanner-rss, gryff, or gryff-rsc.")
  in
  let duration =
    Arg.(value & opt float 2.0 & info [ "duration" ] ~doc:"Simulated seconds.")
  in
  let rate =
    Arg.(
      value & opt float 10.0
      & info [ "rate" ]
          ~doc:"Session arrivals per second (Spanner variants; Gryff runs \
                closed-loop clients).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let out =
    Arg.(
      value & opt string "trace.json"
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Chrome trace_event JSON output path (load in chrome://tracing \
                or ui.perfetto.dev).")
  in
  let binary_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "binary-out" ] ~docv:"FILE"
          ~doc:"Also write the compact binary span log (magic OBSB1).")
  in
  let run protocol duration rate seed out binary_out batch_us batch_max
      batch_adaptive =
    if duration <= 0.0 then (Fmt.epr "error: --duration must be positive@."; exit 1);
    if rate <= 0.0 then (Fmt.epr "error: --rate must be positive@."; exit 1);
    if seed < 0 then (Fmt.epr "error: --seed must be non-negative@."; exit 1);
    let tracer = Obs.Trace.create () in
    let env =
      Harness.Env.(
        default |> with_trace tracer
        |> with_batching (batching_of ~batch_us ~batch_max ~batch_adaptive))
    in
    let header, r =
      match protocol with
      | (`Spanner | `Spanner_rss) as p ->
        let mode =
          if p = `Spanner then Spanner.Config.Strict else Spanner.Config.Rss
        in
        ( (if p = `Spanner then "spanner" else "spanner-rss"),
          Harness.spanner_wan ~env ~mode ~theta:0.75 ~n_keys:100_000
            ~arrival_rate_per_sec:rate ~duration_s:duration ~seed () )
      | (`Gryff | `Gryff_rsc) as p ->
        let mode = if p = `Gryff then Gryff.Config.Lin else Gryff.Config.Rsc in
        ( (if p = `Gryff then "gryff" else "gryff-rsc"),
          Harness.gryff_wan ~env ~n_clients:4 ~mode ~conflict:0.1
            ~write_ratio:0.3 ~n_keys:100_000 ~duration_s:duration ~seed () )
    in
    Harness.Run.print_summary ~header r;
    Obs.Trace.save_chrome tracer ~path:out;
    Fmt.pr "trace: %d spans written to %s@." (Obs.Trace.n_spans tracer) out;
    (match binary_out with
    | None -> ()
    | Some path ->
      Obs.Trace.save_binary tracer ~path;
      Fmt.pr "trace: binary span log written to %s@." path);
    if not (Harness.Run.passed r) then exit 2
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a short traced simulation and export its span tree — client \
          operations decomposed into protocol phases and per-shard network \
          hops — as Chrome trace_event JSON.")
    Term.(
      const run $ protocol $ duration $ rate $ seed $ out $ binary_out
      $ batch_us_arg $ batch_max_arg $ batch_adaptive_arg)

let chaos_cmd =
  let protocol =
    Arg.(
      value
      & opt
          (enum
             (List.map
                (fun p -> (Chaos.Audit.protocol_name p, p))
                Chaos.Audit.protocols))
          Chaos.Audit.Spanner_rss
      & info [ "protocol" ]
          ~doc:"Protocol to audit: spanner, spanner-rss, gryff, or gryff-rsc.")
  in
  let nemesis =
    Arg.(
      value
      & opt (enum Chaos.Nemesis.presets) Chaos.Nemesis.Mixed
      & info [ "nemesis" ]
          ~doc:
            "Fault preset: partition-heal, link-loss, crash-recover, \
             latency-spike, eps-inflate, reorder-storm, mixed, leader-kill, \
             rolling-crash, reshard, hot-split, disk-tear, bit-rot, \
             torn-migration, or slow-node (gray failure: one site serves \
             slower and its links lag, no crash).")
  in
  let disk_fault_rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "disk-fault-rate" ] ~docv:"R"
          ~doc:
            "Scale storage-damage probabilities by R (0 disables). The disk \
             presets (disk-tear, bit-rot, torn-migration) default to their \
             tuned fault mix; any positive R arms disk faults under every \
             preset.")
  in
  let failover =
    Arg.(
      value & flag
      & info [ "failover" ]
          ~doc:
            "Arm crash recovery: shard-group view changes, client retries \
             and in-doubt 2PC resolution (Spanner), request retransmission \
             (Gryff). Implied by the leader-kill and rolling-crash presets.")
  in
  let duration =
    Arg.(value & opt float 20.0 & info [ "duration" ] ~doc:"Simulated seconds.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Workload seed.") in
  let nemesis_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "nemesis-seed" ]
          ~doc:"Fault-schedule seed (defaults to --seed). A run is \
                reproducible from (seed, nemesis-seed).")
  in
  let slots =
    Arg.(value & opt int 12 & info [ "slots" ] ~doc:"Concurrent client slots.")
  in
  let migrations =
    Arg.(
      value
      & opt (some int) None
      & info [ "migrations" ] ~docv:"N"
          ~doc:
            "Live key-range migrations to run during the audit (Spanner \
             variants only). Defaults to 2 for the reshard and hot-split \
             presets, 0 otherwise.")
  in
  let run protocol nemesis duration seed nemesis_seed slots migrations failover
      disk_fault_rate trace_out deadline_us =
    let deadline_us = deadline_us_of deadline_us in
    if duration <= 0.0 then (Fmt.epr "error: --duration must be positive@."; exit 1);
    if slots <= 0 then (Fmt.epr "error: --slots must be positive@."; exit 1);
    if seed < 0 then (Fmt.epr "error: --seed must be non-negative@."; exit 1);
    (match nemesis_seed with
    | Some n when n < 0 ->
      Fmt.epr "error: --nemesis-seed must be non-negative@.";
      exit 1
    | _ -> ());
    let n_migrations =
      match migrations with
      | Some n when n < 0 ->
        Fmt.epr "error: --migrations must be non-negative@.";
        exit 1
      | Some n -> n
      | None -> if Chaos.Nemesis.requires_reshard nemesis then 2 else 0
    in
    let failover = failover || Chaos.Nemesis.requires_failover nemesis in
    let nseed = Option.value nemesis_seed ~default:seed in
    let disk_faults =
      let scale r (s : Sim.Durable.Faults.spec) =
        let p x = min 1.0 (x *. r) in
        {
          s with
          Sim.Durable.Faults.tear_prob = p s.Sim.Durable.Faults.tear_prob;
          corrupt_prob = p s.Sim.Durable.Faults.corrupt_prob;
          stale_prob = p s.Sim.Durable.Faults.stale_prob;
          lost_int_prob = p s.Sim.Durable.Faults.lost_int_prob;
        }
      in
      let tuned = Chaos.Nemesis.disk_spec nemesis in
      match disk_fault_rate with
      | Some r when r < 0.0 ->
        Fmt.epr "error: --disk-fault-rate must be non-negative@.";
        exit 1
      | Some r when r = 0.0 -> None
      | Some r ->
        let base =
          match tuned with Some s -> s | None -> Sim.Durable.Faults.default_spec
        in
        Some (Chaos.Audit.default_disk_faults ~spec:(scale r base) ~seed:nseed ())
      | None -> (
        match tuned with
        | Some s -> Some (Chaos.Audit.default_disk_faults ~spec:s ~seed:nseed ())
        | None -> None)
    in
    let schedule =
      Chaos.Audit.nemesis_schedule protocol nemesis ~duration_s:duration
        ~seed:nseed
    in
    Fmt.pr "nemesis %s (seed %d):@." (Chaos.Nemesis.preset_name nemesis) nseed;
    List.iter
      (fun e -> Fmt.pr "  %a@." Chaos.Schedule.pp_event e)
      (List.stable_sort
         (fun a b -> compare a.Chaos.Schedule.at_us b.Chaos.Schedule.at_us)
         schedule);
    let tracer = tracer_for trace_out in
    let r =
      Chaos.Audit.run protocol ~tracer ~schedule ?disk_faults ~n_slots:slots
        ?timeout_us:deadline_us ~failover ~n_migrations ~duration_s:duration
        ~seed ()
    in
    Chaos.Audit.print_report r;
    save_trace tracer trace_out;
    match (r.Chaos.Audit.check, Chaos.Audit.liveness_ok r) with
    | Ok (), true ->
      if r.Chaos.Audit.unrepaired > 0 then begin
        Fmt.epr "error: %d members still quarantined at run end@."
          r.Chaos.Audit.unrepaired;
        exit 4
      end
    | Error _, _ -> exit 2
    | Ok (), false -> exit 3
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Audit a protocol under a nemesis fault schedule: inject faults, \
          collect the history, verify its consistency model and that \
          liveness resumes after heal.")
    Term.(
      const run $ protocol $ nemesis $ duration $ seed $ nemesis_seed $ slots
      $ migrations $ failover $ disk_fault_rate $ trace_out_arg
      $ deadline_us_arg)

let explore_cmd =
  let protocols =
    Arg.(
      value
      & opt_all
          (enum
             (List.map
                (fun p -> (Chaos.Audit.protocol_name p, p))
                Chaos.Audit.protocols))
          []
      & info [ "protocol" ]
          ~doc:
            "Protocol(s) to explore (repeatable). Defaults to all four \
             drivers.")
  in
  let presets =
    Arg.(
      value
      & opt_all (enum Chaos.Nemesis.presets) []
      & info [ "preset" ]
          ~doc:
            "Nemesis preset pool the search mutates over (repeatable). \
             Defaults to partition-heal, link-loss, reorder-storm, \
             leader-kill, asym-block and mixed — or asym-block alone under \
             $(b,--control).")
  in
  let budget =
    Arg.(
      value & opt int 0
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Total executions, shrink trials included (default 400; 1500 \
             under $(b,--control)).")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Directory where shrunk repros are serialized.")
  in
  let no_shrink =
    Arg.(
      value & flag
      & info [ "no-shrink" ]
          ~doc:"Report failures as found, without delta-debugging them.")
  in
  let shrink_budget =
    Arg.(
      value & opt int 400
      & info [ "shrink-budget" ] ~docv:"N"
          ~doc:"Max executions spent minimizing each failure.")
  in
  let search_seed =
    Arg.(
      value & opt int 1
      & info [ "search-seed" ]
          ~doc:
            "Seed of the search's own mutation stream. The whole \
             exploration is a pure function of (config, this seed).")
  in
  let max_failures =
    Arg.(
      value & opt int 3
      & info [ "max-failures" ] ~docv:"K"
          ~doc:"Stop after K distinct failures.")
  in
  let control =
    Arg.(
      value & flag
      & info [ "control" ]
          ~doc:
            "Hunt the seeded-bug control: Gryff-RSC clients with the RSC \
             dependency fence disabled (unsafe_no_deps), over the \
             asym-block preset. Exit 0 iff the planted violation is found \
             within budget.")
  in
  let replay =
    Arg.(
      value & opt_all file []
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay corpus file(s) instead of searching: re-execute each \
             repro and compare its verdict byte-for-byte against the \
             file's expected line (repeatable).")
  in
  let run protocols presets budget corpus no_shrink shrink_budget search_seed
      max_failures control replay =
    if replay <> [] then begin
      let bad = ref 0 in
      List.iter
        (fun path ->
          match Explore.Corpus.replay_file path with
          | Error m ->
            incr bad;
            Fmt.pr "%s: ERROR %s@." path m
          | Ok r ->
            if not r.Explore.Corpus.matches then incr bad;
            Fmt.pr "%s: %s@.  expected %s@.  got      %s@." path
              (if r.Explore.Corpus.matches then "MATCH" else "MISMATCH")
              r.Explore.Corpus.entry.Explore.Corpus.expected
              (Explore.Exec.verdict_string
                 r.Explore.Corpus.outcome.Explore.Exec.verdict))
        replay;
      exit (if !bad = 0 then 0 else 5)
    end;
    if budget < 0 then (Fmt.epr "error: --budget must be non-negative@."; exit 1);
    let d = Explore.Search.default_config () in
    let budget =
      if budget > 0 then budget else if control then 1_500 else 400
    in
    let cfg =
      {
        d with
        Explore.Search.protocols =
          (if protocols <> [] then protocols
           else if control then [ Chaos.Audit.Gryff_rsc ]
           else d.Explore.Search.protocols);
        presets =
          (if presets <> [] then presets
           else if control then [ Chaos.Nemesis.Asym_block ]
           else d.Explore.Search.presets @ [ Chaos.Nemesis.Asym_block ]);
        budget;
        search_seed;
        shrink = not no_shrink;
        shrink_budget;
        max_failures = (if control then 1 else max_failures);
        corpus_dir = corpus;
        base =
          (if control then fun p ->
             {
               (Explore.Exec.base p) with
               Explore.Exec.duration_ms = 2_500;
               timeout_ms = 600;
               n_slots = 10;
               n_keys = 2;
               conflict_pct = 100;
               write_pct = 28;
               unsafe = true;
             }
           else d.Explore.Search.base);
      }
    in
    let r = Explore.Search.run cfg in
    Fmt.pr "explored %d executions: %d coverage signatures (%d novel), %d \
            unknown verdicts, %d failure(s)@."
      r.Explore.Search.execs r.Explore.Search.signatures
      r.Explore.Search.novel r.Explore.Search.unknowns
      (List.length r.Explore.Search.failures);
    List.iter
      (fun (f : Explore.Search.failure) ->
        Fmt.pr "@.failure at execution %d:@.  %s@.  %s@."
          f.Explore.Search.found_at
          (Explore.Exec.describe f.Explore.Search.input)
          f.Explore.Search.verdict;
        if f.Explore.Search.shrunk <> f.Explore.Search.input then
          Fmt.pr "  shrunk (%d execs):@.  %s@.  %s@."
            f.Explore.Search.shrink_execs
            (Explore.Exec.describe f.Explore.Search.shrunk)
            f.Explore.Search.shrunk_verdict;
        match f.Explore.Search.corpus_file with
        | Some path -> Fmt.pr "  corpus: %s@." path
        | None -> ())
      r.Explore.Search.failures;
    if control then
      if r.Explore.Search.failures = [] then begin
        Fmt.epr "control: planted violation NOT found within budget@.";
        exit 1
      end
      else Fmt.pr "@.control: planted violation found and minimized@."
    else if r.Explore.Search.failures <> [] then exit 2
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Coverage-guided schedule exploration: mutate seeds, fault \
          presets, perturbation vectors and environment knobs, dedup by \
          coverage signature, delta-debug every consistency violation to a \
          minimal replayable repro.")
    Term.(
      const run $ protocols $ presets $ budget $ corpus $ no_shrink
      $ shrink_budget $ search_seed $ max_failures $ control $ replay)

let () =
  let doc = "RSS / RSC reproduction playground" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "rss_repro" ~doc)
          [ spanner_cmd; gryff_cmd; check_cmd; check_trace_cmd; trace_cmd;
            chaos_cmd; explore_cmd ]))
