(* A global counter service on Gryff-RSC, written in direct style with
   Sim.Fiber (OCaml 5 effects over the simulator): five clients — one per
   region — concurrently increment a shared counter with atomic rmws, read
   it with one-round reads, and reconcile at the end.

   Run with: dune exec examples/counter_fibers.exe *)

let () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make 99 in
  let cluster =
    Gryff.Cluster.create engine ~rng (Gryff.Config.wan5 ~mode:Gryff.Config.Rsc ())
  in
  let config = Gryff.Cluster.config cluster in
  let incr_fn = function None -> 1 | Some v -> v + 1 in
  let n_per_client = 4 in

  Fmt.pr "Five regions increment one counter %d times each (Gryff-RSC rmws).@.@."
    n_per_client;

  for site = 0 to 4 do
    Sim.Fiber.spawn (fun () ->
        let c = Gryff.Client.create cluster ~site in
        for i = 1 to n_per_client do
          let t0 = Sim.Engine.now engine in
          let r =
            Sim.Fiber.await (fun k -> Gryff.Client.rmw c ~key:0 ~f:incr_fn k)
          in
          Fmt.pr "[%6.1f ms] %s: incr #%d -> %d (%s, %.1f ms)@."
            (Sim.Engine.to_ms (Sim.Engine.now engine))
            (Gryff.Config.site_name config site)
            i r.Gryff.Protocol.m_value
            (if r.Gryff.Protocol.m_slow then "slow path" else "fast path")
            (Sim.Engine.to_ms (Sim.Engine.now engine - t0));
          (* Think a little so the runs interleave across regions. *)
          Sim.Fiber.sleep engine (20_000 * (site + 1))
        done)
  done;

  (* A reader fiber samples the counter while the increments fly. *)
  Sim.Fiber.spawn (fun () ->
      let c = Gryff.Client.create cluster ~site:2 in
      let last = ref (-1) in
      for _ = 1 to 6 do
        Sim.Fiber.sleep engine 400_000;
        let r = Sim.Fiber.await (fun k -> Gryff.Client.read c ~key:0 k) in
        let v = match r.Gryff.Protocol.r_value with None -> 0 | Some v -> v in
        Fmt.pr "[%6.1f ms] IR reader: counter = %d (%d round%s)%s@."
          (Sim.Engine.to_ms (Sim.Engine.now engine))
          v r.Gryff.Protocol.r_rounds
          (if r.Gryff.Protocol.r_rounds = 1 then "" else "s")
          (if v < !last then "  <- IMPOSSIBLE (session regression)" else "");
        last := max !last v
      done);

  Sim.Engine.run engine;

  Sim.Fiber.spawn (fun () ->
      let c = Gryff.Client.create cluster ~site:0 in
      let r =
        Sim.Fiber.await (fun k ->
            Gryff.Client.rmw c ~key:0 ~f:(fun v -> Option.value v ~default:0) k)
      in
      Fmt.pr "@.final count (via rmw): %d — expected %d@."
        (Option.value r.Gryff.Protocol.m_observed ~default:0)
        (5 * n_per_client));
  Sim.Engine.run engine;
  match Gryff.Cluster.check_history cluster with
  | Ok () -> Fmt.pr "history verified against RSC.@."
  | Error m -> Fmt.pr "HISTORY VIOLATION: %s@." m
