(* Composing multiple RSS services with libRSS (§4.1, Fig. 3).

   Two independent Spanner-RSS deployments ("users" and "billing") serve one
   application. Without fences, causally-related reads crossing service
   boundaries can each return stale state, forming the cycle the paper
   describes; libRSS inserts each service's real-time fence exactly when a
   process switches services, restoring a global RSS order.

   Run with: dune exec examples/composition.exe *)

let () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make 21 in
  let mk_cluster seed =
    Spanner.Cluster.create engine ~rng:(Sim.Rng.make seed)
      (Spanner.Config.wan3 ~mode:Spanner.Config.Rss ())
  in
  let users = mk_cluster 1 in
  let billing = mk_cluster 2 in
  ignore rng;

  (* One application process, with a libRSS registry managing its two
     client libraries. *)
  let p1_users = Spanner.Client.create users ~site:0 in
  let p1_billing = Spanner.Client.create billing ~site:0 in
  let lib = Rss_core.Librss.create () in
  Rss_core.Librss.register_service lib ~name:"users"
    ~fence:(fun k -> Spanner.Client.fence p1_users k);
  Rss_core.Librss.register_service lib ~name:"billing"
    ~fence:(fun k -> Spanner.Client.fence p1_billing k);

  let log fmt = Fmt.pr ("  [%6.1f ms] " ^^ fmt ^^ "@.") (Sim.Engine.to_ms (Sim.Engine.now engine)) in

  Fmt.pr "libRSS composition demo: two RSS services, one process.@.@.";

  (* Transaction 1 at "users": create an account. *)
  Rss_core.Librss.start_transaction lib ~name:"users" (fun () ->
      Spanner.Client.rw_kv p1_users ~read_keys:[] ~writes:[ (0, 500) ] (fun _ ->
          log "users:   wrote account record (no fence needed: first service)";
          (* Transaction 2 at "billing": libRSS must fence "users" first, so
             every other process's future reads see the account before any
             billing state that references it. *)
          Rss_core.Librss.start_transaction lib ~name:"billing" (fun () ->
              log "billing: starting txn — libRSS ran the users fence first";
              Spanner.Client.rw_kv p1_billing ~read_keys:[] ~writes:[ (0, 900) ]
                (fun _ ->
                  log "billing: wrote invoice";
                  (* Back to users: fence billing on the way. *)
                  Rss_core.Librss.start_transaction lib ~name:"users" (fun () ->
                      log "users:   back again — billing fence ran";
                      Spanner.Client.ro p1_users ~keys:[ 0 ] (fun ro ->
                          log "users:   read account -> %s"
                            (match ro.Spanner.Protocol.ro_reads with
                            | [ (_, Some v) ] -> string_of_int v
                            | _ -> "nil")))))));

  Sim.Engine.run engine;
  Fmt.pr "@.fences issued by libRSS: %d (one per service switch)@."
    (Rss_core.Librss.fences_issued lib);

  (* Why the fence matters: after the users fence completes, ANY process —
     even one with no causal connection — must observe the account. *)
  let engine2 = Sim.Engine.create () in
  let users2 =
    Spanner.Cluster.create engine2 ~rng:(Sim.Rng.make 3)
      (Spanner.Config.wan3 ~mode:Spanner.Config.Rss ())
  in
  let writer = Spanner.Client.create users2 ~site:0 in
  let stranger = Spanner.Client.create users2 ~site:2 in
  let observed = ref None in
  Spanner.Client.rw_kv writer ~read_keys:[] ~writes:[ (7, 77) ] (fun _ ->
      Spanner.Client.fence writer (fun () ->
          Spanner.Client.ro stranger ~keys:[ 7 ] (fun ro ->
              observed := Some ro.Spanner.Protocol.ro_reads)));
  Sim.Engine.run engine2;
  (match !observed with
  | Some [ (_, Some 77) ] ->
    Fmt.pr "post-fence guarantee holds: an unrelated process saw the write@."
  | Some _ | None -> Fmt.pr "UNEXPECTED: post-fence read missed the write@.");
  ()
