(* The paper's motivating photo-sharing application (§2.2) over three
   stores: strict-serializable Spanner, Spanner-RSS, and a PO-serializable
   store. Reproduces Table 1 empirically: which invariants hold, which
   anomalies occur.

   Run with: dune exec examples/photo_sharing.exe *)

type row = {
  name : string;
  tally : Photoapp.App.tally;
}

let run_store ~seeds ~rounds store_kind =
  let merged =
    {
      Photoapp.App.adds = 0;
      i1_checks = 0;
      i1_violations = 0;
      i2_checks = 0;
      i2_violations = 0;
      a2_trials = 0;
      a2_anomalies = 0;
      a3_trials = 0;
      a3_anomalies = 0;
      a3_window_us = 0;
    }
  in
  let name = ref "" in
  List.iter
    (fun seed ->
      let engine = Sim.Engine.create () in
      let rng = Sim.Rng.make seed in
      let store =
        match store_kind with
        | `Strict ->
          Photoapp.App.spanner_store
            (Spanner.Cluster.create engine ~rng:(Sim.Rng.split rng)
               (Spanner.Config.wan3 ~mode:Spanner.Config.Strict ()))
        | `Rss ->
          Photoapp.App.spanner_store
            (Spanner.Cluster.create engine ~rng:(Sim.Rng.split rng)
               (Spanner.Config.wan3 ~mode:Spanner.Config.Rss ()))
        | `Po ->
          Photoapp.App.po_store
            (Postore.Store.create engine ~rng:(Sim.Rng.split rng) ())
      in
      name := store.Photoapp.App.store_name;
      let t =
        Photoapp.App.run_scenarios engine ~rng ~store
          ~causality:Photoapp.App.No_causality ~users:4 ~rounds
          ~queue_rtt_us:2_000 ~call_latency_us:1_000
      in
      Sim.Engine.run ~max_events:50_000_000 engine;
      merged.Photoapp.App.adds <- merged.Photoapp.App.adds + t.Photoapp.App.adds;
      merged.i1_checks <- merged.i1_checks + t.Photoapp.App.i1_checks;
      merged.i1_violations <- merged.i1_violations + t.Photoapp.App.i1_violations;
      merged.i2_checks <- merged.i2_checks + t.Photoapp.App.i2_checks;
      merged.i2_violations <- merged.i2_violations + t.Photoapp.App.i2_violations;
      merged.a2_trials <- merged.a2_trials + t.Photoapp.App.a2_trials;
      merged.a2_anomalies <- merged.a2_anomalies + t.Photoapp.App.a2_anomalies;
      merged.a3_trials <- merged.a3_trials + t.Photoapp.App.a3_trials;
      merged.a3_anomalies <- merged.a3_anomalies + t.Photoapp.App.a3_anomalies;
      merged.a3_window_us <- merged.a3_window_us + t.Photoapp.App.a3_window_us)
    seeds;
  { name = !name; tally = merged }

let () =
  Fmt.pr "Photo-sharing app over three consistency models (Table 1).@.";
  Fmt.pr "Each cell is violations/checks (invariants) or anomalies/trials.@.@.";
  let seeds = [ 11; 12; 13; 14; 15; 16 ] in
  let rounds = 50 in
  let rows = List.map (run_store ~seeds ~rounds) [ `Strict; `Rss; `Po ] in
  Fmt.pr "  %-18s %10s %10s %12s %12s@." "store" "I1" "I2" "A2 (stale)" "A3 (relayed)";
  List.iter
    (fun { name; tally = t } ->
      Fmt.pr "  %-18s %6d/%-4d %6d/%-4d %7d/%-4d %7d/%-4d@." name
        t.Photoapp.App.i1_violations t.Photoapp.App.i1_checks
        t.Photoapp.App.i2_violations t.Photoapp.App.i2_checks
        t.Photoapp.App.a2_anomalies t.Photoapp.App.a2_trials
        t.Photoapp.App.a3_anomalies t.Photoapp.App.a3_trials)
    rows;
  Fmt.pr "@.Reading: strict serializability prevents everything; RSS keeps@.";
  Fmt.pr "every invariant and A2, allowing only brief A3 windows;@.";
  Fmt.pr "PO serializability breaks the cross-service invariant I2 and A2.@."
