(* Gryff-RSC walkthrough: one-round reads, the dependency tuple, rmws, and
   the real-time fence — against the paper's five-region deployment.

   Run with: dune exec examples/gryff_sessions.exe *)

let ms t = Fmt.str "%.1f ms" (Sim.Engine.to_ms t)

let () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make 13 in
  let cluster =
    Gryff.Cluster.create engine ~rng (Gryff.Config.wan5 ~mode:Gryff.Config.Rsc ())
  in
  Fmt.pr "Gryff-RSC on five regions (CA VA IR OR JP, Table 2 RTTs).@.@.";

  (* A counter service: writes initialize, rmws increment atomically. *)
  let tokyo = Gryff.Client.create cluster ~site:4 in
  let dublin = Gryff.Client.create cluster ~site:2 in

  let t0 = ref 0 in
  let stamp () =
    let d = Sim.Engine.now engine - !t0 in
    t0 := Sim.Engine.now engine;
    d
  in
  t0 := 0;
  Gryff.Client.write tokyo ~key:1 ~value:10 (fun w ->
      Fmt.pr "tokyo : write counter=10        %8s  cs=%a@." (ms (stamp ()))
        Gryff.Carstamp.pp w.Gryff.Protocol.w_cs;
      Gryff.Client.rmw tokyo ~key:1
        ~f:(fun v -> match v with None -> 1 | Some x -> x + 1)
        (fun m ->
          Fmt.pr "tokyo : rmw incr -> %d           %8s  cs=%a (consensus)@."
            m.Gryff.Protocol.m_value (ms (stamp ())) Gryff.Carstamp.pp
            m.Gryff.Protocol.m_cs;
          (* Dublin reads while Tokyo's next write is propagating: the read
             still takes one round; a dependency is recorded if the quorum
             disagreed. *)
          Gryff.Client.write tokyo ~key:1 ~value:50 (fun _ -> ());
          Sim.Engine.schedule engine ~after:150_000 (fun () ->
              let r0 = Sim.Engine.now engine in
              Gryff.Client.read dublin ~key:1 (fun r ->
                  Fmt.pr
                    "dublin: read -> %s        %8s  rounds=%d deps=%d@."
                    (match r.Gryff.Protocol.r_value with
                    | None -> "nil"
                    | Some v -> string_of_int v)
                    (ms (Sim.Engine.now engine - r0))
                    r.Gryff.Protocol.r_rounds
                    (List.length (Gryff.Client.deps dublin));
                  let f0 = Sim.Engine.now engine in
                  Gryff.Client.fence dublin (fun () ->
                      Fmt.pr
                        "dublin: fence (writes dep back) %8s  deps=%d@."
                        (ms (Sim.Engine.now engine - f0))
                        (List.length (Gryff.Client.deps dublin)))))));
  Sim.Engine.run engine;
  let s = Gryff.Cluster.stats cluster in
  Fmt.pr "@.stats: %d reads (%d with deferred write-back), %d writes, %d rmws (%d slow path)@."
    s.Gryff.Cluster.reads s.Gryff.Cluster.deps_created s.Gryff.Cluster.writes
    s.Gryff.Cluster.rmws s.Gryff.Cluster.rmw_slow;
  match Gryff.Cluster.check_history cluster with
  | Ok () -> Fmt.pr "history: verified against RSC (per-key carstamp witness)@."
  | Error m -> Fmt.pr "history: VIOLATION %s@." m
