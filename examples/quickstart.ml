(* Quickstart: bring up a simulated Spanner-RSS deployment (three shards
   across CA/VA/IR), run a few transactions, show the RSS-vs-strict
   difference on the paper's Fig. 4 scenario, and verify the run against
   the RSS witness checker.

   Run with: dune exec examples/quickstart.exe *)

let ms t = Fmt.str "%.1f ms" (Sim.Engine.to_ms t)

let run_mode mode =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make 7 in
  let cluster = Spanner.Cluster.create engine ~rng (Spanner.Config.wan3 ~mode ()) in
  let mode_name =
    match mode with Spanner.Config.Strict -> "Spanner (strict)" | Spanner.Config.Rss -> "Spanner-RSS"
  in
  Fmt.pr "== %s ==@." mode_name;

  (* A writer in California updates two keys that live on different shards. *)
  let writer = Spanner.Client.create cluster ~site:0 in
  let reader = Spanner.Client.create cluster ~site:1 in

  let t0 = Sim.Engine.now engine in
  Spanner.Client.rw_kv writer ~read_keys:[] ~writes:[ (0, 100); (1, 101) ]
    (fun res ->
      Fmt.pr "  writer: committed keys 0,1 at ts=%d after %s@."
        res.Spanner.Protocol.rw_commit_ts
        (ms (Sim.Engine.now engine - t0)));

  (* While that commit is in flight, a causally-unrelated reader in Virginia
     asks for the same keys (the Fig. 4 situation). *)
  Sim.Engine.schedule engine ~after:80_000 (fun () ->
      let t1 = Sim.Engine.now engine in
      Spanner.Client.ro reader ~keys:[ 0; 1 ] (fun ro ->
          let show (k, v) =
            Fmt.str "%d=%s" k (match v with None -> "nil" | Some v -> string_of_int v)
          in
          Fmt.pr "  reader: RO issued mid-commit returned {%s} after %s@."
            (String.concat "; " (List.map show ro.Spanner.Protocol.ro_reads))
            (ms (Sim.Engine.now engine - t1))));

  (* After everything settles the same session must see the writes. *)
  Sim.Engine.schedule engine ~after:600_000 (fun () ->
      let t2 = Sim.Engine.now engine in
      Spanner.Client.ro reader ~keys:[ 0; 1 ] (fun ro ->
          Fmt.pr "  reader: later RO sees %d values after %s@."
            (List.length
               (List.filter (fun (_, v) -> v <> None) ro.Spanner.Protocol.ro_reads))
            (ms (Sim.Engine.now engine - t2))));

  Sim.Engine.run engine;
  (match Spanner.Cluster.check_history cluster with
  | Ok () ->
    Fmt.pr "  history: %d transactions verified against the %s model@."
      (Array.length (Spanner.Cluster.records cluster))
      (match mode with Spanner.Config.Strict -> "strict-serializability" | _ -> "RSS")
  | Error m -> Fmt.pr "  history: VIOLATION %s@." m);
  Fmt.pr "@."

let () =
  Fmt.pr "RSS quickstart: the same scenario under both consistency models.@.";
  Fmt.pr "Watch the mid-commit read: strict blocks, RSS returns old values.@.@.";
  run_mode Spanner.Config.Rss;
  run_mode Spanner.Config.Strict
