(* Schedule-space exploration: the perturbation layer's byte-identity
   contract, coverage-signature stability, the shrinker on the seeded-bug
   control, corpus round trips (including the checked-in repros), the
   Env.resolve keyword shim, and Sim.Rpc retry determinism. *)

let check = Alcotest.check
let string = Alcotest.string
let bool = Alcotest.bool
let int = Alcotest.int
let qt = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Perturbation layer                                                  *)
(* ------------------------------------------------------------------ *)

let small_input =
  {
    (Explore.Exec.base Chaos.Audit.Gryff_rsc) with
    Explore.Exec.seed = 11;
    nemesis_seed = 7;
    duration_ms = 800;
  }

(* The reference: what Chaos.Audit.run produces with the explorer entirely
   out of the loop (no [prepare] hook installed at all). *)
let raw_digest (i : Explore.Exec.input) =
  let duration_s = float_of_int i.Explore.Exec.duration_ms /. 1_000.0 in
  let schedule =
    Chaos.Audit.nemesis_schedule i.Explore.Exec.protocol i.Explore.Exec.preset
      ~duration_s ~seed:i.Explore.Exec.nemesis_seed
  in
  let r =
    Chaos.Audit.run i.Explore.Exec.protocol ~schedule
      ~n_slots:i.Explore.Exec.n_slots ~n_keys:i.Explore.Exec.n_keys
      ~timeout_us:(i.Explore.Exec.timeout_ms * 1_000)
      ~conflict:(float_of_int i.Explore.Exec.conflict_pct /. 100.0)
      ~write_ratio:(float_of_int i.Explore.Exec.write_pct /. 100.0)
      ~failover:(Chaos.Nemesis.requires_failover i.Explore.Exec.preset)
      ~duration_s ~seed:i.Explore.Exec.seed ()
  in
  Digest.to_hex (Digest.string r.Chaos.Audit.trace)

let test_perturb_off_identity () =
  let reference = raw_digest small_input in
  let off = Explore.Exec.run small_input in
  check string "no-perturbation run is byte-identical to a raw audit run"
    reference off.Explore.Exec.trace_digest;
  (* Installing explicit all-zero vectors must also be invisible: the hooks
     fire but return 0 extra priority / 0 extra delay. *)
  let zeros =
    {
      small_input with
      Explore.Exec.perturb =
        { Explore.Perturb.tie = [| 0; 0; 0 |]; jitter_us = [| 0; 0 |] };
    }
  in
  let z = Explore.Exec.run zeros in
  check string "installed zero vectors are byte-identical too" reference
    z.Explore.Exec.trace_digest

let perturbed_input =
  {
    small_input with
    Explore.Exec.perturb =
      {
        Explore.Perturb.tie = [| 3; -5; 0; 7 |];
        jitter_us = [| 40_000; 0; 15_000 |];
      };
  }

let test_perturb_changes_and_replays () =
  let off = Explore.Exec.run small_input in
  let p1 = Explore.Exec.run perturbed_input in
  let p2 = Explore.Exec.run perturbed_input in
  check bool "a non-zero perturbation changes the schedule" true
    (not (String.equal p1.Explore.Exec.trace_digest off.Explore.Exec.trace_digest));
  check string "the perturbed schedule replays byte-identically"
    p1.Explore.Exec.trace_digest p2.Explore.Exec.trace_digest;
  check string "and its coverage signature is stable" p1.Explore.Exec.signature
    p2.Explore.Exec.signature

let test_perturb_string_round_trip () =
  let p =
    { Explore.Perturb.tie = [| 1; -64; 0; 9 |]; jitter_us = [| 0; 75_000; 3 |] }
  in
  let tie, jitter = Explore.Perturb.to_string p in
  (match Explore.Perturb.of_string ~tie ~jitter with
  | Ok q -> check bool "round trip" true (Explore.Perturb.equal p q)
  | Error m -> Alcotest.failf "round trip failed: %s" m);
  let tie0, jitter0 = Explore.Perturb.to_string Explore.Perturb.none in
  check string "empty tie prints as '-'" "-" tie0;
  check string "empty jitter prints as '-'" "-" jitter0;
  (match Explore.Perturb.of_string ~tie:"-" ~jitter:"-" with
  | Ok q -> check bool "'-' parses to none" true (Explore.Perturb.is_none q)
  | Error m -> Alcotest.failf "'-' failed to parse: %s" m);
  let n =
    Explore.Perturb.normalize
      { Explore.Perturb.tie = [| 900; 0; 0 |]; jitter_us = [| 1_000_000; 0 |] }
  in
  check int "tie clamped to max_tie" Explore.Perturb.max_tie n.Explore.Perturb.tie.(0);
  check int "jitter clamped to max_jitter_us" Explore.Perturb.max_jitter_us
    n.Explore.Perturb.jitter_us.(0);
  check int "trailing zeros trimmed" 1 (Array.length n.Explore.Perturb.tie)

let test_signature_stable () =
  let o1 = Explore.Exec.run small_input in
  let o2 = Explore.Exec.run small_input in
  let o3 = Explore.Exec.run small_input in
  check string "signature repeat 1" o1.Explore.Exec.signature
    o2.Explore.Exec.signature;
  check string "signature repeat 2" o1.Explore.Exec.signature
    o3.Explore.Exec.signature

(* ------------------------------------------------------------------ *)
(* Corpus: the checked-in repros must replay byte-for-byte             *)
(* ------------------------------------------------------------------ *)

(* Staged by the test stanza's deps. [dune runtest] runs the binary in
   test/ (so the staged copy is at ../corpus); [dune exec] from the
   project root sees the source tree's corpus/ directly. *)
let corpus_dir =
  if Sys.file_exists "corpus" && Sys.is_directory "corpus" then "corpus"
  else Filename.concat ".." "corpus"

let corpus_files () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".corpus")
  |> List.sort compare
  |> List.map (Filename.concat corpus_dir)

let test_corpus_replays () =
  let files = corpus_files () in
  check bool "at least three checked-in repros" true (List.length files >= 3);
  List.iter
    (fun path ->
      match Explore.Corpus.replay_file path with
      | Error m -> Alcotest.failf "%s: %s" path m
      | Ok r ->
        check bool (path ^ " replays to its expected verdict") true
          r.Explore.Corpus.matches;
        (* Determinism: a second replay reproduces the same verdict string
           byte-for-byte, not merely the same verdict class. *)
        let again = Explore.Corpus.replay r.Explore.Corpus.entry in
        check string (path ^ " replays deterministically")
          (Explore.Exec.verdict_string
             r.Explore.Corpus.outcome.Explore.Exec.verdict)
          (Explore.Exec.verdict_string
             again.Explore.Corpus.outcome.Explore.Exec.verdict))
    (corpus_files ())

(* The three verdict classes are all represented: the shrunk control
   (Fail), its safe twin (Pass) and its budget-starved twin (Unknown) —
   the Check_reg/Check_txn [satisfies = None] path round-trips through
   serialization like any other repro. *)
let test_corpus_covers_verdict_classes () =
  let expected_of path =
    match Explore.Corpus.load path with
    | Ok e -> e.Explore.Corpus.expected
    | Error m -> Alcotest.failf "%s: %s" path m
  in
  let expecteds = List.map expected_of (corpus_files ()) in
  let has prefix =
    List.exists
      (fun e ->
        String.length e >= String.length prefix
        && String.equal (String.sub e 0 (String.length prefix)) prefix)
      expecteds
  in
  check bool "a failing repro is checked in" true (has "fail:");
  check bool "a passing repro is checked in" true (has "pass");
  check bool "an unknown-verdict repro is checked in" true (has "unknown:")

let test_corpus_rejects_garbage () =
  (match Explore.Corpus.of_string "not-a-corpus\nprotocol gryff-rsc\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad header accepted");
  match Explore.Corpus.of_string "rss-explore/corpus/v1\nprotocol gryff-rsc\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing fields accepted"

(* ------------------------------------------------------------------ *)
(* Shrinker on the seeded-bug control                                  *)
(* ------------------------------------------------------------------ *)

let control_entry () =
  let failing =
    List.filter
      (fun path ->
        match Explore.Corpus.load path with
        | Ok e ->
          String.length e.Explore.Corpus.expected >= 5
          && String.equal (String.sub e.Explore.Corpus.expected 0 5) "fail:"
        | Error _ -> false)
      (corpus_files ())
  in
  match failing with
  | path :: _ -> (
    match Explore.Corpus.load path with
    | Ok e -> e
    | Error m -> Alcotest.failf "%s: %s" path m)
  | [] -> Alcotest.fail "no failing repro in corpus/"

let test_shrinker_minimal_still_failing () =
  let e = control_entry () in
  (* Inflate the repro a little so the shrinker has work to do. *)
  let inflated =
    {
      e.Explore.Corpus.input with
      Explore.Exec.n_slots = e.Explore.Corpus.input.Explore.Exec.n_slots;
      perturb =
        {
          e.Explore.Corpus.input.Explore.Exec.perturb with
          Explore.Perturb.tie = [| 0; 0; 0; 0 |];
        };
    }
  in
  let o = Explore.Exec.run inflated in
  check bool "inflated control still fails" true
    (Explore.Exec.is_fail o.Explore.Exec.verdict);
  let shrunk, verdict, execs =
    Explore.Search.shrink ~budget:150 inflated
      (Explore.Exec.verdict_string o.Explore.Exec.verdict)
  in
  check bool "shrunk repro still fails" true
    (String.length verdict >= 5 && String.equal (String.sub verdict 0 5) "fail:");
  check bool "shrinking never increases cost" true
    (Explore.Search.cost shrunk <= Explore.Search.cost inflated);
  check bool "all-zero tie padding was dropped" true
    (Array.length shrunk.Explore.Exec.perturb.Explore.Perturb.tie = 0);
  check bool "shrink spent executions" true (execs > 0);
  (* The minimized repro replays: the exact property the corpus relies on. *)
  let again = Explore.Exec.run shrunk in
  check string "shrunk repro replays to the same verdict" verdict
    (Explore.Exec.verdict_string again.Explore.Exec.verdict)

(* A small safe search is deterministic end to end and finds nothing. *)
let test_search_deterministic_and_clean () =
  let cfg =
    {
      (Explore.Search.default_config ()) with
      Explore.Search.protocols = [ Chaos.Audit.Gryff_rsc ];
      presets = [ Chaos.Nemesis.Asym_block ];
      budget = 25;
      search_seed = 42;
    }
  in
  let r1 = Explore.Search.run cfg in
  let r2 = Explore.Search.run cfg in
  check int "searches execute the full budget" 25 r1.Explore.Search.execs;
  check int "signature count is reproducible" r1.Explore.Search.signatures
    r2.Explore.Search.signatures;
  check int "novelty count is reproducible" r1.Explore.Search.novel
    r2.Explore.Search.novel;
  check int "safe configurations never fail" 0
    (List.length r1.Explore.Search.failures)

(* ------------------------------------------------------------------ *)
(* Satellite: Harness.Env.resolve keyword shim                         *)
(* ------------------------------------------------------------------ *)

(* Distinct per-field values so "which one won" is unambiguous. *)
let kw_chaos = Chaos.Schedule.[ at_s 0.5 (Crash [ 0 ]) ]
let env_chaos = Chaos.Schedule.[ at_s 0.25 Heal ]
let kw_trace = Obs.Trace.create ()
let env_trace = Obs.Trace.create ()
let kw_reshard =
  [ { Harness.rs_at = 0.5; rs_lo = 0; rs_hi = 10; rs_dst = 1; rs_no_fence = false } ]

let env_reshard =
  [ { Harness.rs_at = 0.75; rs_lo = 0; rs_hi = 5; rs_dst = 0; rs_no_fence = false } ]

let kw_disk () = Chaos.Audit.default_disk_faults ~seed:1 ()
let env_disk () = Chaos.Audit.default_disk_faults ~seed:2 ()

let test_env_resolve_keyword_wins () =
  let kw_disk = kw_disk () and env_disk = env_disk () in
  let env =
    Harness.Env.default
    |> Harness.Env.with_chaos env_chaos
    |> Harness.Env.with_disk_faults env_disk
    |> Harness.Env.with_failover false
    |> Harness.Env.with_trace env_trace
    |> Harness.Env.with_check `No_check
    |> Harness.Env.with_reshard env_reshard
    |> Harness.Env.with_batching
         (Some { Sim.Net.batch_us = 40; batch_max = 8; adaptive = false })
  in
  (* All 2^6 combinations of supplying / omitting each legacy keyword. *)
  for mask = 0 to 63 do
    let on bit = mask land (1 lsl bit) <> 0 in
    let r =
      Harness.Env.resolve ~env
        ?chaos:(if on 0 then Some kw_chaos else None)
        ?disk_faults:(if on 1 then Some kw_disk else None)
        ?failover:(if on 2 then Some true else None)
        ?trace:(if on 3 then Some kw_trace else None)
        ?check:(if on 4 then Some `Offline else None)
        ?reshard:(if on 5 then Some kw_reshard else None)
        ()
    in
    let ctx = Printf.sprintf "mask %d" mask in
    check bool (ctx ^ ": chaos") true
      (r.Harness.Env.chaos == Some (if on 0 then kw_chaos else env_chaos)
      || r.Harness.Env.chaos = Some (if on 0 then kw_chaos else env_chaos));
    check bool (ctx ^ ": disk_faults") true
      (match r.Harness.Env.disk_faults with
      | Some d -> d == (if on 1 then kw_disk else env_disk)
      | None -> false);
    check bool (ctx ^ ": failover") (on 2) r.Harness.Env.failover;
    check bool (ctx ^ ": trace") true
      (r.Harness.Env.trace == if on 3 then kw_trace else env_trace);
    check bool (ctx ^ ": check") true
      (r.Harness.Env.check = if on 4 then `Offline else `No_check);
    check bool (ctx ^ ": reshard") true
      (r.Harness.Env.reshard == if on 5 then kw_reshard else env_reshard);
    (* batching has no legacy keyword: always the env's. *)
    check bool (ctx ^ ": batching passes through") true
      (r.Harness.Env.batching = env.Harness.Env.batching)
  done;
  (* No env at all: keywords land on the defaults. *)
  let bare = Harness.Env.resolve ~failover:true () in
  check bool "bare resolve keeps defaults" true
    (bare.Harness.Env.chaos = None
    && bare.Harness.Env.failover
    && bare.Harness.Env.check = `Offline
    && bare.Harness.Env.batching = None)

(* The shim is not just structurally right — a driver run behaves
   identically whichever spelling picked the setting (golden equality
   between the two paths). *)
let test_env_resolve_digest_pinned () =
  let digest r =
    let b = Buffer.create 4096 in
    (match r.Harness.Run.records with
    | Harness.Run.Gryff_ops a ->
      Array.iter
        (fun (g : Gryff.Cluster.record) ->
          Buffer.add_string b
            (Printf.sprintf "p%d k%d i%d r%d\n" g.Gryff.Cluster.g_proc
               g.Gryff.Cluster.g_key g.Gryff.Cluster.g_inv
               g.Gryff.Cluster.g_resp))
        a
    | Harness.Run.Spanner_txns _ -> assert false);
    Buffer.add_string b (Printf.sprintf "d=%d" r.Harness.Run.duration_us);
    Digest.to_hex (Digest.string (Buffer.contents b))
  in
  let via_env =
    Harness.gryff_wan
      ~env:(Harness.Env.default |> Harness.Env.with_failover true)
      ~check:`No_check ~n_clients:4 ~mode:Gryff.Config.Rsc ~conflict:0.3
      ~write_ratio:0.4 ~n_keys:64 ~duration_s:0.6 ~seed:21 ()
  in
  let via_keyword =
    Harness.gryff_wan ~failover:true ~check:`No_check ~n_clients:4
      ~mode:Gryff.Config.Rsc ~conflict:0.3 ~write_ratio:0.4 ~n_keys:64
      ~duration_s:0.6 ~seed:21 ()
  in
  check string "builder and keyword spellings produce identical schedules"
    (digest via_env) (digest via_keyword)

(* ------------------------------------------------------------------ *)
(* Satellite: Sim.Rpc retry/backoff properties                         *)
(* ------------------------------------------------------------------ *)

(* Drive a call whose attempts never succeed and record when each attempt
   fires; [t_reply] optionally schedules a success for the first attempt. *)
let rpc_attempt_times ~seed ~timeout_us ~max_backoff_us ~max_attempts
    ~first_succeeds =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make seed in
  let rpc =
    Sim.Rpc.create engine ~rng ~timeout_us ~max_backoff_us ~max_attempts ()
  in
  let times = ref [] in
  let result = ref `Pending in
  Sim.Rpc.call rpc
    ~attempt:(fun ~attempt ~ok ->
      times := (attempt, Sim.Engine.now engine) :: !times;
      if first_succeeds && attempt = 1 then
        Sim.Engine.schedule engine ~after:1_000 (fun () -> ok ()))
    ~on_result:(fun r ->
      result := (match r with Some () -> `Ok | None -> `Exhausted));
  Sim.Engine.run engine;
  (List.rev !times, !result, rng)

let prop_rpc_no_draw_without_retry =
  QCheck.Test.make ~name:"rpc: first-attempt success draws no randomness"
    ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let _, result, rng =
        rpc_attempt_times ~seed ~timeout_us:50_000 ~max_backoff_us:400_000
          ~max_attempts:5 ~first_succeeds:true
      in
      (* The helper's stream must be untouched: it yields exactly what a
         fresh stream at the same seed yields. *)
      let fresh = Sim.Rng.make seed in
      result = `Ok
      && Sim.Rng.int rng 1_000_000 = Sim.Rng.int fresh 1_000_000
      && Sim.Rng.int rng 1_000_000 = Sim.Rng.int fresh 1_000_000)

let prop_rpc_backoff_capped =
  QCheck.Test.make
    ~name:"rpc: retry gaps follow the capped doubling backoff (+ <=25% jitter)"
    ~count:50
    QCheck.(triple (int_range 0 10_000) (int_range 10_000 200_000)
              (int_range 2 6))
    (fun (seed, timeout_us, max_attempts) ->
      let max_backoff_us = 4 * timeout_us in
      let times, result, _ =
        rpc_attempt_times ~seed ~timeout_us ~max_backoff_us ~max_attempts
          ~first_succeeds:false
      in
      result = `Exhausted
      && List.length times = max_attempts
      &&
      let rec gaps_ok = function
        | (n1, t1) :: ((_, t2) :: _ as rest) ->
          let backoff = min max_backoff_us (timeout_us lsl min (n1 - 1) 16) in
          let gap = t2 - t1 in
          (* Jitter is non-negative and strictly under backoff/4; the
             deadline itself never exceeds the cap. *)
          gap >= backoff
          && gap < backoff + max 1 (backoff / 4)
          && backoff <= max_backoff_us
          && gaps_ok rest
        | _ -> true
      in
      gaps_ok times)

let prop_rpc_schedule_deterministic =
  QCheck.Test.make ~name:"rpc: seeded retransmission schedule is deterministic"
    ~count:50
    QCheck.(pair (int_range 0 10_000) (int_range 2 6))
    (fun (seed, max_attempts) ->
      let run () =
        rpc_attempt_times ~seed ~timeout_us:30_000 ~max_backoff_us:200_000
          ~max_attempts ~first_succeeds:false
      in
      let t1, r1, _ = run () and t2, r2, _ = run () in
      r1 = `Exhausted && r2 = `Exhausted && t1 = t2)

let suites =
  [
    ( "explore.perturb",
      [
        Alcotest.test_case "perturbation off is byte-identical" `Quick
          test_perturb_off_identity;
        Alcotest.test_case "perturbation changes and replays" `Quick
          test_perturb_changes_and_replays;
        Alcotest.test_case "vector string round trip" `Quick
          test_perturb_string_round_trip;
        Alcotest.test_case "coverage signature is stable" `Quick
          test_signature_stable;
      ] );
    ( "explore.corpus",
      [
        Alcotest.test_case "checked-in repros replay byte-for-byte" `Quick
          test_corpus_replays;
        Alcotest.test_case "all verdict classes are covered" `Quick
          test_corpus_covers_verdict_classes;
        Alcotest.test_case "bad corpus files are rejected" `Quick
          test_corpus_rejects_garbage;
      ] );
    ( "explore.search",
      [
        Alcotest.test_case "shrinker keeps the control failing" `Quick
          test_shrinker_minimal_still_failing;
        Alcotest.test_case "safe search is deterministic and clean" `Quick
          test_search_deterministic_and_clean;
      ] );
    ( "explore.env",
      [
        Alcotest.test_case "resolve: keyword wins for all 64 combinations"
          `Quick test_env_resolve_keyword_wins;
        Alcotest.test_case "resolve: spellings produce identical schedules"
          `Quick test_env_resolve_digest_pinned;
      ] );
    ( "explore.rpc",
      [
        qt prop_rpc_no_draw_without_retry;
        qt prop_rpc_backoff_capped;
        qt prop_rpc_schedule_deterministic;
      ] );
  ]
