(* Observability layer tests: the span tracer's determinism and passivity
   contracts, parent links across network hops and RPC retransmissions,
   the metrics registry, engine profiling, and the export formats (Chrome
   trace_event JSON, compact binary log) — ending with the PR's acceptance
   criterion: a traced Spanner-RSS WAN run whose RO spans decompose into
   per-shard network-hop children consistent with the client latency. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Tracer core                                                         *)
(* ------------------------------------------------------------------ *)

let test_disabled_sink () =
  let tr = Obs.Trace.disabled in
  check bool "disabled" false (Obs.Trace.enabled tr);
  let sp = Obs.Trace.begin_span tr ~kind:Obs.Trace.Mark ~name:"x" ~ts:0 in
  check int "begin_span returns none" Obs.Trace.none sp;
  Obs.Trace.end_span tr sp ~ts:1;
  Obs.Trace.instant tr ~name:"y" ~ts:2;
  check int "nothing recorded" 0 (Obs.Trace.n_spans tr);
  let ran = ref false in
  Obs.Trace.with_current tr 42 (fun () -> ran := true);
  check bool "with_current still runs the thunk" true !ran;
  check int "current stays none" Obs.Trace.none (Obs.Trace.current tr)

let test_span_tree () =
  let tr = Obs.Trace.create () in
  let root = Obs.Trace.begin_span tr ~kind:Obs.Trace.Client_op ~name:"op" ~ts:10 in
  check int "ids start at 1" 1 root;
  let child =
    Obs.Trace.with_current tr root (fun () ->
        Obs.Trace.begin_span tr ~kind:Obs.Trace.Net_hop ~site:2 ~name:"hop" ~ts:20)
  in
  Obs.Trace.instant ~parent:child tr ~kind:Obs.Trace.Fault ~name:"mark" ~ts:25;
  Obs.Trace.end_span tr child ~ts:30;
  Obs.Trace.end_span tr root ~ts:40;
  let spans = Obs.Trace.spans tr in
  check int "three records" 3 (Array.length spans);
  let s1 = spans.(0) and s2 = spans.(1) and s3 = spans.(2) in
  check int "root has no parent" 0 s1.Obs.Trace.parent;
  check int "ambient parent link" root s2.Obs.Trace.parent;
  check int "explicit parent link" child s3.Obs.Trace.parent;
  check int "site recorded" 2 s2.Obs.Trace.site;
  check bool "instant flagged" true s3.Obs.Trace.is_instant;
  check int "durations" 20 (s2.Obs.Trace.end_ts - s2.Obs.Trace.start_ts + 10)

let test_binary_round_trip () =
  let tr = Obs.Trace.create () in
  let a = Obs.Trace.begin_span tr ~kind:Obs.Trace.Phase ~site:1 ~name:"2pc.prepare" ~ts:5 in
  Obs.Trace.instant ~parent:a tr ~name:"rpc.retry" ~ts:7;
  Obs.Trace.end_span tr a ~ts:12;
  ignore (Obs.Trace.begin_span tr ~kind:Obs.Trace.View_change ~name:"vc" ~ts:9);
  let path = Filename.temp_file "obs" ".bin" in
  Obs.Trace.save_binary tr ~path;
  (match Obs.Trace.load_binary ~path with
  | Error m -> Alcotest.failf "load_binary: %s" m
  | Ok infos ->
    check int "span count survives" (Obs.Trace.n_spans tr) (Array.length infos);
    check bool "records identical" true (infos = Obs.Trace.spans tr));
  Sys.remove path

let test_binary_rejects_garbage () =
  let path = Filename.temp_file "obs" ".bin" in
  let oc = open_out_bin path in
  output_string oc "not a span log";
  close_out oc;
  (match Obs.Trace.load_binary ~path with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  Sys.remove path

let test_chrome_json_parses () =
  let tr = Obs.Trace.create () in
  let a = Obs.Trace.begin_span tr ~kind:Obs.Trace.Client_op ~site:0 ~name:"op" ~ts:0 in
  Obs.Trace.with_current tr a (fun () ->
      let h = Obs.Trace.begin_span tr ~kind:Obs.Trace.Net_hop ~site:1 ~name:"net 0->1" ~ts:3 in
      Obs.Trace.end_span tr h ~ts:9);
  Obs.Trace.end_span tr a ~ts:11;
  Obs.Trace.instant tr ~name:"note \"quoted\"\n" ~ts:12;
  let json = Obs.Trace.to_chrome_json tr in
  match Obs.Json.parse json with
  | Error m -> Alcotest.failf "export does not parse: %s" m
  | Ok doc ->
    let events = Option.get (Obs.Json.to_arr doc) in
    check int "one event per span" 3 (List.length events);
    let names =
      List.filter_map
        (fun e -> Option.bind (Obs.Json.member "name" e) Obs.Json.to_str)
        events
    in
    check bool "escaped name survives" true (List.mem "note \"quoted\"\n" names);
    let hop =
      List.find
        (fun e -> Obs.Json.member "name" e |> Option.get |> Obs.Json.to_str
                  = Some "net 0->1")
        events
    in
    let num field e =
      Option.bind (Obs.Json.member field e) Obs.Json.to_num |> Option.get
    in
    check bool "ph is X" true
      (Obs.Json.member "ph" hop |> Option.get |> Obs.Json.to_str = Some "X");
    check int "ts in us" 3 (int_of_float (num "ts" hop));
    check int "dur in us" 6 (int_of_float (num "dur" hop));
    check int "tid is site" 1 (int_of_float (num "tid" hop));
    let args = Obs.Json.member "args" hop |> Option.get in
    check int "parent id exported" a
      (int_of_float (num "parent" args))

(* ------------------------------------------------------------------ *)
(* Parent links across the network and RPC retransmission              *)
(* ------------------------------------------------------------------ *)

let test_hop_parents_span_sends () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make 1 in
  let net =
    Sim.Net.create engine ~rng ~rtt_ms:[| [| 1.0; 10.0 |]; [| 10.0; 1.0 |] |] ()
  in
  let tr = Obs.Trace.create () in
  Sim.Net.set_tracer net tr;
  let op = Obs.Trace.begin_span tr ~kind:Obs.Trace.Client_op ~name:"op" ~ts:0 in
  Obs.Trace.with_current tr op (fun () ->
      Sim.Net.send net ~src:0 ~dst:1 (fun () ->
          (* Reply sent from inside the delivery handler: its hop must
             parent to the request hop that carried us here. *)
          Sim.Net.send net ~src:1 ~dst:0 (fun () -> ())));
  Sim.Engine.run engine;
  Obs.Trace.end_span tr op ~ts:(Sim.Engine.now engine);
  let spans = Obs.Trace.spans tr in
  let hops =
    Array.to_list spans
    |> List.filter (fun s -> s.Obs.Trace.kind = Obs.Trace.Net_hop)
  in
  check int "two hops" 2 (List.length hops);
  let req = List.nth hops 0 and rep = List.nth hops 1 in
  check int "request hop parents to the op" op req.Obs.Trace.parent;
  check int "reply hop parents to the request hop" req.Obs.Trace.id
    rep.Obs.Trace.parent;
  check int "hop tagged with destination site" 1 req.Obs.Trace.site

let test_rpc_retransmission_keeps_parent () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make 7 in
  let net =
    Sim.Net.create engine ~rng ~rtt_ms:[| [| 1.0; 10.0 |]; [| 10.0; 1.0 |] |] ()
  in
  let tr = Obs.Trace.create () in
  Sim.Net.set_tracer net tr;
  let rpc = Sim.Rpc.create engine ~rng ~timeout_us:50_000 ~max_attempts:5 () in
  Sim.Rpc.set_tracer rpc tr;
  (* First attempts vanish into a severed link; the link heals while the
     backoff timer is pending, so a retransmission — fired from the timer,
     where no ambient span exists — completes the call. *)
  Sim.Net.block_link net ~src:0 ~dst:1;
  Sim.Engine.schedule engine ~after:60_000 (fun () ->
      Sim.Net.unblock_link net ~src:0 ~dst:1);
  let got = ref None in
  Sim.Rpc.call ~name:"rpc.test" rpc
    ~attempt:(fun ~attempt:_ ~ok ->
      Sim.Net.send net ~src:0 ~dst:1 (fun () ->
          Sim.Net.send net ~src:1 ~dst:0 (fun () -> ok ())))
    ~on_result:(fun r -> got := r);
  Sim.Engine.run engine;
  check bool "retransmission succeeded" true (!got = Some ());
  check bool "at least one retry" true (Sim.Rpc.retries rpc >= 1);
  let spans = Array.to_list (Obs.Trace.spans tr) in
  let call_sp =
    List.find (fun s -> s.Obs.Trace.name = "rpc.test") spans
  in
  check bool "call span closed" true (call_sp.Obs.Trace.end_ts >= 60_000);
  let retry_marks =
    List.filter (fun s -> s.Obs.Trace.name = "rpc.retry") spans
  in
  check bool "retry instants recorded" true (retry_marks <> []);
  List.iter
    (fun s ->
      check int "retry parents to the call span" call_sp.Obs.Trace.id
        s.Obs.Trace.parent)
    retry_marks;
  (* The hop that finally carried the request left after the heal; its
     ancestry must still reach the rpc call span. *)
  let parent_of =
    let tbl = Hashtbl.create 16 in
    List.iter (fun s -> Hashtbl.add tbl s.Obs.Trace.id s.Obs.Trace.parent) spans;
    fun id -> Option.value (Hashtbl.find_opt tbl id) ~default:0
  in
  let rec reaches id target =
    id <> 0 && (id = target || reaches (parent_of id) target)
  in
  let late_hops =
    List.filter
      (fun s ->
        s.Obs.Trace.kind = Obs.Trace.Net_hop
        && (not s.Obs.Trace.is_instant)
        && s.Obs.Trace.start_ts >= 60_000)
      spans
  in
  check bool "a post-heal hop exists" true (late_hops <> []);
  List.iter
    (fun h ->
      check bool "post-heal hop links back to the rpc call" true
        (reaches h.Obs.Trace.parent call_sp.Obs.Trace.id))
    late_hops

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_metrics_registry () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg "ops" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  check int "counter accumulates" 5 (Obs.Metrics.value c);
  check bool "get-or-create aliases" true (Obs.Metrics.counter reg "ops" == c);
  let lc = Obs.Metrics.counter reg ~labels:[ ("site", "va") ] "ops" in
  Obs.Metrics.incr lc;
  Obs.Metrics.set_gauge reg "tps" 10.0;
  Obs.Metrics.max_gauge reg "peak" 3.0;
  Obs.Metrics.max_gauge reg "peak" 2.0;
  let h = Obs.Metrics.histogram reg "lat" in
  Stats.Recorder.add h 1000;
  let s = Obs.Metrics.snapshot reg in
  check int "label is part of identity" 1
    (Obs.Metrics.counter_value s "ops{site=va}");
  check int "plain name untouched" 5 (Obs.Metrics.counter_value s "ops");
  check int "absent counter is 0" 0 (Obs.Metrics.counter_value s "nope");
  check (Alcotest.float 0.0) "gauge" 10.0 (Obs.Metrics.gauge_value s "tps");
  check (Alcotest.float 0.0) "max gauge keeps max" 3.0
    (Obs.Metrics.gauge_value s "peak");
  check bool "absent gauge is nan" true
    (Float.is_nan (Obs.Metrics.gauge_value s "nope"));
  check bool "histogram registered" true
    (Obs.Metrics.histogram_of s "lat" <> None);
  check bool "counters sorted" true
    (let names = List.map fst s.Obs.Metrics.counters in
     names = List.sort compare names)

let test_print_table_empty_histogram () =
  (* Regression for the satellite fix: empty recorders in summary paths
     must print n/a, not raise Invalid_argument from Recorder.min. *)
  let reg = Obs.Metrics.create () in
  ignore (Obs.Metrics.histogram reg "empty");
  Obs.Metrics.set_gauge reg "p50_ms" Float.nan;
  Obs.Metrics.print_table ~header:"empty-run" (Obs.Metrics.snapshot reg);
  let r = Stats.Recorder.create () in
  check bool "min_opt on empty" true (Stats.Recorder.min_opt r = None);
  check bool "max_opt on empty" true (Stats.Recorder.max_opt r = None);
  check bool "percentile_opt on empty" true
    (Stats.Recorder.percentile_opt r 99.0 = None);
  check bool "percentile_ms_opt on empty" true
    (Stats.Recorder.percentile_ms_opt r 50.0 = None);
  Stats.Recorder.add r 2000;
  check bool "present once non-empty" true
    (Stats.Recorder.percentile_ms_opt r 50.0 = Some 2.0)

(* ------------------------------------------------------------------ *)
(* Engine profiling                                                    *)
(* ------------------------------------------------------------------ *)

let test_engine_profiling () =
  let engine = Sim.Engine.create () in
  check bool "off by default" false (Sim.Engine.profiling_enabled engine);
  Sim.Engine.enable_profiling ~sample_queue_every:1 engine;
  check bool "on after enable" true (Sim.Engine.profiling_enabled engine);
  for i = 1 to 10 do
    Sim.Engine.schedule ~kind:"tick" engine ~after:i (fun () -> ())
  done;
  Sim.Engine.schedule engine ~after:20 (fun () -> ());
  Sim.Engine.run engine;
  let rows = Sim.Engine.profile engine in
  let events_of k =
    match List.find_opt (fun (kind, _, _) -> kind = k) rows with
    | Some (_, n, _) -> n
    | None -> 0
  in
  check int "ticks attributed" 10 (events_of "tick");
  check int "unlabelled events fall into other" 1 (events_of "other");
  check int "rows account for every event" (Sim.Engine.executed engine)
    (List.fold_left (fun acc (_, n, _) -> acc + n) 0 rows);
  check bool "queue depth sampled" true
    (Stats.Recorder.count (Sim.Engine.queue_depths engine) > 0)

let test_profiling_is_passive () =
  let run profiled =
    let engine = Sim.Engine.create () in
    if profiled then Sim.Engine.enable_profiling engine;
    let rng = Sim.Rng.make 3 in
    let order = ref [] in
    let rec chain n =
      if n < 50 then
        Sim.Engine.schedule ~kind:"chain" engine
          ~after:(1 + Sim.Rng.int rng 100)
          (fun () ->
            order := n :: !order;
            chain (n + 1))
    in
    chain 0;
    Sim.Engine.run engine;
    (Sim.Engine.now engine, Sim.Engine.executed engine, !order)
  in
  check bool "profiled run follows the identical schedule" true
    (run true = run false)

(* ------------------------------------------------------------------ *)
(* Traced harness runs: determinism, passivity, acceptance criterion   *)
(* ------------------------------------------------------------------ *)

let spanner_run ?trace () =
  Harness.spanner_wan ?trace ~mode:Spanner.Config.Rss ~theta:0.75 ~n_keys:5_000
    ~arrival_rate_per_sec:30.0 ~duration_s:3.0 ~seed:11 ()

let test_metrics_deterministic_across_seeds () =
  let a = spanner_run () and b = spanner_run () in
  check bool "metric snapshots identical for identical seeds" true
    (a.Harness.Run.metrics.Obs.Metrics.counters
    = b.Harness.Run.metrics.Obs.Metrics.counters);
  check int "same completed count" (Harness.Run.completed a)
    (Harness.Run.completed b);
  check int "same drain time" a.Harness.Run.duration_us b.Harness.Run.duration_us

let test_traced_run_is_passive () =
  let plain = spanner_run () in
  let tr = Obs.Trace.create () in
  let traced = spanner_run ~trace:tr () in
  check bool "spans were recorded" true (Obs.Trace.n_spans tr > 0);
  check bool "identical history" true
    (plain.Harness.Run.records = traced.Harness.Run.records);
  check bool "identical metrics" true
    (plain.Harness.Run.metrics.Obs.Metrics.counters
    = traced.Harness.Run.metrics.Obs.Metrics.counters);
  check int "identical drain time" plain.Harness.Run.duration_us
    traced.Harness.Run.duration_us;
  (* And a second traced run assigns the same span ids in the same order. *)
  let tr2 = Obs.Trace.create () in
  ignore (spanner_run ~trace:tr2 ());
  check bool "span streams identical" true
    (Obs.Trace.spans tr = Obs.Trace.spans tr2)

let test_ro_span_decomposes_into_hops () =
  let tr = Obs.Trace.create () in
  let r = spanner_run ~trace:tr () in
  check bool "run verified" true (Harness.Run.passed r);
  let spans = Obs.Trace.spans tr in
  let children = Hashtbl.create 256 in
  Array.iter
    (fun s -> Hashtbl.add children s.Obs.Trace.parent s)
    spans;
  let rec hop_descendants acc id =
    List.fold_left
      (fun acc s ->
        let acc =
          if s.Obs.Trace.kind = Obs.Trace.Net_hop && not s.Obs.Trace.is_instant
          then s :: acc
          else acc
        in
        hop_descendants acc s.Obs.Trace.id)
      acc
      (Hashtbl.find_all children id)
  in
  let ros =
    Array.to_list spans
    |> List.filter (fun s ->
           s.Obs.Trace.name = "spanner.ro" && s.Obs.Trace.end_ts >= 0)
  in
  check bool "closed RO spans exist" true (ros <> []);
  let decomposed = ref 0 and explained = ref 0 in
  List.iter
    (fun ro ->
      let hops = hop_descendants [] ro.Obs.Trace.id in
      if List.length hops >= 2 then begin
        incr decomposed;
        let latency = ro.Obs.Trace.end_ts - ro.Obs.Trace.start_ts in
        let sum =
          List.fold_left
            (fun acc h -> acc + (h.Obs.Trace.end_ts - h.Obs.Trace.start_ts))
            0 hops
        in
        (* Hops to different shards overlap, so for a fast-path RO their
           summed durations cover the client-observed latency.  ROs that
           block at a shard behind a prepared transaction spend extra
           non-network time, so coverage is only demanded of some RO, but
           no hop may ever leave its operation's window. *)
        if 10 * sum >= 9 * latency then incr explained;
        List.iter
          (fun h ->
            check bool "hop within the op window" true
              (h.Obs.Trace.start_ts >= ro.Obs.Trace.start_ts
              && h.Obs.Trace.end_ts <= ro.Obs.Trace.end_ts))
          hops
      end)
    ros;
  check bool "at least one RO decomposes into per-shard hops" true
    (!decomposed > 0);
  check bool "hop durations cover the client latency for fast-path ROs" true
    (!explained > 0)

let test_gryff_traced_wan () =
  let tr = Obs.Trace.create () in
  let r =
    Harness.gryff_wan ~trace:tr ~n_clients:4 ~mode:Gryff.Config.Rsc
      ~conflict:0.1 ~write_ratio:0.3 ~n_keys:2_000 ~duration_s:2.0 ~seed:5 ()
  in
  check bool "run verified" true (Harness.Run.passed r);
  let spans = Array.to_list (Obs.Trace.spans tr) in
  let by_name n = List.filter (fun s -> s.Obs.Trace.name = n) spans in
  check bool "client read spans" true (by_name "gryff.read" <> []);
  check bool "client write spans" true (by_name "gryff.write" <> []);
  check bool "hop spans" true
    (List.exists (fun s -> s.Obs.Trace.kind = Obs.Trace.Net_hop) spans);
  (* Reads recorded in the metrics snapshot match the span stream. *)
  check bool "read spans at least the recorded reads" true
    (List.length (by_name "gryff.read") >= Harness.Run.counter r "read.count")

let suites =
  [
    ( "obs.trace",
      [
        Alcotest.test_case "disabled sink is inert" `Quick test_disabled_sink;
        Alcotest.test_case "span tree and ambient parents" `Quick test_span_tree;
        Alcotest.test_case "binary log round-trips" `Quick test_binary_round_trip;
        Alcotest.test_case "binary load rejects garbage" `Quick
          test_binary_rejects_garbage;
        Alcotest.test_case "chrome export parses" `Quick test_chrome_json_parses;
        Alcotest.test_case "hop parents across sends" `Quick
          test_hop_parents_span_sends;
        Alcotest.test_case "parent links survive rpc retransmission" `Quick
          test_rpc_retransmission_keeps_parent;
      ] );
    ( "obs.metrics",
      [
        Alcotest.test_case "registry counters gauges histograms" `Quick
          test_metrics_registry;
        Alcotest.test_case "empty histograms print n/a" `Quick
          test_print_table_empty_histogram;
      ] );
    ( "obs.engine",
      [
        Alcotest.test_case "per-kind profile and queue depths" `Quick
          test_engine_profiling;
        Alcotest.test_case "profiling is passive" `Quick test_profiling_is_passive;
      ] );
    ( "obs.harness",
      [
        Alcotest.test_case "metrics deterministic across identical seeds" `Slow
          test_metrics_deterministic_across_seeds;
        Alcotest.test_case "tracing is passive" `Slow test_traced_run_is_passive;
        Alcotest.test_case "RO span decomposes into per-shard hops" `Slow
          test_ro_span_decomposes_into_hops;
        Alcotest.test_case "gryff traced wan run" `Slow test_gryff_traced_wan;
      ] );
  ]
