(* Property tests for Stats.Recorder: percentiles, min/max, and mean agree
   with naive sort-based oracles on arbitrary sample sets, and the [*_opt]
   variants are total — [None] exactly when the recorder is empty. *)

let check = Alcotest.check
let bool = Alcotest.bool
let qt = QCheck_alcotest.to_alcotest

module R = Stats.Recorder

(* The documented definition, computed independently from a sorted copy:
   nearest-rank with linear interpolation over len-1 intervals. *)
let oracle_percentile samples p =
  let a = Array.of_list (List.sort compare samples) in
  let n = Array.length a in
  if n = 1 then float_of_int a.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then float_of_int a.(lo)
    else
      ((1.0 -. (rank -. float_of_int lo)) *. float_of_int a.(lo))
      +. ((rank -. float_of_int lo) *. float_of_int a.(hi))
  end

let recorder_of samples =
  let r = R.create () in
  List.iter (R.add r) samples;
  r

let close a b = Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs a)

let samples_gen =
  QCheck.(list_of_size (Gen.int_range 1 200) (int_range (-1_000) 1_000_000))

let prop_percentile_matches_oracle =
  QCheck.Test.make ~name:"percentile matches sort-based oracle" ~count:300
    QCheck.(pair samples_gen (float_range 0.0 100.0))
    (fun (samples, p) ->
      let r = recorder_of samples in
      close (R.percentile r p) (oracle_percentile samples p)
      && close (R.percentile_ms r p) (oracle_percentile samples p /. 1000.0))

let prop_extremes_match_oracle =
  QCheck.Test.make ~name:"min/max/mean match oracles" ~count:300 samples_gen
    (fun samples ->
      let r = recorder_of samples in
      let sum = List.fold_left (fun a x -> a +. float_of_int x) 0.0 samples in
      R.min r = List.fold_left Stdlib.min (List.hd samples) samples
      && R.max r = List.fold_left Stdlib.max (List.hd samples) samples
      && close (R.mean r) (sum /. float_of_int (List.length samples))
      && R.count r = List.length samples)

let prop_opt_variants_total =
  QCheck.Test.make ~name:"*_opt = Some of the raising variant" ~count:300
    QCheck.(pair samples_gen (float_range 0.0 100.0))
    (fun (samples, p) ->
      let r = recorder_of samples in
      R.min_opt r = Some (R.min r)
      && R.max_opt r = Some (R.max r)
      && R.percentile_opt r p = Some (R.percentile r p)
      && R.percentile_ms_opt r p = Some (R.percentile_ms r p))

(* Percentiles interleave with adds: ensure_sorted must re-sort after
   mutation, never serve a stale order. *)
let prop_interleaved_adds =
  QCheck.Test.make ~name:"percentile correct after interleaved adds" ~count:100
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 50) (int_range 0 10_000))
        (list_of_size (Gen.int_range 1 50) (int_range 0 10_000)))
    (fun (first, second) ->
      let r = recorder_of first in
      ignore (R.percentile r 50.0);
      List.iter (R.add r) second;
      close (R.percentile r 90.0) (oracle_percentile (first @ second) 90.0))

let test_empty_recorder_paths () =
  let r = R.create () in
  check bool "is_empty" true (R.is_empty r);
  check bool "min_opt" true (R.min_opt r = None);
  check bool "max_opt" true (R.max_opt r = None);
  check bool "percentile_opt" true (R.percentile_opt r 50.0 = None);
  check bool "percentile_ms_opt" true (R.percentile_ms_opt r 99.0 = None);
  (match R.min r with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "min on empty should raise");
  (match R.percentile r 50.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "percentile on empty should raise")

let test_merge_is_union () =
  let a = recorder_of [ 5; 1; 9 ] and b = recorder_of [ 2; 7 ] in
  let m = R.merge a b in
  check bool "count" true (R.count m = 5);
  check bool "sorted union" true
    (R.to_sorted_array m = [| 1; 2; 5; 7; 9 |])

let suites =
  [
    ( "stats.recorder",
      [
        qt prop_percentile_matches_oracle;
        qt prop_extremes_match_oracle;
        qt prop_opt_variants_total;
        qt prop_interleaved_adds;
        Alcotest.test_case "empty recorder paths" `Quick
          test_empty_recorder_paths;
        Alcotest.test_case "merge is union" `Quick test_merge_is_union;
      ] );
  ]
