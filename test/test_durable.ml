(* Tests for the durable-storage layer: the growable log against a list
   oracle, framed integrity verification, the seeded storage-fault model,
   the scrub pass, and the recovery repair policy — truncate a suspect
   suffix, quarantine + peer state transfer, fail-stop when no peer holds
   the committed prefix — driven end to end through Replication.Group and
   the chaos audits. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let qt = QCheck_alcotest.to_alcotest

let spec ?(tear = 0.0) ?(corrupt = 0.0) ?(stale = 0.0) ?(lost = 0.0) () =
  {
    Sim.Durable.Faults.tear_prob = tear;
    max_tear = 3;
    corrupt_prob = corrupt;
    stale_prob = stale;
    max_stale = 3;
    lost_int_prob = lost;
  }

let with_ctl ?integrity ~spec ~seed f =
  let ctl = Sim.Durable.Faults.install ~spec ?integrity ~seed () in
  Fun.protect ~finally:(fun () -> Sim.Durable.Faults.retire ctl) @@ fun () ->
  f ctl

(* ------------------------------------------------------------------ *)
(* Log vs list oracle                                                  *)
(* ------------------------------------------------------------------ *)

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun v -> `Append v) (int_bound 1_000));
        (2, map (fun n -> `Truncate n) (int_bound 40));
        (1, map (fun l -> `Replace l) (list_size (int_bound 12) (int_bound 1_000)));
      ])

let pp_op = function
  | `Append v -> Printf.sprintf "append %d" v
  | `Truncate n -> Printf.sprintf "truncate %d" n
  | `Replace l ->
    Printf.sprintf "replace [%s]" (String.concat ";" (List.map string_of_int l))

let ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (int_bound 60) op_gen)

let prop_log_matches_oracle =
  QCheck.Test.make ~name:"log ops match list oracle (incl. byte accounting)"
    ~count:200 ops_arb (fun ops ->
      let store = Sim.Durable.create ~site:0 ~name:"oracle" in
      let l = Sim.Durable.log store in
      let model = ref [] in
      let appends = ref 0 and bytes = ref 0 in
      List.iter
        (fun op ->
          (match op with
          | `Append v ->
            ignore (Sim.Durable.append l v);
            incr appends;
            bytes := !bytes + 64;
            model := !model @ [ v ]
          | `Truncate n ->
            Sim.Durable.truncate l n;
            model := List.filteri (fun i _ -> i < n) !model
          | `Replace vs ->
            Sim.Durable.replace l vs;
            appends := !appends + List.length vs;
            bytes := !bytes + (64 * List.length vs);
            model := vs);
          if Sim.Durable.to_list l <> !model then
            QCheck.Test.fail_reportf "contents diverge after %s" (pp_op op);
          if Sim.Durable.length l <> List.length !model then
            QCheck.Test.fail_reportf "length diverges after %s" (pp_op op))
        ops;
      List.iteri
        (fun i v ->
          if Sim.Durable.get l i <> v then
            QCheck.Test.fail_reportf "get %d diverges" i)
        !model;
      Sim.Durable.appends store = !appends
      && Sim.Durable.bytes_written store = !bytes
      && Sim.Durable.read_verified l = Sim.Durable.Ok)

let test_bad_indices () =
  let store = Sim.Durable.create ~site:0 ~name:"bounds" in
  let l = Sim.Durable.log store in
  ignore (Sim.Durable.append l 7);
  Alcotest.check_raises "negative truncate"
    (Invalid_argument "Durable.truncate: negative length") (fun () ->
      Sim.Durable.truncate l (-1));
  Alcotest.check_raises "negative get"
    (Invalid_argument "Durable.get: index out of bounds") (fun () ->
      ignore (Sim.Durable.get l (-1)));
  Alcotest.check_raises "get past end"
    (Invalid_argument "Durable.get: index out of bounds") (fun () ->
      ignore (Sim.Durable.get l 1));
  (* truncate past the end is a no-op, not an error *)
  Sim.Durable.truncate l 5;
  check int "still one entry" 1 (Sim.Durable.length l)

(* ------------------------------------------------------------------ *)
(* Framing: each fault class is detected and classified               *)
(* ------------------------------------------------------------------ *)

let test_torn_tail_detected () =
  with_ctl ~spec:(spec ~tear:1.0 ()) ~seed:7 @@ fun ctl ->
  let store = Sim.Durable.create ~site:0 ~name:"tear" in
  let l = Sim.Durable.log store in
  for i = 0 to 9 do
    ignore (Sim.Durable.append l i)
  done;
  Sim.Durable.Faults.crash_site ctl 0;
  (match Sim.Durable.read_verified l with
  | Sim.Durable.Torn_tail n ->
    check bool "tail shortened" true (n < 10);
    check int "journal remembers the old length" 10
      (Sim.Durable.journalled_length l);
    check int "verified prefix is the survivors" n
      (List.length (Sim.Durable.verified_prefix l))
  | v -> Alcotest.failf "expected torn tail, got %s" (Sim.Durable.verified_name v));
  Sim.Durable.repair_torn_tail l;
  check bool "repair re-journals" true (Sim.Durable.read_verified l = Sim.Durable.Ok);
  check bool "tear counted" true
    ((Sim.Durable.Faults.stats ctl).Sim.Durable.Faults.fs_torn > 0)

let test_misdirected_write_detected () =
  with_ctl ~spec:(spec ~corrupt:1.0 ()) ~seed:7 @@ fun ctl ->
  let store = Sim.Durable.create ~site:0 ~name:"misdirect" in
  let l = Sim.Durable.log store in
  for i = 0 to 9 do
    ignore (Sim.Durable.append l (100 + i))
  done;
  Sim.Durable.Faults.crash_site ctl 0;
  (match Sim.Durable.read_verified l with
  | Sim.Durable.Corrupt i ->
    check bool "corruption is mid-log" true (i >= 0 && i < 10);
    check int "length unchanged (frame is self-consistent)" 10
      (Sim.Durable.length l);
    check int "verified prefix stops at the bad frame" i
      (List.length (Sim.Durable.verified_prefix l));
    (* dropping the suspect suffix restores integrity *)
    Sim.Durable.truncate l i;
    check bool "clean after truncation" true
      (Sim.Durable.read_verified l = Sim.Durable.Ok)
  | v -> Alcotest.failf "expected corrupt, got %s" (Sim.Durable.verified_name v))

let test_stale_resurface_detected () =
  with_ctl ~spec:(spec ~stale:1.0 ()) ~seed:7 @@ fun ctl ->
  let store = Sim.Durable.create ~site:0 ~name:"stale" in
  let l = Sim.Durable.log store in
  for i = 0 to 9 do
    ignore (Sim.Durable.append l i)
  done;
  Sim.Durable.truncate l 5;
  Sim.Durable.Faults.crash_site ctl 0;
  check bool "resurfaced entries lengthen the log" true (Sim.Durable.length l > 5);
  (match Sim.Durable.read_verified l with
  | Sim.Durable.Corrupt i -> check int "flagged at the journalled length" 5 i
  | v -> Alcotest.failf "expected corrupt, got %s" (Sim.Durable.verified_name v));
  Sim.Durable.truncate l 5;
  check bool "clean after truncation" true
    (Sim.Durable.read_verified l = Sim.Durable.Ok)

let test_lost_register_write () =
  with_ctl ~spec:(spec ~lost:1.0 ()) ~seed:7 @@ fun ctl ->
  let store = Sim.Durable.create ~site:0 ~name:"regs" in
  Sim.Durable.set_int store "view" 1;
  Sim.Durable.set_int store "view" 2;
  Sim.Durable.set_int store "fresh" 9;
  Sim.Durable.Faults.crash_site ctl 0;
  check int "last write lost, previous survives" 1
    (Sim.Durable.get_int store "view" ~default:(-1));
  check int "sole write lost entirely" (-1)
    (Sim.Durable.get_int store "fresh" ~default:(-1));
  check bool "losses counted" true
    ((Sim.Durable.Faults.stats ctl).Sim.Durable.Faults.fs_lost_ints >= 2)

let test_integrity_disabled_is_blind () =
  with_ctl ~integrity:false ~spec:(spec ~corrupt:1.0 ()) ~seed:7 @@ fun ctl ->
  let store = Sim.Durable.create ~site:0 ~name:"blind" in
  let l = Sim.Durable.log store in
  for i = 0 to 9 do
    ignore (Sim.Durable.append l i)
  done;
  Sim.Durable.Faults.crash_site ctl 0;
  check bool "damage landed" true
    ((Sim.Durable.Faults.stats ctl).Sim.Durable.Faults.fs_corrupt > 0);
  check bool "blind store verifies anyway" true
    (Sim.Durable.read_verified l = Sim.Durable.Ok)

(* ------------------------------------------------------------------ *)
(* Fault model: seeded determinism                                     *)
(* ------------------------------------------------------------------ *)

let damage_fingerprint ~seed =
  with_ctl ~spec:(spec ~tear:0.5 ~corrupt:0.5 ~stale:0.5 ~lost:0.5 ()) ~seed
  @@ fun ctl ->
  let mk site name =
    let store = Sim.Durable.create ~site ~name in
    let l = Sim.Durable.log store in
    for i = 0 to 19 do
      ignore (Sim.Durable.append l (i * 7))
    done;
    Sim.Durable.truncate l 15;
    Sim.Durable.set_int store "view" 3;
    (store, l)
  in
  let stores = [ mk 0 "a"; mk 0 "b"; mk 1 "c" ] in
  Sim.Durable.Faults.crash_site ctl 0;
  Sim.Durable.Faults.crash_site ctl 1;
  let s = Sim.Durable.Faults.stats ctl in
  ( ( s.Sim.Durable.Faults.fs_torn,
      s.Sim.Durable.Faults.fs_corrupt,
      s.Sim.Durable.Faults.fs_resurfaced,
      s.Sim.Durable.Faults.fs_lost_ints ),
    List.map
      (fun (store, l) ->
        ( Sim.Durable.to_list l,
          Sim.Durable.verified_name (Sim.Durable.read_verified l),
          Sim.Durable.get_int store "view" ~default:(-1) ))
      stores )

let test_fault_model_deterministic () =
  let a = damage_fingerprint ~seed:11 in
  let b = damage_fingerprint ~seed:11 in
  check bool "same seed, same damage" true (a = b)

(* ------------------------------------------------------------------ *)
(* Scrub                                                               *)
(* ------------------------------------------------------------------ *)

let test_scrub_flags_and_repairs () =
  with_ctl ~spec:(spec ~corrupt:1.0 ()) ~seed:3 @@ fun ctl ->
  let store = Sim.Durable.create ~site:0 ~name:"scrubbed" in
  let l = Sim.Durable.log store in
  for i = 0 to 9 do
    ignore (Sim.Durable.append l i)
  done;
  Sim.Durable.Faults.crash_site ctl 0;
  let repaired = ref 0 in
  Sim.Durable.set_repairer l (fun v ->
      incr repaired;
      match v with
      | Sim.Durable.Corrupt i -> Sim.Durable.truncate l i
      | Sim.Durable.Torn_tail _ -> Sim.Durable.repair_torn_tail l
      | Sim.Durable.Ok -> ());
  let flags = ref 0 in
  let scanned, flagged = Sim.Durable.scrub store ~on_flag:(fun _ -> incr flags) in
  check int "scanned the whole log" 10 scanned;
  check int "one log flagged" 1 flagged;
  check int "on_flag fired" 1 !flags;
  check int "repairer invoked" 1 !repaired;
  let _, again = Sim.Durable.scrub store ~on_flag:(fun _ -> ()) in
  check int "clean after repair" 0 again

let test_scrub_pass_background () =
  with_ctl ~spec:(spec ~corrupt:1.0 ()) ~seed:3 @@ fun ctl ->
  let engine = Sim.Engine.create () in
  let station = Sim.Station.create engine ~service_time_us:10 in
  let store = Sim.Durable.create ~site:0 ~name:"latent" in
  let l = Sim.Durable.log store in
  for i = 0 to 9 do
    ignore (Sim.Durable.append l i)
  done;
  Sim.Durable.set_repairer l (fun v ->
      match v with
      | Sim.Durable.Corrupt i -> Sim.Durable.truncate l i
      | Sim.Durable.Torn_tail _ -> Sim.Durable.repair_torn_tail l
      | Sim.Durable.Ok -> ());
  Sim.Durable.Faults.crash_site ctl 0;
  let st =
    Sim.Scrub.start engine ~station ~ctl ~period_us:1_000 ~until_us:20_000 ()
  in
  Sim.Engine.run engine;
  check bool "scans ran" true (st.Sim.Scrub.passes >= 1);
  check bool "latent damage flagged" true (st.Sim.Scrub.flagged >= 1);
  check bool "repairer healed the log" true
    (Sim.Durable.read_verified l = Sim.Durable.Ok)

(* ------------------------------------------------------------------ *)
(* Recovery repair policy through Replication.Group + chaos audits      *)
(* ------------------------------------------------------------------ *)

(* Crash the shard-0 leader together with one follower and bring the
   follower back first: its log carries a misdirected frame and no live
   leader can heal it before the election. The intact third member must win
   the election, quarantined members must repair via peer state transfer,
   and the history must verify. *)
let repair_schedule =
  Chaos.Schedule.
    [
      at_s 2.0 (Crash [ 0; 1 ]);
      at_s 2.2 (Recover [ 1 ]);
      at_s 4.0 (Recover [ 0 ]);
    ]

(* Crash all three sites and crash-cycle the followers while the shard-0
   leader stays down: every surviving log is damaged, so whatever the
   election adopts is corrupt. With checksums this must fail-stop; without
   them recovery silently replays the garbage. *)
let lost_prefix_schedule =
  Chaos.Schedule.
    [
      at_s 2.0 (Crash [ 0; 1; 2 ]);
      at_s 2.06 (Recover [ 1; 2 ]);
      at_s 2.12 (Crash [ 1; 2 ]);
      at_s 2.18 (Recover [ 1; 2 ]);
      at_s 2.24 (Crash [ 1; 2 ]);
      at_s 2.3 (Recover [ 1; 2 ]);
      at_s 2.36 (Crash [ 1; 2 ]);
      at_s 2.42 (Recover [ 1; 2 ]);
      at_s 3.5 (Recover [ 0 ]);
    ]

let test_torn_tail_recovery_converges () =
  let seed = 5 in
  let df =
    Chaos.Audit.default_disk_faults ~spec:(spec ~tear:1.0 ()) ~seed ()
  in
  let schedule =
    Chaos.Audit.nemesis_schedule Chaos.Audit.Spanner_rss
      Chaos.Nemesis.Rolling_crash ~duration_s:6.0 ~seed
  in
  let r =
    Chaos.Audit.run Chaos.Audit.Spanner_rss ~schedule ~disk_faults:df
      ~failover:true ~n_slots:6 ~duration_s:6.0 ~seed ()
  in
  (match r.Chaos.Audit.check with
  | Ok () -> ()
  | Error m -> Alcotest.failf "history failed under torn tails: %s" m);
  check bool "tails torn" true (r.Chaos.Audit.disk_torn > 0);
  check bool "torn suffixes repaired" true (r.Chaos.Audit.repairs_torn > 0);
  check int "no member left quarantined" 0 r.Chaos.Audit.unrepaired

let test_corruption_quarantined_and_peer_repaired () =
  let seed = 42 in
  let df =
    Chaos.Audit.default_disk_faults ~spec:(spec ~corrupt:1.0 ()) ~seed ()
  in
  let r =
    Chaos.Audit.run Chaos.Audit.Spanner_rss ~schedule:repair_schedule
      ~disk_faults:df ~failover:true ~duration_s:6.0 ~seed ()
  in
  (match r.Chaos.Audit.check with
  | Ok () -> ()
  | Error m -> Alcotest.failf "history failed under mid-log corruption: %s" m);
  check bool "writes misdirected" true (r.Chaos.Audit.disk_corrupt > 0);
  check bool "members quarantined" true (r.Chaos.Audit.repairs_quarantined > 0);
  check bool "peer state transfer repaired them" true
    (r.Chaos.Audit.repairs_peer > 0);
  check int "no member left quarantined" 0 r.Chaos.Audit.unrepaired

let test_integrity_disabled_control_caught () =
  (* Same damage against checksum-blind stores: recovery replays a
     misdirected frame and the consistency checker (or the rebuild's own
     invariants) must flag it. A benign seed may corrupt only frames nobody
     rereads, so scan a few workload seeds — deterministically. *)
  let caught = ref None in
  let seed = ref 42 in
  while !caught = None && !seed < 48 do
    let df =
      {
        (Chaos.Audit.default_disk_faults ~spec:(spec ~corrupt:1.0 ()) ~seed:!seed
           ())
        with
        Chaos.Audit.df_integrity = false;
      }
    in
    (match
       Chaos.Audit.run Chaos.Audit.Spanner_rss ~schedule:lost_prefix_schedule
         ~disk_faults:df ~failover:true ~duration_s:10.0 ~seed:!seed ()
     with
    | r -> (
      match r.Chaos.Audit.check with
      | Error m -> caught := Some m
      | Ok () -> ())
    | exception e -> caught := Some (Printexc.to_string e));
    incr seed
  done;
  match !caught with
  | Some _ -> ()
  | None -> Alcotest.fail "blind corruption was never caught"

let test_fail_stop_when_no_peer_has_prefix () =
  (* Group-level: every member's log is damaged below the durable commit
     count, so no quorum can cover it. The group must halt (quarantined,
     not serving) rather than elect a truncated log and serve it. *)
  with_ctl ~spec:(spec ~corrupt:1.0 ()) ~seed:9 @@ fun ctl ->
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make 1 in
  let rtt =
    [| [| 0.2; 20.0; 40.0 |]; [| 20.0; 0.2; 30.0 |]; [| 40.0; 30.0; 0.2 |] |]
  in
  let net = Sim.Net.create engine ~rng ~rtt_ms:rtt ~jitter:0.0 () in
  let g = Replication.Group.create net ~leader_site:0 ~replica_sites:[ 1; 2 ] () in
  Replication.Group.enable_failover g ~until_us:(Sim.Engine.sec 5.0) ();
  for i = 0 to 19 do
    Sim.Engine.schedule engine
      ~after:(10_000 + (i * 30_000))
      (fun () -> Replication.Group.replicate g i (fun () -> ()))
  done;
  Sim.Engine.schedule engine ~after:1_500_000 (fun () ->
      List.iter (Sim.Net.set_down net) [ 0; 1; 2 ];
      List.iter (Sim.Durable.Faults.crash_site ctl) [ 0; 1; 2 ]);
  Sim.Engine.schedule engine ~after:1_600_000 (fun () ->
      Sim.Net.set_up net 1;
      Sim.Net.set_up net 2);
  Sim.Engine.schedule engine ~after:2_500_000 (fun () -> Sim.Net.set_up net 0);
  Sim.Engine.run engine;
  let s = Replication.Group.stats g in
  check bool "members quarantined" true
    (s.Replication.Group.corrupt_quarantined >= 2);
  check bool "quarantine never cleared" true (s.Replication.Group.unrepaired >= 1);
  check bool "group refuses to serve" true (not (Replication.Group.serving g))

let test_armed_but_undamaged_is_byte_identical () =
  (* Installing the fault control and the scrub pass without any crash must
     not perturb the schedule: the history trace is byte-identical to a run
     with no storage-fault machinery at all. *)
  let run df =
    Chaos.Audit.run Chaos.Audit.Spanner_rss ~schedule:[] ?disk_faults:df
      ~failover:true ~n_slots:6 ~duration_s:4.0 ~seed:21 ()
  in
  let plain = run None in
  let armed = run (Some (Chaos.Audit.default_disk_faults ~seed:21 ())) in
  check bool "trace digests equal" true
    (Digest.string plain.Chaos.Audit.trace
    = Digest.string armed.Chaos.Audit.trace);
  check int "no damage recorded" 0 armed.Chaos.Audit.disk_crashes

let suites =
  [
    ( "sim.durable",
      [
        qt prop_log_matches_oracle;
        Alcotest.test_case "bad indices raise" `Quick test_bad_indices;
      ] );
    ( "sim.durable.faults",
      [
        Alcotest.test_case "torn tail detected" `Quick test_torn_tail_detected;
        Alcotest.test_case "misdirected write detected" `Quick
          test_misdirected_write_detected;
        Alcotest.test_case "stale resurface detected" `Quick
          test_stale_resurface_detected;
        Alcotest.test_case "lost register write" `Quick test_lost_register_write;
        Alcotest.test_case "integrity-disabled store is blind" `Quick
          test_integrity_disabled_is_blind;
        Alcotest.test_case "seeded damage is deterministic" `Quick
          test_fault_model_deterministic;
        Alcotest.test_case "scrub flags and repairs" `Quick
          test_scrub_flags_and_repairs;
        Alcotest.test_case "background scrub pass" `Quick
          test_scrub_pass_background;
      ] );
    ( "durable.recovery",
      [
        Alcotest.test_case "torn-tail recovery converges" `Slow
          test_torn_tail_recovery_converges;
        Alcotest.test_case "corruption quarantined, peer repaired" `Slow
          test_corruption_quarantined_and_peer_repaired;
        Alcotest.test_case "integrity-off control caught" `Slow
          test_integrity_disabled_control_caught;
        Alcotest.test_case "fail-stop when no peer has the prefix" `Quick
          test_fail_stop_when_no_peer_has_prefix;
        Alcotest.test_case "armed but undamaged is byte-identical" `Slow
          test_armed_but_undamaged_is_byte_identical;
      ] );
  ]
