let () =
  Alcotest.run "rss-repro"
    (Test_sim.suites @ Test_core.suites @ Test_workload.suites
   @ Test_spanner.suites @ Test_gryff.suites @ Test_photoapp.suites @ Test_locks.suites @ Test_replication.suites @ Test_trace.suites @ Test_composition.suites @ Test_ioa.suites @ Test_fuzz.suites @ Test_chaos.suites @ Test_obs.suites @ Test_scale.suites @ Test_batch.suites @ Test_place.suites @ Test_stats.suites @ Test_durable.suites @ Test_explore.suites @ Test_flow.suites)
