(* Tests for the discrete-event simulation substrate. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let test_heap_order () =
  let h = Sim.Heap.create ~cmp:compare in
  List.iter (Sim.Heap.add h) [ 5; 3; 8; 1; 9; 2; 7; 4; 6; 0 ];
  let out = ref [] in
  let rec drain () =
    match Sim.Heap.pop h with
    | None -> ()
    | Some x ->
      out := x :: !out;
      drain ()
  in
  drain ();
  check (Alcotest.list int) "sorted ascending" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !out)

let test_heap_empty () =
  let h = Sim.Heap.create ~cmp:compare in
  check bool "empty" true (Sim.Heap.is_empty h);
  check bool "pop none" true (Sim.Heap.pop h = None);
  check bool "peek none" true (Sim.Heap.peek h = None);
  Sim.Heap.add h 42;
  check int "size" 1 (Sim.Heap.size h);
  check bool "peek" true (Sim.Heap.peek h = Some 42);
  check bool "pop" true (Sim.Heap.pop h = Some 42);
  check bool "empty again" true (Sim.Heap.is_empty h)

let test_heap_duplicates () =
  let h = Sim.Heap.create ~cmp:compare in
  List.iter (Sim.Heap.add h) [ 3; 1; 3; 1; 2 ];
  let rec drain acc =
    match Sim.Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  check (Alcotest.list int) "dups kept" [ 1; 1; 2; 3; 3 ] (drain [])

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains any list sorted" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let h = Sim.Heap.create ~cmp:compare in
      List.iter (Sim.Heap.add h) xs;
      let rec drain acc =
        match Sim.Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

let prop_heap_stable_tiebreak =
  (* The engine's event ordering is (time, seq) lexicographic; under that
     comparator a drain is exactly a *stable* sort of the insertion
     sequence by time. Times are drawn from a tiny range so nearly every
     case exercises same-timestamp ties. *)
  QCheck.Test.make ~name:"heap under (time,seq) = stable sort by time" ~count:300
    QCheck.(list (int_range 0 15))
    (fun times ->
      let h =
        Sim.Heap.create ~cmp:(fun (t1, s1) (t2, s2) ->
            if t1 <> t2 then compare t1 t2 else compare s1 s2)
      in
      List.iteri (fun i t -> Sim.Heap.add h (t, i)) times;
      let rec drain acc =
        match Sim.Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain []
      = List.stable_sort
          (fun (t1, _) (t2, _) -> compare t1 t2)
          (List.mapi (fun i t -> (t, i)) times))

let test_heap_clear_reuse () =
  let h = Sim.Heap.create ~cmp:compare in
  List.iter (Sim.Heap.add h) [ 3; 1; 2 ];
  Sim.Heap.clear h;
  check bool "cleared" true (Sim.Heap.is_empty h);
  check bool "pop after clear" true (Sim.Heap.pop h = None);
  List.iter (Sim.Heap.add h) [ 9; 4; 6 ];
  check int "size after reuse" 3 (Sim.Heap.size h);
  let rec drain acc =
    match Sim.Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  check (Alcotest.list int) "reused heap sorts" [ 4; 6; 9 ] (drain [])

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_ordering () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.schedule e ~after:30 (fun () -> log := "c" :: !log);
  Sim.Engine.schedule e ~after:10 (fun () -> log := "a" :: !log);
  Sim.Engine.schedule e ~after:20 (fun () -> log := "b" :: !log);
  Sim.Engine.run e;
  check (Alcotest.list Alcotest.string) "time order" [ "a"; "b"; "c" ]
    (List.rev !log);
  check int "clock at last event" 30 (Sim.Engine.now e)

let test_engine_fifo_same_time () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Sim.Engine.schedule e ~after:5 (fun () -> log := i :: !log)
  done;
  Sim.Engine.run e;
  check (Alcotest.list int) "FIFO at equal times" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_engine_nested_scheduling () =
  let e = Sim.Engine.create () in
  let hits = ref 0 in
  let rec tick n =
    if n > 0 then begin
      incr hits;
      Sim.Engine.schedule e ~after:7 (fun () -> tick (n - 1))
    end
  in
  Sim.Engine.schedule e ~after:0 (fun () -> tick 5);
  Sim.Engine.run e;
  check int "five ticks" 5 !hits;
  (* tick(0) still fires (and does nothing) at t=35 *)
  check int "clock at final tick" 35 (Sim.Engine.now e)

let test_engine_until () =
  let e = Sim.Engine.create () in
  let hits = ref 0 in
  for i = 1 to 10 do
    Sim.Engine.schedule e ~after:(i * 10) (fun () -> incr hits)
  done;
  Sim.Engine.run ~until:55 e;
  check int "only events <= 55 ran" 5 !hits;
  check int "clock stopped at until" 55 (Sim.Engine.now e);
  check int "rest still pending" 5 (Sim.Engine.pending e);
  Sim.Engine.run e;
  check int "drained" 10 !hits

let test_engine_past_schedule () =
  let e = Sim.Engine.create () in
  let at = ref (-1) in
  Sim.Engine.schedule e ~after:100 (fun () ->
      Sim.Engine.schedule_at e ~at:5 (fun () -> at := Sim.Engine.now e));
  Sim.Engine.run e;
  check int "past event fires now" 100 !at

let prop_engine_stable_order =
  (* N seeded random events against the stable-sort oracle: the flat-array
     event heap must execute same-instant events FIFO in scheduling order
     (this is what pins seeded schedules byte for byte). *)
  QCheck.Test.make ~name:"engine runs seeded events in stable-sorted order"
    ~count:200
    QCheck.(pair small_int (int_range 1 300))
    (fun (seed, n) ->
      let rng = Sim.Rng.make seed in
      let delays = List.init n (fun _ -> Sim.Rng.int rng 25) in
      let e = Sim.Engine.create () in
      let log = ref [] in
      List.iteri
        (fun i d -> Sim.Engine.schedule e ~after:d (fun () -> log := (d, i) :: !log))
        delays;
      Sim.Engine.run e;
      List.rev !log
      = List.stable_sort
          (fun (a, _) (b, _) -> compare a b)
          (List.mapi (fun i d -> (d, i)) delays))

let prop_engine_slot_reuse =
  (* Popped slots are cleared by [remove_root] and reused by later pushes;
     several fill/drain rounds over the same engine must each still match
     the oracle, with nothing lost, duplicated, or resurrected. *)
  QCheck.Test.make ~name:"cleared event slots are reused soundly" ~count:100
    QCheck.(pair small_int (int_range 1 60))
    (fun (seed, n) ->
      let rng = Sim.Rng.make seed in
      let e = Sim.Engine.create () in
      let ok = ref true in
      for _round = 1 to 4 do
        let delays = List.init n (fun _ -> Sim.Rng.int rng 10) in
        let log = ref [] in
        List.iteri
          (fun i d ->
            Sim.Engine.schedule e ~after:d (fun () -> log := (d, i) :: !log))
          delays;
        Sim.Engine.run e;
        let oracle =
          List.stable_sort
            (fun (a, _) (b, _) -> compare a b)
            (List.mapi (fun i d -> (d, i)) delays)
        in
        if List.rev !log <> oracle then ok := false
      done;
      !ok && Sim.Engine.pending e = 0 && Sim.Engine.executed e = 4 * n)

let test_time_conversions () =
  check int "ms" 62_000 (Sim.Engine.ms 62.0);
  check int "sec" 1_500_000 (Sim.Engine.sec 1.5);
  check bool "roundtrip" true (abs_float (Sim.Engine.to_ms 62_000 -. 62.0) < 1e-9);
  check bool "to_sec" true (abs_float (Sim.Engine.to_sec 500_000 -. 0.5) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Sim.Rng.make 42 and b = Sim.Rng.make 42 in
  let xs = List.init 20 (fun _ -> Sim.Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Sim.Rng.int b 1000) in
  check (Alcotest.list int) "same seed, same stream" xs ys

let test_rng_split_independent () =
  let root = Sim.Rng.make 7 in
  let child = Sim.Rng.split root in
  let xs = List.init 20 (fun _ -> Sim.Rng.int child 1000) in
  (* Drawing from the parent must not change what the child would produce:
     recreate the same child from a fresh root. *)
  let root' = Sim.Rng.make 7 in
  let child' = Sim.Rng.split root' in
  ignore (Sim.Rng.int root' 1000);
  let ys = List.init 20 (fun _ -> Sim.Rng.int child' 1000) in
  check (Alcotest.list int) "child stream reproducible" xs ys

let prop_rng_int_range =
  QCheck.Test.make ~name:"rng int in range" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let r = Sim.Rng.make seed in
      let x = Sim.Rng.int r n in
      x >= 0 && x < n)

let prop_rng_exponential_positive =
  QCheck.Test.make ~name:"exponential samples positive" ~count:500
    QCheck.(pair small_int (float_range 0.001 1000.0))
    (fun (seed, mean) ->
      let r = Sim.Rng.make seed in
      Sim.Rng.exponential r ~mean >= 0.0)

let test_rng_exponential_mean () =
  let r = Sim.Rng.make 11 in
  let n = 200_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Sim.Rng.exponential r ~mean:10.0
  done;
  let mean = !sum /. float_of_int n in
  check bool "mean within 2%" true (abs_float (mean -. 10.0) < 0.2)

let test_rng_bool_bias () =
  let r = Sim.Rng.make 13 in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Sim.Rng.bool r 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  check bool "p=0.3 within 2%" true (abs_float (p -. 0.3) < 0.02)

(* ------------------------------------------------------------------ *)
(* Net                                                                 *)
(* ------------------------------------------------------------------ *)

let mk_net ?(jitter = 0.0) () =
  let e = Sim.Engine.create () in
  let rng = Sim.Rng.make 1 in
  let rtt = [| [| 0.2; 62.0 |]; [| 62.0; 0.2 |] |] in
  (e, Sim.Net.create e ~rng ~rtt_ms:rtt ~jitter ())

let test_net_delay () =
  let e, net = mk_net () in
  let arrived = ref (-1) in
  Sim.Net.send net ~src:0 ~dst:1 (fun () -> arrived := Sim.Engine.now e);
  Sim.Engine.run e;
  check int "one-way = RTT/2" 31_000 !arrived

let test_net_local_delay () =
  let e, net = mk_net () in
  let arrived = ref (-1) in
  Sim.Net.send net ~src:1 ~dst:1 (fun () -> arrived := Sim.Engine.now e);
  Sim.Engine.run e;
  check int "local = diagonal/2" 100 !arrived

let test_net_triangular_matrix () =
  let e = Sim.Engine.create () in
  let rng = Sim.Rng.make 1 in
  (* lower-triangular input: upper entries zero *)
  let rtt = [| [| 0.2; 0.0 |]; [| 80.0; 0.2 |] |] in
  let net = Sim.Net.create e ~rng ~rtt_ms:rtt ~jitter:0.0 () in
  check int "mirrored" (Sim.Net.base_one_way net ~src:0 ~dst:1) 40_000;
  check int "given" (Sim.Net.base_one_way net ~src:1 ~dst:0) 40_000

let test_net_jitter_bounds () =
  let e, net = mk_net ~jitter:0.1 () in
  let count = ref 0 in
  for _ = 1 to 100 do
    Sim.Net.send net ~src:0 ~dst:1 (fun () -> incr count)
  done;
  Sim.Engine.run e;
  check int "all delivered" 100 !count;
  (* Last delivery cannot be later than base * 1.1. *)
  check bool "bounded by jitter" true (Sim.Engine.now e <= 34_100);
  check int "messages counted" 100 (Sim.Net.messages_sent net)

let test_net_message_accounting () =
  let e, net = mk_net () in
  Sim.Net.send ~bytes:100 net ~src:0 ~dst:1 (fun () -> ());
  Sim.Net.send ~bytes:50 net ~src:1 ~dst:0 (fun () -> ());
  Sim.Engine.run e;
  check int "messages" 2 (Sim.Net.messages_sent net);
  check int "bytes" 150 (Sim.Net.bytes_sent net)

(* ------------------------------------------------------------------ *)
(* Truetime                                                            *)
(* ------------------------------------------------------------------ *)

let test_truetime_interval () =
  let e = Sim.Engine.create () in
  let tt = Sim.Truetime.create e ~epsilon_us:10_000 in
  Sim.Engine.schedule e ~after:50_000 (fun () ->
      let iv = Sim.Truetime.now tt in
      check int "earliest" 40_000 iv.Sim.Truetime.earliest;
      check int "latest" 60_000 iv.Sim.Truetime.latest);
  Sim.Engine.run e

let test_truetime_after () =
  let e = Sim.Engine.create () in
  let tt = Sim.Truetime.create e ~epsilon_us:10_000 in
  Sim.Engine.schedule e ~after:50_000 (fun () ->
      check bool "39999 passed" true (Sim.Truetime.after tt 39_999);
      check bool "40000 not yet definitely past" false (Sim.Truetime.after tt 40_000));
  Sim.Engine.run e

let test_truetime_zero_epsilon () =
  let e = Sim.Engine.create () in
  let tt = Sim.Truetime.create e ~epsilon_us:0 in
  Sim.Engine.schedule e ~after:123 (fun () ->
      let iv = Sim.Truetime.now tt in
      check int "pointlike earliest" 123 iv.Sim.Truetime.earliest;
      check int "pointlike latest" 123 iv.Sim.Truetime.latest);
  Sim.Engine.run e

(* ------------------------------------------------------------------ *)
(* Station                                                             *)
(* ------------------------------------------------------------------ *)

let test_station_queueing () =
  let e = Sim.Engine.create () in
  let st = Sim.Station.create e ~service_time_us:10 in
  let finish = Array.make 3 (-1) in
  for i = 0 to 2 do
    Sim.Station.submit st (fun () -> finish.(i) <- Sim.Engine.now e)
  done;
  Sim.Engine.run e;
  check (Alcotest.array int) "serialized" [| 10; 20; 30 |] finish;
  check int "busy time" 30 (Sim.Station.busy_us st);
  check int "jobs" 3 (Sim.Station.jobs st)

let test_station_idle_gap () =
  let e = Sim.Engine.create () in
  let st = Sim.Station.create e ~service_time_us:10 in
  let t2 = ref (-1) in
  Sim.Station.submit st (fun () -> ());
  Sim.Engine.schedule e ~after:100 (fun () ->
      Sim.Station.submit st (fun () -> t2 := Sim.Engine.now e));
  Sim.Engine.run e;
  check int "idle station starts immediately" 110 !t2

let test_station_zero_cost () =
  let e = Sim.Engine.create () in
  let st = Sim.Station.create e ~service_time_us:0 in
  let ran = ref false in
  Sim.Station.submit st (fun () -> ran := true);
  check bool "runs synchronously" true !ran

(* ------------------------------------------------------------------ *)
(* Fiber                                                               *)
(* ------------------------------------------------------------------ *)

let test_fiber_sequencing () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  Sim.Fiber.spawn (fun () ->
      log := "a" :: !log;
      Sim.Fiber.sleep e 100;
      log := "b" :: !log;
      Sim.Fiber.sleep e 100;
      log := "c" :: !log);
  check (Alcotest.list Alcotest.string) "ran to first suspension" [ "a" ]
    (List.rev !log);
  Sim.Engine.run e;
  check (Alcotest.list Alcotest.string) "sequenced" [ "a"; "b"; "c" ] (List.rev !log);
  check int "time advanced" 200 (Sim.Engine.now e)

let test_fiber_await_value () =
  let e = Sim.Engine.create () in
  let got = ref 0 in
  Sim.Fiber.spawn (fun () ->
      let v =
        Sim.Fiber.await (fun k -> Sim.Engine.schedule e ~after:50 (fun () -> k 42))
      in
      got := v);
  Sim.Engine.run e;
  check int "value delivered" 42 !got

let test_fiber_interleaving () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  let fiber name delay =
    Sim.Fiber.spawn (fun () ->
        Sim.Fiber.sleep e delay;
        log := name :: !log;
        Sim.Fiber.sleep e delay;
        log := name :: !log)
  in
  fiber "slow" 30;
  fiber "fast" 10;
  Sim.Engine.run e;
  check (Alcotest.list Alcotest.string) "interleaved by time"
    [ "fast"; "fast"; "slow"; "slow" ] (List.rev !log)

let test_fiber_double_resume_rejected () =
  let e = Sim.Engine.create () in
  let raised = ref false in
  Sim.Fiber.spawn (fun () ->
      ignore
        (Sim.Fiber.await (fun k ->
             Sim.Engine.schedule e ~after:1 (fun () -> k 1);
             Sim.Engine.schedule e ~after:2 (fun () ->
                 match k 2 with
                 | () -> ()
                 | exception Invalid_argument _ -> raised := true))));
  Sim.Engine.run e;
  check bool "second resume rejected" true !raised

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_recorder_percentiles () =
  let r = Stats.Recorder.create () in
  for i = 1 to 100 do
    Stats.Recorder.add r (i * 1000)
  done;
  check bool "p50" true (abs_float (Stats.Recorder.percentile r 50.0 -. 50_500.0) < 1.0);
  check bool "p0 = min" true (Stats.Recorder.percentile r 0.0 = 1000.0);
  check bool "p100 = max" true (Stats.Recorder.percentile r 100.0 = 100_000.0);
  check int "min" 1000 (Stats.Recorder.min r);
  check int "max" 100_000 (Stats.Recorder.max r);
  check bool "mean" true (abs_float (Stats.Recorder.mean r -. 50_500.0) < 1.0)

let test_recorder_single () =
  let r = Stats.Recorder.create () in
  Stats.Recorder.add r 7;
  check bool "all percentiles = sample" true
    (List.for_all
       (fun p -> Stats.Recorder.percentile r p = 7.0)
       [ 0.0; 50.0; 99.9; 100.0 ])

let test_recorder_empty () =
  let r = Stats.Recorder.create () in
  check bool "empty" true (Stats.Recorder.is_empty r);
  Alcotest.check_raises "percentile raises"
    (Invalid_argument "Recorder.percentile: empty") (fun () ->
      ignore (Stats.Recorder.percentile r 50.0))

let test_recorder_unsorted_inserts () =
  let r = Stats.Recorder.create () in
  List.iter (Stats.Recorder.add r) [ 5; 1; 9; 3; 7 ];
  check (Alcotest.array int) "sorted view" [| 1; 3; 5; 7; 9 |]
    (Stats.Recorder.to_sorted_array r);
  (* Interleave queries and inserts: sorting must be re-done. *)
  ignore (Stats.Recorder.percentile r 50.0);
  Stats.Recorder.add r 0;
  check int "new min visible" 0 (Stats.Recorder.min r)

let test_recorder_merge () =
  let a = Stats.Recorder.create () and b = Stats.Recorder.create () in
  List.iter (Stats.Recorder.add a) [ 1; 2; 3 ];
  List.iter (Stats.Recorder.add b) [ 4; 5 ];
  let m = Stats.Recorder.merge a b in
  check int "merged count" 5 (Stats.Recorder.count m);
  check int "merged max" 5 (Stats.Recorder.max m)

let prop_recorder_percentile_monotone =
  QCheck.Test.make ~name:"percentiles monotone in p" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (int_range 0 10_000))
    (fun xs ->
      let r = Stats.Recorder.create () in
      List.iter (Stats.Recorder.add r) xs;
      let ps = [ 0.0; 10.0; 25.0; 50.0; 75.0; 90.0; 99.0; 100.0 ] in
      let vs = List.map (Stats.Recorder.percentile r) ps in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | [ _ ] | [] -> true
      in
      mono vs)

let prop_recorder_percentile_bounded =
  QCheck.Test.make ~name:"percentile within [min,max]" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 50) (int_range 0 10_000)) (float_range 0.0 100.0))
    (fun (xs, p) ->
      let r = Stats.Recorder.create () in
      List.iter (Stats.Recorder.add r) xs;
      let v = Stats.Recorder.percentile r p in
      v >= float_of_int (Stats.Recorder.min r)
      && v <= float_of_int (Stats.Recorder.max r))

let test_summary_helpers () =
  check bool "improvement" true
    (abs_float (Stats.Summary.improvement ~baseline:200.0 ~variant:100.0 -. 50.0) < 1e-9);
  check bool "throughput" true
    (abs_float (Stats.Summary.throughput ~count:500 ~duration_us:1_000_000 -. 500.0) < 1e-9)

let qt = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "sim.heap",
      [
        Alcotest.test_case "orders elements" `Quick test_heap_order;
        Alcotest.test_case "empty behaviour" `Quick test_heap_empty;
        Alcotest.test_case "keeps duplicates" `Quick test_heap_duplicates;
        Alcotest.test_case "clear then reuse" `Quick test_heap_clear_reuse;
        qt prop_heap_sorts;
        qt prop_heap_stable_tiebreak;
      ] );
    ( "sim.engine",
      [
        Alcotest.test_case "time ordering" `Quick test_engine_ordering;
        Alcotest.test_case "FIFO at same time" `Quick test_engine_fifo_same_time;
        Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
        Alcotest.test_case "run ~until" `Quick test_engine_until;
        Alcotest.test_case "past schedule clamps" `Quick test_engine_past_schedule;
        Alcotest.test_case "time conversions" `Quick test_time_conversions;
        qt prop_engine_stable_order;
        qt prop_engine_slot_reuse;
      ] );
    ( "sim.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "exponential mean" `Slow test_rng_exponential_mean;
        Alcotest.test_case "bernoulli bias" `Slow test_rng_bool_bias;
        qt prop_rng_int_range;
        qt prop_rng_exponential_positive;
      ] );
    ( "sim.net",
      [
        Alcotest.test_case "one-way delay" `Quick test_net_delay;
        Alcotest.test_case "local delay" `Quick test_net_local_delay;
        Alcotest.test_case "triangular matrix" `Quick test_net_triangular_matrix;
        Alcotest.test_case "jitter bounds" `Quick test_net_jitter_bounds;
        Alcotest.test_case "message accounting" `Quick test_net_message_accounting;
      ] );
    ( "sim.truetime",
      [
        Alcotest.test_case "interval" `Quick test_truetime_interval;
        Alcotest.test_case "after (commit wait)" `Quick test_truetime_after;
        Alcotest.test_case "zero epsilon" `Quick test_truetime_zero_epsilon;
      ] );
    ( "sim.station",
      [
        Alcotest.test_case "queueing" `Quick test_station_queueing;
        Alcotest.test_case "idle gap" `Quick test_station_idle_gap;
        Alcotest.test_case "zero cost" `Quick test_station_zero_cost;
      ] );
    ( "sim.fiber",
      [
        Alcotest.test_case "sequencing" `Quick test_fiber_sequencing;
        Alcotest.test_case "await value" `Quick test_fiber_await_value;
        Alcotest.test_case "interleaving" `Quick test_fiber_interleaving;
        Alcotest.test_case "double resume" `Quick test_fiber_double_resume_rejected;
      ] );
    ( "stats",
      [
        Alcotest.test_case "percentiles" `Quick test_recorder_percentiles;
        Alcotest.test_case "single sample" `Quick test_recorder_single;
        Alcotest.test_case "empty recorder" `Quick test_recorder_empty;
        Alcotest.test_case "interleaved insert/query" `Quick test_recorder_unsorted_inserts;
        Alcotest.test_case "merge" `Quick test_recorder_merge;
        Alcotest.test_case "summary helpers" `Quick test_summary_helpers;
        qt prop_recorder_percentile_monotone;
        qt prop_recorder_percentile_bounded;
      ] );
  ]
