(* Tests for the Spanner / Spanner-RSS protocols: basic transaction
   semantics, the Fig. 4 blocking/non-blocking behaviour that motivates
   RSS, wound-wait under contention, and end-to-end witness checking of
   randomized runs in both modes. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let mk ?(mode = Spanner.Config.Rss) ?(seed = 42) () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make seed in
  let config = Spanner.Config.wan3 ~mode () in
  let cluster = Spanner.Cluster.create engine ~rng config in
  (engine, cluster)

let run = Sim.Engine.run

(* ------------------------------------------------------------------ *)
(* Config                                                              *)
(* ------------------------------------------------------------------ *)

let test_config_replication_latency () =
  let c = Spanner.Config.wan3 ~mode:Spanner.Config.Rss () in
  (* CA leader replicates to VA (62) and IR (136); majority needs the
     nearest ack: 62 ms. *)
  check int "CA majority" 62_000 (Spanner.Config.replicate_us c ~shard:0);
  check int "VA majority" 62_000 (Spanner.Config.replicate_us c ~shard:1);
  check int "IR majority" 68_000 (Spanner.Config.replicate_us c ~shard:2)

let test_config_coordinator_choice () =
  let c = Spanner.Config.wan3 ~mode:Spanner.Config.Rss () in
  let coord, lat =
    Spanner.Config.estimate_commit_latency_us c ~client_site:0 ~participants:[ 0; 1 ]
  in
  (* Client in CA, participants CA+VA. Coord CA: VA path = 31+62+31 = 124,
     then CA repl 62 + 0.1 back => ~186.1; Coord VA: CA path = 0.1+62+31,
     client->VA 31; slowest 93.1, + VA repl 62 + 31 back = 186.1. Either
     choice ~186ms. *)
  check bool "latency plausible" true (lat > 150_000 && lat < 220_000);
  check bool "coordinator among participants" true (coord = 0 || coord = 1)

let test_single_dc_config () =
  let c = Spanner.Config.single_dc ~mode:Spanner.Config.Strict ~n_shards:8 ~service_time_us:20 () in
  check int "shards" 8 c.Spanner.Config.n_shards;
  check int "epsilon zero" 0 c.Spanner.Config.epsilon_us;
  check int "replication fast" 200 (Spanner.Config.replicate_us c ~shard:0)

(* ------------------------------------------------------------------ *)
(* Basic transactions                                                  *)
(* ------------------------------------------------------------------ *)

let test_rw_then_ro () =
  let engine, cluster = mk () in
  let client = Spanner.Client.create cluster ~site:0 in
  let got = ref None in
  Spanner.Client.rw_kv client ~read_keys:[] ~writes:[ (1, 101); (2, 102) ] (fun res ->
      Spanner.Client.ro client ~keys:[ 1; 2 ] (fun ro ->
          got := Some (res, ro)));
  run engine;
  match !got with
  | None -> Alcotest.fail "transactions did not complete"
  | Some (res, ro) ->
    check bool "ro sees both writes" true
      (List.for_all
         (fun (key, v) -> v = Some (100 + key))
         ro.Spanner.Protocol.ro_reads);
    check int "two keys" 2 (List.length ro.Spanner.Protocol.ro_reads);
    check bool "commit ts positive" true (res.Spanner.Protocol.rw_commit_ts > 0)

let test_ro_empty_db () =
  let engine, cluster = mk () in
  let client = Spanner.Client.create cluster ~site:1 in
  let got = ref None in
  Spanner.Client.ro client ~keys:[ 7; 8; 9 ] (fun ro -> got := Some ro);
  run engine;
  match !got with
  | None -> Alcotest.fail "ro did not complete"
  | Some ro ->
    check bool "all nil" true
      (List.for_all (fun (_, v) -> v = None) ro.Spanner.Protocol.ro_reads)

let test_rw_reads_previous_write () =
  let engine, cluster = mk () in
  let c1 = Spanner.Client.create cluster ~site:0 in
  let c2 = Spanner.Client.create cluster ~site:2 in
  let observed = ref [] in
  Spanner.Client.rw_kv c1 ~read_keys:[] ~writes:[ (5, 55) ] (fun _ ->
      Spanner.Client.rw_kv c2 ~read_keys:[ 5 ] ~writes:[ (5, 56) ] (fun r2 ->
          observed := [ r2.Spanner.Protocol.rw_reads ]));
  run engine;
  match !observed with
  | [ [ (5, Some v) ] ] -> check int "rw read sees first write" 55 v
  | _ -> Alcotest.fail "unexpected read results"

let test_commit_wait_bounds_latency () =
  (* A write-only transaction still pays commit wait (~2ε) plus replication:
     it can never complete faster than replication + commit wait. *)
  let engine, cluster = mk () in
  let client = Spanner.Client.create cluster ~site:0 in
  let t0 = ref 0 and t1 = ref 0 in
  Spanner.Client.rw client ~read_keys:[] ~write_keys:[ 0 ] (fun _ ->
      t1 := Sim.Engine.now engine);
  t0 := Sim.Engine.now engine;
  run engine;
  let lat = !t1 - !t0 in
  (* shard 0 leader in CA, client in CA: ~0.1 ms + max(62 ms replication,
     commit wait — which overlaps replication, as in Spanner) + 0.1 ms. *)
  check bool "latency >= replication" true (lat >= 62_000);
  check bool "latency sane" true (lat < 150_000)

let test_session_read_your_writes () =
  let engine, cluster = mk () in
  let client = Spanner.Client.create cluster ~site:0 in
  let ok = ref false in
  let rec chain n =
    if n = 0 then ok := true
    else
      Spanner.Client.rw_kv client ~read_keys:[] ~writes:[ (n, 1000 + n) ] (fun _ ->
          Spanner.Client.ro client ~keys:[ n ] (fun ro ->
              (match ro.Spanner.Protocol.ro_reads with
              | [ (_, Some v) ] when v = 1000 + n -> ()
              | _ -> Alcotest.fail "did not read own write");
              chain (n - 1)))
  in
  chain 5;
  run engine;
  check bool "chain completed" true !ok

(* ------------------------------------------------------------------ *)
(* Fig. 4: RSS RO returns old values instead of blocking               *)
(* ------------------------------------------------------------------ *)

(* Start a RW transaction on [keys], and while its 2PC is in flight, issue a
   causally-unrelated RO on the same keys. Returns (ro latency, ro values,
   rw commit time ts). The RW commit is slowed naturally by WAN replication;
   we time the RO issued mid-flight. *)
let concurrent_ro_experiment ~mode =
  let engine, cluster = mk ~mode () in
  let writer = Spanner.Client.create cluster ~site:0 in
  let reader = Spanner.Client.create cluster ~site:1 in
  let keys = [ 0; 1 ] in
  (* two shards: CA and VA *)
  let ro_latency = ref (-1) in
  let ro_values = ref [] in
  let rw_done_at = ref (-1) in
  Spanner.Client.rw writer ~read_keys:[] ~write_keys:keys (fun _ ->
      rw_done_at := Sim.Engine.now engine);
  (* Prepares reach both shards within ~35 ms (one-way + jitter); commit
     takes several RTTs. Fire the RO at 80 ms: safely mid-2PC. *)
  Sim.Engine.schedule engine ~after:80_000 (fun () ->
      let t0 = Sim.Engine.now engine in
      Spanner.Client.ro reader ~keys (fun ro ->
          ro_latency := Sim.Engine.now engine - t0;
          ro_values := ro.Spanner.Protocol.ro_reads));
  run engine;
  (!ro_latency, !ro_values, !rw_done_at)

let test_fig4_rss_does_not_block () =
  let lat, values, rw_done = concurrent_ro_experiment ~mode:Spanner.Config.Rss in
  check bool "rw completed" true (rw_done > 0);
  (* The RO must return quickly: one round to the furthest shard (VA->CA
     31ms each way; client in VA, shard1 local) — well under the RW's
     remaining commit time. It reads the OLD (nil) values. *)
  check bool "ro fast (no blocking)" true (lat < 75_000);
  check bool "ro returned old values" true (List.for_all (fun (_, v) -> v = None) values)

let test_fig4_strict_blocks () =
  let lat_strict, values, _ = concurrent_ro_experiment ~mode:Spanner.Config.Strict in
  let lat_rss, _, _ = concurrent_ro_experiment ~mode:Spanner.Config.Rss in
  (* Strict mode must wait for the conflicting prepared transaction to
     resolve. (It may still return the old values afterwards — the RW is
     concurrent with the RO, and t_read precedes the commit timestamp — the
     cost of strict serializability here is the blocking, Fig. 4.) *)
  check bool "strict slower than rss" true (lat_strict > lat_rss + 20_000);
  check bool "values form a snapshot" true
    (List.for_all (fun (_, v) -> v = None) values
    || List.for_all (fun (_, v) -> v <> None) values)

let test_rss_ro_blocks_when_tee_passed () =
  (* If the RO starts after the writer's earliest end estimate has passed,
     even RSS must block (condition t_ee <= t_read in Alg. 2). We fire the
     RO very late in the 2PC, just before commit lands: t_ee has passed. *)
  let engine, cluster = mk ~mode:Spanner.Config.Rss () in
  let writer = Spanner.Client.create cluster ~site:0 in
  let reader = Spanner.Client.create cluster ~site:0 in
  let rw_done_at = ref (-1) in
  let ro_values = ref [] in
  Spanner.Client.rw writer ~read_keys:[] ~write_keys:[ 0; 1 ] (fun _ ->
      rw_done_at := Sim.Engine.now engine);
  (* Issue the RO ~5ms before the RW is expected to finish (~190-210ms). The
     estimate t_ee is necessarily <= the actual end, so the shard blocks and
     the RO observes the writes. *)
  Sim.Engine.schedule engine ~after:185_000 (fun () ->
      Spanner.Client.ro reader ~keys:[ 0; 1 ] (fun ro ->
          ro_values := ro.Spanner.Protocol.ro_reads));
  run engine;
  check bool "rw completed" true (!rw_done_at > 0);
  check bool "late ro observes the writes" true
    (!ro_values <> [] && List.for_all (fun (_, v) -> v <> None) !ro_values)

let test_rss_session_forces_observation () =
  (* A reader that already observed the writer's commit (via t_min) must see
     it in subsequent ROs even while a second conflicting RW is in flight:
     the tp <= t_min condition. Simpler session property: after reading a
     value, re-reading never goes backwards, even mid-contention. *)
  let engine, cluster = mk ~mode:Spanner.Config.Rss () in
  let writer = Spanner.Client.create cluster ~site:0 in
  let reader = Spanner.Client.create cluster ~site:1 in
  let violations = ref 0 and reads_done = ref 0 in
  let last_seen = ref None in
  let rec write_loop n k =
    if n = 0 then k ()
    else
      Spanner.Client.rw writer ~read_keys:[ 3 ] ~write_keys:[ 3 ] (fun _ ->
          write_loop (n - 1) k)
  in
  let rec read_loop n =
    if n > 0 then
      Spanner.Client.ro reader ~keys:[ 3 ] (fun ro ->
          incr reads_done;
          (match (ro.Spanner.Protocol.ro_reads, !last_seen) with
          | [ (_, v) ], Some prev ->
            (* writer ids increase over time; going backwards = violation *)
            let n' = match v with None -> -1 | Some x -> x in
            let p = match prev with None -> -1 | Some x -> x in
            if n' < p then incr violations;
            last_seen := Some v
          | [ (_, v) ], None -> last_seen := Some v
          | _ -> ());
          read_loop (n - 1))
  in
  write_loop 10 (fun () -> ());
  read_loop 20;
  run engine;
  check bool "some reads happened" true (!reads_done = 20);
  check int "session never reads backwards" 0 !violations

let test_snapshot_reads_time_travel () =
  let engine, cluster = mk () in
  let c = Spanner.Client.create cluster ~site:0 in
  let history = ref [] in
  Spanner.Client.rw_kv c ~read_keys:[] ~writes:[ (9, 1) ] (fun r1 ->
      Spanner.Client.rw_kv c ~read_keys:[] ~writes:[ (9, 2) ] (fun r2 ->
          let t1 = r1.Spanner.Protocol.rw_commit_ts in
          let t2 = r2.Spanner.Protocol.rw_commit_ts in
          (* Read before t1, between t1 and t2, and at t2. *)
          Spanner.Client.snapshot_read c ~ts:(t1 - 1) ~keys:[ 9 ] (fun v0 ->
              Spanner.Client.snapshot_read c ~ts:t1 ~keys:[ 9 ] (fun v1 ->
                  Spanner.Client.snapshot_read c ~ts:t2 ~keys:[ 9 ] (fun v2 ->
                      history := [ v0; v1; v2 ])))));
  run engine;
  match !history with
  | [ [ (9, None) ]; [ (9, Some 1) ]; [ (9, Some 2) ] ] -> ()
  | _ -> Alcotest.fail "snapshot reads did not time-travel"

let test_snapshot_read_blocks_on_prepared () =
  (* A snapshot read at a timestamp a prepared transaction could still
     commit under must wait for the outcome. *)
  let engine, cluster = mk () in
  let writer = Spanner.Client.create cluster ~site:0 in
  let reader = Spanner.Client.create cluster ~site:1 in
  let got = ref None in
  Spanner.Client.rw_kv writer ~read_keys:[] ~writes:[ (0, 5); (1, 6) ] (fun _ -> ());
  (* At 150 ms the commit timestamp (~134 ms + eps) is already chosen but the
     shards are still prepared (commit wait + propagation run to ~210+ ms).
     A snapshot read at 500 ms covers the commit timestamp, so it must block
     on the prepared transactions and then observe the writes. *)
  Sim.Engine.schedule engine ~after:150_000 (fun () ->
      Spanner.Client.snapshot_read reader ~ts:500_000 ~keys:[ 0; 1 ] (fun vs ->
          got := Some (Sim.Engine.now engine, vs)));
  run engine;
  match !got with
  | Some (at, vs) ->
    check bool "waited for the commit" true (at > 200_000);
    check bool "sees the writes" true
      (List.sort compare vs = [ (0, Some 5); (1, Some 6) ])
  | None -> Alcotest.fail "did not complete"

(* ------------------------------------------------------------------ *)
(* Contention / wound-wait                                             *)
(* ------------------------------------------------------------------ *)

let test_contention_drains () =
  (* Many clients hammering the same two keys: wound-wait must keep the
     system live (every transaction eventually commits; the engine drains). *)
  let engine, cluster = mk ~seed:7 () in
  let committed = ref 0 in
  for i = 0 to 19 do
    let client = Spanner.Client.create cluster ~site:(i mod 3) in
    Sim.Engine.schedule engine ~after:(i * 1_000) (fun () ->
        Spanner.Client.rw client ~read_keys:[ 0; 1 ] ~write_keys:[ 0; 1 ] (fun _ ->
            incr committed))
  done;
  Sim.Engine.run ~max_events:5_000_000 engine;
  check int "all committed" 20 !committed;
  check int "engine drained" 0 (Sim.Engine.pending engine)

let test_contention_serializes_conflicts () =
  (* Conflicting read-modify-write transactions on one key must see strictly
     increasing chains: each reads the previous writer. *)
  let engine, cluster = mk ~seed:11 () in
  let seen = ref [] in
  for i = 0 to 9 do
    let client = Spanner.Client.create cluster ~site:(i mod 3) in
    Sim.Engine.schedule engine ~after:(i * 500) (fun () ->
        Spanner.Client.rw client ~read_keys:[ 4 ] ~write_keys:[ 4 ] (fun res ->
            seen := (res.Spanner.Protocol.rw_commit_ts, res.Spanner.Protocol.rw_reads) :: !seen))
  done;
  Sim.Engine.run ~max_events:5_000_000 engine;
  check int "all committed" 10 (List.length !seen);
  (* Sort by commit ts; reads must chain: each sees some earlier writer. *)
  let by_ts = List.sort compare !seen in
  let rec distinct = function
    | (a, _) :: ((b, _) :: _ as rest) -> a < b && distinct rest
    | [ _ ] | [] -> true
  in
  check bool "commit timestamps strictly increase" true (distinct by_ts);
  match Spanner.Cluster.check_history cluster with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_replica_crash_tolerated () =
  (* One shard replicated at sites 0 (leader), 1 and 2: majority 2. With
     site 2 down, prepares and commits still replicate via site 1. *)
  let engine = Sim.Engine.create () in
  let base = Spanner.Config.wan3 ~mode:Spanner.Config.Rss () in
  let config =
    {
      base with
      Spanner.Config.n_shards = 1;
      leader_site = [| 0 |];
      replica_sites = [| [ 1; 2 ] |];
    }
  in
  let cluster = Spanner.Cluster.create engine ~rng:(Sim.Rng.make 3) config in
  Sim.Net.set_down (Spanner.Cluster.net cluster) 2;
  let c = Spanner.Client.create cluster ~site:0 in
  let seen = ref None in
  Spanner.Client.rw_kv c ~read_keys:[] ~writes:[ (0, 7) ] (fun _ ->
      Spanner.Client.ro c ~keys:[ 0 ] (fun ro -> seen := Some ro.Spanner.Protocol.ro_reads));
  Sim.Engine.run ~max_events:2_000_000 engine;
  check bool "commit survives a replica crash" true (!seen = Some [ (0, Some 7) ]);
  match Spanner.Cluster.check_history cluster with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Fences                                                              *)
(* ------------------------------------------------------------------ *)

let test_fence_waits_out_window () =
  let engine, cluster = mk ~mode:Spanner.Config.Rss () in
  let client = Spanner.Client.create cluster ~site:0 in
  let fenced_at = ref (-1) in
  Spanner.Client.rw client ~read_keys:[] ~write_keys:[ 0 ] (fun res ->
      let tc = res.Spanner.Protocol.rw_commit_ts in
      Spanner.Client.fence client (fun () ->
          fenced_at := Sim.Engine.now engine;
          (* After the fence, tc + L must definitely be in the past. *)
          check bool "fence waited past t_min + L" true
            (!fenced_at > tc + 400_000)));
  run engine;
  check bool "fence completed" true (!fenced_at > 0)

let test_fence_noop_when_old () =
  let engine, cluster = mk ~mode:Spanner.Config.Rss () in
  let client = Spanner.Client.create cluster ~site:0 in
  (* t_min = 0: the window 0 + L has passed once now > L + ε. *)
  let done_at = ref (-1) in
  Sim.Engine.schedule engine ~after:500_000 (fun () ->
      let t0 = Sim.Engine.now engine in
      Spanner.Client.fence client (fun () ->
          done_at := Sim.Engine.now engine - t0));
  run engine;
  check int "no wait" 0 !done_at

(* ------------------------------------------------------------------ *)
(* Randomized end-to-end runs + witness checking                       *)
(* ------------------------------------------------------------------ *)

let random_run ~mode ~seed ~n_clients ~n_keys ~until =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make seed in
  let config = Spanner.Config.wan3 ~mode () in
  let cluster = Spanner.Cluster.create engine ~rng config in
  let wl_rng = Sim.Rng.split rng in
  let retwis = Workload.Retwis.create ~rng:wl_rng ~n_keys ~theta:0.9 in
  let body ~client:_ k =
    ignore k;
    ()
  in
  ignore body;
  let clients =
    Array.init n_clients (fun i -> Spanner.Client.create cluster ~site:(i mod 3))
  in
  Workload.Client_model.closed_loop engine ~n_clients
    ~body:(fun ~client k ->
      let c = clients.(client) in
      let txn = Workload.Retwis.sample retwis in
      if Workload.Retwis.is_read_only txn then
        Spanner.Client.ro c ~keys:txn.Workload.Retwis.read_keys (fun _ -> k ())
      else
        Spanner.Client.rw c ~read_keys:txn.Workload.Retwis.read_keys
          ~write_keys:txn.Workload.Retwis.write_keys (fun _ -> k ()))
    ~until ();
  Sim.Engine.run ~max_events:20_000_000 engine;
  cluster

let test_random_run_rss_witness () =
  let cluster =
    random_run ~mode:Spanner.Config.Rss ~seed:3 ~n_clients:12 ~n_keys:2000
      ~until:(Sim.Engine.sec 20.0)
  in
  let stats = Spanner.Cluster.stats cluster in
  check bool "meaningful load" true (stats.Spanner.Cluster.rw_committed > 100);
  check bool "ROs ran" true (stats.Spanner.Cluster.ro_count > 100);
  match Spanner.Cluster.check_history cluster with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("RSS witness violated: " ^ m)

let test_random_run_strict_witness () =
  let cluster =
    random_run ~mode:Spanner.Config.Strict ~seed:5 ~n_clients:12 ~n_keys:2000
      ~until:(Sim.Engine.sec 20.0)
  in
  let stats = Spanner.Cluster.stats cluster in
  check bool "meaningful load" true (stats.Spanner.Cluster.rw_committed > 100);
  match Spanner.Cluster.check_history cluster with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("strict witness violated: " ^ m)

let test_rss_avoids_blocking_vs_strict () =
  let c_rss =
    random_run ~mode:Spanner.Config.Rss ~seed:9 ~n_clients:12 ~n_keys:20
      ~until:(Sim.Engine.sec 20.0)
  in
  let c_strict =
    random_run ~mode:Spanner.Config.Strict ~seed:9 ~n_clients:12 ~n_keys:20
      ~until:(Sim.Engine.sec 20.0)
  in
  let s_rss = Spanner.Cluster.stats c_rss in
  let s_strict = Spanner.Cluster.stats c_strict in
  (* The same seed yields comparable load; RSS must block ROs at shards
     less often than strict. *)
  check bool "strict blocks ROs" true (s_strict.Spanner.Cluster.ro_blocked_at_shards > 0);
  check bool "rss blocks less" true
    (s_rss.Spanner.Cluster.ro_blocked_at_shards
    < s_strict.Spanner.Cluster.ro_blocked_at_shards)


let test_stop_failure_history () =
  (* A writer that dies before its response: its committed writes stay
     visible; the history (with the incomplete record) must still verify,
     and readers may observe the orphaned values. *)
  let engine, cluster = mk ~mode:Spanner.Config.Rss ~seed:51 () in
  let ghost = Spanner.Client.create cluster ~site:0 in
  let reader = Spanner.Client.create cluster ~site:1 in
  Spanner.Client.rw_detached ghost ~write_keys:[ 3; 4 ];
  let saw = ref 0 in
  Sim.Engine.schedule engine ~after:800_000 (fun () ->
      Spanner.Client.ro reader ~keys:[ 3; 4 ] (fun ro ->
          saw :=
            List.length
              (List.filter (fun (_, v) -> v <> None) ro.Spanner.Protocol.ro_reads)));
  run engine;
  check int "orphaned writes visible" 2 !saw;
  match Spanner.Cluster.check_history cluster with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("history with stop failure: " ^ m)

let test_determinism () =
  (* Identical seeds must give bit-identical runs — the reproducibility
     guarantee every experiment relies on. *)
  let run () =
    let c =
      random_run ~mode:Spanner.Config.Rss ~seed:31 ~n_clients:6 ~n_keys:500
        ~until:(Sim.Engine.sec 5.0)
    in
    let s = Spanner.Cluster.stats c in
    ( s.Spanner.Cluster.rw_committed,
      s.Spanner.Cluster.ro_count,
      s.Spanner.Cluster.rw_aborted_attempts,
      s.Spanner.Cluster.messages,
      Array.length (Spanner.Cluster.records c) )
  in
  let a = run () and b = run () in
  check bool "identical stats" true (a = b)

let test_small_run_exact_search () =
  (* Cross-validate the timestamp witness against the exact search checker
     on a small run: convert the recorded history and check the
     corresponding model. *)
  List.iter
    (fun (mode, model) ->
      let engine = Sim.Engine.create () in
      let rng = Sim.Rng.make 77 in
      let cluster = Spanner.Cluster.create engine ~rng (Spanner.Config.wan3 ~mode ()) in
      let clients = Array.init 3 (fun i -> Spanner.Client.create cluster ~site:i) in
      let wl = Sim.Rng.split rng in
      Workload.Client_model.closed_loop engine ~n_clients:3
        ~body:(fun ~client k ->
          let c = clients.(client) in
          if Sim.Rng.bool wl 0.5 then
            Spanner.Client.ro c ~keys:[ Sim.Rng.int wl 3 ] (fun _ -> k ())
          else
            Spanner.Client.rw c ~read_keys:[ Sim.Rng.int wl 3 ]
              ~write_keys:[ Sim.Rng.int wl 3 ] (fun _ -> k ()))
        ~until:900_000 ();
      Sim.Engine.run ~max_events:5_000_000 engine;
      (match Spanner.Cluster.check_history cluster with
      | Ok () -> ()
      | Error m -> Alcotest.fail ("witness: " ^ m));
      let records = Spanner.Cluster.records cluster in
      let n = Array.length records in
      check bool "small but non-trivial" true (n > 4 && n < 30);
      let txns =
        Array.to_list records
        |> List.mapi (fun i (r : Rss_core.Witness.txn) ->
               {
                 Rss_core.Txn_history.id = i;
                 proc = r.Rss_core.Witness.proc;
                 reads = r.Rss_core.Witness.reads;
                 writes = r.Rss_core.Witness.writes;
                 inv = r.Rss_core.Witness.inv;
                 resp = (if r.Rss_core.Witness.resp = max_int then None else Some r.Rss_core.Witness.resp);
               })
      in
      let h = Rss_core.Txn_history.make txns in
      check bool
        (Rss_core.Check_txn.model_name model ^ " (search) accepts the run")
        true
        (Rss_core.Check_txn.satisfies ~max_states:5_000_000 h model = Some true))
    [
      (Spanner.Config.Rss, Rss_core.Check_txn.Rss);
      (Spanner.Config.Strict, Rss_core.Check_txn.Strict_serializable);
    ]

let suites =
  [
    ( "spanner.config",
      [
        Alcotest.test_case "replication latency" `Quick test_config_replication_latency;
        Alcotest.test_case "coordinator choice" `Quick test_config_coordinator_choice;
        Alcotest.test_case "single-dc config" `Quick test_single_dc_config;
      ] );
    ( "spanner.basic",
      [
        Alcotest.test_case "rw then ro" `Quick test_rw_then_ro;
        Alcotest.test_case "ro on empty db" `Quick test_ro_empty_db;
        Alcotest.test_case "rw reads previous write" `Quick test_rw_reads_previous_write;
        Alcotest.test_case "commit wait bounds latency" `Quick
          test_commit_wait_bounds_latency;
        Alcotest.test_case "session read-your-writes" `Quick
          test_session_read_your_writes;
        Alcotest.test_case "snapshot reads time-travel" `Quick
          test_snapshot_reads_time_travel;
        Alcotest.test_case "snapshot read blocks on prepared" `Quick
          test_snapshot_read_blocks_on_prepared;
      ] );
    ( "spanner.fig4",
      [
        Alcotest.test_case "rss ro does not block" `Quick test_fig4_rss_does_not_block;
        Alcotest.test_case "strict ro blocks" `Quick test_fig4_strict_blocks;
        Alcotest.test_case "rss blocks once t_ee passed" `Quick
          test_rss_ro_blocks_when_tee_passed;
        Alcotest.test_case "session monotone reads" `Quick
          test_rss_session_forces_observation;
      ] );
    ( "spanner.contention",
      [
        Alcotest.test_case "wound-wait drains" `Quick test_contention_drains;
        Alcotest.test_case "conflicts serialized" `Quick
          test_contention_serializes_conflicts;
      ] );
    ( "spanner.failures",
      [
        Alcotest.test_case "replica crash tolerated" `Quick
          test_replica_crash_tolerated;
      ] );
    ( "spanner.fence",
      [
        Alcotest.test_case "fence waits out window" `Quick test_fence_waits_out_window;
        Alcotest.test_case "fence no-op when old" `Quick test_fence_noop_when_old;
      ] );
    ( "spanner.e2e",
      [
        Alcotest.test_case "rss run passes witness" `Slow test_random_run_rss_witness;
        Alcotest.test_case "strict run passes witness" `Slow
          test_random_run_strict_witness;
        Alcotest.test_case "rss blocks less than strict" `Slow
          test_rss_avoids_blocking_vs_strict;
        Alcotest.test_case "small run vs exact search checker" `Slow
          test_small_run_exact_search;
        Alcotest.test_case "determinism" `Slow test_determinism;
        Alcotest.test_case "stop failure history" `Quick test_stop_failure_history;
      ] );
  ]
