(* Cross-service composition (§4.1, Appendix C.4): multiple RSS services
   plus libRSS fences must behave like one RSS service. These tests drive
   two independent Spanner-RSS clusters through the libRSS registry. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

type services = {
  engine : Sim.Engine.t;
  users : Spanner.Cluster.t;
  billing : Spanner.Cluster.t;
}

let mk ?(seed = 1) () =
  let engine = Sim.Engine.create () in
  let mk_cluster s =
    Spanner.Cluster.create engine ~rng:(Sim.Rng.make s)
      (Spanner.Config.wan3 ~mode:Spanner.Config.Rss ())
  in
  { engine; users = mk_cluster seed; billing = mk_cluster (seed + 100) }

(* A process with one client library per service, wired through libRSS. *)
let process sv ~site =
  let u = Spanner.Client.create sv.users ~site in
  let b = Spanner.Client.create sv.billing ~site in
  let lib = Rss_core.Librss.create () in
  Rss_core.Librss.register_service lib ~name:"users"
    ~fence:(fun k -> Spanner.Client.fence u k);
  Rss_core.Librss.register_service lib ~name:"billing"
    ~fence:(fun k -> Spanner.Client.fence b k);
  (lib, u, b)

let test_fence_spans_services () =
  (* P1 writes at users, switches (libRSS fences users), writes at billing.
     P2 — causally unrelated — reads billing, then users: once P2 sees P1's
     billing write, it must see the users write: the fence guaranteed every
     users-RO after it observes t_min. *)
  let sv = mk () in
  let lib1, u1, b1 = process sv ~site:0 in
  let _lib2, u2, b2 = process sv ~site:2 in
  let outcome = ref `Pending in
  Rss_core.Librss.start_transaction lib1 ~name:"users" (fun () ->
      Spanner.Client.rw_kv u1 ~read_keys:[] ~writes:[ (1, 11) ] (fun _ ->
          Rss_core.Librss.start_transaction lib1 ~name:"billing" (fun () ->
              Spanner.Client.rw_kv b1 ~read_keys:[] ~writes:[ (2, 22) ] (fun _ ->
                  (* P2's turn: poll billing until the write is visible. *)
                  let rec poll () =
                    Spanner.Client.ro b2 ~keys:[ 2 ] (fun ro ->
                        match ro.Spanner.Protocol.ro_reads with
                        | [ (_, Some 22) ] ->
                          Spanner.Client.ro u2 ~keys:[ 1 ] (fun ro2 ->
                              outcome :=
                                (match ro2.Spanner.Protocol.ro_reads with
                                | [ (_, Some 11) ] -> `Saw_both
                                | _ -> `Cross_service_stale))
                        | _ -> poll ())
                  in
                  poll ()))));
  Sim.Engine.run sv.engine;
  check bool "fence prevents cross-service staleness" true (!outcome = `Saw_both);
  check int "one fence (users -> billing switch)" 1
    (Rss_core.Librss.fences_issued lib1)

let test_fence_only_on_switch () =
  let sv = mk ~seed:2 () in
  let lib, u, _b = process sv ~site:0 in
  let steps = ref 0 in
  let rec chain n =
    if n > 0 then
      Rss_core.Librss.start_transaction lib ~name:"users" (fun () ->
          Spanner.Client.rw_kv u ~read_keys:[] ~writes:[ (n, 100 + n) ] (fun _ ->
              incr steps;
              chain (n - 1)))
  in
  chain 5;
  Sim.Engine.run sv.engine;
  check int "all ran" 5 !steps;
  check int "no fences without switches" 0 (Rss_core.Librss.fences_issued lib)

let test_context_propagation_across_processes () =
  (* §4.2: P1 touches users then messages P2 (capturing its libRSS context
     and t_min); P2 then uses billing. P2's libRSS must fence users before
     billing, and the absorbed t_min must make P2's users-reads current. *)
  let sv = mk ~seed:3 () in
  let lib1, u1, _ = process sv ~site:0 in
  let lib2, u2, b2 = process sv ~site:1 in
  let fence_count_before = ref 0 in
  let saw = ref None in
  Rss_core.Librss.start_transaction lib1 ~name:"users" (fun () ->
      Spanner.Client.rw_kv u1 ~read_keys:[] ~writes:[ (5, 55) ] (fun _ ->
          (* message: context + store metadata travel to P2 *)
          let ctx = Rss_core.Librss.capture lib1 in
          Spanner.Client.absorb_t_min u2 (Spanner.Client.t_min u1);
          Rss_core.Librss.absorb lib2 ctx;
          fence_count_before := Rss_core.Librss.fences_issued lib2;
          Rss_core.Librss.start_transaction lib2 ~name:"billing" (fun () ->
              Spanner.Client.rw_kv b2 ~read_keys:[] ~writes:[ (6, 66) ] (fun _ ->
                  Rss_core.Librss.start_transaction lib2 ~name:"users" (fun () ->
                      Spanner.Client.ro u2 ~keys:[ 5 ] (fun ro ->
                          saw := Some ro.Spanner.Protocol.ro_reads))))));
  Sim.Engine.run sv.engine;
  check bool "P2 fenced users before billing" true
    (Rss_core.Librss.fences_issued lib2 >= !fence_count_before + 1);
  check bool "P2 sees P1's users write" true (!saw = Some [ (5, Some 55) ])

let test_histories_of_both_services_verify () =
  let sv = mk ~seed:4 () in
  let lib, u, b = process sv ~site:0 in
  let rec mix n =
    if n > 0 then
      Rss_core.Librss.start_transaction lib ~name:(if n mod 2 = 0 then "users" else "billing")
        (fun () ->
          let client = if n mod 2 = 0 then u else b in
          if n mod 3 = 0 then Spanner.Client.ro client ~keys:[ 0; 1 ] (fun _ -> mix (n - 1))
          else
            Spanner.Client.rw_kv client ~read_keys:[ 0 ]
              ~writes:[ (1, 1000 + n) ] (fun _ -> mix (n - 1)))
  in
  mix 12;
  Sim.Engine.run sv.engine;
  (match Spanner.Cluster.check_history sv.users with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("users history: " ^ m));
  match Spanner.Cluster.check_history sv.billing with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("billing history: " ^ m)

let test_cycle_without_fences_checker_level () =
  (* §4.1's motivation, at the model level: two services, each individually
     RSS, can jointly show a cycle — P1 reads x=1 then y=nil while P2 reads
     y=1 then x=nil (both writes in flight). Each service's sub-history
     satisfies RSS; the combined history does not. Fences exist precisely to
     exclude this. *)
  let w_x = Rss_core.Txn_history.rw ~id:0 ~proc:2 ~writes:[ ("x", 1) ] ~inv:0 ~resp:1_000 () in
  let w_y = Rss_core.Txn_history.rw ~id:1 ~proc:3 ~writes:[ ("y", 1) ] ~inv:0 ~resp:1_000 () in
  let p1_a = Rss_core.Txn_history.ro ~id:2 ~proc:0 ~reads:[ ("x", Some 1) ] ~inv:10 ~resp:20 () in
  let p1_b = Rss_core.Txn_history.ro ~id:3 ~proc:0 ~reads:[ ("y", None) ] ~inv:30 ~resp:40 () in
  let p2_b = Rss_core.Txn_history.ro ~id:4 ~proc:1 ~reads:[ ("y", Some 1) ] ~inv:10 ~resp:20 () in
  let p2_a = Rss_core.Txn_history.ro ~id:5 ~proc:1 ~reads:[ ("x", None) ] ~inv:30 ~resp:40 () in
  let combined = Rss_core.Txn_history.make [ w_x; w_y; p1_a; p1_b; p2_b; p2_a ] in
  check bool "combined history violates RSS (the cycle)" true
    (Rss_core.Check_txn.satisfies combined Rss_core.Check_txn.Rss = Some false);
  (* Per-service sub-histories (re-indexed) are each RSS. *)
  let service_a =
    Rss_core.Txn_history.make
      [
        Rss_core.Txn_history.rw ~id:0 ~proc:2 ~writes:[ ("x", 1) ] ~inv:0 ~resp:1_000 ();
        Rss_core.Txn_history.ro ~id:1 ~proc:0 ~reads:[ ("x", Some 1) ] ~inv:10 ~resp:20 ();
        Rss_core.Txn_history.ro ~id:2 ~proc:1 ~reads:[ ("x", None) ] ~inv:30 ~resp:40 ();
      ]
  in
  let service_b =
    Rss_core.Txn_history.make
      [
        Rss_core.Txn_history.rw ~id:0 ~proc:3 ~writes:[ ("y", 1) ] ~inv:0 ~resp:1_000 ();
        Rss_core.Txn_history.ro ~id:1 ~proc:1 ~reads:[ ("y", Some 1) ] ~inv:10 ~resp:20 ();
        Rss_core.Txn_history.ro ~id:2 ~proc:0 ~reads:[ ("y", None) ] ~inv:30 ~resp:40 ();
      ]
  in
  check bool "service A alone satisfies RSS" true
    (Rss_core.Check_txn.satisfies service_a Rss_core.Check_txn.Rss = Some true);
  check bool "service B alone satisfies RSS" true
    (Rss_core.Check_txn.satisfies service_b Rss_core.Check_txn.Rss = Some true)

let suites =
  [
    ( "composition",
      [
        Alcotest.test_case "fence spans services" `Quick test_fence_spans_services;
        Alcotest.test_case "fence only on switch" `Quick test_fence_only_on_switch;
        Alcotest.test_case "context propagation" `Quick
          test_context_propagation_across_processes;
        Alcotest.test_case "both histories verify" `Quick
          test_histories_of_both_services_verify;
        Alcotest.test_case "cross-service cycle (4.1)" `Quick
          test_cycle_without_fences_checker_level;
      ] );
  ]
