(* Seed-sweep fuzzing: many short randomized runs of each system under
   contention-heavy parameters, every one verified against its consistency
   model. These are the tests most likely to shake out protocol races
   (network jitter reorders messages differently under every seed). *)

let check = Alcotest.check
let bool = Alcotest.bool

let spanner_fuzz_one ~mode ~seed =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make seed in
  let config = Spanner.Config.wan3 ~mode () in
  let cluster = Spanner.Cluster.create engine ~rng config in
  let wl = Sim.Rng.split rng in
  (* Tiny keyspace = maximal contention; mixed shapes incl. upgrades. *)
  let clients = Array.init 8 (fun i -> Spanner.Client.create cluster ~site:(i mod 3)) in
  Workload.Client_model.closed_loop engine ~n_clients:8
    ~body:(fun ~client k ->
      let c = clients.(client) in
      let key () = Sim.Rng.int wl 6 in
      match Sim.Rng.int wl 4 with
      | 0 -> Spanner.Client.ro c ~keys:[ key (); key () ] (fun _ -> k ())
      | 1 -> Spanner.Client.ro c ~keys:[ key () ] (fun _ -> k ())
      | 2 ->
        let a = key () in
        Spanner.Client.rw c ~read_keys:[ a ] ~write_keys:[ a ] (fun _ -> k ())
      | _ ->
        let a = key () in
        let b = (a + 1 + Sim.Rng.int wl 5) mod 6 in
        Spanner.Client.rw c ~read_keys:[ key () ] ~write_keys:[ a; b ]
          (fun _ -> k ()))
    ~until:(Sim.Engine.sec 4.0) ();
  Sim.Engine.run ~max_events:20_000_000 engine;
  let drained = Sim.Engine.pending engine = 0 in
  (drained, Spanner.Cluster.check_history cluster)

let test_spanner_fuzz mode () =
  for seed = 1 to 25 do
    let drained, verdict = spanner_fuzz_one ~mode ~seed in
    check bool (Fmt.str "seed %d drained" seed) true drained;
    match verdict with
    | Ok () -> ()
    | Error m -> Alcotest.fail (Fmt.str "seed %d: %s" seed m)
  done

let gryff_fuzz_one ~mode ~seed =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make seed in
  let config = Gryff.Config.wan5 ~mode () in
  let cluster = Gryff.Cluster.create engine ~rng config in
  let wl = Sim.Rng.split rng in
  let clients = Array.init 10 (fun i -> Gryff.Client.create cluster ~site:(i mod 5)) in
  Workload.Client_model.closed_loop engine ~n_clients:10
    ~body:(fun ~client k ->
      let c = clients.(client) in
      let key = Sim.Rng.int wl 4 in
      match Sim.Rng.int wl 3 with
      | 0 -> Gryff.Client.read c ~key (fun _ -> k ())
      | 1 ->
        (* Cluster-allocated values never collide with rmw counter results
           (history checking derives reads-from from values). *)
        let value = Gryff.Cluster.fresh_value cluster in
        Gryff.Client.write c ~key ~value (fun _ -> k ())
      | _ ->
        Gryff.Client.rmw c ~key
          ~f:(fun v -> match v with None -> 1 | Some x -> x + 1)
          (fun _ -> k ()))
    ~until:(Sim.Engine.sec 4.0) ();
  Sim.Engine.run ~max_events:20_000_000 engine;
  let drained = Sim.Engine.pending engine = 0 in
  (drained, Gryff.Cluster.check_history cluster)

let test_gryff_fuzz mode () =
  for seed = 1 to 25 do
    let drained, verdict = gryff_fuzz_one ~mode ~seed in
    check bool (Fmt.str "seed %d drained" seed) true drained;
    match verdict with
    | Ok () -> ()
    | Error m -> Alcotest.fail (Fmt.str "seed %d: %s" seed m)
  done

let test_postore_fuzz () =
  for seed = 1 to 25 do
    let engine = Sim.Engine.create () in
    let store = Postore.Store.create engine ~rng:(Sim.Rng.make seed) () in
    let wl = Sim.Rng.make (seed * 17) in
    let sessions = Array.init 5 (fun _ -> Postore.Store.session store) in
    Array.iteri
      (fun i s ->
        let rec loop n =
          if n > 0 then
            let key = Fmt.str "k%d" (Sim.Rng.int wl 3) in
            if Sim.Rng.bool wl 0.5 then
              Postore.Store.rw s ~reads:[ key ]
                ~writes:[ (key, (seed * 10_000) + (i * 1_000) + n) ]
                (fun _ -> loop (n - 1))
            else Postore.Store.ro s ~keys:[ key ] (fun _ -> loop (n - 1))
        in
        loop 12)
      sessions;
    Sim.Engine.run engine;
    match Postore.Store.check_history store with
    | Ok () -> ()
    | Error m -> Alcotest.fail (Fmt.str "seed %d: %s" seed m)
  done

(* Chaos + failover combined battery: the same seed-sweep idea, but with a
   nemesis active during the run. Leader-killing presets force the failover
   machinery (elections, client deadlines, retransmission) to carry the
   workload, and every surviving history must still verify — including the
   committed-but-unacknowledged operations the audit sweeps in. *)
let chaos_presets = Chaos.Nemesis.[ Leader_kill; Mixed ]

let test_chaos_fuzz protocol () =
  List.iter
    (fun preset ->
      for seed = 1 to 5 do
        let duration_s = 4.0 in
        let schedule =
          Chaos.Audit.nemesis_schedule protocol preset ~duration_s
            ~seed:(seed * 31)
        in
        let label =
          Fmt.str "%s/%s seed %d"
            (Chaos.Audit.protocol_name protocol)
            (Chaos.Nemesis.preset_name preset)
            seed
        in
        let r =
          Chaos.Audit.run protocol ~schedule ~n_slots:6 ~failover:true
            ~duration_s ~seed ()
        in
        (match r.Chaos.Audit.check with
        | Ok () -> ()
        | Error m -> Alcotest.failf "%s: consistency violation: %s" label m);
        check bool (label ^ ": liveness resumed after heal") true
          (Chaos.Audit.liveness_ok r);
        (* The checker must keep its teeth under chaos: corrupting one read
           to a stale version has to flip the verdict. *)
        match r.Chaos.Audit.stale_control () with
        | None | Some (Error _) -> ()
        | Some (Ok ()) ->
          Alcotest.failf "%s: stale-read corruption went undetected" label
      done)
    chaos_presets

let suites =
  [
    ( "fuzz",
      [
        Alcotest.test_case "spanner strict, 25 seeds" `Slow
          (test_spanner_fuzz Spanner.Config.Strict);
        Alcotest.test_case "spanner rss, 25 seeds" `Slow
          (test_spanner_fuzz Spanner.Config.Rss);
        Alcotest.test_case "gryff lin, 25 seeds" `Slow
          (test_gryff_fuzz Gryff.Config.Lin);
        Alcotest.test_case "gryff rsc, 25 seeds" `Slow
          (test_gryff_fuzz Gryff.Config.Rsc);
        Alcotest.test_case "postore, 25 seeds" `Slow test_postore_fuzz;
      ] );
    ( "fuzz.chaos",
      List.map
        (fun p ->
          Alcotest.test_case
            (Chaos.Audit.protocol_name p ^ " under nemesis, 2x5 seeds")
            `Slow (test_chaos_fuzz p))
        Chaos.Audit.protocols );
  ]
