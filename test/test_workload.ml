(* Tests for the workload generators: Zipfian sampling (distribution shape,
   bounds), Retwis transaction mix, YCSB conflict model, and the client
   drivers. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Zipf                                                                *)
(* ------------------------------------------------------------------ *)

let test_zipf_bounds () =
  let rng = Sim.Rng.make 1 in
  let z = Workload.Zipf.create ~rng ~n:100 ~theta:0.9 in
  for _ = 1 to 10_000 do
    let k = Workload.Zipf.sample z in
    if k < 0 || k >= 100 then Alcotest.fail "out of range"
  done

let test_zipf_single_key () =
  let rng = Sim.Rng.make 1 in
  let z = Workload.Zipf.create ~rng ~n:1 ~theta:0.9 in
  check int "only key" 0 (Workload.Zipf.sample z)

let test_zipf_uniform_when_theta_zero () =
  let rng = Sim.Rng.make 2 in
  let z = Workload.Zipf.create ~rng ~n:10 ~theta:0.0 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let k = Workload.Zipf.sample z in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter
    (fun c ->
      let p = float_of_int c /. float_of_int n in
      check bool "within 2% of uniform" true (abs_float (p -. 0.1) < 0.02))
    counts

let test_zipf_skew_shape () =
  let rng = Sim.Rng.make 3 in
  let z = Workload.Zipf.create ~rng ~n:1000 ~theta:0.9 in
  let counts = Array.make 1000 0 in
  let n = 200_000 in
  for _ = 1 to n do
    let k = Workload.Zipf.sample z in
    counts.(k) <- counts.(k) + 1
  done;
  (* With theta = 0.9 the hottest key takes a few percent of mass and the
     distribution is monotone-ish: key 0 much hotter than key 100. *)
  check bool "key 0 hot" true (counts.(0) > n / 100);
  check bool "head dominates tail" true (counts.(0) > 20 * counts.(500));
  (* Empirical ratio P(0)/P(1) should be near 2^0.9 ≈ 1.87. *)
  let ratio = float_of_int counts.(0) /. float_of_int counts.(1) in
  check bool "zipf ratio plausible" true (ratio > 1.5 && ratio < 2.4)

let test_zipf_higher_theta_more_skew () =
  let sample_hot theta =
    let rng = Sim.Rng.make 4 in
    let z = Workload.Zipf.create ~rng ~n:1000 ~theta in
    let hot = ref 0 in
    for _ = 1 to 50_000 do
      if Workload.Zipf.sample z = 0 then incr hot
    done;
    !hot
  in
  check bool "0.9 skews more than 0.5" true (sample_hot 0.9 > sample_hot 0.5)

(* Distribution-level correctness: the empirical CDF over a large sample
   must track the analytic Zipf CDF P(rank ≤ k) = H_k(θ)/H_n(θ) within a
   Kolmogorov–Smirnov-style tolerance, across skews and seeds. With 100k
   samples the statistical noise is ≲0.004, so 0.015 catches any real shape
   error (wrong exponent, off-by-one rank, truncation bias) without flaking. *)
let test_zipf_empirical_cdf_matches_analytic () =
  let n_keys = 100 and n_samples = 100_000 in
  List.iter
    (fun (theta, seed) ->
      let rng = Sim.Rng.make seed in
      let z = Workload.Zipf.create ~rng ~n:n_keys ~theta in
      let counts = Array.make n_keys 0 in
      for _ = 1 to n_samples do
        let k = Workload.Zipf.sample z in
        counts.(k) <- counts.(k) + 1
      done;
      (* Analytic pmf over ranks 1..n: rank^-θ / H_n(θ). *)
      let weights =
        Array.init n_keys (fun i -> (float_of_int (i + 1)) ** -.theta)
      in
      let h_n = Array.fold_left ( +. ) 0.0 weights in
      let max_dev = ref 0.0 in
      let emp = ref 0.0 and ana = ref 0.0 in
      Array.iteri
        (fun i c ->
          emp := !emp +. (float_of_int c /. float_of_int n_samples);
          ana := !ana +. (weights.(i) /. h_n);
          let d = Float.abs (!emp -. !ana) in
          if d > !max_dev then max_dev := d)
        counts;
      if !max_dev > 0.015 then
        Alcotest.failf "theta=%.2f seed=%d: empirical CDF deviates %.4f" theta
          seed !max_dev)
    [
      (0.0, 11); (0.5, 12); (0.75, 13); (0.9, 14); (0.99, 15); (1.2, 16);
      (0.9, 99); (0.5, 77);
    ]

let test_zipf_invalid_args () =
  let rng = Sim.Rng.make 1 in
  check bool "n=0 rejected" true
    (match Workload.Zipf.create ~rng ~n:0 ~theta:0.5 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check bool "negative theta rejected" true
    (match Workload.Zipf.create ~rng ~n:5 ~theta:(-1.0) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let prop_zipf_in_range =
  QCheck.Test.make ~name:"zipf sample always in range" ~count:200
    QCheck.(pair (int_range 1 500) (float_range 0.0 1.2))
    (fun (n, theta) ->
      let rng = Sim.Rng.make (n + int_of_float (theta *. 100.0)) in
      let z = Workload.Zipf.create ~rng ~n ~theta in
      let ok = ref true in
      for _ = 1 to 50 do
        let k = Workload.Zipf.sample z in
        if k < 0 || k >= n then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Retwis                                                              *)
(* ------------------------------------------------------------------ *)

let test_retwis_mix () =
  let rng = Sim.Rng.make 5 in
  let r = Workload.Retwis.create ~rng ~n_keys:10_000 ~theta:0.75 in
  let counts = Hashtbl.create 4 in
  let n = 50_000 in
  for _ = 1 to n do
    let txn = Workload.Retwis.sample r in
    let key = Workload.Retwis.kind_name txn.Workload.Retwis.kind in
    Hashtbl.replace counts key (1 + try Hashtbl.find counts key with Not_found -> 0)
  done;
  let frac name = float_of_int (try Hashtbl.find counts name with Not_found -> 0) /. float_of_int n in
  check bool "5% add-user" true (abs_float (frac "add-user" -. 0.05) < 0.01);
  check bool "15% follow" true (abs_float (frac "follow" -. 0.15) < 0.015);
  check bool "30% post-tweet" true (abs_float (frac "post-tweet" -. 0.30) < 0.02);
  check bool "50% load-timeline" true (abs_float (frac "load-timeline" -. 0.50) < 0.02)

let test_retwis_shapes () =
  let rng = Sim.Rng.make 6 in
  let r = Workload.Retwis.create ~rng ~n_keys:1000 ~theta:0.75 in
  for _ = 1 to 5_000 do
    let txn = Workload.Retwis.sample r in
    let distinct l = List.length (List.sort_uniq compare l) = List.length l in
    if not (distinct txn.Workload.Retwis.write_keys) then
      Alcotest.fail "duplicate write keys";
    match txn.Workload.Retwis.kind with
    | Workload.Retwis.Add_user ->
      check int "add-user writes" 4 (List.length txn.Workload.Retwis.write_keys);
      check int "add-user reads" 1 (List.length txn.Workload.Retwis.read_keys)
    | Workload.Retwis.Follow ->
      check int "follow writes" 2 (List.length txn.Workload.Retwis.write_keys)
    | Workload.Retwis.Post_tweet ->
      check int "post writes" 5 (List.length txn.Workload.Retwis.write_keys);
      check int "post reads" 3 (List.length txn.Workload.Retwis.read_keys)
    | Workload.Retwis.Load_timeline ->
      check bool "timeline read-only" true (Workload.Retwis.is_read_only txn);
      let n = List.length txn.Workload.Retwis.read_keys in
      check bool "1..10 reads" true (n >= 1 && n <= 10)
  done

(* ------------------------------------------------------------------ *)
(* YCSB                                                                *)
(* ------------------------------------------------------------------ *)

let test_ycsb_ratios () =
  let rng = Sim.Rng.make 7 in
  let y = Workload.Ycsb.create ~rng ~n_keys:100_000 ~write_ratio:0.3 ~conflict:0.1 in
  let n = 100_000 in
  let writes = ref 0 and hot = ref 0 in
  for _ = 1 to n do
    let op = Workload.Ycsb.sample y in
    if op.Workload.Ycsb.is_write then incr writes;
    if op.Workload.Ycsb.key = Workload.Ycsb.hot_key then incr hot
  done;
  let fw = float_of_int !writes /. float_of_int n in
  let fh = float_of_int !hot /. float_of_int n in
  check bool "write ratio" true (abs_float (fw -. 0.3) < 0.01);
  check bool "conflict ratio" true (abs_float (fh -. 0.1) < 0.01)

let test_ycsb_invalid () =
  let rng = Sim.Rng.make 7 in
  check bool "bad write ratio" true
    (match Workload.Ycsb.create ~rng ~n_keys:10 ~write_ratio:1.5 ~conflict:0.0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Client models                                                       *)
(* ------------------------------------------------------------------ *)

let test_closed_loop () =
  let engine = Sim.Engine.create () in
  let per_client = Hashtbl.create 4 in
  Workload.Client_model.closed_loop engine ~n_clients:3
    ~body:(fun ~client k ->
      Hashtbl.replace per_client client
        (1 + try Hashtbl.find per_client client with Not_found -> 0);
      Sim.Engine.schedule engine ~after:10 k)
    ~until:100 ();
  Sim.Engine.run engine;
  (* Each client issues at t=0,10,...,90: 10 ops. *)
  Hashtbl.iter (fun _ n -> check int "ops per client" 10 n) per_client;
  check int "three clients" 3 (Hashtbl.length per_client)

let test_closed_loop_think_time () =
  let engine = Sim.Engine.create () in
  let count = ref 0 in
  Workload.Client_model.closed_loop engine ~n_clients:1 ~think_us:40
    ~body:(fun ~client:_ k ->
      incr count;
      Sim.Engine.schedule engine ~after:10 k)
    ~until:100 ();
  Sim.Engine.run engine;
  (* op at 0 (ends 10, think to 50), op at 50 (ends 60, think to 100): 2 ops
     issued before until. *)
  check int "think time slows issue rate" 2 !count

let test_partly_open_sessions () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make 8 in
  let sessions = Hashtbl.create 64 in
  let ops = ref 0 in
  ignore
    (Workload.Client_model.partly_open engine ~rng ~arrival_rate_per_sec:2000.0
       ~stay:0.9
       ~body:(fun ~client k ->
         incr ops;
         Hashtbl.replace sessions client
           (1 + try Hashtbl.find sessions client with Not_found -> 0);
         Sim.Engine.schedule engine ~after:100 k)
       ~until:(Sim.Engine.sec 1.0) ());
  Sim.Engine.run engine;
  let n_sessions = Hashtbl.length sessions in
  check bool "roughly poisson arrivals" true (n_sessions > 1_000 && n_sessions < 3_500);
  (* Mean session length should be near 1/(1-0.9) = 10. *)
  let mean = float_of_int !ops /. float_of_int n_sessions in
  check bool "mean session length near 10" true (mean > 7.0 && mean < 13.0)

let qt = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "workload.zipf",
      [
        Alcotest.test_case "bounds" `Quick test_zipf_bounds;
        Alcotest.test_case "single key" `Quick test_zipf_single_key;
        Alcotest.test_case "uniform at theta=0" `Slow test_zipf_uniform_when_theta_zero;
        Alcotest.test_case "skew shape" `Slow test_zipf_skew_shape;
        Alcotest.test_case "theta ordering" `Slow test_zipf_higher_theta_more_skew;
        Alcotest.test_case "invalid args" `Quick test_zipf_invalid_args;
        Alcotest.test_case "empirical CDF matches analytic" `Slow
          test_zipf_empirical_cdf_matches_analytic;
        qt prop_zipf_in_range;
      ] );
    ( "workload.retwis",
      [
        Alcotest.test_case "transaction mix" `Slow test_retwis_mix;
        Alcotest.test_case "transaction shapes" `Quick test_retwis_shapes;
      ] );
    ( "workload.ycsb",
      [
        Alcotest.test_case "ratios" `Slow test_ycsb_ratios;
        Alcotest.test_case "invalid args" `Quick test_ycsb_invalid;
      ] );
    ( "workload.clients",
      [
        Alcotest.test_case "closed loop" `Quick test_closed_loop;
        Alcotest.test_case "closed loop think time" `Quick test_closed_loop_think_time;
        Alcotest.test_case "partly open sessions" `Slow test_partly_open_sessions;
      ] );
  ]
