(* Tests for the PO-serializable store and the photo-sharing application —
   the machinery behind Table 1. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------------------------------------------------ *)
(* PO store                                                            *)
(* ------------------------------------------------------------------ *)

let mk_po ?(seed = 1) ?(max_staleness_us = 100_000) () =
  let engine = Sim.Engine.create () in
  let store =
    Postore.Store.create engine ~rng:(Sim.Rng.make seed) ~max_staleness_us ()
  in
  (engine, store)

let test_po_rw_ro () =
  let engine, store = mk_po () in
  let s = Postore.Store.session store in
  let got = ref None in
  Postore.Store.rw s ~reads:[] ~writes:[ ("x", 1) ] (fun _ ->
      Postore.Store.ro s ~keys:[ "x" ] (fun vs -> got := Some vs));
  Sim.Engine.run engine;
  check bool "session reads own write" true (!got = Some [ ("x", Some 1) ])

let test_po_rw_reads_latest () =
  let engine, store = mk_po () in
  let s1 = Postore.Store.session store in
  let s2 = Postore.Store.session store in
  let got = ref None in
  Postore.Store.rw s1 ~reads:[] ~writes:[ ("x", 1) ] (fun _ ->
      Postore.Store.rw s2 ~reads:[ "x" ] ~writes:[ ("y", 2) ] (fun vs ->
          got := Some vs));
  Sim.Engine.run engine;
  check bool "rw reads serialize at head" true (!got = Some [ ("x", Some 1) ])

let test_po_stale_reads_happen () =
  (* A fresh session's read may lag a completed write from another session —
     the defining weakness. With 100 ms staleness and reads 10 ms after the
     write, most trials are stale. *)
  let stale = ref 0 and trials = 30 in
  for seed = 1 to trials do
    let engine, store = mk_po ~seed () in
    let writer = Postore.Store.session store in
    Postore.Store.rw writer ~reads:[] ~writes:[ ("x", 1) ] (fun _ ->
        let reader = Postore.Store.session store in
        Sim.Engine.schedule engine ~after:10_000 (fun () ->
            Postore.Store.ro reader ~keys:[ "x" ] (fun vs ->
                if vs = [ ("x", None) ] then incr stale)));
    Sim.Engine.run engine
  done;
  check bool "stale reads observed" true (!stale > trials / 3)

let test_po_session_monotone () =
  let engine, store = mk_po ~seed:3 () in
  let writer = Postore.Store.session store in
  let reader = Postore.Store.session store in
  let values = ref [] in
  let rec writes n k =
    if n = 0 then k ()
    else Postore.Store.rw writer ~reads:[] ~writes:[ ("x", n) ] (fun _ -> writes (n - 1) k)
  in
  let rec reads n =
    if n > 0 then
      Postore.Store.ro reader ~keys:[ "x" ] (fun vs ->
          values := vs :: !values;
          reads (n - 1))
  in
  writes 10 (fun () -> ());
  reads 20;
  Sim.Engine.run engine;
  (* The writer writes 10,9,...,1: log order is descending values. The
     reader's observed log positions must be monotone, so once it sees value
     v (written at position 10 - v), later reads see v or smaller. *)
  let positions =
    List.rev_map
      (fun vs -> match vs with [ (_, Some v) ] -> 10 - v | _ -> -1)
      !values
  in
  let rec monotone prev = function
    | [] -> true
    | p :: rest -> p >= prev && monotone p rest
  in
  check bool "prefix only advances" true (monotone (-1) positions)

let test_po_fails_stronger_witness () =
  (* Force a manifestly stale read, then confirm the RSS witness flags the
     PO store's history (calibrating that the checkers catch what PO
     serializability permits). *)
  let found = ref false in
  let seed = ref 1 in
  while (not !found) && !seed < 40 do
    let engine, store = mk_po ~seed:!seed () in
    let writer = Postore.Store.session store in
    let stale_seen = ref false in
    Postore.Store.rw writer ~reads:[] ~writes:[ ("x", 1) ] (fun _ ->
        let reader = Postore.Store.session store in
        Sim.Engine.schedule engine ~after:10_000 (fun () ->
            Postore.Store.ro reader ~keys:[ "x" ] (fun vs ->
                if vs = [ ("x", None) ] then stale_seen := true)));
    Sim.Engine.run engine;
    if !stale_seen then begin
      found := true;
      (match Postore.Store.check_history store with
      | Ok () -> ()
      | Error m -> Alcotest.fail ("PO witness should accept: " ^ m));
      match Rss_core.Witness.check ~mode:`Rss (Postore.Store.records store) with
      | Ok () -> Alcotest.fail "RSS witness accepted a stale read"
      | Error _ -> ()
    end;
    incr seed
  done;
  check bool "found a stale run to test" true !found

let test_po_witness_sequential () =
  let engine, store = mk_po ~seed:5 () in
  let sessions = Array.init 4 (fun _ -> Postore.Store.session store) in
  for i = 0 to 3 do
    let s = sessions.(i) in
    let rec loop n =
      if n > 0 then
        if n mod 2 = 0 then
          Postore.Store.rw s ~reads:[ "a" ] ~writes:[ ("b", (i * 100) + n) ] (fun _ ->
              loop (n - 1))
        else Postore.Store.ro s ~keys:[ "a"; "b" ] (fun _ -> loop (n - 1))
    in
    loop 10
  done;
  Sim.Engine.run engine;
  (match Postore.Store.check_history store with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("po witness: " ^ m));
  (* And the same history generally fails the strict real-time check. *)
  let records = Postore.Store.records store in
  check bool "history non-trivial" true (Array.length records = 40)

(* ------------------------------------------------------------------ *)
(* OSC(U) registers (Appendix A.2)                                     *)
(* ------------------------------------------------------------------ *)

let osc_register_run ~seed ~n_ops =
  let engine = Sim.Engine.create () in
  let regs = Postore.Registers.create engine ~rng:(Sim.Rng.make seed) () in
  let wl = Sim.Rng.make (seed * 31) in
  let sessions = Array.init 3 (fun _ -> Postore.Registers.session regs) in
  let next_val = ref 0 in
  Array.iter
    (fun s ->
      let rec loop n =
        if n > 0 then
          let key = [| "x"; "y" |].(Sim.Rng.int wl 2) in
          if Sim.Rng.bool wl 0.5 then begin
            incr next_val;
            Postore.Registers.write s ~key ~value:!next_val (fun () -> loop (n - 1))
          end
          else Postore.Registers.read s ~key (fun _ -> loop (n - 1))
      in
      loop n_ops)
    sessions;
  Sim.Engine.run engine;
  Postore.Registers.history regs

let test_osc_registers_satisfy_oscu () =
  for seed = 1 to 10 do
    let h = osc_register_run ~seed ~n_ops:5 in
    check bool
      (Fmt.str "seed %d satisfies OSC(U)" seed)
      true
      (Rss_core.Check_reg.satisfies ~max_states:5_000_000 h Rss_core.Check_reg.Osc_u
      = Some true);
    check bool
      (Fmt.str "seed %d satisfies sequential" seed)
      true
      (Rss_core.Check_reg.satisfies ~max_states:5_000_000 h
         Rss_core.Check_reg.Sequential
      = Some true)
  done

let test_osc_registers_not_rsc () =
  (* Fig. 13's split, live: some run with a stale read violates RSC while
     still satisfying OSC(U). *)
  let found = ref false in
  let seed = ref 1 in
  while (not !found) && !seed <= 40 do
    let h = osc_register_run ~seed:!seed ~n_ops:5 in
    if
      Rss_core.Check_reg.satisfies ~max_states:5_000_000 h Rss_core.Check_reg.Rsc
      = Some false
    then begin
      found := true;
      check bool "the same run satisfies OSC(U)" true
        (Rss_core.Check_reg.satisfies ~max_states:5_000_000 h
           Rss_core.Check_reg.Osc_u
        = Some true)
    end;
    incr seed
  done;
  check bool "an RSC-violating OSC(U) run exists" true !found

(* ------------------------------------------------------------------ *)
(* Photo app over the three stores                                     *)
(* ------------------------------------------------------------------ *)

let run_app ~store_kind ~causality ~seed ~rounds =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make seed in
  let store =
    match store_kind with
    | `Strict ->
      Photoapp.App.spanner_store
        (Spanner.Cluster.create engine ~rng:(Sim.Rng.split rng)
           (Spanner.Config.wan3 ~mode:Spanner.Config.Strict ()))
    | `Rss ->
      Photoapp.App.spanner_store
        (Spanner.Cluster.create engine ~rng:(Sim.Rng.split rng)
           (Spanner.Config.wan3 ~mode:Spanner.Config.Rss ()))
    | `Po ->
      Photoapp.App.po_store
        (Postore.Store.create engine ~rng:(Sim.Rng.split rng) ())
  in
  let tally =
    Photoapp.App.run_scenarios engine ~rng ~store ~causality ~users:4 ~rounds
      ~queue_rtt_us:2_000 ~call_latency_us:1_000
  in
  Sim.Engine.run ~max_events:50_000_000 engine;
  tally

let test_app_strict_no_anomalies () =
  let t =
    run_app ~store_kind:`Strict ~causality:Photoapp.App.No_causality ~seed:42
      ~rounds:60
  in
  check bool "did work" true (t.Photoapp.App.adds > 20);
  check int "I1 holds" 0 t.Photoapp.App.i1_violations;
  check int "I2 holds" 0 t.Photoapp.App.i2_violations;
  check int "no A2" 0 t.Photoapp.App.a2_anomalies;
  check int "no A3" 0 t.Photoapp.App.a3_anomalies

let test_app_rss_invariants_hold () =
  let t =
    run_app ~store_kind:`Rss ~causality:Photoapp.App.No_causality ~seed:43
      ~rounds:60
  in
  check bool "did work" true (t.Photoapp.App.adds > 20);
  check int "I1 holds" 0 t.Photoapp.App.i1_violations;
  check int "I2 holds" 0 t.Photoapp.App.i2_violations;
  check int "no A2" 0 t.Photoapp.App.a2_anomalies

let test_app_rss_a3_possible () =
  (* The A3 anomaly is a narrow window; accumulate across seeds. It must be
     observable (the whole point of the model) — and absent under strict. *)
  let rss_anomalies = ref 0 and trials = ref 0 in
  for seed = 100 to 110 do
    let t =
      run_app ~store_kind:`Rss ~causality:Photoapp.App.No_causality ~seed
        ~rounds:40
    in
    rss_anomalies := !rss_anomalies + t.Photoapp.App.a3_anomalies;
    trials := !trials + t.Photoapp.App.a3_trials
  done;
  check bool "a3 trials ran" true (!trials > 20);
  check bool "rss exposes A3 at least once" true (!rss_anomalies > 0)

let test_app_po_breaks () =
  let i2 = ref 0 and a2 = ref 0 in
  for seed = 200 to 204 do
    let t =
      run_app ~store_kind:`Po ~causality:Photoapp.App.No_causality ~seed ~rounds:60
    in
    check int "I1 still holds (single service total order)" 0
      t.Photoapp.App.i1_violations;
    i2 := !i2 + t.Photoapp.App.i2_violations;
    a2 := !a2 + t.Photoapp.App.a2_anomalies
  done;
  check bool "I2 broken" true (!i2 > 0);
  check bool "A2 anomalies occur" true (!a2 > 0)

let test_app_rss_context_propagation_closes_a3 () =
  (* With §4.2 context propagation on the phone call we cannot intervene
     (calls carry no metadata by construction), but the queue path (I2') is
     covered: compare worker-side violations with and without context. Here
     we simply check context propagation never hurts. *)
  let t =
    run_app ~store_kind:`Rss ~causality:Photoapp.App.Context_propagation ~seed:44
      ~rounds:60
  in
  check int "I2 holds with context" 0 t.Photoapp.App.i2_violations;
  check int "I1 holds" 0 t.Photoapp.App.i1_violations

let test_app_rss_fences () =
  let t =
    run_app ~store_kind:`Rss ~causality:Photoapp.App.Fence_on_switch ~seed:45
      ~rounds:40
  in
  check int "I2 holds with fences" 0 t.Photoapp.App.i2_violations

(* §2.6: the non-transactional version of I2 — single-write add-photo over a
   register store. Linearizable (Gryff) and RSC (Gryff-RSC) registers keep
   it; a sequentially-consistent register store (the PO store restricted to
   single-key operations) does not. *)
let test_nontransactional_i2 () =
  (* Gryff, both modes: the worker's read follows the completed write in
     real time, so it must observe it. *)
  List.iter
    (fun mode ->
      let engine = Sim.Engine.create () in
      let cluster =
        Gryff.Cluster.create engine ~rng:(Sim.Rng.make 3) (Gryff.Config.wan5 ~mode ())
      in
      let uploader = Gryff.Client.create cluster ~site:0 in
      let worker = Gryff.Client.create cluster ~site:3 in
      let violations = ref 0 in
      let rec round n =
        if n > 0 then
          Gryff.Client.write uploader ~key:n ~value:(700 + n) (fun _ ->
              (* enqueue + dequeue: out-of-band handoff after completion *)
              Gryff.Client.read worker ~key:n (fun r ->
                  if r.Gryff.Protocol.r_value = None then incr violations;
                  round (n - 1)))
      in
      round 8;
      Sim.Engine.run engine;
      check int
        (match mode with
        | Gryff.Config.Lin -> "linearizable register keeps I2"
        | Gryff.Config.Rsc -> "RSC register keeps I2")
        0 !violations)
    [ Gryff.Config.Lin; Gryff.Config.Rsc ];
  (* Sequentially consistent registers: violations occur. *)
  let violations = ref 0 in
  for seed = 1 to 20 do
    let engine, store = mk_po ~seed () in
    let uploader = Postore.Store.session store in
    let worker = Postore.Store.session store in
    Postore.Store.rw uploader ~reads:[] ~writes:[ ("photo", 7) ] (fun _ ->
        Postore.Store.ro worker ~keys:[ "photo" ] (fun vs ->
            if vs = [ ("photo", None) ] then incr violations));
    Sim.Engine.run engine
  done;
  check bool "sequentially consistent registers break I2" true (!violations > 0)

let suites =
  [
    ( "postore",
      [
        Alcotest.test_case "rw then ro" `Quick test_po_rw_ro;
        Alcotest.test_case "rw reads latest" `Quick test_po_rw_reads_latest;
        Alcotest.test_case "stale reads happen" `Slow test_po_stale_reads_happen;
        Alcotest.test_case "session monotone" `Quick test_po_session_monotone;
        Alcotest.test_case "witness sequential" `Quick test_po_witness_sequential;
        Alcotest.test_case "stale run fails RSS witness" `Quick
          test_po_fails_stronger_witness;
        Alcotest.test_case "OSC(U) registers: model holds" `Slow
          test_osc_registers_satisfy_oscu;
        Alcotest.test_case "OSC(U) registers: not RSC (Fig. 13)" `Slow
          test_osc_registers_not_rsc;
      ] );
    ( "photoapp",
      [
        Alcotest.test_case "strict: nothing breaks" `Slow test_app_strict_no_anomalies;
        Alcotest.test_case "rss: invariants hold" `Slow test_app_rss_invariants_hold;
        Alcotest.test_case "rss: A3 observable" `Slow test_app_rss_a3_possible;
        Alcotest.test_case "po: I2 and A2 break" `Slow test_app_po_breaks;
        Alcotest.test_case "rss + context propagation" `Slow
          test_app_rss_context_propagation_closes_a3;
        Alcotest.test_case "rss + fences" `Slow test_app_rss_fences;
        Alcotest.test_case "non-transactional I2 (2.6)" `Quick
          test_nontransactional_i2;
      ] );
  ]
