(* Tests for the elastic placement subsystem: the epoch-versioned
   directory, cached client views (redirect convergence), and live
   RSS-preserving migration under load — including the mutation control
   that breaks the fence on purpose and must be caught by the online
   checker. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let qt = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Directory                                                           *)
(* ------------------------------------------------------------------ *)

let test_directory_base_layout () =
  let d = Place.Directory.create ~n_shards:3 () in
  check int "epoch starts at 0" 0 (Place.Directory.epoch d);
  for key = 0 to 20 do
    check int "base = key mod n_shards" (key mod 3) (Place.Directory.owner d key)
  done

let test_directory_epoch_monotone () =
  let d = Place.Directory.create ~n_shards:3 () in
  let e1 = Place.Directory.commit d ~lo:0 ~hi:10 ~owner:1 ~tm:100 in
  check int "first commit -> epoch 1" 1 e1;
  let e2 = Place.Directory.commit d ~lo:5 ~hi:15 ~owner:2 ~tm:200 in
  check int "second commit -> epoch 2" 2 e2;
  check int "epoch read-back" 2 (Place.Directory.epoch d);
  (* Newest assignment wins on overlap; older one still covers its rest. *)
  check int "[0,5) from first commit" 1 (Place.Directory.owner d 3);
  check int "[5,15) from second commit" 2 (Place.Directory.owner d 7);
  check int "outside both: base" (17 mod 3) (Place.Directory.owner d 17)

let test_directory_durable_log () =
  let d = Place.Directory.create ~n_shards:2 () in
  check int "no appends yet" 0 (Place.Directory.durable_appends d);
  ignore (Place.Directory.commit d ~lo:0 ~hi:4 ~owner:1 ~tm:10);
  ignore (Place.Directory.commit d ~lo:4 ~hi:8 ~owner:0 ~tm:20);
  check int "one append per commit" 2 (Place.Directory.durable_appends d);
  check bool "log bytes accounted" true (Place.Directory.durable_bytes d > 0);
  let log = Place.Directory.log_entries d in
  check int "log replays the assignments" 2 (List.length log);
  check bool "log = assignments" true
    (log = Place.Directory.assignments d);
  check
    (Alcotest.list int)
    "epochs logged in order" [ 1; 2 ]
    (List.map (fun a -> a.Place.Directory.a_epoch) log)

let prop_directory_owner_oracle =
  (* Any sequence of commits: the epoch equals the number of commits and
     the owner of every key is decided by the *latest* assignment covering
     it, falling back to the base layout. *)
  QCheck.Test.make ~name:"directory owner = newest covering assignment"
    ~count:200
    QCheck.(
      list_of_size (Gen.int_range 0 20)
        (triple (int_range 0 50) (int_range 1 30) (int_range 0 3)))
    (fun moves ->
      let n_shards = 4 in
      let d = Place.Directory.create ~n_shards () in
      let applied =
        List.map
          (fun (lo, len, owner) ->
            let hi = lo + len in
            ignore (Place.Directory.commit d ~lo ~hi ~owner ~tm:0);
            (lo, hi, owner))
          moves
      in
      let oracle key =
        let rec latest = function
          | [] -> key mod n_shards
          | (lo, hi, owner) :: older ->
            if key >= lo && key < hi then owner else latest older
        in
        latest (List.rev applied)
      in
      Place.Directory.epoch d = List.length moves
      && List.for_all
           (fun key -> Place.Directory.owner d key = oracle key)
           (List.init 90 Fun.id))

(* ------------------------------------------------------------------ *)
(* Cached views: staleness and redirect convergence                    *)
(* ------------------------------------------------------------------ *)

let test_view_staleness_and_refresh () =
  let d = Place.Directory.create ~n_shards:3 () in
  let v = Place.Directory.view d in
  check bool "fresh view not stale" false (Place.Directory.stale v);
  check int "view at epoch 0" 0 (Place.Directory.view_epoch v);
  ignore (Place.Directory.commit d ~lo:0 ~hi:10 ~owner:2 ~tm:50);
  check bool "commit makes the view stale" true (Place.Directory.stale v);
  (* The stale view still answers from its snapshot (the old layout)... *)
  check int "stale lookup = old owner" (3 mod 3) (Place.Directory.view_owner v 3);
  (* ...until the bounce-triggered refresh converges it. *)
  Place.Directory.refresh v;
  check bool "refreshed view not stale" false (Place.Directory.stale v);
  check int "refresh count" 1 (Place.Directory.view_refreshes v);
  check int "converged lookup" 2 (Place.Directory.view_owner v 3)

let test_view_convergence_after_many_commits () =
  (* A view left stale across several migrations converges to the
     authoritative layout for every key after a single refresh — the
     redirect loop terminates after one bounce. *)
  let d = Place.Directory.create ~n_shards:4 () in
  let v = Place.Directory.view d in
  ignore (Place.Directory.commit d ~lo:0 ~hi:20 ~owner:1 ~tm:10);
  ignore (Place.Directory.commit d ~lo:10 ~hi:30 ~owner:3 ~tm:20);
  ignore (Place.Directory.commit d ~lo:5 ~hi:12 ~owner:0 ~tm:30);
  Place.Directory.refresh v;
  check int "view caught up" (Place.Directory.epoch d)
    (Place.Directory.view_epoch v);
  for key = 0 to 40 do
    check int "view agrees with directory" (Place.Directory.owner d key)
      (Place.Directory.view_owner v key)
  done

(* ------------------------------------------------------------------ *)
(* Live migration under load                                           *)
(* ------------------------------------------------------------------ *)

let reshard_run ?(no_fence = false) seed =
  let n_keys = 4_000 in
  Harness.spanner_wan ~check:`Online
    ~reshard:
      [
        {
          Harness.rs_at = 0.45;
          rs_lo = 0;
          rs_hi = n_keys / 8;
          rs_dst = 1;
          rs_no_fence = no_fence;
        };
      ]
    ~mode:Spanner.Config.Rss ~theta:0.9 ~n_keys ~arrival_rate_per_sec:60.0
    ~duration_s:6.0 ~seed ()

let test_migrate_under_load_passes () =
  (* Three seeds: the fenced migration completes mid-workload with zero
     failures and the online checker stays green. *)
  List.iter
    (fun seed ->
      let r = reshard_run seed in
      let c = Harness.Run.counter r in
      check bool
        (Printf.sprintf "seed %d: online checker Pass" seed)
        true
        (r.Harness.Run.check = Harness.Run.Pass);
      check int
        (Printf.sprintf "seed %d: migration completed" seed)
        1 (c "place.migrations");
      check int
        (Printf.sprintf "seed %d: no failed migration" seed)
        0 (c "place.migrations_failed");
      check bool
        (Printf.sprintf "seed %d: keys actually moved" seed)
        true
        (c "place.keys_moved" > 0);
      check bool
        (Printf.sprintf "seed %d: epoch bumped" seed)
        true
        (c "place.epoch" >= 1);
      check bool
        (Printf.sprintf "seed %d: stale routes were bounced" seed)
        true
        (c "place.redirects" > 0))
    [ 42; 43; 44 ]

let digest r =
  match r.Harness.Run.records with
  | Harness.Run.Spanner_txns a -> Digest.string (Marshal.to_string a [])
  | Harness.Run.Gryff_ops a -> Digest.string (Marshal.to_string a [])

let test_migrate_deterministic () =
  let a = reshard_run 42 and b = reshard_run 42 in
  check bool "same seed, byte-identical history" true (digest a = digest b)

let test_broken_fence_caught () =
  (* The mutation control: skip fence, drain and barrier. Writes that
     commit at the source during the ship window are missing at the
     destination, and the online checker must flag the stale read. *)
  let r = reshard_run ~no_fence:true 42 in
  match r.Harness.Run.check with
  | Harness.Run.Fail _ -> ()
  | Harness.Run.Pass -> Alcotest.fail "no-fence migration slipped past the checker"
  | Harness.Run.Unknown m -> Alcotest.fail ("checker returned Unknown: " ^ m)

let suites =
  [
    ( "place.directory",
      [
        Alcotest.test_case "base layout" `Quick test_directory_base_layout;
        Alcotest.test_case "epoch monotone, newest wins" `Quick
          test_directory_epoch_monotone;
        Alcotest.test_case "durable log" `Quick test_directory_durable_log;
        qt prop_directory_owner_oracle;
      ] );
    ( "place.view",
      [
        Alcotest.test_case "staleness and refresh" `Quick
          test_view_staleness_and_refresh;
        Alcotest.test_case "redirect convergence" `Quick
          test_view_convergence_after_many_commits;
      ] );
    ( "place.migrate",
      [
        Alcotest.test_case "migrate under load (3 seeds)" `Slow
          test_migrate_under_load_passes;
        Alcotest.test_case "deterministic" `Slow test_migrate_deterministic;
        Alcotest.test_case "broken fence caught" `Slow test_broken_fence_caught;
      ] );
  ]
