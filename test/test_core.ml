(* Tests for the consistency-model core: histories, causality, checkers,
   witness verification, and libRSS. Several histories encode scenarios from
   the paper (Fig. 4, Table 1's I2, Appendix A's model separations). *)

module H = Rss_core.History
module T = Rss_core.Txn_history
module CT = Rss_core.Check_txn
module CR = Rss_core.Check_reg
module W = Rss_core.Witness

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let sat = function CT.Sat _ -> true | CT.Unsat -> false | CT.Unknown -> failwith "unknown"

let reg_sat h m = sat (CR.check h m)
let txn_sat h m = sat (CT.check h m)

(* ------------------------------------------------------------------ *)
(* History construction and validation                                 *)
(* ------------------------------------------------------------------ *)

let test_history_validate_ok () =
  let h =
    H.make
      [
        H.write ~id:0 ~proc:0 ~key:"x" ~value:1 ~inv:0 ~resp:10 ();
        H.read ~id:1 ~proc:1 ~key:"x" ~value:1 ~inv:20 ~resp:30 ();
      ]
  in
  check int "two ops" 2 (H.n_ops h)

let test_history_duplicate_write_rejected () =
  Alcotest.check_raises "duplicate value per key"
    (Invalid_argument "History.make: duplicate write of 1 to x") (fun () ->
      ignore
        (H.make
           [
             H.write ~id:0 ~proc:0 ~key:"x" ~value:1 ~inv:0 ~resp:10 ();
             H.write ~id:1 ~proc:1 ~key:"x" ~value:1 ~inv:20 ~resp:30 ();
           ]))

let test_history_overlapping_process_rejected () =
  let bad () =
    ignore
      (H.make
         [
           H.write ~id:0 ~proc:0 ~key:"x" ~value:1 ~inv:0 ~resp:20 ();
           H.read ~id:1 ~proc:0 ~key:"x" ~inv:10 ~resp:30 ();
         ])
  in
  check bool "raises" true
    (match bad () with exception Invalid_argument _ -> true | () -> false)

let test_history_msg_edge_time_checked () =
  let bad () =
    ignore
      (H.make
         ~msg_edges:[ (1, 0) ]
         [
           H.write ~id:0 ~proc:0 ~key:"x" ~value:1 ~inv:0 ~resp:10 ();
           H.read ~id:1 ~proc:1 ~key:"x" ~value:1 ~inv:20 ~resp:30 ();
         ])
  in
  check bool "edge against time rejected" true
    (match bad () with exception Invalid_argument _ -> true | () -> false)

let test_history_incomplete_last_op_ok () =
  let h =
    H.make
      [
        H.write ~id:0 ~proc:0 ~key:"x" ~value:1 ~inv:0 ~resp:10 ();
        H.write ~id:1 ~proc:0 ~key:"y" ~value:2 ~inv:20 ();
      ]
  in
  check bool "incomplete tail op accepted" true (not (H.is_complete (H.op h 1)))

(* ------------------------------------------------------------------ *)
(* Causal                                                              *)
(* ------------------------------------------------------------------ *)

let test_causal_transitive () =
  let c = Rss_core.Causal.of_edges ~n:4 [ (0, 1); (1, 2) ] in
  check bool "direct" true (Rss_core.Causal.precedes c 0 1);
  check bool "transitive" true (Rss_core.Causal.precedes c 0 2);
  check bool "not reverse" false (Rss_core.Causal.precedes c 2 0);
  check bool "isolated" false (Rss_core.Causal.precedes c 0 3)

let test_causal_cycle_rejected () =
  check bool "cycle raises" true
    (match Rss_core.Causal.of_edges ~n:3 [ (0, 1); (1, 2); (2, 0) ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_causal_of_history () =
  (* P0: w(x=1); P1: reads it, then writes y; msg edge to P2's read. *)
  let h =
    T.make
      ~msg_edges:[ (2, 3) ]
      [
        T.rw ~id:0 ~proc:0 ~writes:[ ("x", 1) ] ~inv:0 ~resp:10 ();
        T.ro ~id:1 ~proc:1 ~reads:[ ("x", Some 1) ] ~inv:20 ~resp:30 ();
        T.rw ~id:2 ~proc:1 ~writes:[ ("y", 2) ] ~inv:40 ~resp:50 ();
        T.ro ~id:3 ~proc:2 ~reads:[ ("y", Some 2) ] ~inv:60 ~resp:70 ();
      ]
  in
  let c = CT.causal h in
  check bool "reads-from" true (Rss_core.Causal.precedes c 0 1);
  check bool "process order" true (Rss_core.Causal.precedes c 1 2);
  check bool "msg edge" true (Rss_core.Causal.precedes c 2 3);
  check bool "transitive across kinds" true (Rss_core.Causal.precedes c 0 3);
  check bool "no rt-only edge" false (Rss_core.Causal.precedes c 1 0)

let prop_causal_closure_transitive =
  QCheck.Test.make ~name:"closure is transitive" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 15) (pair (int_range 0 7) (int_range 0 7)))
    (fun edges ->
      (* Only keep forward edges to avoid cycles. *)
      let edges = List.filter (fun (a, b) -> a < b) edges in
      let c = Rss_core.Causal.of_edges ~n:8 edges in
      let ok = ref true in
      for a = 0 to 7 do
        for b = 0 to 7 do
          for d = 0 to 7 do
            if
              Rss_core.Causal.precedes c a b
              && Rss_core.Causal.precedes c b d
              && not (Rss_core.Causal.precedes c a d)
            then ok := false
          done
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Register checker: basic behaviours                                  *)
(* ------------------------------------------------------------------ *)

let seq_wr =
  H.make
    [
      H.write ~id:0 ~proc:0 ~key:"x" ~value:1 ~inv:0 ~resp:10 ();
      H.read ~id:1 ~proc:1 ~key:"x" ~value:1 ~inv:20 ~resp:30 ();
    ]

let test_sequential_history_all_models () =
  List.iter
    (fun m ->
      check bool (CR.model_name m ^ " accepts sequential history") true
        (reg_sat seq_wr m))
    CR.all_models

let stale_read_after_write =
  (* w completes, then a read by another process misses it. *)
  H.make
    [
      H.write ~id:0 ~proc:0 ~key:"x" ~value:1 ~inv:0 ~resp:10 ();
      H.read ~id:1 ~proc:1 ~key:"x" ~inv:20 ~resp:30 ();
    ]

let test_stale_read_model_split () =
  check bool "linearizability rejects" false (reg_sat stale_read_after_write Linearizable);
  check bool "RSC rejects (regular rt)" false (reg_sat stale_read_after_write Rsc);
  check bool "VV-regular rejects" false (reg_sat stale_read_after_write Regular_vv);
  check bool "sequential allows" true (reg_sat stale_read_after_write Sequential);
  check bool "OSC(U) allows (Fig. 13 shape)" true (reg_sat stale_read_after_write Osc_u)

let concurrent_write_read_old =
  (* The paper's Fig. 4 / A3 shape: while w is in flight, r1 sees the new
     value; a causally-unrelated r2 later returns the old one. RSC allows
     it (only causally-later reads are constrained); linearizability does
     not. *)
  H.make
    [
      H.write ~id:0 ~proc:0 ~key:"x" ~value:1 ~inv:0 ~resp:100 ();
      H.read ~id:1 ~proc:1 ~key:"x" ~value:1 ~inv:10 ~resp:20 ();
      H.read ~id:2 ~proc:2 ~key:"x" ~inv:30 ~resp:40 ();
    ]

let test_concurrent_write_read_old () =
  check bool "linearizability rejects" false (reg_sat concurrent_write_read_old Linearizable);
  check bool "RSC allows" true (reg_sat concurrent_write_read_old Rsc);
  check bool "sequential allows" true (reg_sat concurrent_write_read_old Sequential)

let concurrent_write_read_old_causal =
  (* Same, but r1's observer tells r2's process (message edge): now RSC must
     reject — exactly the paper's "Alice sees Charlie's photo and calls Bob"
     anomaly A3 becoming a causal violation. *)
  H.make
    ~msg_edges:[ (1, 2) ]
    [
      H.write ~id:0 ~proc:0 ~key:"x" ~value:1 ~inv:0 ~resp:100 ();
      H.read ~id:1 ~proc:1 ~key:"x" ~value:1 ~inv:10 ~resp:20 ();
      H.read ~id:2 ~proc:2 ~key:"x" ~inv:30 ~resp:40 ();
    ]

let test_concurrent_write_causal_read () =
  check bool "RSC rejects when causally related" false
    (reg_sat concurrent_write_read_old_causal Rsc);
  check bool "VV-regular still allows (no causality)" true
    (reg_sat concurrent_write_read_old_causal Regular_vv);
  check bool "sequential still allows" true
    (reg_sat concurrent_write_read_old_causal Sequential)

let test_read_own_concurrent_write () =
  (* A read concurrent with a write may return either old or new value. *)
  let old_v =
    H.make
      [
        H.write ~id:0 ~proc:0 ~key:"x" ~value:1 ~inv:0 ~resp:100 ();
        H.read ~id:1 ~proc:1 ~key:"x" ~inv:10 ~resp:20 ();
      ]
  in
  let new_v =
    H.make
      [
        H.write ~id:0 ~proc:0 ~key:"x" ~value:1 ~inv:0 ~resp:100 ();
        H.read ~id:1 ~proc:1 ~key:"x" ~value:1 ~inv:10 ~resp:20 ();
      ]
  in
  List.iter
    (fun m ->
      check bool (CR.model_name m ^ " old ok") true (reg_sat old_v m);
      check bool (CR.model_name m ^ " new ok") true (reg_sat new_v m))
    CR.all_models

let test_rmw_atomicity () =
  (* Two rmws both observing the same base value cannot both be serialized:
     one must see the other's result. *)
  let lost_update =
    H.make
      [
        H.write ~id:0 ~proc:0 ~key:"x" ~value:10 ~inv:0 ~resp:5 ();
        H.rmw ~id:1 ~proc:1 ~key:"x" ~observed:10 ~result:11 ~inv:10 ~resp:20 ();
        H.rmw ~id:2 ~proc:2 ~key:"x" ~observed:10 ~result:12 ~inv:12 ~resp:22 ();
      ]
  in
  List.iter
    (fun m ->
      check bool (CR.model_name m ^ " rejects lost update") false
        (reg_sat lost_update m))
    CR.all_models;
  let chained =
    H.make
      [
        H.write ~id:0 ~proc:0 ~key:"x" ~value:10 ~inv:0 ~resp:5 ();
        H.rmw ~id:1 ~proc:1 ~key:"x" ~observed:10 ~result:11 ~inv:10 ~resp:20 ();
        H.rmw ~id:2 ~proc:2 ~key:"x" ~observed:11 ~result:12 ~inv:12 ~resp:22 ();
      ]
  in
  check bool "chained rmws linearizable" true (reg_sat chained Linearizable)

let test_incomplete_write_observed () =
  (* An incomplete write whose value was read must be serialized. *)
  let h =
    H.make
      [
        H.write ~id:0 ~proc:0 ~key:"x" ~value:1 ~inv:0 ();
        H.read ~id:1 ~proc:1 ~key:"x" ~value:1 ~inv:10 ~resp:20 ();
        H.read ~id:2 ~proc:1 ~key:"x" ~value:1 ~inv:30 ~resp:40 ();
      ]
  in
  check bool "observed pending write ok" true (reg_sat h Linearizable);
  (* But flip-flopping back to nil after observing it is never allowed. *)
  let flip =
    H.make
      [
        H.write ~id:0 ~proc:0 ~key:"x" ~value:1 ~inv:0 ();
        H.read ~id:1 ~proc:1 ~key:"x" ~value:1 ~inv:10 ~resp:20 ();
        H.read ~id:2 ~proc:1 ~key:"x" ~inv:30 ~resp:40 ();
      ]
  in
  check bool "session flip-flop rejected even by sequential" false
    (reg_sat flip Sequential)

let test_incomplete_unobserved_dropped () =
  let h =
    H.make
      [
        H.write ~id:0 ~proc:0 ~key:"x" ~value:1 ~inv:0 ();
        H.read ~id:1 ~proc:1 ~key:"x" ~inv:10 ~resp:20 ();
      ]
  in
  check bool "unobserved pending write may not take effect" true
    (reg_sat h Linearizable)

(* ------------------------------------------------------------------ *)
(* Appendix A separations (register case)                              *)
(* ------------------------------------------------------------------ *)

let fig14_shape =
  (* RSC allows; OSC(U) and MWR-RF forbid (r1 rt-precedes w1 yet must be
     serialized after it). w2 is concurrent with r1 and its value is seen
     early; w1 lands between; P4 then observes w1 before w2. *)
  H.make
    [
      H.write ~id:0 ~proc:2 ~key:"x" ~value:2 ~inv:5 ~resp:50 ();
      (* w2 *)
      H.read ~id:1 ~proc:0 ~key:"x" ~value:2 ~inv:0 ~resp:10 ();
      (* r1 *)
      H.write ~id:2 ~proc:1 ~key:"x" ~value:1 ~inv:20 ~resp:30 ();
      (* w1 *)
      H.read ~id:3 ~proc:3 ~key:"x" ~value:1 ~inv:32 ~resp:38 ();
      (* r2 *)
      H.read ~id:4 ~proc:3 ~key:"x" ~value:2 ~inv:42 ~resp:48 ();
      (* r3 *)
    ]

let test_fig14_rsc_vs_oscu () =
  check bool "RSC allows" true (reg_sat fig14_shape Rsc);
  check bool "VV-regular allows" true (reg_sat fig14_shape Regular_vv);
  check bool "OSC(U) rejects" false (reg_sat fig14_shape Osc_u)

let test_rsc_between_lin_and_sc () =
  (* RSC sits strictly between: everything linearizable is RSC; stale
     concurrent reads separate RSC from linearizability
     (test_concurrent_write_read_old); causal misses separate SC from RSC
     (test_concurrent_write_causal_read). This test pins the lattice on the
     canonical histories. *)
  check bool "lin => rsc on seq history" true (reg_sat seq_wr Rsc);
  check bool "rsc !=> lin" true
    (reg_sat concurrent_write_read_old Rsc
    && not (reg_sat concurrent_write_read_old Linearizable));
  check bool "sc !=> rsc" true
    (reg_sat concurrent_write_read_old_causal Sequential
    && not (reg_sat concurrent_write_read_old_causal Rsc))

(* ------------------------------------------------------------------ *)
(* Transactional checker                                               *)
(* ------------------------------------------------------------------ *)

let photo_i2_history =
  (* Table 1's I2: add-photo transaction, then an out-of-band enqueue tells a
     worker, whose read must see the photo. Encoded with a msg edge. *)
  T.make
    ~msg_edges:[ (0, 1) ]
    [
      T.rw ~id:0 ~proc:0 ~writes:[ ("photo:1", 77); ("album:a", 1) ] ~inv:0 ~resp:10 ();
      T.ro ~id:1 ~proc:1 ~reads:[ ("photo:1", None) ] ~inv:20 ~resp:30 ();
    ]

let test_photo_i2 () =
  check bool "strict ser rejects" false (txn_sat photo_i2_history Strict_serializable);
  check bool "RSS rejects (I2 holds)" false (txn_sat photo_i2_history Rss);
  check bool "PO-ser allows (I2 broken)" true (txn_sat photo_i2_history Process_ordered)

let fig4_history =
  (* Fig. 4: C_W commits to two shards; C_R1 observes the writes while the
     commit is in flight; C_R2 (causally unrelated) then reads old values.
     Strict serializability forbids C_R2's result; RSS allows it. *)
  T.make
    [
      T.rw ~id:0 ~proc:0 ~writes:[ ("a", 1); ("b", 2) ] ~inv:0 ~resp:100 ();
      T.ro ~id:1 ~proc:1 ~reads:[ ("a", Some 1); ("b", Some 2) ] ~inv:10 ~resp:20 ();
      T.ro ~id:2 ~proc:2 ~reads:[ ("a", None); ("b", None) ] ~inv:30 ~resp:40 ();
    ]

let test_fig4 () =
  check bool "strict ser rejects" false (txn_sat fig4_history Strict_serializable);
  check bool "RSS allows" true (txn_sat fig4_history Rss)

let fig9_shape =
  (* Appendix A / §8's CRDB counterexample: two causally-unrelated writes by
     different clients, ordered in real time; a concurrent RO sees only the
     second. CRDB permits it (non-conflicting writes carry no real-time
     guarantee); RSS does not. *)
  T.make
    [
      T.rw ~id:0 ~proc:0 ~writes:[ ("x1", 1) ] ~inv:0 ~resp:10 ();
      T.rw ~id:1 ~proc:1 ~writes:[ ("x2", 1) ] ~inv:20 ~resp:30 ();
      T.ro ~id:2 ~proc:2 ~reads:[ ("x1", None); ("x2", Some 1) ] ~inv:5 ~resp:35 ();
    ]

let test_fig9 () =
  check bool "CRDB allows" true (txn_sat fig9_shape Crdb);
  check bool "RSS rejects" false (txn_sat fig9_shape Rss);
  check bool "strict ser rejects" false (txn_sat fig9_shape Strict_serializable);
  check bool "PO-ser allows" true (txn_sat fig9_shape Process_ordered)

let test_crdb_ignores_causality () =
  (* CRDB lacks message-passing causality. Its conflicting-real-time rule
     does catch the simple I2 shape (the writer completed first), so the
     separation needs an in-flight writer observed early and relayed out of
     band — the A3 anomaly. RSS rejects it; CRDB accepts. *)
  check bool "CRDB catches completed-writer I2" false (txn_sat photo_i2_history Crdb);
  let a3 =
    T.make
      ~msg_edges:[ (1, 2) ]
      [
        T.rw ~id:0 ~proc:0 ~writes:[ ("photo:1", 77) ] ~inv:0 ~resp:100 ();
        T.ro ~id:1 ~proc:1 ~reads:[ ("photo:1", Some 77) ] ~inv:10 ~resp:20 ();
        T.ro ~id:2 ~proc:2 ~reads:[ ("photo:1", None) ] ~inv:30 ~resp:40 ();
      ]
  in
  check bool "CRDB allows relayed stale read" true (txn_sat a3 Crdb);
  check bool "RSS rejects relayed stale read" false (txn_sat a3 Rss)

let write_skew =
  (* Classic write skew: not equivalent to any sequential execution, so every
     model here (all of which demand a total order) rejects it. Snapshot
     isolation would allow it — see DESIGN.md. *)
  T.make
    [
      T.rw ~id:0 ~proc:0
        ~reads:[ ("x", None); ("y", None) ]
        ~writes:[ ("x", 1) ] ~inv:0 ~resp:20 ();
      T.rw ~id:1 ~proc:1
        ~reads:[ ("x", None); ("y", None) ]
        ~writes:[ ("y", 1) ] ~inv:5 ~resp:25 ();
    ]

let test_write_skew_rejected_by_all () =
  List.iter
    (fun m ->
      check bool (CT.model_name m ^ " rejects write skew") false (txn_sat write_skew m))
    CT.all_models

let test_ro_snapshot_consistency () =
  (* An RO transaction must reflect a single snapshot across keys, under any
     total-order model: seeing T1's write to a but T0's overwritten value of
     b is rejected. *)
  let h =
    T.make
      [
        T.rw ~id:0 ~proc:0 ~writes:[ ("a", 1); ("b", 1) ] ~inv:0 ~resp:10 ();
        T.rw ~id:1 ~proc:0 ~writes:[ ("a", 2); ("b", 2) ] ~inv:20 ~resp:30 ();
        T.ro ~id:2 ~proc:1 ~reads:[ ("a", Some 2); ("b", Some 1) ] ~inv:40 ~resp:50 ();
      ]
  in
  check bool "mixed snapshot rejected even by PO-ser" false
    (txn_sat h Process_ordered)

let test_rss_session_monotonicity () =
  (* Once a client observes a write, its later transactions must too
     (process order is causal). *)
  let h =
    T.make
      [
        T.rw ~id:0 ~proc:0 ~writes:[ ("x", 1) ] ~inv:0 ~resp:100 ();
        T.ro ~id:1 ~proc:1 ~reads:[ ("x", Some 1) ] ~inv:10 ~resp:20 ();
        T.ro ~id:2 ~proc:1 ~reads:[ ("x", None) ] ~inv:30 ~resp:40 ();
      ]
  in
  check bool "RSS rejects backwards session" false (txn_sat h Rss);
  check bool "VV-regular allows (no sessions)" true (txn_sat h Regular_vv)

let test_unknown_on_tiny_budget () =
  (* A deliberately wide history exhausts a 1-state budget. *)
  let txns =
    List.init 8 (fun i ->
        T.rw ~id:i ~proc:i ~writes:[ (Fmt.str "k%d" i, i) ] ~inv:(i * 2)
          ~resp:((i * 2) + 1) ())
  in
  let h = T.make txns in
  (match CT.check ~max_states:1 h CT.Process_ordered with
  | CT.Unknown -> ()
  | CT.Sat _ | CT.Unsat -> Alcotest.fail "expected Unknown");
  check bool "full budget solves it" true (txn_sat h Process_ordered)

let test_satisfies_surfaces_unknown () =
  (* Budget exhaustion is a value, not a crash — and never a wrong verdict:
     a tiny budget yields None where the full budget proves Some true. *)
  let txns =
    List.init 8 (fun i ->
        T.rw ~id:i ~proc:i ~writes:[ (Fmt.str "k%d" i, i) ] ~inv:(i * 2)
          ~resp:((i * 2) + 1) ())
  in
  let h = T.make txns in
  (match CT.satisfies ~max_states:1 h CT.Process_ordered with
  | None -> ()
  | Some ok -> Alcotest.failf "expected None on a 1-state budget, got %b" ok);
  check bool "full budget proves it" true
    (CT.satisfies h CT.Process_ordered = Some true);
  (* Same through the register-model wrapper. *)
  let reg =
    H.make
      [
        H.write ~id:0 ~proc:0 ~key:"x" ~value:1 ~inv:0 ~resp:10 ();
        H.read ~id:1 ~proc:1 ~key:"x" ~value:1 ~inv:20 ~resp:30 ();
      ]
  in
  check bool "Check_reg full budget" true (CR.satisfies reg CR.Rsc = Some true)

let test_witness_order_returned () =
  match CT.check fig4_history CT.Rss with
  | CT.Sat order ->
    (* The witness must be a permutation and place txn 2 before txn 0. *)
    check (Alcotest.list int) "permutation" [ 0; 1; 2 ] (List.sort compare order);
    let pos x = ref (-1) :: [] |> fun _ ->
      let rec find i = function
        | [] -> -1
        | y :: rest -> if y = x then i else find (i + 1) rest
      in
      find 0 order
    in
    check bool "old read before writer" true (pos 2 < pos 0)
  | CT.Unsat | CT.Unknown -> Alcotest.fail "expected Sat"

(* ------------------------------------------------------------------ *)
(* Property tests over generated histories                             *)
(* ------------------------------------------------------------------ *)

(* Generate a history by choosing a random serial execution over a tiny key
   space and then jittering invocation/response intervals so operations
   overlap. Reads return the value current at their serial position, so a
   legal total order always exists — but the jittered real-time/causal
   constraints may or may not be satisfiable, exercising the full lattice. *)
let gen_history =
  QCheck.Gen.(
    let* n = int_range 2 9 in
    let* seed = int_bound 1_000_000 in
    return (n, seed))

let build_history (n, seed) =
  let rng = Sim.Rng.make seed in
  let keys = [| "a"; "b" |] in
  let store = Hashtbl.create 4 in
  let next_val = ref 0 in
  let ops = ref [] in
  for i = 0 to n - 1 do
    let key = keys.(Sim.Rng.int rng 2) in
    let base = i * 100 in
    let inv = base - Sim.Rng.int rng 150 in
    let resp = base + Sim.Rng.int rng 150 in
    let inv = if inv < 0 then 0 else inv in
    let op =
      if Sim.Rng.bool rng 0.5 then begin
        incr next_val;
        Hashtbl.replace store key !next_val;
        H.write ~id:i ~proc:i ~key ~value:!next_val ~inv ~resp ()
      end
      else
        H.read ~id:i ~proc:i ~key ?value:(Hashtbl.find_opt store key) ~inv ~resp ()
    in
    ops := op :: !ops
  done;
  H.make (List.rev !ops)

let prop_model_lattice =
  QCheck.Test.make ~name:"model lattice: lin => rsc => {sc, vv-regular}" ~count:150
    (QCheck.make gen_history) (fun params ->
      let h = build_history params in
      let s m = reg_sat h m in
      (* Implications that must hold on any time-valid history. *)
      ((not (s CR.Linearizable)) || s CR.Rsc)
      && ((not (s CR.Rsc)) || s CR.Sequential)
      && ((not (s CR.Rsc)) || s CR.Regular_vv)
      && ((not (s CR.Linearizable)) || s CR.Osc_u))

let prop_serial_position_order_always_sat =
  QCheck.Test.make ~name:"non-overlapping histories satisfy every model" ~count:100
    (QCheck.make gen_history) (fun (n, seed) ->
      (* Rebuild without jitter: strictly sequential real-time intervals. *)
      let rng = Sim.Rng.make seed in
      let keys = [| "a"; "b" |] in
      let store = Hashtbl.create 4 in
      let next_val = ref 0 in
      let ops = ref [] in
      for i = 0 to n - 1 do
        let key = keys.(Sim.Rng.int rng 2) in
        let inv = i * 100 and resp = (i * 100) + 50 in
        let op =
          if Sim.Rng.bool rng 0.5 then begin
            incr next_val;
            Hashtbl.replace store key !next_val;
            H.write ~id:i ~proc:i ~key ~value:!next_val ~inv ~resp ()
          end
          else
            H.read ~id:i ~proc:i ~key ?value:(Hashtbl.find_opt store key) ~inv ~resp ()
        in
        ops := op :: !ops
      done;
      let h = H.make (List.rev !ops) in
      List.for_all (fun m -> reg_sat h m) CR.all_models)

let prop_edges_only_constrain =
  QCheck.Test.make ~name:"adding a msg edge never makes an unsat history sat" ~count:100
    (QCheck.make gen_history) (fun params ->
      let h = T.of_history (build_history params) in
      let n = T.n_txns h in
      if n < 2 then true
      else begin
        (* Pick a time-valid candidate edge; skip when none exists. *)
        let candidate = ref None in
        (try
           for a = 0 to n - 1 do
             for b = 0 to n - 1 do
               if a <> b && !candidate = None then
                 match (T.txn h a).T.resp with
                 | Some r when r <= (T.txn h b).T.inv -> candidate := Some (a, b); raise Exit
                 | _ -> ()
             done
           done
         with Exit -> ());
        match !candidate with
        | None -> true
        | Some (a, b) ->
          let h' = T.make ~msg_edges:[ (a, b) ] (Array.to_list h.T.txns) in
          (* Sat with the extra causal constraint implies Sat without it. *)
          (not (txn_sat h' CT.Rss)) || txn_sat h CT.Rss
      end)

let prop_witness_is_valid_order =
  QCheck.Test.make ~name:"returned witness respects constraint edges" ~count:100
    (QCheck.make gen_history) (fun params ->
      let h = T.of_history (build_history params) in
      match CT.check h CT.Rss with
      | CT.Unsat | CT.Unknown -> true
      | CT.Sat order ->
        let pos = Hashtbl.create 16 in
        List.iteri (fun i id -> Hashtbl.replace pos id i) order;
        CT.constraint_edges h CT.Rss
        |> List.for_all (fun (a, b) ->
               match (Hashtbl.find_opt pos a, Hashtbl.find_opt pos b) with
               | Some pa, Some pb -> pa < pb
               | _ -> true (* dropped incomplete op *)))

(* ------------------------------------------------------------------ *)
(* Witness checker                                                     *)
(* ------------------------------------------------------------------ *)

let wtxn ?(proc = 0) ?(reads = []) ?(writes = []) ~inv ~resp ~ts () =
  {
    W.proc;
    reads;
    writes;
    inv;
    resp;
    ts;
    rank = W.mutator_rank ~writes;
  }

let test_witness_legal_run () =
  let txns =
    [|
      wtxn ~proc:0 ~writes:[ ("x", 1) ] ~inv:0 ~resp:10 ~ts:5 ();
      wtxn ~proc:1 ~reads:[ ("x", Some 1) ] ~inv:20 ~resp:30 ~ts:25 ();
      wtxn ~proc:0 ~writes:[ ("x", 2) ] ~inv:40 ~resp:50 ~ts:45 ();
      wtxn ~proc:1 ~reads:[ ("x", Some 2) ] ~inv:60 ~resp:70 ~ts:65 ();
    |]
  in
  List.iter
    (fun mode ->
      match W.check ~mode txns with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)
    [ `Strict; `Rss; `Sequential ]

let test_witness_bad_read () =
  let txns =
    [|
      wtxn ~proc:0 ~writes:[ ("x", 1) ] ~inv:0 ~resp:10 ~ts:5 ();
      wtxn ~proc:1 ~reads:[ ("x", None) ] ~inv:20 ~resp:30 ~ts:25 ();
    |]
  in
  check bool "legality violation detected" true
    (match W.check ~mode:`Sequential txns with Error _ -> true | Ok () -> false)

let test_witness_session_violation () =
  let txns =
    [|
      wtxn ~proc:0 ~reads:[ ("x", None) ] ~inv:0 ~resp:10 ~ts:50 ();
      wtxn ~proc:0 ~reads:[ ("x", None) ] ~inv:20 ~resp:30 ~ts:40 ();
    |]
  in
  check bool "session inversion detected" true
    (match W.check ~mode:`Sequential txns with Error _ -> true | Ok () -> false)

let test_witness_rss_vs_strict_stale_ro () =
  (* An RO serialized before a mutator that rt-precedes it: strict mode must
     flag it; RSS mode must flag it only if they conflict. *)
  let no_conflict =
    [|
      wtxn ~proc:0 ~writes:[ ("x", 1) ] ~inv:0 ~resp:10 ~ts:100 ();
      wtxn ~proc:1 ~reads:[ ("y", None) ] ~inv:20 ~resp:30 ~ts:50 ();
    |]
  in
  check bool "RSS ok without conflict" true
    (match W.check ~mode:`Rss no_conflict with Ok () -> true | Error _ -> false);
  check bool "strict flags rt inversion" true
    (match W.check ~mode:`Strict no_conflict with Error _ -> true | Ok () -> false);
  let conflict =
    [|
      wtxn ~proc:0 ~writes:[ ("x", 1) ] ~inv:0 ~resp:10 ~ts:100 ();
      wtxn ~proc:1 ~reads:[ ("x", None) ] ~inv:20 ~resp:30 ~ts:50 ();
    |]
  in
  check bool "RSS flags conflicting stale read" true
    (match W.check ~mode:`Rss conflict with Error _ -> true | Ok () -> false)

let test_witness_rt_mutators () =
  let txns =
    [|
      wtxn ~proc:0 ~writes:[ ("x", 1) ] ~inv:0 ~resp:10 ~ts:100 ();
      wtxn ~proc:1 ~writes:[ ("y", 1) ] ~inv:20 ~resp:30 ~ts:50 ();
    |]
  in
  check bool "mutator rt inversion flagged by RSS" true
    (match W.check ~mode:`Rss txns with Error _ -> true | Ok () -> false)

let test_witness_causal_edges () =
  let txns =
    [|
      wtxn ~proc:0 ~writes:[ ("x", 1) ] ~inv:0 ~resp:10 ~ts:100 ();
      wtxn ~proc:1 ~reads:[ ("y", None) ] ~inv:20 ~resp:30 ~ts:50 ();
    |]
  in
  check bool "explicit edge flagged" true
    (match W.check ~edges:[ (0, 1) ] ~mode:`Sequential txns with
    | Error _ -> true
    | Ok () -> false)

let test_witness_incomplete_resp () =
  (* resp = max_int: no real-time obligations, reads ignored? (reads of
     incomplete txns never responded — witness callers pass [] for them) *)
  let txns =
    [|
      wtxn ~proc:0 ~writes:[ ("x", 1) ] ~inv:0 ~resp:max_int ~ts:100 ();
      wtxn ~proc:1 ~reads:[ ("x", None) ] ~inv:20 ~resp:30 ~ts:50 ();
    |]
  in
  check bool "incomplete mutator imposes nothing" true
    (match W.check ~mode:`Strict txns with Ok () -> true | Error _ -> false)

let test_witness_rank_breaks_ties () =
  (* RO sharing a mutator's timestamp reads its write: mutator must sort
     first. *)
  let txns =
    [|
      wtxn ~proc:0 ~writes:[ ("x", 1) ] ~inv:0 ~resp:10 ~ts:42 ();
      wtxn ~proc:1 ~reads:[ ("x", Some 1) ] ~inv:20 ~resp:30 ~ts:42 ();
    |]
  in
  check bool "tie broken mutator-first" true
    (match W.check ~mode:`Rss txns with Ok () -> true | Error _ -> false)

(* Cross-validation: if the linear-time witness accepts an order for a
   history, the exact search checker must find the corresponding model
   satisfiable (the witness is a sufficient certificate). *)
let prop_witness_implies_search =
  QCheck.Test.make ~name:"witness Ok => search Sat" ~count:120
    (QCheck.make gen_history) (fun params ->
      let hreg = build_history params in
      let h = T.of_history hreg in
      let n = T.n_txns h in
      (* Claim the serialization "sort by invocation time": build witness
         records with ts = inv. *)
      let records =
        Array.init n (fun i ->
            let x = T.txn h i in
            {
              W.proc = x.T.proc;
              reads = x.T.reads;
              writes = x.T.writes;
              inv = x.T.inv;
              resp = (match x.T.resp with None -> max_int | Some r -> r);
              ts = x.T.inv;
              rank = W.mutator_rank ~writes:x.T.writes;
            })
      in
      let pairs =
        [ (`Strict, CT.Strict_serializable); (`Rss, CT.Rss); (`Sequential, CT.Process_ordered) ]
      in
      List.for_all
        (fun (mode, model) ->
          match W.check ~mode records with
          | Error _ -> true
          | Ok () -> txn_sat h model)
        pairs)

(* ------------------------------------------------------------------ *)
(* MWR-Weak regularity (Appendix A, Shao et al.)                       *)
(* ------------------------------------------------------------------ *)

let mwr = Rss_core.Check_mwr.satisfies_weak

let test_mwr_basics () =
  check bool "sequential history ok" true (mwr seq_wr);
  check bool "stale read after completed write rejected" false
    (mwr stale_read_after_write);
  check bool "concurrent old/new reads ok" true (mwr concurrent_write_read_old)

let test_mwr_no_total_order_needed () =
  (* Fig. 15's essence: a session reads the new value then the old one while
     the write is still in flight. Every total-order model rejects it;
     MWR-Weak does not (each read has its own serialization). *)
  let flip =
    H.make
      [
        H.write ~id:0 ~proc:0 ~key:"x" ~value:1 ~inv:0 ();
        H.read ~id:1 ~proc:1 ~key:"x" ~value:1 ~inv:10 ~resp:20 ();
        H.read ~id:2 ~proc:1 ~key:"x" ~inv:30 ~resp:40 ();
      ]
  in
  check bool "sequential rejects flip" false (reg_sat flip Sequential);
  check bool "MWR-Weak allows flip" true (mwr flip)

let test_mwr_overwritten_value () =
  let h =
    H.make
      [
        H.write ~id:0 ~proc:0 ~key:"x" ~value:1 ~inv:0 ~resp:10 ();
        H.write ~id:1 ~proc:1 ~key:"x" ~value:2 ~inv:20 ~resp:30 ();
        H.read ~id:2 ~proc:2 ~key:"x" ~value:1 ~inv:40 ~resp:50 ();
      ]
  in
  check bool "reading an overwritten value rejected" false (mwr h)

let test_mwr_concurrent_overwrite_ok () =
  (* If the second write is still concurrent with the read, the old value is
     fine: w2 is not forced between w1 and r. *)
  let h =
    H.make
      [
        H.write ~id:0 ~proc:0 ~key:"x" ~value:1 ~inv:0 ~resp:10 ();
        H.write ~id:1 ~proc:1 ~key:"x" ~value:2 ~inv:20 ~resp:100 ();
        H.read ~id:2 ~proc:2 ~key:"x" ~value:1 ~inv:40 ~resp:50 ();
      ]
  in
  check bool "concurrent overwrite allows old value" true (mwr h)

let test_mwr_unwritten_value () =
  let h =
    H.make
      [
        H.write ~id:0 ~proc:0 ~key:"x" ~value:1 ~inv:0 ~resp:10 ();
        H.read ~id:1 ~proc:1 ~key:"x" ~value:99 ~inv:20 ~resp:30 ();
      ]
  in
  check bool "unwritten value rejected" false (mwr h)

let test_mwr_rmw_observation () =
  let bad =
    H.make
      [
        H.write ~id:0 ~proc:0 ~key:"x" ~value:1 ~inv:0 ~resp:10 ();
        H.rmw ~id:1 ~proc:1 ~key:"x" ~result:5 ~inv:20 ~resp:30 ();
      ]
  in
  (* rmw observed None despite a completed write: rejected. *)
  check bool "rmw nil observation rejected" false (mwr bad);
  let good =
    H.make
      [
        H.write ~id:0 ~proc:0 ~key:"x" ~value:1 ~inv:0 ~resp:10 ();
        H.rmw ~id:1 ~proc:1 ~key:"x" ~observed:1 ~result:5 ~inv:20 ~resp:30 ();
      ]
  in
  check bool "rmw chained observation ok" true (mwr good)

let prop_lin_implies_mwr =
  QCheck.Test.make ~name:"linearizable => MWR-Weak" ~count:150
    (QCheck.make gen_history) (fun params ->
      let h = build_history params in
      (not (reg_sat h Linearizable)) || mwr h)

let prop_vv_regular_implies_mwr =
  QCheck.Test.make ~name:"VV-regular => MWR-Weak" ~count:150
    (QCheck.make gen_history) (fun params ->
      let h = build_history params in
      (not (reg_sat h Regular_vv)) || mwr h)

let prop_witness_sequential_histories_pass =
  QCheck.Test.make ~name:"witness accepts any sequential history (all modes)" ~count:150
    QCheck.(pair (int_range 1 20) (int_bound 100_000))
    (fun (n, seed) ->
      let rng = Sim.Rng.make seed in
      let store = Hashtbl.create 4 in
      let txns =
        Array.init n (fun i ->
            let key = [| "a"; "b"; "c" |].(Sim.Rng.int rng 3) in
            let inv = i * 100 and resp = (i * 100) + 50 in
            if Sim.Rng.bool rng 0.5 then begin
              Hashtbl.replace store key i;
              {
                W.proc = Sim.Rng.int rng 3;
                reads = [];
                writes = [ (key, i) ];
                inv;
                resp;
                ts = i;
                rank = 0;
              }
            end
            else
              {
                W.proc = Sim.Rng.int rng 3;
                reads = [ (key, Hashtbl.find_opt store key) ];
                writes = [];
                inv;
                resp;
                ts = i;
                rank = 1;
              })
      in
      List.for_all
        (fun mode -> W.check ~mode txns = Ok ())
        [ `Strict; `Rss; `Sequential ])

let prop_witness_detects_corruption =
  QCheck.Test.make ~name:"witness flags a corrupted read" ~count:100
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Sim.Rng.make seed in
      let w v i =
        { W.proc = 0; reads = []; writes = [ ("k", v) ]; inv = i * 100;
          resp = (i * 100) + 50; ts = i; rank = 0 }
      in
      let r v i =
        { W.proc = 1; reads = [ ("k", Some v) ]; writes = []; inv = i * 100;
          resp = (i * 100) + 50; ts = i; rank = 1 }
      in
      let good = [| w 10 0; r 10 1; w 20 2; r 20 3 |] in
      (* corrupt one read to a wrong (but existing) value *)
      let bad = Array.copy good in
      let victim = if Sim.Rng.bool rng 0.5 then 1 else 3 in
      let wrong = if victim = 1 then 20 else 10 in
      bad.(victim) <-
        { (good.(victim)) with W.reads = [ ("k", Some wrong) ] };
      W.check ~mode:`Sequential good = Ok ()
      && W.check ~mode:`Sequential bad <> Ok ())

(* ------------------------------------------------------------------ *)
(* libRSS                                                              *)
(* ------------------------------------------------------------------ *)

let test_librss_fence_on_switch () =
  let lib = Rss_core.Librss.create () in
  let fenced = ref [] in
  let fence name k =
    fenced := name :: !fenced;
    k ()
  in
  Rss_core.Librss.register_service lib ~name:"spanner" ~fence:(fence "spanner");
  Rss_core.Librss.register_service lib ~name:"queue" ~fence:(fence "queue");
  let ran = ref 0 in
  let go () = incr ran in
  Rss_core.Librss.start_transaction lib ~name:"spanner" go;
  check (Alcotest.list Alcotest.string) "first txn: no fence" [] !fenced;
  Rss_core.Librss.start_transaction lib ~name:"spanner" go;
  check (Alcotest.list Alcotest.string) "same service: no fence" [] !fenced;
  Rss_core.Librss.start_transaction lib ~name:"queue" go;
  check (Alcotest.list Alcotest.string) "switch: fences previous" [ "spanner" ] !fenced;
  Rss_core.Librss.start_transaction lib ~name:"spanner" go;
  check (Alcotest.list Alcotest.string) "switch back: fences queue"
    [ "queue"; "spanner" ] !fenced;
  check int "all txns ran" 4 !ran;
  check int "fence count" 2 (Rss_core.Librss.fences_issued lib)

let test_librss_unknown_service () =
  let lib = Rss_core.Librss.create () in
  check bool "unknown service raises" true
    (match Rss_core.Librss.start_transaction lib ~name:"nope" (fun () -> ()) with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_librss_duplicate_registration () =
  let lib = Rss_core.Librss.create () in
  Rss_core.Librss.register_service lib ~name:"s" ~fence:(fun k -> k ());
  check bool "duplicate raises" true
    (match Rss_core.Librss.register_service lib ~name:"s" ~fence:(fun k -> k ()) with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_librss_unregister () =
  let lib = Rss_core.Librss.create () in
  Rss_core.Librss.register_service lib ~name:"s" ~fence:(fun k -> k ());
  Rss_core.Librss.start_transaction lib ~name:"s" (fun () -> ());
  Rss_core.Librss.unregister_service lib ~name:"s";
  check bool "gone" false (Rss_core.Librss.is_registered lib ~name:"s");
  check bool "last cleared" true (Rss_core.Librss.last_service lib = None)

let test_librss_context_propagation () =
  let sender = Rss_core.Librss.create () in
  let receiver = Rss_core.Librss.create () in
  let fenced = ref [] in
  let fence name k =
    fenced := name :: !fenced;
    k ()
  in
  List.iter
    (fun lib ->
      Rss_core.Librss.register_service lib ~name:"a" ~fence:(fence "a");
      Rss_core.Librss.register_service lib ~name:"b" ~fence:(fence "b"))
    [ sender; receiver ];
  Rss_core.Librss.start_transaction sender ~name:"a" (fun () -> ());
  let ctx = Rss_core.Librss.capture sender in
  check bool "context carries service" true
    (Rss_core.Librss.context_service ctx = Some "a");
  Rss_core.Librss.absorb receiver ctx;
  Rss_core.Librss.start_transaction receiver ~name:"b" (fun () -> ());
  check (Alcotest.list Alcotest.string) "receiver fences sender's service"
    [ "a" ] !fenced

let test_librss_async_fence () =
  (* Fences complete asynchronously: the transaction body must not run until
     the fence's continuation fires. *)
  let e = Sim.Engine.create () in
  let lib = Rss_core.Librss.create () in
  Rss_core.Librss.register_service lib ~name:"a"
    ~fence:(fun k -> Sim.Engine.schedule e ~after:500 k);
  Rss_core.Librss.register_service lib ~name:"b" ~fence:(fun k -> k ());
  Rss_core.Librss.start_transaction lib ~name:"a" (fun () -> ());
  let started_at = ref (-1) in
  Rss_core.Librss.start_transaction lib ~name:"b" (fun () ->
      started_at := Sim.Engine.now e);
  check int "not yet" (-1) !started_at;
  Sim.Engine.run e;
  check int "ran after fence delay" 500 !started_at

let qt = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "core.history",
      [
        Alcotest.test_case "validate ok" `Quick test_history_validate_ok;
        Alcotest.test_case "duplicate write rejected" `Quick
          test_history_duplicate_write_rejected;
        Alcotest.test_case "overlapping process rejected" `Quick
          test_history_overlapping_process_rejected;
        Alcotest.test_case "msg edge vs time" `Quick test_history_msg_edge_time_checked;
        Alcotest.test_case "incomplete tail ok" `Quick test_history_incomplete_last_op_ok;
      ] );
    ( "core.causal",
      [
        Alcotest.test_case "transitive closure" `Quick test_causal_transitive;
        Alcotest.test_case "cycle rejected" `Quick test_causal_cycle_rejected;
        Alcotest.test_case "from txn history" `Quick test_causal_of_history;
        qt prop_causal_closure_transitive;
      ] );
    ( "core.check_reg",
      [
        Alcotest.test_case "sequential history, all models" `Quick
          test_sequential_history_all_models;
        Alcotest.test_case "stale read splits the lattice" `Quick
          test_stale_read_model_split;
        Alcotest.test_case "concurrent write, old read (Fig. 4)" `Quick
          test_concurrent_write_read_old;
        Alcotest.test_case "causal edge forces new value (A3)" `Quick
          test_concurrent_write_causal_read;
        Alcotest.test_case "concurrent read both values ok" `Quick
          test_read_own_concurrent_write;
        Alcotest.test_case "rmw atomicity" `Quick test_rmw_atomicity;
        Alcotest.test_case "incomplete write observed" `Quick
          test_incomplete_write_observed;
        Alcotest.test_case "incomplete write unobserved" `Quick
          test_incomplete_unobserved_dropped;
        Alcotest.test_case "Fig. 14: RSC vs OSC(U)" `Quick test_fig14_rsc_vs_oscu;
        Alcotest.test_case "RSC strictly between lin and sc" `Quick
          test_rsc_between_lin_and_sc;
      ] );
    ( "core.check_txn",
      [
        Alcotest.test_case "photo I2 (composition)" `Quick test_photo_i2;
        Alcotest.test_case "Fig. 4 execution" `Quick test_fig4;
        Alcotest.test_case "Fig. 9: CRDB vs RSS" `Quick test_fig9;
        Alcotest.test_case "CRDB ignores causality" `Quick test_crdb_ignores_causality;
        Alcotest.test_case "write skew rejected" `Quick test_write_skew_rejected_by_all;
        Alcotest.test_case "RO snapshot consistency" `Quick test_ro_snapshot_consistency;
        Alcotest.test_case "session monotonicity" `Quick test_rss_session_monotonicity;
        Alcotest.test_case "budget exhaustion" `Quick test_unknown_on_tiny_budget;
        Alcotest.test_case "satisfies surfaces Unknown" `Quick
          test_satisfies_surfaces_unknown;
        Alcotest.test_case "witness order returned" `Quick test_witness_order_returned;
        qt prop_model_lattice;
        qt prop_serial_position_order_always_sat;
        qt prop_edges_only_constrain;
        qt prop_witness_is_valid_order;
      ] );
    ( "core.witness",
      [
        Alcotest.test_case "legal run" `Quick test_witness_legal_run;
        Alcotest.test_case "bad read" `Quick test_witness_bad_read;
        Alcotest.test_case "session violation" `Quick test_witness_session_violation;
        Alcotest.test_case "rss vs strict stale RO" `Quick
          test_witness_rss_vs_strict_stale_ro;
        Alcotest.test_case "mutator rt inversion" `Quick test_witness_rt_mutators;
        Alcotest.test_case "causal edges" `Quick test_witness_causal_edges;
        Alcotest.test_case "incomplete resp" `Quick test_witness_incomplete_resp;
        Alcotest.test_case "tie-break rank" `Quick test_witness_rank_breaks_ties;
        qt prop_witness_sequential_histories_pass;
        qt prop_witness_detects_corruption;
        qt prop_witness_implies_search;
      ] );
    ( "core.check_mwr",
      [
        Alcotest.test_case "basics" `Quick test_mwr_basics;
        Alcotest.test_case "no total order needed (Fig. 15)" `Quick
          test_mwr_no_total_order_needed;
        Alcotest.test_case "overwritten value" `Quick test_mwr_overwritten_value;
        Alcotest.test_case "concurrent overwrite ok" `Quick
          test_mwr_concurrent_overwrite_ok;
        Alcotest.test_case "unwritten value" `Quick test_mwr_unwritten_value;
        Alcotest.test_case "rmw observations" `Quick test_mwr_rmw_observation;
        qt prop_lin_implies_mwr;
        qt prop_vv_regular_implies_mwr;
      ] );
    ( "core.librss",
      [
        Alcotest.test_case "fence on switch" `Quick test_librss_fence_on_switch;
        Alcotest.test_case "unknown service" `Quick test_librss_unknown_service;
        Alcotest.test_case "duplicate registration" `Quick
          test_librss_duplicate_registration;
        Alcotest.test_case "unregister" `Quick test_librss_unregister;
        Alcotest.test_case "context propagation" `Quick test_librss_context_propagation;
        Alcotest.test_case "async fence" `Quick test_librss_async_fence;
      ] );
  ]
