(* Direct unit tests for the Spanner lock table: shared/exclusive semantics,
   upgrades, wound-wait priorities, prepared-holder escalation, queue
   fairness, and release processing. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

type harness = {
  engine : Sim.Engine.t;
  locks : Spanner.Locks.t;
  prepared : (int, unit) Hashtbl.t;
  wounded : (int, unit) Hashtbl.t;
  escalations : int list ref;
}

let mk () =
  let engine = Sim.Engine.create () in
  let prepared = Hashtbl.create 8 in
  let wounded = Hashtbl.create 8 in
  let escalations = ref [] in
  let locks =
    Spanner.Locks.create engine
      ~is_prepared:(fun txn -> Hashtbl.mem prepared txn)
      ~is_wounded:(fun txn -> Hashtbl.mem wounded txn)
      ~wound:(fun txn -> Hashtbl.replace wounded txn ())
      ~wound_prepared:(fun txn -> escalations := txn :: !escalations)
  in
  { engine; locks; prepared; wounded; escalations }

(* Acquire and record the outcome. *)
let try_read h ~key ~txn ~prio =
  let result = ref `Pending in
  Spanner.Locks.acquire_read h.locks ~key ~txn ~priority:(prio, txn) (function
    | Spanner.Locks.Granted _ -> result := `Granted
    | Spanner.Locks.Aborted -> result := `Aborted);
  Sim.Engine.run h.engine;
  !result

let try_write h ~key ~txn ~prio =
  let result = ref `Pending in
  Spanner.Locks.acquire_write h.locks ~key ~txn ~priority:(prio, txn) (function
    | Spanner.Locks.Granted _ -> result := `Granted
    | Spanner.Locks.Aborted -> result := `Aborted);
  Sim.Engine.run h.engine;
  !result

let test_shared_reads () =
  let h = mk () in
  check bool "r1" true (try_read h ~key:1 ~txn:1 ~prio:10 = `Granted);
  check bool "r2 shares" true (try_read h ~key:1 ~txn:2 ~prio:20 = `Granted);
  check bool "both held" true
    (Spanner.Locks.holds_read h.locks ~key:1 ~txn:1
    && Spanner.Locks.holds_read h.locks ~key:1 ~txn:2)

let test_write_excludes () =
  let h = mk () in
  check bool "w1" true (try_write h ~key:1 ~txn:1 ~prio:10 = `Granted);
  (* Younger writer must wait (no wound), so its request stays pending. *)
  check bool "w2 waits" true (try_write h ~key:1 ~txn:2 ~prio:20 = `Pending);
  Spanner.Locks.release_all h.locks ~txn:1;
  Sim.Engine.run h.engine;
  check bool "w2 granted after release" true
    (Spanner.Locks.holds_write h.locks ~key:1 ~txn:2)

let test_older_wounds_younger () =
  let h = mk () in
  check bool "young writer" true (try_write h ~key:1 ~txn:2 ~prio:20 = `Granted);
  (* Older requester wounds the younger holder and takes the lock. *)
  check bool "old granted" true (try_write h ~key:1 ~txn:1 ~prio:10 = `Granted);
  check bool "young wounded" true (Hashtbl.mem h.wounded 2);
  check bool "young lost lock" false (Spanner.Locks.holds_write h.locks ~key:1 ~txn:2)

let test_younger_waits () =
  let h = mk () in
  check bool "old holder" true (try_write h ~key:1 ~txn:1 ~prio:10 = `Granted);
  check bool "young waits" true (try_write h ~key:1 ~txn:2 ~prio:20 = `Pending);
  check bool "no wound" false (Hashtbl.mem h.wounded 1)

let test_prepared_escalation () =
  let h = mk () in
  check bool "young holder" true (try_write h ~key:1 ~txn:2 ~prio:20 = `Granted);
  Hashtbl.replace h.prepared 2 ();
  (* Older requester cannot strip a prepared holder: it escalates to the
     holder's coordinator and waits. *)
  check bool "old waits" true (try_write h ~key:1 ~txn:1 ~prio:10 = `Pending);
  check (Alcotest.list int) "escalated" [ 2 ] !(h.escalations);
  check bool "holder keeps lock" true (Spanner.Locks.holds_write h.locks ~key:1 ~txn:2)

let test_upgrade () =
  let h = mk () in
  check bool "read" true (try_read h ~key:1 ~txn:1 ~prio:10 = `Granted);
  check bool "upgrade to write" true (try_write h ~key:1 ~txn:1 ~prio:10 = `Granted);
  check bool "write held" true (Spanner.Locks.holds_write h.locks ~key:1 ~txn:1)

let test_upgrade_conflict_wounds_other_reader () =
  let h = mk () in
  check bool "old reader" true (try_read h ~key:1 ~txn:1 ~prio:10 = `Granted);
  check bool "young reader" true (try_read h ~key:1 ~txn:2 ~prio:20 = `Granted);
  (* The older reader upgrades: the younger reader gets wounded. *)
  check bool "upgrade" true (try_write h ~key:1 ~txn:1 ~prio:10 = `Granted);
  check bool "young wounded" true (Hashtbl.mem h.wounded 2)

let test_reader_waits_behind_older_queued_writer () =
  let h = mk () in
  check bool "holder" true (try_write h ~key:1 ~txn:1 ~prio:10 = `Granted);
  check bool "older writer queues" true (try_write h ~key:1 ~txn:2 ~prio:12 = `Pending);
  (* A younger read must not jump the older queued writer. *)
  check bool "younger read waits" true (try_read h ~key:1 ~txn:3 ~prio:30 = `Pending);
  Spanner.Locks.release_all h.locks ~txn:1;
  Sim.Engine.run h.engine;
  check bool "writer got it first" true (Spanner.Locks.holds_write h.locks ~key:1 ~txn:2);
  Spanner.Locks.release_all h.locks ~txn:2;
  Sim.Engine.run h.engine;
  check bool "then the reader" true (Spanner.Locks.holds_read h.locks ~key:1 ~txn:3)

let test_waiters_behind_blocked_head_proceed () =
  (* The queue must not be strictly FIFO-blocking: a read stuck behind an
     OLDER queued writer must not strand an unrelated waiter. Here two reads
     queue behind a writer; on release both proceed together. *)
  let h = mk () in
  check bool "holder" true (try_write h ~key:1 ~txn:1 ~prio:10 = `Granted);
  check bool "r2 waits" true (try_read h ~key:1 ~txn:2 ~prio:20 = `Pending);
  check bool "r3 waits" true (try_read h ~key:1 ~txn:3 ~prio:30 = `Pending);
  Spanner.Locks.release_all h.locks ~txn:1;
  Sim.Engine.run h.engine;
  check bool "both readers granted" true
    (Spanner.Locks.holds_read h.locks ~key:1 ~txn:2
    && Spanner.Locks.holds_read h.locks ~key:1 ~txn:3)

let test_wounded_waiter_aborted () =
  let h = mk () in
  check bool "holder" true (try_write h ~key:1 ~txn:1 ~prio:10 = `Granted);
  let outcome = ref `Pending in
  Spanner.Locks.acquire_write h.locks ~key:1 ~txn:2 ~priority:(20, 2) (function
    | Spanner.Locks.Granted _ -> outcome := `Granted
    | Spanner.Locks.Aborted -> outcome := `Aborted);
  Sim.Engine.run h.engine;
  (* Txn 2 is wounded elsewhere while queued; release must abort it, not
     grant. *)
  Hashtbl.replace h.wounded 2 ();
  Spanner.Locks.release_all h.locks ~txn:1;
  Sim.Engine.run h.engine;
  check bool "aborted, not granted" true (!outcome = `Aborted)

let test_wound_releases_all_keys () =
  let h = mk () in
  check bool "y holds 1" true (try_write h ~key:1 ~txn:2 ~prio:20 = `Granted);
  check bool "y holds 2" true (try_write h ~key:2 ~txn:2 ~prio:20 = `Granted);
  (* Wounding on key 1 frees key 2 as well: a waiter there gets in. *)
  let blocked = ref `Pending in
  Spanner.Locks.acquire_write h.locks ~key:2 ~txn:3 ~priority:(30, 3) (function
    | Spanner.Locks.Granted _ -> blocked := `Granted
    | Spanner.Locks.Aborted -> blocked := `Aborted);
  Sim.Engine.run h.engine;
  check bool "waiter pending" true (!blocked = `Pending);
  check bool "old wounds via key 1" true (try_write h ~key:1 ~txn:1 ~prio:10 = `Granted);
  Sim.Engine.run h.engine;
  check bool "waiter freed on key 2" true (!blocked = `Granted)

let test_abort_on_already_wounded_request () =
  let h = mk () in
  Hashtbl.replace h.wounded 9 ();
  check bool "wounded requester aborted immediately" true
    (try_read h ~key:1 ~txn:9 ~prio:10 = `Aborted)

let test_wound_counter () =
  let h = mk () in
  ignore (try_write h ~key:1 ~txn:2 ~prio:20);
  ignore (try_write h ~key:1 ~txn:1 ~prio:10);
  check int "one wound inflicted" 1 (Spanner.Locks.wounds_inflicted h.locks)

let test_reacquire_held_lock () =
  let h = mk () in
  check bool "first" true (try_write h ~key:1 ~txn:1 ~prio:10 = `Granted);
  check bool "again" true (try_write h ~key:1 ~txn:1 ~prio:10 = `Granted);
  check bool "read while writing" true (try_read h ~key:1 ~txn:1 ~prio:10 = `Granted)

let suites =
  [
    ( "spanner.locks",
      [
        Alcotest.test_case "shared reads" `Quick test_shared_reads;
        Alcotest.test_case "write excludes" `Quick test_write_excludes;
        Alcotest.test_case "older wounds younger" `Quick test_older_wounds_younger;
        Alcotest.test_case "younger waits" `Quick test_younger_waits;
        Alcotest.test_case "prepared escalation" `Quick test_prepared_escalation;
        Alcotest.test_case "upgrade" `Quick test_upgrade;
        Alcotest.test_case "upgrade wounds reader" `Quick
          test_upgrade_conflict_wounds_other_reader;
        Alcotest.test_case "anti-starvation ordering" `Quick
          test_reader_waits_behind_older_queued_writer;
        Alcotest.test_case "no head-of-line stranding" `Quick
          test_waiters_behind_blocked_head_proceed;
        Alcotest.test_case "wounded waiter aborted" `Quick test_wounded_waiter_aborted;
        Alcotest.test_case "wound releases all keys" `Quick test_wound_releases_all_keys;
        Alcotest.test_case "wounded requester" `Quick test_abort_on_already_wounded_request;
        Alcotest.test_case "wound counter" `Quick test_wound_counter;
        Alcotest.test_case "re-acquire held" `Quick test_reacquire_held_lock;
      ] );
  ]
