(* Tests for the executable Appendix C machinery: the Fig. 17 channel
   automaton, schedule validation, the commutation lemmas (C.1-C.4), and
   the Lemma C.5 transformation — including a property test that randomly
   generated executions transform into equivalent, valid, sequential ones
   (the computational content of Theorem 2). *)

let check = Alcotest.check
let bool = Alcotest.bool

open Ioa

let sendto ?(src = 0) ?(dst = 1) msg = Action.Sendto { src; dst; msg }
let sent ?(src = 0) ?(dst = 1) () = Action.Sent { src; dst }
let recvfrom ?(src = 0) ?(dst = 1) () = Action.Recvfrom { src; dst }
let received ?(src = 0) ?(dst = 1) msg = Action.Received { src; dst; msg }
let invoke proc op = Action.Invoke { proc; op }
let response proc op = Action.Response { proc; op }

(* ------------------------------------------------------------------ *)
(* Channel automaton                                                   *)
(* ------------------------------------------------------------------ *)

let test_channel_happy_path () =
  let acts = [ sendto 1; sent (); recvfrom (); received 1 ] in
  (match Channel.replay acts with
  | Ok s -> check bool "drained" true (s.Channel.queue = [] && not s.Channel.e && not s.Channel.r)
  | Error m -> Alcotest.fail m);
  check bool "well formed" true (Channel.well_formed acts = Ok ())

let test_channel_fifo () =
  let acts =
    [ sendto 1; sent (); sendto 2; sent (); recvfrom (); received 1; recvfrom (); received 2 ]
  in
  check bool "fifo ok" true (Result.is_ok (Channel.replay acts));
  let wrong =
    [ sendto 1; sent (); sendto 2; sent (); recvfrom (); received 2 ]
  in
  check bool "out of order rejected" true (Result.is_error (Channel.replay wrong))

let test_channel_preconditions () =
  check bool "sent without sendto" true
    (Result.is_error (Channel.replay [ sent () ]));
  check bool "received without recvfrom" true
    (Result.is_error (Channel.replay [ sendto 1; received 1 ]));
  check bool "received from empty" true
    (Result.is_error (Channel.replay [ recvfrom (); received 9 ]))

let test_channel_wellformedness () =
  check bool "double sendto" true
    (Result.is_error (Channel.well_formed [ sendto 1; sendto 2 ]));
  check bool "double recvfrom" true
    (Result.is_error (Channel.well_formed [ recvfrom (); recvfrom () ]))

(* ------------------------------------------------------------------ *)
(* Schedule validation                                                 *)
(* ------------------------------------------------------------------ *)

let simple_exec =
  [|
    invoke 0 0;
    response 0 0;
    sendto ~src:0 ~dst:1 7;
    sent ~src:0 ~dst:1 ();
    recvfrom ~src:0 ~dst:1 ();
    received ~src:0 ~dst:1 7;
    invoke 1 1;
    response 1 1;
  |]

let test_validate_ok () =
  match Schedule.validate simple_exec with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_validate_output_while_awaiting () =
  let bad = [| invoke 0 0; sendto ~src:0 ~dst:1 7; response 0 0 |] in
  check bool "rejected" true (Result.is_error (Schedule.validate bad))

let test_validate_double_invoke () =
  let bad = [| invoke 0 0; response 0 0; invoke 1 0 |] in
  check bool "op reused" true (Result.is_error (Schedule.validate bad))

let test_validate_unmatched_response () =
  let bad = [| response 0 3 |] in
  check bool "rejected" true (Result.is_error (Schedule.validate bad))

let test_projection_and_equivalence () =
  let p0 = Schedule.projection simple_exec ~proc:0 in
  check Alcotest.int "p0 actions" 4 (List.length p0);
  check bool "self equivalent" true (Schedule.equivalent simple_exec simple_exec);
  (* Swapping two different-process actions preserves equivalence
     (indices 3 and 4: P0's sent against P1's recvfrom). *)
  let swapped = Array.copy simple_exec in
  swapped.(3) <- simple_exec.(4);
  swapped.(4) <- simple_exec.(3);
  check bool "still equivalent" true (Schedule.equivalent simple_exec swapped)

let test_causal_message_edge () =
  let c = Schedule.causal simple_exec in
  (* sendto (idx 2) causally precedes received (idx 5) and hence P1's
     invocation (idx 6). *)
  check bool "msg edge" true (Rss_core.Causal.precedes c 2 5);
  check bool "transitive to invoke" true (Rss_core.Causal.precedes c 2 6);
  check bool "response before send" true (Rss_core.Causal.precedes c 1 2);
  check bool "cross without msg: none" false (Rss_core.Causal.precedes c 6 0)

(* ------------------------------------------------------------------ *)
(* Commutation lemmas                                                  *)
(* ------------------------------------------------------------------ *)

let test_swap_sent_received () =
  (* sendto m1; sent; sendto m2; sent — against recvfrom/received of m1:
     build adjacency of sent (send side) and recvfrom (recv side). *)
  let t =
    [|
      sendto 1; sent (); recvfrom (); received 1; sendto 2; sent (); recvfrom ();
      received 2;
    |]
  in
  (match Schedule.validate t with Ok () -> () | Error m -> Alcotest.fail m);
  (* indices 1 ("sent") and 2 ("recvfrom") commute (Lemma C.3). *)
  match Schedule.swap_adjacent t 1 with
  | Ok t' ->
    check bool "still valid" true (Result.is_ok (Schedule.validate t'));
    check bool "projections preserved" true (Schedule.equivalent t t')
  | Error m -> Alcotest.fail m

let test_swap_same_message_rejected () =
  let t = [| sendto 1; received 1 |] in
  (* Not even valid (no recvfrom), but the commutation refusal must trigger
     first on the m = m' side condition. *)
  check bool "same message blocked" true (Result.is_error (Schedule.swap_adjacent t 0))

let test_swap_sendto_received_different_messages () =
  let t =
    [| sendto 1; sent (); recvfrom (); sendto 2; received 1; sent (); recvfrom (); received 2 |]
  in
  (match Schedule.validate t with Ok () -> () | Error m -> Alcotest.fail m);
  (* indices 3 (sendto 2) and 4 (received 1): Lemma C.2. *)
  match Schedule.swap_adjacent t 3 with
  | Ok t' -> check bool "valid" true (Result.is_ok (Schedule.validate t'))
  | Error m -> Alcotest.fail m

let test_swap_non_channel_rejected () =
  let t = [| invoke 0 0; response 0 0 |] in
  check bool "rejected" true (Result.is_error (Schedule.swap_adjacent t 0))

(* ------------------------------------------------------------------ *)
(* Lemma C.5 transformation                                            *)
(* ------------------------------------------------------------------ *)

(* Fig. 2's essence: P0's operation op0 spans the whole execution; P1's op1
   completes inside it and S orders op1 first. *)
let fig2_like =
  [| invoke 0 0; invoke 1 1; response 1 1; response 0 0 |]

let test_transform_fig2 () =
  match Transform.lemma_c5 ~sched:fig2_like ~serialization:[ 1; 0 ] () with
  | Error m -> Alcotest.fail m
  | Ok r ->
    check bool "equivalent" true r.Transform.equivalent;
    check bool "valid" true r.Transform.valid;
    check bool "sequential" true r.Transform.sequential;
    check bool "op1 first" true
      (r.Transform.transformed.(0) = invoke 1 1
      && r.Transform.transformed.(1) = response 1 1)

let test_transform_respects_causality_premise () =
  (* A message from P0 (after op0) to P1 (before op1) forces op0 <_S op1;
     the contradictory serialization must be refused. *)
  let sched =
    [|
      invoke 0 0;
      response 0 0;
      sendto ~src:0 ~dst:1 5;
      sent ~src:0 ~dst:1 ();
      recvfrom ~src:0 ~dst:1 ();
      received ~src:0 ~dst:1 5;
      invoke 1 1;
      response 1 1;
    |]
  in
  (match Transform.lemma_c5 ~sched ~serialization:[ 1; 0 ] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "contradictory serialization accepted");
  match Transform.lemma_c5 ~sched ~serialization:[ 0; 1 ] () with
  | Error m -> Alcotest.fail m
  | Ok r ->
    check bool "equivalent" true r.Transform.equivalent;
    check bool "valid" true r.Transform.valid;
    check bool "sequential" true r.Transform.sequential

let test_transform_moves_channel_traffic () =
  (* Channel actions causally tied to a late-serialized op move with it. *)
  let sched =
    [|
      invoke 1 1;
      (* op1 opens first *)
      invoke 0 0;
      response 0 0;
      sendto ~src:0 ~dst:2 9;
      sent ~src:0 ~dst:2 ();
      response 1 1;
      recvfrom ~src:0 ~dst:2 ();
      received ~src:0 ~dst:2 9;
    |]
  in
  (match Schedule.validate sched with Ok () -> () | Error m -> Alcotest.fail m);
  match Transform.lemma_c5 ~sched ~serialization:[ 1; 0 ] () with
  | Error m -> Alcotest.fail m
  | Ok r ->
    check bool "equivalent" true r.Transform.equivalent;
    check bool "valid" true r.Transform.valid;
    check bool "sequential" true r.Transform.sequential

(* Random executions: per-process scripts interleaved by a random scheduler,
   then transformed with the serialization induced by response order. *)
let gen_params = QCheck.Gen.(pair (int_range 2 4) (int_bound 100_000))

let build_random_exec (n_procs, seed) =
  let rng = Sim.Rng.make seed in
  let sched = ref [] in
  let next_op = ref 0 in
  (* Per-process pending intents; channel states for enabledness. *)
  let intents = Array.make n_procs [] in
  for p = 0 to n_procs - 1 do
    let script = ref [] in
    let len = 2 + Sim.Rng.int rng 4 in
    for _ = 1 to len do
      match Sim.Rng.int rng 3 with
      | 0 -> script := `Op :: !script
      | 1 ->
        let dst = Sim.Rng.int rng n_procs in
        if dst <> p then script := `Send dst :: !script
      | _ ->
        let src = Sim.Rng.int rng n_procs in
        if src <> p then script := `Recv src :: !script
    done;
    intents.(p) <- !script
  done;
  let queues : (int * int, int list) Hashtbl.t = Hashtbl.create 8 in
  let msg_counter = ref 0 in
  let guard = ref 0 in
  let continue = ref true in
  while !continue && !guard < 1000 do
    incr guard;
    let p = Sim.Rng.int rng n_procs in
    (match intents.(p) with
    | [] -> ()
    | `Op :: rest ->
      let op = !next_op in
      incr next_op;
      sched := response p op :: invoke p op :: !sched;
      intents.(p) <- rest
    | `Send dst :: rest ->
      incr msg_counter;
      let m = !msg_counter in
      sched := sent ~src:p ~dst () :: sendto ~src:p ~dst m :: !sched;
      let q = try Hashtbl.find queues (p, dst) with Not_found -> [] in
      Hashtbl.replace queues (p, dst) (q @ [ m ]);
      intents.(p) <- rest
    | `Recv src :: rest -> (
      match Hashtbl.find_opt queues (src, p) with
      | Some (m :: q) ->
        Hashtbl.replace queues (src, p) q;
        sched := received ~src ~dst:p m :: recvfrom ~src ~dst:p () :: !sched;
        intents.(p) <- rest
      | Some [] | None ->
        (* nothing to receive yet: skip the intent if nobody will send *)
        if Array.for_all (fun l -> not (List.exists (function `Send d -> d = p | _ -> false) l)) intents
        then intents.(p) <- rest))
    ;
    continue := Array.exists (fun l -> l <> []) intents
  done;
  Array.of_list (List.rev !sched)

let prop_transform_random_execs =
  QCheck.Test.make ~name:"lemma C.5 on random executions" ~count:120
    (QCheck.make gen_params) (fun params ->
      let sched = build_random_exec params in
      match Schedule.validate sched with
      | Error _ -> false (* generator must produce valid executions *)
      | Ok () ->
        (* Serialize complete ops by response order: always causally
           consistent. *)
        let serialization =
          Array.to_list sched
          |> List.filter_map (function Action.Response { op; _ } -> Some op | _ -> None)
        in
        (match Transform.lemma_c5 ~sched ~serialization () with
        | Error _ -> false
        | Ok r -> r.Transform.equivalent && r.Transform.valid && r.Transform.sequential))

let prop_random_swaps_preserve_execution =
  QCheck.Test.make ~name:"commutation lemmas on random executions" ~count:120
    (QCheck.make QCheck.Gen.(pair gen_params (int_bound 50))) (fun (params, k) ->
      let sched = build_random_exec params in
      if Array.length sched < 2 then true
      else
        let k = k mod (Array.length sched - 1) in
        match Schedule.swap_adjacent sched k with
        | Error _ -> true (* not a commutable pair: fine *)
        | Ok sched' ->
          Result.is_ok (Schedule.validate sched') && Schedule.equivalent sched sched')

(* ------------------------------------------------------------------ *)
(* Appendix C.4 composition                                            *)
(* ------------------------------------------------------------------ *)

let cop ?(fence = false) id service proc inv =
  { Compose.o_id = id; o_service = service; o_proc = proc; o_inv = inv; o_is_fence = fence }

let test_compose_fenced_interleaving () =
  (* One process: write at service 0, fence it, write at service 1; another
     process reads service 1 then service 0. The construction must place
     service 0's write before service 1's for any observer past the fence. *)
  let ops =
    [
      cop 0 0 0 0;          (* P0: w at service 0 *)
      cop ~fence:true 1 0 0 10;  (* P0: fence at service 0 *)
      cop 2 1 0 20;         (* P0: w at service 1 *)
      cop 3 1 1 30;         (* P1: r at service 1 (sees the write) *)
      cop 4 0 1 40;         (* P1: r at service 0 *)
    ]
  in
  let orders = [ (0, [ 0; 1; 4 ]); (1, [ 2; 3 ]) ] in
  match Compose.compose ~ops ~orders with
  | Error m -> Alcotest.fail m
  | Ok order ->
    let pos x =
      let rec find i = function [] -> -1 | y :: r -> if y = x then i else find (i + 1) r in
      find 0 order
    in
    check bool "w0 before w1 (fence lifts it)" true (pos 0 < pos 2);
    check bool "w1 before r1" true (pos 2 < pos 3);
    check bool "r0 after w0" true (pos 4 > pos 0);
    check Alcotest.(list int) "permutation of non-fences" [ 0; 2; 3; 4 ]
      (List.sort compare order)

let test_compose_preserves_service_orders () =
  let ops =
    [ cop 0 0 0 0; cop 1 0 1 10; cop 2 1 0 20; cop 3 1 1 30 ]
  in
  let orders = [ (0, [ 0; 1 ]); (1, [ 3; 2 ]) ] in
  match Compose.compose ~ops ~orders with
  | Error m -> Alcotest.fail m
  | Ok order ->
    let pos x =
      let rec find i = function [] -> -1 | y :: r -> if y = x then i else find (i + 1) r in
      find 0 order
    in
    check bool "service 0 order kept" true (pos 0 < pos 1);
    check bool "service 1 order kept (3 before 2)" true (pos 3 < pos 2)

let test_compose_surfaces_the_cycle () =
  (* §4.1's fence-free cycle: each service serializes the stale read before
     its write; with no fences, the construction still yields *a* total
     order — but pairing it with the reads shows it cannot be legal, which
     is exactly why the theorem requires the fences. *)
  let ops =
    [
      cop 0 0 2 0;   (* w_x at service 0 *)
      cop 1 1 3 0;   (* w_y at service 1 *)
      cop 2 0 0 10;  (* P0 reads x=1   (after w_x in S_0) *)
      cop 3 1 0 30;  (* P0 reads y=nil (before w_y in S_1) *)
      cop 4 1 1 10;  (* P1 reads y=1   (after w_y in S_1) *)
      cop 5 0 1 30;  (* P1 reads x=nil (before w_x in S_0) *)
    ]
  in
  let orders = [ (0, [ 5; 0; 2 ]); (1, [ 3; 1; 4 ]) ] in
  match Compose.compose ~ops ~orders with
  | Error m -> Alcotest.fail m
  | Ok order ->
    (* Build the combined history and replay the composed order: the stale
       reads and the per-process orders cannot all hold. *)
    let module T = Rss_core.Txn_history in
    let txns =
      [|
        T.rw ~id:0 ~proc:2 ~writes:[ ("x", 1) ] ~inv:0 ~resp:1000 ();
        T.rw ~id:1 ~proc:3 ~writes:[ ("y", 1) ] ~inv:0 ~resp:1000 ();
        T.ro ~id:2 ~proc:0 ~reads:[ ("x", Some 1) ] ~inv:10 ~resp:20 ();
        T.ro ~id:3 ~proc:0 ~reads:[ ("y", None) ] ~inv:30 ~resp:40 ();
        T.ro ~id:4 ~proc:1 ~reads:[ ("y", Some 1) ] ~inv:10 ~resp:20 ();
        T.ro ~id:5 ~proc:1 ~reads:[ ("x", None) ] ~inv:30 ~resp:40 ();
      |]
    in
    let store : (string, int) Hashtbl.t = Hashtbl.create 4 in
    let legal = ref true in
    let session_ok = ref true in
    let last_pos = Hashtbl.create 4 in
    List.iteri
      (fun i id ->
        let x = txns.(id) in
        (match Hashtbl.find_opt last_pos x.T.proc with
        | Some (prev_inv, _) when prev_inv > x.T.inv -> session_ok := false
        | _ -> ());
        Hashtbl.replace last_pos x.T.proc (x.T.inv, i);
        List.iter
          (fun (k, v) -> if Hashtbl.find_opt store k <> v then legal := false)
          x.T.reads;
        List.iter (fun (k, v) -> Hashtbl.replace store k v) x.T.writes)
      order;
    check bool "composed order cannot be both legal and session-ordered" false
      (!legal && !session_ok)

(* Random fence-disciplined executions over two per-service sequential
   stores: composing the per-service serializations must always yield a
   legal, session-respecting global order (Theorem C.14's conclusion). *)
let prop_compose_fenced_executions =
  QCheck.Test.make ~name:"C.14: composed fenced executions are consistent" ~count:150
    QCheck.(pair (int_range 2 4) (int_bound 100_000))
    (fun (n_procs, seed) ->
      let rng = Sim.Rng.make seed in
      let stores = [| Hashtbl.create 4; Hashtbl.create 4 |] in
      let orders = [| []; [] |] in
      let ops = ref [] in
      let reads = ref [] in
      let next_id = ref 0 in
      let next_val = ref 0 in
      let clock = ref 0 in
      let last_service = Array.make n_procs (-1) in
      (* Random interleaving of process steps; services execute ops
         instantly (each service is linearizable on its own). *)
      for _ = 1 to n_procs * 6 do
        let proc = Sim.Rng.int rng n_procs in
        let service = Sim.Rng.int rng 2 in
        incr clock;
        (* fence at the previous service before switching *)
        if last_service.(proc) >= 0 && last_service.(proc) <> service then begin
          let f = !next_id in
          incr next_id;
          ops :=
            { Compose.o_id = f; o_service = last_service.(proc); o_proc = proc;
              o_inv = !clock; o_is_fence = true }
            :: !ops;
          orders.(last_service.(proc)) <- f :: orders.(last_service.(proc))
        end;
        last_service.(proc) <- service;
        incr clock;
        let id = !next_id in
        incr next_id;
        let key = Fmt.str "s%dk%d" service (Sim.Rng.int rng 2) in
        if Sim.Rng.bool rng 0.5 then begin
          incr next_val;
          Hashtbl.replace stores.(service) key !next_val;
          ops :=
            { Compose.o_id = id; o_service = service; o_proc = proc;
              o_inv = !clock; o_is_fence = false }
            :: !ops;
          reads := (id, key, None, Some !next_val) :: !reads
        end
        else begin
          ops :=
            { Compose.o_id = id; o_service = service; o_proc = proc;
              o_inv = !clock; o_is_fence = false }
            :: !ops;
          reads := (id, key, Some (Hashtbl.find_opt stores.(service) key), None) :: !reads
        end;
        orders.(service) <- id :: orders.(service)
      done;
      let orders = [ (0, List.rev orders.(0)); (1, List.rev orders.(1)) ] in
      match Compose.compose ~ops:!ops ~orders with
      | Error _ -> false
      | Ok order ->
        (* Replay: every read sees the latest composed write; per-process
           invocation order respected. *)
        let semantics = Hashtbl.create 16 in
        List.iter (fun (id, k, r, w) -> Hashtbl.replace semantics id (k, r, w)) !reads;
        let store = Hashtbl.create 8 in
        let by_id = Hashtbl.create 16 in
        List.iter (fun (o : Compose.op) -> Hashtbl.replace by_id o.Compose.o_id o) !ops;
        let legal = ref true in
        let last_inv = Hashtbl.create 8 in
        List.iter
          (fun id ->
            let o = Hashtbl.find by_id id in
            (match Hashtbl.find_opt last_inv o.Compose.o_proc with
            | Some prev when prev > o.Compose.o_inv -> legal := false
            | _ -> ());
            Hashtbl.replace last_inv o.Compose.o_proc o.Compose.o_inv;
            match Hashtbl.find_opt semantics id with
            | None -> ()
            | Some (k, r, w) ->
              (match r with
              | Some expect -> if Hashtbl.find_opt store k <> expect then legal := false
              | None -> ());
              (match w with
              | Some v -> Hashtbl.replace store k v
              | None -> ()))
          order;
        !legal)

let test_compose_rejects_malformed () =
  let ops = [ cop 0 0 0 0 ] in
  check bool "op missing from order" true
    (Result.is_error (Compose.compose ~ops ~orders:[ (0, []) ]));
  check bool "unknown op in order" true
    (Result.is_error (Compose.compose ~ops ~orders:[ (0, [ 0; 9 ]) ]));
  check bool "wrong service" true
    (Result.is_error (Compose.compose ~ops ~orders:[ (1, [ 0 ]) ]))

let suites =
  [
    ( "ioa.channel",
      [
        Alcotest.test_case "happy path" `Quick test_channel_happy_path;
        Alcotest.test_case "fifo" `Quick test_channel_fifo;
        Alcotest.test_case "preconditions" `Quick test_channel_preconditions;
        Alcotest.test_case "well-formedness" `Quick test_channel_wellformedness;
      ] );
    ( "ioa.schedule",
      [
        Alcotest.test_case "validate ok" `Quick test_validate_ok;
        Alcotest.test_case "output while awaiting" `Quick
          test_validate_output_while_awaiting;
        Alcotest.test_case "double invoke" `Quick test_validate_double_invoke;
        Alcotest.test_case "unmatched response" `Quick test_validate_unmatched_response;
        Alcotest.test_case "projection/equivalence" `Quick
          test_projection_and_equivalence;
        Alcotest.test_case "causal message edges" `Quick test_causal_message_edge;
      ] );
    ( "ioa.commutation",
      [
        Alcotest.test_case "sent/recvfrom (C.3)" `Quick test_swap_sent_received;
        Alcotest.test_case "same message blocked" `Quick test_swap_same_message_rejected;
        Alcotest.test_case "sendto/received m!=m' (C.2)" `Quick
          test_swap_sendto_received_different_messages;
        Alcotest.test_case "non-channel rejected" `Quick test_swap_non_channel_rejected;
        QCheck_alcotest.to_alcotest prop_random_swaps_preserve_execution;
      ] );
    ( "ioa.compose",
      [
        Alcotest.test_case "fenced interleaving" `Quick test_compose_fenced_interleaving;
        Alcotest.test_case "service orders preserved" `Quick
          test_compose_preserves_service_orders;
        Alcotest.test_case "fence-free cycle surfaces" `Quick
          test_compose_surfaces_the_cycle;
        Alcotest.test_case "malformed inputs" `Quick test_compose_rejects_malformed;
        QCheck_alcotest.to_alcotest prop_compose_fenced_executions;
      ] );
    ( "ioa.transform",
      [
        Alcotest.test_case "Fig. 2 example" `Quick test_transform_fig2;
        Alcotest.test_case "causality premise enforced" `Quick
          test_transform_respects_causality_premise;
        Alcotest.test_case "channel traffic moves" `Quick
          test_transform_moves_channel_traffic;
        QCheck_alcotest.to_alcotest prop_transform_random_execs;
      ] );
  ]
