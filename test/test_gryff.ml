(* Tests for Gryff / Gryff-RSC: carstamps, the shared-register read/write
   protocols (one- vs two-round reads), EPaxos-style rmws, dependency
   piggybacking, fences, and end-to-end witness checks of randomized runs. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let mk ?(mode = Gryff.Config.Rsc) ?(seed = 42) () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make seed in
  let config = Gryff.Config.wan5 ~mode () in
  let cluster = Gryff.Cluster.create engine ~rng config in
  (engine, cluster)

let run = Sim.Engine.run

(* ------------------------------------------------------------------ *)
(* Carstamps                                                           *)
(* ------------------------------------------------------------------ *)

let test_carstamp_order () =
  let base = Gryff.Carstamp.zero in
  let w1 = Gryff.Carstamp.for_write ~base ~cid:1 in
  let w2 = Gryff.Carstamp.for_write ~base:w1 ~cid:2 in
  let m1 = Gryff.Carstamp.for_rmw ~base:w1 in
  check bool "write after base" true Gryff.Carstamp.(w1 > base);
  check bool "rmw after its base write" true Gryff.Carstamp.(m1 > w1);
  check bool "rmw before next write" true Gryff.Carstamp.(w2 > m1);
  let m2 = Gryff.Carstamp.for_rmw ~base:m1 in
  check bool "rmw chains" true Gryff.Carstamp.(m2 > m1);
  (* The Lemma B.10 case: an rmw on w1 sorts before a concurrent same-ts
     write by a higher client id — no write can slip between an rmw and its
     base. *)
  let w1' = Gryff.Carstamp.for_write ~base ~cid:5 in
  check bool "rmw sticks to its base" true Gryff.Carstamp.(w1' > m1)

let test_carstamp_tiebreak () =
  let base = Gryff.Carstamp.zero in
  let a = Gryff.Carstamp.for_write ~base ~cid:1 in
  let b = Gryff.Carstamp.for_write ~base ~cid:2 in
  check bool "same ts, cid breaks tie" true Gryff.Carstamp.(b > a);
  check bool "not equal" false (Gryff.Carstamp.equal a b)

let prop_carstamp_total_order =
  QCheck.Test.make ~name:"carstamp compare is a total order" ~count:300
    QCheck.(triple (pair small_nat small_nat) (pair small_nat small_nat) (pair small_nat small_nat))
    (fun ((a1, a2), (b1, b2), (c1, c2)) ->
      let mk (ts, rmwc) = { Gryff.Carstamp.ts; rmwc; cid = (ts + rmwc) mod 3 } in
      ignore mk;
      let mk (ts, rmwc) = { Gryff.Carstamp.ts; cid = (ts + rmwc) mod 3; rmwc } in
      let a = mk (a1, a2) and b = mk (b1, b2) and c = mk (c1, c2) in
      let cmp = Gryff.Carstamp.compare in
      (* antisymmetry and transitivity on the sampled triple *)
      (cmp a b = -cmp b a)
      && ((not (cmp a b <= 0 && cmp b c <= 0)) || cmp a c <= 0))

(* ------------------------------------------------------------------ *)
(* Reads and writes                                                    *)
(* ------------------------------------------------------------------ *)

let test_write_then_read () =
  let engine, cluster = mk () in
  let c = Gryff.Client.create cluster ~site:0 in
  let got = ref None in
  Gryff.Client.write c ~key:7 ~value:99 (fun _ ->
      Gryff.Client.read c ~key:7 (fun r -> got := Some r));
  run engine;
  match !got with
  | Some r ->
    check bool "value read" true (r.Gryff.Protocol.r_value = Some 99);
    check int "one round (stable value)" 1 r.Gryff.Protocol.r_rounds
  | None -> Alcotest.fail "did not complete"

let test_read_empty () =
  let engine, cluster = mk () in
  let c = Gryff.Client.create cluster ~site:2 in
  let got = ref None in
  Gryff.Client.read c ~key:5 (fun r -> got := Some r);
  run engine;
  match !got with
  | Some r ->
    check bool "nil" true (r.Gryff.Protocol.r_value = None);
    check int "one round" 1 r.Gryff.Protocol.r_rounds
  | None -> Alcotest.fail "did not complete"

let test_read_latency_is_quorum_rtt () =
  (* A client in IR: nearest quorum is {IR, VA(88), OR(145)} — a one-round
     read costs ~145 ms (the paper's p99 for low conflict). *)
  let engine, cluster = mk () in
  let c = Gryff.Client.create cluster ~site:2 in
  let lat = ref 0 in
  Gryff.Client.read c ~key:1 (fun _ -> lat := Sim.Engine.now engine);
  run engine;
  check bool "~145ms quorum" true (!lat >= 145_000 && !lat < 152_000)

let test_read_latency_geometry_all_sites () =
  (* One-round read latency from each region = RTT to its 3rd-nearest
     replica (including itself), straight from Table 2 — this grounds the
     simulator-substitution claim in DESIGN.md. *)
  let expected = [ (0, 72.0); (1, 88.0); (2, 145.0); (3, 93.0); (4, 121.0) ] in
  List.iter
    (fun (site, rtt_ms) ->
      let engine, cluster = mk ~seed:(100 + site) () in
      let c = Gryff.Client.create cluster ~site in
      let lat = ref 0 in
      Gryff.Client.read c ~key:1 (fun _ -> lat := Sim.Engine.now engine);
      run engine;
      let base = Sim.Engine.ms rtt_ms in
      check bool
        (Fmt.str "site %d read ~%.0fms (got %.1f)" site rtt_ms
           (Sim.Engine.to_ms !lat))
        true
        (!lat >= base && !lat <= base + (base / 25)))
    expected

(* Read racing a write's propagation. The writer sits in JP; its second
   phase reaches CA/OR/VA tens of ms before IR. A reader in IR queries its
   nearest quorum {IR, VA, OR}: fired at 170 ms, the IR replica has not yet
   applied the write (arrives ~231 ms) while VA (~202 ms, queried at ~214)
   and OR (~182, queried at ~243) have — a guaranteed split quorum. *)
let concurrent_read ~mode =
  let engine, cluster = mk ~mode () in
  let writer = Gryff.Client.create cluster ~site:4 in
  let reader = Gryff.Client.create cluster ~site:2 in
  let read_res = ref None in
  let read_lat = ref 0 in
  Gryff.Client.write writer ~key:3 ~value:1 (fun _ -> ());
  Sim.Engine.schedule engine ~after:170_000 (fun () ->
      let t0 = Sim.Engine.now engine in
      Gryff.Client.read reader ~key:3 (fun r ->
          read_res := Some r;
          read_lat := Sim.Engine.now engine - t0));
  run engine;
  (!read_res, !read_lat)

let test_lin_read_two_rounds_under_conflict () =
  match concurrent_read ~mode:Gryff.Config.Lin with
  | Some r, lat ->
    check int "two rounds" 2 r.Gryff.Protocol.r_rounds;
    check bool "latency ≥ 2 quorum RTTs" true (lat >= 280_000)
  | None, _ -> Alcotest.fail "read did not complete"

let test_rsc_read_one_round_under_conflict () =
  match concurrent_read ~mode:Gryff.Config.Rsc with
  | Some r, lat ->
    check int "one round" 1 r.Gryff.Protocol.r_rounds;
    check bool "latency = 1 quorum RTT" true (lat < 160_000);
    check bool "value still returned" true (r.Gryff.Protocol.r_value = Some 1)
  | None, _ -> Alcotest.fail "read did not complete"

let test_rsc_dep_created_and_cleared () =
  let engine, cluster = mk ~mode:Gryff.Config.Rsc () in
  let writer = Gryff.Client.create cluster ~site:4 in
  let reader = Gryff.Client.create cluster ~site:2 in
  Gryff.Client.write writer ~key:3 ~value:1 (fun _ -> ());
  Sim.Engine.schedule engine ~after:170_000 (fun () ->
      Gryff.Client.read reader ~key:3 (fun r ->
          check int "one round" 1 r.Gryff.Protocol.r_rounds;
          check int "dependency recorded" 1 (List.length (Gryff.Client.deps reader));
          (* The next operation clears it. *)
          Gryff.Client.read reader ~key:9 (fun _ ->
              check int "dependency cleared" 0
                (List.length (Gryff.Client.deps reader)))));
  run engine

let test_rsc_session_reads_monotone () =
  (* After observing the new value via a dependency, the same session can
     never read the older one again: the dep rides on the next read. *)
  let engine, cluster = mk ~mode:Gryff.Config.Rsc ~seed:4 () in
  let writer = Gryff.Client.create cluster ~site:0 in
  let reader = Gryff.Client.create cluster ~site:4 in
  let seen = ref [] in
  Gryff.Client.write writer ~key:3 ~value:1 (fun _ ->
      Gryff.Client.write writer ~key:3 ~value:2 (fun _ -> ()));
  let rec read_loop n =
    if n > 0 then
      Gryff.Client.read reader ~key:3 (fun r ->
          seen := r.Gryff.Protocol.r_value :: !seen;
          read_loop (n - 1))
  in
  Sim.Engine.schedule engine ~after:100_000 (fun () -> read_loop 8);
  run engine;
  let vs = List.rev !seen in
  let rec monotone prev = function
    | [] -> true
    | v :: rest ->
      let n = match v with None -> 0 | Some x -> x in
      n >= prev && monotone n rest
  in
  check bool "session values never go backwards" true (monotone 0 vs)

(* ------------------------------------------------------------------ *)
(* Rmws                                                                *)
(* ------------------------------------------------------------------ *)

let incr_fn v = match v with None -> 1 | Some x -> x + 1

let test_rmw_basic () =
  let engine, cluster = mk () in
  let c = Gryff.Client.create cluster ~site:1 in
  let got = ref None in
  Gryff.Client.rmw c ~key:2 ~f:incr_fn (fun r ->
      Gryff.Client.rmw c ~key:2 ~f:incr_fn (fun r2 -> got := Some (r, r2)));
  run engine;
  match !got with
  | Some (r1, r2) ->
    check bool "first incr" true (r1.Gryff.Protocol.m_value = 1);
    check bool "second incr" true (r2.Gryff.Protocol.m_value = 2);
    check bool "carstamps ordered" true
      Gryff.Carstamp.(r2.Gryff.Protocol.m_cs > r1.Gryff.Protocol.m_cs)
  | None -> Alcotest.fail "rmws did not complete"

let test_rmw_after_write () =
  let engine, cluster = mk () in
  let c = Gryff.Client.create cluster ~site:0 in
  let got = ref None in
  Gryff.Client.write c ~key:2 ~value:10 (fun w ->
      Gryff.Client.rmw c ~key:2 ~f:incr_fn (fun r -> got := Some (w, r)));
  run engine;
  match !got with
  | Some (w, r) ->
    check bool "rmw saw the write" true (r.Gryff.Protocol.m_observed = Some 10);
    check bool "result" true (r.Gryff.Protocol.m_value = 11);
    check bool "rmw cs slots after write" true
      Gryff.Carstamp.(r.Gryff.Protocol.m_cs > w.Gryff.Protocol.w_cs);
    check int "same ts, bumped rmwc" w.Gryff.Protocol.w_cs.Gryff.Carstamp.ts
      r.Gryff.Protocol.m_cs.Gryff.Carstamp.ts;
    check int "inherits the base's cid" w.Gryff.Protocol.w_cs.Gryff.Carstamp.cid
      r.Gryff.Protocol.m_cs.Gryff.Carstamp.cid
  | None -> Alcotest.fail "did not complete"

let test_rmw_visible_once_complete () =
  (* Regression: an rmw must not complete before its result is applied at a
     quorum — otherwise a subsequent read from any region could miss it. *)
  List.iter
    (fun mode ->
      for seed = 1 to 10 do
        let engine = Sim.Engine.create () in
        let cluster =
          Gryff.Cluster.create engine ~rng:(Sim.Rng.make seed)
            (Gryff.Config.wan5 ~mode ())
        in
        let actor = Gryff.Client.create cluster ~site:(seed mod 5) in
        let observer = Gryff.Client.create cluster ~site:((seed + 2) mod 5) in
        let seen = ref None in
        Gryff.Client.rmw actor ~key:1 ~f:incr_fn (fun m ->
            Gryff.Client.read observer ~key:1 (fun r ->
                seen := Some (m.Gryff.Protocol.m_value, r.Gryff.Protocol.r_value)));
        Sim.Engine.run engine;
        match !seen with
        | Some (written, Some observed) when observed >= written -> ()
        | Some (_, _) -> Alcotest.fail (Fmt.str "seed %d: read missed completed rmw" seed)
        | None -> Alcotest.fail "did not complete"
      done)
    [ Gryff.Config.Lin; Gryff.Config.Rsc ]

let test_rmw_concurrent_atomic () =
  (* Five clients, one per region, concurrently increment one counter many
     times: every increment must take effect exactly once. *)
  let engine, cluster = mk ~seed:9 () in
  let n_per_client = 10 in
  let done_count = ref 0 in
  for site = 0 to 4 do
    let c = Gryff.Client.create cluster ~site in
    let rec loop n =
      if n > 0 then
        Gryff.Client.rmw c ~key:0 ~f:incr_fn (fun _ -> incr_done (n - 1))
    and incr_done n =
      incr done_count;
      loop n
    in
    loop n_per_client
  done;
  Sim.Engine.run ~max_events:10_000_000 engine;
  check int "all rmws done" 50 !done_count;
  (* Read the final value. *)
  let final = ref None in
  let c = Gryff.Client.create cluster ~site:0 in
  Gryff.Client.rmw c ~key:0 ~f:(fun v -> match v with None -> 0 | Some x -> x)
    (fun r -> final := r.Gryff.Protocol.m_observed);
  run engine;
  check bool "no lost increments" true (!final = Some 50)

let test_rmw_interference_uses_slow_path () =
  let engine, cluster = mk ~seed:10 () in
  for site = 0 to 4 do
    let c = Gryff.Client.create cluster ~site in
    let rec loop n = if n > 0 then Gryff.Client.rmw c ~key:0 ~f:incr_fn (fun _ -> loop (n - 1)) in
    loop 5
  done;
  Sim.Engine.run ~max_events:10_000_000 engine;
  let s = Gryff.Cluster.stats cluster in
  check int "rmws" 25 s.Gryff.Cluster.rmws;
  check bool "some took the accept round" true (s.Gryff.Cluster.rmw_slow > 0)

(* ------------------------------------------------------------------ *)
(* Fences and cross-client causality                                   *)
(* ------------------------------------------------------------------ *)

let test_fence_makes_dep_visible () =
  (* Reader A observes an in-flight value one-round (dep pending); after A's
     fence, ANY fresh client must observe it too. *)
  let engine, cluster = mk ~mode:Gryff.Config.Rsc ~seed:5 () in
  let writer = Gryff.Client.create cluster ~site:4 in
  let a = Gryff.Client.create cluster ~site:2 in
  Gryff.Client.write writer ~key:3 ~value:1 (fun _ -> ());
  Sim.Engine.schedule engine ~after:170_000 (fun () ->
      Gryff.Client.read a ~key:3 (fun r ->
          let seen = r.Gryff.Protocol.r_value in
          Gryff.Client.fence a (fun () ->
              let b = Gryff.Client.create cluster ~site:4 in
              Gryff.Client.read b ~key:3 (fun rb ->
                  let seen_b =
                    match (rb.Gryff.Protocol.r_value, seen) with
                    | Some vb, Some va -> vb >= va
                    | None, Some _ -> false
                    | _, None -> true
                  in
                  check bool "post-fence reader sees at least as much" true seen_b))));
  run engine

let test_absorb_deps_cross_client () =
  (* A reads an in-flight value, "calls" B (context propagation): B's next
     read must return at least as new a value. *)
  let engine, cluster = mk ~mode:Gryff.Config.Rsc ~seed:6 () in
  let writer = Gryff.Client.create cluster ~site:4 in
  let a = Gryff.Client.create cluster ~site:2 in
  let b = Gryff.Client.create cluster ~site:0 in
  Gryff.Client.write writer ~key:3 ~value:1 (fun _ -> ());
  Sim.Engine.schedule engine ~after:170_000 (fun () ->
      Gryff.Client.read a ~key:3 (fun ra ->
          Gryff.Client.absorb_deps b (Gryff.Client.deps a);
          Gryff.Client.read b ~key:3 (fun rb ->
              let ok =
                match (ra.Gryff.Protocol.r_value, rb.Gryff.Protocol.r_value) with
                | Some va, Some vb -> vb >= va
                | None, _ -> true
                | Some _, None -> false
              in
              check bool "causally-later read at least as new" true ok)));
  run engine

(* ------------------------------------------------------------------ *)
(* Failure tolerance                                                   *)
(* ------------------------------------------------------------------ *)

let test_tolerates_two_replica_crashes () =
  (* 5 replicas, quorum 3: any two may crash and every operation kind still
     completes (clients and rmw coordinators must be at live sites). *)
  let engine, cluster = mk ~mode:Gryff.Config.Rsc ~seed:7 () in
  Sim.Net.set_down (Gryff.Cluster.net cluster) 1;
  Sim.Net.set_down (Gryff.Cluster.net cluster) 3;
  let c = Gryff.Client.create cluster ~site:0 in
  let done_ = ref false in
  Gryff.Client.write c ~key:5 ~value:50 (fun _ ->
      Gryff.Client.read c ~key:5 (fun r ->
          check bool "read sees the write" true (r.Gryff.Protocol.r_value = Some 50);
          Gryff.Client.rmw c ~key:5 ~f:incr_fn (fun m ->
              check bool "rmw applied" true (m.Gryff.Protocol.m_value = 51);
              done_ := true)));
  Sim.Engine.run ~max_events:5_000_000 engine;
  check bool "all ops completed with 2 crashes" true !done_;
  (match Gryff.Cluster.check_history cluster with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  check bool "messages were dropped" true
    (Sim.Net.messages_dropped (Gryff.Cluster.net cluster) > 0)

let test_stalls_beyond_quorum_loss () =
  (* Three crashes exceed f: operations cannot complete (and must not
     complete wrongly). *)
  let engine, cluster = mk ~mode:Gryff.Config.Rsc ~seed:8 () in
  List.iter (Sim.Net.set_down (Gryff.Cluster.net cluster)) [ 1; 2; 3 ];
  let c = Gryff.Client.create cluster ~site:0 in
  let completed = ref false in
  Gryff.Client.read c ~key:5 (fun _ -> completed := true);
  Sim.Engine.run ~max_events:5_000_000 engine;
  check bool "read never completes" false !completed

let test_recovery_after_restart () =
  let engine, cluster = mk ~mode:Gryff.Config.Rsc ~seed:9 () in
  List.iter (Sim.Net.set_down (Gryff.Cluster.net cluster)) [ 1; 2; 3 ];
  let c = Gryff.Client.create cluster ~site:0 in
  let completed = ref false in
  (* Bring one replica back before issuing: quorum restored. *)
  Sim.Engine.schedule engine ~after:50_000 (fun () ->
      Sim.Net.set_up (Gryff.Cluster.net cluster) 1;
      Gryff.Client.write c ~key:6 ~value:60 (fun _ -> completed := true));
  Sim.Engine.run ~max_events:5_000_000 engine;
  check bool "write completes after recovery" true !completed

(* ------------------------------------------------------------------ *)
(* End-to-end randomized runs + witness                                *)
(* ------------------------------------------------------------------ *)

let random_run ?(n_clients = 16) ?(n_keys = 500) ~mode ~seed ~conflict
    ~write_ratio ~until () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make seed in
  let config = Gryff.Config.wan5 ~mode () in
  let cluster = Gryff.Cluster.create engine ~rng config in
  let wl_rng = Sim.Rng.split rng in
  let ycsb = Workload.Ycsb.create ~rng:wl_rng ~n_keys ~write_ratio ~conflict in
  let next_val = ref 0 in
  let clients =
    Array.init n_clients (fun i -> Gryff.Client.create cluster ~site:(i mod 5))
  in
  Workload.Client_model.closed_loop engine ~n_clients
    ~body:(fun ~client k ->
      let c = clients.(client) in
      let op = Workload.Ycsb.sample ycsb in
      if op.Workload.Ycsb.is_write then begin
        incr next_val;
        Gryff.Client.write c ~key:op.Workload.Ycsb.key ~value:!next_val (fun _ -> k ())
      end
      else Gryff.Client.read c ~key:op.Workload.Ycsb.key (fun _ -> k ()))
    ~until ();
  Sim.Engine.run ~max_events:30_000_000 engine;
  cluster

let test_random_run_rsc_witness () =
  let cluster =
    random_run ~mode:Gryff.Config.Rsc ~seed:21 ~conflict:0.25 ~write_ratio:0.5
      ~until:(Sim.Engine.sec 30.0) ()
  in
  let s = Gryff.Cluster.stats cluster in
  check bool "load" true (s.Gryff.Cluster.reads > 500);
  check bool "deps were exercised" true (s.Gryff.Cluster.deps_created > 0);
  check int "rsc never pays a second round" 0 s.Gryff.Cluster.read_second_round;
  match Gryff.Cluster.check_history cluster with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("rsc witness: " ^ m)

let test_random_run_lin_witness () =
  let cluster =
    random_run ~mode:Gryff.Config.Lin ~seed:22 ~conflict:0.25 ~write_ratio:0.5
      ~until:(Sim.Engine.sec 30.0) ()
  in
  let s = Gryff.Cluster.stats cluster in
  check bool "load" true (s.Gryff.Cluster.reads > 500);
  check bool "lin pays second rounds under conflict" true
    (s.Gryff.Cluster.read_second_round > 0);
  match Gryff.Cluster.check_history cluster with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("lin witness: " ^ m)

let test_determinism () =
  let run () =
    let c =
      random_run ~n_clients:8 ~mode:Gryff.Config.Rsc ~seed:31 ~conflict:0.2
        ~write_ratio:0.4 ~until:(Sim.Engine.sec 5.0) ()
    in
    let s = Gryff.Cluster.stats c in
    ( s.Gryff.Cluster.reads,
      s.Gryff.Cluster.writes,
      s.Gryff.Cluster.deps_created,
      s.Gryff.Cluster.messages )
  in
  check bool "identical stats" true (run () = run ())

let test_small_run_full_rsc_search () =
  (* Convert a small two-key run into a register history and run the exact
     RSC search checker — this covers the cross-key causality that the
     per-key witness cannot. *)
  let cluster =
    random_run ~n_clients:3 ~n_keys:2 ~mode:Gryff.Config.Rsc ~seed:23
      ~conflict:0.5 ~write_ratio:0.5 ~until:600_000 ()
  in
  let records = Gryff.Cluster.records cluster in
  let n = Array.length records in
  check bool "small but non-trivial" true (n > 4 && n < 40);
  let ops =
    Array.to_list records
    |> List.mapi (fun i (r : Gryff.Cluster.record) ->
           let key = string_of_int r.Gryff.Cluster.g_key in
           match r.Gryff.Cluster.g_kind with
           | Gryff.Cluster.Read ->
             Rss_core.History.read ~id:i ~proc:r.Gryff.Cluster.g_proc ~key
               ?value:r.Gryff.Cluster.g_observed ~inv:r.Gryff.Cluster.g_inv
               ~resp:r.Gryff.Cluster.g_resp ()
           | Gryff.Cluster.Write ->
             Rss_core.History.write ~id:i ~proc:r.Gryff.Cluster.g_proc ~key
               ~value:(Option.get r.Gryff.Cluster.g_written)
               ~inv:r.Gryff.Cluster.g_inv ~resp:r.Gryff.Cluster.g_resp ()
           | Gryff.Cluster.Rmw ->
             Rss_core.History.rmw ~id:i ~proc:r.Gryff.Cluster.g_proc ~key
               ?observed:r.Gryff.Cluster.g_observed
               ~result:(Option.get r.Gryff.Cluster.g_written)
               ~inv:r.Gryff.Cluster.g_inv ~resp:r.Gryff.Cluster.g_resp ())
  in
  let h = Rss_core.History.make ops in
  check bool "run satisfies RSC (search checker)" true
    (Rss_core.Check_reg.satisfies ~max_states:5_000_000 h Rss_core.Check_reg.Rsc
    = Some true)

let suites =
  [
    ( "gryff.carstamp",
      [
        Alcotest.test_case "ordering" `Quick test_carstamp_order;
        Alcotest.test_case "tiebreak" `Quick test_carstamp_tiebreak;
        QCheck_alcotest.to_alcotest prop_carstamp_total_order;
      ] );
    ( "gryff.registers",
      [
        Alcotest.test_case "write then read" `Quick test_write_then_read;
        Alcotest.test_case "read empty" `Quick test_read_empty;
        Alcotest.test_case "read latency = quorum rtt" `Quick
          test_read_latency_is_quorum_rtt;
        Alcotest.test_case "latency geometry, all sites" `Quick
          test_read_latency_geometry_all_sites;
        Alcotest.test_case "lin: 2 rounds under conflict" `Quick
          test_lin_read_two_rounds_under_conflict;
        Alcotest.test_case "rsc: 1 round under conflict" `Quick
          test_rsc_read_one_round_under_conflict;
        Alcotest.test_case "rsc: dep lifecycle" `Quick test_rsc_dep_created_and_cleared;
        Alcotest.test_case "rsc: session monotone" `Quick test_rsc_session_reads_monotone;
      ] );
    ( "gryff.rmw",
      [
        Alcotest.test_case "basic increments" `Quick test_rmw_basic;
        Alcotest.test_case "rmw after write" `Quick test_rmw_after_write;
        Alcotest.test_case "visible once complete" `Quick test_rmw_visible_once_complete;
        Alcotest.test_case "concurrent atomic" `Slow test_rmw_concurrent_atomic;
        Alcotest.test_case "interference slow path" `Slow
          test_rmw_interference_uses_slow_path;
      ] );
    ( "gryff.causality",
      [
        Alcotest.test_case "fence makes dep visible" `Quick test_fence_makes_dep_visible;
        Alcotest.test_case "absorb deps cross client" `Quick
          test_absorb_deps_cross_client;
      ] );
    ( "gryff.failures",
      [
        Alcotest.test_case "tolerates 2 crashes" `Quick
          test_tolerates_two_replica_crashes;
        Alcotest.test_case "stalls beyond quorum loss" `Quick
          test_stalls_beyond_quorum_loss;
        Alcotest.test_case "recovery after restart" `Quick
          test_recovery_after_restart;
      ] );
    ( "gryff.e2e",
      [
        Alcotest.test_case "rsc run witness" `Slow test_random_run_rsc_witness;
        Alcotest.test_case "lin run witness" `Slow test_random_run_lin_witness;
        Alcotest.test_case "small run full RSC search" `Slow
          test_small_run_full_rsc_search;
        Alcotest.test_case "determinism" `Slow test_determinism;
      ] );
  ]
