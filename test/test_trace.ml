(* Tests for the history trace format: round-tripping, parse errors, and
   checker agreement after a round trip. *)

module T = Rss_core.Txn_history

let check = Alcotest.check
let bool = Alcotest.bool

let sample =
  T.make ~msg_edges:[ (0, 2) ]
    [
      T.rw ~id:0 ~proc:0 ~writes:[ ("x", 1); ("y", 2) ] ~inv:0 ~resp:10 ();
      T.ro ~id:1 ~proc:1 ~reads:[ ("x", Some 1); ("z", None) ] ~inv:20 ~resp:30 ();
      T.rw ~id:2 ~proc:2 ~reads:[ ("y", Some 2) ] ~writes:[ ("z", 3) ] ~inv:40 ();
    ]

let test_roundtrip () =
  let s = Rss_core.Trace.to_string sample in
  match Rss_core.Trace.of_string s with
  | Error m -> Alcotest.fail m
  | Ok h ->
    check Alcotest.int "txn count" (T.n_txns sample) (T.n_txns h);
    for i = 0 to T.n_txns sample - 1 do
      let a = T.txn sample i and b = T.txn h i in
      check bool (Fmt.str "txn %d equal" i) true
        (a.T.proc = b.T.proc && a.T.inv = b.T.inv && a.T.resp = b.T.resp
        && List.sort compare a.T.reads = List.sort compare b.T.reads
        && List.sort compare a.T.writes = List.sort compare b.T.writes)
    done;
    check bool "edges preserved" true (h.T.msg_edges = [ (0, 2) ])

let test_checker_agreement_after_roundtrip () =
  let s = Rss_core.Trace.to_string sample in
  match Rss_core.Trace.of_string s with
  | Error m -> Alcotest.fail m
  | Ok h ->
    List.iter
      (fun m ->
        let before = Rss_core.Check_txn.check sample m in
        let after = Rss_core.Check_txn.check h m in
        let same =
          match (before, after) with
          | Rss_core.Check_txn.Sat _, Rss_core.Check_txn.Sat _
          | Rss_core.Check_txn.Unsat, Rss_core.Check_txn.Unsat
          | Rss_core.Check_txn.Unknown, Rss_core.Check_txn.Unknown ->
            true
          | _ -> false
        in
        check bool (Rss_core.Check_txn.model_name m ^ " verdict stable") true same)
      Rss_core.Check_txn.all_models

let test_comments_and_blanks () =
  let s = "# hello\n\n" ^ Rss_core.Trace.to_string sample ^ "\n# bye\n" in
  check bool "parses" true (Result.is_ok (Rss_core.Trace.of_string s))

let test_parse_errors () =
  let cases =
    [
      ("garbage line", "wobble\n");
      ("bad id", "txn id=x proc=0 inv=0 resp=- reads= writes=\n");
      ("bad edge", "edge 1\n");
      ("missing field", "txn id=0 proc=0 inv=0 reads= writes=\n");
      ("dangling edge target", "txn id=0 proc=0 inv=0 resp=5 reads= writes=a:1\nedge 0 9\n");
    ]
  in
  List.iter
    (fun (name, s) ->
      check bool name true (Result.is_error (Rss_core.Trace.of_string s)))
    cases

let test_save_load () =
  let path = Filename.temp_file "rss_trace" ".txt" in
  Rss_core.Trace.save ~path sample;
  (match Rss_core.Trace.load ~path with
  | Ok h -> check Alcotest.int "loaded" 3 (T.n_txns h)
  | Error m -> Alcotest.fail m);
  Sys.remove path

(* Random histories round-trip bit-faithfully. *)
let prop_trace_roundtrip =
  QCheck.Test.make ~name:"random histories round-trip" ~count:150
    QCheck.(pair (int_range 1 12) (int_bound 100_000))
    (fun (n, seed) ->
      let rng = Sim.Rng.make seed in
      let store = Hashtbl.create 4 in
      let next = ref 0 in
      let txns =
        List.init n (fun i ->
            let key = [| "a"; "b"; "c" |].(Sim.Rng.int rng 3) in
            let inv = i * 100 and resp = (i * 100) + 50 in
            let resp = if Sim.Rng.bool rng 0.9 || i < n - 1 then Some resp else None in
            if Sim.Rng.bool rng 0.5 then begin
              incr next;
              Hashtbl.replace store key !next;
              T.rw ~id:i ~proc:(Sim.Rng.int rng 3 * 100 + i) ~writes:[ (key, !next) ]
                ~inv ?resp ()
            end
            else
              T.ro ~id:i ~proc:(Sim.Rng.int rng 3 * 100 + i)
                ~reads:[ (key, Hashtbl.find_opt store key) ]
                ~inv ?resp ())
      in
      let h = T.make txns in
      match Rss_core.Trace.of_string (Rss_core.Trace.to_string h) with
      | Error _ -> false
      | Ok h' ->
        T.n_txns h = T.n_txns h'
        && List.for_all
             (fun i ->
               let a = T.txn h i and b = T.txn h' i in
               a.T.proc = b.T.proc && a.T.inv = b.T.inv && a.T.resp = b.T.resp
               && a.T.reads = b.T.reads && a.T.writes = b.T.writes)
             (List.init (T.n_txns h) Fun.id))

let suites =
  [
    ( "core.trace",
      [
        Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        Alcotest.test_case "checker agreement" `Quick
          test_checker_agreement_after_roundtrip;
        Alcotest.test_case "comments/blanks" `Quick test_comments_and_blanks;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "save/load" `Quick test_save_load;
        QCheck_alcotest.to_alcotest prop_trace_roundtrip;
      ] );
  ]
