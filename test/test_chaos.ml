(* Chaos subsystem tests: the per-link fault model in Sim.Net, declarative
   fault schedules, seeded nemesis generation, and the audit battery — every
   schedule kind against all four protocols, with liveness, determinism,
   quorum ride-through, and deliberately broken controls proving the
   checkers catch what they are supposed to catch. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let mk_net ?(n = 3) ?(seed = 1) () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make seed in
  let rtt_ms = Array.make_matrix n n 10.0 in
  for i = 0 to n - 1 do
    rtt_ms.(i).(i) <- 1.0
  done;
  (engine, Sim.Net.create engine ~rng ~rtt_ms ())

(* ------------------------------------------------------------------ *)
(* Sim.Net per-link fault model                                        *)
(* ------------------------------------------------------------------ *)

let test_net_asymmetric_block () =
  let engine, net = mk_net () in
  let got = ref [] in
  Sim.Net.block_link net ~src:0 ~dst:1;
  Sim.Net.send net ~src:0 ~dst:1 (fun () -> got := "0->1" :: !got);
  Sim.Net.send net ~src:1 ~dst:0 (fun () -> got := "1->0" :: !got);
  Sim.Engine.run engine;
  check (Alcotest.list Alcotest.string) "only reverse direction delivered"
    [ "1->0" ] !got;
  check int "charged to partition" 1 (Sim.Net.dropped_partition net);
  check bool "queryable" true (Sim.Net.link_blocked net ~src:0 ~dst:1);
  check bool "reverse not blocked" false (Sim.Net.link_blocked net ~src:1 ~dst:0);
  Sim.Net.unblock_link net ~src:0 ~dst:1;
  Sim.Net.send net ~src:0 ~dst:1 (fun () -> got := "again" :: !got);
  Sim.Engine.run engine;
  check bool "delivered after unblock" true (List.mem "again" !got)

let test_net_loss () =
  let engine, net = mk_net () in
  let delivered = ref 0 in
  Sim.Net.set_loss net ~src:0 ~dst:1 0.5;
  for _ = 1 to 200 do
    Sim.Net.send net ~src:0 ~dst:1 (fun () -> incr delivered)
  done;
  Sim.Engine.run engine;
  let lost = Sim.Net.dropped_loss net in
  check int "every message accounted" 200 (lost + !delivered);
  check bool "some lost" true (lost > 50);
  check bool "some delivered" true (!delivered > 50);
  check int "loss is the only drop cause" lost (Sim.Net.messages_dropped net);
  Sim.Net.clear_link_faults net;
  let d0 = !delivered in
  for _ = 1 to 50 do
    Sim.Net.send net ~src:0 ~dst:1 (fun () -> incr delivered)
  done;
  Sim.Engine.run engine;
  check int "lossless after clear" (d0 + 50) !delivered

let test_net_duplication () =
  let engine, net = mk_net () in
  let delivered = ref 0 in
  Sim.Net.set_dup net ~src:0 ~dst:1 0.9;
  for _ = 1 to 100 do
    Sim.Net.send net ~src:0 ~dst:1 (fun () -> incr delivered)
  done;
  Sim.Engine.run engine;
  check int "duplicates delivered twice" (100 + Sim.Net.messages_duplicated net)
    !delivered;
  check bool "some duplicated" true (Sim.Net.messages_duplicated net > 50)

let test_net_drop_cause_precedence () =
  let engine, net = mk_net () in
  (* A crashed destination outranks a blocked, lossy link: the drop is
     charged to the crash, and no loss randomness is consumed. *)
  Sim.Net.set_down net 1;
  Sim.Net.block_link net ~src:0 ~dst:1;
  Sim.Net.set_loss net ~src:0 ~dst:1 0.9;
  Sim.Net.send net ~src:0 ~dst:1 (fun () -> ());
  Sim.Engine.run engine;
  check int "crash charged" 1 (Sim.Net.dropped_crash net);
  check int "partition not charged" 0 (Sim.Net.dropped_partition net);
  check int "loss not charged" 0 (Sim.Net.dropped_loss net);
  check int "total preserved" 1 (Sim.Net.messages_dropped net)

let test_net_crash_recover () =
  let engine, net = mk_net () in
  let delivered = ref 0 in
  Sim.Net.set_down net 0;
  Sim.Net.send net ~src:0 ~dst:1 (fun () -> incr delivered);
  Sim.Net.send net ~src:1 ~dst:0 (fun () -> incr delivered);
  Sim.Net.send net ~src:1 ~dst:2 (fun () -> incr delivered);
  Sim.Engine.run engine;
  check int "both directions dropped while down" 2 (Sim.Net.dropped_crash net);
  check int "unrelated link unaffected" 1 !delivered;
  check bool "is_down" true (Sim.Net.is_down net 0);
  Sim.Net.set_up net 0;
  Sim.Net.send net ~src:0 ~dst:1 (fun () -> incr delivered);
  Sim.Engine.run engine;
  check int "delivers after recovery" 2 !delivered

let test_net_extra_delay_and_reorder () =
  let engine, net = mk_net () in
  let t_normal = ref 0 and t_slow = ref 0 in
  Sim.Net.send net ~src:0 ~dst:1 (fun () -> t_normal := Sim.Engine.now engine);
  Sim.Engine.run engine;
  Sim.Net.set_extra_delay net ~src:0 ~dst:1 50_000;
  Sim.Net.send net ~src:0 ~dst:1 (fun () -> t_slow := Sim.Engine.now engine);
  Sim.Engine.run engine;
  check bool "spike adds at least the extra delay" true
    (!t_slow - !t_normal >= 50_000);
  check bool "delayed counter moved" true (Sim.Net.messages_delayed net > 0);
  Sim.Net.clear_link_faults net;
  Sim.Net.set_reorder net ~src:0 ~dst:2 ~prob:0.9 ~max_extra_us:20_000;
  let order = ref [] in
  for i = 1 to 20 do
    Sim.Net.send net ~src:0 ~dst:2 (fun () -> order := i :: !order)
  done;
  Sim.Engine.run engine;
  check int "all delivered" 20 (List.length !order);
  check bool "some messages reordered" true
    (List.rev !order <> List.init 20 (fun i -> i + 1))

let test_net_partition_heal () =
  let engine, net = mk_net () in
  let delivered = ref 0 in
  Sim.Net.partition net [ 0 ] [ 1; 2 ];
  Sim.Net.send net ~src:0 ~dst:1 (fun () -> incr delivered);
  Sim.Net.send net ~src:2 ~dst:0 (fun () -> incr delivered);
  Sim.Net.send net ~src:1 ~dst:2 (fun () -> incr delivered);
  Sim.Engine.run engine;
  check int "cross-partition dropped both ways" 2 (Sim.Net.dropped_partition net);
  check int "same side delivered" 1 !delivered;
  Sim.Net.heal_partitions net;
  Sim.Net.send net ~src:0 ~dst:1 (fun () -> incr delivered);
  Sim.Engine.run engine;
  check int "heals" 2 !delivered

(* ------------------------------------------------------------------ *)
(* Schedules                                                           *)
(* ------------------------------------------------------------------ *)

let test_schedule_helpers () =
  check int "links_between counts both directions" 4
    (List.length (Chaos.Schedule.links_between [ 0 ] [ 1; 2 ]));
  check int "links_of_site" 4 (List.length (Chaos.Schedule.links_of_site ~n:3 0));
  check (Alcotest.list int) "sites_except" [ 1; 3 ]
    (Chaos.Schedule.sites_except ~n:4 [ 0; 2 ]);
  let s =
    Chaos.Schedule.[ at_s 2.0 Heal; at_s 0.5 (Crash [ 1 ]); at_s 1.0 Heal ]
  in
  check int "end_of_faults is the latest event" (Sim.Engine.sec 2.0)
    (Chaos.Schedule.end_of_faults s)

let test_schedule_apply_timing () =
  let engine, net = mk_net () in
  let delivered = ref 0 in
  let schedule =
    Chaos.Schedule.
      [ at_us 1_000 (Block ([ 0 ], [ 1 ])); at_us 100_000 Heal ]
  in
  let fired = ref 0 in
  let n =
    Chaos.Schedule.apply schedule ~engine ~net ~on_fault:(fun _ -> incr fired) ()
  in
  check int "all events armed" 2 n;
  Sim.Engine.schedule_at engine ~at:50_000 (fun () ->
      Sim.Net.send net ~src:0 ~dst:1 (fun () -> incr delivered));
  Sim.Engine.schedule_at engine ~at:200_000 (fun () ->
      Sim.Net.send net ~src:0 ~dst:1 (fun () -> incr delivered));
  Sim.Engine.run engine;
  check int "mid-window send dropped, post-heal send delivered" 1 !delivered;
  check int "on_fault saw each event" 2 !fired

let test_schedule_epsilon () =
  let engine, net = mk_net () in
  let tt = Sim.Truetime.create engine ~epsilon_us:7_000 in
  let schedule =
    Chaos.Schedule.
      [ at_us 1_000 (Epsilon 70_000); at_us 2_000 Epsilon_reset ]
  in
  ignore (Chaos.Schedule.apply schedule ~engine ~net ~tt ());
  let mid = ref 0 and after = ref 0 in
  Sim.Engine.schedule_at engine ~at:1_500 (fun () -> mid := Sim.Truetime.epsilon tt);
  Sim.Engine.schedule_at engine ~at:2_500 (fun () -> after := Sim.Truetime.epsilon tt);
  Sim.Engine.run engine;
  check int "inflated mid-window" 70_000 !mid;
  check int "restored to the value at apply time" 7_000 !after

(* ------------------------------------------------------------------ *)
(* Nemesis                                                             *)
(* ------------------------------------------------------------------ *)

let test_nemesis_deterministic () =
  let gen seed =
    Chaos.Nemesis.generate Chaos.Nemesis.Mixed ~n_sites:5
      ~duration_us:(Sim.Engine.sec 10.0) ~seed ()
  in
  check bool "same seed, same schedule" true (gen 3 = gen 3);
  check bool "different seed, different schedule" true (gen 3 <> gen 4)

let test_nemesis_presets_shape () =
  List.iter
    (fun (name, preset) ->
      let s =
        Chaos.Nemesis.generate preset ~n_sites:5
          ~duration_us:(Sim.Engine.sec 10.0) ~seed:1 ()
      in
      check bool (name ^ " has fault windows") true (List.length s >= 6);
      check int
        (name ^ " cleanup at 80% of the run")
        (Sim.Engine.sec 8.0) (Chaos.Schedule.end_of_faults s))
    Chaos.Nemesis.presets

let test_nemesis_protect () =
  (* With all sites but one protected, every crash hits the one left over. *)
  for seed = 0 to 20 do
    let s =
      Chaos.Nemesis.generate Chaos.Nemesis.Crash_recover ~n_sites:5
        ~protect:[ 0; 1; 2; 3 ] ~duration_us:(Sim.Engine.sec 10.0) ~seed ()
    in
    List.iter
      (fun e ->
        match e.Chaos.Schedule.fault with
        | Chaos.Schedule.Crash victims ->
          check (Alcotest.list int) "only the unprotected site crashes" [ 4 ]
            victims
        | _ -> ())
      s
  done

(* ------------------------------------------------------------------ *)
(* Audit battery: every schedule kind x every protocol                 *)
(* ------------------------------------------------------------------ *)

(* The five required schedule kinds, sized for an [n]-site deployment. *)
let battery ~n =
  Chaos.Schedule.
    [
      ( "partition-heal",
        [ at_s 1.0 (Partition ([ 0 ], sites_except ~n [ 0 ])); at_s 3.0 Heal ] );
      ( "link-loss",
        [
          at_s 1.0 (Loss { links = links_of_site ~n 0; prob = 0.1 });
          at_s 3.0 Clear_links;
        ] );
      ( "crash-recover", [ at_s 1.0 (Crash [ n - 1 ]); at_s 3.0 (Recover [ n - 1 ]) ] );
      ( "latency-spike",
        [
          at_s 1.0 (Delay { links = links_of_site ~n 0; extra_us = 40_000 });
          at_s 3.0 Clear_links;
        ] );
      ( "eps-inflate", [ at_s 1.0 (Epsilon 80_000); at_s 3.0 Epsilon_reset ] );
    ]

let test_audit_battery () =
  List.iter
    (fun protocol ->
      let n = Chaos.Audit.protocol_sites protocol in
      List.iter
        (fun (kind, schedule) ->
          let label = Chaos.Audit.protocol_name protocol ^ "/" ^ kind in
          let r =
            Chaos.Audit.run protocol ~schedule ~n_slots:6 ~duration_s:5.0
              ~seed:7 ()
          in
          (match r.Chaos.Audit.check with
          | Ok () -> ()
          | Error m -> Alcotest.failf "%s: consistency violation: %s" label m);
          check bool (label ^ ": liveness resumed after heal") true
            (Chaos.Audit.liveness_ok ~min_post_quiet:5 r);
          check int
            (label ^ ": every schedule event injected")
            (List.length schedule) r.Chaos.Audit.faults_injected;
          match kind with
          | "partition-heal" ->
            check bool (label ^ ": partition drops counted") true
              (r.Chaos.Audit.dropped_partition > 0)
          | "link-loss" ->
            check bool (label ^ ": loss drops counted") true
              (r.Chaos.Audit.dropped_loss > 0)
          | "crash-recover" ->
            check bool (label ^ ": crash drops counted") true
              (r.Chaos.Audit.dropped_crash > 0)
          | "latency-spike" ->
            check bool (label ^ ": delayed messages counted") true
              (r.Chaos.Audit.delayed > 0)
          | _ -> ())
        (battery ~n))
    Chaos.Audit.protocols

let test_audit_determinism () =
  (* Same (workload seed, nemesis seed) must reproduce the run down to the
     last history record — run twice and diff the canonical traces. *)
  let go () =
    let schedule =
      Chaos.Audit.nemesis_schedule Chaos.Audit.Spanner_rss Chaos.Nemesis.Mixed
        ~duration_s:6.0 ~seed:5
    in
    Chaos.Audit.run Chaos.Audit.Spanner_rss ~schedule ~n_slots:6 ~duration_s:6.0
      ~seed:9 ()
  in
  let a = go () and b = go () in
  check bool "histories byte-identical" true
    (String.equal a.Chaos.Audit.trace b.Chaos.Audit.trace);
  check bool "history non-trivial" true (a.Chaos.Audit.history_len > 50);
  check int "same message count" a.Chaos.Audit.msgs_sent b.Chaos.Audit.msgs_sent;
  check int "same drop counts"
    (a.Chaos.Audit.dropped_partition + a.Chaos.Audit.dropped_crash
   + a.Chaos.Audit.dropped_loss)
    (b.Chaos.Audit.dropped_partition + b.Chaos.Audit.dropped_crash
   + b.Chaos.Audit.dropped_loss);
  let c =
    Chaos.Audit.run Chaos.Audit.Spanner_rss
      ~schedule:
        (Chaos.Audit.nemesis_schedule Chaos.Audit.Spanner_rss
           Chaos.Nemesis.Mixed ~duration_s:6.0 ~seed:6)
      ~n_slots:6 ~duration_s:6.0 ~seed:9 ()
  in
  check bool "different nemesis seed, different run" true
    (not (String.equal a.Chaos.Audit.trace c.Chaos.Audit.trace))

(* ------------------------------------------------------------------ *)
(* Quorum ride-through: a minority crash must not stop commits         *)
(* ------------------------------------------------------------------ *)

(* Five-site Spanner: leaders (and clients) at sites 0-2, every group's
   followers at sites 3-4. Crashing site 4 leaves each Paxos group a
   majority (leader + one follower), so 2PC commits must keep flowing. *)
let spanner5 ~mode =
  let base = Spanner.Config.wan3 ~mode () in
  let g = Gryff.Config.wan5 ~mode:Gryff.Config.Lin () in
  {
    base with
    Spanner.Config.rtt_ms = g.Gryff.Config.rtt_ms;
    leader_site = [| 0; 1; 2 |];
    replica_sites = [| [ 3; 4 ]; [ 3; 4 ]; [ 3; 4 ] |];
    client_sites = [| 0; 1; 2 |];
  }

let crash_only = Chaos.Schedule.[ at_s 1.0 (Crash [ 4 ]) ]

let test_spanner_quorum_ride_through () =
  List.iter
    (fun mode ->
      let r =
        Chaos.Audit.spanner ~config:(spanner5 ~mode) ~mode ~schedule:crash_only
          ~n_slots:8 ~duration_s:5.0 ~seed:3 ()
      in
      let label =
        match mode with Spanner.Config.Strict -> "strict" | Spanner.Config.Rss -> "rss"
      in
      (match r.Chaos.Audit.check with
      | Ok () -> ()
      | Error m -> Alcotest.failf "spanner(%s) under crash: %s" label m);
      check int (label ^ ": no operation stalls on a minority crash") 0
        r.Chaos.Audit.ops_timed_out;
      check bool (label ^ ": commits continue during the crash") true
        (r.Chaos.Audit.post_quiet_completed > 50);
      check bool (label ^ ": the dead replica's traffic is dropped") true
        (r.Chaos.Audit.dropped_crash > 0))
    [ Spanner.Config.Strict; Spanner.Config.Rss ]

let test_gryff_quorum_ride_through () =
  (* One of five replicas down: quorum 3 still reachable from the four
     surviving client sites, so reads and writes complete and RSC holds. *)
  let r =
    Chaos.Audit.gryff ~mode:Gryff.Config.Rsc ~client_sites:[| 0; 1; 2; 3 |]
      ~schedule:crash_only ~n_slots:8 ~duration_s:5.0 ~seed:3 ()
  in
  (match r.Chaos.Audit.check with
  | Ok () -> ()
  | Error m -> Alcotest.failf "gryff-rsc under crash: %s" m);
  check int "no operation stalls on a minority crash" 0 r.Chaos.Audit.ops_timed_out;
  check bool "ops continue during the crash" true
    (r.Chaos.Audit.post_quiet_completed > 100);
  check bool "the dead replica's traffic is dropped" true
    (r.Chaos.Audit.dropped_crash > 0)

(* ------------------------------------------------------------------ *)
(* Broken controls: the checkers must catch deliberate violations      *)
(* ------------------------------------------------------------------ *)

let test_stale_read_controls () =
  let sp =
    Chaos.Audit.run Chaos.Audit.Spanner_rss
      ~schedule:(List.assoc "partition-heal" (battery ~n:3))
      ~n_slots:6 ~duration_s:5.0 ~seed:7 ()
  in
  (match sp.Chaos.Audit.stale_control () with
  | Some (Error _) -> ()
  | Some (Ok ()) -> Alcotest.fail "spanner checker accepted a stale read"
  | None -> Alcotest.fail "spanner history had no read to corrupt");
  let gr =
    Chaos.Audit.run Chaos.Audit.Gryff_rsc
      ~schedule:(List.assoc "link-loss" (battery ~n:5))
      ~n_slots:6 ~duration_s:5.0 ~seed:7 ()
  in
  match gr.Chaos.Audit.stale_control () with
  | Some (Error _) -> ()
  | Some (Ok ()) -> Alcotest.fail "gryff checker accepted a stale read"
  | None -> Alcotest.fail "gryff history had no read to corrupt"

(* Protocol-level control: a Gryff-RSC client that discards its read
   dependencies (RSC fence disabled). Deterministic anomaly: a write from JP
   is stranded at a minority {OR, JP} by an asymmetric block; a CA client
   reads it through OR, then — with OR's and JP's replies to CA cut — reads
   again and regresses to the old value. With dependencies intact the second
   read's piggybacked write-back repairs the local replica instead. *)
let unsafe_no_deps_scenario ~unsafe =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make 11 in
  let config = Gryff.Config.wan5 ~mode:Gryff.Config.Rsc () in
  let cluster = Gryff.Cluster.create engine ~rng config in
  let schedule =
    Chaos.Schedule.
      [
        at_s 1.13 (Block ([ 4 ], [ 0; 1; 2 ]));
        at_s 1.5 (Block ([ 3; 4 ], [ 0 ]));
      ]
  in
  ignore (Chaos.Schedule.apply schedule ~engine ~net:(Gryff.Cluster.net cluster) ());
  let c0 = Gryff.Client.create cluster ~site:0 in
  let w4 = Gryff.Client.create cluster ~site:4 in
  let reader = Gryff.Client.create ~unsafe_no_deps:unsafe cluster ~site:0 in
  let seen = ref [] in
  Sim.Engine.schedule_at engine ~at:(Sim.Engine.sec 0.1) (fun () ->
      Gryff.Client.write c0 ~key:0 ~value:100 (fun _ -> ()));
  Sim.Engine.schedule_at engine ~at:(Sim.Engine.sec 1.02) (fun () ->
      (* The propagate phase starts after the block arms, so the value lands
         only at OR and JP; the write never gathers a quorum of acks, and
         the sweep convention records it as incomplete. *)
      Gryff.Client.write w4
        ~on_apply:(fun cs ->
          Gryff.Cluster.record cluster
            {
              Gryff.Cluster.g_proc = Gryff.Client.proc w4;
              g_kind = Gryff.Cluster.Write;
              g_key = 0;
              g_observed = None;
              g_written = Some 200;
              g_cs = cs;
              g_inv = Sim.Engine.sec 1.02;
              g_resp = max_int;
            })
        ~key:0 ~value:200 (fun _ -> ()));
  Sim.Engine.schedule_at engine ~at:(Sim.Engine.sec 1.3) (fun () ->
      Gryff.Client.read reader ~key:0 (fun r ->
          seen := r.Gryff.Protocol.r_value :: !seen));
  Sim.Engine.schedule_at engine ~at:(Sim.Engine.sec 1.6) (fun () ->
      Gryff.Client.read reader ~key:0 (fun r ->
          seen := r.Gryff.Protocol.r_value :: !seen));
  Sim.Engine.run ~max_events:10_000_000 engine;
  (List.rev !seen, Gryff.Cluster.check_history cluster)

let test_unsafe_no_deps_control () =
  let seen, verdict = unsafe_no_deps_scenario ~unsafe:true in
  check
    (Alcotest.list (Alcotest.option int))
    "dep discarded: second read regresses"
    [ Some 200; Some 100 ] seen;
  (match verdict with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "checker accepted the no-deps regression");
  let seen, verdict = unsafe_no_deps_scenario ~unsafe:false in
  check
    (Alcotest.list (Alcotest.option int))
    "deps intact: write-back repairs the read"
    [ Some 200; Some 200 ] seen;
  match verdict with
  | Ok () -> ()
  | Error m -> Alcotest.failf "safe client must verify: %s" m

(* ------------------------------------------------------------------ *)
(* Failover audits: leader-kill and rolling-crash presets              *)
(* ------------------------------------------------------------------ *)

let test_failover_battery () =
  (* Every protocol under both leader-killing presets, three seeds each:
     the runs must verify against their model and resume commits after the
     last recovery. *)
  List.iter
    (fun protocol ->
      List.iter
        (fun preset ->
          List.iter
            (fun seed ->
              let label =
                Chaos.Audit.protocol_name protocol
                ^ "/"
                ^ Chaos.Nemesis.preset_name preset
                ^ "/seed=" ^ string_of_int seed
              in
              let schedule =
                Chaos.Audit.nemesis_schedule protocol preset ~duration_s:8.0
                  ~seed
              in
              let r =
                Chaos.Audit.run protocol ~schedule
                  ~failover:(Chaos.Nemesis.requires_failover preset)
                  ~duration_s:8.0 ~seed ()
              in
              (match r.Chaos.Audit.check with
              | Ok () -> ()
              | Error m ->
                Alcotest.failf "%s: consistency violation: %s" label m);
              check bool (label ^ ": liveness resumed after recovery") true
                (Chaos.Audit.liveness_ok r))
            [ 3; 5; 9 ])
        [ Chaos.Nemesis.Leader_kill; Chaos.Nemesis.Rolling_crash ])
    Chaos.Audit.protocols

let test_failover_determinism () =
  (* Elections, retries, and backoff jitter all draw from dedicated seeded
     streams, so a failover run replays byte for byte. *)
  let go nemesis_seed =
    let schedule =
      Chaos.Audit.nemesis_schedule Chaos.Audit.Spanner_rss
        Chaos.Nemesis.Leader_kill ~duration_s:8.0 ~seed:nemesis_seed
    in
    Chaos.Audit.run Chaos.Audit.Spanner_rss ~schedule ~failover:true
      ~duration_s:8.0 ~seed:11 ()
  in
  let a = go 4 and b = go 4 in
  check bool "failover histories byte-identical" true
    (String.equal a.Chaos.Audit.trace b.Chaos.Audit.trace);
  check int "same view changes" a.Chaos.Audit.view_changes
    b.Chaos.Audit.view_changes;
  check int "same rpc retries" a.Chaos.Audit.rpc_retries
    b.Chaos.Audit.rpc_retries;
  check bool "elections actually happened" true
    (a.Chaos.Audit.view_changes > 0);
  let c = go 5 in
  check bool "different nemesis seed, different run" true
    (not (String.equal a.Chaos.Audit.trace c.Chaos.Audit.trace))

let test_spanner_leader_crash_rides_through () =
  (* Crash a Spanner shard-leader site outright mid-run. Without failover
     this wedged every transaction touching its shards; with failover armed
     the followers elect a new leader, rebuild the shard from the
     replicated log, and commits resume. *)
  let victim =
    match Chaos.Audit.protocol_leader_sites Chaos.Audit.Spanner_rss with
    | s :: _ -> s
    | [] -> Alcotest.fail "spanner deployment has no leader sites"
  in
  let schedule =
    Chaos.Schedule.
      [ at_s 1.5 (Crash [ victim ]); at_s 4.5 (Recover [ victim ]) ]
  in
  let r =
    Chaos.Audit.run Chaos.Audit.Spanner_rss ~schedule ~failover:true
      ~duration_s:8.0 ~seed:13 ()
  in
  (match r.Chaos.Audit.check with
  | Ok () -> ()
  | Error m -> Alcotest.failf "consistency violation: %s" m);
  check bool "commits continue after the leader crash" true
    (Chaos.Audit.liveness_ok ~min_post_quiet:5 r);
  check bool "the crash forced an election" true
    (r.Chaos.Audit.view_changes >= 1)

let suites =
  [
    ( "chaos.net",
      [
        Alcotest.test_case "asymmetric block" `Quick test_net_asymmetric_block;
        Alcotest.test_case "probabilistic loss" `Quick test_net_loss;
        Alcotest.test_case "duplication" `Quick test_net_duplication;
        Alcotest.test_case "drop-cause precedence" `Quick
          test_net_drop_cause_precedence;
        Alcotest.test_case "crash and recover" `Quick test_net_crash_recover;
        Alcotest.test_case "delay spike and reorder" `Quick
          test_net_extra_delay_and_reorder;
        Alcotest.test_case "partition and heal" `Quick test_net_partition_heal;
      ] );
    ( "chaos.schedule",
      [
        Alcotest.test_case "helpers" `Quick test_schedule_helpers;
        Alcotest.test_case "apply timing" `Quick test_schedule_apply_timing;
        Alcotest.test_case "epsilon inflation" `Quick test_schedule_epsilon;
      ] );
    ( "chaos.nemesis",
      [
        Alcotest.test_case "seeded determinism" `Quick test_nemesis_deterministic;
        Alcotest.test_case "preset shapes" `Quick test_nemesis_presets_shape;
        Alcotest.test_case "protected sites" `Quick test_nemesis_protect;
      ] );
    ( "chaos.audit",
      [
        Alcotest.test_case "battery: 5 schedules x 4 protocols" `Quick
          test_audit_battery;
        Alcotest.test_case "run-twice determinism" `Quick test_audit_determinism;
        Alcotest.test_case "spanner quorum ride-through" `Quick
          test_spanner_quorum_ride_through;
        Alcotest.test_case "gryff quorum ride-through" `Quick
          test_gryff_quorum_ride_through;
        Alcotest.test_case "stale-read controls" `Quick test_stale_read_controls;
        Alcotest.test_case "unsafe no-deps control" `Quick
          test_unsafe_no_deps_control;
      ] );
    ( "chaos.failover",
      [
        Alcotest.test_case "battery: 2 presets x 4 protocols x 3 seeds" `Quick
          test_failover_battery;
        Alcotest.test_case "run-twice determinism" `Quick
          test_failover_determinism;
        Alcotest.test_case "spanner leader-crash ride-through" `Quick
          test_spanner_leader_crash_rides_through;
      ] );
  ]
