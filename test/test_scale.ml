(* Scale-pass guarantees: (1) the online checker (Rss_core.Check_online)
   agrees with the offline witness checker on large batteries of random
   histories, valid and mutated-invalid, across all three modes; (2) a
   starved work budget degrades to Unknown (or a still-sound verdict),
   never to a wrong one; (3) seeded protocol traces are byte-identical to
   the golden digests captured before the lib/sim hot-path optimisation —
   and stay identical whichever check mode observes them. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

module W = Rss_core.Witness
module CO = Rss_core.Check_online

(* {1 Random history generation}

   Histories are generated in serialization order against a replayed store,
   so they are valid by construction for every mode: [ts] increases (with
   occasional shared-ts rank-1 read-only txns), invocations increase with
   [ts], and responses overlap by a bounded jitter. They are then re-sorted
   into arrival (response) order — which locally shuffles them, exercising
   the online checker's out-of-order insertion paths — before being fed to
   both checkers. *)

let gen_history ~rng ~n ~n_procs ~n_keys =
  let store : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let next_val = ref 0 in
  let keys = Array.init n_keys (fun i -> Printf.sprintf "k%d" i) in
  let pick_keys max_n =
    let n_pick = Sim.Rng.int rng (max_n + 1) in
    let rec go acc = function
      | 0 -> acc
      | m ->
        (* Duplicates just shrink the pick — avoids looping when the pool
           is smaller than the request. *)
        let k = keys.(Sim.Rng.int rng n_keys) in
        if List.mem k acc then go acc (m - 1) else go (k :: acc) (m - 1)
    in
    go [] n_pick
  in
  let txns =
    Array.init n (fun i ->
        let proc = Sim.Rng.int rng n_procs in
        let inv = (10 * i) + Sim.Rng.int rng 10 in
        let resp =
          if Sim.Rng.bool rng 0.05 then max_int else inv + Sim.Rng.int rng 30
        in
        let share_ts = i > 0 && Sim.Rng.bool rng 0.15 in
        if share_ts then begin
          (* A read-only txn sharing the previous txn's timestamp, ranked
             after it — the Spanner RO-at-commit-ts shape. *)
          let key = keys.(Sim.Rng.int rng n_keys) in
          let reads = [ (key, Hashtbl.find_opt store key) ] in
          { W.proc; reads; writes = []; inv; resp; ts = i - 1; rank = 1 }
        end
        else begin
          let read_keys = pick_keys 2 in
          let reads = List.map (fun k -> (k, Hashtbl.find_opt store k)) read_keys in
          let write_keys = pick_keys 2 in
          let writes =
            List.map
              (fun k ->
                incr next_val;
                (k, !next_val))
              write_keys
          in
          let reads, writes =
            if reads = [] && writes = [] then
              ([ (keys.(0), Hashtbl.find_opt store keys.(0)) ], [])
            else (reads, writes)
          in
          List.iter (fun (k, v) -> Hashtbl.replace store k v) writes;
          { W.proc; reads; writes; inv; resp; ts = i; rank = 0 }
        end)
  in
  (* Arrival order: by response time, incomplete txns (resp = max_int) last,
     stable for ties. *)
  let arr = Array.copy txns in
  Array.stable_sort (fun a b -> Stdlib.compare a.W.resp b.W.resp) arr;
  (arr, !next_val)

(* Corrupt one aspect of a history. Mutations keep written values unique (a
   checker precondition), so both checkers remain in their contract; most
   mutations produce a genuinely invalid history. *)
let mutate ~rng ~max_val txns =
  let txns = Array.map (fun x -> x) txns in
  let n = Array.length txns in
  let with_read =
    Array.to_list (Array.mapi (fun i x -> (i, x)) txns)
    |> List.filter (fun (_, x) -> List.exists (fun (_, v) -> v <> None) x.W.reads)
    |> List.map fst
  in
  match Sim.Rng.int rng 4 with
  | 0 when with_read <> [] ->
    (* Wrong reads-from: point a read at some other (or stale) value. *)
    let i = List.nth with_read (Sim.Rng.int rng (List.length with_read)) in
    let x = txns.(i) in
    let reads =
      List.map
        (fun (k, v) ->
          match v with
          | Some _ -> (k, Some (1 + Sim.Rng.int rng (max 1 max_val)))
          | None -> (k, v))
        x.W.reads
    in
    txns.(i) <- { x with W.reads };
    txns
  | 1 when with_read <> [] ->
    (* Read of a never-written value. *)
    let i = List.nth with_read (Sim.Rng.int rng (List.length with_read)) in
    let x = txns.(i) in
    let reads =
      match x.W.reads with
      | (k, Some _) :: rest -> (k, Some 424_242_424) :: rest
      | reads -> List.map (fun (k, _) -> (k, Some 424_242_424)) reads
    in
    txns.(i) <- { x with W.reads };
    txns
  | 2 ->
    (* Session inversion: swap the timestamps of one process's txns. *)
    let by_proc = Hashtbl.create 8 in
    Array.iteri
      (fun i x ->
        if x.W.resp <> max_int then
          Hashtbl.replace by_proc x.W.proc
            (i :: (try Hashtbl.find by_proc x.W.proc with Not_found -> [])))
      txns;
    let cand =
      Hashtbl.fold
        (fun _ is acc -> match is with a :: b :: _ -> (a, b) :: acc | _ -> acc)
        by_proc []
    in
    (match cand with
    | [] -> txns
    | _ ->
      let a, b = List.nth cand (Sim.Rng.int rng (List.length cand)) in
      let ta = txns.(a).W.ts and tb = txns.(b).W.ts in
      txns.(a) <- { (txns.(a)) with W.ts = tb };
      txns.(b) <- { (txns.(b)) with W.ts = ta };
      txns)
  | _ ->
    (* Real-time inversion: a late-serialized txn that responded before an
       earlier txn was invoked (invalid for Strict; often for Rss too). *)
    let n2 = max 1 (n / 2) in
    let i = n2 + Sim.Rng.int rng (n - n2) in
    let x = txns.(i) in
    if x.W.resp = max_int then txns
    else begin
      txns.(i) <- { x with W.resp = 3 };
      txns
    end

let modes = [ (`Sequential, "seq"); (`Rss, "rss"); (`Strict, "strict") ]

let agree_name = function
  | Ok () -> "valid"
  | Error _ -> "invalid"

(* Online with unbounded work budget must return a definitive verdict that
   matches the offline checker exactly. *)
let assert_agreement ~what ~mode ~mode_name ~seed txns =
  let offline = W.check ~mode txns in
  let online = CO.check ~mode txns in
  match (offline, online) with
  | Ok (), CO.Pass | Error _, CO.Fail _ -> ()
  | _, CO.Unknown m ->
    Alcotest.failf "%s mode=%s seed=%d: online Unknown (%s) with offline %s"
      what mode_name seed m (agree_name offline)
  | Ok (), CO.Fail m ->
    Alcotest.failf "%s mode=%s seed=%d: online Fail (%s) but offline valid"
      what mode_name seed m
  | Error m, CO.Pass ->
    Alcotest.failf "%s mode=%s seed=%d: online Pass but offline invalid (%s)"
      what mode_name seed m

let test_agreement_valid () =
  List.iter
    (fun (mode, mode_name) ->
      for seed = 1 to 200 do
        let rng = Sim.Rng.make (seed + (0x5ca1e * Hashtbl.hash mode_name)) in
        let txns, _ =
          gen_history ~rng ~n:(20 + Sim.Rng.int rng 80)
            ~n_procs:(1 + Sim.Rng.int rng 6)
            ~n_keys:(1 + Sim.Rng.int rng 6)
        in
        (match W.check ~mode txns with
        | Ok () -> ()
        | Error m ->
          Alcotest.failf "generator produced invalid %s history (seed %d): %s"
            mode_name seed m);
        assert_agreement ~what:"valid" ~mode ~mode_name ~seed txns
      done)
    modes

let test_agreement_mutated () =
  let invalid = ref 0 and total = ref 0 in
  List.iter
    (fun (mode, mode_name) ->
      for seed = 1 to 200 do
        let rng = Sim.Rng.make (seed + (0xbad * Hashtbl.hash mode_name)) in
        let txns, max_val =
          gen_history ~rng ~n:(20 + Sim.Rng.int rng 80)
            ~n_procs:(1 + Sim.Rng.int rng 6)
            ~n_keys:(1 + Sim.Rng.int rng 6)
        in
        let txns = mutate ~rng ~max_val txns in
        incr total;
        if W.check ~mode txns <> Ok () then incr invalid;
        assert_agreement ~what:"mutated" ~mode ~mode_name ~seed txns
      done)
    modes;
  (* The mutation battery must actually have teeth. *)
  check bool
    (Fmt.str "mutations mostly invalid (%d/%d)" !invalid !total)
    true
    (!invalid * 2 > !total)

(* A starved work budget may say Unknown but never contradict the offline
   verdict: Pass still implies valid, Fail still implies invalid. *)
let test_starved_budget_never_wrong () =
  List.iter
    (fun (mode, mode_name) ->
      for seed = 1 to 100 do
        let rng = Sim.Rng.make (seed + (0x7ea * Hashtbl.hash mode_name)) in
        let txns, max_val =
          gen_history ~rng ~n:60 ~n_procs:4 ~n_keys:4
        in
        let txns = if seed mod 2 = 0 then mutate ~rng ~max_val txns else txns in
        let offline = W.check ~mode txns in
        match
          (CO.check ~work_budget:8 ~fallback_states:2_000 ~mode txns, offline)
        with
        | CO.Unknown _, _ -> ()
        | CO.Pass, Ok () | CO.Fail _, Error _ -> ()
        | CO.Pass, Error m ->
          Alcotest.failf "starved mode=%s seed=%d: Pass on invalid (%s)"
            mode_name seed m
        | CO.Fail m, Ok () ->
          Alcotest.failf "starved mode=%s seed=%d: Fail (%s) on valid"
            mode_name seed m
      done)
    modes

(* The overflow path must still be able to confirm easy histories: an
   in-order (already-serialized) stream overflows nothing and a shuffled one
   falls back; either way a generous fallback on a small valid suffix says
   Pass or Unknown, and a Pass must be real. Also pin the work meter:
   feeding in serialization order displaces nothing. *)
let test_in_order_feed_is_linear () =
  let rng = Sim.Rng.make 42 in
  let txns, _ = gen_history ~rng ~n:500 ~n_procs:4 ~n_keys:5 in
  let in_order = Array.copy txns in
  Array.sort
    (fun a b ->
      if a.W.ts <> b.W.ts then Stdlib.compare a.W.ts b.W.ts
      else Stdlib.compare a.W.rank b.W.rank)
    in_order;
  let t = CO.create ~mode:`Rss () in
  Array.iter (CO.add t) in_order;
  (match CO.result t with
  | CO.Pass -> ()
  | CO.Fail m -> Alcotest.failf "in-order feed failed: %s" m
  | CO.Unknown m -> Alcotest.failf "in-order feed unknown: %s" m);
  check int "in-order feed displaces nothing" 0 (CO.max_displacement t)

(* {1 Golden seeded traces}

   Digests of short harness runs, captured at a fixed seed before the
   lib/sim hot-path optimisation. The simulator may get faster; it may not
   produce a different schedule: same records, same order, same simulated
   duration. If a deliberate semantic change to the protocols or drivers
   lands, re-baseline these constants in the same commit and say so. *)

let digest_spanner () =
  let r =
    Harness.spanner_dc ~check:`No_check ~mode:Spanner.Config.Rss ~n_shards:3
      ~service_time_us:20 ~n_clients:16 ~n_keys:200 ~duration_s:2.0 ~seed:11 ()
  in
  let b = Buffer.create 65536 in
  (match r.Harness.Run.records with
  | Harness.Run.Spanner_txns a ->
    Array.iter
      (fun (x : W.txn) ->
        Buffer.add_string b
          (Printf.sprintf "p%d i%d r%d t%d k%d" x.W.proc x.W.inv x.W.resp
             x.W.ts x.W.rank);
        List.iter
          (fun (k, v) ->
            Buffer.add_string b
              (Printf.sprintf " R%s=%s" k
                 (match v with None -> "nil" | Some v -> string_of_int v)))
          x.W.reads;
        List.iter
          (fun (k, v) -> Buffer.add_string b (Printf.sprintf " W%s=%d" k v))
          x.W.writes;
        Buffer.add_char b '\n')
      a
  | Harness.Run.Gryff_ops _ -> assert false);
  Buffer.add_string b (Printf.sprintf "duration=%d\n" r.Harness.Run.duration_us);
  Digest.to_hex (Digest.string (Buffer.contents b))

let digest_gryff () =
  let r =
    Harness.gryff_wan ~check:`No_check ~n_clients:8 ~mode:Gryff.Config.Rsc
      ~conflict:0.2 ~write_ratio:0.4 ~n_keys:500 ~duration_s:2.0 ~seed:13 ()
  in
  let b = Buffer.create 65536 in
  (match r.Harness.Run.records with
  | Harness.Run.Gryff_ops a ->
    Array.iter
      (fun (g : Gryff.Cluster.record) ->
        Buffer.add_string b
          (Printf.sprintf "p%d %s k%d o%s w%s cs%d.%d.%d i%d r%d\n"
             g.Gryff.Cluster.g_proc
             (match g.Gryff.Cluster.g_kind with
             | Gryff.Cluster.Read -> "rd"
             | Gryff.Cluster.Write -> "wr"
             | Gryff.Cluster.Rmw -> "rmw")
             g.Gryff.Cluster.g_key
             (match g.Gryff.Cluster.g_observed with
             | None -> "-"
             | Some v -> string_of_int v)
             (match g.Gryff.Cluster.g_written with
             | None -> "-"
             | Some v -> string_of_int v)
             g.Gryff.Cluster.g_cs.Gryff.Carstamp.ts
             g.Gryff.Cluster.g_cs.Gryff.Carstamp.cid
             g.Gryff.Cluster.g_cs.Gryff.Carstamp.rmwc g.Gryff.Cluster.g_inv
             g.Gryff.Cluster.g_resp))
      a
  | Harness.Run.Spanner_txns _ -> assert false);
  Buffer.add_string b (Printf.sprintf "duration=%d\n" r.Harness.Run.duration_us);
  Digest.to_hex (Digest.string (Buffer.contents b))

(* Captured from the seed implementation (pre-optimisation); asserted
   identical after every lib/sim change. *)
let golden_spanner = "371676f632a207ac160041a6f67542ce"
let golden_gryff = "6600a5907cf2b98b5e72f80ff9a2ea42"

let test_golden_spanner_trace () =
  check string "spanner seeded trace digest" golden_spanner (digest_spanner ())

let test_golden_gryff_trace () =
  check string "gryff seeded trace digest" golden_gryff (digest_gryff ())

(* Online checking must be passive: same seed, same records, same schedule —
   and the online verdict must agree with the offline one on real runs. *)
let test_online_checking_is_passive () =
  let run chk =
    Harness.spanner_dc ~check:chk ~mode:Spanner.Config.Rss ~n_shards:3
      ~service_time_us:20 ~n_clients:8 ~n_keys:100 ~duration_s:1.0 ~seed:7 ()
  in
  let off = run `Offline and on = run `Online in
  check bool "offline run verified" true (Harness.Run.passed off);
  check bool "online run verified" true (Harness.Run.passed on);
  check int "same simulated duration" off.Harness.Run.duration_us
    on.Harness.Run.duration_us;
  check int "same record count" (Harness.Run.n_records off)
    (Harness.Run.n_records on);
  let g cm =
    Harness.gryff_wan ~check:cm ~n_clients:6 ~mode:Gryff.Config.Rsc
      ~conflict:0.3 ~write_ratio:0.5 ~n_keys:50 ~duration_s:1.0 ~seed:9 ()
  in
  let goff = g `Offline and gon = g `Online in
  check bool "gryff offline verified" true (Harness.Run.passed goff);
  check bool "gryff online verified" true (Harness.Run.passed gon);
  check int "gryff same duration" goff.Harness.Run.duration_us
    gon.Harness.Run.duration_us

let suites =
  [
    ( "scale.online",
      [
        Alcotest.test_case "agrees with offline on valid histories" `Quick
          test_agreement_valid;
        Alcotest.test_case "agrees with offline on mutated histories" `Quick
          test_agreement_mutated;
        Alcotest.test_case "starved budget is never wrong" `Quick
          test_starved_budget_never_wrong;
        Alcotest.test_case "in-order feed is linear" `Quick
          test_in_order_feed_is_linear;
        Alcotest.test_case "online checking is passive" `Quick
          test_online_checking_is_passive;
      ] );
    ( "scale.golden",
      [
        Alcotest.test_case "spanner seeded trace digest" `Quick
          test_golden_spanner_trace;
        Alcotest.test_case "gryff seeded trace digest" `Quick
          test_golden_gryff_trace;
      ] );
  ]
