(* Batching guarantees: (1) envelope accounting is exact — every delivered
   envelope costs the fixed header plus the sum of its members' bytes, drops
   are charged per envelope, duplication never double-counts wire bytes;
   (2) with batching off, the [Harness.Env] path reproduces the golden
   seeded digests byte-for-byte; (3) batched runs are themselves
   deterministic under a fixed seed, and the online checker still passes on
   them. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

module W = Rss_core.Witness

(* {1 Envelope accounting}

   Drive a raw 3-site network with only [Net.post] traffic under a random
   policy and random per-link faults, drain the engine, and reconcile the
   network's wire counters against what the delivered handlers observed.
   Handlers see their index within the envelope, so index-0 invocations
   count envelope deliveries (including duplicates) from the outside. *)

type observed = {
  mutable member_bytes : int;  (* bytes of every delivered member *)
  mutable members : int;  (* delivered member handlers *)
  mutable idx0 : int;  (* envelope deliveries, duplicates included *)
}

let drive ~seed ~loss ~dup ~n_msgs =
  let e = Sim.Engine.create () in
  let rng = Sim.Rng.make seed in
  let net =
    Sim.Net.create e ~rng
      ~rtt_ms:(Sim.Topology.single_dc ~n:3).Sim.Topology.rtt_ms ()
  in
  let policy =
    {
      Sim.Net.batch_us = 1 + Sim.Rng.int rng 200;
      batch_max = 1 + Sim.Rng.int rng 16;
      adaptive = Sim.Rng.bool rng 0.5;
    }
  in
  Sim.Net.set_batching net (Some policy);
  for s = 0 to 2 do
    for d = 0 to 2 do
      if loss > 0.0 then Sim.Net.set_loss net ~src:s ~dst:d loss;
      if dup > 0.0 then Sim.Net.set_dup net ~src:s ~dst:d dup
    done
  done;
  let ob = { member_bytes = 0; members = 0; idx0 = 0 } in
  let posted_bytes = ref 0 in
  (* Spread the posts over simulated time so deadline, size-cap and idle
     flushes all occur. *)
  for i = 0 to n_msgs - 1 do
    let at = Sim.Rng.int rng 5_000 in
    Sim.Engine.schedule e ~after:at (fun () ->
        let src = Sim.Rng.int rng 3 and dst = Sim.Rng.int rng 3 in
        let bytes = 16 + Sim.Rng.int rng 240 in
        posted_bytes := !posted_bytes + bytes;
        ignore i;
        Sim.Net.post ~bytes net ~src ~dst (fun idx ->
            if idx = 0 then ob.idx0 <- ob.idx0 + 1;
            ob.members <- ob.members + 1;
            ob.member_bytes <- ob.member_bytes + bytes))
  done;
  Sim.Engine.run e;
  (net, ob, !posted_bytes)

let test_accounting_under_loss () =
  for seed = 1 to 60 do
    let net, ob, _posted =
      drive ~seed ~loss:(if seed mod 3 = 0 then 0.3 else 0.05) ~dup:0.0
        ~n_msgs:400
    in
    (* Every posted message was flushed into some envelope: the deadline
       timer armed at first enqueue guarantees no buffer outlives the run. *)
    check int (Fmt.str "seed %d: members flushed" seed) 400
      (Sim.Net.batch_members net);
    (* Drop is per envelope, charged exactly once. *)
    check int
      (Fmt.str "seed %d: envelopes = sent + dropped" seed)
      (Sim.Net.batch_envelopes net)
      (Sim.Net.messages_sent net + Sim.Net.messages_dropped net);
    (* A delivered envelope is observed from outside as one index-0 handler. *)
    check int
      (Fmt.str "seed %d: deliveries = sent" seed)
      (Sim.Net.messages_sent net) ob.idx0;
    (* The wire invariant: envelope bytes = fixed header + member bytes,
       summed over delivered envelopes only. *)
    check int
      (Fmt.str "seed %d: bytes = header*sent + member bytes" seed)
      ((Sim.Net.envelope_header_bytes * Sim.Net.messages_sent net)
      + ob.member_bytes)
      (Sim.Net.bytes_sent net)
  done

let test_accounting_under_dup () =
  for seed = 61 to 100 do
    let net, ob, posted = drive ~seed ~loss:0.0 ~dup:0.3 ~n_msgs:300 in
    check int (Fmt.str "seed %d: members flushed" seed) 300
      (Sim.Net.batch_members net);
    (* No drops: every envelope delivered, charged once. *)
    check int
      (Fmt.str "seed %d: every envelope sent" seed)
      (Sim.Net.batch_envelopes net)
      (Sim.Net.messages_sent net);
    (* Duplication re-delivers but never re-charges the wire... *)
    check int
      (Fmt.str "seed %d: bytes charged once" seed)
      ((Sim.Net.envelope_header_bytes * Sim.Net.messages_sent net) + posted)
      (Sim.Net.bytes_sent net);
    (* ...and each duplicated envelope is one extra index-0 delivery. *)
    check int
      (Fmt.str "seed %d: duplicates re-deliver" seed)
      (Sim.Net.messages_sent net + Sim.Net.messages_duplicated net)
      ob.idx0;
    check bool
      (Fmt.str "seed %d: dup battery has teeth" seed)
      true
      (Sim.Net.messages_duplicated net > 0 && ob.members > 300)
  done

let test_policy_validation () =
  let e = Sim.Engine.create () in
  let net =
    Sim.Net.create e ~rng:(Sim.Rng.make 1)
      ~rtt_ms:(Sim.Topology.single_dc ~n:2).Sim.Topology.rtt_ms ()
  in
  let rejects p =
    match Sim.Net.set_batching net (Some p) with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  check bool "non-positive batch_us rejected" true
    (rejects { Sim.Net.batch_us = 0; batch_max = 8; adaptive = false });
  check bool "non-positive batch_max rejected" true
    (rejects { Sim.Net.batch_us = 50; batch_max = 0; adaptive = false });
  Sim.Net.set_batching net
    (Some { Sim.Net.batch_us = 50; batch_max = 8; adaptive = true });
  check bool "policy installed" true (Sim.Net.batching net <> None);
  Sim.Net.set_batching net None;
  check bool "policy removed" true (Sim.Net.batching net = None)

(* {1 Batching off is byte-identical}

   The same golden digests as test_scale, but reached through the
   [Harness.Env] record with batching explicitly off — pinning both that
   the Env refactor is a pure repackaging of the legacy keywords and that
   an uninstalled policy leaves the seeded schedule untouched. *)

let digest_spanner ~env () =
  let r =
    Harness.spanner_dc ~env ~mode:Spanner.Config.Rss ~n_shards:3
      ~service_time_us:20 ~n_clients:16 ~n_keys:200 ~duration_s:2.0 ~seed:11 ()
  in
  let b = Buffer.create 65536 in
  (match r.Harness.Run.records with
  | Harness.Run.Spanner_txns a ->
    Array.iter
      (fun (x : W.txn) ->
        Buffer.add_string b
          (Printf.sprintf "p%d i%d r%d t%d k%d" x.W.proc x.W.inv x.W.resp
             x.W.ts x.W.rank);
        List.iter
          (fun (k, v) ->
            Buffer.add_string b
              (Printf.sprintf " R%s=%s" k
                 (match v with None -> "nil" | Some v -> string_of_int v)))
          x.W.reads;
        List.iter
          (fun (k, v) -> Buffer.add_string b (Printf.sprintf " W%s=%d" k v))
          x.W.writes;
        Buffer.add_char b '\n')
      a
  | Harness.Run.Gryff_ops _ -> assert false);
  Buffer.add_string b (Printf.sprintf "duration=%d\n" r.Harness.Run.duration_us);
  Digest.to_hex (Digest.string (Buffer.contents b))

let digest_gryff ~env () =
  let r =
    Harness.gryff_wan ~env ~n_clients:8 ~mode:Gryff.Config.Rsc ~conflict:0.2
      ~write_ratio:0.4 ~n_keys:500 ~duration_s:2.0 ~seed:13 ()
  in
  let b = Buffer.create 65536 in
  (match r.Harness.Run.records with
  | Harness.Run.Gryff_ops a ->
    Array.iter
      (fun (g : Gryff.Cluster.record) ->
        Buffer.add_string b
          (Printf.sprintf "p%d %s k%d o%s w%s cs%d.%d.%d i%d r%d\n"
             g.Gryff.Cluster.g_proc
             (match g.Gryff.Cluster.g_kind with
             | Gryff.Cluster.Read -> "rd"
             | Gryff.Cluster.Write -> "wr"
             | Gryff.Cluster.Rmw -> "rmw")
             g.Gryff.Cluster.g_key
             (match g.Gryff.Cluster.g_observed with
             | None -> "-"
             | Some v -> string_of_int v)
             (match g.Gryff.Cluster.g_written with
             | None -> "-"
             | Some v -> string_of_int v)
             g.Gryff.Cluster.g_cs.Gryff.Carstamp.ts
             g.Gryff.Cluster.g_cs.Gryff.Carstamp.cid
             g.Gryff.Cluster.g_cs.Gryff.Carstamp.rmwc g.Gryff.Cluster.g_inv
             g.Gryff.Cluster.g_resp))
      a
  | Harness.Run.Spanner_txns _ -> assert false);
  Buffer.add_string b (Printf.sprintf "duration=%d\n" r.Harness.Run.duration_us);
  Digest.to_hex (Digest.string (Buffer.contents b))

let off_env = Harness.Env.(default |> with_check `No_check)

let test_batching_off_is_byte_identical () =
  (* Constants shared with test_scale — the goldens predate batching. *)
  check string "spanner digest via Env, batching off"
    "371676f632a207ac160041a6f67542ce"
    (digest_spanner ~env:off_env ());
  check string "gryff digest via Env, batching off"
    "6600a5907cf2b98b5e72f80ff9a2ea42"
    (digest_gryff ~env:off_env ())

(* {1 Batched runs are deterministic and still verify} *)

let batched_env check_mode =
  Harness.Env.(
    default |> with_check check_mode
    |> with_batching
         (Some { Sim.Net.batch_us = 50; batch_max = 32; adaptive = false }))

let test_batched_deterministic () =
  let a = digest_spanner ~env:(batched_env `No_check) () in
  let b = digest_spanner ~env:(batched_env `No_check) () in
  check string "same seed, same batched schedule" a b;
  (* Batching must actually change the schedule it claims to optimise. *)
  check bool "batched schedule differs from unbatched" true
    (a <> "371676f632a207ac160041a6f67542ce")

let test_batched_passes_online_check () =
  let r =
    Harness.spanner_dc ~env:(batched_env `Online) ~mode:Spanner.Config.Rss
      ~n_shards:3 ~service_time_us:20 ~n_clients:16 ~n_keys:200 ~duration_s:2.0
      ~seed:11 ()
  in
  check bool "spanner batched online check passes" true (Harness.Run.passed r);
  check bool "spanner batched run coalesced" true
    (Harness.Run.counter r "batch.envelopes" > 0
    && Harness.Run.counter r "batch.members"
       > Harness.Run.counter r "batch.envelopes");
  let g =
    Harness.gryff_dc ~env:(batched_env `Online) ~mode:Gryff.Config.Rsc
      ~service_time_us:20 ~n_clients:12 ~conflict:0.2 ~write_ratio:0.4
      ~n_keys:200 ~duration_s:1.0 ~seed:13 ()
  in
  check bool "gryff batched online check passes" true (Harness.Run.passed g);
  check bool "gryff batched run coalesced" true
    (Harness.Run.counter g "batch.envelopes" > 0)

let suites =
  [
    ( "batch.accounting",
      [
        Alcotest.test_case "envelope bytes exact under loss" `Quick
          test_accounting_under_loss;
        Alcotest.test_case "duplication never double-charges" `Quick
          test_accounting_under_dup;
        Alcotest.test_case "policy validation" `Quick test_policy_validation;
      ] );
    ( "batch.identity",
      [
        Alcotest.test_case "batching off is byte-identical" `Quick
          test_batching_off_is_byte_identical;
        Alcotest.test_case "batched runs are deterministic" `Quick
          test_batched_deterministic;
        Alcotest.test_case "batched runs pass the online checker" `Quick
          test_batched_passes_online_check;
      ] );
  ]
