(* Tests for the replication substrate and the message-queue service. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let mk_net () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make 1 in
  (* sites: 0 leader, 1 near (RTT 20ms), 2 far (RTT 100ms) *)
  let rtt = [| [| 0.2; 20.0; 100.0 |]; [| 20.0; 0.2; 50.0 |]; [| 100.0; 50.0; 0.2 |] |] in
  (engine, Sim.Net.create engine ~rng ~rtt_ms:rtt ~jitter:0.0 ())

let test_majority_is_nearest () =
  let engine, net = mk_net () in
  let g = Replication.Group.create net ~leader_site:0 ~replica_sites:[ 1; 2 ] () in
  check int "majority of 3" 2 (Replication.Group.majority g);
  let done_at = ref (-1) in
  Replication.Group.replicate g () (fun () -> done_at := Sim.Engine.now engine);
  Sim.Engine.run engine;
  (* One ack needed: round trip to the 20ms replica. *)
  check int "commit at nearest replica RTT" 20_000 !done_at;
  check int "log grew" 1 (Replication.Group.log_length g)

let test_no_replicas_immediate () =
  let engine, net = mk_net () in
  let g = Replication.Group.create net ~leader_site:0 ~replica_sites:[] () in
  let fired = ref false in
  Replication.Group.replicate g () (fun () -> fired := true);
  check bool "synchronous" true !fired;
  ignore engine

let test_five_replicas_needs_two_acks () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make 1 in
  let rtt =
    [|
      [| 0.2; 10.0; 30.0; 50.0; 70.0 |];
      [| 10.0; 0.2; 0.0; 0.0; 0.0 |];
      [| 30.0; 0.0; 0.2; 0.0; 0.0 |];
      [| 50.0; 0.0; 0.0; 0.2; 0.0 |];
      [| 70.0; 0.0; 0.0; 0.0; 0.2 |];
    |]
  in
  let net = Sim.Net.create engine ~rng ~rtt_ms:rtt ~jitter:0.0 () in
  let g = Replication.Group.create net ~leader_site:0 ~replica_sites:[ 1; 2; 3; 4 ] () in
  check int "majority of 5" 3 (Replication.Group.majority g);
  let done_at = ref (-1) in
  Replication.Group.replicate g () (fun () -> done_at := Sim.Engine.now engine);
  Sim.Engine.run engine;
  (* Leader + 2 acks: second-nearest replica at 30ms RTT. *)
  check int "second ack decides" 30_000 !done_at

let test_concurrent_replications_independent () =
  let engine, net = mk_net () in
  let g = Replication.Group.create net ~leader_site:0 ~replica_sites:[ 1; 2 ] () in
  let order = ref [] in
  Replication.Group.replicate g () (fun () -> order := 1 :: !order);
  Sim.Engine.schedule engine ~after:5_000 (fun () ->
      Replication.Group.replicate g () (fun () -> order := 2 :: !order));
  Sim.Engine.run engine;
  check (Alcotest.list int) "both committed in order" [ 1; 2 ] (List.rev !order);
  check int "log" 2 (Replication.Group.log_length g)

let test_station_charges_acks () =
  let engine, net = mk_net () in
  let station = Sim.Station.create engine ~service_time_us:500 in
  let g =
    Replication.Group.create net ~station ~leader_site:0 ~replica_sites:[ 1; 2 ] ()
  in
  let done_at = ref (-1) in
  Replication.Group.replicate g () (fun () -> done_at := Sim.Engine.now engine);
  Sim.Engine.run engine;
  check int "ack pays CPU" 20_500 !done_at;
  check bool "station busy time" true (Sim.Station.busy_us station >= 500)

(* ------------------------------------------------------------------ *)
(* Failover                                                            *)
(* ------------------------------------------------------------------ *)

let test_ack_dedup_under_duplication () =
  (* Five-site group needing two acks, with the nearest replica's ack link
     duplicating every message. Counting the copy would commit at the first
     replica's RTT (10 ms); per-replica deduplication must wait for a second
     distinct replica (30 ms). *)
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make 1 in
  let rtt =
    [|
      [| 0.2; 10.0; 30.0; 50.0; 70.0 |];
      [| 10.0; 0.2; 0.0; 0.0; 0.0 |];
      [| 30.0; 0.0; 0.2; 0.0; 0.0 |];
      [| 50.0; 0.0; 0.0; 0.2; 0.0 |];
      [| 70.0; 0.0; 0.0; 0.0; 0.2 |];
    |]
  in
  let net = Sim.Net.create engine ~rng ~rtt_ms:rtt ~jitter:0.0 () in
  Sim.Net.set_dup net ~src:1 ~dst:0 0.99;
  let g =
    Replication.Group.create net ~leader_site:0 ~replica_sites:[ 1; 2; 3; 4 ] ()
  in
  let done_at = ref (-1) in
  Replication.Group.replicate g () (fun () -> done_at := Sim.Engine.now engine);
  Sim.Engine.run engine;
  check bool "ack link duplicated" true (Sim.Net.messages_duplicated net > 0);
  check int "duplicate ack does not count twice" 30_000 !done_at;
  check bool "suppressed duplicate counted" true
    ((Replication.Group.stats g).Replication.Group.dup_acks >= 1)

let test_view_change_on_leader_crash () =
  let engine, net = mk_net () in
  let g = Replication.Group.create net ~leader_site:0 ~replica_sites:[ 1; 2 ] () in
  let changes = ref [] in
  Replication.Group.enable_failover g
    ~on_leader_change:(fun ~leader_site ~committed ->
      changes := (leader_site, List.length committed) :: !changes)
    ~until_us:(Sim.Engine.sec 10.0) ();
  let committed = ref 0 in
  for i = 1 to 3 do
    Sim.Engine.schedule engine ~after:(i * 10_000) (fun () ->
        Replication.Group.replicate g i (fun () -> incr committed))
  done;
  Sim.Engine.schedule engine ~after:1_000_000 (fun () -> Sim.Net.set_down net 0);
  Sim.Engine.run engine;
  check int "entries committed before the crash" 3 !committed;
  check bool "view advanced" true (Replication.Group.view g > 0);
  check bool "leadership moved off the crashed site" true
    (Replication.Group.leader_site g <> 0);
  check bool "new leader is serving" true (Replication.Group.serving g);
  check int "committed entries survive the election" 3
    (Replication.Group.log_length g);
  (match List.rev !changes with
  | (site, n) :: _ ->
    check bool "callback carries the new leader" true (site <> 0);
    check int "callback carries the full log" 3 n
  | [] -> Alcotest.fail "on_leader_change never fired");
  check bool "view change counted" true
    ((Replication.Group.stats g).Replication.Group.view_changes >= 1)

let test_catchup_after_recovery () =
  (* A follower sleeps through four appends; on recovery the leader's
     heartbeats expose the gap and a state transfer closes it. The leader
     itself never loses its majority (2 of 3), so no election happens. *)
  let engine, net = mk_net () in
  let g = Replication.Group.create net ~leader_site:0 ~replica_sites:[ 1; 2 ] () in
  Replication.Group.enable_failover g ~until_us:(Sim.Engine.sec 10.0) ();
  Sim.Engine.schedule engine ~after:100_000 (fun () -> Sim.Net.set_down net 2);
  for i = 1 to 4 do
    Sim.Engine.schedule engine
      ~after:(200_000 + (i * 10_000))
      (fun () -> Replication.Group.replicate g i (fun () -> ()))
  done;
  Sim.Engine.schedule engine ~after:2_000_000 (fun () -> Sim.Net.set_up net 2);
  Sim.Engine.run engine;
  check int "leadership never moved" 0 (Replication.Group.leader_site g);
  check int "view stable" 0 (Replication.Group.view g);
  check int "log intact" 4 (Replication.Group.log_length g);
  check bool "recovered follower caught up by state transfer" true
    ((Replication.Group.stats g).Replication.Group.catchups >= 1)

let test_failover_deterministic () =
  (* Same crash schedule, same seed: the election must land on the same
     view, leader, and timing — failover timers draw from a dedicated
     seeded stream, never the wall clock. *)
  let go () =
    let engine, net = mk_net () in
    let g =
      Replication.Group.create net ~leader_site:0 ~replica_sites:[ 1; 2 ] ()
    in
    Replication.Group.enable_failover g ~until_us:(Sim.Engine.sec 10.0) ();
    Sim.Engine.schedule engine ~after:500_000 (fun () -> Sim.Net.set_down net 0);
    Sim.Engine.run engine;
    let s = Replication.Group.stats g in
    ( Replication.Group.view g,
      Replication.Group.leader_site g,
      s.Replication.Group.view_changes,
      s.Replication.Group.heartbeats,
      s.Replication.Group.max_election_us )
  in
  let a = go () and b = go () in
  check bool "identical failover trajectory" true (a = b)

(* ------------------------------------------------------------------ *)
(* Message queue                                                       *)
(* ------------------------------------------------------------------ *)

let test_mqueue_fifo () =
  let engine = Sim.Engine.create () in
  let q = Photoapp.Mqueue.create engine ~rtt_us:2_000 in
  let got = ref [] in
  Photoapp.Mqueue.enqueue q ~payload:1 ~ctx:() (fun () ->
      Photoapp.Mqueue.enqueue q ~payload:2 ~ctx:() (fun () ->
          Photoapp.Mqueue.dequeue q (fun a ->
              Photoapp.Mqueue.dequeue q (fun b -> got := [ a; b ]))));
  Sim.Engine.run engine;
  (match !got with
  | [ Some (1, ()); Some (2, ()) ] -> ()
  | _ -> Alcotest.fail "not FIFO");
  check int "empty after" 0 (Photoapp.Mqueue.length q)

let test_mqueue_empty_dequeue () =
  let engine = Sim.Engine.create () in
  let q = Photoapp.Mqueue.create engine ~rtt_us:2_000 in
  let got = ref (Some (0, ())) in
  Photoapp.Mqueue.dequeue q (fun x -> got := x);
  Sim.Engine.run engine;
  check bool "none" true (!got = None)

let test_mqueue_latency () =
  let engine = Sim.Engine.create () in
  let q = Photoapp.Mqueue.create engine ~rtt_us:2_000 in
  let at = ref (-1) in
  Photoapp.Mqueue.enqueue q ~payload:1 ~ctx:42 (fun () -> at := Sim.Engine.now engine);
  Sim.Engine.run engine;
  check int "enqueue costs one RTT" 2_000 !at

let test_mqueue_carries_context () =
  let engine = Sim.Engine.create () in
  let q = Photoapp.Mqueue.create engine ~rtt_us:1_000 in
  let ctx = ref 0 in
  Photoapp.Mqueue.enqueue q ~payload:7 ~ctx:99 (fun () ->
      Photoapp.Mqueue.dequeue q (function
        | Some (7, c) -> ctx := c
        | Some _ | None -> ()));
  Sim.Engine.run engine;
  check int "context delivered" 99 !ctx

let suites =
  [
    ( "replication",
      [
        Alcotest.test_case "majority = nearest" `Quick test_majority_is_nearest;
        Alcotest.test_case "no replicas" `Quick test_no_replicas_immediate;
        Alcotest.test_case "five replicas" `Quick test_five_replicas_needs_two_acks;
        Alcotest.test_case "concurrent entries" `Quick
          test_concurrent_replications_independent;
        Alcotest.test_case "station charges acks" `Quick test_station_charges_acks;
      ] );
    ( "replication.failover",
      [
        Alcotest.test_case "ack dedup under duplication" `Quick
          test_ack_dedup_under_duplication;
        Alcotest.test_case "view change on leader crash" `Quick
          test_view_change_on_leader_crash;
        Alcotest.test_case "catch-up after recovery" `Quick
          test_catchup_after_recovery;
        Alcotest.test_case "seeded determinism" `Quick test_failover_deterministic;
      ] );
    ( "photoapp.mqueue",
      [
        Alcotest.test_case "fifo" `Quick test_mqueue_fifo;
        Alcotest.test_case "empty dequeue" `Quick test_mqueue_empty_dequeue;
        Alcotest.test_case "latency" `Quick test_mqueue_latency;
        Alcotest.test_case "carries context" `Quick test_mqueue_carries_context;
      ] );
  ]
