(* Overload-robustness guarantees: (1) Station.amortized cost accounting is
   exact — a drained batch charges the station head-cost plus quarter-cost
   per follower, and arrival sampling observes the queue transient; (2)
   admission control sheds exactly past the installed bounds and the typed
   pushback carries a drainable backoff estimate; (3) the retry budget is a
   strict token bucket — dry means fast-fail, refill is lazy and exact; (4)
   a slowdown factor scales busy time linearly; (5) the whole flow layer
   with every knob off reproduces the golden seeded digests byte-for-byte;
   (6) hedged reads complete quorums under a gray-failed replica. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string
let qt = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Amortized batch accounting (QCheck)                                 *)
(* ------------------------------------------------------------------ *)

(* An envelope of [n] members with head cost [full] must charge the
   station exactly [full + (n-1) * ceil(full/4)]: the head pays the parse
   and dispatch, every follower rides the warm path at a quarter, rounded
   up so a nonzero head never yields free followers. The queue-depth
   recorder must observe the submit transient 0, 1, ..., n-1. *)
let envelope_arb =
  QCheck.make
    ~print:(fun (full, n) -> Printf.sprintf "full=%d n=%d" full n)
    QCheck.Gen.(pair (int_range 1 500) (int_range 1 48))

let prop_amortized_accounting =
  QCheck.Test.make ~name:"amortized envelope charges head + quarter-followers"
    ~count:300 envelope_arb (fun (full, n) ->
      let quarter = (full + 3) / 4 in
      (* The formula itself, member by member. *)
      if Sim.Station.amortized ~full 0 <> full then
        QCheck.Test.fail_reportf "head must pay full cost %d" full;
      for idx = 1 to n - 1 do
        if Sim.Station.amortized ~full idx <> quarter then
          QCheck.Test.fail_reportf "follower %d must pay %d" idx quarter
      done;
      (* And through a real station: submit the envelope, drain, reconcile
         busy time against the closed form. *)
      let e = Sim.Engine.create () in
      let st = Sim.Station.create e ~service_time_us:full in
      Sim.Station.set_observe st true;
      let served = ref 0 in
      for idx = 0 to n - 1 do
        Sim.Station.submit ~cost:(Sim.Station.amortized ~full idx) st
          (fun () -> incr served)
      done;
      Sim.Engine.run e;
      let expect = full + ((n - 1) * quarter) in
      if Sim.Station.busy_us st <> expect then
        QCheck.Test.fail_reportf "busy %d, want %d" (Sim.Station.busy_us st)
          expect;
      if !served <> n then QCheck.Test.fail_reportf "served %d of %d" !served n;
      (* Arrival sampling saw the transient: depth i at the i-th submit. *)
      let depths = Sim.Station.queue_depths st in
      Stats.Recorder.count depths = n
      && Stats.Recorder.min depths = 0
      && Stats.Recorder.max depths = n - 1)

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

let test_admission_sheds_past_queue_bound () =
  let e = Sim.Engine.create () in
  let st = Sim.Station.create e ~service_time_us:100 in
  Sim.Station.set_limits st (Some { Sim.Station.max_queue = 3; max_sojourn_us = 1_000_000 });
  let admitted = ref 0 and shed = ref 0 in
  for _ = 1 to 8 do
    match Sim.Station.try_submit st (fun () -> ()) with
    | Sim.Station.Admitted -> incr admitted
    | Sim.Station.Shed pb ->
      incr shed;
      (* The suggested backoff is the admitted backlog: 3 jobs deep. *)
      check bool "retry_after covers backlog" true
        (pb.Sim.Station.retry_after_us >= 100)
  done;
  check int "bound admits" 3 !admitted;
  check int "rest shed" 5 !shed;
  check int "shed counter" 5 (Sim.Station.shed st);
  Sim.Engine.run e;
  (* Shed work never ran: only the admitted jobs were charged. *)
  check int "busy = admitted only" 300 (Sim.Station.busy_us st)

let test_admission_sheds_past_sojourn_bound () =
  let e = Sim.Engine.create () in
  let st = Sim.Station.create e ~service_time_us:400 in
  Sim.Station.set_limits st
    (Some { Sim.Station.max_queue = 1000; max_sojourn_us = 1_000 });
  let verdicts =
    List.init 5 (fun _ -> Sim.Station.try_submit st (fun () -> ()))
  in
  (* Backlogs at arrival: 0, 400, 800 admitted; 1200 exceeds the bound. *)
  let admitted =
    List.length (List.filter (fun a -> a = Sim.Station.Admitted) verdicts)
  in
  check int "sojourn bound admits" 3 admitted;
  Sim.Engine.run e

let test_no_limits_never_sheds () =
  let e = Sim.Engine.create () in
  let st = Sim.Station.create e ~service_time_us:50 in
  for _ = 1 to 100 do
    match Sim.Station.try_submit st (fun () -> ()) with
    | Sim.Station.Admitted -> ()
    | Sim.Station.Shed _ -> Alcotest.fail "shed without limits"
  done;
  Sim.Engine.run e;
  check int "all served" 5_000 (Sim.Station.busy_us st)

(* ------------------------------------------------------------------ *)
(* Retry budget                                                        *)
(* ------------------------------------------------------------------ *)

let test_budget_fast_fails_when_dry () =
  let e = Sim.Engine.create () in
  let b = Sim.Rpc.Budget.create e ~capacity:4 ~refill_period_us:1_000 in
  let takes = List.init 10 (fun _ -> Sim.Rpc.Budget.try_take b) in
  check int "starts full" 4
    (List.length (List.filter (fun x -> x) takes));
  check int "taken" 4 (Sim.Rpc.Budget.taken b);
  check int "denied" 6 (Sim.Rpc.Budget.denied b);
  check int "dry" 0 (Sim.Rpc.Budget.tokens b);
  (* Lazy refill: one token per period, capped at capacity. *)
  Sim.Engine.schedule e ~after:2_500 (fun () ->
      check int "two periods, two tokens" 2 (Sim.Rpc.Budget.tokens b);
      check bool "grants again" true (Sim.Rpc.Budget.try_take b));
  Sim.Engine.schedule e ~after:50_000 (fun () ->
      check int "refill caps at capacity" 4 (Sim.Rpc.Budget.tokens b));
  Sim.Engine.run e

(* ------------------------------------------------------------------ *)
(* Gray-failure slowdown                                               *)
(* ------------------------------------------------------------------ *)

let test_slowdown_scales_service () =
  let e = Sim.Engine.create () in
  let st = Sim.Station.create e ~service_time_us:10 in
  Sim.Station.submit st (fun () -> ());
  Sim.Station.set_slowdown st 7;
  Sim.Station.submit st (fun () -> ());
  Sim.Station.set_slowdown st 1;
  Sim.Station.submit st (fun () -> ());
  Sim.Engine.run e;
  check int "10 + 70 + 10" 90 (Sim.Station.busy_us st);
  Alcotest.check_raises "factor must be >= 1"
    (Invalid_argument "Station.set_slowdown: factor must be >= 1") (fun () ->
      Sim.Station.set_slowdown st 0)

(* ------------------------------------------------------------------ *)
(* Flow layer off is byte-identical                                    *)
(* ------------------------------------------------------------------ *)

(* The same golden digests as test_scale and test_batch, reached with the
   flow policy record *installed but every knob off* — pinning that arming
   the layer without limits, deadlines, hedging or budget draws no
   randomness and schedules no events. *)

let flow_off_env =
  Harness.Env.(
    default |> with_check `No_check |> with_flow (Some Harness.flow_default))

let digest_gryff ~env () =
  let r =
    Harness.gryff_wan ~env ~n_clients:8 ~mode:Gryff.Config.Rsc ~conflict:0.2
      ~write_ratio:0.4 ~n_keys:500 ~duration_s:2.0 ~seed:13 ()
  in
  let b = Buffer.create 65536 in
  (match r.Harness.Run.records with
  | Harness.Run.Gryff_ops a ->
    Array.iter
      (fun (g : Gryff.Cluster.record) ->
        Buffer.add_string b
          (Printf.sprintf "p%d %s k%d o%s w%s cs%d.%d.%d i%d r%d\n"
             g.Gryff.Cluster.g_proc
             (match g.Gryff.Cluster.g_kind with
             | Gryff.Cluster.Read -> "rd"
             | Gryff.Cluster.Write -> "wr"
             | Gryff.Cluster.Rmw -> "rmw")
             g.Gryff.Cluster.g_key
             (match g.Gryff.Cluster.g_observed with
             | None -> "-"
             | Some v -> string_of_int v)
             (match g.Gryff.Cluster.g_written with
             | None -> "-"
             | Some v -> string_of_int v)
             g.Gryff.Cluster.g_cs.Gryff.Carstamp.ts
             g.Gryff.Cluster.g_cs.Gryff.Carstamp.cid
             g.Gryff.Cluster.g_cs.Gryff.Carstamp.rmwc g.Gryff.Cluster.g_inv
             g.Gryff.Cluster.g_resp))
      a
  | Harness.Run.Spanner_txns _ -> assert false);
  Buffer.add_string b (Printf.sprintf "duration=%d\n" r.Harness.Run.duration_us);
  Digest.to_hex (Digest.string (Buffer.contents b))

let test_flow_off_is_byte_identical () =
  check string "gryff digest with flow armed but every knob off"
    "6600a5907cf2b98b5e72f80ff9a2ea42"
    (digest_gryff ~env:flow_off_env ())

(* ------------------------------------------------------------------ *)
(* Hedged reads under a gray-failed replica                            *)
(* ------------------------------------------------------------------ *)

(* Closed-loop Gryff run with one replica serving 50x slower *and* its
   links lagged: the hedged fan-out must fire, win quorums, and the
   history must still verify — a hedge duplicates an idempotent read, it
   never forks the protocol state. *)
let hedged_run ~fanout ~seed =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make seed in
  let config = Gryff.Config.wan5 ~mode:Gryff.Config.Rsc () in
  let cluster = Gryff.Cluster.create engine ~rng config in
  let victim = 2 in
  Gryff.Cluster.set_site_slowdown cluster ~site:victim ~factor:50;
  let net = Gryff.Cluster.net cluster in
  for s = 0 to 4 do
    if s <> victim then begin
      Sim.Net.set_extra_delay net ~src:s ~dst:victim 200_000;
      Sim.Net.set_extra_delay net ~src:victim ~dst:s 200_000
    end
  done;
  Gryff.Cluster.set_read_fanout cluster fanout;
  Gryff.Cluster.set_hedge_us cluster 10_000;
  let wl = Sim.Rng.split rng in
  (* Clients off the victim: hedging recovers a server-side tail. *)
  let clients =
    Array.init 8 (fun i ->
        Gryff.Client.create cluster ~site:(let s = i mod 4 in if s >= victim then s + 1 else s))
  in
  Workload.Client_model.closed_loop engine ~n_clients:8
    ~body:(fun ~client k ->
      let c = clients.(client) in
      let key = Sim.Rng.int wl 32 in
      if Sim.Rng.bool wl 0.25 then
        Gryff.Client.write c ~key ~value:(Gryff.Cluster.fresh_value cluster)
          (fun _ -> k ())
      else Gryff.Client.read c ~key (fun _ -> k ()))
    ~until:(Sim.Engine.sec 3.0) ();
  Sim.Engine.run engine;
  (cluster, Gryff.Cluster.check_history cluster)

let test_hedged_reads_win_under_slow_node () =
  let cluster, verdict = hedged_run ~fanout:Gryff.Protocol.Hedged ~seed:7 in
  let fs = Gryff.Cluster.flow_stats cluster in
  check bool "hedges fired" true (fs.Gryff.Cluster.hedges > 0);
  check bool "hedges won quorums" true (fs.Gryff.Cluster.hedge_wins > 0);
  (match verdict with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("hedged run failed verification: " ^ m));
  (* Same seed, same schedule: hedging is deterministic. *)
  let cluster2, _ = hedged_run ~fanout:Gryff.Protocol.Hedged ~seed:7 in
  let fs2 = Gryff.Cluster.flow_stats cluster2 in
  check int "deterministic hedge count" fs.Gryff.Cluster.hedges
    fs2.Gryff.Cluster.hedges;
  check int "deterministic hedge wins" fs.Gryff.Cluster.hedge_wins
    fs2.Gryff.Cluster.hedge_wins

let suites =
  [
    ( "flow",
      [
        qt prop_amortized_accounting;
        Alcotest.test_case "admission sheds past queue bound" `Quick
          test_admission_sheds_past_queue_bound;
        Alcotest.test_case "admission sheds past sojourn bound" `Quick
          test_admission_sheds_past_sojourn_bound;
        Alcotest.test_case "no limits never sheds" `Quick test_no_limits_never_sheds;
        Alcotest.test_case "budget fast-fails when dry" `Quick
          test_budget_fast_fails_when_dry;
        Alcotest.test_case "slowdown scales service" `Quick
          test_slowdown_scales_service;
        Alcotest.test_case "flow off is byte-identical" `Slow
          test_flow_off_is_byte_identical;
        Alcotest.test_case "hedged reads win under slow node" `Slow
          test_hedged_reads_win_under_slow_node;
      ] );
  ]
