(** Coverage-guided schedule search with counterexample shrinking.

    An AFL-style loop over {!Exec.input}s: a queue of interesting inputs
    is seeded with {!Exec.base} per (protocol × preset); each round picks
    a queue entry with energy left and mutates it — workload seed,
    nemesis seed, preset, perturbation vectors, batching, disk-fault
    rate, slot count — from the search's own {!Sim.Rng} stream. Every
    trial's coverage {!Exec.outcome.signature} is looked up in the seen
    map: a novel signature enqueues the input with a fresh energy budget
    (novelty earns mutations), a known one just drains energy. Every
    [Fail] verdict is shrunk by {!shrink} and serialized into the corpus
    directory. The whole search is a pure function of its {!config} —
    same config, same binary, same findings. *)

type config = {
  protocols : Chaos.Audit.protocol list;
  presets : Chaos.Nemesis.preset list;
  budget : int;  (** total executions, shrink trials included *)
  search_seed : int;
  base : Chaos.Audit.protocol -> Exec.input;
      (** per-protocol seed-input template (default {!Exec.base}) *)
  shrink : bool;  (** delta-debug failures before reporting (default on) *)
  shrink_budget : int;  (** max executions spent per failure shrink *)
  max_failures : int;  (** stop after this many distinct failures *)
  corpus_dir : string option;  (** where shrunk repros are written *)
  tracer : Obs.Trace.t;  (** Search-kind span per trial when enabled *)
  metrics : Obs.Metrics.t option;  (** explore.* counters when given *)
}

val default_config : unit -> config
(** All four protocols; the partition/loss/reorder/leader-kill/mixed
    preset pool; budget 200; shrink on with budget 60; at most 3
    failures; no corpus dir, tracing and metrics off. *)

type failure = {
  input : Exec.input;  (** the trial that failed, as found *)
  verdict : string;  (** its {!Exec.verdict_string} *)
  shrunk : Exec.input;  (** minimized repro (= [input] when shrink off) *)
  shrunk_verdict : string;  (** still a [fail: _] — shrinking never
                                accepts a candidate that stops failing *)
  shrink_execs : int;  (** executions the minimization spent *)
  found_at : int;  (** 1-based execution index of the find *)
  corpus_file : string option;  (** where the repro was serialized *)
}

type result = {
  execs : int;  (** total executions (= budget unless stopped early) *)
  signatures : int;  (** distinct coverage signatures seen *)
  novel : int;  (** trials that found a new signature *)
  failures : failure list;  (** in discovery order *)
  unknowns : int;  (** trials whose oracle verdict was [Unknown] *)
}

val run : config -> result

val shrink :
  budget:int -> Exec.input -> string -> Exec.input * string * int
(** [shrink ~budget input verdict] delta-debugs a failing input: halves
    the run duration and the client-slot count, switches off the
    batching / disk-fault / checker-budget knobs, and ddmin-zeroes then
    truncates the perturbation vectors — accepting a candidate only if
    it still fails (any [Fail]; the message may legitimately change as
    the history shrinks). Returns the fixpoint (or best-so-far when
    [budget] runs out), its verdict string, and the executions spent. *)

val cost : Exec.input -> int
(** The scalar the shrinker minimizes — dominated by run duration and
    slot count, plus perturbation length and active knobs. Strictly
    decreasing across accepted shrink steps. *)
