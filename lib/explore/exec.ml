type input = {
  protocol : Chaos.Audit.protocol;
  preset : Chaos.Nemesis.preset;
  seed : int;
  nemesis_seed : int;
  duration_ms : int;
  n_slots : int;
  n_keys : int;
  timeout_ms : int;
  conflict_pct : int;
  write_pct : int;
  batch_us : int;
  batch_max : int;
  disk_rate_pct : int;
  check_budget : int;
  unsafe : bool;
  perturb : Perturb.t;
}

(* Small hot keyspaces and short runs: contention is what makes races
   (and the seeded-bug control) reachable within a search budget, and a
   trial has to be cheap enough to run hundreds of times. *)
let base protocol =
  let gryff =
    match protocol with
    | Chaos.Audit.Gryff_lin | Chaos.Audit.Gryff_rsc -> true
    | Chaos.Audit.Spanner_strict | Chaos.Audit.Spanner_rss -> false
  in
  {
    protocol;
    preset = Chaos.Nemesis.Partition_heal;
    seed = 1;
    nemesis_seed = 1;
    duration_ms = 1_500;
    n_slots = 8;
    n_keys = (if gryff then 8 else 64);
    timeout_ms = 2_000;
    conflict_pct = 80;
    write_pct = 40;
    batch_us = 0;
    batch_max = 16;
    disk_rate_pct = 0;
    check_budget = 0;
    unsafe = false;
    perturb = Perturb.none;
  }

let validate i =
  let err fmt = Fmt.kstr Result.error fmt in
  if i.duration_ms <= 0 then err "duration_ms must be positive"
  else if i.n_slots <= 0 then err "n_slots must be positive"
  else if i.n_keys <= 0 then err "n_keys must be positive"
  else if i.timeout_ms <= 0 then err "timeout_ms must be positive"
  else if i.conflict_pct < 0 || i.conflict_pct > 100 then
    err "conflict_pct out of [0, 100]"
  else if i.write_pct < 0 || i.write_pct > 100 then
    err "write_pct out of [0, 100]"
  else if i.batch_us < 0 then err "batch_us must be non-negative"
  else if i.batch_us > 0 && i.batch_max <= 0 then
    err "batch_max must be positive when batching is on"
  else if i.disk_rate_pct < 0 then err "disk_rate_pct must be non-negative"
  else if i.check_budget < 0 then err "check_budget must be non-negative"
  else Ok ()

let describe i =
  let tie, jitter = Perturb.to_string i.perturb in
  Fmt.str
    "%s/%s seed=%d nseed=%d dur=%dms slots=%d keys=%d%s%s%s%s%s tie=%s \
     jitter=%s"
    (Chaos.Audit.protocol_name i.protocol)
    (Chaos.Nemesis.preset_name i.preset)
    i.seed i.nemesis_seed i.duration_ms i.n_slots i.n_keys
    (if i.batch_us > 0 then Fmt.str " batch=%dus/%d" i.batch_us i.batch_max
     else "")
    (if i.disk_rate_pct > 0 then Fmt.str " disk=%d%%" i.disk_rate_pct else "")
    (if i.check_budget > 0 then Fmt.str " budget=%d" i.check_budget else "")
    (if i.unsafe then " UNSAFE" else "")
    (match i.protocol with
    | Chaos.Audit.Gryff_lin | Chaos.Audit.Gryff_rsc ->
      Fmt.str " conflict=%d%% write=%d%%" i.conflict_pct i.write_pct
    | _ -> "")
    tie jitter

let equal a b =
  a.protocol = b.protocol && a.preset = b.preset && a.seed = b.seed
  && a.nemesis_seed = b.nemesis_seed
  && a.duration_ms = b.duration_ms
  && a.n_slots = b.n_slots && a.n_keys = b.n_keys
  && a.timeout_ms = b.timeout_ms
  && a.conflict_pct = b.conflict_pct
  && a.write_pct = b.write_pct && a.batch_us = b.batch_us
  && a.batch_max = b.batch_max
  && a.disk_rate_pct = b.disk_rate_pct
  && a.check_budget = b.check_budget && a.unsafe = b.unsafe
  && Perturb.equal a.perturb b.perturb

type outcome = {
  verdict : Rss_core.Check_online.verdict;
  offline_check : (unit, string) result;
  signature : string;
  trace_digest : string;
  checker_work : int;
  checker_displacement : int;
  run : Chaos.Audit.run;
}

let verdict_string = function
  | Rss_core.Check_online.Pass -> "pass"
  | Rss_core.Check_online.Fail m -> "fail: " ^ m
  | Rss_core.Check_online.Unknown m -> "unknown: " ^ m

let is_fail = function Rss_core.Check_online.Fail _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Oracle: re-judge the audit's collected history with Check_online     *)
(* ------------------------------------------------------------------ *)

let witness_mode = function
  | Chaos.Audit.Spanner_strict | Chaos.Audit.Gryff_lin -> `Strict
  | Chaos.Audit.Spanner_rss | Chaos.Audit.Gryff_rsc -> `Rss

let make_checker ~mode ~check_budget =
  if check_budget > 0 then
    Rss_core.Check_online.create ~work_budget:check_budget
      ~fallback_states:check_budget ~mode ()
  else Rss_core.Check_online.create ~mode ()

(* Same conversion the harness's online arm uses: a Gryff register record
   as a one-op witness transaction, reads ranked above writes at equal
   carstamps. *)
let gryff_witness_txn (r : Gryff.Cluster.record) =
  let key = string_of_int r.Gryff.Cluster.g_key in
  let reads =
    match r.Gryff.Cluster.g_kind with
    | Gryff.Cluster.Read | Gryff.Cluster.Rmw ->
      [ (key, r.Gryff.Cluster.g_observed) ]
    | Gryff.Cluster.Write -> []
  in
  let writes =
    match (r.Gryff.Cluster.g_kind, r.Gryff.Cluster.g_written) with
    | (Gryff.Cluster.Write | Gryff.Cluster.Rmw), Some v -> [ (key, v) ]
    | _ -> []
  in
  {
    Rss_core.Witness.proc = r.Gryff.Cluster.g_proc;
    reads;
    writes;
    inv = r.Gryff.Cluster.g_inv;
    resp = r.Gryff.Cluster.g_resp;
    ts = Gryff.Carstamp.pack r.Gryff.Cluster.g_cs;
    rank = (match r.Gryff.Cluster.g_kind with Gryff.Cluster.Read -> 1 | _ -> 0);
  }

(* Registers are per-key: carstamp order is only meaningful within a key,
   so each key gets its own online checker (mirroring the harness). Keys
   are settled in sorted order so the combined verdict — in particular
   which key a Fail message names — is canonical. *)
let judge ~protocol ~check_budget records =
  let mode = witness_mode protocol in
  match records with
  | Chaos.Audit.Spanner_records arr ->
    let oc = make_checker ~mode ~check_budget in
    Array.iter (Rss_core.Check_online.add oc) arr;
    ( Rss_core.Check_online.result oc,
      Rss_core.Check_online.work oc,
      Rss_core.Check_online.max_displacement oc )
  | Chaos.Audit.Gryff_records arr ->
    let tbl : (int, Rss_core.Check_online.t) Hashtbl.t = Hashtbl.create 64 in
    Array.iter
      (fun (r : Gryff.Cluster.record) ->
        let oc =
          match Hashtbl.find_opt tbl r.Gryff.Cluster.g_key with
          | Some oc -> oc
          | None ->
            let oc = make_checker ~mode ~check_budget in
            Hashtbl.add tbl r.Gryff.Cluster.g_key oc;
            oc
        in
        Rss_core.Check_online.add oc (gryff_witness_txn r))
      arr;
    let keys =
      List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])
    in
    List.fold_left
      (fun (verdict, work, disp) key ->
        let oc = Hashtbl.find tbl key in
        let work = work + Rss_core.Check_online.work oc in
        let disp = max disp (Rss_core.Check_online.max_displacement oc) in
        let verdict =
          match verdict with
          | Rss_core.Check_online.Fail _ -> verdict
          | Rss_core.Check_online.Pass | Rss_core.Check_online.Unknown _ -> (
            match Rss_core.Check_online.result oc with
            | Rss_core.Check_online.Pass -> verdict
            | Rss_core.Check_online.Fail m ->
              Rss_core.Check_online.Fail (Fmt.str "key %d: %s" key m)
            | Rss_core.Check_online.Unknown m -> (
              match verdict with
              | Rss_core.Check_online.Unknown _ -> verdict
              | _ -> Rss_core.Check_online.Unknown (Fmt.str "key %d: %s" key m)
              ))
        in
        (verdict, work, disp))
      (Rss_core.Check_online.Pass, 0, 0)
      keys

(* ------------------------------------------------------------------ *)
(* Coverage signature                                                  *)
(* ------------------------------------------------------------------ *)

(* Log2 buckets: 0, 1, 2-3, 4-7, ... Counters only need to land in the
   same bucket to count as "the same behaviour"; the signature is the
   dedup key of the search's coverage map. *)
let bucket v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and v = ref v in
    while !v > 0 do
      incr b;
      v := !v lsr 1
    done;
    !b
  end

let signature_of_run ~displacement (r : Chaos.Audit.run) =
  let b = bucket in
  Fmt.str "v%d c%d p%d l%d d%d y%d q%d m%d r%d t%d u%d s%d w%d"
    (b r.Chaos.Audit.view_changes)
    (b r.Chaos.Audit.dropped_crash)
    (b r.Chaos.Audit.dropped_partition)
    (b r.Chaos.Audit.dropped_loss)
    (b r.Chaos.Audit.duplicated)
    (b r.Chaos.Audit.delayed)
    (b r.Chaos.Audit.in_doubt_resolved)
    (b (r.Chaos.Audit.migrations + r.Chaos.Audit.migration_retries))
    (b r.Chaos.Audit.redirects)
    (b r.Chaos.Audit.ops_timed_out)
    (b r.Chaos.Audit.unacked_commits)
    (b (r.Chaos.Audit.disk_crashes + r.Chaos.Audit.scrub_flagged))
    (b displacement)

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let scale_spec pct (s : Sim.Durable.Faults.spec) =
  let r = float_of_int pct /. 100.0 in
  let p x = min 1.0 (x *. r) in
  {
    s with
    Sim.Durable.Faults.tear_prob = p s.Sim.Durable.Faults.tear_prob;
    corrupt_prob = p s.Sim.Durable.Faults.corrupt_prob;
    stale_prob = p s.Sim.Durable.Faults.stale_prob;
    lost_int_prob = p s.Sim.Durable.Faults.lost_int_prob;
  }

let run i =
  (match validate i with
  | Ok () -> ()
  | Error m -> invalid_arg ("Explore.Exec.run: " ^ m));
  let duration_s = float_of_int i.duration_ms /. 1_000.0 in
  let schedule =
    Chaos.Audit.nemesis_schedule i.protocol i.preset ~duration_s
      ~seed:i.nemesis_seed
  in
  let failover = Chaos.Nemesis.requires_failover i.preset in
  let n_migrations =
    match i.protocol with
    | Chaos.Audit.Spanner_strict | Chaos.Audit.Spanner_rss ->
      if Chaos.Nemesis.requires_reshard i.preset then 2 else 0
    | _ -> 0
  in
  let disk_faults =
    if i.disk_rate_pct = 0 then None
    else
      let base =
        match Chaos.Nemesis.disk_spec i.preset with
        | Some s -> s
        | None -> Sim.Durable.Faults.default_spec
      in
      Some
        (Chaos.Audit.default_disk_faults
           ~spec:(scale_spec i.disk_rate_pct base)
           ~seed:i.nemesis_seed ())
  in
  let prepare engine net =
    Perturb.install i.perturb ~engine ~net;
    if i.batch_us > 0 then
      Sim.Net.set_batching net
        (Some
           {
             Sim.Net.batch_us = i.batch_us;
             batch_max = i.batch_max;
             adaptive = false;
           })
  in
  let conflict = float_of_int i.conflict_pct /. 100.0 in
  let write_ratio = float_of_int i.write_pct /. 100.0 in
  let run =
    Chaos.Audit.run i.protocol ~prepare ~schedule ?disk_faults
      ~n_slots:i.n_slots ~n_keys:i.n_keys ~timeout_us:(i.timeout_ms * 1_000)
      ~conflict ~write_ratio ~unsafe_no_deps:i.unsafe ~failover ~n_migrations
      ~duration_s ~seed:i.seed ()
  in
  let verdict, work, displacement =
    judge ~protocol:i.protocol ~check_budget:i.check_budget
      run.Chaos.Audit.records
  in
  let signature =
    (* Protocol and preset belong in the dedup key — the same counter
       buckets under a different fault mix are a different behaviour. *)
    let v =
      match verdict with
      | Rss_core.Check_online.Pass -> "P"
      | Rss_core.Check_online.Fail _ -> "F"
      | Rss_core.Check_online.Unknown _ -> "U"
    in
    Fmt.str "%s|%s|%s|%s"
      (Chaos.Audit.protocol_name i.protocol)
      (Chaos.Nemesis.preset_name i.preset)
      (signature_of_run ~displacement run)
      v
  in
  {
    verdict;
    offline_check = run.Chaos.Audit.check;
    signature;
    trace_digest = Digest.to_hex (Digest.string run.Chaos.Audit.trace);
    checker_work = work;
    checker_displacement = displacement;
    run;
  }
