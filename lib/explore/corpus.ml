let version = "rss-explore/corpus/v1"

type entry = { input : Exec.input; expected : string }

let to_string e =
  let i = e.input in
  let tie, jitter = Perturb.to_string i.Exec.perturb in
  let buf = Buffer.create 512 in
  let line k v = Buffer.add_string buf (k ^ " " ^ v ^ "\n") in
  Buffer.add_string buf (version ^ "\n");
  line "protocol" (Chaos.Audit.protocol_name i.Exec.protocol);
  line "preset" (Chaos.Nemesis.preset_name i.Exec.preset);
  line "seed" (string_of_int i.Exec.seed);
  line "nemesis_seed" (string_of_int i.Exec.nemesis_seed);
  line "duration_ms" (string_of_int i.Exec.duration_ms);
  line "slots" (string_of_int i.Exec.n_slots);
  line "keys" (string_of_int i.Exec.n_keys);
  line "timeout_ms" (string_of_int i.Exec.timeout_ms);
  line "conflict_pct" (string_of_int i.Exec.conflict_pct);
  line "write_pct" (string_of_int i.Exec.write_pct);
  line "batch_us" (string_of_int i.Exec.batch_us);
  line "batch_max" (string_of_int i.Exec.batch_max);
  line "disk_rate_pct" (string_of_int i.Exec.disk_rate_pct);
  line "check_budget" (string_of_int i.Exec.check_budget);
  line "unsafe" (string_of_bool i.Exec.unsafe);
  line "tie" tie;
  line "jitter" jitter;
  line "expected" e.expected;
  Buffer.contents buf

let of_string s =
  let ( let* ) = Result.bind in
  match String.split_on_char '\n' s with
  | [] -> Error "empty corpus file"
  | header :: rest ->
    if not (String.equal (String.trim header) version) then
      Error (Fmt.str "bad corpus header %S (want %S)" (String.trim header) version)
    else begin
      let fields = Hashtbl.create 32 in
      List.iter
        (fun line ->
          let line = String.trim line in
          if String.length line > 0 then
            match String.index_opt line ' ' with
            | Some i ->
              Hashtbl.replace fields
                (String.sub line 0 i)
                (String.sub line (i + 1) (String.length line - i - 1))
            | None -> Hashtbl.replace fields line "")
        rest;
      let field k =
        match Hashtbl.find_opt fields k with
        | Some v -> Ok v
        | None -> Error (Fmt.str "corpus file missing field %S" k)
      in
      let int_field k =
        let* v = field k in
        match int_of_string_opt v with
        | Some n -> Ok n
        | None -> Error (Fmt.str "corpus field %s: bad integer %S" k v)
      in
      let* proto_s = field "protocol" in
      let* protocol =
        match Chaos.Audit.protocol_of_string proto_s with
        | Some p -> Ok p
        | None -> Error (Fmt.str "unknown protocol %S" proto_s)
      in
      let* preset_s = field "preset" in
      let* preset =
        match Chaos.Nemesis.preset_of_string preset_s with
        | Some p -> Ok p
        | None -> Error (Fmt.str "unknown preset %S" preset_s)
      in
      let* seed = int_field "seed" in
      let* nemesis_seed = int_field "nemesis_seed" in
      let* duration_ms = int_field "duration_ms" in
      let* n_slots = int_field "slots" in
      let* n_keys = int_field "keys" in
      let* timeout_ms = int_field "timeout_ms" in
      let* conflict_pct = int_field "conflict_pct" in
      let* write_pct = int_field "write_pct" in
      let* batch_us = int_field "batch_us" in
      let* batch_max = int_field "batch_max" in
      let* disk_rate_pct = int_field "disk_rate_pct" in
      let* check_budget = int_field "check_budget" in
      let* unsafe_s = field "unsafe" in
      let* unsafe =
        match bool_of_string_opt unsafe_s with
        | Some b -> Ok b
        | None -> Error (Fmt.str "corpus field unsafe: bad bool %S" unsafe_s)
      in
      let* tie = field "tie" in
      let* jitter = field "jitter" in
      let* perturb = Perturb.of_string ~tie ~jitter in
      let* expected = field "expected" in
      let input =
        {
          Exec.protocol;
          preset;
          seed;
          nemesis_seed;
          duration_ms;
          n_slots;
          n_keys;
          timeout_ms;
          conflict_pct;
          write_pct;
          batch_us;
          batch_max;
          disk_rate_pct;
          check_budget;
          unsafe;
          perturb;
        }
      in
      let* () = Exec.validate input in
      Ok { input; expected }
    end

let rec mkdir_p dir =
  if
    String.length dir > 0
    && (not (String.equal dir "/"))
    && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

let save path e =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  output_string oc (to_string e)

let load path =
  match
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
    really_input_string ic (in_channel_length ic)
  with
  | s -> of_string s
  | exception Sys_error m -> Error m

let file_name e =
  let digest =
    String.sub (Digest.to_hex (Digest.string (to_string e))) 0 8
  in
  Fmt.str "%s-%s-%s.corpus"
    (Chaos.Audit.protocol_name e.input.Exec.protocol)
    (Chaos.Nemesis.preset_name e.input.Exec.preset)
    digest

type replay = { entry : entry; outcome : Exec.outcome; matches : bool }

let replay entry =
  let outcome = Exec.run entry.input in
  let matches =
    String.equal (Exec.verdict_string outcome.Exec.verdict) entry.expected
  in
  { entry; outcome; matches }

let replay_file path = Result.map replay (load path)
