(** One schedule-explorer trial: a fully-specified, replayable execution.

    An {!input} pins everything a run depends on — protocol, nemesis
    preset, both seeds, workload shape, Env-style knobs (batching, disk
    fault rate, online-checker budget), the seeded-bug control toggle and
    the {!Perturb} vectors — as plain integers/strings so it serializes
    to a corpus line set and shrinks by simple arithmetic. {!run} builds
    the cluster through {!Chaos.Audit}, installs the perturbation via the
    audit's [prepare] hook, re-judges the collected history with
    {!Rss_core.Check_online} (the oracle verdict), and condenses the
    run's behaviour into a coverage {!signature}. Same input, same
    binary → byte-identical outcome. *)

type input = {
  protocol : Chaos.Audit.protocol;
  preset : Chaos.Nemesis.preset;
  seed : int;  (** workload/cluster stream *)
  nemesis_seed : int;  (** fault-schedule stream *)
  duration_ms : int;
  n_slots : int;  (** concurrent client-session slots — the op-count knob *)
  n_keys : int;
  timeout_ms : int;  (** per-op abandon threshold *)
  conflict_pct : int;  (** Gryff hot-key share, percent *)
  write_pct : int;  (** Gryff write ratio, percent *)
  batch_us : int;  (** batching flush deadline; 0 = batching off *)
  batch_max : int;  (** batching size cap; meaningful when [batch_us > 0] *)
  disk_rate_pct : int;  (** disk-fault probability scale, percent; 0 = off *)
  check_budget : int;
      (** {!Rss_core.Check_online} work budget; 0 = unlimited. Small
          budgets force [Unknown] verdicts — the corpus round-trip for
          the checker's degraded path. *)
  unsafe : bool;  (** seeded-bug control: Gryff client with the RSC
                      dependency fence disabled *)
  perturb : Perturb.t;
}

val base : Chaos.Audit.protocol -> input
(** A deliberately contentious baseline for [protocol]: small hot
    keyspace, short run, no perturbation, all knobs off. The search
    mutates outward from here. *)

val validate : input -> (unit, string) result
(** Bounds-check every field (positive durations/slots, percentages in
    range, batching sanity) — corpus files pass through this on load. *)

val describe : input -> string
(** One-line human summary: protocol, preset, seeds, size knobs. *)

val equal : input -> input -> bool

type outcome = {
  verdict : Rss_core.Check_online.verdict;
      (** the oracle: the history re-judged by the online checker *)
  offline_check : (unit, string) result;
      (** the audit's own offline verdict, kept as a cross-check *)
  signature : string;
      (** coverage signature — bucketized behaviour counters; two runs
          with the same signature explored the same region *)
  trace_digest : string;  (** MD5 of the canonical history serialization *)
  checker_work : int;
  checker_displacement : int;  (** feeds the signature *)
  run : Chaos.Audit.run;  (** full counters for reporting *)
}

val run : input -> outcome
(** Execute the trial. Deterministic: a pure function of [input]. *)

val verdict_string : Rss_core.Check_online.verdict -> string
(** Canonical wire form ["pass"], ["fail: m"], ["unknown: m"] — what
    corpus replay compares byte-for-byte. *)

val is_fail : Rss_core.Check_online.verdict -> bool
