(** Replayable counterexample corpus files.

    A corpus file is the serialized form of one shrunk {!Exec.input} plus
    the verdict it produced — a line-oriented [key value] text format
    under the version header ["rss-explore/corpus/v1"]. Replaying a file
    re-executes its input and compares {!Exec.verdict_string} against the
    stored expectation byte-for-byte; because every execution is a pure
    function of its input, a corpus checked in once keeps reproducing the
    same violation (or the same [Unknown]) on every machine. *)

val version : string

type entry = {
  input : Exec.input;
  expected : string;  (** {!Exec.verdict_string} of the recorded verdict *)
}

val to_string : entry -> string
val of_string : string -> (entry, string) result

val save : string -> entry -> unit
(** Write to a path, creating parent directories as needed. *)

val load : string -> (entry, string) result

val file_name : entry -> string
(** Canonical file name: [<protocol>-<preset>-<digest8>.corpus], the
    digest taken over the serialized input so distinct repros never
    collide. *)

type replay = {
  entry : entry;
  outcome : Exec.outcome;
  matches : bool;  (** replayed verdict = stored verdict, byte-for-byte *)
}

val replay : entry -> replay

val replay_file : string -> (replay, string) result
