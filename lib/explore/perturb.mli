(** Seeded schedule perturbation vectors.

    A perturbation is a pair of finite integer vectors applied to a run's
    message deliveries, in delivery-scheduling order:

    - [tie]: same-timestamp tie-break priorities. The [i]-th scheduled
      network delivery gets priority [tie.(i mod length)] (0 when the
      vector is empty), and {!Sim.Engine} orders same-instant events by
      (priority, FIFO) instead of pure FIFO. This permutes genuine message
      races — events at the same microsecond — without moving any event in
      time.
    - [jitter_us]: bounded extra one-way delays. The [i]-th sampled
      delivery delay is stretched by [jitter_us.(i mod length)]
      microseconds (clamped to [\[0, max_jitter_us\]]).

    Only the ["net.deliver"] event class is perturbed: message arrival
    order is the nondeterminism a real network exhibits, so permuting it
    can only surface real protocol races — local timers and fault
    injections keep their exact schedule, which keeps the consistency
    oracle sound.

    {!none} (and any all-zero vector) is byte-identical to an unperturbed
    run: priorities are all 0, stretches all 0, and neither hook draws
    from any RNG stream. Both vectors are cycled with private counters set
    up fresh at {!install}, so replaying the same vectors over the same
    seeds reproduces the exact schedule. *)

type t = {
  tie : int array;  (** cyclic same-timestamp priorities, clamped to ±{!max_tie} *)
  jitter_us : int array;  (** cyclic delay stretches, clamped to [0, {!max_jitter_us}] *)
}

val none : t
(** Both vectors empty: installing it is a no-op. *)

val max_tie : int
(** Priority magnitude bound (64). *)

val max_jitter_us : int
(** Per-delivery stretch bound (75 000 µs — wide enough to cover the
    wan5 matrix's one-way inter-site latency spread, so a stretched
    delivery can change which replicas form a read quorum, not merely
    reorder same-link messages). *)

val is_none : t -> bool
(** True when both vectors are empty or all-zero — i.e. installing this
    perturbation cannot change any schedule. *)

val equal : t -> t -> bool

val normalize : t -> t
(** Clamp entries to the bounds and drop trailing zeros; an all-zero
    vector normalizes to empty. [is_none (normalize p)] iff installing
    [p] is a no-op. *)

val install : t -> engine:Sim.Engine.t -> net:Sim.Net.t -> unit
(** Arm both hooks with fresh cycle counters. Installing {!none} still
    registers the hooks (priority 0 / stretch 0 for every delivery),
    which must be — and is tested to be — byte-identical to never
    installing them. *)

val to_string : t -> string * string
(** [(tie, jitter)] as comma-separated decimal lists, ["-"] for empty —
    the corpus-file wire form. *)

val of_string : tie:string -> jitter:string -> (t, string) result
