type t = { tie : int array; jitter_us : int array }

let none = { tie = [||]; jitter_us = [||] }

let max_tie = 64

(* Wide enough to reorder quorum replies across WAN sites (one-way
   inter-site deltas in the wan5 matrix run 25-75 ms): a jitter cap
   below the latency spread can only reorder same-link deliveries, never
   change which replicas form a read quorum. *)
let max_jitter_us = 75_000

let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

let is_none p =
  Array.for_all (fun v -> v = 0) p.tie
  && Array.for_all (fun v -> v = 0) p.jitter_us

let equal a b = a.tie = b.tie && a.jitter_us = b.jitter_us

let trim_zeros a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let normalize p =
  {
    tie = trim_zeros (Array.map (clamp (-max_tie) max_tie) p.tie);
    jitter_us = trim_zeros (Array.map (clamp 0 max_jitter_us) p.jitter_us);
  }

let install p ~engine ~net =
  (* Fresh counters per install: the vectors are consulted in
     delivery-scheduling order starting from index 0, so the same input
     always sees the same per-delivery perturbation. *)
  let tie = Array.map (clamp (-max_tie) max_tie) p.tie in
  let jit = Array.map (clamp 0 max_jitter_us) p.jitter_us in
  let ti = ref 0 and ji = ref 0 in
  Sim.Engine.set_tie_perturb engine
    (Some
       (fun kind ->
         if String.equal kind "net.deliver" && Array.length tie > 0 then begin
           let v = tie.(!ti mod Array.length tie) in
           incr ti;
           v
         end
         else 0));
  Sim.Net.set_delay_perturb net
    (Some
       (fun () ->
         if Array.length jit = 0 then 0
         else begin
           let v = jit.(!ji mod Array.length jit) in
           incr ji;
           v
         end))

let vec_to_string a =
  if Array.length a = 0 then "-"
  else String.concat "," (Array.to_list (Array.map string_of_int a))

let to_string p = (vec_to_string p.tie, vec_to_string p.jitter_us)

let vec_of_string s =
  if String.equal s "-" then Ok [||]
  else
    try
      Ok
        (Array.of_list
           (List.map int_of_string (String.split_on_char ',' (String.trim s))))
    with _ -> Error (Fmt.str "bad perturbation vector %S" s)

let of_string ~tie ~jitter =
  match (vec_of_string tie, vec_of_string jitter) with
  | Ok t, Ok j -> Ok { tie = t; jitter_us = j }
  | Error e, _ | _, Error e -> Error e
