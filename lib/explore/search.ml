type config = {
  protocols : Chaos.Audit.protocol list;
  presets : Chaos.Nemesis.preset list;
  budget : int;
  search_seed : int;
  base : Chaos.Audit.protocol -> Exec.input;
  shrink : bool;
  shrink_budget : int;
  max_failures : int;
  corpus_dir : string option;
  tracer : Obs.Trace.t;
  metrics : Obs.Metrics.t option;
}

let default_config () =
  {
    protocols = Chaos.Audit.protocols;
    presets =
      [
        Chaos.Nemesis.Partition_heal;
        Chaos.Nemesis.Link_loss;
        Chaos.Nemesis.Reorder_storm;
        Chaos.Nemesis.Leader_kill;
        Chaos.Nemesis.Mixed;
      ];
    budget = 200;
    search_seed = 1;
    base = Exec.base;
    shrink = true;
    shrink_budget = 60;
    max_failures = 3;
    corpus_dir = None;
    tracer = Obs.Trace.disabled;
    metrics = None;
  }

type failure = {
  input : Exec.input;
  verdict : string;
  shrunk : Exec.input;
  shrunk_verdict : string;
  shrink_execs : int;
  found_at : int;
  corpus_file : string option;
}

type result = {
  execs : int;
  signatures : int;
  novel : int;
  failures : failure list;
  unknowns : int;
}

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

let nonzeros a = Array.fold_left (fun n v -> if v = 0 then n else n + 1) 0 a

(* Strictly decreasing across every accepted shrink step: halving the
   duration or slot count dominates, zeroing a perturbation entry or
   trimming the vector always helps, switching a knob off always helps. *)
let cost (i : Exec.input) =
  (i.Exec.duration_ms * 16)
  + (i.Exec.n_slots * 1_000)
  + (100 * (nonzeros i.Exec.perturb.Perturb.tie
            + nonzeros i.Exec.perturb.Perturb.jitter_us))
  + (20 * (Array.length i.Exec.perturb.Perturb.tie
           + Array.length i.Exec.perturb.Perturb.jitter_us))
  + (if i.Exec.batch_us > 0 then 400 else 0)
  + (if i.Exec.disk_rate_pct > 0 then 400 else 0)
  + if i.Exec.check_budget > 0 then 50 else 0

let min_duration_ms = 400

exception Budget_exhausted

(* Greedy delta-debugging toward a cost fixpoint: a candidate replaces the
   current repro iff it is strictly cheaper AND still fails (any [Fail] —
   the message may legitimately drift as the history shrinks, the corpus
   stores whatever the minimum produces). [try_exec] returns [None] when
   the caller's budget is gone. *)
let shrink_with ~try_exec input verdict0 =
  let current = ref input and cur_verdict = ref verdict0 in
  let attempt candidate =
    if Exec.equal candidate !current || cost candidate >= cost !current then
      false
    else
      match try_exec candidate with
      | None -> raise Budget_exhausted
      | Some out ->
        if Exec.is_fail out.Exec.verdict then begin
          current := candidate;
          cur_verdict := Exec.verdict_string out.Exec.verdict;
          true
        end
        else false
  in
  (* ddmin over one perturbation vector: zero ever-smaller chunks, keeping
     each zeroing that still fails. The final normalize — trimming the
     all-zero tail — is re-verified like any other candidate, because the
     vectors cycle: truncation changes which entry delivery [i] sees. *)
  let ddmin_vector get set =
    let chunk = ref (max 1 (Array.length (get !current) / 2)) in
    while !chunk >= 1 do
      let i = ref 0 in
      while !i < Array.length (get !current) do
        let arr = get !current in
        let hi = min (Array.length arr) (!i + !chunk) in
        let has_nonzero = ref false in
        for j = !i to hi - 1 do
          if arr.(j) <> 0 then has_nonzero := true
        done;
        if !has_nonzero then begin
          let zeroed = Array.copy arr in
          for j = !i to hi - 1 do
            zeroed.(j) <- 0
          done;
          ignore (attempt (set !current zeroed))
        end;
        i := !i + !chunk
      done;
      chunk := if !chunk = 1 then 0 else !chunk / 2
    done;
    ignore
      (attempt
         { !current with
           Exec.perturb = Perturb.normalize !current.Exec.perturb })
  in
  let ddmin_tie () =
    ddmin_vector
      (fun i -> i.Exec.perturb.Perturb.tie)
      (fun i tie ->
        { i with Exec.perturb = { i.Exec.perturb with Perturb.tie } })
  in
  let ddmin_jitter () =
    ddmin_vector
      (fun i -> i.Exec.perturb.Perturb.jitter_us)
      (fun i jitter_us ->
        { i with Exec.perturb = { i.Exec.perturb with Perturb.jitter_us } })
  in
  (try
     let progress = ref true in
     while !progress do
       progress := false;
       (* Duration and slot count first — they dominate replay cost. *)
       while
         !current.Exec.duration_ms > min_duration_ms
         && attempt
              { !current with
                Exec.duration_ms =
                  max min_duration_ms (!current.Exec.duration_ms / 2) }
       do
         progress := true
       done;
       while
         !current.Exec.n_slots > 1
         && attempt
              { !current with Exec.n_slots = max 1 (!current.Exec.n_slots / 2) }
       do
         progress := true
       done;
       (* Knobs that are off in the minimal repro are noise. *)
       if !current.Exec.batch_us > 0 && attempt { !current with Exec.batch_us = 0 }
       then progress := true;
       if
         !current.Exec.disk_rate_pct > 0
         && attempt { !current with Exec.disk_rate_pct = 0 }
       then progress := true;
       if
         !current.Exec.check_budget > 0
         && attempt { !current with Exec.check_budget = 0 }
       then progress := true;
       let before = cost !current in
       ddmin_tie ();
       ddmin_jitter ();
       if cost !current < before then progress := true
     done
   with Budget_exhausted -> ());
  (!current, !cur_verdict)

let shrink ~budget input verdict0 =
  let spent = ref 0 in
  let try_exec i =
    if !spent >= budget then None
    else begin
      incr spent;
      Some (Exec.run i)
    end
  in
  let shrunk, verdict = shrink_with ~try_exec input verdict0 in
  (shrunk, verdict, !spent)

(* ------------------------------------------------------------------ *)
(* Mutation                                                            *)
(* ------------------------------------------------------------------ *)

let is_gryff = function
  | Chaos.Audit.Gryff_lin | Chaos.Audit.Gryff_rsc -> true
  | _ -> false

let pick rng l = List.nth l (Sim.Rng.int rng (List.length l))

let mutate_vector rng arr ~len_cap ~value =
  let arr =
    if Array.length arr = 0 || Sim.Rng.bool rng 0.3 then begin
      (* Grow: fresh vector of a random length, old prefix preserved. *)
      let n = 1 + Sim.Rng.int rng len_cap in
      Array.init n (fun i -> if i < Array.length arr then arr.(i) else 0)
    end
    else Array.copy arr
  in
  let n_hits = 1 + Sim.Rng.int rng 3 in
  for _ = 1 to n_hits do
    arr.(Sim.Rng.int rng (Array.length arr)) <- value ()
  done;
  arr

let mutate rng (cfg : config) (i : Exec.input) =
  let i = ref i in
  let n_ops = 1 + Sim.Rng.int rng 2 in
  for _ = 1 to n_ops do
    match Sim.Rng.int rng 10 with
    | 0 -> i := { !i with Exec.seed = 1 + Sim.Rng.int rng 1_000_000 }
    | 1 -> i := { !i with Exec.nemesis_seed = 1 + Sim.Rng.int rng 1_000_000 }
    | 2 -> i := { !i with Exec.preset = pick rng cfg.presets }
    | 3 ->
      let tie =
        mutate_vector rng !i.Exec.perturb.Perturb.tie ~len_cap:32 ~value:(fun () ->
            Sim.Rng.int rng (2 * Perturb.max_tie + 1) - Perturb.max_tie)
      in
      i := { !i with Exec.perturb = { !i.Exec.perturb with Perturb.tie } }
    | 4 ->
      let jitter_us =
        mutate_vector rng !i.Exec.perturb.Perturb.jitter_us ~len_cap:32
          ~value:(fun () -> Sim.Rng.int rng (Perturb.max_jitter_us + 1))
      in
      i := { !i with Exec.perturb = { !i.Exec.perturb with Perturb.jitter_us } }
    | 5 ->
      let batch_us = pick rng [ 0; 0; 50; 200; 1_000 ] in
      let batch_max = pick rng [ 4; 16; 32 ] in
      i := { !i with Exec.batch_us; batch_max }
    | 6 ->
      (* Gryff keeps no durable stores; disk faults only bite Spanner. *)
      if not (is_gryff !i.Exec.protocol) then
        i := { !i with Exec.disk_rate_pct = pick rng [ 0; 50; 100; 200 ] }
    | 7 -> i := { !i with Exec.n_slots = 1 + Sim.Rng.int rng 16 }
    | 8 ->
      let n_keys =
        if is_gryff !i.Exec.protocol then pick rng [ 2; 4; 8; 16 ]
        else pick rng [ 16; 64; 256 ]
      in
      i := { !i with Exec.n_keys }
    | _ ->
      if is_gryff !i.Exec.protocol then
        i :=
          { !i with
            Exec.conflict_pct = pick rng [ 20; 50; 80; 100 ];
            write_pct = pick rng [ 20; 40; 60 ] }
  done;
  !i

(* ------------------------------------------------------------------ *)
(* The search loop                                                     *)
(* ------------------------------------------------------------------ *)

type entry = { e_input : Exec.input; mutable e_energy : int }

let fresh_energy = 8

let run (cfg : config) =
  if cfg.budget <= 0 then invalid_arg "Explore.Search.run: budget must be positive";
  if cfg.protocols = [] then invalid_arg "Explore.Search.run: no protocols";
  if cfg.presets = [] then invalid_arg "Explore.Search.run: no presets";
  let rng = Sim.Rng.make cfg.search_seed in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let execs = ref 0 and novel = ref 0 and unknowns = ref 0 in
  let failures = ref [] and n_failures = ref 0 in
  let queue : entry list ref = ref [] in
  let counter name =
    match cfg.metrics with
    | None -> None
    | Some reg -> Some (Obs.Metrics.counter reg name)
  in
  let c_execs = counter "explore.execs"
  and c_novel = counter "explore.novel"
  and c_fails = counter "explore.fails"
  and c_unknowns = counter "explore.unknowns"
  and c_shrink = counter "explore.shrink_execs"
  and c_corpus = counter "explore.corpus_saved" in
  let bump c n = Option.iter (fun c -> Obs.Metrics.add c n) c in
  (* Search spans live on a virtual timeline stitched from the trials'
     simulated durations, so the exported trace shows the search as one
     lane of back-to-back executions. *)
  let trace_clock = ref 0 in
  let exec_one input =
    if !execs >= cfg.budget then None
    else begin
      incr execs;
      bump c_execs 1;
      let out = Exec.run input in
      if Obs.Trace.enabled cfg.tracer then begin
        let name =
          Fmt.str "explore %s/%s #%d"
            (Chaos.Audit.protocol_name input.Exec.protocol)
            (Chaos.Nemesis.preset_name input.Exec.preset)
            !execs
        in
        let sp =
          Obs.Trace.begin_span cfg.tracer ~kind:Obs.Trace.Search ~name
            ~ts:!trace_clock
        in
        trace_clock := !trace_clock + max 1 out.Exec.run.Chaos.Audit.duration_us;
        Obs.Trace.end_span cfg.tracer sp ~ts:!trace_clock
      end;
      (match out.Exec.verdict with
      | Rss_core.Check_online.Unknown _ ->
        incr unknowns;
        bump c_unknowns 1
      | _ -> ());
      Some out
    end
  in
  let note_signature input out =
    if not (Hashtbl.mem seen out.Exec.signature) then begin
      Hashtbl.add seen out.Exec.signature ();
      incr novel;
      bump c_novel 1;
      queue := !queue @ [ { e_input = input; e_energy = fresh_energy } ]
    end
  in
  let handle_fail ~found_at input out =
    bump c_fails 1;
    let verdict = Exec.verdict_string out.Exec.verdict in
    let shrunk, shrunk_verdict, shrink_execs =
      if not cfg.shrink then (input, verdict, 0)
      else begin
        (* Per-failure ceiling on top of the global budget: a stubborn
           minimization cannot starve the rest of the search. *)
        let spent = ref 0 in
        let try_exec i =
          if !spent >= cfg.shrink_budget then None
          else
            match exec_one i with
            | None -> None
            | Some o ->
              incr spent;
              bump c_shrink 1;
              Some o
        in
        let s, v = shrink_with ~try_exec input verdict in
        (s, v, !spent)
      end
    in
    let corpus_file =
      match cfg.corpus_dir with
      | None -> None
      | Some dir ->
        let entry = { Corpus.input = shrunk; expected = shrunk_verdict } in
        let path = Filename.concat dir (Corpus.file_name entry) in
        Corpus.save path entry;
        bump c_corpus 1;
        Some path
    in
    incr n_failures;
    failures :=
      { input; verdict; shrunk; shrunk_verdict; shrink_execs; found_at;
        corpus_file }
      :: !failures
  in
  let consider input =
    match exec_one input with
    | None -> false
    | Some out ->
      note_signature input out;
      if Exec.is_fail out.Exec.verdict then
        handle_fail ~found_at:!execs input out;
      true
  in
  (* Seed phase: one unperturbed trial per protocol × preset. *)
  let continue = ref true in
  List.iter
    (fun protocol ->
      List.iter
        (fun preset ->
          if
            !continue && !n_failures < cfg.max_failures
            && not (consider { (cfg.base protocol) with Exec.preset })
          then continue := false)
        cfg.presets)
    cfg.protocols;
  (* Mutation rounds: round-robin over queue entries with energy left; a
     dry lap (every entry at zero) refunds one unit each so the search
     keeps moving until the budget is gone. *)
  while !continue && !execs < cfg.budget && !n_failures < cfg.max_failures do
    let live = List.filter (fun e -> e.e_energy > 0) !queue in
    let pool =
      if live <> [] then live
      else begin
        List.iter (fun e -> e.e_energy <- 1) !queue;
        !queue
      end
    in
    match pool with
    | [] -> continue := false
    | _ ->
      let e = List.nth pool (Sim.Rng.int rng (List.length pool)) in
      e.e_energy <- e.e_energy - 1;
      if not (consider (mutate rng cfg e.e_input)) then continue := false
  done;
  {
    execs = !execs;
    signatures = Hashtbl.length seen;
    novel = !novel;
    failures = List.rev !failures;
    unknowns = !unknowns;
  }
