type t = Store.t

type session = Store.session

let create engine ~rng ?base_latency_us ?max_staleness_us () =
  Store.create engine ~rng ?base_latency_us ?max_staleness_us ()

let session t = Store.session t

let read s ~key k =
  Store.ro s ~keys:[ key ] (fun values ->
      match values with
      | [ (_, v) ] -> k v
      | _ -> invalid_arg "Registers.read: unexpected shape")

let write s ~key ~value k = Store.rw s ~reads:[] ~writes:[ (key, value) ] (fun _ -> k ())

let history t =
  let records = Store.records t in
  let ops =
    Array.to_list records
    |> List.mapi (fun i (r : Rss_core.Witness.txn) ->
           let resp = if r.Rss_core.Witness.resp = max_int then None else Some r.Rss_core.Witness.resp in
           match (r.Rss_core.Witness.reads, r.Rss_core.Witness.writes) with
           | [], [ (key, v) ] ->
             Rss_core.History.write ~id:i ~proc:r.Rss_core.Witness.proc ~key
               ~value:v ~inv:r.Rss_core.Witness.inv ?resp ()
           | [ (key, v) ], [] ->
             Rss_core.History.read ~id:i ~proc:r.Rss_core.Witness.proc ~key
               ?value:v ~inv:r.Rss_core.Witness.inv ?resp ()
           | _ ->
             invalid_arg "Registers.history: multi-key operation in register run")
  in
  Rss_core.History.make ops
