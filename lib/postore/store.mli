(** A process-ordered (PO) serializable transactional store (§2.5) — the
    "too weak" point of the paper's comparison.

    Transactions execute in one global total order (so I1-style
    single-service invariants hold), and each session reads a monotonically
    advancing prefix that always contains its own transactions (process
    order). But a session's read snapshot may lag real time by up to
    [max_staleness_us], and nothing carries causality across services or
    out-of-band messages — exactly the behaviour that breaks I2 and exposes
    anomalies A2/A3.

    This is the idealized one-round, non-blocking design that PO
    serializability permits (the SNOW-optimal read-only transactions the
    paper cites): reads always complete in [base_latency_us]. *)

type t

type key = string
type value = int

val create :
  Sim.Engine.t -> rng:Sim.Rng.t -> ?base_latency_us:int -> ?max_staleness_us:int ->
  unit -> t
(** Defaults: 1 ms base latency, 100 ms staleness bound. *)

type session

val session : t -> session
val proc : session -> int

val rw :
  session -> reads:key list -> writes:(key * value) list ->
  ((key * value option) list -> unit) -> unit
(** Read-write transactions serialize at the log head (they read the latest
    state) and advance the session's prefix. *)

val ro : session -> keys:key list -> ((key * value option) list -> unit) -> unit
(** Reads a possibly stale prefix, never older than the session has already
    observed. *)

val records : t -> Rss_core.Witness.txn array
(** History with witness timestamps = log positions. *)

val check_history : t -> (unit, string) result
(** Verifies PO serializability ([`Sequential] witness mode). *)
