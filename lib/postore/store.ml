type key = string
type value = int

type version = { v_idx : int; v_value : value }

type t = {
  engine : Sim.Engine.t;
  rng : Sim.Rng.t;
  base_latency_us : int;
  max_staleness_us : int;
  versions : (key, version list) Hashtbl.t;  (* newest first *)
  mutable log_len : int;
  mutable commit_times : (int * int) list;  (* (log idx, real time), newest first *)
  mutable next_proc : int;
  mutable record_list : Rss_core.Witness.txn list;
}

type session = { store : t; s_proc : int; mutable seen : int }

let create engine ~rng ?(base_latency_us = 1_000) ?(max_staleness_us = 100_000) () =
  {
    engine;
    rng;
    base_latency_us;
    max_staleness_us;
    versions = Hashtbl.create 1024;
    log_len = 0;
    commit_times = [];
    next_proc = 0;
    record_list = [];
  }

let session store =
  let s = { store; s_proc = store.next_proc; seen = -1 } in
  store.next_proc <- store.next_proc + 1;
  s

let proc s = s.s_proc

let read_at t key idx =
  match Hashtbl.find_opt t.versions key with
  | None -> None
  | Some vs ->
    List.find_opt (fun v -> v.v_idx <= idx) vs
    |> Option.map (fun v -> v.v_value)

let record t ~proc ~reads ~writes ~inv ~ts =
  t.record_list <-
    {
      Rss_core.Witness.proc;
      reads;
      writes;
      inv;
      resp = Sim.Engine.now t.engine;
      ts;
      rank = Rss_core.Witness.mutator_rank ~writes;
    }
    :: t.record_list

let rw s ~reads ~writes k =
  let t = s.store in
  let inv = Sim.Engine.now t.engine in
  Sim.Engine.schedule t.engine ~after:t.base_latency_us (fun () ->
      (* Serialize at the head: read latest state, append the writes. *)
      let idx = t.log_len in
      let observed = List.map (fun key -> (key, read_at t key (idx - 1))) reads in
      List.iter
        (fun (key, v) ->
          let prev = try Hashtbl.find t.versions key with Not_found -> [] in
          Hashtbl.replace t.versions key ({ v_idx = idx; v_value = v } :: prev))
        writes;
      t.log_len <- idx + 1;
      t.commit_times <- (idx, Sim.Engine.now t.engine) :: t.commit_times;
      s.seen <- idx;
      Sim.Engine.schedule t.engine ~after:t.base_latency_us (fun () ->
          record t ~proc:s.s_proc ~reads:observed ~writes ~inv ~ts:(2 * idx);
          k observed))

let ro s ~keys k =
  let t = s.store in
  let inv = Sim.Engine.now t.engine in
  Sim.Engine.schedule t.engine ~after:t.base_latency_us (fun () ->
      (* Serve from a lagged replica: the freshest prefix whose transactions
         committed more than a sampled staleness ago — but never behind the
         session. *)
      let staleness = Sim.Rng.int t.rng (t.max_staleness_us + 1) in
      let horizon = Sim.Engine.now t.engine - staleness in
      let lagged =
        let rec newest_before = function
          | [] -> -1
          | (idx, at) :: rest -> if at <= horizon then idx else newest_before rest
        in
        newest_before t.commit_times
      in
      let view = max s.seen lagged in
      let observed = List.map (fun key -> (key, read_at t key view)) keys in
      s.seen <- view;
      Sim.Engine.schedule t.engine ~after:t.base_latency_us (fun () ->
          (* ROs serialize between the RW at [view] and the one at [view+1]. *)
          record t ~proc:s.s_proc ~reads:observed ~writes:[] ~inv ~ts:((2 * view) + 1);
          k observed))

let records t = Array.of_list (List.rev t.record_list)

let check_history t = Rss_core.Witness.check ~mode:`Sequential (records t)
