(** An OSC(U)-style register service (Lev-Ari et al., compared in
    Appendix A.2), as the single-key restriction of the PO store.

    Writes serialize synchronously at the log head, so every operation that
    precedes a write in real time is ordered before it — OSC(U)'s
    characteristic guarantee. Reads serve from a monotone, possibly-stale
    prefix (Fig. 13's behaviour): sequential consistency plus the
    into-writes real-time edges, but {e not} RSC — a completed write may be
    invisible to a causally-unrelated later read. Tests verify exactly this
    split with the model checkers. *)

type t

val create :
  Sim.Engine.t -> rng:Sim.Rng.t -> ?base_latency_us:int -> ?max_staleness_us:int ->
  unit -> t

type session

val session : t -> session

val read : session -> key:string -> (int option -> unit) -> unit

val write : session -> key:string -> value:int -> (unit -> unit) -> unit
(** Values must stay unique per key across the run for history checking. *)

val history : t -> Rss_core.History.t
(** The run as a register history (for the search checkers; keep runs
    small). *)
