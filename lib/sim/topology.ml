type deployment = {
  name : string;
  site_names : string array;
  rtt_ms : float array array;
}

(* §6.1 deployment: CA / VA / IR (CA-VA 62 ms, CA-IR 136 ms, VA-IR 68 ms). *)
let wan3 =
  {
    name = "wan3";
    site_names = [| "CA"; "VA"; "IR" |];
    rtt_ms =
      [| [| 0.2; 62.0; 136.0 |]; [| 62.0; 0.2; 68.0 |]; [| 136.0; 68.0; 0.2 |] |];
  }

(* Table 2 of the paper: CA, VA, IR, OR, JP. *)
let wan5 =
  {
    name = "wan5";
    site_names = [| "CA"; "VA"; "IR"; "OR"; "JP" |];
    rtt_ms =
      [|
        [| 0.2; 72.0; 151.0; 59.0; 113.0 |];
        [| 72.0; 0.2; 88.0; 93.0; 162.0 |];
        [| 151.0; 88.0; 0.2; 145.0; 220.0 |];
        [| 59.0; 93.0; 145.0; 0.2; 121.0 |];
        [| 113.0; 162.0; 220.0; 121.0; 0.2 |];
      |];
  }

let single_dc ~n =
  {
    name = "single-dc";
    site_names = [||];
    rtt_ms = Array.make_matrix n n 0.2;
  }

let n_sites d = Array.length d.rtt_ms

let site_name d i =
  if i < Array.length d.site_names then d.site_names.(i)
  else "site" ^ string_of_int i

let by_name = function
  | "wan3" -> Some wan3
  | "wan5" -> Some wan5
  | _ -> None
