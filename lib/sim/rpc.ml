type t = {
  engine : Engine.t;
  rng : Rng.t;
  timeout_us : int;
  max_backoff_us : int;
  max_attempts : int;
  mutable n_calls : int;
  mutable n_retries : int;
  mutable n_exhausted : int;
}

let create engine ~rng ?(timeout_us = 500_000) ?(max_backoff_us = 2_000_000)
    ?(max_attempts = 8) () =
  if timeout_us <= 0 then invalid_arg "Rpc.create: timeout_us must be positive";
  if max_attempts < 1 then invalid_arg "Rpc.create: max_attempts must be >= 1";
  {
    engine;
    rng;
    timeout_us;
    max_backoff_us;
    max_attempts;
    n_calls = 0;
    n_retries = 0;
    n_exhausted = 0;
  }

let call t ~attempt ~on_result =
  t.n_calls <- t.n_calls + 1;
  let settled = ref false in
  let ok v =
    if not !settled then begin
      settled := true;
      on_result (Some v)
    end
  in
  let rec go n =
    if not !settled then
      if n > t.max_attempts then begin
        t.n_exhausted <- t.n_exhausted + 1;
        on_result None
      end
      else begin
        if n > 1 then t.n_retries <- t.n_retries + 1;
        attempt ~attempt:n ~ok;
        (* Per-attempt timeout doubles (capped); retries add jitter so
           concurrent callers de-synchronize. The first attempt draws no
           randomness, keeping retry-free runs on the unperturbed stream. *)
        let backoff = min t.max_backoff_us (t.timeout_us lsl min (n - 1) 16) in
        let jitter = if n = 1 then 0 else Rng.int t.rng (max 1 (backoff / 4)) in
        Engine.schedule t.engine ~after:(backoff + jitter) (fun () -> go (n + 1))
      end
  in
  go 1

let calls t = t.n_calls

let retries t = t.n_retries

let exhausted t = t.n_exhausted
