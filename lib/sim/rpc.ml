module Budget = struct
  type t = {
    engine : Engine.t;
    capacity : int;
    refill_period_us : int;
    mutable tokens : int;
    mutable last_refill : int;
    mutable n_taken : int;
    mutable n_denied : int;
  }

  let create engine ~capacity ~refill_period_us =
    if capacity < 1 then invalid_arg "Rpc.Budget.create: capacity must be >= 1";
    if refill_period_us < 1 then
      invalid_arg "Rpc.Budget.create: refill_period_us must be >= 1";
    {
      engine;
      capacity;
      refill_period_us;
      tokens = capacity;
      last_refill = 0;
      n_taken = 0;
      n_denied = 0;
    }

  (* Lazy integer refill: tokens earned are whole periods elapsed since the
     last refill, and the refill clock only advances by the periods actually
     credited — no float drift, no timer events, deterministic for a given
     schedule. *)
  let refill t =
    let now = Engine.now t.engine in
    let earned = (now - t.last_refill) / t.refill_period_us in
    if earned > 0 then begin
      t.tokens <- min t.capacity (t.tokens + earned);
      t.last_refill <- t.last_refill + (earned * t.refill_period_us)
    end

  let try_take t =
    refill t;
    if t.tokens > 0 then begin
      t.tokens <- t.tokens - 1;
      t.n_taken <- t.n_taken + 1;
      true
    end
    else begin
      t.n_denied <- t.n_denied + 1;
      false
    end

  let tokens t =
    refill t;
    t.tokens

  let taken t = t.n_taken

  let denied t = t.n_denied
end

type t = {
  engine : Engine.t;
  rng : Rng.t;
  timeout_us : int;
  max_backoff_us : int;
  max_attempts : int;
  mutable budget : Budget.t option;
  mutable n_calls : int;
  mutable n_retries : int;
  mutable n_exhausted : int;
  mutable n_budget_denied : int;
  mutable tracer : Obs.Trace.t;
}

let create engine ~rng ?(timeout_us = 500_000) ?(max_backoff_us = 2_000_000)
    ?(max_attempts = 8) () =
  if timeout_us <= 0 then invalid_arg "Rpc.create: timeout_us must be positive";
  if max_attempts < 1 then invalid_arg "Rpc.create: max_attempts must be >= 1";
  {
    engine;
    rng;
    timeout_us;
    max_backoff_us;
    max_attempts;
    budget = None;
    n_calls = 0;
    n_retries = 0;
    n_exhausted = 0;
    n_budget_denied = 0;
    tracer = Obs.Trace.disabled;
  }

let set_tracer t tracer = t.tracer <- tracer

let set_budget t budget = t.budget <- budget

let budget t = t.budget

let call ?(name = "rpc.call") t ~attempt ~on_result =
  t.n_calls <- t.n_calls + 1;
  let tr = t.tracer in
  let traced = Obs.Trace.enabled tr in
  (* One span covers the whole logical call; every attempt (including
     retransmissions fired from the backoff timer, where the ambient span
     would otherwise be lost) runs with it as the ambient parent, so hops
     of attempt N still chain to the same call span. *)
  let call_sp =
    if traced then
      Obs.Trace.begin_span tr ~kind:Obs.Trace.Rpc ~name
        ~ts:(Engine.now t.engine)
    else Obs.Trace.none
  in
  let settled = ref false in
  let ok v =
    if not !settled then begin
      settled := true;
      if traced then Obs.Trace.end_span tr call_sp ~ts:(Engine.now t.engine);
      on_result (Some v)
    end
  in
  let give_up marker =
    if traced then begin
      Obs.Trace.instant ~parent:call_sp tr ~name:marker
        ~ts:(Engine.now t.engine);
      Obs.Trace.end_span tr call_sp ~ts:(Engine.now t.engine)
    end;
    on_result None
  in
  (* A retry spends one budget token (the first attempt is free — budgets
     cap amplification, not offered load). An empty bucket converts the
     retry into an immediate fast-fail rather than queueing more work onto
     an already-overloaded fleet. *)
  let retry_allowed () =
    match t.budget with
    | None -> true
    | Some b -> Budget.try_take b
  in
  let rec go n =
    if not !settled then
      if n > t.max_attempts then begin
        t.n_exhausted <- t.n_exhausted + 1;
        give_up "rpc.exhausted"
      end
      else if n > 1 && not (retry_allowed ()) then begin
        t.n_exhausted <- t.n_exhausted + 1;
        t.n_budget_denied <- t.n_budget_denied + 1;
        give_up "rpc.budget_exhausted"
      end
      else begin
        if n > 1 then t.n_retries <- t.n_retries + 1;
        if traced then begin
          if n > 1 then
            Obs.Trace.instant ~parent:call_sp tr ~name:"rpc.retry"
              ~ts:(Engine.now t.engine);
          Obs.Trace.with_current tr call_sp (fun () -> attempt ~attempt:n ~ok)
        end
        else attempt ~attempt:n ~ok;
        (* Per-attempt timeout doubles (capped); retries add jitter so
           concurrent callers de-synchronize. The first attempt draws no
           randomness, keeping retry-free runs on the unperturbed stream. *)
        let backoff = min t.max_backoff_us (t.timeout_us lsl min (n - 1) 16) in
        let jitter = if n = 1 then 0 else Rng.int t.rng (max 1 (backoff / 4)) in
        Engine.schedule ~kind:"rpc.backoff" t.engine ~after:(backoff + jitter)
          (fun () -> go (n + 1))
      end
  in
  go 1

let calls t = t.n_calls

let retries t = t.n_retries

let exhausted t = t.n_exhausted

let budget_denied t = t.n_budget_denied
