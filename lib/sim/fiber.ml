type _ Effect.t += Await : (('a -> unit) -> unit) -> 'a Effect.t

let await start = Effect.perform (Await start)

let sleep engine us = await (fun k -> Engine.schedule engine ~after:us k)

let spawn body =
  let open Effect.Deep in
  match_with body ()
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Await start ->
            Some
              (fun (k : (b, unit) continuation) ->
                let resumed = ref false in
                start (fun v ->
                    if !resumed then
                      invalid_arg "Fiber.await: callback invoked twice"
                    else begin
                      resumed := true;
                      continue k v
                    end))
          | _ -> None);
    }
