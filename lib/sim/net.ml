type site = int

type drop_cause = Crash | Partition | Loss

(* Per-directed-link fault state. All fields default to the healthy value;
   the send path only draws random numbers for a fault that is armed, so a
   fault-free run consumes exactly the same RNG stream as before the fault
   model existed (seeded experiments stay byte-identical). *)
type link = {
  mutable blocked : bool;
  mutable loss : float;
  mutable dup : float;
  mutable extra_us : int;
  mutable reorder : float;
  mutable reorder_max_us : int;
}

type t = {
  engine : Engine.t;
  rng : Rng.t;
  one_way_us : int array array;
  rtt : float array array;
  jitter : float;
  down : bool array;
  links : link array array;
  mutable n_messages : int;
  mutable n_bytes : int;
  mutable n_dropped_crash : int;
  mutable n_dropped_partition : int;
  mutable n_dropped_loss : int;
  mutable n_duplicated : int;
  mutable n_delayed : int;
  (* Tracing sink. With the [disabled] sink installed (the default) the
     send path is the exact pre-observability code: same RNG draws, same
     schedule order, no allocation. Hop names are precomputed per link at
     [set_tracer] so traced sends don't build strings per message. *)
  mutable tracer : Obs.Trace.t;
  mutable hop_names : string array array;
}

let fresh_link () =
  {
    blocked = false;
    loss = 0.0;
    dup = 0.0;
    extra_us = 0;
    reorder = 0.0;
    reorder_max_us = 0;
  }

let create engine ~rng ~rtt_ms ?(jitter = 0.02) () =
  let n = Array.length rtt_ms in
  let rtt = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      (* Accept triangular input: take whichever entry is non-zero. *)
      let v = if rtt_ms.(i).(j) > 0.0 then rtt_ms.(i).(j) else rtt_ms.(j).(i) in
      rtt.(i).(j) <- v
    done
  done;
  let one_way_us =
    Array.init n (fun i -> Array.init n (fun j -> Engine.ms (rtt.(i).(j) /. 2.0)))
  in
  {
    engine;
    rng;
    one_way_us;
    rtt;
    jitter;
    down = Array.make n false;
    links = Array.init n (fun _ -> Array.init n (fun _ -> fresh_link ()));
    n_messages = 0;
    n_bytes = 0;
    n_dropped_crash = 0;
    n_dropped_partition = 0;
    n_dropped_loss = 0;
    n_duplicated = 0;
    n_delayed = 0;
    tracer = Obs.Trace.disabled;
    hop_names = [||];
  }

let n_sites t = Array.length t.one_way_us

let engine t = t.engine

let base_one_way t ~src ~dst = t.one_way_us.(src).(dst)

(* The single per-link fault predicate every delivery consults. Causes are
   ordered crash > partition > loss so each dropped message is charged to
   exactly one counter. The loss draw happens only when the link can
   actually deliver — a crashed destination does not consume randomness. *)
let classify t ~src ~dst =
  if t.down.(src) || t.down.(dst) then Some Crash
  else
    let l = t.links.(src).(dst) in
    if l.blocked then Some Partition
    else if l.loss > 0.0 && Rng.bool t.rng l.loss then Some Loss
    else None

let count_drop t = function
  | Crash -> t.n_dropped_crash <- t.n_dropped_crash + 1
  | Partition -> t.n_dropped_partition <- t.n_dropped_partition + 1
  | Loss -> t.n_dropped_loss <- t.n_dropped_loss + 1

let sample_delay t ~src ~dst =
  let base = t.one_way_us.(src).(dst) in
  let d =
    if t.jitter <= 0.0 then base
    else
      let factor = 1.0 +. Rng.float t.rng t.jitter in
      int_of_float (float_of_int base *. factor)
  in
  let l = t.links.(src).(dst) in
  let injected =
    (if l.extra_us > 0 then l.extra_us else 0)
    + (if l.reorder > 0.0 && l.reorder_max_us > 0 && Rng.bool t.rng l.reorder
       then 1 + Rng.int t.rng l.reorder_max_us
       else 0)
  in
  if injected > 0 then t.n_delayed <- t.n_delayed + 1;
  d + injected

let set_tracer t tracer =
  t.tracer <- tracer;
  if Obs.Trace.enabled tracer && Array.length t.hop_names = 0 then begin
    let n = n_sites t in
    t.hop_names <-
      Array.init n (fun i ->
          Array.init n (fun j ->
              "net " ^ string_of_int i ^ "->" ^ string_of_int j))
  end

let tracer t = t.tracer

let drop_name = function
  | Crash -> "net.drop.crash"
  | Partition -> "net.drop.partition"
  | Loss -> "net.drop.loss"

let send ?(bytes = 64) t ~src ~dst handler =
  let tr = t.tracer in
  if not (Obs.Trace.enabled tr) then begin
    (* Untraced fast path — byte-identical to the pre-observability send:
       same RNG draw order, same schedule order, no allocation. *)
    match classify t ~src ~dst with
    | Some cause -> count_drop t cause
    | None ->
      t.n_messages <- t.n_messages + 1;
      t.n_bytes <- t.n_bytes + bytes;
      Engine.schedule ~kind:"net.deliver" t.engine
        ~after:(sample_delay t ~src ~dst)
        handler;
      let l = t.links.(src).(dst) in
      if l.dup > 0.0 && Rng.bool t.rng l.dup then begin
        t.n_duplicated <- t.n_duplicated + 1;
        Engine.schedule ~kind:"net.deliver" t.engine
          ~after:(sample_delay t ~src ~dst)
          handler
      end
  end
  else begin
    (* Traced path: identical RNG/schedule behaviour, plus one hop span
       per delivery (parented to the ambient span of the sender) that
       becomes the ambient parent of whatever the handler does. *)
    match classify t ~src ~dst with
    | Some cause ->
      count_drop t cause;
      Obs.Trace.instant ~site:dst tr ~name:(drop_name cause)
        ~ts:(Engine.now t.engine)
    | None ->
      t.n_messages <- t.n_messages + 1;
      t.n_bytes <- t.n_bytes + bytes;
      let now = Engine.now t.engine in
      let deliver delay =
        let sp =
          Obs.Trace.begin_span ~site:dst tr ~kind:Obs.Trace.Net_hop
            ~name:t.hop_names.(src).(dst) ~ts:now
        in
        Obs.Trace.end_span tr sp ~ts:(now + delay);
        Engine.schedule ~kind:"net.deliver" t.engine ~after:delay (fun () ->
            Obs.Trace.with_current tr sp handler)
      in
      deliver (sample_delay t ~src ~dst);
      let l = t.links.(src).(dst) in
      if l.dup > 0.0 && Rng.bool t.rng l.dup then begin
        t.n_duplicated <- t.n_duplicated + 1;
        deliver (sample_delay t ~src ~dst)
      end
  end

(* {2 Crashes} — kept API; the send path treats a crashed site as every one
   of its links (in and out) being severed, charged to the crash counter. *)

let set_down t site = t.down.(site) <- true

let set_up t site = t.down.(site) <- false

let is_down t site = t.down.(site)

(* {2 Per-link faults} *)

let block_link t ~src ~dst = t.links.(src).(dst).blocked <- true

let unblock_link t ~src ~dst = t.links.(src).(dst).blocked <- false

let link_blocked t ~src ~dst = t.links.(src).(dst).blocked

let partition t a b =
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          block_link t ~src:i ~dst:j;
          block_link t ~src:j ~dst:i)
        b)
    a

let heal_partitions t =
  Array.iter (fun row -> Array.iter (fun l -> l.blocked <- false) row) t.links

let set_loss t ~src ~dst p =
  if p < 0.0 || p >= 1.0 then invalid_arg "Net.set_loss: p must be in [0, 1)";
  t.links.(src).(dst).loss <- p

let set_dup t ~src ~dst p =
  if p < 0.0 || p >= 1.0 then invalid_arg "Net.set_dup: p must be in [0, 1)";
  t.links.(src).(dst).dup <- p

let set_extra_delay t ~src ~dst us =
  if us < 0 then invalid_arg "Net.set_extra_delay: negative delay";
  t.links.(src).(dst).extra_us <- us

let set_reorder t ~src ~dst ~prob ~max_extra_us =
  if prob < 0.0 || prob >= 1.0 then invalid_arg "Net.set_reorder: prob in [0, 1)";
  t.links.(src).(dst).reorder <- prob;
  t.links.(src).(dst).reorder_max_us <- max_extra_us

let clear_link_faults t =
  Array.iter
    (fun row ->
      Array.iter
        (fun l ->
          l.loss <- 0.0;
          l.dup <- 0.0;
          l.extra_us <- 0;
          l.reorder <- 0.0;
          l.reorder_max_us <- 0)
        row)
    t.links

(* {2 Counters} *)

let messages_dropped t =
  t.n_dropped_crash + t.n_dropped_partition + t.n_dropped_loss

let dropped_crash t = t.n_dropped_crash

let dropped_partition t = t.n_dropped_partition

let dropped_loss t = t.n_dropped_loss

let messages_duplicated t = t.n_duplicated

let messages_delayed t = t.n_delayed

let messages_sent t = t.n_messages

let bytes_sent t = t.n_bytes

let rtt_ms t ~src ~dst = t.rtt.(src).(dst)
