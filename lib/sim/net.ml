type site = int

type t = {
  engine : Engine.t;
  rng : Rng.t;
  one_way_us : int array array;
  rtt : float array array;
  jitter : float;
  down : bool array;
  mutable n_messages : int;
  mutable n_bytes : int;
  mutable n_dropped : int;
}

let create engine ~rng ~rtt_ms ?(jitter = 0.02) () =
  let n = Array.length rtt_ms in
  let rtt = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      (* Accept triangular input: take whichever entry is non-zero. *)
      let v = if rtt_ms.(i).(j) > 0.0 then rtt_ms.(i).(j) else rtt_ms.(j).(i) in
      rtt.(i).(j) <- v
    done
  done;
  let one_way_us =
    Array.init n (fun i -> Array.init n (fun j -> Engine.ms (rtt.(i).(j) /. 2.0)))
  in
  {
    engine;
    rng;
    one_way_us;
    rtt;
    jitter;
    down = Array.make n false;
    n_messages = 0;
    n_bytes = 0;
    n_dropped = 0;
  }

let n_sites t = Array.length t.one_way_us

let base_one_way t ~src ~dst = t.one_way_us.(src).(dst)

let rec send ?(bytes = 64) t ~src ~dst handler =
  if t.down.(src) || t.down.(dst) then t.n_dropped <- t.n_dropped + 1
  else begin
    send_live ~bytes t ~src ~dst handler
  end

and send_live ~bytes t ~src ~dst handler =
  t.n_messages <- t.n_messages + 1;
  t.n_bytes <- t.n_bytes + bytes;
  let base = t.one_way_us.(src).(dst) in
  let delay =
    if t.jitter <= 0.0 then base
    else
      let factor = 1.0 +. Rng.float t.rng t.jitter in
      int_of_float (float_of_int base *. factor)
  in
  Engine.schedule t.engine ~after:delay handler

let set_down t site = t.down.(site) <- true

let set_up t site = t.down.(site) <- false

let is_down t site = t.down.(site)

let messages_dropped t = t.n_dropped

let messages_sent t = t.n_messages

let bytes_sent t = t.n_bytes

let rtt_ms t ~src ~dst = t.rtt.(src).(dst)
