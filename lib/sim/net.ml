type site = int

type drop_cause = Crash | Partition | Loss

(* Per-directed-link fault state. All fields default to the healthy value;
   the send path only draws random numbers for a fault that is armed, so a
   fault-free run consumes exactly the same RNG stream as before the fault
   model existed (seeded experiments stay byte-identical). *)
type link = {
  mutable blocked : bool;
  mutable loss : float;
  mutable dup : float;
  mutable extra_us : int;
  mutable reorder : float;
  mutable reorder_max_us : int;
  (* Batching buffer — only touched when a batching policy is installed, so
     an unbatched run never reads or writes these fields on the send path. *)
  mutable q : (int * (int -> unit)) list;  (* (bytes, handler), newest first *)
  mutable q_n : int;
  mutable q_bytes : int;
  mutable q_armed : bool;
  mutable q_gen : int;  (* invalidates stale deadline timers across flushes *)
  mutable inflight : int;  (* envelopes scheduled but not yet delivered *)
}

type policy = {
  batch_us : int;  (** flush deadline: first enqueue arms a timer this far out *)
  batch_max : int;  (** flush when this many messages are buffered *)
  adaptive : bool;
      (** flush immediately while the link has no envelope in flight, and
          again as soon as an in-flight envelope lands *)
}

type flush_cause = Flush_deadline | Flush_size | Flush_idle

(* Fixed per-envelope framing cost; an envelope's wire size is this header
   plus the sum of its members' bytes. Plain [send] (and [post] with batching
   off) charges exactly the message's bytes, no header — a lone message is
   its own frame. *)
let envelope_header_bytes = 32

type t = {
  engine : Engine.t;
  rng : Rng.t;
  one_way_us : int array array;
  rtt : float array array;
  jitter : float;
  down : bool array;
  links : link array array;
  mutable n_messages : int;
  mutable n_bytes : int;
  mutable n_dropped_crash : int;
  mutable n_dropped_partition : int;
  mutable n_dropped_loss : int;
  mutable n_duplicated : int;
  mutable n_delayed : int;
  (* Tracing sink. With the [disabled] sink installed (the default) the
     send path is the exact pre-observability code: same RNG draws, same
     schedule order, no allocation. Hop names are precomputed per link at
     [set_tracer] so traced sends don't build strings per message. *)
  mutable tracer : Obs.Trace.t;
  mutable hop_names : string array array;
  (* Batching policy + accounting. [None] (the default) makes [post]
     byte-identical to [send]. *)
  mutable policy : policy option;
  mutable b_envelopes : int;
  mutable b_members : int;
  mutable b_flush_deadline : int;
  mutable b_flush_size : int;
  mutable b_flush_idle : int;
  mutable b_max_members : int;
  b_sizes : Stats.Recorder.t;  (* members per flushed envelope *)
  (* Delay perturbation hook for schedule exploration: when set, every
     delivery delay sample adds the hook's (non-negative) extra
     microseconds. The hook draws from its own state, never from [rng],
     so installing it does not shift the network's RNG stream; [None]
     (the default) is byte-identical to the unhooked network. *)
  mutable delay_perturb : (unit -> int) option;
}

let fresh_link () =
  {
    blocked = false;
    loss = 0.0;
    dup = 0.0;
    extra_us = 0;
    reorder = 0.0;
    reorder_max_us = 0;
    q = [];
    q_n = 0;
    q_bytes = 0;
    q_armed = false;
    q_gen = 0;
    inflight = 0;
  }

let create engine ~rng ~rtt_ms ?(jitter = 0.02) () =
  let n = Array.length rtt_ms in
  let rtt = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      (* Accept triangular input: take whichever entry is non-zero. *)
      let v = if rtt_ms.(i).(j) > 0.0 then rtt_ms.(i).(j) else rtt_ms.(j).(i) in
      rtt.(i).(j) <- v
    done
  done;
  let one_way_us =
    Array.init n (fun i -> Array.init n (fun j -> Engine.ms (rtt.(i).(j) /. 2.0)))
  in
  {
    engine;
    rng;
    one_way_us;
    rtt;
    jitter;
    down = Array.make n false;
    links = Array.init n (fun _ -> Array.init n (fun _ -> fresh_link ()));
    n_messages = 0;
    n_bytes = 0;
    n_dropped_crash = 0;
    n_dropped_partition = 0;
    n_dropped_loss = 0;
    n_duplicated = 0;
    n_delayed = 0;
    tracer = Obs.Trace.disabled;
    hop_names = [||];
    policy = None;
    b_envelopes = 0;
    b_members = 0;
    b_flush_deadline = 0;
    b_flush_size = 0;
    b_flush_idle = 0;
    b_max_members = 0;
    b_sizes = Stats.Recorder.create ();
    delay_perturb = None;
  }

let n_sites t = Array.length t.one_way_us

let engine t = t.engine

let base_one_way t ~src ~dst = t.one_way_us.(src).(dst)

(* The single per-link fault predicate every delivery consults. Causes are
   ordered crash > partition > loss so each dropped message is charged to
   exactly one counter. The loss draw happens only when the link can
   actually deliver — a crashed destination does not consume randomness. *)
let classify t ~src ~dst =
  if t.down.(src) || t.down.(dst) then Some Crash
  else
    let l = t.links.(src).(dst) in
    if l.blocked then Some Partition
    else if l.loss > 0.0 && Rng.bool t.rng l.loss then Some Loss
    else None

let count_drop t = function
  | Crash -> t.n_dropped_crash <- t.n_dropped_crash + 1
  | Partition -> t.n_dropped_partition <- t.n_dropped_partition + 1
  | Loss -> t.n_dropped_loss <- t.n_dropped_loss + 1

let sample_delay t ~src ~dst =
  let base = t.one_way_us.(src).(dst) in
  let d =
    if t.jitter <= 0.0 then base
    else
      let factor = 1.0 +. Rng.float t.rng t.jitter in
      int_of_float (float_of_int base *. factor)
  in
  let l = t.links.(src).(dst) in
  let injected =
    (if l.extra_us > 0 then l.extra_us else 0)
    + (if l.reorder > 0.0 && l.reorder_max_us > 0 && Rng.bool t.rng l.reorder
       then 1 + Rng.int t.rng l.reorder_max_us
       else 0)
  in
  if injected > 0 then t.n_delayed <- t.n_delayed + 1;
  let perturbed =
    match t.delay_perturb with
    | None -> 0
    | Some f ->
      let p = f () in
      if p > 0 then p else 0
  in
  d + injected + perturbed

let set_delay_perturb t f = t.delay_perturb <- f

let set_tracer t tracer =
  t.tracer <- tracer;
  if Obs.Trace.enabled tracer && Array.length t.hop_names = 0 then begin
    let n = n_sites t in
    t.hop_names <-
      Array.init n (fun i ->
          Array.init n (fun j ->
              "net " ^ string_of_int i ^ "->" ^ string_of_int j))
  end

let tracer t = t.tracer

let drop_name = function
  | Crash -> "net.drop.crash"
  | Partition -> "net.drop.partition"
  | Loss -> "net.drop.loss"

let send ?(bytes = 64) t ~src ~dst handler =
  let tr = t.tracer in
  if not (Obs.Trace.enabled tr) then begin
    (* Untraced fast path — byte-identical to the pre-observability send:
       same RNG draw order, same schedule order, no allocation. *)
    match classify t ~src ~dst with
    | Some cause -> count_drop t cause
    | None ->
      t.n_messages <- t.n_messages + 1;
      t.n_bytes <- t.n_bytes + bytes;
      Engine.schedule ~kind:"net.deliver" t.engine
        ~after:(sample_delay t ~src ~dst)
        handler;
      let l = t.links.(src).(dst) in
      if l.dup > 0.0 && Rng.bool t.rng l.dup then begin
        t.n_duplicated <- t.n_duplicated + 1;
        Engine.schedule ~kind:"net.deliver" t.engine
          ~after:(sample_delay t ~src ~dst)
          handler
      end
  end
  else begin
    (* Traced path: identical RNG/schedule behaviour, plus one hop span
       per delivery (parented to the ambient span of the sender) that
       becomes the ambient parent of whatever the handler does. *)
    match classify t ~src ~dst with
    | Some cause ->
      count_drop t cause;
      Obs.Trace.instant ~site:dst tr ~name:(drop_name cause)
        ~ts:(Engine.now t.engine)
    | None ->
      t.n_messages <- t.n_messages + 1;
      t.n_bytes <- t.n_bytes + bytes;
      let now = Engine.now t.engine in
      let deliver delay =
        let sp =
          Obs.Trace.begin_span ~site:dst tr ~kind:Obs.Trace.Net_hop
            ~name:t.hop_names.(src).(dst) ~ts:now
        in
        Obs.Trace.end_span tr sp ~ts:(now + delay);
        Engine.schedule ~kind:"net.deliver" t.engine ~after:delay (fun () ->
            Obs.Trace.with_current tr sp handler)
      in
      deliver (sample_delay t ~src ~dst);
      let l = t.links.(src).(dst) in
      if l.dup > 0.0 && Rng.bool t.rng l.dup then begin
        t.n_duplicated <- t.n_duplicated + 1;
        deliver (sample_delay t ~src ~dst)
      end
  end

(* {2 Batching}

   [post] enqueues onto the directed link's buffer; a flush turns the whole
   buffer into one envelope that pays one classify (so drop/dup faults apply
   per envelope, charged once to the usual per-cause counters), one delay
   sample, and one delivery event that runs the member handlers in posted
   order, each told its index so the destination can amortize service cost
   across the envelope. With no policy installed [post] routes through
   [send] — same RNG draws, same schedule — so batching off is
   byte-identical to the unbatched network. *)

let set_batching t policy =
  (match policy with
  | Some p ->
    if p.batch_us <= 0 then invalid_arg "Net.set_batching: batch_us must be positive";
    if p.batch_max <= 0 then invalid_arg "Net.set_batching: batch_max must be positive"
  | None -> ());
  t.policy <- policy

let batching t = t.policy

let record_flush t l cause =
  l.q_gen <- l.q_gen + 1;
  l.q_armed <- false;
  t.b_envelopes <- t.b_envelopes + 1;
  t.b_members <- t.b_members + l.q_n;
  if l.q_n > t.b_max_members then t.b_max_members <- l.q_n;
  Stats.Recorder.add t.b_sizes l.q_n;
  match cause with
  | Flush_deadline -> t.b_flush_deadline <- t.b_flush_deadline + 1
  | Flush_size -> t.b_flush_size <- t.b_flush_size + 1
  | Flush_idle -> t.b_flush_idle <- t.b_flush_idle + 1

let rec flush t ~src ~dst ~adaptive cause =
  let l = t.links.(src).(dst) in
  if l.q_n > 0 then begin
    record_flush t l cause;
    let members = List.rev l.q in
    let bytes = envelope_header_bytes + l.q_bytes in
    l.q <- [];
    l.q_n <- 0;
    l.q_bytes <- 0;
    let tr = t.tracer in
    match classify t ~src ~dst with
    | Some cause ->
      count_drop t cause;
      if Obs.Trace.enabled tr then
        Obs.Trace.instant ~site:dst tr ~name:(drop_name cause)
          ~ts:(Engine.now t.engine)
    | None ->
      t.n_messages <- t.n_messages + 1;
      t.n_bytes <- t.n_bytes + bytes;
      let now = Engine.now t.engine in
      let deliver delay =
        l.inflight <- l.inflight + 1;
        let run_members () =
          List.iteri (fun i (_bytes, h) -> h i) members
        in
        let body =
          if not (Obs.Trace.enabled tr) then run_members
          else begin
            (* One hop span per envelope; every member handler runs under
               it, so spans opened inside chain to the envelope's hop. *)
            let sp =
              Obs.Trace.begin_span ~site:dst tr ~kind:Obs.Trace.Net_hop
                ~name:t.hop_names.(src).(dst) ~ts:now
            in
            Obs.Trace.end_span tr sp ~ts:(now + delay);
            fun () -> Obs.Trace.with_current tr sp run_members
          end
        in
        Engine.schedule ~kind:"net.deliver" t.engine ~after:delay (fun () ->
            l.inflight <- l.inflight - 1;
            body ();
            (* Group-commit heartbeat: once the link drains, ship whatever
               accumulated while the previous envelope was in flight. *)
            if adaptive && l.inflight = 0 && l.q_n > 0 then
              flush t ~src ~dst ~adaptive Flush_idle)
      in
      deliver (sample_delay t ~src ~dst);
      if l.dup > 0.0 && Rng.bool t.rng l.dup then begin
        t.n_duplicated <- t.n_duplicated + 1;
        deliver (sample_delay t ~src ~dst)
      end
  end

let post ?(bytes = 64) t ~src ~dst handler =
  match t.policy with
  | None -> send ~bytes t ~src ~dst (fun () -> handler 0)
  | Some p ->
    let l = t.links.(src).(dst) in
    l.q <- (bytes, handler) :: l.q;
    l.q_n <- l.q_n + 1;
    l.q_bytes <- l.q_bytes + bytes;
    if p.adaptive && l.inflight = 0 then
      flush t ~src ~dst ~adaptive:true Flush_idle
    else if l.q_n >= p.batch_max then
      flush t ~src ~dst ~adaptive:p.adaptive Flush_size
    else if not l.q_armed then begin
      l.q_armed <- true;
      let gen = l.q_gen in
      Engine.schedule ~kind:"net.flush" t.engine ~after:p.batch_us (fun () ->
          if l.q_armed && l.q_gen = gen then
            flush t ~src ~dst ~adaptive:p.adaptive Flush_deadline)
    end

(* Batch accounting *)

let batch_envelopes t = t.b_envelopes

let batch_members t = t.b_members

let batch_flush_deadline t = t.b_flush_deadline

let batch_flush_size t = t.b_flush_size

let batch_flush_idle t = t.b_flush_idle

let batch_max_members t = t.b_max_members

let batch_sizes t = t.b_sizes

(* {2 Crashes} — kept API; the send path treats a crashed site as every one
   of its links (in and out) being severed, charged to the crash counter. *)

let set_down t site = t.down.(site) <- true

let set_up t site = t.down.(site) <- false

let is_down t site = t.down.(site)

(* {2 Per-link faults} *)

let block_link t ~src ~dst = t.links.(src).(dst).blocked <- true

let unblock_link t ~src ~dst = t.links.(src).(dst).blocked <- false

let link_blocked t ~src ~dst = t.links.(src).(dst).blocked

let partition t a b =
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          block_link t ~src:i ~dst:j;
          block_link t ~src:j ~dst:i)
        b)
    a

let heal_partitions t =
  Array.iter (fun row -> Array.iter (fun l -> l.blocked <- false) row) t.links

let set_loss t ~src ~dst p =
  if p < 0.0 || p >= 1.0 then invalid_arg "Net.set_loss: p must be in [0, 1)";
  t.links.(src).(dst).loss <- p

let set_dup t ~src ~dst p =
  if p < 0.0 || p >= 1.0 then invalid_arg "Net.set_dup: p must be in [0, 1)";
  t.links.(src).(dst).dup <- p

let set_extra_delay t ~src ~dst us =
  if us < 0 then invalid_arg "Net.set_extra_delay: negative delay";
  t.links.(src).(dst).extra_us <- us

let set_reorder t ~src ~dst ~prob ~max_extra_us =
  if prob < 0.0 || prob >= 1.0 then invalid_arg "Net.set_reorder: prob in [0, 1)";
  t.links.(src).(dst).reorder <- prob;
  t.links.(src).(dst).reorder_max_us <- max_extra_us

let clear_link_faults t =
  Array.iter
    (fun row ->
      Array.iter
        (fun l ->
          l.loss <- 0.0;
          l.dup <- 0.0;
          l.extra_us <- 0;
          l.reorder <- 0.0;
          l.reorder_max_us <- 0)
        row)
    t.links

(* {2 Counters} *)

let messages_dropped t =
  t.n_dropped_crash + t.n_dropped_partition + t.n_dropped_loss

let dropped_crash t = t.n_dropped_crash

let dropped_partition t = t.n_dropped_partition

let dropped_loss t = t.n_dropped_loss

let messages_duplicated t = t.n_duplicated

let messages_delayed t = t.n_delayed

let messages_sent t = t.n_messages

let bytes_sent t = t.n_bytes

let rtt_ms t ~src ~dst = t.rtt.(src).(dst)
