(** Seeded, splittable pseudo-random number streams.

    Every simulated component takes its own stream so that adding randomness
    in one place never perturbs another — runs are reproducible from a single
    root seed. *)

type t

val make : int -> t
(** [make seed] is a fresh root stream. *)

val split : t -> t
(** An independent child stream; the parent advances deterministically. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val int64 : t -> int64 -> int64

val uniform : t -> float
(** Uniform in [\[0, 1)]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val shuffle : t -> 'a array -> unit
