(** Single-threaded service station (M/D/1-style queueing).

    Models the CPU of a single-threaded server process: each submitted job
    occupies the station for a fixed service time; jobs queue FIFO. Used by
    the saturation-throughput experiments (Fig. 6, §7.4), where the
    interesting behaviour is the knee of the throughput curve, not absolute
    speed. A zero service time degenerates to immediate execution. *)

type t

val create : Engine.t -> service_time_us:int -> t

val service_time_us : t -> int
(** The default per-job cost this station was created with. *)

val submit : ?cost:int -> t -> (unit -> unit) -> unit
(** Enqueue a job; it runs when the station reaches it. [cost] overrides the
    default service time for this job. *)

val amortized : full:int -> int -> int
(** [amortized ~full idx] is the service cost for the [idx]-th member of a
    batched network envelope (see {!Net.post}): the head ([idx = 0]) pays
    [full], later members pay [full / 4] rounded up — one envelope is parsed
    and dispatched once, so its tail messages ride the warm path. *)

val busy_us : t -> int
(** Total busy time accumulated, for utilization reporting. *)

val jobs : t -> int
