(** Single-threaded service station (M/D/1-style queueing).

    Models the CPU of a single-threaded server process: each submitted job
    occupies the station for a fixed service time; jobs queue FIFO. Used by
    the saturation-throughput experiments (Fig. 6, §7.4), where the
    interesting behaviour is the knee of the throughput curve, not absolute
    speed. A zero service time degenerates to immediate execution.

    {2 Admission control}

    A station may carry {!limits}: a queue-depth bound and a sojourn-time
    bound. {!try_submit} consults them and {e sheds} an arrival that would
    exceed either, returning a typed {!pushback} with a server-suggested
    backoff (the time the current backlog needs to drain) instead of
    queueing work that is doomed to miss its deadline. {!submit} never
    sheds. With no limits installed (the default) [try_submit] behaves
    exactly like [submit] — no extra state, no schedule change.

    {2 Gray failures}

    {!set_slowdown} multiplies every subsequent job's service cost by an
    integer factor — the degraded-but-alive server a {!Chaos.Nemesis}
    [Slow_node] window models. Factor 1 (the default) is byte-identical to
    a station without the knob. *)

type t

type pushback = { retry_after_us : int }
(** Typed shed reply: the server's estimate of when retrying could be
    admitted (its current backlog, floored at one service time). *)

type limits = {
  max_queue : int;  (** shed when this many jobs are already queued *)
  max_sojourn_us : int;  (** shed when the backlog exceeds this wait *)
}

type admit = Admitted | Shed of pushback

val create : Engine.t -> service_time_us:int -> t

val service_time_us : t -> int
(** The default per-job cost this station was created with. *)

val submit : ?cost:int -> t -> (unit -> unit) -> unit
(** Enqueue a job; it runs when the station reaches it. [cost] overrides the
    default service time for this job. Never sheds. *)

val try_submit : ?cost:int -> t -> (unit -> unit) -> admit
(** Like {!submit}, but consults the installed {!limits} first and sheds
    (without enqueueing) when the queue depth or projected sojourn exceeds
    them. Without limits installed this is exactly {!submit}. *)

val set_limits : t -> limits option -> unit
(** Install or remove admission limits. Installing limits also turns on
    {!set_observe} sampling. Raises [Invalid_argument] on non-positive
    bounds. *)

val limits : t -> limits option

val set_slowdown : t -> int -> unit
(** Multiply every subsequent job's cost by [factor] (>= 1, or
    [Invalid_argument]). Factor 1 restores normal service. *)

val slowdown : t -> int

val amortized : full:int -> int -> int
(** [amortized ~full idx] is the service cost for the [idx]-th member of a
    batched network envelope (see {!Net.post}): the head ([idx = 0]) pays
    [full], later members pay [full / 4] rounded up — one envelope is parsed
    and dispatched once, so its tail messages ride the warm path. *)

val busy_us : t -> int
(** Total busy time accumulated, for utilization reporting. *)

val jobs : t -> int

val queue_depth : t -> int
(** Jobs currently queued or in service (scheduled but not yet run). *)

val backlog_us : t -> int
(** The wait a new arrival would face before service — how far the
    station's busy horizon runs ahead of the simulated clock. *)

val shed : t -> int
(** Arrivals rejected by {!try_submit} since creation. *)

val set_observe : t -> bool -> unit
(** Sample queue depth and sojourn-at-arrival into the recorders below on
    every submit. Off by default (zero overhead); turned on automatically
    when limits are installed. *)

val queue_depths : t -> Stats.Recorder.t
(** Queue depth observed at each arrival (only while observing). *)

val sojourns : t -> Stats.Recorder.t
(** Backlog (µs) observed at each arrival (only while observing). *)
