(** Single-threaded service station (M/D/1-style queueing).

    Models the CPU of a single-threaded server process: each submitted job
    occupies the station for a fixed service time; jobs queue FIFO. Used by
    the saturation-throughput experiments (Fig. 6, §7.4), where the
    interesting behaviour is the knee of the throughput curve, not absolute
    speed. A zero service time degenerates to immediate execution. *)

type t

val create : Engine.t -> service_time_us:int -> t

val submit : ?cost:int -> t -> (unit -> unit) -> unit
(** Enqueue a job; it runs when the station reaches it. [cost] overrides the
    default service time for this job. *)

val busy_us : t -> int
(** Total busy time accumulated, for utilization reporting. *)

val jobs : t -> int
