(** Named site topologies shared by every protocol's deployment config.

    The paper's two testbeds — the three-region Spanner deployment (§6.1)
    and the five-region Gryff deployment (§7.2, Table 2) — used to be
    duplicated as literal RTT matrices inside [Spanner.Config] and
    [Gryff.Config]. They live here once; configs consume a {!deployment}
    and keep only protocol-specific knobs. *)

type deployment = {
  name : string;
  site_names : string array;  (** may be shorter than the matrix (see {!site_name}) *)
  rtt_ms : float array array;  (** symmetric; diagonal = in-DC RTT *)
}

val wan3 : deployment
(** CA / VA / IR: CA-VA 62 ms, CA-IR 136 ms, VA-IR 68 ms, 0.2 ms in-DC. *)

val wan5 : deployment
(** CA / VA / IR / OR / JP with Table 2's round-trip times. *)

val single_dc : n:int -> deployment
(** [n] sites all 0.2 ms apart (including the diagonal). *)

val n_sites : deployment -> int

val site_name : deployment -> int -> string
(** Region name when known, else ["site<i>"]. *)

val by_name : string -> deployment option
(** Look up a named WAN deployment (["wan3"], ["wan5"]). *)
