type t = Random.State.t

let make seed = Random.State.make [| seed; 0x5f5e_1007; seed lxor 0x2545_f491 |]

let split t = Random.State.split t

let int t n = Random.State.int t n

let int64 t n = Random.State.int64 t n

let uniform t = Random.State.float t 1.0

let float t x = Random.State.float t x

let bool t p = Random.State.float t 1.0 < p

let exponential t ~mean =
  (* Inverse-CDF sampling; guard against log 0. *)
  let u = 1.0 -. Random.State.float t 1.0 in
  -.mean *. log u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
