(** Array-backed binary min-heap.

    Used as the event queue of {!Engine}; generic so tests can exercise it
    directly and other components (e.g. timer wheels) can reuse it. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (smallest first). *)

val add : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the smallest element, if any. *)

val peek : 'a t -> 'a option

val size : 'a t -> int

val is_empty : 'a t -> bool

val clear : 'a t -> unit
