(* Background durable-log scrubbing.

   A recurring engine event walks the stores registered with a fault
   control block, one store per period, and submits the verification work
   to a Station so the scan competes for the same simulated CPU as real
   requests. A flagged log gets an Obs.Trace Repair instant and its
   registered repairer invoked — surfacing latent corruption during idle
   time instead of at the moment recovery needs the entry.

   The scrubber draws no randomness and only runs when a fault control is
   armed, so fault-free seeded schedules are untouched. *)

type stats = {
  mutable passes : int;  (* store scans completed *)
  mutable entries : int;  (* log entries verified *)
  mutable flagged : int;  (* logs that failed verification *)
}

let start engine ~station ~ctl ?(tracer = Obs.Trace.disabled) ~period_us
    ~until_us () =
  let st = { passes = 0; entries = 0; flagged = 0 } in
  let cursor = ref 0 in
  let scan_next () =
    match Durable.Faults.stores ctl with
    | [] -> ()
    | stores ->
      let t = List.nth stores (!cursor mod List.length stores) in
      incr cursor;
      Station.submit station (fun () ->
          let scanned, flagged =
            Durable.scrub t ~on_flag:(fun v ->
                Obs.Trace.instant tracer ~kind:Obs.Trace.Repair
                  ~site:(Durable.site t)
                  ~name:
                    (Printf.sprintf "scrub %s/%d: %s" (Durable.name t)
                       (Durable.site t) (Durable.verified_name v))
                  ~ts:(Engine.now engine))
          in
          st.passes <- st.passes + 1;
          st.entries <- st.entries + scanned;
          st.flagged <- st.flagged + flagged)
  in
  let rec tick () =
    if Engine.now engine < until_us then begin
      scan_next ();
      Engine.schedule ~kind:"scrub" engine ~after:period_us tick
    end
  in
  Engine.schedule ~kind:"scrub" engine ~after:period_us tick;
  st
