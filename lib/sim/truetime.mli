(** TrueTime-style interval clock (Spanner §2, Corbett et al. 2013).

    [now] returns an interval guaranteed to contain "absolute" time — here,
    the simulator clock — with a configurable error bound ε. The evaluation
    uses ε = 10 ms, the p99.9 value Spanner reports in practice. *)

type t

type interval = { earliest : int; latest : int }

val create : Engine.t -> epsilon_us:int -> t

val now : t -> interval
(** [{earliest; latest}] = [\[clock - ε, clock + ε\]]. *)

val epsilon : t -> int

val after : t -> int -> bool
(** [after t ts] is [true] once [ts] is definitely in the past
    ([ts < now.earliest]) — the commit-wait test. *)
