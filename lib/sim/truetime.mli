(** TrueTime-style interval clock (Spanner §2, Corbett et al. 2013).

    [now] returns an interval guaranteed to contain "absolute" time — here,
    the simulator clock — with a configurable error bound ε. The evaluation
    uses ε = 10 ms, the p99.9 value Spanner reports in practice.

    ε may change during a run ({!set_epsilon} — clock-daemon degradation /
    chaos injection). Since the simulator clock {e is} absolute time, any
    ε ≥ 0 keeps the containment invariant; waiters must nevertheless re-check
    {!after} when they wake rather than pre-computing a sleep from a stale ε
    (see [Spanner.Protocol.wait_truetime]). *)

type t

type interval = { earliest : int; latest : int }

val create : Engine.t -> epsilon_us:int -> t

val now : t -> interval
(** [{earliest; latest}] = [\[clock - ε, clock + ε\]]. *)

val epsilon : t -> int

val set_epsilon : t -> int -> unit
(** Change the uncertainty bound from this instant on. *)

val after : t -> int -> bool
(** [after t ts] is [true] once [ts] is definitely in the past
    ([ts < now.earliest]) — the commit-wait test. *)
