type t = {
  engine : Engine.t;
  service_time_us : int;
  mutable busy_until : int;
  mutable busy_total : int;
  mutable n_jobs : int;
}

let create engine ~service_time_us =
  { engine; service_time_us; busy_until = 0; busy_total = 0; n_jobs = 0 }

let submit ?cost t job =
  let cost = match cost with None -> t.service_time_us | Some c -> c in
  t.n_jobs <- t.n_jobs + 1;
  if cost = 0 then job ()
  else begin
    let now = Engine.now t.engine in
    let start = if t.busy_until > now then t.busy_until else now in
    let finish = start + cost in
    t.busy_until <- finish;
    t.busy_total <- t.busy_total + cost;
    Engine.schedule_at ~kind:"station.job" t.engine ~at:finish job
  end

let busy_us t = t.busy_total

let jobs t = t.n_jobs
