type t = {
  engine : Engine.t;
  service_time_us : int;
  mutable busy_until : int;
  mutable busy_total : int;
  mutable n_jobs : int;
}

let create engine ~service_time_us =
  { engine; service_time_us; busy_until = 0; busy_total = 0; n_jobs = 0 }

let service_time_us t = t.service_time_us

let submit ?cost t job =
  let cost = match cost with None -> t.service_time_us | Some c -> c in
  t.n_jobs <- t.n_jobs + 1;
  if cost = 0 then job ()
  else begin
    let now = Engine.now t.engine in
    let start = if t.busy_until > now then t.busy_until else now in
    let finish = start + cost in
    t.busy_until <- finish;
    t.busy_total <- t.busy_total + cost;
    Engine.schedule_at ~kind:"station.job" t.engine ~at:finish job
  end

(* Batched-envelope amortization: the head member of an envelope pays the
   full service cost; later members share the already-warm parse/dispatch
   path and pay a quarter (rounded up, so they never become free). *)
let amortized ~full idx = if idx <= 0 then full else (full + 3) / 4

let busy_us t = t.busy_total

let jobs t = t.n_jobs
