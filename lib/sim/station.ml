type pushback = { retry_after_us : int }

type limits = { max_queue : int; max_sojourn_us : int }

type admit = Admitted | Shed of pushback

type t = {
  engine : Engine.t;
  service_time_us : int;
  mutable busy_until : int;
  mutable busy_total : int;
  mutable n_jobs : int;
  mutable n_queued : int;
  mutable slowdown : int;
  mutable limits : limits option;
  mutable observe : bool;
  mutable n_shed : int;
  queue_depths : Stats.Recorder.t;
  sojourns : Stats.Recorder.t;
}

let create engine ~service_time_us =
  {
    engine;
    service_time_us;
    busy_until = 0;
    busy_total = 0;
    n_jobs = 0;
    n_queued = 0;
    slowdown = 1;
    limits = None;
    observe = false;
    n_shed = 0;
    queue_depths = Stats.Recorder.create ();
    sojourns = Stats.Recorder.create ();
  }

let service_time_us t = t.service_time_us

let set_slowdown t factor =
  if factor < 1 then invalid_arg "Station.set_slowdown: factor must be >= 1";
  t.slowdown <- factor

let slowdown t = t.slowdown

let set_limits t limits =
  (match limits with
  | Some l ->
    if l.max_queue < 1 then
      invalid_arg "Station.set_limits: max_queue must be positive";
    if l.max_sojourn_us < 1 then
      invalid_arg "Station.set_limits: max_sojourn_us must be positive";
    t.observe <- true
  | None -> ());
  t.limits <- limits

let limits t = t.limits

let set_observe t b = t.observe <- b

(* The backlog a new arrival would sit behind: how far [busy_until] runs
   ahead of the clock. With a deterministic per-job cost this is exactly the
   arrival's sojourn-before-service. *)
let backlog_us t =
  let now = Engine.now t.engine in
  if t.busy_until > now then t.busy_until - now else 0

let queue_depth t = t.n_queued

let submit ?cost t job =
  let cost = match cost with None -> t.service_time_us | Some c -> c in
  let cost = cost * t.slowdown in
  t.n_jobs <- t.n_jobs + 1;
  if t.observe then begin
    Stats.Recorder.add t.queue_depths t.n_queued;
    Stats.Recorder.add t.sojourns (backlog_us t)
  end;
  if cost = 0 then job ()
  else begin
    let now = Engine.now t.engine in
    let start = if t.busy_until > now then t.busy_until else now in
    let finish = start + cost in
    t.busy_until <- finish;
    t.busy_total <- t.busy_total + cost;
    t.n_queued <- t.n_queued + 1;
    Engine.schedule_at ~kind:"station.job" t.engine ~at:finish (fun () ->
        t.n_queued <- t.n_queued - 1;
        job ())
  end

let try_submit ?cost t job =
  match t.limits with
  | None ->
    submit ?cost t job;
    Admitted
  | Some l ->
    let backlog = backlog_us t in
    if t.n_queued >= l.max_queue || backlog > l.max_sojourn_us then begin
      t.n_shed <- t.n_shed + 1;
      (* Suggest waiting out the backlog: by then the queue has drained to
         empty if no new work arrived — the server's honest estimate. *)
      Shed { retry_after_us = max t.service_time_us backlog }
    end
    else begin
      submit ?cost t job;
      Admitted
    end

(* Batched-envelope amortization: the head member of an envelope pays the
   full service cost; later members share the already-warm parse/dispatch
   path and pay a quarter (rounded up, so they never become free). *)
let amortized ~full idx = if idx <= 0 then full else (full + 3) / 4

let busy_us t = t.busy_total

let jobs t = t.n_jobs

let shed t = t.n_shed

let queue_depths t = t.queue_depths

let sojourns t = t.sojourns
