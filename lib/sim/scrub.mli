(** Background durable-log scrubbing.

    Walks the stores registered with a {!Durable.Faults} control block, one
    per period, verifying every log frame on a {!Station} (so the scan
    costs simulated CPU) and invoking each flagged log's registered
    repairer — latent corruption surfaces during idle time instead of at
    the moment recovery needs the entry. Draws no randomness; a run
    without an armed control never starts one, so fault-free schedules
    stay byte-identical. *)

type stats = {
  mutable passes : int;  (** store scans completed *)
  mutable entries : int;  (** log entries verified *)
  mutable flagged : int;  (** logs that failed verification *)
}

val start :
  Engine.t ->
  station:Station.t ->
  ctl:Durable.Faults.ctl ->
  ?tracer:Obs.Trace.t ->
  period_us:int ->
  until_us:int ->
  unit ->
  stats
(** Schedule a scan every [period_us] until [until_us]; each scan verifies
    one store (round-robin) and emits an [Obs.Trace.Repair] instant per
    flagged log. *)
