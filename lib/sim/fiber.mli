(** Direct-style coroutines over the simulator, via OCaml 5 effects.

    Protocol code is continuation-passing (every step is an event); fibers
    let {e client/driver} code read sequentially instead:

    {[
      Sim.Fiber.spawn (fun () ->
          let r1 = Sim.Fiber.await (fun k -> Client.ro c ~keys k) in
          Sim.Fiber.sleep engine 5_000;
          let r2 = Sim.Fiber.await (fun k -> Client.ro c ~keys k) in
          ...)
    ]}

    A fiber suspends at {!await}/{!sleep} and resumes when the underlying
    callback fires on the simulated clock. Continuations are one-shot: the
    callback must be invoked exactly once (invoking twice raises). *)

val spawn : (unit -> unit) -> unit
(** Run a fiber body now (synchronously until its first suspension). *)

val await : (('a -> unit) -> unit) -> 'a
(** [await start] calls [start k] and suspends until [k v] is invoked;
    evaluates to [v]. Only valid inside a fiber. *)

val sleep : Engine.t -> int -> unit
(** Suspend for the given number of simulated microseconds. *)

(** {!await} and {!sleep} outside {!spawn} raise [Effect.Unhandled]. *)
