(** Simulated wide-area network between sites, with a per-link fault model.

    Built from a (symmetric) round-trip-time matrix in milliseconds;
    one message delivery takes half the RTT, optionally inflated by
    multiplicative jitter. Local delivery ([src = dst]) still pays the
    diagonal RTT (the paper's testbeds report ~0.2 ms in-DC).

    Every delivery consults one per-directed-link fault predicate: site
    crashes, asymmetric partitions (a blocked [src -> dst] pair), and
    probabilistic loss drop the message (charged to per-cause counters);
    duplication delivers the handler twice; latency spikes and
    reorder-by-extra-delay stretch the sampled delay. A run with no armed
    faults consumes exactly the same RNG stream as the fault-free network,
    so seeded experiments are unaffected by the fault machinery. *)

type site = int

type t

(** Why a message was dropped — crash of either endpoint, a severed link, or
    probabilistic loss, in that precedence order. *)
type drop_cause = Crash | Partition | Loss

val create :
  Engine.t -> rng:Rng.t -> rtt_ms:float array array -> ?jitter:float -> unit -> t
(** [jitter] (default 0.02) inflates each delivery by a uniform factor in
    [\[1, 1 + jitter)]. The matrix may be given as upper- or lower-triangular
    (zeros mirrored); the diagonal is the in-site RTT. *)

val n_sites : t -> int

val engine : t -> Engine.t
(** The engine deliveries are scheduled on (for components that keep timers
    alongside their network endpoints, e.g. failure detectors). *)

val base_one_way : t -> src:site -> dst:site -> int
(** Deterministic one-way delay (µs), before jitter. *)

val send : ?bytes:int -> t -> src:site -> dst:site -> (unit -> unit) -> unit
(** Deliver a message: schedule the handler after a sampled one-way delay,
    subject to the link's fault state. A dropped message never schedules its
    handler — there is no link-level retransmission, exactly like a severed
    TCP connection. *)

(** {2 Batching}

    Each directed link owns a message buffer. {!post} enqueues onto it; the
    buffer flushes into a single {e envelope} on a deadline ([batch_us]
    after the first enqueue), on a size cap ([batch_max] members), or — with
    [adaptive] — immediately whenever the link has no envelope in flight
    (and again the moment an in-flight envelope lands), which gives
    ping-pong traffic zero added latency while saturated links still
    coalesce.

    One envelope pays one fault classification (drop and duplication apply
    to the whole envelope, charged once to the usual per-cause counters),
    one delay sample, and one delivery event that runs the member handlers
    in posted order. Each handler receives its index within the envelope so
    the destination can amortize per-message service cost (see
    {!Station.amortized}). On the wire an envelope costs
    {!envelope_header_bytes} plus the sum of its members' bytes; {!send}
    and un-batched {!post} charge exactly the message's bytes.

    With no policy installed (the default), {!post} routes through {!send}
    — same RNG draws, same schedule order — so seeded runs with batching
    off are byte-identical to the pre-batching network. *)

type policy = {
  batch_us : int;  (** flush deadline: first enqueue arms a timer this far out *)
  batch_max : int;  (** flush when this many messages are buffered *)
  adaptive : bool;
      (** flush immediately while the link has no envelope in flight, and
          again as soon as an in-flight envelope lands *)
}

val envelope_header_bytes : int
(** Fixed framing cost added to every flushed envelope. *)

val set_batching : t -> policy option -> unit
(** Install or remove the batching policy. Raises [Invalid_argument] if
    [batch_us] or [batch_max] is non-positive. *)

val batching : t -> policy option

val post : ?bytes:int -> t -> src:site -> dst:site -> (int -> unit) -> unit
(** Batched counterpart of {!send}. The handler receives the message's index
    within its delivered envelope ([0] for the first member; always [0] when
    batching is off). Messages still buffered when the simulation drains are
    lost, like any in-flight message. *)

(** {3 Batch accounting} — all zero unless a policy was installed. *)

val batch_envelopes : t -> int
(** Envelopes flushed (delivered or dropped; duplicates not counted). *)

val batch_members : t -> int
(** Total messages carried by flushed envelopes. *)

val batch_flush_deadline : t -> int
val batch_flush_size : t -> int
val batch_flush_idle : t -> int
val batch_max_members : t -> int
val batch_sizes : t -> Stats.Recorder.t
(** Members-per-envelope distribution across all flushed envelopes. *)

(** {2 Tracing}

    With a live tracer installed every delivery records a [Net_hop] span on
    the destination site, parented to the sender's ambient span, and the
    delivery handler runs with that hop as the ambient span — so spans
    opened inside the handler chain to the hop that carried the message.
    Dropped messages record an instant marker instead. With the default
    [Obs.Trace.disabled] sink, {!send} is byte-identical to the untraced
    network (same RNG draws, same schedule, no allocation). *)

val set_tracer : t -> Obs.Trace.t -> unit
val tracer : t -> Obs.Trace.t

val set_delay_perturb : t -> (unit -> int) option -> unit
(** Install (or clear) a delay-perturbation hook for schedule exploration.
    When set, every sampled delivery delay adds the hook's extra
    microseconds (negative returns are clamped to 0). The hook must keep
    its own deterministic state — it is called instead of drawing from the
    network RNG, so arming it never shifts the fault model's random
    stream, and [None] (the default) leaves delays byte-identical. *)

val messages_sent : t -> int
val bytes_sent : t -> int
val rtt_ms : t -> src:site -> dst:site -> float

(** {2 Crash failures} *)

val set_down : t -> site -> unit
(** Crash a site: every message to or from it is silently dropped until
    {!set_up}. Quorum protocols should ride out up to f such crashes.
    Implemented as the crash layer of the per-link fault predicate. *)

val set_up : t -> site -> unit

val is_down : t -> site -> bool

(** {2 Per-link faults}

    All faults are per {e directed} link, so asymmetric failures (A hears B
    but not vice versa) are expressible. Probabilities must be in [\[0, 1)]. *)

val block_link : t -> src:site -> dst:site -> unit
(** Sever one direction of a link (partition building block). *)

val unblock_link : t -> src:site -> dst:site -> unit

val link_blocked : t -> src:site -> dst:site -> bool

val partition : t -> site list -> site list -> unit
(** [partition t a b] severs both directions between every pair in [a] × [b]
    (sites absent from both lists keep full connectivity — a partial,
    "bridge" partition). *)

val heal_partitions : t -> unit
(** Unblock every link. Does not touch crashes or probabilistic faults. *)

val set_loss : t -> src:site -> dst:site -> float -> unit
(** Drop each message on the link with the given probability. *)

val set_dup : t -> src:site -> dst:site -> float -> unit
(** Deliver each message twice with the given probability (the duplicate
    samples its own delay, so it may arrive before the original). Only
    protocols with idempotent handlers should be audited under duplication. *)

val set_extra_delay : t -> src:site -> dst:site -> int -> unit
(** Latency spike: add a fixed extra delay (µs) to every delivery. *)

val set_reorder : t -> src:site -> dst:site -> prob:float -> max_extra_us:int -> unit
(** Bounded reordering: with probability [prob], a message takes a uniform
    extra delay in [\[1, max_extra_us\]], letting later sends overtake it. *)

val clear_link_faults : t -> unit
(** Reset loss, duplication, extra delay, and reordering on every link.
    Partitions ({!heal_partitions}) and crashes ({!set_up}) are separate. *)

(** {2 Fault counters} *)

val messages_dropped : t -> int
(** Total drops, all causes — the pre-fault-model counter, preserved. *)

val dropped_crash : t -> int
val dropped_partition : t -> int
val dropped_loss : t -> int
val messages_duplicated : t -> int
val messages_delayed : t -> int
(** Deliveries that took fault-injected extra delay (spike or reorder). *)
