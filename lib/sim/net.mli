(** Simulated wide-area network between sites.

    Built from a (symmetric) round-trip-time matrix in milliseconds;
    one message delivery takes half the RTT, optionally inflated by
    multiplicative jitter. Local delivery ([src = dst]) still pays the
    diagonal RTT (the paper's testbeds report ~0.2 ms in-DC). *)

type site = int

type t

val create :
  Engine.t -> rng:Rng.t -> rtt_ms:float array array -> ?jitter:float -> unit -> t
(** [jitter] (default 0.02) inflates each delivery by a uniform factor in
    [\[1, 1 + jitter)]. The matrix may be given as upper- or lower-triangular
    (zeros mirrored); the diagonal is the in-site RTT. *)

val n_sites : t -> int

val base_one_way : t -> src:site -> dst:site -> int
(** Deterministic one-way delay (µs), before jitter. *)

val send : ?bytes:int -> t -> src:site -> dst:site -> (unit -> unit) -> unit
(** Deliver a message: schedule the handler after a sampled one-way delay. *)

val messages_sent : t -> int
val bytes_sent : t -> int
val rtt_ms : t -> src:site -> dst:site -> float

(** {2 Failure injection} *)

val set_down : t -> site -> unit
(** Crash a site: every message to or from it is silently dropped until
    {!set_up}. Quorum protocols should ride out up to f such crashes. *)

val set_up : t -> site -> unit

val is_down : t -> site -> bool

val messages_dropped : t -> int
