type t = { engine : Engine.t; mutable epsilon_us : int }

type interval = { earliest : int; latest : int }

let create engine ~epsilon_us = { engine; epsilon_us }

let now t =
  let c = Engine.now t.engine in
  { earliest = c - t.epsilon_us; latest = c + t.epsilon_us }

let epsilon t = t.epsilon_us

let set_epsilon t epsilon_us =
  if epsilon_us < 0 then invalid_arg "Truetime.set_epsilon: negative epsilon";
  t.epsilon_us <- epsilon_us

let after t ts = ts < (now t).earliest
