type t = { engine : Engine.t; epsilon_us : int }

type interval = { earliest : int; latest : int }

let create engine ~epsilon_us = { engine; epsilon_us }

let now t =
  let c = Engine.now t.engine in
  { earliest = c - t.epsilon_us; latest = c + t.epsilon_us }

let epsilon t = t.epsilon_us

let after t ts = ts < (now t).earliest
