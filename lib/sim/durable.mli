(** Per-site durable storage: the state a process recovers with.

    The simulator keeps every OCaml value alive across a {!Net.set_down} /
    {!Net.set_up} cycle, so "crash" by itself loses nothing. This module is
    the discipline boundary that makes recovery meaningful: a protocol's
    recovery path may consult only what it explicitly placed in a [Durable.t]
    (its replicated log, its view number), and must treat everything else —
    lock tables, prepared-transaction maps, in-flight continuations — as
    gone. Writes are synchronous (the simulated fsync cost is the caller's
    to model, e.g. via {!Station}); the store counts appends and bytes so
    experiments can report durable-write traffic. *)

type t

val create : site:int -> name:string -> t
(** One store per (site, role), e.g. one replication log per group member. *)

val site : t -> int
val name : t -> string

(** {2 Integer registers} (view numbers, commit indices) *)

val set_int : t -> string -> int -> unit

val get_int : t -> string -> default:int -> int

(** {2 Append-only logs}

    A log lives inside a store and supports append, random read, and
    truncation (used when a view change installs a shorter authoritative
    log). *)

type 'a log

val log : t -> 'a log
(** A fresh log backed by [t]. *)

val append : 'a log -> ?bytes:int -> 'a -> int
(** Append an entry, charging [bytes] (default 64) to the store; returns the
    entry's index. *)

val get : 'a log -> int -> 'a

val length : 'a log -> int

val truncate : 'a log -> int -> unit
(** [truncate l n] drops every entry at index >= [n]. *)

val to_list : 'a log -> 'a list
(** Entries in append order. *)

val replace : 'a log -> 'a list -> unit
(** Atomically install a new contents (truncate-to-zero + append all),
    charging bytes for the installed entries. *)

(** {2 Accounting} *)

val appends : t -> int
val bytes_written : t -> int
