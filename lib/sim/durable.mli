(** Per-site durable storage: the state a process recovers with.

    The simulator keeps every OCaml value alive across a {!Net.set_down} /
    {!Net.set_up} cycle, so "crash" by itself loses nothing. This module is
    the discipline boundary that makes recovery meaningful: a protocol's
    recovery path may consult only what it explicitly placed in a [Durable.t]
    (its replicated log, its view number), and must treat everything else —
    lock tables, prepared-transaction maps, in-flight continuations — as
    gone. Writes are synchronous (the simulated fsync cost is the caller's
    to model, e.g. via {!Station}); the store counts appends and bytes so
    experiments can report durable-write traffic.

    Durability is also a fault surface. Every log entry is framed with a
    checksum, a slot index, a sequence number and a store epoch, and the
    seeded fault model in {!Faults} damages exactly what a real disk does at
    crash time: tears the un-fsynced tail, misdirects a write into the wrong
    slot, resurfaces a stale truncated sector, loses the last write to an
    integer register. {!read_verified} classifies the damage so recovery
    paths can repair (truncate a torn suffix, refetch a corrupt prefix from
    a peer) instead of silently replaying garbage. *)

type t

val create : site:int -> name:string -> t
(** One store per (site, role), e.g. one replication log per group member.
    If a {!Faults} control block is installed, the store registers with it
    (fault drivers install the control before building the cluster). *)

val site : t -> int
val name : t -> string

(** {2 Integer registers} (view numbers, commit indices) *)

val set_int : t -> string -> int -> unit

val get_int : t -> string -> default:int -> int

(** {2 Append-only logs}

    A log lives inside a store and supports append, O(1) random read, and
    truncation (used when a view change installs a shorter authoritative
    log). Entries are framed (checksum + slot + sequence + epoch) so
    {!read_verified} can detect storage damage. *)

type 'a log

val log : t -> 'a log
(** A fresh log backed by [t]. *)

val append : 'a log -> ?bytes:int -> 'a -> int
(** Append an entry, charging [bytes] (default 64) to the store; returns the
    entry's index. *)

val get : 'a log -> int -> 'a

val length : 'a log -> int

val journalled_length : 'a log -> int
(** The length the journal claims (equal to {!length} on an undamaged log;
    greater after a torn tail, smaller after a stale-sector resurface). *)

val truncate : 'a log -> int -> unit
(** [truncate l n] drops every entry at index >= [n]. Negative [n] is an
    [Invalid_argument], matching {!get}'s bounds discipline. *)

val to_list : 'a log -> 'a list
(** Entries in append order. *)

val replace : 'a log -> 'a list -> unit
(** Atomically install a new contents (truncate-to-zero + append all),
    charging bytes for the installed entries. *)

(** {2 Integrity} *)

type verified =
  | Ok  (** every frame checks out and the length matches the journal *)
  | Torn_tail of int
      (** the log ends at this length, below the journalled length: the
          un-fsynced tail was lost at a crash *)
  | Corrupt of int
      (** the frame at this index fails verification (misdirected write,
          resurfaced stale sector): entries from here on are suspect *)

val verified_name : verified -> string

val read_verified : 'a log -> verified
(** Verify every frame and the journalled length. Always [Ok] when the
    store was built under an integrity-disabled {!Faults} control — the
    "no checksums" configuration the audit control must catch. *)

val verified_prefix : 'a log -> 'a list
(** The entries before the first detected problem, in append order. *)

val repair_torn_tail : 'a log -> unit
(** Accept the surviving prefix as authoritative: re-journal the current
    length (the torn suffix is gone for good). *)

val set_repairer : 'a log -> (verified -> unit) -> unit
(** Called by the scrub pass when verification flags this log; the owner
    wires its repair policy (truncate / state-transfer from a peer). *)

val scrub : t -> on_flag:(verified -> unit) -> int * int
(** Verify every log in the store, invoking [on_flag] and the registered
    repairer for each failure. Returns [(entries scanned, logs flagged)]. *)

(** {2 Accounting} *)

val appends : t -> int
val bytes_written : t -> int

(** {2 Seeded storage-fault injection}

    A control block owns its own seeded stream (independent of every
    protocol RNG) and a registry of the stores created while it was
    installed. [crash_site] is the integration point for the chaos layer:
    wherever a nemesis crashes a site, the same event damages the site's
    durable state. All draws happen in a fixed order over stores in
    creation order, so fault placement is byte-identical per seed. *)

module Faults : sig
  type spec = {
    tear_prob : float;  (** P(crash tears the un-fsynced tail) *)
    max_tear : int;  (** max appends lost to one tear *)
    corrupt_prob : float;  (** P(crash misdirects a write mid-log) *)
    stale_prob : float;  (** P(crash resurfaces truncated entries) *)
    max_stale : int;  (** max resurfaced entries per crash *)
    lost_int_prob : float;  (** P(register loses its last write), per key *)
  }

  type stats = {
    mutable fs_torn : int;  (** entries dropped by tail tears *)
    mutable fs_corrupt : int;  (** misdirected-write corruptions *)
    mutable fs_resurfaced : int;  (** stale entries resurfaced *)
    mutable fs_lost_ints : int;  (** register writes lost *)
    mutable fs_crashes : int;  (** crash events that hit ≥1 store *)
  }

  type ctl

  val default_spec : spec

  val install : ?spec:spec -> ?integrity:bool -> seed:int -> unit -> ctl
  (** Install the ambient control: stores created from now on register with
      it. [integrity:false] builds stores whose {!read_verified} is blind
      (always [Ok]) — the deliberately broken control configuration. *)

  val retire : ctl -> unit
  (** Disarm and uninstall. Already-registered stores keep their (disarmed)
      association, so post-run sweeps still see the integrity setting. *)

  val crash_site : ctl -> int -> unit
  (** Damage every registered store at [site] per the spec: tear log tails,
      misdirect writes, resurface stale sectors, lose register writes. *)

  val stats : ctl -> stats

  val stores : ctl -> t list
  (** Registered stores in creation order (the scrub pass walks these). *)

  val integrity : ctl -> bool
end
