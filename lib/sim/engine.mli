(** Deterministic discrete-event simulation engine.

    Time is an [int] count of microseconds since simulation start. Events
    scheduled for the same instant fire in scheduling order (FIFO), which
    makes whole-simulation runs reproducible. *)

type t

val create : unit -> t

val now : t -> int
(** Current simulated time in microseconds. *)

val schedule : t -> after:int -> (unit -> unit) -> unit
(** [schedule t ~after f] runs [f] [after] microseconds from now.
    [after < 0] is clamped to [0]. *)

val schedule_at : t -> at:int -> (unit -> unit) -> unit
(** Absolute-time variant of {!schedule}. Times in the past fire "now". *)

val step : t -> bool
(** Execute the next event. [false] if the queue was empty. *)

val run : ?until:int -> ?max_events:int -> t -> unit
(** Drain the event queue. [until] stops the clock at an absolute time
    (events beyond it stay queued); [max_events] bounds work as a runaway
    guard. *)

val pending : t -> int
(** Number of queued events. *)

val executed : t -> int
(** Number of events executed so far. *)

(** {2 Time helpers} — all return microseconds. *)

val us : int -> int
val ms : float -> int
val sec : float -> int
val to_ms : int -> float
val to_sec : int -> float
