(** Deterministic discrete-event simulation engine.

    Time is an [int] count of microseconds since simulation start. Events
    scheduled for the same instant fire in scheduling order (FIFO), which
    makes whole-simulation runs reproducible. *)

type t

val create : unit -> t

val now : t -> int
(** Current simulated time in microseconds. *)

val schedule : ?kind:string -> t -> after:int -> (unit -> unit) -> unit
(** [schedule t ~after f] runs [f] [after] microseconds from now.
    [after < 0] is clamped to [0]. [kind] labels the event for
    {!profile}; it defaults to ["other"] and has no semantic effect. *)

val schedule_at : ?kind:string -> t -> at:int -> (unit -> unit) -> unit
(** Absolute-time variant of {!schedule}. Times in the past fire "now". *)

val step : t -> bool
(** Execute the next event. [false] if the queue was empty. *)

val run : ?until:int -> ?max_events:int -> t -> unit
(** Drain the event queue. [until] stops the clock at an absolute time
    (events beyond it stay queued); [max_events] bounds work as a runaway
    guard. *)

val set_tie_perturb : t -> (string -> int) option -> unit
(** Install (or clear) a same-timestamp tie-break perturbation hook for
    schedule exploration. When set, each event is assigned a priority by
    calling the hook with its [kind] at scheduling time, and the queue
    orders events by (time, priority, seq) instead of (time, seq): events
    at the same instant with distinct priorities fire in priority order,
    equal priorities keep FIFO order. [None] (the default) gives every
    event priority 0, which is byte-identical to the historical
    (time, seq) schedule — installing [Some (fun _ -> 0)] is likewise a
    no-op. The hook must be deterministic for replay to be exact; it
    affects only same-instant ordering, never times. *)

val pending : t -> int
(** Number of queued events. *)

val executed : t -> int
(** Number of events executed so far. *)

(** {2 Profiling}

    Host-side observation of the simulator itself: wall-clock time spent
    per event kind and periodic samples of the queue depth. Profiling
    reads [Sys.time] but never simulated state, so enabling it does not
    change a seeded run's schedule. Off by default and free when off
    (one bool check per event). *)

val enable_profiling : ?sample_queue_every:int -> t -> unit
(** Start attributing wall time to event kinds; sample the queue depth
    every [sample_queue_every] executed events (default 1024). *)

val profiling_enabled : t -> bool

val profile : t -> (string * int * float) list
(** [(kind, events_executed, wall_seconds)] rows, sorted by kind. *)

val queue_depths : t -> Stats.Recorder.t
(** Sampled event-queue depths (empty unless profiling is enabled). *)

(** {2 Time helpers} — all return microseconds. *)

val us : int -> int
val ms : float -> int
val sec : float -> int
val to_ms : int -> float
val to_sec : int -> float
