type t = {
  site : int;
  name : string;
  ints : (string, int) Hashtbl.t;
  mutable n_appends : int;
  mutable n_bytes : int;
}

let create ~site ~name =
  { site; name; ints = Hashtbl.create 8; n_appends = 0; n_bytes = 0 }

let site t = t.site

let name t = t.name

let set_int t key v = Hashtbl.replace t.ints key v

let get_int t key ~default =
  match Hashtbl.find_opt t.ints key with Some v -> v | None -> default

type 'a log = { owner : t; mutable entries : 'a list; mutable len : int }
(* Entries newest-first; reads are rare (recovery, catch-up), appends hot. *)

let log owner = { owner; entries = []; len = 0 }

let append l ?(bytes = 64) e =
  let idx = l.len in
  l.entries <- e :: l.entries;
  l.len <- l.len + 1;
  l.owner.n_appends <- l.owner.n_appends + 1;
  l.owner.n_bytes <- l.owner.n_bytes + bytes;
  idx

let length l = l.len

let get l i =
  if i < 0 || i >= l.len then invalid_arg "Durable.get: index out of bounds";
  List.nth l.entries (l.len - 1 - i)

let truncate l n =
  if n < l.len then begin
    let rec drop k es = if k = 0 then es else drop (k - 1) (List.tl es) in
    l.entries <- drop (l.len - n) l.entries;
    l.len <- max 0 n
  end

let to_list l = List.rev l.entries

let replace l es =
  truncate l 0;
  List.iter (fun e -> ignore (append l e)) es

let appends t = t.n_appends

let bytes_written t = t.n_bytes
