(* Per-site durable storage with a seeded fault model and an integrity
   layer.

   Logs are backed by a growable array of framed cells (payload + slot +
   sequence number + store epoch + checksum). [truncate] only moves the
   logical length and the journalled high-water mark; the physical cells
   stay behind, which is exactly the substrate the stale-sector fault
   resurfaces. [read_verified] checks every frame against its slot and
   checksum and compares the logical length against the journalled one,
   classifying damage as a torn tail or mid-log corruption.

   The fault model lives in [Faults]: a control block holds its own seeded
   stream, so arming it never perturbs the protocol RNGs, and a crash at a
   site draws torn-tail / misdirected-write / stale-sector / lost-register
   faults in a fixed order over the site's stores in creation order —
   byte-identical per seed. *)

type fspec = {
  tear_prob : float;
  max_tear : int;
  corrupt_prob : float;
  stale_prob : float;
  max_stale : int;
  lost_int_prob : float;
}

type fstats = {
  mutable fs_torn : int;
  mutable fs_corrupt : int;
  mutable fs_resurfaced : int;
  mutable fs_lost_ints : int;
  mutable fs_crashes : int;
}

type verified = Ok | Torn_tail of int | Corrupt of int

let verified_name = function
  | Ok -> "ok"
  | Torn_tail n -> Printf.sprintf "torn-tail@%d" n
  | Corrupt i -> Printf.sprintf "corrupt@%d" i

(* Per-log handle the store keeps so site-level operations (crash faults,
   scrubbing) can reach every log without knowing its payload type. *)
type hook = {
  h_crash : Rng.t -> fspec -> fstats -> unit;
  h_verify : unit -> verified;
  h_repair : verified -> unit;
  h_entries : unit -> int;
}

type t = {
  site : int;
  name : string;
  (* key -> (current, previous-or-None): the shadow value is what a
     lost-last-write fault reverts to at crash time. *)
  ints : (string, int * int option) Hashtbl.t;
  mutable n_appends : int;
  mutable n_bytes : int;
  mutable hooks : hook list; (* newest first *)
  mutable ctl : fctl option;
}

and fctl = {
  f_rng : Rng.t;
  f_spec : fspec;
  f_integrity : bool;
  f_stats : fstats;
  mutable f_armed : bool;
  mutable f_stores : t list; (* newest first *)
}

(* The ambient control block: stores created while one is installed
   register with it (the reason fault-injecting drivers install the
   control before building the cluster). *)
let ambient : fctl option ref = ref None

let create ~site ~name =
  let t =
    {
      site;
      name;
      ints = Hashtbl.create 8;
      n_appends = 0;
      n_bytes = 0;
      hooks = [];
      ctl = !ambient;
    }
  in
  (match t.ctl with Some c -> c.f_stores <- t :: c.f_stores | None -> ());
  t

let site t = t.site

let name t = t.name

let set_int t key v =
  let prev =
    match Hashtbl.find_opt t.ints key with
    | Some (cur, _) -> Some cur
    | None -> None
  in
  Hashtbl.replace t.ints key (v, prev)

let get_int t key ~default =
  match Hashtbl.find_opt t.ints key with Some (v, _) -> v | None -> default

(* ------------------------------------------------------------------ *)
(* Framed, growable-array logs                                         *)
(* ------------------------------------------------------------------ *)

type 'a cell = {
  c_payload : 'a;
  c_slot : int;  (* index the frame was written for *)
  c_seq : int;  (* store-lifetime append sequence number *)
  c_epoch : int;  (* log epoch at append time (bumped by truncation) *)
  c_sum : int;  (* checksum over payload + slot + seq + epoch *)
}

type 'a log = {
  owner : t;
  mutable cells : 'a cell array;
  mutable len : int;  (* logical length *)
  mutable phys : int;  (* physical high-water: slots ever written *)
  mutable hwm : int;  (* journalled length (the "superblock" record) *)
  mutable next_seq : int;
  mutable epoch : int;
  mutable repairer : (verified -> unit) option;
}

let checksum payload ~slot ~seq ~epoch =
  Hashtbl.hash_param 64 256 payload
  lxor (slot * 0x9e3779b1)
  lxor (seq * 0x85ebca6b)
  lxor (epoch * 0xc2b2ae35)

let length l = l.len

let journalled_length l = l.hwm

let read_verified l =
  let blind =
    match l.owner.ctl with Some c -> not c.f_integrity | None -> false
  in
  if blind then Ok
  else begin
    let n = min l.len l.hwm in
    let bad = ref (-1) in
    (try
       for i = 0 to n - 1 do
         let c = l.cells.(i) in
         if
           c.c_slot <> i
           || c.c_sum
              <> checksum c.c_payload ~slot:c.c_slot ~seq:c.c_seq
                   ~epoch:c.c_epoch
         then begin
           bad := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !bad >= 0 then Corrupt !bad
    else if l.len > l.hwm then
      (* resurfaced entries past the journalled length *)
      Corrupt l.hwm
    else if l.len < l.hwm then Torn_tail l.len
    else Ok
  end

let crash_log rng spec stats l =
  (* Draw order is fixed (tear, misdirect, resurface) so a seeded schedule
     replays byte for byte. *)
  if l.len > 0 && Rng.float rng 1.0 < spec.tear_prob then begin
    let k = min l.len (1 + Rng.int rng (min spec.max_tear l.len)) in
    l.len <- l.len - k;
    stats.fs_torn <- stats.fs_torn + k
  end;
  if l.len >= 2 && Rng.float rng 1.0 < spec.corrupt_prob then begin
    (* Misdirected write: a fully self-consistent frame lands in the wrong
       slot. The checksum verifies, the slot does not — and an integrity-
       disabled reader replays the wrong payload. *)
    let i = Rng.int rng l.len in
    let j = (i + 1 + Rng.int rng (l.len - 1)) mod l.len in
    let d = l.cells.(j) in
    l.cells.(i) <- { d with c_payload = d.c_payload };
    stats.fs_corrupt <- stats.fs_corrupt + 1
  end;
  if l.phys > l.len && Rng.float rng 1.0 < spec.stale_prob then begin
    let k = 1 + Rng.int rng (min spec.max_stale (l.phys - l.len)) in
    l.len <- l.len + k;
    stats.fs_resurfaced <- stats.fs_resurfaced + k
  end

let log owner =
  let l =
    {
      owner;
      cells = [||];
      len = 0;
      phys = 0;
      hwm = 0;
      next_seq = 0;
      epoch = 0;
      repairer = None;
    }
  in
  let hook =
    {
      h_crash = (fun rng spec stats -> crash_log rng spec stats l);
      h_verify = (fun () -> read_verified l);
      h_repair =
        (fun v -> match l.repairer with Some f -> f v | None -> ());
      h_entries = (fun () -> l.len);
    }
  in
  owner.hooks <- hook :: owner.hooks;
  l

let ensure l filler n =
  if Array.length l.cells < n then begin
    let cap = max 8 (max n (2 * Array.length l.cells)) in
    let a = Array.make cap filler in
    Array.blit l.cells 0 a 0 l.phys;
    l.cells <- a
  end

let append l ?(bytes = 64) e =
  let idx = l.len in
  let seq = l.next_seq in
  l.next_seq <- seq + 1;
  let c =
    {
      c_payload = e;
      c_slot = idx;
      c_seq = seq;
      c_epoch = l.epoch;
      c_sum = checksum e ~slot:idx ~seq ~epoch:l.epoch;
    }
  in
  ensure l c (idx + 1);
  l.cells.(idx) <- c;
  l.len <- idx + 1;
  if l.len > l.phys then l.phys <- l.len;
  l.hwm <- l.len;
  l.owner.n_appends <- l.owner.n_appends + 1;
  l.owner.n_bytes <- l.owner.n_bytes + bytes;
  idx

let get l i =
  if i < 0 || i >= l.len then invalid_arg "Durable.get: index out of bounds";
  l.cells.(i).c_payload

let truncate l n =
  if n < 0 then invalid_arg "Durable.truncate: negative length";
  if n < l.len then begin
    l.len <- n;
    l.hwm <- n;
    l.epoch <- l.epoch + 1
  end

let to_list l = List.init l.len (fun i -> l.cells.(i).c_payload)

let replace l es =
  truncate l 0;
  List.iter (fun e -> ignore (append l e)) es

let verified_prefix l =
  let k =
    match read_verified l with
    | Ok -> l.len
    | Torn_tail n -> n
    | Corrupt i -> min i l.len
  in
  List.init k (fun i -> l.cells.(i).c_payload)

let repair_torn_tail l =
  (* Accept the surviving prefix as authoritative: re-journal the length
     and bump the epoch so later appends are distinguishable. *)
  l.hwm <- l.len;
  l.epoch <- l.epoch + 1

let set_repairer l f = l.repairer <- Some f

let appends t = t.n_appends

let bytes_written t = t.n_bytes

let scrub t ~on_flag =
  let scanned = ref 0 and flagged = ref 0 in
  List.iter
    (fun h ->
      scanned := !scanned + h.h_entries ();
      match h.h_verify () with
      | Ok -> ()
      | v ->
        incr flagged;
        on_flag v;
        h.h_repair v)
    (List.rev t.hooks);
  (!scanned, !flagged)

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

module Faults = struct
  type spec = fspec = {
    tear_prob : float;
    max_tear : int;
    corrupt_prob : float;
    stale_prob : float;
    max_stale : int;
    lost_int_prob : float;
  }

  type stats = fstats = {
    mutable fs_torn : int;
    mutable fs_corrupt : int;
    mutable fs_resurfaced : int;
    mutable fs_lost_ints : int;
    mutable fs_crashes : int;
  }

  type ctl = fctl

  let default_spec =
    {
      tear_prob = 0.6;
      max_tear = 4;
      corrupt_prob = 0.3;
      stale_prob = 0.3;
      max_stale = 3;
      lost_int_prob = 0.1;
    }

  let install ?(spec = default_spec) ?(integrity = true) ~seed () =
    let c =
      {
        f_rng = Rng.make (0xd15c + seed);
        f_spec = spec;
        f_integrity = integrity;
        f_stats =
          {
            fs_torn = 0;
            fs_corrupt = 0;
            fs_resurfaced = 0;
            fs_lost_ints = 0;
            fs_crashes = 0;
          };
        f_armed = true;
        f_stores = [];
      }
    in
    ambient := Some c;
    c

  let retire c =
    c.f_armed <- false;
    match !ambient with
    | Some c' when c' == c -> ambient := None
    | _ -> ()

  let crash_ints c t =
    let regs =
      List.sort
        (fun (a, _) (b, _) -> compare a b)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.ints [])
    in
    List.iter
      (fun (key, (cur, prev)) ->
        if Rng.float c.f_rng 1.0 < c.f_spec.lost_int_prob then begin
          c.f_stats.fs_lost_ints <- c.f_stats.fs_lost_ints + 1;
          match prev with
          | Some p -> if p <> cur then Hashtbl.replace t.ints key (p, Some p)
          | None -> Hashtbl.remove t.ints key
        end)
      regs

  let crash_site c site =
    if c.f_armed then begin
      let hit = ref false in
      List.iter
        (fun t ->
          if t.site = site then begin
            hit := true;
            List.iter
              (fun h -> h.h_crash c.f_rng c.f_spec c.f_stats)
              (List.rev t.hooks);
            crash_ints c t
          end)
        (List.rev c.f_stores);
      if !hit then c.f_stats.fs_crashes <- c.f_stats.fs_crashes + 1
    end

  let stats c = c.f_stats

  let stores c = List.rev c.f_stores

  let integrity c = c.f_integrity
end
