type event = { time : int; seq : int; kind : string; action : unit -> unit }

type prof_cell = { mutable p_events : int; mutable p_wall : float }

type t = {
  mutable clock : int;
  mutable next_seq : int;
  mutable n_executed : int;
  queue : event Heap.t;
  (* Profiling is host-side observation only: it reads [Sys.time] and the
     queue size but never touches simulated time or event order, so
     enabling it cannot perturb a seeded run. *)
  mutable profiling : bool;
  mutable sample_every : int;
  profile : (string, prof_cell) Hashtbl.t;
  depths : Stats.Recorder.t;
}

let compare_event a b =
  if a.time <> b.time then compare a.time b.time else compare a.seq b.seq

let create () =
  {
    clock = 0;
    next_seq = 0;
    n_executed = 0;
    queue = Heap.create ~cmp:compare_event;
    profiling = false;
    sample_every = 1024;
    profile = Hashtbl.create 16;
    depths = Stats.Recorder.create ();
  }

let now t = t.clock

let schedule_at ?(kind = "other") t ~at action =
  let time = if at < t.clock then t.clock else at in
  Heap.add t.queue { time; seq = t.next_seq; kind; action };
  t.next_seq <- t.next_seq + 1

let schedule ?kind t ~after action =
  let after = if after < 0 then 0 else after in
  schedule_at ?kind t ~at:(t.clock + after) action

let enable_profiling ?(sample_queue_every = 1024) t =
  t.profiling <- true;
  t.sample_every <- max 1 sample_queue_every

let profiling_enabled t = t.profiling

let prof_cell t kind =
  match Hashtbl.find_opt t.profile kind with
  | Some c -> c
  | None ->
    let c = { p_events = 0; p_wall = 0.0 } in
    Hashtbl.add t.profile kind c;
    c

let profile t =
  Hashtbl.fold (fun k c acc -> (k, c.p_events, c.p_wall) :: acc) t.profile []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let queue_depths t = t.depths

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
    t.clock <- ev.time;
    t.n_executed <- t.n_executed + 1;
    if t.profiling then begin
      if t.n_executed mod t.sample_every = 0 then
        Stats.Recorder.add t.depths (Heap.size t.queue);
      let t0 = Sys.time () in
      ev.action ();
      let cell = prof_cell t ev.kind in
      cell.p_events <- cell.p_events + 1;
      cell.p_wall <- cell.p_wall +. (Sys.time () -. t0)
    end
    else ev.action ();
    true

let run ?until ?max_events t =
  let stop_time = match until with None -> max_int | Some u -> u in
  let budget = ref (match max_events with None -> max_int | Some m -> m) in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Heap.peek t.queue with
    | None -> continue := false
    | Some ev when ev.time > stop_time ->
      t.clock <- stop_time;
      continue := false
    | Some _ ->
      ignore (step t);
      decr budget
  done

let pending t = Heap.size t.queue

let executed t = t.n_executed

let us n = n

let ms f = int_of_float (f *. 1_000.0 +. 0.5)

let sec f = int_of_float (f *. 1_000_000.0 +. 0.5)

let to_ms n = float_of_int n /. 1_000.0

let to_sec n = float_of_int n /. 1_000_000.0
