type event = { time : int; seq : int; action : unit -> unit }

type t = {
  mutable clock : int;
  mutable next_seq : int;
  mutable n_executed : int;
  queue : event Heap.t;
}

let compare_event a b =
  if a.time <> b.time then compare a.time b.time else compare a.seq b.seq

let create () =
  { clock = 0; next_seq = 0; n_executed = 0; queue = Heap.create ~cmp:compare_event }

let now t = t.clock

let schedule_at t ~at action =
  let time = if at < t.clock then t.clock else at in
  Heap.add t.queue { time; seq = t.next_seq; action };
  t.next_seq <- t.next_seq + 1

let schedule t ~after action =
  let after = if after < 0 then 0 else after in
  schedule_at t ~at:(t.clock + after) action

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
    t.clock <- ev.time;
    t.n_executed <- t.n_executed + 1;
    ev.action ();
    true

let run ?until ?max_events t =
  let stop_time = match until with None -> max_int | Some u -> u in
  let budget = ref (match max_events with None -> max_int | Some m -> m) in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Heap.peek t.queue with
    | None -> continue := false
    | Some ev when ev.time > stop_time ->
      t.clock <- stop_time;
      continue := false
    | Some _ ->
      ignore (step t);
      decr budget
  done

let pending t = Heap.size t.queue

let executed t = t.n_executed

let us n = n

let ms f = int_of_float (f *. 1_000.0 +. 0.5)

let sec f = int_of_float (f *. 1_000_000.0 +. 0.5)

let to_ms n = float_of_int n /. 1_000.0

let to_sec n = float_of_int n /. 1_000_000.0
