type prof_cell = { mutable p_events : int; mutable p_wall : float }

(* The event queue is a binary min-heap over (time, seq) stored as four
   parallel flat arrays rather than an array of boxed event records. This
   is the simulator's hottest path — every message delivery is one push and
   one pop — and the flat layout makes both allocation-free in the steady
   state: pushes write into preallocated slots, pops compare unboxed ints,
   and no option or record is built per event. The ordering predicate and
   the sift algorithms are exactly those of the previous boxed heap, so a
   seeded run executes the identical schedule. *)
type t = {
  mutable clock : int;
  mutable next_seq : int;
  mutable n_executed : int;
  mutable ev_time : int array;
  mutable ev_prio : int array;
  mutable ev_seq : int array;
  mutable ev_kind : string array;
  mutable ev_action : (unit -> unit) array;
  mutable len : int;
  (* Tie-break perturbation hook for schedule exploration: when set, each
     scheduled event asks the callback for a priority keyed on its [kind];
     ordering becomes (time, prio, seq). When unset every event gets
     priority 0 and (time, 0, seq) degenerates to the historical
     (time, seq) FIFO order, so seeded runs without a hook installed
     execute byte-identical schedules. *)
  mutable tie_perturb : (string -> int) option;
  (* Profiling is host-side observation only: it reads [Sys.time] and the
     queue size but never touches simulated time or event order, so
     enabling it cannot perturb a seeded run. *)
  mutable profiling : bool;
  mutable sample_every : int;
  profile : (string, prof_cell) Hashtbl.t;
  depths : Stats.Recorder.t;
}

let no_op () = ()

let create () =
  {
    clock = 0;
    next_seq = 0;
    n_executed = 0;
    ev_time = Array.make 16 0;
    ev_prio = Array.make 16 0;
    ev_seq = Array.make 16 0;
    ev_kind = Array.make 16 "";
    ev_action = Array.make 16 no_op;
    len = 0;
    tie_perturb = None;
    profiling = false;
    sample_every = 1024;
    profile = Hashtbl.create 16;
    depths = Stats.Recorder.create ();
  }

let now t = t.clock

let grow t =
  let cap = Array.length t.ev_time in
  if t.len = cap then begin
    let ncap = cap * 2 in
    let time = Array.make ncap 0
    and prio = Array.make ncap 0
    and seq = Array.make ncap 0
    and kind = Array.make ncap ""
    and action = Array.make ncap no_op in
    Array.blit t.ev_time 0 time 0 t.len;
    Array.blit t.ev_prio 0 prio 0 t.len;
    Array.blit t.ev_seq 0 seq 0 t.len;
    Array.blit t.ev_kind 0 kind 0 t.len;
    Array.blit t.ev_action 0 action 0 t.len;
    t.ev_time <- time;
    t.ev_prio <- prio;
    t.ev_seq <- seq;
    t.ev_kind <- kind;
    t.ev_action <- action
  end

(* (time, prio, seq) lexicographic — prio is 0 for every event unless a
   tie-break perturbation hook is installed, in which case it reorders
   same-instant events; seq ties break FIFO among same-(time, prio)
   events, which is what makes runs reproducible. *)
let less t i j =
  t.ev_time.(i) < t.ev_time.(j)
  || (t.ev_time.(i) = t.ev_time.(j)
     && (t.ev_prio.(i) < t.ev_prio.(j)
        || (t.ev_prio.(i) = t.ev_prio.(j) && t.ev_seq.(i) < t.ev_seq.(j))))

let swap t i j =
  let ti = t.ev_time.(i) in
  t.ev_time.(i) <- t.ev_time.(j);
  t.ev_time.(j) <- ti;
  let pi = t.ev_prio.(i) in
  t.ev_prio.(i) <- t.ev_prio.(j);
  t.ev_prio.(j) <- pi;
  let si = t.ev_seq.(i) in
  t.ev_seq.(i) <- t.ev_seq.(j);
  t.ev_seq.(j) <- si;
  let ki = t.ev_kind.(i) in
  t.ev_kind.(i) <- t.ev_kind.(j);
  t.ev_kind.(j) <- ki;
  let ai = t.ev_action.(i) in
  t.ev_action.(i) <- t.ev_action.(j);
  t.ev_action.(j) <- ai

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.len && less t left !smallest then smallest := left;
  if right < t.len && less t right !smallest then smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let schedule_at ?(kind = "other") t ~at action =
  let time = if at < t.clock then t.clock else at in
  grow t;
  let i = t.len in
  t.ev_time.(i) <- time;
  t.ev_prio.(i) <-
    (match t.tie_perturb with None -> 0 | Some f -> f kind);
  t.ev_seq.(i) <- t.next_seq;
  t.ev_kind.(i) <- kind;
  t.ev_action.(i) <- action;
  t.len <- t.len + 1;
  t.next_seq <- t.next_seq + 1;
  sift_up t i

let schedule ?kind t ~after action =
  let after = if after < 0 then 0 else after in
  schedule_at ?kind t ~at:(t.clock + after) action

let set_tie_perturb t f = t.tie_perturb <- f

let enable_profiling ?(sample_queue_every = 1024) t =
  t.profiling <- true;
  t.sample_every <- max 1 sample_queue_every

let profiling_enabled t = t.profiling

let prof_cell t kind =
  match Hashtbl.find_opt t.profile kind with
  | Some c -> c
  | None ->
    let c = { p_events = 0; p_wall = 0.0 } in
    Hashtbl.add t.profile kind c;
    c

let profile t =
  Hashtbl.fold (fun k c acc -> (k, c.p_events, c.p_wall) :: acc) t.profile []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let queue_depths t = t.depths

(* Remove the root. Popped slots are cleared so the heap never keeps a dead
   closure (or its environment) alive past execution. *)
let remove_root t =
  let last = t.len - 1 in
  t.len <- last;
  if last > 0 then begin
    t.ev_time.(0) <- t.ev_time.(last);
    t.ev_prio.(0) <- t.ev_prio.(last);
    t.ev_seq.(0) <- t.ev_seq.(last);
    t.ev_kind.(0) <- t.ev_kind.(last);
    t.ev_action.(0) <- t.ev_action.(last)
  end;
  t.ev_kind.(last) <- "";
  t.ev_action.(last) <- no_op;
  if t.len > 1 then sift_down t 0

let step t =
  if t.len = 0 then false
  else begin
    let time = t.ev_time.(0) in
    let kind = t.ev_kind.(0) in
    let action = t.ev_action.(0) in
    remove_root t;
    t.clock <- time;
    t.n_executed <- t.n_executed + 1;
    if t.profiling then begin
      if t.n_executed mod t.sample_every = 0 then
        Stats.Recorder.add t.depths t.len;
      let t0 = Sys.time () in
      action ();
      let cell = prof_cell t kind in
      cell.p_events <- cell.p_events + 1;
      cell.p_wall <- cell.p_wall +. (Sys.time () -. t0)
    end
    else action ();
    true
  end

let run ?until ?max_events t =
  let stop_time = match until with None -> max_int | Some u -> u in
  let budget = ref (match max_events with None -> max_int | Some m -> m) in
  let continue = ref true in
  while !continue && !budget > 0 do
    if t.len = 0 then continue := false
    else if t.ev_time.(0) > stop_time then begin
      t.clock <- stop_time;
      continue := false
    end
    else begin
      ignore (step t);
      decr budget
    end
  done

let pending t = t.len

let executed t = t.n_executed

let us n = n

let ms f = int_of_float (f *. 1_000.0 +. 0.5)

let sec f = int_of_float (f *. 1_000_000.0 +. 0.5)

let to_ms n = float_of_int n /. 1_000.0

let to_sec n = float_of_int n /. 1_000_000.0
