(** At-least-once request helper: deadlines, bounded retries, capped
    exponential backoff with seeded jitter.

    [call] runs an attempt thunk and arms a per-attempt timeout; if no reply
    lands in time it re-runs the thunk, doubling the timeout up to
    [max_backoff_us], until [max_attempts] attempts have gone unanswered —
    then delivers [None]. Late replies from superseded attempts are absorbed
    by a per-call settled flag, so a callee observes at-least-once delivery
    and the caller sees exactly one result.

    Determinism: backoff jitter is drawn from the [rng] stream handed to
    {!create}, and only when an attempt actually retries — a run in which
    every first attempt succeeds consumes no randomness here, so arming the
    helper does not perturb fault-free seeded experiments.

    Batching: the retry timers here deliberately sit {e above} the
    {!Net.post} batching layer. An attempt thunk that sends via a batched
    path may see its request coalesced (and so delayed up to the flush
    deadline), which the timeout already dwarfs; the timers themselves are
    engine events and never buffer, so retransmission cadence is unaffected
    by link batching. *)

type t

val create :
  Engine.t -> rng:Rng.t -> ?timeout_us:int -> ?max_backoff_us:int ->
  ?max_attempts:int -> unit -> t
(** Defaults: 500 ms first-attempt timeout (above the worst WAN round trip
    in the paper's deployments), 2 s backoff cap, 8 attempts. *)

val call :
  ?name:string ->
  t ->
  attempt:(attempt:int -> ok:('a -> unit) -> unit) ->
  on_result:('a option -> unit) -> unit
(** [attempt ~attempt:n ~ok] must (re)send the request and route the reply
    to [ok]; it may be invoked several times, so the remote handler must be
    idempotent. [on_result] fires exactly once: [Some v] with the first
    reply, or [None] after the attempt budget is exhausted.

    With a tracer installed (see {!set_tracer}) each call records one
    [Rpc] span named [name] (default ["rpc.call"]) that stays the ambient
    parent of every attempt — including retransmissions fired from the
    backoff timer — so network hops of later attempts still link to the
    call that caused them; retries and exhaustion add instant markers. *)

val set_tracer : t -> Obs.Trace.t -> unit
(** Install a span sink. The default is [Obs.Trace.disabled], under which
    {!call} behaves exactly as before tracing existed. *)

(** {2 Counters} *)

val calls : t -> int
val retries : t -> int
val exhausted : t -> int
