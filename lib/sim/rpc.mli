(** At-least-once request helper: deadlines, bounded retries, capped
    exponential backoff with seeded jitter.

    [call] runs an attempt thunk and arms a per-attempt timeout; if no reply
    lands in time it re-runs the thunk, doubling the timeout up to
    [max_backoff_us], until [max_attempts] attempts have gone unanswered —
    then delivers [None]. Late replies from superseded attempts are absorbed
    by a per-call settled flag, so a callee observes at-least-once delivery
    and the caller sees exactly one result.

    Determinism: backoff jitter is drawn from the [rng] stream handed to
    {!create}, and only when an attempt actually retries — a run in which
    every first attempt succeeds consumes no randomness here, so arming the
    helper does not perturb fault-free seeded experiments.

    Batching: the retry timers here deliberately sit {e above} the
    {!Net.post} batching layer. An attempt thunk that sends via a batched
    path may see its request coalesced (and so delayed up to the flush
    deadline), which the timeout already dwarfs; the timers themselves are
    engine events and never buffer, so retransmission cadence is unaffected
    by link batching. *)

type t

(** Fleet-wide retry budget: a token bucket shared by any number of {!t}
    instances that caps total retry {e amplification}. First attempts are
    free; each retransmission spends one token, and an empty bucket turns
    the retry into an immediate fast-fail ([on_result None]) instead of
    adding more work to an overloaded fleet — the standard defense against
    metastable retry storms. Refill is lazy integer arithmetic over
    simulated time: no timer events, no randomness, fully deterministic. *)
module Budget : sig
  type t

  val create : Engine.t -> capacity:int -> refill_period_us:int -> t
  (** A bucket holding at most [capacity] tokens (starts full), earning one
      token per [refill_period_us] of simulated time. Raises
      [Invalid_argument] on non-positive parameters. *)

  val try_take : t -> bool
  (** Spend one token; [false] (and a denial counted) when empty. *)

  val tokens : t -> int
  (** Tokens currently available (after lazy refill). *)

  val taken : t -> int
  val denied : t -> int
end

val create :
  Engine.t -> rng:Rng.t -> ?timeout_us:int -> ?max_backoff_us:int ->
  ?max_attempts:int -> unit -> t
(** Defaults: 500 ms first-attempt timeout (above the worst WAN round trip
    in the paper's deployments), 2 s backoff cap, 8 attempts. *)

val set_budget : t -> Budget.t option -> unit
(** Attach (or detach) a retry budget. Several helpers may share one bucket
    — that is the point: the cap is fleet-wide. [None] (the default) keeps
    the pre-budget behavior exactly. *)

val budget : t -> Budget.t option

val call :
  ?name:string ->
  t ->
  attempt:(attempt:int -> ok:('a -> unit) -> unit) ->
  on_result:('a option -> unit) -> unit
(** [attempt ~attempt:n ~ok] must (re)send the request and route the reply
    to [ok]; it may be invoked several times, so the remote handler must be
    idempotent. [on_result] fires exactly once: [Some v] with the first
    reply, or [None] after the attempt budget is exhausted.

    With a tracer installed (see {!set_tracer}) each call records one
    [Rpc] span named [name] (default ["rpc.call"]) that stays the ambient
    parent of every attempt — including retransmissions fired from the
    backoff timer — so network hops of later attempts still link to the
    call that caused them; retries and exhaustion add instant markers. *)

val set_tracer : t -> Obs.Trace.t -> unit
(** Install a span sink. The default is [Obs.Trace.disabled], under which
    {!call} behaves exactly as before tracing existed. *)

(** {2 Counters} *)

val calls : t -> int
val retries : t -> int

val exhausted : t -> int
(** Calls that delivered [None] — attempt budget spent {e or} retry budget
    denied (the latter also counted in {!budget_denied}). *)

val budget_denied : t -> int
(** Calls fast-failed by an empty retry {!Budget}. *)
