(** Seeded random fault-schedule generation (the "nemesis", after Jepsen's
    fault-injecting process).

    [generate] expands a fault-mix preset into a concrete {!Schedule.t} using
    only its own seeded stream, so a chaotic run is reproducible from
    (workload seed, nemesis seed). Every generated schedule ends with a
    global cleanup (heal + recover + clear + ε reset) at 80% of the run,
    leaving a quiet tail against which audits assert that liveness
    resumes. *)

type preset =
  | Partition_heal  (** random two-group partitions, later healed *)
  | Link_loss  (** probabilistic loss on all links of one site *)
  | Crash_recover  (** crash up to ⌊(n-1)/2⌋ non-protected sites *)
  | Latency_spike  (** 20-150 ms extra delay on one site's links *)
  | Eps_inflate  (** TrueTime ε inflated 3-10x *)
  | Reorder_storm  (** random bounded extra delays, reordering messages *)
  | Asym_block
      (** one-way blocks: 1-2 source sites stop reaching a subset of the
          rest while every other direction keeps working. The cluster never
          stalls — the fault silently changes which replicas can contribute
          replies to quorums, the visibility hazard asymmetric network
          failures create (and the one symmetric partitions cannot) *)
  | Mixed  (** each window picks one of the above *)
  | Leader_kill  (** crash one leader site per window, later recovered *)
  | Rolling_crash
      (** up to three distinct sites crashed in sequential disjoint windows *)
  | Reshard
      (** leader crashes while the audit driver live-migrates key ranges
          (see {!requires_reshard}) — placement moves as leaders fail over *)
  | Hot_split
      (** partition windows around a hot-range migration; no leader dies,
          but failover stays armed — migration drains depend on in-doubt
          2PC resolution when a fault swallows a commit message *)
  | Disk_tear
      (** leader crashes whose disk loses the un-fsynced log tail (see
          {!disk_spec}; the storage damage itself is armed by the driver's
          {!Sim.Durable.Faults} control) *)
  | Bit_rot
      (** leader crashes that misdirect a write mid-log — the case that
          forces quarantine + repair by peer state transfer *)
  | Torn_migration
      (** disk tears + stale-sector resurfacing while the audit driver
          live-migrates key ranges (implies {!requires_reshard}) *)
  | Slow_node
      (** gray failure: one site's station serves 4-12x slower {e and} its
          links carry 20-80 ms extra delay, but nothing crashes — the
          degraded-but-alive replica that answers heartbeats, joins
          quorums, and drags every request routed through it. Emitted as a
          {!Schedule.Slow} + [Delay] pair per window (one victim for
          both); drivers apply the station half from their [on_fault]
          hook. No failover is armed — the hazard is precisely that
          failure detectors see a live node *)

val presets : (string * preset) list
(** CLI-name / preset pairs, e.g. [("partition-heal", Partition_heal)]. *)

val preset_name : preset -> string

val preset_of_string : string -> preset option

val requires_failover : preset -> bool
(** Presets that crash leaders on purpose: audits must arm the failover /
    retransmission machinery or the liveness assertion cannot hold. *)

val requires_reshard : preset -> bool
(** Presets whose point is concurrent placement change: audit drivers should
    schedule live migrations during the run (protocols without elastic
    placement ignore this and see only the network faults). *)

val disk_spec : preset -> Sim.Durable.Faults.spec option
(** The storage-fault mix a disk preset is tuned for ([None] for the pure
    network presets). Drivers install it as a {!Sim.Durable.Faults} control
    before building the cluster; without one armed, the disk presets
    degrade to plain crash schedules. *)

val generate :
  preset -> n_sites:int -> ?protect:int list -> ?leaders:int list ->
  ?epsilon_us:int -> duration_us:int -> seed:int -> unit -> Schedule.t
(** [protect] lists sites the nemesis must never crash (e.g. enough replicas
    to keep quorums available — partitions and loss may still hit them).
    [leaders] are the deployment's leader sites, the {!Leader_kill} victim
    pool (leaderless deployments leave it empty and any crashable site
    qualifies). [epsilon_us] is the deployment's base ε, used to scale
    inflation. *)
