type protocol = Spanner_strict | Spanner_rss | Gryff_lin | Gryff_rsc

let protocols = [ Spanner_strict; Spanner_rss; Gryff_lin; Gryff_rsc ]

let protocol_name = function
  | Spanner_strict -> "spanner"
  | Spanner_rss -> "spanner-rss"
  | Gryff_lin -> "gryff"
  | Gryff_rsc -> "gryff-rsc"

let protocol_of_string = function
  | "spanner" -> Some Spanner_strict
  | "spanner-rss" -> Some Spanner_rss
  | "gryff" -> Some Gryff_lin
  | "gryff-rsc" -> Some Gryff_rsc
  | _ -> None

let model_name = function
  | Spanner_strict -> "strict serializability"
  | Spanner_rss -> "RSS"
  | Gryff_lin -> "linearizability (per key)"
  | Gryff_rsc -> "RSC (per key)"

let protocol_sites = function
  | Spanner_strict | Spanner_rss -> 3 (* wan3 *)
  | Gryff_lin | Gryff_rsc -> 5 (* wan5 *)

let protocol_epsilon_us = function
  | Spanner_strict | Spanner_rss -> 10_000
  | Gryff_lin | Gryff_rsc -> 0

let protocol_leader_sites = function
  | Spanner_strict | Spanner_rss -> [ 0; 1; 2 ] (* wan3: one leader per site *)
  | Gryff_lin | Gryff_rsc -> [] (* leaderless *)

let nemesis_schedule protocol preset ~duration_s ~seed =
  Nemesis.generate preset ~n_sites:(protocol_sites protocol)
    ~leaders:(protocol_leader_sites protocol)
    ~epsilon_us:(protocol_epsilon_us protocol)
    ~duration_us:(Sim.Engine.sec duration_s) ~seed ()

(* ------------------------------------------------------------------ *)
(* Storage fault injection                                             *)
(* ------------------------------------------------------------------ *)

type disk_faults = {
  df_spec : Sim.Durable.Faults.spec;
  df_seed : int;
  df_scrub_period_us : int;
  df_integrity : bool;
}

let default_disk_faults ?spec ~seed () =
  {
    df_spec =
      (match spec with Some s -> s | None -> Sim.Durable.Faults.default_spec);
    df_seed = seed;
    df_scrub_period_us = 250_000;
    df_integrity = true;
  }

let zero_disk_stats =
  {
    Sim.Durable.Faults.fs_torn = 0;
    fs_corrupt = 0;
    fs_resurfaced = 0;
    fs_lost_ints = 0;
    fs_crashes = 0;
  }

(* Install the control before the cluster exists — stores register with the
   ambient control at creation time. *)
let install_disk_faults = function
  | None -> None
  | Some df ->
    Some
      (Sim.Durable.Faults.install ~spec:df.df_spec ~integrity:df.df_integrity
         ~seed:df.df_seed ())

(* Arm the background scrub pass: one store verified per period, the scan
   costed on its own station so it competes for simulated CPU. *)
let arm_scrub engine ~tracer ~dctl ~disk_faults ~duration_s =
  match (dctl, disk_faults) with
  | Some ctl, Some df when df.df_scrub_period_us > 0 ->
    let station = Sim.Station.create engine ~service_time_us:40 in
    Some
      (Sim.Scrub.start engine ~station ~ctl ~tracer
         ~period_us:df.df_scrub_period_us
         ~until_us:(Sim.Engine.sec duration_s) ())
  | _ -> None

(* The raw per-protocol history, exposed so callers (the schedule explorer
   in particular) can re-judge a run with [Rss_core.Check_online] or other
   oracles without re-executing the simulation. *)
type records =
  | Spanner_records of Rss_core.Witness.txn array
  | Gryff_records of Gryff.Cluster.record array

type run = {
  protocol : protocol;
  check : (unit, string) result;
  records : records;
  stale_control : unit -> (unit, string) result option;
  trace : string;
  history_len : int;
  ops_completed : int;
  ops_timed_out : int;
  timed_out_by_kind : (string * int) list;
  post_quiet_completed : int;
  post_quiet_timed_out : int;
  aborted_attempts : int;
  unacked_commits : int;
  faults_injected : int;
  msgs_sent : int;
  dropped_crash : int;
  dropped_partition : int;
  dropped_loss : int;
  duplicated : int;
  delayed : int;
  latency : Stats.Recorder.t;
  duration_us : int;
  view_changes : int;
  rpc_retries : int;
  in_doubt_resolved : int;
  max_election_us : int;
  migrations : int;
  migration_retries : int;
  redirects : int;
  disk_torn : int;
  disk_corrupt : int;
  disk_resurfaced : int;
  disk_lost_ints : int;
  disk_crashes : int;
  scrub_passes : int;
  scrub_entries : int;
  scrub_flagged : int;
  repairs_torn : int;
  repairs_quarantined : int;
  repairs_peer : int;
  place_repairs : int;
  unrepaired : int;
}

(* Drive [n_slots] session slots against [issue_op]. Each slot runs one
   session at a time; an operation that misses [timeout_us] abandons the
   session (its process id is never reused, so session-order checking stays
   sound) and a fresh session takes the slot. [quiet_us] is when the
   schedule's cleanup fires — completions of ops invoked after it prove
   liveness resumed. *)
type slot_stats = {
  mutable completed : int;
  mutable timed_out : int;
  mutable post_quiet_completed : int;
  mutable post_quiet_timed_out : int;
  timed_out_kinds : (string, int) Hashtbl.t;
      (* which op kinds the timeouts hit (ro/rw for Spanner,
         read/write/rmw for Gryff) — a schedule that only starves one kind
         (e.g. ROs stuck behind a gray leader) shows up here, where the
         aggregate hides it *)
}

let timed_out_by_kind stats =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) stats.timed_out_kinds []
  |> List.sort compare

let drive_slots engine ~n_slots ~until ~timeout_us ~quiet_us ~latency
    ~(new_session : int -> 'c)
    ~(issue_op : 'c -> kind:(string -> unit) -> finish:(unit -> unit) -> unit) =
  let stats =
    { completed = 0; timed_out = 0; post_quiet_completed = 0;
      post_quiet_timed_out = 0; timed_out_kinds = Hashtbl.create 8 }
  in
  let gen = Array.make n_slots 0 in
  let slot_kind = Array.make n_slots "?" in
  let rec start_session slot =
    if Sim.Engine.now engine < until then run_op slot (new_session slot)
  and run_op slot session =
    let g = gen.(slot) in
    let t0 = Sim.Engine.now engine in
    let finished = ref false in
    Sim.Engine.schedule engine ~after:timeout_us (fun () ->
        if (not !finished) && gen.(slot) = g then begin
          stats.timed_out <- stats.timed_out + 1;
          (let k = slot_kind.(slot) in
           let prev = try Hashtbl.find stats.timed_out_kinds k with Not_found -> 0 in
           Hashtbl.replace stats.timed_out_kinds k (prev + 1));
          if t0 >= quiet_us then
            stats.post_quiet_timed_out <- stats.post_quiet_timed_out + 1;
          gen.(slot) <- g + 1;
          start_session slot
        end);
    issue_op session
      ~kind:(fun k -> slot_kind.(slot) <- k)
      ~finish:(fun () ->
        finished := true;
        if gen.(slot) = g then begin
          stats.completed <- stats.completed + 1;
          Stats.Recorder.add latency (Sim.Engine.now engine - t0);
          if t0 >= quiet_us then
            stats.post_quiet_completed <- stats.post_quiet_completed + 1;
          if Sim.Engine.now engine < until then run_op slot session
        end)
  in
  for slot = 0 to n_slots - 1 do
    start_session slot
  done;
  stats

(* ------------------------------------------------------------------ *)
(* Sweeps for operations whose acknowledgement a fault swallowed        *)
(* ------------------------------------------------------------------ *)

let key_name = string_of_int

(* If attempt [txn] committed, its writes are visible at the shards even
   though the client never heard back — record it as incomplete
   (resp = max_int: no real-time obligations, reads not checked), exactly
   how complete(α) treats a stopped client. Returns whether recorded. *)
let sweep_spanner_txn cluster ~proc ~inv ~writes ~txn =
  match Spanner.Cluster.txn_outcome cluster txn with
  | Some (Spanner.Types.Committed tc) ->
    Spanner.Cluster.record cluster
      {
        Rss_core.Witness.proc;
        reads = [];
        writes = List.map (fun (k, v) -> (key_name k, v)) writes;
        inv;
        resp = max_int;
        ts = tc;
        rank = 0;
      };
    true
  | Some Spanner.Types.Aborted | None -> false

(* A Gryff write whose propagate phase started may sit at some replicas and
   be observed even though the acks never came back — same convention. *)
let sweep_gryff_write cluster ~proc ~inv ~key ~value ~cs =
  Gryff.Cluster.record cluster
    {
      Gryff.Cluster.g_proc = proc;
      g_kind = Gryff.Cluster.Write;
      g_key = key;
      g_observed = None;
      g_written = Some value;
      g_cs = cs;
      g_inv = inv;
      g_resp = max_int;
    }

(* ------------------------------------------------------------------ *)
(* Spanner / Spanner-RSS                                               *)
(* ------------------------------------------------------------------ *)

let spanner_trace records =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun (w : Rss_core.Witness.txn) ->
      Buffer.add_string buf
        (Fmt.str "p%d inv=%d resp=%d ts=%d rank=%d R%a W%a\n"
           w.Rss_core.Witness.proc w.Rss_core.Witness.inv w.Rss_core.Witness.resp
           w.Rss_core.Witness.ts w.Rss_core.Witness.rank
           Fmt.(Dump.list (Dump.pair string (Dump.option int)))
           w.Rss_core.Witness.reads
           Fmt.(Dump.list (Dump.pair string int))
           w.Rss_core.Witness.writes))
    records;
  Buffer.contents buf

(* Corrupt one read to the key's previous version and re-check: the audit's
   "control" proving the checker catches stale reads. *)
let spanner_stale_control ~mode records =
  let records = Array.copy records in
  let writes_by_key : (string, (int * int) list) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun (w : Rss_core.Witness.txn) ->
      List.iter
        (fun (k, v) ->
          let prev = try Hashtbl.find writes_by_key k with Not_found -> [] in
          Hashtbl.replace writes_by_key k ((w.Rss_core.Witness.ts, v) :: prev))
        w.Rss_core.Witness.writes)
    records;
  let prev_version k v =
    match Hashtbl.find_opt writes_by_key k with
    | None -> None
    | Some ws -> (
      let ws = List.sort compare ws in
      let rec walk prev = function
        | (_, v') :: _ when v' = v -> prev
        | (_, v') :: rest -> walk (Some v') rest
        | [] -> None
      in
      match walk None ws with
      | Some v' when v' <> v -> Some v'
      | _ -> None)
  in
  (* A value no transaction ever wrote — corrupting a read to it is illegal
     in any serialization, the fallback when no older version exists. *)
  let phantom =
    1
    + Array.fold_left
        (fun acc (w : Rss_core.Witness.txn) ->
          List.fold_left (fun acc (_, v) -> max acc v) acc w.Rss_core.Witness.writes)
        0 records
  in
  let corrupt k ov =
    match ov with
    | Some v -> (
      match prev_version k v with Some stale -> Some stale | None -> Some phantom)
    | None -> Some phantom
  in
  let exception Found of int * (string * int option) list in
  try
    Array.iteri
      (fun i (w : Rss_core.Witness.txn) ->
        if w.Rss_core.Witness.resp <> max_int then
          match w.Rss_core.Witness.reads with
          | (k, ov) :: rest -> raise (Found (i, (k, corrupt k ov) :: rest))
          | [] -> ())
      records;
    None
  with Found (i, reads) ->
    records.(i) <- { (records.(i)) with Rss_core.Witness.reads };
    Some (Rss_core.Witness.check ~mode records)

type pending_rw = {
  pr_proc : int;
  pr_inv : int;
  pr_writes : (int * int) list;
  mutable pr_last_txn : int;
  mutable pr_done : bool;
}

let spanner ?config ?(tracer = Obs.Trace.disabled) ?prepare ~mode ~schedule
    ?disk_faults ?(n_slots = 12) ?(theta = 0.5) ?(n_keys = 5_000)
    ?(timeout_us = 2_000_000) ?(failover = false) ?(n_migrations = 0)
    ~duration_s ~seed () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make seed in
  let dctl = install_disk_faults disk_faults in
  Fun.protect ~finally:(fun () -> Option.iter Sim.Durable.Faults.retire dctl)
  @@ fun () ->
  let config = match config with Some c -> c | None -> Spanner.Config.wan3 ~mode () in
  let cluster = Spanner.Cluster.create engine ~rng config in
  (match prepare with
  | Some f -> f engine (Spanner.Cluster.net cluster)
  | None -> ());
  if Obs.Trace.enabled tracer then Spanner.Cluster.set_tracer cluster tracer;
  if failover then
    (* A dedicated seeded stream for retry jitter: the workload stream stays
       untouched, and the failover timers stop at the horizon so the engine
       queue still drains. *)
    Spanner.Cluster.enable_failover cluster
      ~rng:(Sim.Rng.make (0xfa11 + seed))
      ~until_us:(Sim.Engine.sec duration_s + Sim.Engine.sec 4.0)
      ();
  let deadline_us = if failover then Some (timeout_us - 200_000) else None in
  let faults = ref 0 in
  (* Wherever the nemesis crashes a site, the same event damages the site's
     durable stores; when the directory replica's site recovers, its
     assignment log is re-verified and healed from the overlay. *)
  let on_disk_fault (ev : Schedule.event) =
    match dctl with
    | None -> ()
    | Some ctl -> (
      match ev.Schedule.fault with
      | Schedule.Crash ss ->
        List.iter (Sim.Durable.Faults.crash_site ctl) ss
      | Schedule.Recover ss when List.mem 0 ss ->
        ignore (Place.Directory.recover (Spanner.Cluster.directory cluster))
      | _ -> ())
  in
  ignore
    (Schedule.apply schedule ~engine ~net:(Spanner.Cluster.net cluster)
       ~tt:(Spanner.Cluster.truetime cluster) ~tracer
       ~on_fault:(fun ev ->
         incr faults;
         (* Gray failures live in the protocol deployment's stations, which
            the network-level injector cannot see — apply them here, like
            the Crash-coupled disk damage below. *)
         (match ev.Schedule.fault with
         | Schedule.Slow { site; factor } ->
           Spanner.Cluster.set_site_slowdown cluster ~site ~factor
         | Schedule.Slow_clear -> Spanner.Cluster.clear_slowdowns cluster
         | _ -> ());
         on_disk_fault ev)
       ());
  let scrub_stats = arm_scrub engine ~tracer ~dctl ~disk_faults ~duration_s in
  let retwis = Workload.Retwis.create ~rng:(Sim.Rng.split rng) ~n_keys ~theta in
  let until = Sim.Engine.sec duration_s in
  (* Live migrations of the Zipfian head — the hottest eighth of the
     keyspace — spread over the run, each to a different destination shard.
     Scheduling them here (not in the nemesis) keeps Schedule.t purely about
     network/clock faults. *)
  let n_shards = config.Spanner.Config.n_shards in
  for i = 0 to n_migrations - 1 do
    let at =
      int_of_float ((0.30 +. (0.25 *. float_of_int i)) *. float_of_int until)
    in
    let dst = (i + 1) mod n_shards in
    Sim.Engine.schedule engine ~kind:"chaos.migrate" ~after:at (fun () ->
        Spanner.Cluster.migrate cluster ~lo:0 ~hi:(max 1 (n_keys / 8)) ~dst
          (fun _ -> ()))
  done;
  let quiet_us = Schedule.end_of_faults schedule in
  let latency = Stats.Recorder.create () in
  let pending : pending_rw list ref = ref [] in
  let client_sites = config.Spanner.Config.client_sites in
  let n_sites = Array.length client_sites in
  let stats =
    drive_slots engine ~n_slots ~until ~timeout_us ~quiet_us ~latency
      ~new_session:(fun slot ->
        Spanner.Client.create cluster ~site:client_sites.(slot mod n_sites))
      ~issue_op:(fun c ~kind ~finish ->
        let txn = Workload.Retwis.sample retwis in
        if Workload.Retwis.is_read_only txn then begin
          kind "ro";
          Spanner.Client.ro ?deadline_us c ~keys:txn.Workload.Retwis.read_keys
            (fun _ -> finish ())
        end
        else begin
          kind "rw";
          let writes =
            List.map
              (fun key -> (key, Spanner.Cluster.fresh_value cluster))
              txn.Workload.Retwis.write_keys
          in
          let info =
            {
              pr_proc = Spanner.Client.proc c;
              pr_inv = Sim.Engine.now engine;
              pr_writes = writes;
              pr_last_txn = -1;
              pr_done = false;
            }
          in
          pending := info :: !pending;
          Spanner.Client.rw_kv ?deadline_us c
            ~on_attempt:(fun id -> info.pr_last_txn <- id)
            ~read_keys:txn.Workload.Retwis.read_keys ~writes
            (fun _ ->
              info.pr_done <- true;
              finish ())
        end)
  in
  Sim.Engine.run ~max_events:600_000_000 engine;
  (* Sweep committed-but-unacknowledged transactions into the history: their
     writes are visible at the shards, so the witness must know about them.
     resp = max_int marks them incomplete (no real-time obligations, reads
     not checked) — exactly how complete(α) treats a stopped client. *)
  let unacked = ref 0 in
  List.iter
    (fun info ->
      if (not info.pr_done) && info.pr_last_txn >= 0 then
        if
          sweep_spanner_txn cluster ~proc:info.pr_proc ~inv:info.pr_inv
            ~writes:info.pr_writes ~txn:info.pr_last_txn
        then incr unacked)
    (List.rev !pending);
  let records = Spanner.Cluster.records cluster in
  let net = Spanner.Cluster.net cluster in
  let fstats = Spanner.Cluster.failover_stats cluster in
  let pstats = Spanner.Cluster.place_stats cluster in
  let dstats =
    match dctl with
    | Some ctl -> Sim.Durable.Faults.stats ctl
    | None -> zero_disk_stats
  in
  let wmode = match mode with Spanner.Config.Strict -> `Strict | Spanner.Config.Rss -> `Rss in
  {
    protocol = (match mode with Spanner.Config.Strict -> Spanner_strict | Spanner.Config.Rss -> Spanner_rss);
    check = Spanner.Cluster.check_history cluster;
    records = Spanner_records records;
    stale_control = (fun () -> spanner_stale_control ~mode:wmode records);
    trace = spanner_trace records;
    history_len = Array.length records;
    ops_completed = stats.completed;
    ops_timed_out = stats.timed_out;
    timed_out_by_kind = timed_out_by_kind stats;
    post_quiet_completed = stats.post_quiet_completed;
    post_quiet_timed_out = stats.post_quiet_timed_out;
    aborted_attempts = (Spanner.Cluster.ctx cluster).Spanner.Protocol.n_rw_aborted_attempts;
    unacked_commits = !unacked;
    faults_injected = !faults;
    msgs_sent = Sim.Net.messages_sent net;
    dropped_crash = Sim.Net.dropped_crash net;
    dropped_partition = Sim.Net.dropped_partition net;
    dropped_loss = Sim.Net.dropped_loss net;
    duplicated = Sim.Net.messages_duplicated net;
    delayed = Sim.Net.messages_delayed net;
    latency;
    duration_us = Sim.Engine.now engine;
    view_changes = fstats.Spanner.Cluster.view_changes;
    rpc_retries = fstats.Spanner.Cluster.rpc_retries;
    in_doubt_resolved = fstats.Spanner.Cluster.in_doubt_resolved;
    max_election_us = fstats.Spanner.Cluster.max_election_us;
    migrations = pstats.Spanner.Cluster.migrations;
    migration_retries = pstats.Spanner.Cluster.migration_retries;
    redirects = pstats.Spanner.Cluster.redirects;
    disk_torn = dstats.Sim.Durable.Faults.fs_torn;
    disk_corrupt = dstats.Sim.Durable.Faults.fs_corrupt;
    disk_resurfaced = dstats.Sim.Durable.Faults.fs_resurfaced;
    disk_lost_ints = dstats.Sim.Durable.Faults.fs_lost_ints;
    disk_crashes = dstats.Sim.Durable.Faults.fs_crashes;
    scrub_passes = (match scrub_stats with Some s -> s.Sim.Scrub.passes | None -> 0);
    scrub_entries = (match scrub_stats with Some s -> s.Sim.Scrub.entries | None -> 0);
    scrub_flagged = (match scrub_stats with Some s -> s.Sim.Scrub.flagged | None -> 0);
    repairs_torn = fstats.Spanner.Cluster.torn_repaired;
    repairs_quarantined = fstats.Spanner.Cluster.corrupt_quarantined;
    repairs_peer = fstats.Spanner.Cluster.peer_repairs;
    place_repairs = Place.Directory.repairs (Spanner.Cluster.directory cluster);
    unrepaired = fstats.Spanner.Cluster.unrepaired;
  }

(* ------------------------------------------------------------------ *)
(* Gryff / Gryff-RSC                                                   *)
(* ------------------------------------------------------------------ *)

let gryff_trace records =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun (r : Gryff.Cluster.record) ->
      Buffer.add_string buf
        (Fmt.str "p%d %s k%d obs=%a wr=%a cs=%a inv=%d resp=%d\n" r.Gryff.Cluster.g_proc
           (match r.Gryff.Cluster.g_kind with
           | Gryff.Cluster.Read -> "r"
           | Gryff.Cluster.Write -> "w"
           | Gryff.Cluster.Rmw -> "m")
           r.Gryff.Cluster.g_key
           Fmt.(Dump.option int)
           r.Gryff.Cluster.g_observed
           Fmt.(Dump.option int)
           r.Gryff.Cluster.g_written Gryff.Carstamp.pp r.Gryff.Cluster.g_cs
           r.Gryff.Cluster.g_inv r.Gryff.Cluster.g_resp))
    records;
  Buffer.contents buf

let gryff_stale_control cluster records =
  let records = Array.copy records in
  let writes_by_key : (int, (Gryff.Carstamp.t * int) list) Hashtbl.t =
    Hashtbl.create 256
  in
  Array.iter
    (fun (r : Gryff.Cluster.record) ->
      match r.Gryff.Cluster.g_written with
      | Some v ->
        let k = r.Gryff.Cluster.g_key in
        let prev = try Hashtbl.find writes_by_key k with Not_found -> [] in
        Hashtbl.replace writes_by_key k ((r.Gryff.Cluster.g_cs, v) :: prev)
      | None -> ())
    records;
  let prev_version k v =
    match Hashtbl.find_opt writes_by_key k with
    | None -> None
    | Some ws -> (
      let ws =
        List.sort (fun (a, _) (b, _) -> Gryff.Carstamp.compare a b) ws
      in
      let rec walk prev = function
        | (_, v') :: _ when v' = v -> prev
        | (_, v') :: rest -> walk (Some v') rest
        | [] -> None
      in
      match walk None ws with Some v' when v' <> v -> Some v' | _ -> None)
  in
  let phantom =
    1
    + Array.fold_left
        (fun acc (r : Gryff.Cluster.record) ->
          match r.Gryff.Cluster.g_written with Some v -> max acc v | None -> acc)
        0 records
  in
  let exception Found of int * int in
  try
    Array.iteri
      (fun i (r : Gryff.Cluster.record) ->
        if r.Gryff.Cluster.g_kind = Gryff.Cluster.Read && r.Gryff.Cluster.g_resp <> max_int
        then
          match r.Gryff.Cluster.g_observed with
          | Some v -> (
            match prev_version r.Gryff.Cluster.g_key v with
            | Some stale -> raise (Found (i, stale))
            | None -> raise (Found (i, phantom)))
          | None -> raise (Found (i, phantom)))
      records;
    None
  with Found (i, stale) ->
    records.(i) <- { (records.(i)) with Gryff.Cluster.g_observed = Some stale };
    Some (Gryff.Cluster.check_history_of cluster (Array.to_list records))

type pending_write = {
  pw_proc : int;
  pw_inv : int;
  pw_key : int;
  pw_value : int;
  mutable pw_cs : Gryff.Carstamp.t option;
  mutable pw_done : bool;
}

let gryff ?config ?client_sites ?(tracer = Obs.Trace.disabled) ?prepare ~mode
    ~schedule ?disk_faults ?(n_slots = 10) ?(write_ratio = 0.3) ?(conflict = 0.1)
    ?(n_keys = 2_000) ?(timeout_us = 2_000_000) ?(unsafe_no_deps = false)
    ?(failover = false) ~duration_s ~seed () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make seed in
  (* Gryff keeps no durable stores, so the control registers nothing and
     every disk counter stays zero — but accepting the spec keeps the
     battery uniform across protocols. *)
  let dctl = install_disk_faults disk_faults in
  Fun.protect ~finally:(fun () -> Option.iter Sim.Durable.Faults.retire dctl)
  @@ fun () ->
  let config = match config with Some c -> c | None -> Gryff.Config.wan5 ~mode () in
  let cluster = Gryff.Cluster.create engine ~rng config in
  (match prepare with
  | Some f -> f engine (Gryff.Cluster.net cluster)
  | None -> ());
  if Obs.Trace.enabled tracer then Gryff.Cluster.set_tracer cluster tracer;
  if failover then
    Gryff.Cluster.enable_retrans cluster ~rng:(Sim.Rng.make (0xfa11 + seed)) ();
  let faults = ref 0 in
  ignore
    (Schedule.apply schedule ~engine ~net:(Gryff.Cluster.net cluster) ~tracer
       ~on_fault:(fun ev ->
         incr faults;
         match (dctl, ev.Schedule.fault) with
         | Some ctl, Schedule.Crash ss ->
           List.iter (Sim.Durable.Faults.crash_site ctl) ss
         | _, Schedule.Slow { site; factor } ->
           Gryff.Cluster.set_site_slowdown cluster ~site ~factor
         | _, Schedule.Slow_clear -> Gryff.Cluster.clear_slowdowns cluster
         | _ -> ())
       ());
  let scrub_stats = arm_scrub engine ~tracer ~dctl ~disk_faults ~duration_s in
  let ycsb =
    Workload.Ycsb.create ~rng:(Sim.Rng.split rng) ~n_keys ~write_ratio ~conflict
  in
  let until = Sim.Engine.sec duration_s in
  let quiet_us = Schedule.end_of_faults schedule in
  let latency = Stats.Recorder.create () in
  let pending : pending_write list ref = ref [] in
  let next_val = ref 0 in
  let client_sites =
    match client_sites with
    | Some a -> a
    | None -> Array.init config.Gryff.Config.n_replicas (fun i -> i)
  in
  let n_sites = Array.length client_sites in
  let stats =
    drive_slots engine ~n_slots ~until ~timeout_us ~quiet_us ~latency
      ~new_session:(fun slot ->
        Gryff.Client.create ~unsafe_no_deps cluster
          ~site:client_sites.(slot mod n_sites))
      ~issue_op:(fun c ~kind ~finish ->
        let op = Workload.Ycsb.sample ycsb in
        if op.Workload.Ycsb.is_write then begin
          kind "write";
          incr next_val;
          let info =
            {
              pw_proc = Gryff.Client.proc c;
              pw_inv = Sim.Engine.now engine;
              pw_key = op.Workload.Ycsb.key;
              pw_value = !next_val;
              pw_cs = None;
              pw_done = false;
            }
          in
          pending := info :: !pending;
          Gryff.Client.write c
            ~on_apply:(fun cs -> info.pw_cs <- Some cs)
            ~key:op.Workload.Ycsb.key ~value:info.pw_value
            (fun _ ->
              info.pw_done <- true;
              finish ())
        end
        else begin
          kind "read";
          Gryff.Client.read c ~key:op.Workload.Ycsb.key (fun _ -> finish ())
        end)
  in
  Sim.Engine.run ~max_events:600_000_000 engine;
  (* Sweep writes whose propagate phase started but whose acks never came
     back: the value may sit at some replicas and be observed, so the
     history must carry it (incomplete, resp = max_int). *)
  let unacked = ref 0 in
  List.iter
    (fun info ->
      match (info.pw_done, info.pw_cs) with
      | false, Some cs ->
        incr unacked;
        sweep_gryff_write cluster ~proc:info.pw_proc ~inv:info.pw_inv
          ~key:info.pw_key ~value:info.pw_value ~cs
      | _ -> ())
    (List.rev !pending);
  let records = Gryff.Cluster.records cluster in
  let net = Gryff.Cluster.net cluster in
  {
    protocol = (match mode with Gryff.Config.Lin -> Gryff_lin | Gryff.Config.Rsc -> Gryff_rsc);
    check = Gryff.Cluster.check_history cluster;
    records = Gryff_records records;
    stale_control = (fun () -> gryff_stale_control cluster records);
    trace = gryff_trace records;
    history_len = Array.length records;
    ops_completed = stats.completed;
    ops_timed_out = stats.timed_out;
    timed_out_by_kind = timed_out_by_kind stats;
    post_quiet_completed = stats.post_quiet_completed;
    post_quiet_timed_out = stats.post_quiet_timed_out;
    aborted_attempts = 0;
    unacked_commits = !unacked;
    faults_injected = !faults;
    msgs_sent = Sim.Net.messages_sent net;
    dropped_crash = Sim.Net.dropped_crash net;
    dropped_partition = Sim.Net.dropped_partition net;
    dropped_loss = Sim.Net.dropped_loss net;
    duplicated = Sim.Net.messages_duplicated net;
    delayed = Sim.Net.messages_delayed net;
    latency;
    duration_us = Sim.Engine.now engine;
    view_changes = 0;
    rpc_retries = (Gryff.Cluster.retrans_stats cluster).Gryff.Cluster.rpc_retries;
    in_doubt_resolved = 0;
    max_election_us = 0;
    migrations = 0;
    migration_retries = 0;
    redirects = 0;
    disk_torn =
      (match dctl with
      | Some ctl -> (Sim.Durable.Faults.stats ctl).Sim.Durable.Faults.fs_torn
      | None -> 0);
    disk_corrupt = 0;
    disk_resurfaced = 0;
    disk_lost_ints = 0;
    disk_crashes = 0;
    scrub_passes = (match scrub_stats with Some s -> s.Sim.Scrub.passes | None -> 0);
    scrub_entries = (match scrub_stats with Some s -> s.Sim.Scrub.entries | None -> 0);
    scrub_flagged = (match scrub_stats with Some s -> s.Sim.Scrub.flagged | None -> 0);
    repairs_torn = 0;
    repairs_quarantined = 0;
    repairs_peer = 0;
    place_repairs = 0;
    unrepaired = 0;
  }

(* ------------------------------------------------------------------ *)
(* Dispatch and reporting                                              *)
(* ------------------------------------------------------------------ *)

let run protocol ?tracer ?prepare ~schedule ?disk_faults ?n_slots ?n_keys
    ?timeout_us ?conflict ?write_ratio ?unsafe_no_deps ?failover ?n_migrations
    ~duration_s ~seed () =
  match protocol with
  | Spanner_strict ->
    spanner ?tracer ?prepare ~mode:Spanner.Config.Strict ~schedule ?disk_faults
      ?n_slots ?n_keys ?timeout_us ?failover ?n_migrations ~duration_s ~seed ()
  | Spanner_rss ->
    spanner ?tracer ?prepare ~mode:Spanner.Config.Rss ~schedule ?disk_faults
      ?n_slots ?n_keys ?timeout_us ?failover ?n_migrations ~duration_s ~seed ()
  | Gryff_lin ->
    gryff ?tracer ?prepare ~mode:Gryff.Config.Lin ~schedule ?disk_faults
      ?n_slots ?n_keys ?timeout_us ?conflict ?write_ratio ?unsafe_no_deps
      ?failover ~duration_s ~seed ()
  | Gryff_rsc ->
    gryff ?tracer ?prepare ~mode:Gryff.Config.Rsc ~schedule ?disk_faults
      ?n_slots ?n_keys ?timeout_us ?conflict ?write_ratio ?unsafe_no_deps
      ?failover ~duration_s ~seed ()

let liveness_ok ?(min_post_quiet = 1) (r : run) =
  r.post_quiet_completed >= min_post_quiet

(* The audit report rides the one metrics-table renderer: the run record's
   counters become a registry snapshot, the latency recorder a histogram. *)
let metrics_of_run r =
  {
    Obs.Metrics.counters =
      List.sort compare
        (List.map
           (fun (k, v) -> ("op.timed_out." ^ k, v))
           r.timed_out_by_kind
        @ [
          ("op.completed", r.ops_completed);
          ("op.timed_out", r.ops_timed_out);
          ("op.post_heal_completed", r.post_quiet_completed);
          ("op.post_heal_timed_out", r.post_quiet_timed_out);
          ("op.aborted_attempts", r.aborted_attempts);
          ("op.unacked_commits_swept", r.unacked_commits);
          ("op.history_records", r.history_len);
          ("fault.injected", r.faults_injected);
          ("net.messages", r.msgs_sent);
          ("fault.dropped_crash", r.dropped_crash);
          ("fault.dropped_partition", r.dropped_partition);
          ("fault.dropped_loss", r.dropped_loss);
          ("fault.duplicated", r.duplicated);
          ("fault.delayed", r.delayed);
          ("failover.view_changes", r.view_changes);
          ("failover.rpc_retries", r.rpc_retries);
          ("failover.in_doubt_resolved", r.in_doubt_resolved);
          ("failover.max_election_us", r.max_election_us);
          ("place.migrations", r.migrations);
          ("place.migration_retries", r.migration_retries);
          ("place.redirects", r.redirects);
          ("durable.fault.torn", r.disk_torn);
          ("durable.fault.corrupt", r.disk_corrupt);
          ("durable.fault.resurfaced", r.disk_resurfaced);
          ("durable.fault.lost_ints", r.disk_lost_ints);
          ("durable.fault.crashes", r.disk_crashes);
          ("durable.scrub.passes", r.scrub_passes);
          ("durable.scrub.entries", r.scrub_entries);
          ("durable.scrub.flagged", r.scrub_flagged);
          ("durable.repair.torn", r.repairs_torn);
          ("durable.repair.quarantined", r.repairs_quarantined);
          ("durable.repair.peer", r.repairs_peer);
          ("durable.repair.place", r.place_repairs);
          ("durable.repair.unrepaired", r.unrepaired);
        ]);
    gauges = [];
    histograms =
      (if Stats.Recorder.is_empty r.latency then [] else [ ("ops", r.latency) ]);
  }

let print_report r =
  Fmt.pr "chaos audit: %s — model: %s@." (protocol_name r.protocol)
    (model_name r.protocol);
  Obs.Metrics.print_table ~header:"chaos audit" (metrics_of_run r);
  (match r.check with
  | Ok () -> Fmt.pr "history: verified (%s)@." (model_name r.protocol)
  | Error m -> Fmt.pr "history: VIOLATION — %s@." m);
  Fmt.pr "liveness: %s (%d ops completed after heal)@."
    (if liveness_ok r then "ok" else "STALLED")
    r.post_quiet_completed;
  if r.disk_crashes > 0 || r.unrepaired > 0 then
    Fmt.pr
      "storage: %d crash-damage events — %d torn-tail repairs, %d quarantined \
       (%d healed by peer transfer, %d place re-persists), %d UNREPAIRED@."
      r.disk_crashes r.repairs_torn r.repairs_quarantined r.repairs_peer
      r.place_repairs r.unrepaired
