(** Declarative fault schedules.

    A schedule is a list of timed fault events applied to a simulated
    deployment — e.g. [at 2s: partition [0] from [1; 2]; at 5s: heal]:

    {[
      Schedule.[ at_s 2.0 (Partition ([ 0 ], [ 1; 2 ])); at_s 5.0 Heal ]
    ]}

    {!apply} arms each event on the engine clock before the run starts, so a
    chaotic run is a pure function of (workload seed, schedule) — and, when
    the schedule came from {!Nemesis.generate}, of (workload seed, nemesis
    seed). *)

type fault =
  | Partition of int list * int list
      (** Sever both directions between every pair of the two groups. *)
  | Isolate of int list  (** Sever the sites from everyone else. *)
  | Block of int list * int list
      (** Asymmetric: block only [src -> dst] directions. *)
  | Heal  (** Unblock all links (partitions only, not crashes). *)
  | Crash of int list
  | Recover of int list
  | Loss of { links : (int * int) list; prob : float }
  | Duplicate of { links : (int * int) list; prob : float }
  | Delay of { links : (int * int) list; extra_us : int }  (** Latency spike. *)
  | Reorder of { links : (int * int) list; prob : float; max_extra_us : int }
  | Clear_links  (** Reset loss / duplication / delay / reorder everywhere. *)
  | Epsilon of int  (** Set TrueTime ε (µs) — no-op without a clock. *)
  | Epsilon_reset  (** Restore ε as it was when {!apply} ran. *)
  | Slow of { site : int; factor : int }
      (** Gray failure: multiply the service cost of every station at the
          site by [factor]. {!apply}'s network-level injector treats this as
          a no-op — stations belong to the protocol deployment, so drivers
          apply the slowdown from their [on_fault] hook (exactly as the
          disk presets couple storage damage to [Crash] events). *)
  | Slow_clear  (** Restore every station to normal service. *)

type event = { at_us : int; fault : fault }

type t = event list

val at_s : float -> fault -> event
val at_us : int -> fault -> event

val links_between : int list -> int list -> (int * int) list
(** Both directions of every cross pair — the link set for loss / delay /
    reorder faults between two site groups. *)

val links_of_site : n:int -> int -> (int * int) list
(** Every link touching one site, both directions. *)

val sites_except : n:int -> int list -> int list

val end_of_faults : t -> int
(** Time (µs) of the last event. Schedules end with their heal / recover /
    clear events, so liveness assertions measure from here. *)

val apply :
  t -> engine:Sim.Engine.t -> net:Sim.Net.t -> ?tt:Sim.Truetime.t ->
  ?tracer:Obs.Trace.t -> ?on_fault:(event -> unit) -> unit -> int
(** Schedule every event on the engine (events in the past fire immediately
    when the engine next runs). Returns the number of events armed.
    [tracer] records each injection as a [Fault]-kind instant (default
    disabled); [on_fault] fires as each event is injected — audit drivers
    use it to count faults and log. *)

val pp_fault : Format.formatter -> fault -> unit
val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
