type fault =
  | Partition of int list * int list
  | Isolate of int list
  | Block of int list * int list
  | Heal
  | Crash of int list
  | Recover of int list
  | Loss of { links : (int * int) list; prob : float }
  | Duplicate of { links : (int * int) list; prob : float }
  | Delay of { links : (int * int) list; extra_us : int }
  | Reorder of { links : (int * int) list; prob : float; max_extra_us : int }
  | Clear_links
  | Epsilon of int
  | Epsilon_reset
  | Slow of { site : int; factor : int }
  | Slow_clear

type event = { at_us : int; fault : fault }

type t = event list

let at_s s fault = { at_us = Sim.Engine.sec s; fault }

let at_us at_us fault = { at_us; fault }

let links_between a b =
  List.concat_map (fun i -> List.concat_map (fun j -> [ (i, j); (j, i) ]) b) a

let links_of_site ~n s =
  List.init n (fun j -> if j = s then [] else [ (s, j); (j, s) ]) |> List.concat

let sites_except ~n excluded =
  List.init n (fun i -> i) |> List.filter (fun i -> not (List.mem i excluded))

let pp_sites = Fmt.(brackets (list ~sep:semi int))

let pp_fault ppf = function
  | Partition (a, b) -> Fmt.pf ppf "partition %a from %a" pp_sites a pp_sites b
  | Isolate s -> Fmt.pf ppf "isolate %a" pp_sites s
  | Block (a, b) -> Fmt.pf ppf "block %a -> %a" pp_sites a pp_sites b
  | Heal -> Fmt.pf ppf "heal"
  | Crash s -> Fmt.pf ppf "crash %a" pp_sites s
  | Recover s -> Fmt.pf ppf "recover %a" pp_sites s
  | Loss { links; prob } -> Fmt.pf ppf "loss p=%.3f on %d links" prob (List.length links)
  | Duplicate { links; prob } ->
    Fmt.pf ppf "duplicate p=%.3f on %d links" prob (List.length links)
  | Delay { links; extra_us } ->
    Fmt.pf ppf "delay +%.1fms on %d links"
      (float_of_int extra_us /. 1000.0)
      (List.length links)
  | Reorder { links; prob; max_extra_us } ->
    Fmt.pf ppf "reorder p=%.3f (<=%.1fms) on %d links" prob
      (float_of_int max_extra_us /. 1000.0)
      (List.length links)
  | Clear_links -> Fmt.pf ppf "clear link faults"
  | Epsilon e -> Fmt.pf ppf "truetime epsilon := %.1fms" (float_of_int e /. 1000.0)
  | Epsilon_reset -> Fmt.pf ppf "truetime epsilon reset"
  | Slow { site; factor } -> Fmt.pf ppf "slow site %d x%d" site factor
  | Slow_clear -> Fmt.pf ppf "clear slowdowns"

let pp_event ppf { at_us; fault } =
  Fmt.pf ppf "at %.2fs: %a" (Sim.Engine.to_sec at_us) pp_fault fault

let pp ppf t = Fmt.(list ~sep:(any "; ") pp_event) ppf t

let sort t = List.stable_sort (fun a b -> compare a.at_us b.at_us) t

(* Time past which every fault has been injected (schedules put their heal /
   recover / clear events last, so this is also when disruption ends — the
   liveness checks measure from here). *)
let end_of_faults t = List.fold_left (fun acc e -> max acc e.at_us) 0 t

let inject ~net ?tt ~epsilon0 fault =
  match fault with
  | Partition (a, b) -> Sim.Net.partition net a b
  | Isolate s ->
    let others = sites_except ~n:(Sim.Net.n_sites net) s in
    Sim.Net.partition net s others
  | Block (a, b) ->
    List.iter (fun src -> List.iter (fun dst -> Sim.Net.block_link net ~src ~dst) b) a
  | Heal -> Sim.Net.heal_partitions net
  | Crash s -> List.iter (Sim.Net.set_down net) s
  | Recover s -> List.iter (Sim.Net.set_up net) s
  | Loss { links; prob } ->
    List.iter (fun (src, dst) -> Sim.Net.set_loss net ~src ~dst prob) links
  | Duplicate { links; prob } ->
    List.iter (fun (src, dst) -> Sim.Net.set_dup net ~src ~dst prob) links
  | Delay { links; extra_us } ->
    List.iter (fun (src, dst) -> Sim.Net.set_extra_delay net ~src ~dst extra_us) links
  | Reorder { links; prob; max_extra_us } ->
    List.iter
      (fun (src, dst) -> Sim.Net.set_reorder net ~src ~dst ~prob ~max_extra_us)
      links
  | Clear_links -> Sim.Net.clear_link_faults net
  | Epsilon e -> (
    match tt with None -> () | Some tt -> Sim.Truetime.set_epsilon tt e)
  | Epsilon_reset -> (
    match tt with None -> () | Some tt -> Sim.Truetime.set_epsilon tt epsilon0)
  (* Station slowdowns live in the protocol deployments, which [inject]
     cannot see — drivers apply them from their [on_fault] hook, exactly
     like the Crash-coupled storage damage. *)
  | Slow _ | Slow_clear -> ()

let apply t ~engine ~net ?tt ?(tracer = Obs.Trace.disabled) ?(on_fault = fun _ -> ())
    () =
  let epsilon0 = match tt with None -> 0 | Some tt -> Sim.Truetime.epsilon tt in
  List.iter
    (fun e ->
      Sim.Engine.schedule_at ~kind:"chaos.fault" engine ~at:e.at_us (fun () ->
          inject ~net ?tt ~epsilon0 e.fault;
          if Obs.Trace.enabled tracer then
            Obs.Trace.instant ~parent:Obs.Trace.none tracer ~kind:Obs.Trace.Fault
              ~name:(Fmt.str "%a" pp_fault e.fault)
              ~ts:(Sim.Engine.now engine);
          on_fault e))
    (sort t);
  List.length t
