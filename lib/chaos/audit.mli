(** Nemesis-driven consistency audits.

    An audit runs one protocol under a fault {!Schedule.t} with a
    timeout-respawning workload, collects the execution history — including
    operations whose acknowledgement a fault swallowed, swept in as
    incomplete records — and checks it against the protocol's consistency
    model. Liveness is asserted separately: operations invoked after the
    schedule's final heal must complete.

    Every run is a pure function of (workload [seed], [schedule]); the
    [trace] field is a canonical serialization of the history, so two runs
    with identical inputs can be compared byte for byte. *)

type protocol = Spanner_strict | Spanner_rss | Gryff_lin | Gryff_rsc

val protocols : protocol list

val protocol_name : protocol -> string
val protocol_of_string : string -> protocol option
val model_name : protocol -> string

val protocol_sites : protocol -> int
(** Site count of the protocol's default deployment (wan3 / wan5). *)

val protocol_epsilon_us : protocol -> int

val protocol_leader_sites : protocol -> int list
(** Leader sites of the default deployment — the {!Nemesis.Leader_kill}
    victim pool (empty for the leaderless Gryff). *)

val nemesis_schedule :
  protocol -> Nemesis.preset -> duration_s:float -> seed:int -> Schedule.t
(** A nemesis schedule sized for the protocol's default deployment. *)

(** {1 Storage fault injection}

    When a driver is given a [disk_faults] spec it installs a
    {!Sim.Durable.Faults} control {e before} building the cluster (stores
    register at creation), ties storage damage to the schedule's [Crash]
    events, re-verifies the placement directory's log on site-0 [Recover],
    and arms the background {!Sim.Scrub} pass. Fault placement draws from
    the control's own seeded stream, so network schedules stay
    byte-identical with or without disk faults armed. *)

type disk_faults = {
  df_spec : Sim.Durable.Faults.spec;  (** per-crash damage probabilities *)
  df_seed : int;  (** the control's dedicated stream *)
  df_scrub_period_us : int;  (** 0 disables the background scrub *)
  df_integrity : bool;
      (** [false] builds checksum-blind stores — the broken control
          configuration the battery must catch *)
}

val default_disk_faults :
  ?spec:Sim.Durable.Faults.spec -> seed:int -> unit -> disk_faults
(** Integrity on, 250 ms scrub period, [spec] defaulting to
    {!Sim.Durable.Faults.default_spec}. *)

val install_disk_faults : disk_faults option -> Sim.Durable.Faults.ctl option
(** Install the control — call {e before} building the cluster, and
    {!Sim.Durable.Faults.retire} the result even on exceptional exit.
    Shared by the audit drivers and the chaos-enabled harness drivers. *)

val arm_scrub :
  Sim.Engine.t -> tracer:Obs.Trace.t -> dctl:Sim.Durable.Faults.ctl option ->
  disk_faults:disk_faults option -> duration_s:float -> Sim.Scrub.stats option
(** Arm the background scrub pass on a dedicated station; [None] without an
    installed control or with a zero scrub period. *)

(** The raw collected history, exposed so callers (notably the schedule
    explorer) can re-judge a finished run with {!Rss_core.Check_online} or
    other oracles without re-executing the simulation. Spanner runs carry
    witness transactions; Gryff runs carry per-key register records. *)
type records =
  | Spanner_records of Rss_core.Witness.txn array
  | Gryff_records of Gryff.Cluster.record array

type run = {
  protocol : protocol;
  check : (unit, string) result;  (** the consistency verdict *)
  records : records;  (** the raw history behind [check] and [trace] *)
  stale_control : unit -> (unit, string) result option;
      (** Corrupt one read in the collected history to an older version and
          re-check. [None] if no eligible read exists; otherwise the result
          should be [Error _] — the audit's proof that the checker has
          teeth. *)
  trace : string;  (** canonical history serialization, for determinism diffs *)
  history_len : int;
  ops_completed : int;
  ops_timed_out : int;  (** abandoned after [timeout_us]; session retired *)
  timed_out_by_kind : (string * int) list;
      (** the timeouts split by op kind, sorted — ["ro"]/["rw"] for
          Spanner, ["read"]/["write"]/["rmw"] for Gryff. A fault that only
          starves one kind (ROs stuck behind a gray leader, say) is
          visible here and invisible in the aggregate. *)
  post_quiet_completed : int;
      (** ops invoked after {!Schedule.end_of_faults} that completed *)
  post_quiet_timed_out : int;
  aborted_attempts : int;  (** wound-wait retries (Spanner only) *)
  unacked_commits : int;  (** committed-but-unacknowledged ops swept in *)
  faults_injected : int;
  msgs_sent : int;
  dropped_crash : int;
  dropped_partition : int;
  dropped_loss : int;
  duplicated : int;
  delayed : int;
  latency : Stats.Recorder.t;  (** completed-op latency *)
  duration_us : int;
  view_changes : int;  (** leader elections across all shard groups *)
  rpc_retries : int;  (** request retransmissions (terminate / retrans) *)
  in_doubt_resolved : int;  (** 2PC participants settled via status queries *)
  max_election_us : int;  (** worst detection-to-activation gap *)
  migrations : int;  (** completed live migrations (Spanner only) *)
  migration_retries : int;  (** per-source fence/ship re-attempts *)
  redirects : int;  (** client ops bounced off a non-owning shard *)
  disk_torn : int;  (** log entries lost to tail tears *)
  disk_corrupt : int;  (** misdirected-write corruptions injected *)
  disk_resurfaced : int;  (** stale truncated entries resurfaced *)
  disk_lost_ints : int;  (** register writes lost at crashes *)
  disk_crashes : int;  (** crash events that damaged ≥1 store *)
  scrub_passes : int;  (** background store scans completed *)
  scrub_entries : int;  (** log entries the scrub verified *)
  scrub_flagged : int;  (** logs the scrub caught damaged *)
  repairs_torn : int;  (** torn/suspect suffixes truncated and refetched *)
  repairs_quarantined : int;  (** members quarantined for mid-log damage *)
  repairs_peer : int;  (** quarantines healed by peer state transfer *)
  place_repairs : int;  (** directory assignments re-persisted *)
  unrepaired : int;  (** members still quarantined at run end (fail-stop) *)
}

val sweep_spanner_txn :
  Spanner.Cluster.t -> proc:int -> inv:int -> writes:(int * int) list ->
  txn:int -> bool
(** If attempt [txn] committed, record it as an incomplete transaction
    (resp = max_int) — a committed-but-unacknowledged op whose writes are
    visible. Returns whether it was recorded. Shared by the audit drivers
    and the chaos-enabled harness drivers. *)

val sweep_gryff_write :
  Gryff.Cluster.t -> proc:int -> inv:int -> key:int -> value:int ->
  cs:Gryff.Carstamp.t -> unit
(** Record a write whose propagate phase started but whose acknowledgement
    never arrived, as an incomplete operation. *)

val spanner :
  ?config:Spanner.Config.t -> ?tracer:Obs.Trace.t ->
  ?prepare:(Sim.Engine.t -> Sim.Net.t -> unit) ->
  mode:Spanner.Config.mode -> schedule:Schedule.t -> ?disk_faults:disk_faults ->
  ?n_slots:int -> ?theta:float -> ?n_keys:int -> ?timeout_us:int ->
  ?failover:bool -> ?n_migrations:int -> duration_s:float -> seed:int ->
  unit -> run
(** Retwis over Spanner. [n_slots] concurrent session slots; a slot whose
    operation misses [timeout_us] abandons that session (fresh process id —
    session-order checking stays sound) and continues with a new one.
    [failover] (default false) arms {!Spanner.Cluster.enable_failover} and
    puts client deadlines on every operation — required for liveness under
    leader-killing schedules. [n_migrations] (default 0) schedules that many
    live migrations of the Zipfian-hot eighth of the keyspace, spread over
    the run, each to a different destination shard — the workload for
    {!Nemesis.Reshard} / {!Nemesis.Hot_split} schedules. [prepare] runs
    right after the cluster is built, before any fault or workload event is
    scheduled — the schedule explorer uses it to install perturbation hooks
    and batching policies on the engine/net. *)

val gryff :
  ?config:Gryff.Config.t -> ?client_sites:int array -> ?tracer:Obs.Trace.t ->
  ?prepare:(Sim.Engine.t -> Sim.Net.t -> unit) ->
  mode:Gryff.Config.mode -> schedule:Schedule.t -> ?disk_faults:disk_faults ->
  ?n_slots:int ->
  ?write_ratio:float -> ?conflict:float -> ?n_keys:int -> ?timeout_us:int ->
  ?unsafe_no_deps:bool -> ?failover:bool -> duration_s:float -> seed:int ->
  unit -> run
(** YCSB-style reads/writes over Gryff. [client_sites] restricts where
    clients run (e.g. off a crash victim); default all replica sites.
    [unsafe_no_deps] runs the broken control client (RSC fence disabled).
    [failover] arms {!Gryff.Cluster.enable_retrans}. *)

val run :
  protocol -> ?tracer:Obs.Trace.t ->
  ?prepare:(Sim.Engine.t -> Sim.Net.t -> unit) -> schedule:Schedule.t ->
  ?disk_faults:disk_faults -> ?n_slots:int -> ?n_keys:int -> ?timeout_us:int ->
  ?conflict:float -> ?write_ratio:float -> ?unsafe_no_deps:bool ->
  ?failover:bool -> ?n_migrations:int -> duration_s:float -> seed:int ->
  unit -> run
(** Dispatch on {!protocol} with that protocol's default deployment.
    [tracer] (default disabled) records spans cluster-wide plus a
    [Fault]-kind instant per injected event. [n_migrations] applies to the
    Spanner protocols only (Gryff has no elastic placement); [conflict],
    [write_ratio] and [unsafe_no_deps] apply to the Gryff protocols only. *)

val liveness_ok : ?min_post_quiet:int -> run -> bool
(** True when at least [min_post_quiet] (default 1) operations invoked after
    the schedule's last event completed. *)

val print_report : run -> unit
