type preset =
  | Partition_heal
  | Link_loss
  | Crash_recover
  | Latency_spike
  | Eps_inflate
  | Reorder_storm
  | Asym_block
  | Mixed
  | Leader_kill
  | Rolling_crash
  | Reshard
  | Hot_split
  | Disk_tear
  | Bit_rot
  | Torn_migration
  | Slow_node

let presets =
  [
    ("partition-heal", Partition_heal);
    ("link-loss", Link_loss);
    ("crash-recover", Crash_recover);
    ("latency-spike", Latency_spike);
    ("eps-inflate", Eps_inflate);
    ("reorder-storm", Reorder_storm);
    ("asym-block", Asym_block);
    ("mixed", Mixed);
    ("leader-kill", Leader_kill);
    ("rolling-crash", Rolling_crash);
    ("reshard", Reshard);
    ("hot-split", Hot_split);
    ("disk-tear", Disk_tear);
    ("bit-rot", Bit_rot);
    ("torn-migration", Torn_migration);
    ("slow-node", Slow_node);
  ]

let requires_failover = function
  (* Reshard and Hot_split arm failover because live migration leans on
     2PC in-doubt resolution: without it, a participant whose commit
     message a fault swallowed stays prepared forever and the drain never
     completes. The disk presets arm it because storage repair leans on
     elections and catch-up state transfer. *)
  | Leader_kill | Rolling_crash | Reshard | Hot_split | Disk_tear | Bit_rot
  | Torn_migration ->
    true
  (* Slow_node keeps every site alive — the point of a gray failure is that
     nothing crashes, so no failover machinery is owed. *)
  | Partition_heal | Link_loss | Crash_recover | Latency_spike | Eps_inflate
  | Reorder_storm | Asym_block | Mixed | Slow_node ->
    false

let requires_reshard = function
  | Reshard | Hot_split | Torn_migration -> true
  | _ -> false

let preset_name p = fst (List.find (fun (_, q) -> q = p) presets)

let preset_of_string s = List.assoc_opt s presets

let disk_spec = function
  | Disk_tear ->
    (* Tear-heavy: every crash likely loses an un-fsynced tail; corruption
       and resurfacing stay rare. *)
    Some
      {
        Sim.Durable.Faults.tear_prob = 0.9;
        max_tear = 5;
        corrupt_prob = 0.1;
        stale_prob = 0.1;
        max_stale = 2;
        lost_int_prob = 0.15;
      }
  | Bit_rot ->
    (* Corruption-heavy: misdirected writes mid-log, the case that forces
       quarantine + peer state transfer. *)
    Some
      {
        Sim.Durable.Faults.tear_prob = 0.25;
        max_tear = 2;
        corrupt_prob = 0.85;
        stale_prob = 0.15;
        max_stale = 2;
        lost_int_prob = 0.1;
      }
  | Torn_migration ->
    (* Tears plus stale-sector resurfacing while placement records are in
       flight: the migration-replay hazard. *)
    Some
      {
        Sim.Durable.Faults.tear_prob = 0.75;
        max_tear = 4;
        corrupt_prob = 0.25;
        stale_prob = 0.5;
        max_stale = 3;
        lost_int_prob = 0.15;
      }
  | _ -> None

(* A nemesis window: one fault armed at [w_start], undone at [w_stop]. *)

let pick_subset rng ~from ~size =
  let arr = Array.of_list from in
  Sim.Rng.shuffle rng arr;
  Array.to_list (Array.sub arr 0 size)

let pick_range rng lo hi = lo + Sim.Rng.int rng (max 1 (hi - lo + 1))

type spec = {
  n_sites : int;
  protect : int list;
  leaders : int list;
  epsilon_us : int;
  rng : Sim.Rng.t;
}

let all_sites spec = List.init spec.n_sites (fun i -> i)

let crashable spec =
  List.filter (fun s -> not (List.mem s spec.protect)) (all_sites spec)

(* One fault window of the given kind; returns (inject fault, undo fault). *)
let rec window spec kind =
  let open Schedule in
  match kind with
  | Partition_heal ->
    let g = 1 + Sim.Rng.int spec.rng (max 1 (spec.n_sites - 1)) in
    let group = pick_subset spec.rng ~from:(all_sites spec) ~size:g in
    let rest = Schedule.sites_except ~n:spec.n_sites group in
    if rest = [] then window spec Partition_heal
    else (Partition (group, rest), Heal)
  | Link_loss ->
    let s = List.nth (all_sites spec) (Sim.Rng.int spec.rng spec.n_sites) in
    let links = Schedule.links_of_site ~n:spec.n_sites s in
    let prob = 0.02 +. Sim.Rng.float spec.rng 0.13 in
    (Loss { links; prob }, Clear_links)
  | Crash_recover ->
    let from = crashable spec in
    let max_k = min (List.length from) ((spec.n_sites - 1) / 2) in
    if max_k = 0 then window spec Latency_spike
    else
      let k = pick_range spec.rng 1 max_k in
      let victims = pick_subset spec.rng ~from ~size:k in
      (Crash victims, Recover victims)
  | Latency_spike ->
    let s = List.nth (all_sites spec) (Sim.Rng.int spec.rng spec.n_sites) in
    let links = Schedule.links_of_site ~n:spec.n_sites s in
    let extra_us = pick_range spec.rng 20_000 150_000 in
    (Delay { links; extra_us }, Clear_links)
  | Eps_inflate ->
    let base = if spec.epsilon_us > 0 then spec.epsilon_us else 10_000 in
    let factor = pick_range spec.rng 3 10 in
    (Epsilon (base * factor), Epsilon_reset)
  | Reorder_storm ->
    let s = List.nth (all_sites spec) (Sim.Rng.int spec.rng spec.n_sites) in
    let links = Schedule.links_of_site ~n:spec.n_sites s in
    let prob = 0.2 +. Sim.Rng.float spec.rng 0.3 in
    let max_extra_us = pick_range spec.rng 5_000 50_000 in
    (Reorder { links; prob; max_extra_us }, Clear_links)
  | Asym_block ->
    (* One-way blocks: messages from 1-2 source sites stop reaching a
       subset of the rest; every other direction keeps working. Progress
       never stalls, but which replicas can contribute replies to a
       quorum shifts — the visibility hazard symmetric partitions cannot
       produce (a write stranded at a few replicas stays observable from
       some vantage points and invisible from others). *)
    let g = pick_range spec.rng 1 (min 2 (spec.n_sites - 1)) in
    let srcs = pick_subset spec.rng ~from:(all_sites spec) ~size:g in
    let rest = Schedule.sites_except ~n:spec.n_sites srcs in
    let k = pick_range spec.rng 1 (min 3 (List.length rest)) in
    let dsts = pick_subset spec.rng ~from:rest ~size:k in
    (Block (srcs, dsts), Heal)
  | Leader_kill ->
    (* Crash one leader site at a time (any crashable site if the deployment
       is leaderless): the fault the view-change machinery exists for. *)
    let from =
      match
        List.filter (fun s -> not (List.mem s spec.protect)) spec.leaders
      with
      | [] -> crashable spec
      | ls -> ls
    in
    if from = [] then window spec Latency_spike
    else
      let v = List.nth from (Sim.Rng.int spec.rng (List.length from)) in
      (Crash [ v ], Recover [ v ])
  | Rolling_crash ->
    (* Handled structurally in [generate]; a stray window degrades to a
       single-site crash. *)
    window spec Leader_kill
  | Reshard ->
    (* The network faults are leader crashes; the migrations themselves are
       scheduled by the audit driver (see [requires_reshard]) — placement
       moves while leaders fail over underneath it. *)
    window spec Leader_kill
  | Hot_split ->
    (* Partition windows around a hot-range migration: the directory epoch
       bump must survive clients that temporarily cannot reach the source. *)
    window spec Partition_heal
  | Disk_tear | Bit_rot ->
    (* The network-visible fault is a leader crash; the storage damage rides
       on the same Crash event via the drivers' disk-fault hook (the crash
       is what loses the un-fsynced tail / misdirects the write). *)
    window spec Leader_kill
  | Torn_migration ->
    (* Leader crashes while the audit driver live-migrates key ranges: the
       migration records and directory assignments are exactly the entries
       the crash damages. *)
    window spec Leader_kill
  | Slow_node ->
    (* The station half of a gray failure (the link-delay half is emitted
       structurally by [generate], which draws the victim once for both).
       A direct call still yields a usable degraded-node window. *)
    let s = List.nth (all_sites spec) (Sim.Rng.int spec.rng spec.n_sites) in
    let factor = pick_range spec.rng 4 12 in
    (Slow { site = s; factor }, Slow_clear)
  | Mixed ->
    let kinds =
      [| Partition_heal; Link_loss; Crash_recover; Latency_spike; Eps_inflate;
         Reorder_storm |]
    in
    window spec kinds.(Sim.Rng.int spec.rng (Array.length kinds))

let generate preset ~n_sites ?(protect = []) ?(leaders = [])
    ?(epsilon_us = 10_000) ~duration_us ~seed () =
  if n_sites < 2 then invalid_arg "Nemesis.generate: need at least two sites";
  let rng = Sim.Rng.make (0x6e656d + seed) in
  let spec = { n_sites; protect; leaders; epsilon_us; rng } in
  let d = float_of_int duration_us in
  let frac f = int_of_float (f *. d) in
  (* Disjoint fault windows inside [0.15, 0.75) of the run, each open for
     5-20% of it, then a global cleanup leaving a quiet tail for liveness.
     Rolling_crash fixes the windows structurally — one distinct victim per
     window, crashed sequentially; every other preset draws 1-2 windows of
     its own kind. *)
  let rolling_victims =
    match preset with
    | Rolling_crash ->
      let from = crashable spec in
      pick_subset rng ~from ~size:(min 3 (List.length from))
    | _ -> []
  in
  let n_windows =
    match rolling_victims with
    | [] -> 1 + Sim.Rng.int rng 2
    | vs -> List.length vs
  in
  let slot = 0.6 /. float_of_int (max 1 n_windows) in
  let events = ref [] in
  for w = 0 to n_windows - 1 do
    let lo = 0.15 +. (slot *. float_of_int w) in
    let start = frac (lo +. Sim.Rng.float rng (slot *. 0.4)) in
    let len = frac (0.05 +. Sim.Rng.float rng 0.15) in
    let stop = min (start + len) (frac (lo +. slot)) in
    let pairs =
      match (rolling_victims, preset) with
      | (_ :: _ as vs), _ ->
        let v = List.nth vs w in
        [ (Schedule.Crash [ v ], Schedule.Recover [ v ]) ]
      | [], Slow_node ->
        (* One victim drawn for both halves of the gray failure: its station
           serves [factor]x slower AND its links carry extra delay — alive
           (heartbeats answered, quorums joined) but dragging every request
           routed through it. *)
        let s = List.nth (all_sites spec) (Sim.Rng.int spec.rng spec.n_sites) in
        let factor = pick_range spec.rng 4 12 in
        let links = Schedule.links_of_site ~n:spec.n_sites s in
        let extra_us = pick_range spec.rng 20_000 80_000 in
        [
          (Schedule.Slow { site = s; factor }, Schedule.Slow_clear);
          (Schedule.Delay { links; extra_us }, Schedule.Clear_links);
        ]
      | [], _ -> [ window spec preset ]
    in
    List.iter
      (fun (inject, undo) ->
        events :=
          Schedule.at_us stop undo :: Schedule.at_us start inject :: !events)
      pairs
  done;
  let cleanup = frac 0.8 in
  let slow_cleanup =
    match preset with
    | Slow_node -> [ Schedule.at_us cleanup Schedule.Slow_clear ]
    | _ -> []
  in
  !events @ slow_cleanup
  @ Schedule.
      [
        at_us cleanup Heal;
        at_us cleanup (Recover (all_sites spec));
        at_us cleanup Clear_links;
        at_us cleanup Epsilon_reset;
      ]
