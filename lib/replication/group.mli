(** Leader-based majority replication for one shard group.

    Stands in for Multi-Paxos / Viewstamped Replication in the Spanner
    protocols: the leader appends an entry, ships it to its replicas, and
    learns commit once a majority of the group (counting itself) has
    acknowledged. Failure-free — leadership never changes — because the
    paper's evaluation is failure-free too; latency-wise this is exactly one
    round trip to the nearest ⌈n/2⌉-1 replicas, which is what the protocols
    pay per prepare/commit record. *)

type t

val create :
  Sim.Net.t -> ?station:Sim.Station.t -> leader_site:int ->
  replica_sites:int list -> unit -> t
(** [station], when given, charges the leader's CPU for processing each
    acknowledgement (throughput experiments). *)

val replicate : t -> ?bytes:int -> (unit -> unit) -> unit
(** Append an entry; the callback fires when a majority has acknowledged.
    With no replicas the callback fires synchronously. *)

val log_length : t -> int

val majority : t -> int
(** Majority size of the group (including the leader). *)
