(** View-based majority replication for one shard group (VR-lite).

    Stands in for Multi-Paxos / Viewstamped Replication in the Spanner
    protocols: the leader of the current view appends an entry, ships it to
    the other members, and learns commit once a majority of the group
    (counting itself) has acknowledged — latency-wise one round trip to the
    nearest ⌈n/2⌉-1 replicas, which is what the protocols pay per
    prepare/commit record.

    By default the group runs in failure-free mode: view 0, member 0 is the
    leader forever, and the message pattern (and hence any seeded
    experiment) is identical to the pre-view-change implementation.
    {!enable_failover} arms the full protocol: members keep their log and
    view number in per-site {!Sim.Durable} storage, the leader heartbeats
    its followers, a follower that misses the leader for a lease starts a
    view change (StartViewChange / DoViewChange / StartView, candidate =
    view mod n), the new leader installs the longest log from the latest
    view among a majority — which contains every entry that could have
    committed — and lagging or recovering members catch up by state
    transfer. The leader only reports itself {!serving} while it has heard
    from a majority within the lease and its post-election grace period has
    passed, giving the lease-disjointness guarantee timestamp-based layers
    (Spanner's RO reads) rely on.

    Entries carry an arbitrary payload ['a] so upper layers can rebuild
    their volatile state (prepared-transaction tables, multi-version
    stores) from the log a new leader hands them via [on_leader_change].

    With failover armed the group also survives {e storage} faults
    ({!Sim.Durable.Faults}): every recovery, election contribution, and
    catch-up answer first verifies the member's log framing. A torn tail or
    a suspect suffix at/above the member's durable commit count is
    truncated and refetched; damage below the commit count quarantines the
    member — it stops serving, acking, and answering catch-ups, and
    contributes only its verified prefix to elections — until a peer state
    transfer restores the committed prefix (a quarantine that never clears
    is a fail-stop, reported via [stats.unrepaired]). *)

type 'a t

type failover_config = {
  heartbeat_us : int;  (** leader ping / failure-detector tick period *)
  lease_us : int;  (** silence after which a follower suspects the leader *)
  grace_us : int;  (** post-election quiet period before serving *)
}

val default_failover : failover_config
(** 50 ms heartbeats, 400 ms lease (comfortably above the paper's worst
    136 ms WAN round trip), 200 ms grace. *)

val create :
  Sim.Net.t -> ?station:Sim.Station.t -> leader_site:int ->
  replica_sites:int list -> unit -> 'a t
(** [station], when given, charges the (initial) leader's CPU for processing
    each acknowledgement (throughput experiments). *)

val replicate : 'a t -> ?bytes:int -> 'a -> (unit -> unit) -> unit
(** Append an entry at the current leader; the callback fires when a
    majority has acknowledged (deduplicated per replica, so a duplicated
    ack never counts twice). With no replicas the callback fires
    synchronously. Entries proposed in a view that gets superseded before
    reaching a majority are discarded with their callbacks — callers that
    armed failover must treat an unanswered [replicate] as in doubt.

    {b Group commit.} Appends and acks travel via {!Sim.Net.post}: when the
    network has a batching policy, appends buffered on a leader→follower
    link ship as one envelope (one quorum round per batch of entries), the
    follower's acks for the whole batch coalesce on the return link, and
    the leader processes an ack envelope at amortized station cost. The
    durable commit floor is a monotone maximum, so an ack envelope advances
    it once to the batch's highest index regardless of arrival interleaving.
    Control traffic (heartbeats, elections, catch-up) never batches. *)

val enable_failover :
  'a t -> ?config:failover_config ->
  ?on_leader_change:(leader_site:int -> committed:'a list -> unit) ->
  until_us:int -> unit -> unit
(** Arm heartbeats, leases, view changes, and catch-up until the simulated
    clock passes [until_us] (timers must be bounded so a queue-draining
    {!Sim.Engine.run} terminates). [on_leader_change] fires each time a new
    view activates, with the new leader's site and the full payload log to
    rebuild upper-layer state from. *)

val set_tracer : 'a t -> Obs.Trace.t -> unit
(** Record a [View_change] span per election (failure-detection to
    activation) into the given sink. Inert with [Obs.Trace.disabled]. *)

val serving : 'a t -> bool
(** Whether the current leader may serve: always [true] in failure-free
    mode; with failover armed, true iff the leader is up, in the view it
    was elected for, past its grace period, and holds a majority lease. *)

val leader_site : 'a t -> int
(** Site of the current view's leader (routing target for clients). *)

val view : 'a t -> int

val log_length : 'a t -> int

val committed : 'a t -> 'a list
(** Payloads of the current leader's log, in append order. *)

val majority : 'a t -> int
(** Majority size of the group (including the leader). *)

(** {2 Failover statistics} *)

type stats = {
  view_changes : int;  (** activated elections *)
  heartbeats : int;  (** pings sent by leaders *)
  catchups : int;  (** state transfers installed by lagging members *)
  dup_acks : int;  (** duplicate acks suppressed by the per-replica dedup *)
  max_election_us : int;  (** worst detection-to-activation time *)
  durable_appends : int;  (** log writes across all members *)
  durable_bytes : int;
  torn_repaired : int;
      (** torn tails and suspect suffixes truncated locally (damage at or
          above the member's durable commit count: safe to drop + refetch) *)
  corrupt_quarantined : int;
      (** members quarantined for damage below their commit count — they
          stop serving, acking, and answering catch-ups until repaired *)
  peer_repairs : int;
      (** quarantines cleared by a peer state transfer (catch-up or
          election log install) restoring the committed prefix *)
  unrepaired : int;
      (** members still quarantined now — nonzero means no peer had the
          committed suffix and the member has fail-stopped *)
}

val stats : 'a t -> stats
