type t = {
  net : Sim.Net.t;
  station : Sim.Station.t option;
  leader_site : int;
  replica_sites : int list;
  majority : int;
  mutable log_length : int;
}

let create net ?station ~leader_site ~replica_sites () =
  let n = 1 + List.length replica_sites in
  { net; station; leader_site; replica_sites; majority = (n / 2) + 1; log_length = 0 }

let majority t = t.majority

let log_length t = t.log_length

let replicate t ?(bytes = 128) k =
  t.log_length <- t.log_length + 1;
  let needed = t.majority - 1 in
  if needed = 0 then k ()
  else begin
    let acks = ref 0 in
    let on_ack () =
      incr acks;
      if !acks = needed then k ()
    in
    let receive_ack () =
      match t.station with
      | None -> on_ack ()
      | Some st -> Sim.Station.submit st on_ack
    in
    List.iter
      (fun site ->
        Sim.Net.send ~bytes t.net ~src:t.leader_site ~dst:site (fun () ->
            (* Replica appends and acks; replica CPU is not the bottleneck
               we model. *)
            Sim.Net.send ~bytes:16 t.net ~src:site ~dst:t.leader_site receive_ack))
      t.replica_sites
  end
