type status = Normal | View_change

type failover_config = {
  heartbeat_us : int;
  lease_us : int;
  grace_us : int;
}

let default_failover =
  (* The lease must exceed the worst WAN round trip (136 ms in the paper's
     three-site deployment) by a wide margin, or healthy followers read a
     slow pong as a dead leader. *)
  { heartbeat_us = 50_000; lease_us = 400_000; grace_us = 200_000 }

type 'a entry = { e_view : int; e_payload : 'a; e_bytes : int }

type 'a member = {
  m_idx : int;
  m_site : int;
  m_store : Sim.Durable.t;
  m_log : 'a entry Sim.Durable.log;
  m_stash : (int, 'a entry) Hashtbl.t;  (* out-of-order appends (volatile) *)
  mutable m_view : int;  (* mirrored to [m_store] on every change *)
  mutable m_status : status;
  mutable m_last_heard : int;  (* last leader contact (follower side) *)
  mutable m_vc_view : int;  (* view being elected while [View_change] *)
  mutable m_vc_since : int;
  mutable m_dvc : ('a entry list * int) option array;
      (* candidate: DoViewChange (log, durable commit count) per member *)
  mutable m_sv_acked : bool array;  (* new leader: StartView acks *)
  mutable m_was_down : bool;
  mutable m_quarantined : bool;
      (* mid-log corruption below the durable commit index: refuse to serve,
         ack, or answer catch-ups until a peer state transfer repairs us *)
  mutable m_repair_span : Obs.Trace.span;
}

type pending = {
  pd_view : int;
  pd_acked : bool array;  (* per member — the (entry, replica) dedup *)
  mutable pd_acks : int;
  mutable pd_fired : bool;
  pd_k : unit -> unit;
}

type 'a t = {
  net : Sim.Net.t;
  engine : Sim.Engine.t;
  station : Sim.Station.t option;
  members : 'a member array;  (* index 0 = initial leader *)
  n : int;
  majority : int;
  pending : (int, pending) Hashtbl.t;  (* by log index, current view only *)
  heard : int array;  (* leader-side lease: last ack/pong per member *)
  mutable view : int;  (* routing view: the last *activated* leadership *)
  mutable leader_idx : int;
  mutable serve_after : int;
  mutable cfg : failover_config option;
  mutable horizon : int;
  mutable on_leader_change : leader_site:int -> committed:'a list -> unit;
  mutable n_view_changes : int;
  mutable n_heartbeats : int;
  mutable n_catchups : int;
  mutable n_dup_acks : int;
  mutable n_torn_repaired : int;  (* torn/suspect suffixes truncated locally *)
  mutable n_corrupt_quarantined : int;  (* quarantine entries (transitions) *)
  mutable n_peer_repairs : int;  (* quarantines cleared by state transfer *)
  mutable vc_detect_at : int;  (* -1 when no election is in flight *)
  mutable max_election_us : int;
  mutable tracer : Obs.Trace.t;
  mutable vc_span : Obs.Trace.span;  (* open View_change span, if any *)
}

let create net ?station ~leader_site ~replica_sites () =
  let sites = Array.of_list (leader_site :: replica_sites) in
  let n = Array.length sites in
  let members =
    Array.mapi
      (fun i site ->
        let store =
          Sim.Durable.create ~site ~name:(Fmt.str "group-l%d-m%d" leader_site i)
        in
        {
          m_idx = i;
          m_site = site;
          m_store = store;
          m_log = Sim.Durable.log store;
          m_stash = Hashtbl.create 8;
          m_view = 0;
          m_status = Normal;
          m_last_heard = 0;
          m_vc_view = 0;
          m_vc_since = 0;
          m_dvc = Array.make n None;
          m_sv_acked = Array.make n false;
          m_was_down = false;
          m_quarantined = false;
          m_repair_span = Obs.Trace.none;
        })
      sites
  in
  {
    net;
    engine = Sim.Net.engine net;
    station;
    members;
    n;
    majority = (n / 2) + 1;
    pending = Hashtbl.create 64;
    heard = Array.make n 0;
    view = 0;
    leader_idx = 0;
    serve_after = 0;
    cfg = None;
    horizon = 0;
    on_leader_change = (fun ~leader_site:_ ~committed:_ -> ());
    n_view_changes = 0;
    n_heartbeats = 0;
    n_catchups = 0;
    n_dup_acks = 0;
    n_torn_repaired = 0;
    n_corrupt_quarantined = 0;
    n_peer_repairs = 0;
    vc_detect_at = -1;
    max_election_us = 0;
    tracer = Obs.Trace.disabled;
    vc_span = Obs.Trace.none;
  }

let set_tracer t tracer = t.tracer <- tracer

let majority t = t.majority

let view t = t.view

let leader_site t = t.members.(t.leader_idx).m_site

let log_length t = Sim.Durable.length t.members.(t.leader_idx).m_log

let committed t =
  List.map (fun e -> e.e_payload) (Sim.Durable.to_list t.members.(t.leader_idx).m_log)

let now t = Sim.Engine.now t.engine

let candidate_of t v = v mod t.n

let entry_bytes e = e.e_bytes

let log_bytes entries = List.fold_left (fun acc e -> acc + e.e_bytes) 32 entries

(* Deliver [f] at member [m]; the handler is dropped if the site crashed
   after the message was sent (Net only filters at send time). *)
let msend t ~src ~bytes (m : 'a member) f =
  Sim.Net.send ~bytes t.net ~src:src.m_site ~dst:m.m_site (fun () ->
      if not (Sim.Net.is_down t.net m.m_site) then f ())

(* Batched counterpart of [msend], used by the replication data plane only
   (appends and acks). When the network has a batching policy this is what
   turns leader-side replication into group commit: appends buffered on the
   leader->follower link ship as one envelope (one quorum round per batch),
   the follower's acks coalesce on the way back, and the handler's envelope
   index lets ack processing amortize station cost. Control-plane traffic
   (heartbeats, view changes, catch-up) stays on [msend] — batching a
   failure detector would distort the very timeouts it measures. *)
let mpost t ~src ~bytes (m : 'a member) f =
  Sim.Net.post ~bytes t.net ~src:src.m_site ~dst:m.m_site (fun env_idx ->
      if not (Sim.Net.is_down t.net m.m_site) then f env_idx)

let adopt_view (m : 'a member) v =
  m.m_view <- v;
  Sim.Durable.set_int m.m_store "view" v

(* ------------------------------------------------------------------ *)
(* Storage integrity: verification + repair policy                     *)
(* ------------------------------------------------------------------ *)

(* Durable count of entries this member has seen commit: the leader writes
   it when a proposal gathers its majority, and followers learn it from the
   commit count piggybacked on heartbeats (clamped to their own log — only
   entries a follower actually holds are known-committed to it). The repair
   policy pivots on it — damage at or above the commit count is a suspect
   suffix we can drop and refetch; damage below it means locally-lost
   committed state, which only a peer state transfer can restore. *)
let commit_count (m : 'a member) =
  Sim.Durable.get_int m.m_store "commit" ~default:0

let record_commit (m : 'a member) idx =
  (* Majorities for different indices can land out of order. *)
  if idx + 1 > commit_count m then Sim.Durable.set_int m.m_store "commit" (idx + 1)

let learn_commit (m : 'a member) count =
  let count = min count (Sim.Durable.length m.m_log) in
  if count > commit_count m then Sim.Durable.set_int m.m_store "commit" count

let quarantine t (m : 'a member) ~at =
  if not m.m_quarantined then begin
    m.m_quarantined <- true;
    t.n_corrupt_quarantined <- t.n_corrupt_quarantined + 1;
    if Obs.Trace.enabled t.tracer then
      m.m_repair_span <-
        Obs.Trace.begin_span ~parent:Obs.Trace.none ~site:m.m_site t.tracer
          ~kind:Obs.Trace.Repair
          ~name:(Fmt.str "quarantine m%d idx=%d" m.m_idx at)
          ~ts:(now t)
  end

(* Check the member's log against its framing and apply the repair policy:
   torn tails are truncated to the surviving prefix; a corrupt or resurfaced
   suffix at/above the commit count is dropped (catch-up refetches it); any
   damage below the commit count quarantines the member until a peer state
   transfer restores the committed prefix. No-op (and message-free) on a
   clean log, so fault-free schedules are untouched. *)
let verify_storage t (m : 'a member) =
  match Sim.Durable.read_verified m.m_log with
  | Sim.Durable.Ok -> ()
  | Sim.Durable.Torn_tail n ->
    Sim.Durable.repair_torn_tail m.m_log;
    t.n_torn_repaired <- t.n_torn_repaired + 1;
    if Obs.Trace.enabled t.tracer then
      Obs.Trace.instant ~site:m.m_site t.tracer ~kind:Obs.Trace.Repair
        ~name:(Fmt.str "torn-tail m%d len=%d" m.m_idx n)
        ~ts:(now t);
    if n < commit_count m then quarantine t m ~at:n
  | Sim.Durable.Corrupt i ->
    if i >= commit_count m then begin
      Sim.Durable.truncate m.m_log i;
      t.n_torn_repaired <- t.n_torn_repaired + 1;
      if Obs.Trace.enabled t.tracer then
        Obs.Trace.instant ~site:m.m_site t.tracer ~kind:Obs.Trace.Repair
          ~name:(Fmt.str "drop-suspect-suffix m%d idx=%d" m.m_idx i)
          ~ts:(now t)
    end
    else quarantine t m ~at:i

let install_log t (m : 'a member) entries =
  Sim.Durable.replace m.m_log entries;
  Hashtbl.reset m.m_stash;
  if m.m_quarantined then
    if List.length entries >= commit_count m then begin
      m.m_quarantined <- false;
      t.n_peer_repairs <- t.n_peer_repairs + 1;
      if Obs.Trace.enabled t.tracer then begin
        Obs.Trace.end_span t.tracer m.m_repair_span ~ts:(now t);
        m.m_repair_span <- Obs.Trace.none
      end
    end
    else if Obs.Trace.enabled t.tracer then
      (* No peer had the committed suffix: stay quarantined (fail-stop);
         the run's [unrepaired] stat carries the diagnostic. *)
      Obs.Trace.instant ~site:m.m_site t.tracer ~kind:Obs.Trace.Repair
        ~name:
          (Fmt.str "state-transfer-short m%d got=%d need=%d" m.m_idx
             (List.length entries) (commit_count m))
        ~ts:(now t)

(* What this member may contribute to an election: a quarantined log is
   trusted only up to the first verified frame. *)
let dvc_entries t (m : 'a member) =
  verify_storage t m;
  if m.m_quarantined then Sim.Durable.verified_prefix m.m_log
  else Sim.Durable.to_list m.m_log

(* ------------------------------------------------------------------ *)
(* Replication (both modes)                                            *)
(* ------------------------------------------------------------------ *)

let send_ack t (m : 'a member) ~to_m ~view ~idx =
  mpost t ~src:m ~bytes:16 to_m (fun env_idx ->
      let process () =
        (* Acks for an entry are deduplicated per replica: Net duplication
           must not count one replica's ack twice toward the majority. *)
        if
          t.cfg = None
          || (to_m.m_status = Normal && view = to_m.m_view)
        then begin
          t.heard.(m.m_idx) <- now t;
          match Hashtbl.find_opt t.pending idx with
          | Some pd when pd.pd_view = view ->
            if pd.pd_acked.(m.m_idx) then t.n_dup_acks <- t.n_dup_acks + 1
            else begin
              pd.pd_acked.(m.m_idx) <- true;
              pd.pd_acks <- pd.pd_acks + 1;
              if (not pd.pd_fired) && pd.pd_acks >= t.majority - 1 then begin
                pd.pd_fired <- true;
                Hashtbl.remove t.pending idx;
                pd.pd_k ()
              end
            end
          | Some _ | None -> ()
        end
      in
      match t.station with
      | None -> process ()
      | Some st ->
        Sim.Station.submit st process
          ~cost:
            (Sim.Station.amortized ~full:(Sim.Station.service_time_us st)
               env_idx))

let rec request_catchup t (m : 'a member) =
  Array.iter
    (fun o ->
      if o.m_idx <> m.m_idx then
        msend t ~src:m ~bytes:16 o (fun () -> recv_catchup_req t o ~from:m))
    t.members

and recv_catchup_req t (m : 'a member) ~from =
  (* Only a member that believes itself the leader of its view answers —
     and only from a log that verifies, or corruption would spread through
     the very channel meant to repair it. *)
  if m.m_status = Normal && candidate_of t m.m_view = m.m_idx then begin
    verify_storage t m;
    if m.m_quarantined then ()
    else begin
    let entries = Sim.Durable.to_list m.m_log in
    let v = m.m_view in
    msend t ~src:m ~bytes:(log_bytes entries) from (fun () ->
        recv_catchup_rep t from ~view:v ~entries)
    end
  end

and recv_catchup_rep t (m : 'a member) ~view ~entries =
  if
    view > m.m_view
    || (view = m.m_view
        && List.length entries > Sim.Durable.length m.m_log)
    || (m.m_quarantined && view >= m.m_view)
  then begin
    adopt_view m view;
    m.m_status <- Normal;
    install_log t m entries;
    m.m_last_heard <- now t;
    t.n_catchups <- t.n_catchups + 1
  end

let recv_append t (m : 'a member) ~from ~idx ~entry =
  match t.cfg with
  | None ->
    (* Failure-free mode: append blindly (indices are cosmetic) and ack —
       the pre-view-change behavior, byte for byte. *)
    ignore (Sim.Durable.append m.m_log ~bytes:entry.e_bytes entry);
    send_ack t m ~to_m:from ~view:entry.e_view ~idx
  | Some _ ->
    (* A quarantined member must not ack: its ack claims a prefix it does
       not intactly hold. The periodic tick keeps requesting repair. *)
    if m.m_status <> Normal || m.m_quarantined || entry.e_view < m.m_view
    then ()
    else if entry.e_view > m.m_view then
      (* We missed a view change; learn the new state before acking. *)
      request_catchup t m
    else begin
      m.m_last_heard <- now t;
      let len = Sim.Durable.length m.m_log in
      if idx < len then send_ack t m ~to_m:from ~view:entry.e_view ~idx
      else if idx = len then begin
        ignore (Sim.Durable.append m.m_log ~bytes:entry.e_bytes entry);
        send_ack t m ~to_m:from ~view:entry.e_view ~idx;
        (* Drain any reordered successors that were stashed. *)
        let rec drain () =
          let len = Sim.Durable.length m.m_log in
          match Hashtbl.find_opt m.m_stash len with
          | Some e ->
            Hashtbl.remove m.m_stash len;
            ignore (Sim.Durable.append m.m_log ~bytes:e.e_bytes e);
            send_ack t m ~to_m:from ~view:e.e_view ~idx:len;
            drain ()
          | None -> ()
        in
        drain ()
      end
      else begin
        Hashtbl.replace m.m_stash idx entry;
        request_catchup t m
      end
    end

let replicate t ?(bytes = 128) payload k =
  let lm = t.members.(t.leader_idx) in
  let entry = { e_view = t.view; e_payload = payload; e_bytes = bytes } in
  let idx = Sim.Durable.append lm.m_log ~bytes entry in
  if t.majority - 1 = 0 then begin
    record_commit lm idx;
    k ()
  end
  else begin
    let pd =
      {
        pd_view = t.view;
        pd_acked = Array.make t.n false;
        pd_acks = 0;
        pd_fired = false;
        pd_k =
          (fun () ->
            record_commit lm idx;
            k ());
      }
    in
    pd.pd_acked.(lm.m_idx) <- true;
    Hashtbl.replace t.pending idx pd;
    Array.iter
      (fun m ->
        if m.m_idx <> lm.m_idx then
          mpost t ~src:lm ~bytes m (fun _env_idx ->
              recv_append t m ~from:lm ~idx ~entry))
      t.members
  end

(* ------------------------------------------------------------------ *)
(* View changes (failover mode)                                        *)
(* ------------------------------------------------------------------ *)

let maybe_activate t (m : 'a member) cfg =
  let acks = Array.fold_left (fun a b -> if b then a + 1 else a) 0 m.m_sv_acked in
  if acks >= t.majority && t.view < m.m_view then begin
    t.view <- m.m_view;
    t.leader_idx <- m.m_idx;
    t.serve_after <- now t + cfg.grace_us;
    Array.fill t.heard 0 t.n (now t);
    Hashtbl.reset t.pending;  (* older-view proposals never commit *)
    t.n_view_changes <- t.n_view_changes + 1;
    if t.vc_detect_at >= 0 then begin
      let d = now t - t.vc_detect_at in
      if d > t.max_election_us then t.max_election_us <- d;
      t.vc_detect_at <- -1;
      if Obs.Trace.enabled t.tracer then begin
        Obs.Trace.end_span t.tracer t.vc_span ~ts:(now t);
        t.vc_span <- Obs.Trace.none
      end
    end;
    t.on_leader_change ~leader_site:m.m_site
      ~committed:(List.map (fun e -> e.e_payload) (Sim.Durable.to_list m.m_log))
  end

let rec recv_start_view t (m : 'a member) ~from ~view ~entries =
  if view > m.m_view || (view = m.m_view && m.m_status = View_change) then begin
    adopt_view m view;
    m.m_status <- Normal;
    install_log t m entries;
    m.m_last_heard <- now t;
    send_sv_ack t m ~to_m:from ~view
  end
  else if view = m.m_view && m.m_status = Normal then
    (* Duplicate StartView: re-ack so the new leader can activate. *)
    send_sv_ack t m ~to_m:from ~view

and send_sv_ack t (m : 'a member) ~to_m ~view =
  msend t ~src:m ~bytes:16 to_m (fun () ->
      match t.cfg with
      | None -> ()
      | Some cfg ->
        if
          to_m.m_status = Normal && view = to_m.m_view
          && candidate_of t view = to_m.m_idx
        then
          if not to_m.m_sv_acked.(m.m_idx) then begin
            to_m.m_sv_acked.(m.m_idx) <- true;
            maybe_activate t to_m cfg
          end)

let rec check_dvc_quorum t (m : 'a member) cfg =
  let got = Array.fold_left (fun a o -> if o <> None then a + 1 else a) 0 m.m_dvc in
  if m.m_status = View_change && got >= t.majority then begin
    (* Longest log from the latest view wins — it contains every entry that
       could have committed (any commit majority intersects this quorum). *)
    let rank entries =
      match List.rev entries with
      | [] -> (-1, 0)
      | last :: _ -> (last.e_view, List.length entries)
    in
    let best = ref [] in
    let need = ref 0 in
    Array.iter
      (function
        | Some (entries, commit) ->
          if rank entries > rank !best then best := entries;
          if commit > !need then need := commit
        | None -> ())
      m.m_dvc;
    let v = m.m_vc_view in
    adopt_view m v;
    m.m_status <- Normal;
    install_log t m !best;
    m.m_last_heard <- now t;
    if List.length !best < !need then begin
      (* Every quorum log is damaged below some member's durable commit
         count: committed state is lost and no peer in this quorum has the
         suffix. Fail-stop — take the view but stay quarantined (no
         StartView, no serving), so the group halts with a diagnostic
         instead of silently serving a truncated history. *)
      quarantine t m ~at:(List.length !best);
      if Obs.Trace.enabled t.tracer then
        Obs.Trace.instant ~site:m.m_site t.tracer ~kind:Obs.Trace.Repair
          ~name:
            (Fmt.str "elected-log-short m%d got=%d need=%d" m.m_idx
               (List.length !best) !need)
          ~ts:(now t)
    end
    else begin
      m.m_sv_acked <- Array.make t.n false;
      m.m_sv_acked.(m.m_idx) <- true;
      let entries = !best in
      Array.iter
        (fun o ->
          if o.m_idx <> m.m_idx then
            msend t ~src:m ~bytes:(log_bytes entries) o (fun () ->
                recv_start_view t o ~from:m ~view:v ~entries))
        t.members;
      maybe_activate t m cfg
    end
  end

and start_view_change t (m : 'a member) cfg v =
  m.m_status <- View_change;
  m.m_vc_view <- v;
  m.m_vc_since <- now t;
  m.m_dvc <- Array.make t.n None;
  if t.vc_detect_at < 0 then begin
    t.vc_detect_at <- now t;
    if Obs.Trace.enabled t.tracer then
      t.vc_span <-
        Obs.Trace.begin_span ~parent:Obs.Trace.none ~site:m.m_site t.tracer
          ~kind:Obs.Trace.View_change ~name:"view_change" ~ts:(now t)
  end;
  Array.iter
    (fun o ->
      if o.m_idx <> m.m_idx then
        msend t ~src:m ~bytes:16 o (fun () -> recv_svc t o cfg ~view:v))
    t.members;
  let cand = candidate_of t v in
  let entries = dvc_entries t m in
  let commit = commit_count m in
  if cand = m.m_idx then begin
    m.m_dvc.(m.m_idx) <- Some (entries, commit);
    check_dvc_quorum t m cfg
  end
  else
    msend t ~src:m ~bytes:(log_bytes entries) t.members.(cand) (fun () ->
        recv_dvc t t.members.(cand) cfg ~from:m.m_idx ~view:v ~entries ~commit)

and recv_svc t (m : 'a member) cfg ~view =
  let interested =
    match m.m_status with
    | Normal -> view > m.m_view
    | View_change -> view > m.m_vc_view
  in
  if interested then start_view_change t m cfg view

and recv_dvc t (m : 'a member) cfg ~from ~view ~entries ~commit =
  let joined =
    match m.m_status with
    | View_change -> view > m.m_vc_view
    | Normal -> view > m.m_view
  in
  if joined then start_view_change t m cfg view;
  if m.m_status = View_change && view = m.m_vc_view && candidate_of t view = m.m_idx
  then begin
    m.m_dvc.(from) <- Some (entries, commit);
    check_dvc_quorum t m cfg
  end

(* ------------------------------------------------------------------ *)
(* Heartbeats, leases, failure detection                               *)
(* ------------------------------------------------------------------ *)

let recv_pong t (m : 'a member) ~from ~view =
  if m.m_status = Normal && view = m.m_view then t.heard.(from) <- now t

let recv_pong_stale t (m : 'a member) ~newer_view =
  (* A deposed leader learns it was replaced: step down and catch up. *)
  if newer_view > m.m_view then begin
    adopt_view m newer_view;
    m.m_status <- Normal;
    m.m_last_heard <- now t;
    request_catchup t m
  end

let recv_ping t (m : 'a member) ~from ~view ~len ~commit =
  if view > m.m_view then begin
    m.m_last_heard <- now t;
    request_catchup t m
  end
  else if view < m.m_view then
    let v = m.m_view in
    msend t ~src:m ~bytes:16 from (fun () -> recv_pong_stale t from ~newer_view:v)
  else begin
    m.m_last_heard <- now t;
    if m.m_status = Normal then begin
      learn_commit m commit;
      if len > Sim.Durable.length m.m_log then request_catchup t m;
      msend t ~src:m ~bytes:16 from (fun () ->
          recv_pong t from ~from:m.m_idx ~view)
    end
  end

let leader_duties t (m : 'a member) =
  let len = Sim.Durable.length m.m_log in
  let v = m.m_view in
  let commit = commit_count m in
  Array.iter
    (fun o ->
      if o.m_idx <> m.m_idx then begin
        t.n_heartbeats <- t.n_heartbeats + 1;
        msend t ~src:m ~bytes:24 o (fun () ->
            recv_ping t o ~from:m ~view:v ~len ~commit)
      end)
    t.members

let rec tick t (m : 'a member) () =
  match t.cfg with
  | None -> ()
  | Some cfg ->
    if now t <= t.horizon then begin
      (if Sim.Net.is_down t.net m.m_site then m.m_was_down <- true
       else if m.m_was_down then begin
         (* First tick after recovery: volatile state is gone; rejoin from
            the durable log + view — after checking the log survived the
            crash intact — and let catch-up repair the rest. *)
         m.m_was_down <- false;
         m.m_status <- Normal;
         Hashtbl.reset m.m_stash;
         m.m_last_heard <- now t;
         verify_storage t m;
         request_catchup t m
       end
       else
         match m.m_status with
         | Normal when m.m_quarantined ->
           (* No duties (a quarantined leader goes silent so the lease
              expires and followers elect around it); keep begging for the
              state transfer that repairs us. *)
           request_catchup t m
         | Normal when candidate_of t m.m_view = m.m_idx -> leader_duties t m
         | Normal ->
           if now t - m.m_last_heard > cfg.lease_us then
             start_view_change t m cfg (m.m_view + 1)
         | View_change ->
           if now t - m.m_vc_since > cfg.lease_us then
             (* The candidate itself is dead or cut off: try the next one. *)
             start_view_change t m cfg (m.m_vc_view + 1));
      Sim.Engine.schedule ~kind:"repl.timer" t.engine ~after:cfg.heartbeat_us
        (tick t m)
    end

let enable_failover t ?(config = default_failover) ?on_leader_change ~until_us ()
    =
  t.cfg <- Some config;
  t.horizon <- until_us;
  (match on_leader_change with Some f -> t.on_leader_change <- f | None -> ());
  Array.fill t.heard 0 t.n (now t);
  Array.iter
    (fun m ->
      (* Wire the scrub pass into the repair policy: a background scan that
         flags this log runs the same verify-and-repair path recovery uses,
         then asks peers for the missing state. Repair needs the failover
         machinery (elections, catch-up), hence registered here. *)
      Sim.Durable.set_repairer m.m_log (fun _ ->
          if not (Sim.Net.is_down t.net m.m_site) then begin
            verify_storage t m;
            request_catchup t m
          end);
      m.m_last_heard <- now t;
      (* Stagger first ticks so members never probe in lockstep. *)
      Sim.Engine.schedule ~kind:"repl.timer" t.engine
        ~after:(config.heartbeat_us + (m.m_idx * 1_009))
        (tick t m))
    t.members

let has_lease t cfg =
  let n = now t in
  (* Past the failover horizon the heartbeat timers have wound down (they
     must, or the event queue would never drain), so staleness no longer
     means anything — the last holder keeps the lease. *)
  n > t.horizon
  ||
  let cnt = ref 0 in
  Array.iteri
    (fun i _ -> if i = t.leader_idx || n - t.heard.(i) <= cfg.lease_us then incr cnt)
    t.heard;
  !cnt >= t.majority

let serving t =
  match t.cfg with
  | None -> true
  | Some cfg ->
    let lm = t.members.(t.leader_idx) in
    lm.m_status = Normal && lm.m_view = t.view
    && (not lm.m_quarantined)
    && (not (Sim.Net.is_down t.net lm.m_site))
    && now t >= t.serve_after && has_lease t cfg

type stats = {
  view_changes : int;
  heartbeats : int;
  catchups : int;
  dup_acks : int;
  max_election_us : int;
  durable_appends : int;
  durable_bytes : int;
  torn_repaired : int;
  corrupt_quarantined : int;
  peer_repairs : int;
  unrepaired : int;
}

let stats t =
  let appends, bytes =
    Array.fold_left
      (fun (a, b) m ->
        (a + Sim.Durable.appends m.m_store, b + Sim.Durable.bytes_written m.m_store))
      (0, 0) t.members
  in
  {
    view_changes = t.n_view_changes;
    heartbeats = t.n_heartbeats;
    catchups = t.n_catchups;
    dup_acks = t.n_dup_acks;
    max_election_us = t.max_election_us;
    durable_appends = appends;
    durable_bytes = bytes;
    torn_repaired = t.n_torn_repaired;
    corrupt_quarantined = t.n_corrupt_quarantined;
    peer_repairs = t.n_peer_repairs;
    unrepaired =
      Array.fold_left
        (fun a m -> if m.m_quarantined then a + 1 else a)
        0 t.members;
  }

let _ = entry_bytes
