type outcome = Committed of int | Aborted

type version = { ts : int; writer : int; value : int }

type meta = {
  id : int;
  proc : int;
  priority : int * int;
  mutable wounded : bool;
  mutable outcome : outcome option;
}

type table = {
  metas : (int, meta) Hashtbl.t;
  mutable next_id : int;
  mutable next_tiebreak : int;
  mutable n_wounds : int;
}

let table_create () =
  { metas = Hashtbl.create 1024; next_id = 0; next_tiebreak = 0; n_wounds = 0 }

let tiebreak t =
  let x = t.next_tiebreak in
  t.next_tiebreak <- x + 1;
  x

let fresh t ~proc ~priority =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let m = { id; proc; priority; wounded = false; outcome = None } in
  Hashtbl.add t.metas id m;
  m

let find t id = Hashtbl.find t.metas id

let wound t id =
  let m = find t id in
  if not m.wounded then begin
    m.wounded <- true;
    t.n_wounds <- t.n_wounds + 1
  end

let is_wounded t id = (find t id).wounded

let wounds t = t.n_wounds
