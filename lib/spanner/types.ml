type outcome = Committed of int | Aborted

type version = { ts : int; writer : int; value : int }

(* What a shard leader writes to its replicated log. [Rprepare] makes a 2PC
   participant's promise durable; [Routcome] makes the decision durable (the
   commit record is forced before any side effect). A new leader rebuilds
   its multi-version store and prepared-transaction table by replaying these
   in order; prepares with no logged outcome are the in-doubt set. *)
type repl_entry =
  | Rprepare of {
      r_txn : int;
      r_tp : int;
      r_tee : int;
      r_writes : (int * int) list;
      r_coord : int;
      r_participants : int list;
    }
  | Routcome of {
      r_txn : int;
      r_out : outcome;
      r_writes : (int * int) list;
      r_max_tee : int;
    }
  (* Placement epoch bumps. [Rmigrate_out] pins the source's write
     watermark at the migration timestamp so a rebuilt source leader can
     never commit below [t_m] again; [Rmigrate_in] carries the shipped
     snapshot so a rebuilt destination still holds every version below
     [t_m]. Installation merges by timestamp, so replaying a duplicate
     (from a retried ship) is a no-op. *)
  | Rmigrate_out of { m_lo : int; m_hi : int; m_tm : int }
  | Rmigrate_in of {
      m_lo : int;
      m_hi : int;
      m_tm : int;
      m_versions : (int * version list) list;
    }

type meta = {
  id : int;
  proc : int;
  priority : int * int;
  mutable wounded : bool;
  mutable outcome : outcome option;
}

type table = {
  metas : (int, meta) Hashtbl.t;
  mutable next_id : int;
  mutable next_tiebreak : int;
  mutable n_wounds : int;
}

let table_create () =
  { metas = Hashtbl.create 1024; next_id = 0; next_tiebreak = 0; n_wounds = 0 }

let tiebreak t =
  let x = t.next_tiebreak in
  t.next_tiebreak <- x + 1;
  x

let fresh t ~proc ~priority =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let m = { id; proc; priority; wounded = false; outcome = None } in
  Hashtbl.add t.metas id m;
  m

let find t id = Hashtbl.find t.metas id

let wound t id =
  let m = find t id in
  if not m.wounded then begin
    m.wounded <- true;
    t.n_wounds <- t.n_wounds + 1
  end

let is_wounded t id = (find t id).wounded

let wounds t = t.n_wounds
