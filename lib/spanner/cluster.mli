(** Top-level assembly of a simulated Spanner / Spanner-RSS deployment:
    engine wiring, shards, protocol context, and the execution history used
    to verify each run against its consistency model. *)

type t

val create : Sim.Engine.t -> rng:Sim.Rng.t -> Config.t -> t

val engine : t -> Sim.Engine.t
val config : t -> Config.t
val ctx : t -> Protocol.ctx
val net : t -> Sim.Net.t
val truetime : t -> Sim.Truetime.t

val txn_outcome : t -> int -> Types.outcome option
(** The 2PC outcome recorded for a transaction attempt ([None] while
    undecided). Chaos audits use this to sweep committed-but-unacknowledged
    attempts into the history after a run. *)

val fresh_proc : t -> int
(** A new session (process) id for history purposes. *)

val fresh_value : t -> int
(** A run-unique stored value (for auto-valued writes). *)

val record : t -> Rss_core.Witness.txn -> unit

val set_record_hook : t -> (Rss_core.Witness.txn -> unit) -> unit
(** Observe every {!record} call as it happens — the feed for online
    checking. One hook at a time; defaults to [ignore]. *)

val records : t -> Rss_core.Witness.txn array

val check_history : t -> (unit, string) result
(** Verify the collected history against the cluster's own consistency model
    (strict serializability or RSS) using the timestamp witness. *)

(** {2 Tracing} *)

val set_tracer : t -> Obs.Trace.t -> unit
(** Install a span sink cluster-wide: network hops, 2PC phases, RO
    blocking, RPC retries, and view changes all record into it (see
    {!Protocol.set_tracer}); [Client] operations add their own root spans.
    Tracing is passive — it never draws randomness or schedules events —
    so a traced run follows the same seeded schedule as an untraced one. *)

val tracer : t -> Obs.Trace.t

(** {2 Run statistics} *)

type stats = {
  rw_committed : int;
  rw_aborted_attempts : int;
  wounds : int;
  ro_count : int;
  ro_slow : int;  (** client had to wait for slow replies *)
  ro_blocked_at_shards : int;  (** shard-side blocking events *)
  messages : int;
}

val stats : t -> stats

(** {2 Failover} *)

val enable_failover :
  t -> rng:Sim.Rng.t -> ?config:Replication.Group.failover_config ->
  until_us:int -> unit -> unit
(** Arm view-change failover on every shard group plus the client
    terminate / in-doubt resolution machinery (see
    {!Protocol.enable_failover}). [rng] should be a dedicated stream (e.g.
    a {!Sim.Rng.split} the caller owns): it feeds retry jitter only, so the
    cluster's fault-free behavior stays byte-identical. *)

(** {2 Overload & gray-failure controls}

    Cluster-level passthroughs to {!Protocol}'s flow controls; all
    default-off and byte-identity-preserving when unarmed. *)

val stations : t -> Sim.Station.t list
(** Every shard leader's station (queue-depth / sojourn recorders live
    there once admission or observation is armed). *)

val set_site_slowdown : t -> site:int -> factor:int -> unit
(** Gray failure: shards currently led from [site] serve [factor]x slower. *)

val clear_slowdowns : t -> unit

val set_admission : t -> Sim.Station.limits option -> unit
(** Bounded queues + load shedding at every shard leader (client-facing
    entry points only; see {!Protocol.set_admission}). *)

val set_drop_expired : t -> bool -> unit
(** Deadline propagation: drop work whose riding deadline has passed
    before its projected service start (see {!Protocol.set_drop_expired}). *)

val set_hedge_us : t -> int -> unit
(** Hedged RO reads: duplicate an RO still unfinished after this many µs,
    first completion wins. 0 disables. *)

val set_retry_budget : t -> Sim.Rpc.Budget.t option -> unit
(** Fleet-wide retry token bucket; dry bucket → ops abandon instead of
    amplifying overload. *)

type flow_stats = {
  expired : int;  (** requests dropped expired at dequeue *)
  shed : int;  (** requests NACKed by admission control *)
  abandoned : int;  (** ops given up: expired or out of budget *)
  hedges : int;  (** hedge reads actually issued *)
  hedge_wins : int;  (** hedges that beat the primary *)
}

val flow_stats : t -> flow_stats

(** {2 Elastic placement} *)

val directory : t -> Place.Directory.t
(** The cluster's authoritative placement directory (epoch 0 equals the
    static [Config.shard_of_key] layout). *)

val migrate :
  ?no_fence:bool -> t -> lo:int -> hi:int -> dst:int ->
  (Place.Migrate.result -> unit) -> unit
(** Live-migrate key range [\[lo, hi)] to shard [dst] while the workload
    runs; see {!Protocol.migrate}. [?no_fence] is the unsafe mutation
    control used by safety tests. *)

type place_stats = {
  epoch : int;  (** current directory epoch *)
  migrations : int;  (** completed *)
  migrations_failed : int;
  migration_retries : int;  (** per-source fence/ship re-attempts *)
  keys_moved : int;
  redirects : int;  (** ops bounced off a non-owning shard *)
  fence_blocked : int;  (** lock acquisitions refused by a fence *)
  fence_hold_us : int;
  max_fence_hold_us : int;
  directory_appends : int;  (** durable directory log appends *)
}

val place_stats : t -> place_stats

type failover_stats = {
  view_changes : int;
  heartbeats : int;
  catchups : int;
  dup_acks : int;  (** duplicate replication acks suppressed *)
  max_election_us : int;  (** worst leader-failure detection-to-activation *)
  terminates : int;
  terminate_commits : int;
  in_doubt_resolved : int;
  rpc_retries : int;
  rpc_exhausted : int;
  durable_appends : int;
  durable_bytes : int;
  torn_repaired : int;  (** log suffixes truncated by the repair policy *)
  corrupt_quarantined : int;  (** members quarantined for mid-log damage *)
  peer_repairs : int;  (** quarantines cleared by peer state transfer *)
  unrepaired : int;  (** members still quarantined (fail-stopped) *)
}

val failover_stats : t -> failover_stats
