(** Per-shard leader state: multi-version store, prepared-transaction table,
    lock table, replication group, Paxos max-write timestamp.

    Protocol logic (2PC, read-only transactions, failover) lives in
    {!Protocol}; this module owns the data structures and the local
    invariants:
    - versions per key are kept newest-first; commit timestamps of writes to
      a key are strictly increasing (Observation 1 of Appendix D.1);
    - a prepared transaction's waiters fire exactly once, when it resolves;
    - [max_write_ts] only advances, and every prepare timestamp exceeds it
      at choice time.

    [leader_site] and [locks] are mutable because a view change in the
    shard's replication group moves leadership to another site and discards
    the old leader's volatile lock state; {!rebuild} reconstructs the rest
    from the replicated log. *)

type prepared = {
  p_txn : int;
  p_tp : int;  (** prepare timestamp *)
  mutable p_tee : int;  (** earliest client end estimate (absolute) *)
  p_writes : (int * int) list;  (** (key, value) this txn will write here *)
  mutable p_waiters : (Types.outcome -> unit) list;
  p_coord : int;  (** 2PC coordinator shard id (for in-doubt resolution) *)
  p_participants : int list;  (** all participants; only at the coordinator *)
}

type fence = { f_lo : int; f_hi : int; f_since : int }
(** Migration fence over [\[f_lo, f_hi)]: while set, the protocol layer
    bounces new lock acquisitions on the range so it can drain.
    Deliberately volatile — {!rebuild} clears it, and the migration driver
    re-checks the fence before committing the epoch. *)

type t = {
  shard_id : int;
  mutable leader_site : int;
  engine : Sim.Engine.t;
  tt : Sim.Truetime.t;
  txns : Types.table;
  station : Sim.Station.t;
  repl : Types.repl_entry Replication.Group.t;
  mutable locks : Locks.t;
  store : (int, Types.version list) Hashtbl.t;
  prepared_tbl : (int, prepared) Hashtbl.t;
  decided_tbl : (int, Types.outcome * int) Hashtbl.t;
      (** per-txn decided outcome and max t_ee; answers terminate/status
          queries and deduplicates outcome deliveries *)
  in_doubt : (int, unit) Hashtbl.t;
      (** txns with a coordinator status query in flight *)
  mutable max_write_ts : int;
  mutable fence : fence option;
  mutable n_ro_served : int;
  mutable n_ro_blocked : int;
  mutable n_rebuilds : int;
  wound_prepared_hook : (int -> unit) ref;
      (** set by {!Protocol.make_ctx}: routes a wound against a prepared
          holder to its 2PC coordinator *)
}

val create :
  Sim.Engine.t -> Sim.Net.t -> Sim.Truetime.t -> Types.table -> Config.t ->
  shard_id:int -> t

val read_version_at : t -> key:int -> ts:int -> Types.version option
(** Latest committed version with [ts' <= ts]. *)

val apply_write : t -> key:int -> ts:int -> writer:int -> value:int -> unit
(** Raises [Invalid_argument] if [ts] does not exceed the key's newest
    version (the per-key monotonicity invariant). *)

val advance_max_write_ts : t -> int -> unit

val choose_prepare_ts : t -> int
(** A fresh prepare timestamp > [max_write_ts]; advances [max_write_ts]. *)

val trace_txn : int ref
(** Diagnostic: print prepared-table events for this txn id to stderr. *)

val add_prepared : t -> prepared -> unit

val prepared : t -> int -> prepared option

val conflicting_prepared : t -> keys:int list -> max_tp:int -> prepared list
(** Prepared transactions writing any of [keys] here with tp <= [max_tp]. *)

val wait_prepared : t -> prepared -> (Types.outcome -> unit) -> unit

val resolve_prepared : t -> txn:int -> Types.outcome -> unit
(** Apply writes (on commit), drop the entry, fire waiters. Does not touch
    locks — callers release via [t.locks]. No-op if absent. *)

(** {2 Placement} *)

val set_fence : t -> lo:int -> hi:int -> unit
val clear_fence : t -> unit

val fenced : t -> int -> bool
(** Is this key inside the current fence (if any)? *)

val prepared_in_range : t -> lo:int -> hi:int -> bool
(** Does any prepared transaction write a key in [\[lo, hi)]? *)

val snapshot_range : t -> lo:int -> hi:int -> owned:(int -> bool) -> (int * Types.version list) list
(** Full version lists for every stored key in [\[lo, hi)] passing
    [owned], sorted by key. *)

val install_versions : t -> (int * Types.version list) list -> int
(** Merge shipped version lists into the store (dedup by timestamp, so a
    retried ship is idempotent); returns the number of keys touched. *)

val decided : t -> int -> (Types.outcome * int) option

val set_decided : t -> txn:int -> Types.outcome -> max_tee:int -> unit

val rebuild : t -> entries:Types.repl_entry list -> unit
(** Install a new leader's state from the replicated log: reset every
    volatile table, replay prepares and outcomes in order (outcomes
    deduplicated via the decided table), re-acquire write locks for
    surviving prepared transactions. The survivors are the in-doubt set the
    caller must resolve against their coordinators. *)
