(** Per-shard leader state: multi-version store, prepared-transaction table,
    lock table, replication group, Paxos max-write timestamp.

    Protocol logic (2PC, read-only transactions) lives in {!Protocol}; this
    module owns the data structures and the local invariants:
    - versions per key are kept newest-first; commit timestamps of writes to
      a key are strictly increasing (Observation 1 of Appendix D.1);
    - a prepared transaction's waiters fire exactly once, when it resolves;
    - [max_write_ts] only advances, and every prepare timestamp exceeds it
      at choice time. *)

type prepared = {
  p_txn : int;
  p_tp : int;  (** prepare timestamp *)
  mutable p_tee : int;  (** earliest client end estimate (absolute) *)
  p_writes : (int * int) list;  (** (key, value) this txn will write here *)
  mutable p_waiters : (Types.outcome -> unit) list;
}

type t = {
  shard_id : int;
  leader_site : int;
  engine : Sim.Engine.t;
  tt : Sim.Truetime.t;
  station : Sim.Station.t;
  repl : Replication.Group.t;
  locks : Locks.t;
  store : (int, Types.version list) Hashtbl.t;
  prepared_tbl : (int, prepared) Hashtbl.t;
  mutable max_write_ts : int;
  mutable n_ro_served : int;
  mutable n_ro_blocked : int;
  wound_prepared_hook : (int -> unit) ref;
      (** set by {!Protocol.make_ctx}: routes a wound against a prepared
          holder to its 2PC coordinator *)
}

val create :
  Sim.Engine.t -> Sim.Net.t -> Sim.Truetime.t -> Types.table -> Config.t ->
  shard_id:int -> t

val read_version_at : t -> key:int -> ts:int -> Types.version option
(** Latest committed version with [ts' <= ts]. *)

val apply_write : t -> key:int -> ts:int -> writer:int -> value:int -> unit
(** Raises [Invalid_argument] if [ts] does not exceed the key's newest
    version (the per-key monotonicity invariant). *)

val advance_max_write_ts : t -> int -> unit

val choose_prepare_ts : t -> int
(** A fresh prepare timestamp > [max_write_ts]; advances [max_write_ts]. *)

val trace_txn : int ref
(** Diagnostic: print prepared-table events for this txn id to stderr. *)

val add_prepared : t -> prepared -> unit

val prepared : t -> int -> prepared option

val conflicting_prepared : t -> keys:int list -> max_tp:int -> prepared list
(** Prepared transactions writing any of [keys] here with tp <= [max_tp]. *)

val wait_prepared : t -> prepared -> (Types.outcome -> unit) -> unit

val resolve_prepared : t -> txn:int -> Types.outcome -> unit
(** Apply writes (on commit), drop the entry, fire waiters. Does not touch
    locks — callers release via [t.locks]. No-op if absent. *)
