type t = {
  cluster : Cluster.t;
  site : int;
  proc : int;
  mutable t_min : int;
  view : Place.Directory.view;  (* cached placement, refreshed on bounce *)
}

let create cluster ~site =
  {
    cluster;
    site;
    proc = Cluster.fresh_proc cluster;
    t_min = 0;
    view = Place.Directory.view (Cluster.directory cluster);
  }

let view t = t.view

let proc t = t.proc

let site t = t.site

let t_min t = t.t_min

let key_name = string_of_int

let rw_kv ?on_attempt ?deadline_us t ~read_keys ~writes k =
  let ctx = Cluster.ctx t.cluster in
  let inv = Sim.Engine.now (Cluster.engine t.cluster) in
  let tr = Cluster.tracer t.cluster in
  let sp =
    if Obs.Trace.enabled tr then
      Obs.Trace.begin_span ~parent:Obs.Trace.none ~site:t.site tr
        ~kind:Obs.Trace.Client_op ~name:"spanner.rw" ~ts:inv
    else Obs.Trace.none
  in
  Obs.Trace.with_current tr sp (fun () ->
      Protocol.rw_txn ?on_attempt ?deadline_us ~view:t.view ctx
        ~client_site:t.site ~proc:t.proc ~read_keys ~writes (fun res ->
          let resp = Sim.Engine.now (Cluster.engine t.cluster) in
          Obs.Trace.end_span tr sp ~ts:resp;
          if res.Protocol.rw_commit_ts > t.t_min then
            t.t_min <- res.Protocol.rw_commit_ts;
          Cluster.record t.cluster
            {
              Rss_core.Witness.proc = t.proc;
              reads =
                List.map (fun (key, v) -> (key_name key, v)) res.Protocol.rw_reads;
              writes = List.map (fun (key, v) -> (key_name key, v)) writes;
              inv;
              resp;
              ts = res.Protocol.rw_commit_ts;
              rank = 0;
            };
          k res))

let rw ?on_attempt ?deadline_us t ~read_keys ~write_keys k =
  (* History checking needs per-key-unique stored values. *)
  let writes = List.map (fun key -> (key, Cluster.fresh_value t.cluster)) write_keys in
  rw_kv ?on_attempt ?deadline_us t ~read_keys ~writes k

let rw_detached t ~write_keys =
  (* A client that stops (§3.2's stop failures) before its response: the
     transaction may still commit and its effects stay visible, so the
     history records it with no response time and no observed reads —
     exactly how complete(α) treats it. *)
  let ctx = Cluster.ctx t.cluster in
  let inv = Sim.Engine.now (Cluster.engine t.cluster) in
  let writes = List.map (fun key -> (key, Cluster.fresh_value t.cluster)) write_keys in
  Protocol.rw_txn ~view:t.view ctx ~client_site:t.site ~proc:t.proc
    ~read_keys:[] ~writes
    (fun res ->
      Cluster.record t.cluster
        {
          Rss_core.Witness.proc = t.proc;
          reads = [];
          writes = List.map (fun (key, v) -> (key_name key, v)) writes;
          inv;
          resp = max_int;
          ts = res.Protocol.rw_commit_ts;
          rank = 0;
        })

let ro ?deadline_us t ~keys k =
  let ctx = Cluster.ctx t.cluster in
  let inv = Sim.Engine.now (Cluster.engine t.cluster) in
  let tr = Cluster.tracer t.cluster in
  let sp =
    if Obs.Trace.enabled tr then
      Obs.Trace.begin_span ~parent:Obs.Trace.none ~site:t.site tr
        ~kind:Obs.Trace.Client_op ~name:"spanner.ro" ~ts:inv
    else Obs.Trace.none
  in
  Obs.Trace.with_current tr sp (fun () ->
      Protocol.ro_txn ?deadline_us ~view:t.view ctx ~client_site:t.site
        ~proc:t.proc ~t_min:t.t_min ~keys (fun res ->
          let resp = Sim.Engine.now (Cluster.engine t.cluster) in
          Obs.Trace.end_span tr sp ~ts:resp;
          if res.Protocol.ro_snap_ts > t.t_min then
            t.t_min <- res.Protocol.ro_snap_ts;
          Cluster.record t.cluster
            {
              Rss_core.Witness.proc = t.proc;
              reads =
                List.map (fun (key, v) -> (key_name key, v)) res.Protocol.ro_reads;
              writes = [];
              inv;
              resp;
              ts = res.Protocol.ro_snap_ts;
              rank = 1;
            };
          k res))

let snapshot_read t ~ts ~keys k =
  Protocol.snapshot_read ~view:t.view (Cluster.ctx t.cluster) ~client_site:t.site
    ~ts ~keys k

let fence t k = Protocol.fence (Cluster.ctx t.cluster) ~t_min:t.t_min k

let absorb_t_min t other = if other > t.t_min then t.t_min <- other
