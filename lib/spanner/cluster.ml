type t = {
  engine : Sim.Engine.t;
  net : Sim.Net.t;
  tt : Sim.Truetime.t;
  config : Config.t;
  txns : Types.table;
  pctx : Protocol.ctx;
  mutable next_proc : int;
  mutable next_value : int;
  mutable record_list : Rss_core.Witness.txn list;
  mutable n_records : int;
  mutable record_hook : Rss_core.Witness.txn -> unit;
}

let create engine ~rng (config : Config.t) =
  let net =
    Sim.Net.create engine ~rng:(Sim.Rng.split rng) ~rtt_ms:config.Config.rtt_ms
      ~jitter:config.Config.jitter ()
  in
  let tt = Sim.Truetime.create engine ~epsilon_us:config.Config.epsilon_us in
  let txns = Types.table_create () in
  let pctx = Protocol.make_ctx engine net tt txns config in
  {
    engine;
    net;
    tt;
    config;
    txns;
    pctx;
    next_proc = 0;
    next_value = 1_000_000_000;
    record_list = [];
    n_records = 0;
    record_hook = ignore;
  }

let engine t = t.engine

let config t = t.config

let ctx t = t.pctx

let net t = t.net

let truetime t = t.tt

let txn_outcome t id = (Types.find t.txns id).Types.outcome

let fresh_proc t =
  let p = t.next_proc in
  t.next_proc <- p + 1;
  p

let fresh_value t =
  let v = t.next_value in
  t.next_value <- v + 1;
  v

let record t r =
  t.record_list <- r :: t.record_list;
  t.n_records <- t.n_records + 1;
  t.record_hook r

let set_record_hook t f = t.record_hook <- f

let records t = Array.of_list (List.rev t.record_list)

let check_history t =
  let mode =
    match t.config.Config.mode with Config.Strict -> `Strict | Config.Rss -> `Rss
  in
  Rss_core.Witness.check ~mode (records t)

type stats = {
  rw_committed : int;
  rw_aborted_attempts : int;
  wounds : int;
  ro_count : int;
  ro_slow : int;
  ro_blocked_at_shards : int;
  messages : int;
}

let stats t =
  let ro_blocked =
    Array.fold_left
      (fun acc sh -> acc + sh.Shard.n_ro_blocked)
      0 t.pctx.Protocol.shards
  in
  {
    rw_committed = t.pctx.Protocol.n_rw_committed;
    rw_aborted_attempts = t.pctx.Protocol.n_rw_aborted_attempts;
    wounds = Types.wounds t.txns;
    ro_count = t.pctx.Protocol.n_ro;
    ro_slow = t.pctx.Protocol.n_ro_slow;
    ro_blocked_at_shards = ro_blocked;
    messages = Sim.Net.messages_sent t.net;
  }

let enable_failover t ~rng ?config ~until_us () =
  Protocol.enable_failover t.pctx ~rng ?config ~until_us ()

(* ------------------------------------------------------------------ *)
(* Overload & gray-failure controls                                   *)
(* ------------------------------------------------------------------ *)

let stations t = Protocol.stations t.pctx

let set_site_slowdown t ~site ~factor =
  Protocol.set_site_slowdown t.pctx ~site ~factor

let clear_slowdowns t = Protocol.clear_slowdowns t.pctx

let set_admission t limits = Protocol.set_admission t.pctx limits

let set_drop_expired t on = Protocol.set_drop_expired t.pctx on

let set_hedge_us t us = Protocol.set_hedge_us t.pctx us

let set_retry_budget t budget = Protocol.set_retry_budget t.pctx budget

type flow_stats = {
  expired : int;
  shed : int;
  abandoned : int;
  hedges : int;
  hedge_wins : int;
}

let flow_stats t =
  {
    expired = t.pctx.Protocol.n_expired;
    shed = t.pctx.Protocol.n_shed;
    abandoned = t.pctx.Protocol.n_abandoned;
    hedges = t.pctx.Protocol.n_hedges;
    hedge_wins = t.pctx.Protocol.n_hedge_wins;
  }

(* ------------------------------------------------------------------ *)
(* Elastic placement                                                  *)
(* ------------------------------------------------------------------ *)

let directory t = t.pctx.Protocol.directory

let migrate ?no_fence t ~lo ~hi ~dst k =
  Protocol.migrate ?no_fence t.pctx ~lo ~hi ~dst k

type place_stats = {
  epoch : int;
  migrations : int;  (* completed *)
  migrations_failed : int;
  migration_retries : int;
  keys_moved : int;
  redirects : int;
  fence_blocked : int;
  fence_hold_us : int;
  max_fence_hold_us : int;
  directory_appends : int;
}

let place_stats t =
  let ps = t.pctx.Protocol.place_stats in
  {
    epoch = Place.Directory.epoch (directory t);
    migrations = ps.Place.Migrate.completed;
    migrations_failed = ps.Place.Migrate.failed;
    migration_retries = ps.Place.Migrate.source_retries;
    keys_moved = ps.Place.Migrate.keys_moved;
    redirects = t.pctx.Protocol.n_redirects;
    fence_blocked = t.pctx.Protocol.n_fence_blocked;
    fence_hold_us = ps.Place.Migrate.fence_hold_us;
    max_fence_hold_us = ps.Place.Migrate.max_fence_hold_us;
    directory_appends = Place.Directory.durable_appends (directory t);
  }

let set_tracer t tracer = Protocol.set_tracer t.pctx tracer

let tracer t = t.pctx.Protocol.tracer

type failover_stats = {
  view_changes : int;
  heartbeats : int;
  catchups : int;
  dup_acks : int;
  max_election_us : int;
  terminates : int;
  terminate_commits : int;
  in_doubt_resolved : int;
  rpc_retries : int;
  rpc_exhausted : int;
  durable_appends : int;
  durable_bytes : int;
  torn_repaired : int;
  corrupt_quarantined : int;
  peer_repairs : int;
  unrepaired : int;
}

let failover_stats t =
  let z =
    {
      view_changes = 0;
      heartbeats = 0;
      catchups = 0;
      dup_acks = 0;
      max_election_us = 0;
      terminates = t.pctx.Protocol.n_terminates;
      terminate_commits = t.pctx.Protocol.n_terminate_commits;
      in_doubt_resolved = t.pctx.Protocol.n_in_doubt_resolved;
      rpc_retries =
        (match t.pctx.Protocol.rpc with
        | Some r -> Sim.Rpc.retries r
        | None -> 0);
      rpc_exhausted =
        (match t.pctx.Protocol.rpc with
        | Some r -> Sim.Rpc.exhausted r
        | None -> 0);
      durable_appends = 0;
      durable_bytes = 0;
      torn_repaired = 0;
      corrupt_quarantined = 0;
      peer_repairs = 0;
      unrepaired = 0;
    }
  in
  Array.fold_left
    (fun acc sh ->
      let g = Replication.Group.stats sh.Shard.repl in
      {
        acc with
        view_changes = acc.view_changes + g.Replication.Group.view_changes;
        heartbeats = acc.heartbeats + g.Replication.Group.heartbeats;
        catchups = acc.catchups + g.Replication.Group.catchups;
        dup_acks = acc.dup_acks + g.Replication.Group.dup_acks;
        max_election_us =
          max acc.max_election_us g.Replication.Group.max_election_us;
        durable_appends = acc.durable_appends + g.Replication.Group.durable_appends;
        durable_bytes = acc.durable_bytes + g.Replication.Group.durable_bytes;
        torn_repaired = acc.torn_repaired + g.Replication.Group.torn_repaired;
        corrupt_quarantined =
          acc.corrupt_quarantined + g.Replication.Group.corrupt_quarantined;
        peer_repairs = acc.peer_repairs + g.Replication.Group.peer_repairs;
        unrepaired = acc.unrepaired + g.Replication.Group.unrepaired;
      })
    z t.pctx.Protocol.shards
