(** Cluster configuration for Spanner / Spanner-RSS experiments. *)

type mode = Strict | Rss

type t = {
  mode : mode;
  n_shards : int;
  rtt_ms : float array array;  (** site-to-site RTTs *)
  leader_site : int array;  (** shard -> leader site *)
  replica_sites : int list array;  (** shard -> replica sites (excl. leader) *)
  client_sites : int array;  (** where load originates; clients round-robin *)
  epsilon_us : int;  (** TrueTime error bound *)
  service_time_us : int;  (** leader CPU per message (0 = infinite capacity) *)
  jitter : float;
  fence_l_us : int;
      (** L, the bound on t_c - t_ee used by real-time fences (§5.1) *)
  tee_pad_us : int;
      (** extra slack added to t_ee estimates (0 = the paper's estimator);
          ablation knob: larger pads let ROs skip more but delay RW
          completion *)
}

val wan3 : mode:mode -> unit -> t
(** The paper's §6.1 setup: three shards, leaders in CA / VA / IR, replicas
    in the other two sites, ε = 10 ms (CA-VA 62 ms, CA-IR 136 ms,
    VA-IR 68 ms). *)

val single_dc : mode:mode -> n_shards:int -> service_time_us:int -> unit -> t
(** The §6.2 overhead setup: one data center (0.2 ms RTTs), ε = 0, [n_shards]
    single-threaded leaders. *)

val site_name : t -> int -> string

val shard_of_key : t -> int -> int
(** The static epoch-0 layout ([key mod n_shards]). Since elastic placement
    landed this is only the {e base map} of the cluster's
    {!Place.Directory}: live dispatch goes through directory lookups
    (identical to this function until a migration commits an epoch > 0). *)

(** {2 Commit-latency estimation (for t_ee, §6)} *)

val replicate_us : t -> shard:int -> int
(** Base time for the shard's leader to replicate one entry to a majority. *)

val estimate_commit_latency_us : t -> client_site:int -> participants:int list -> int * int
(** [(coordinator, latency)] — the coordinator choice among [participants]
    minimizing the client-observed commit latency, and that base latency
    (excluding commit wait). Matches the paper's client-side t_ee
    estimation from minimum observed round-trip times. *)
