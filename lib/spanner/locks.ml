type grant = Granted of { blocked_us : int } | Aborted

type kind = Read | Write

type request = {
  txn : int;
  kind : kind;
  priority : int * int;
  enqueued_at : int;
  k : grant -> unit;
}

type entry = {
  mutable readers : int list;
  mutable writer : int option;
  mutable queue : request list;  (* FIFO: head = oldest *)
}

type t = {
  engine : Sim.Engine.t;
  table : (int, entry) Hashtbl.t;
  held : (int, (int * kind) list) Hashtbl.t;  (* txn -> locks *)
  queued : (int, int list) Hashtbl.t;  (* txn -> keys with queued requests *)
  priorities : (int, int * int) Hashtbl.t;
  is_prepared : int -> bool;
  is_wounded : int -> bool;
  wound : int -> unit;
  wound_prepared : int -> unit;
  mutable wounds : int;
  (* Wakeup machinery: keys whose queues need re-examination. A single
     drain loop owns queue processing; nested calls (wound chains inside
     try_acquire) only mark keys dirty, so no wakeup can be lost to
     re-entrancy. *)
  dirty : (int, unit) Hashtbl.t;
  mutable draining : bool;
}

let create engine ~is_prepared ~is_wounded ~wound ~wound_prepared =
  {
    engine;
    table = Hashtbl.create 256;
    held = Hashtbl.create 64;
    queued = Hashtbl.create 64;
    priorities = Hashtbl.create 64;
    is_prepared;
    is_wounded;
    wound;
    wound_prepared;
    wounds = 0;
    dirty = Hashtbl.create 64;
    draining = false;
  }

let entry t key =
  match Hashtbl.find_opt t.table key with
  | Some e -> e
  | None ->
    let e = { readers = []; writer = None; queue = [] } in
    Hashtbl.add t.table key e;
    e

let holds_read t ~key ~txn =
  match Hashtbl.find_opt t.table key with
  | None -> false
  | Some e -> List.mem txn e.readers || e.writer = Some txn

let holds_write t ~key ~txn =
  match Hashtbl.find_opt t.table key with None -> false | Some e -> e.writer = Some txn

let wounds_inflicted t = t.wounds

(* Any holder or queued waiter on a key in [lo, hi)? Used by the placement
   drain: a fenced range is quiescent only once every read/write lock in it
   has been released (commit wait then bounds the holders' commit
   timestamps below the migration timestamp) and no request is parked
   waiting to become a holder. *)
let any_busy_in t ~lo ~hi =
  Hashtbl.fold
    (fun key e acc ->
      acc
      || (key >= lo && key < hi
          && (e.readers <> [] || e.writer <> None || e.queue <> [])))
    t.table false

let priority_of t txn =
  match Hashtbl.find_opt t.priorities txn with
  | Some p -> p
  | None -> (max_int, txn)

let record_held t txn key kind =
  let prev = try Hashtbl.find t.held txn with Not_found -> [] in
  Hashtbl.replace t.held txn ((key, kind) :: prev)

(* Remove [txn]'s locks and queued requests; returns affected keys and the
   continuations of its aborted queued requests. Only the keys the txn
   touched are visited (the [held] and [queued] indexes) — scanning the
   whole table would make releases O(keyspace). *)
let strip t txn =
  let affected = ref [] in
  let aborted_ks = ref [] in
  (match Hashtbl.find_opt t.held txn with
  | None -> ()
  | Some locks ->
    List.iter
      (fun (key, _) ->
        let e = entry t key in
        if List.mem txn e.readers then e.readers <- List.filter (( <> ) txn) e.readers;
        if e.writer = Some txn then e.writer <- None;
        affected := key :: !affected)
      locks;
    Hashtbl.remove t.held txn);
  (match Hashtbl.find_opt t.queued txn with
  | None -> ()
  | Some keys ->
    List.iter
      (fun key ->
        let e = entry t key in
        if List.exists (fun r -> r.txn = txn) e.queue then begin
          List.iter
            (fun r -> if r.txn = txn then aborted_ks := r.k :: !aborted_ks)
            e.queue;
          e.queue <- List.filter (fun r -> r.txn <> txn) e.queue;
          affected := key :: !affected
        end)
      (List.sort_uniq compare keys);
    Hashtbl.remove t.queued txn);
  (List.sort_uniq compare !affected, !aborted_ks)

(* Conflicting holders for a request, excluding the requester itself. *)
let conflicting_holders e req =
  match req.kind with
  | Read -> ( match e.writer with Some w when w <> req.txn -> [ w ] | _ -> [])
  | Write ->
    let ws = match e.writer with Some w when w <> req.txn -> [ w ] | _ -> [] in
    ws @ List.filter (( <> ) req.txn) e.readers

(* A read must also wait behind an older queued writer (writer anti-starvation). *)
let older_queued_writer e req =
  req.kind = Read
  && List.exists
       (fun r -> r.kind = Write && r.txn <> req.txn && r.priority < req.priority)
       e.queue

(* Evaluate one request: wound what can be wounded, report whether the
   request is now grantable and whether any state changed. Wounding a victim
   marks every key it blocked dirty (including this one — the owning drain
   loop re-scans it). *)
let rec try_acquire t key req =
  let e = entry t key in
  let holders = conflicting_holders e req in
  let blocked = ref false in
  let wounded_any = ref false in
  List.iter
    (fun h ->
      if t.is_prepared h then begin
        (* Cannot abort a prepared holder unilaterally: escalate to its 2PC
           coordinator if we outrank it, and wait either way. *)
        if req.priority < priority_of t h then t.wound_prepared h;
        blocked := true
      end
      else if req.priority < priority_of t h then begin
        t.wounds <- t.wounds + 1;
        t.wound h;
        let affected, aborted = strip t h in
        List.iter
          (fun k -> Sim.Engine.schedule t.engine ~after:0 (fun () -> k Aborted))
          aborted;
        wounded_any := true;
        List.iter (fun k -> Hashtbl.replace t.dirty k ()) affected
      end
      else blocked := true)
    holders;
  let grantable = (not !blocked) && not (older_queued_writer e req) in
  (grantable, !wounded_any)

and grant t key req =
  let e = entry t key in
  (match req.kind with
  | Read -> if not (List.mem req.txn e.readers) then e.readers <- req.txn :: e.readers
  | Write -> e.writer <- Some req.txn);
  record_held t req.txn key req.kind;
  let blocked_us = Sim.Engine.now t.engine - req.enqueued_at in
  Sim.Engine.schedule t.engine ~after:0 (fun () -> req.k (Granted { blocked_us }))

(* One scan of a key's queue in FIFO order: abort wounded waiters, grant
   every request compatible with the current holders, keep the rest. The
   queue is mutated in place (requests identified physically) so nested
   wound chains stay coherent. Marks the key dirty again when anything
   changed. Scanning past blocked requests lets a younger writer wait
   without stalling readers behind it — and conversely — which plain
   stop-at-head FIFO would deadlock on. *)
and scan_key t key =
  let e = entry t key in
  let progressed = ref false in
  List.iter
    (fun req ->
      if List.memq req e.queue then
        if t.is_wounded req.txn then begin
          e.queue <- List.filter (fun r -> r != req) e.queue;
          Sim.Engine.schedule t.engine ~after:0 (fun () -> req.k Aborted);
          progressed := true
        end
        else begin
          let grantable, wounded = try_acquire t key req in
          if wounded then progressed := true;
          if grantable then begin
            e.queue <- List.filter (fun r -> r != req) e.queue;
            grant t key req;
            progressed := true
          end
        end)
    e.queue;
  if !progressed then Hashtbl.replace t.dirty key ()

(* Mark a key for processing and, unless a drain loop already owns the
   table, drain until no key is dirty. *)
and process_queue t key =
  Hashtbl.replace t.dirty key ();
  if not t.draining then begin
    t.draining <- true;
    let pick () = Hashtbl.fold (fun k () _ -> Some k) t.dirty None in
    let rec drain () =
      match pick () with
      | None -> t.draining <- false
      | Some k ->
        Hashtbl.remove t.dirty k;
        scan_key t k;
        drain ()
    in
    drain ()
  end

let acquire t kind ~key ~txn ~priority k =
  Hashtbl.replace t.priorities txn priority;
  if t.is_wounded txn then Sim.Engine.schedule t.engine ~after:0 (fun () -> k Aborted)
  else begin
    let req = { txn; kind; priority; enqueued_at = Sim.Engine.now t.engine; k } in
    let e = entry t key in
    e.queue <- e.queue @ [ req ];
    let prev = try Hashtbl.find t.queued txn with Not_found -> [] in
    Hashtbl.replace t.queued txn (key :: prev);
    process_queue t key
  end

let acquire_read t ~key ~txn ~priority k = acquire t Read ~key ~txn ~priority k

let acquire_write t ~key ~txn ~priority k = acquire t Write ~key ~txn ~priority k

let release_all t ~txn =
  let affected, aborted = strip t txn in
  Hashtbl.remove t.priorities txn;
  List.iter (fun k -> Sim.Engine.schedule t.engine ~after:0 (fun () -> k Aborted)) aborted;
  List.iter (fun key -> process_queue t key) affected

let pp_state ppf t =
  Hashtbl.iter
    (fun key e ->
      if e.readers <> [] || e.writer <> None || e.queue <> [] then
        Fmt.pf ppf "key %d: readers=[%a] writer=%a queue=[%a]@."
          key
          Fmt.(list ~sep:sp int)
          e.readers
          Fmt.(option ~none:(any "-") int)
          e.writer
          Fmt.(
            list ~sep:sp (fun ppf r ->
                Fmt.pf ppf "%d%s(p=%d,%d)" r.txn
                  (match r.kind with Read -> "r" | Write -> "w")
                  (fst r.priority) (snd r.priority)))
          e.queue)
    t.table
