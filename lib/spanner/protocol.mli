(** The Spanner / Spanner-RSS wire protocols over the simulated network.

    Read-write transactions (§5 "Spanner background"): two-phase locking with
    wound-wait during an execution (read) phase, then two-phase commit across
    the participant shard leaders with prepare/commit timestamps, commit
    wait, and the client-side earliest-end-time (t_ee) estimate including
    both §6 optimizations.

    Read-only transactions: the strict-serializable protocol (block on every
    conflicting prepared transaction with tp <= t_read), or Algorithms 1-2
    when the cluster mode is {!Config.Rss} (skip prepared transactions unless
    tp <= t_min or t_ee <= t_read; fast replies carry prepared timestamps and
    skipped writes; slow replies resolve them; the client computes t_snap).

    All entry points are continuation-passing: they return immediately and
    fire their callback on the simulated clock. *)

type coord_state

type ctx = {
  engine : Sim.Engine.t;
  net : Sim.Net.t;
  tt : Sim.Truetime.t;
  config : Config.t;
  txns : Types.table;
  shards : Shard.t array;
  coord_states : (int, coord_state) Hashtbl.t;  (** per-txn 2PC state *)
  mutable n_rw_committed : int;
  mutable n_rw_aborted_attempts : int;
  mutable n_ro : int;
  mutable n_ro_slow : int;
  mutable failover : bool;
  mutable rpc : Sim.Rpc.t option;
  mutable n_terminates : int;  (** client terminate queries issued *)
  mutable n_terminate_commits : int;  (** terminates that found a commit *)
  mutable n_in_doubt_resolved : int;  (** in-doubt prepares settled *)
  mutable tracer : Obs.Trace.t;  (** span sink; [Obs.Trace.disabled] = off *)
  directory : Place.Directory.t;
      (** authoritative key->shard ownership; epoch 0 matches
          [Config.shard_of_key] *)
  place_stats : Place.Migrate.stats;
  mutable n_redirects : int;  (** ops bounced off a non-owning shard *)
  mutable n_fence_blocked : int;  (** lock acquisitions refused by a fence *)
  fence_bounced : (int, unit) Hashtbl.t;
      (** attempts refused by a fence — stands in for a "fenced" error code
          on the abort reply; the client's retry consumes it and backs off
          far longer than for a wound (the fence holds for drain + barrier) *)
  mutable drop_expired : bool;
      (** deadline propagation: shard leaders drop requests whose riding
          deadline has passed before any service cost is charged *)
  mutable hedge_us : int;  (** RO hedge delay; 0 (default) disables *)
  mutable retry_budget : Sim.Rpc.Budget.t option;
      (** fleet-wide token bucket capping retry amplification *)
  mutable n_expired : int;  (** requests dropped expired at dequeue *)
  mutable n_shed : int;  (** requests NACKed by admission control *)
  mutable n_abandoned : int;  (** ops given up: expired or out of budget *)
  mutable n_hedges : int;  (** hedge reads actually issued *)
  mutable n_hedge_wins : int;  (** hedges that beat the primary *)
}

val make_ctx :
  Sim.Engine.t -> Sim.Net.t -> Sim.Truetime.t -> Types.table -> Config.t -> ctx

val set_tracer : ctx -> Obs.Trace.t -> unit
(** Install a span sink on the protocol and everything under it (network,
    RPC helper, per-shard replication groups). Phases recorded: 2PC
    prepare and commit (decision through commit wait), RO blocking at a
    shard, plus the hops and RPC retries below. With the default
    [Obs.Trace.disabled] sink every instrumentation point is a single
    bool check — the message pattern and RNG stream are untouched. *)

val enable_failover :
  ctx -> rng:Sim.Rng.t -> ?config:Replication.Group.failover_config ->
  until_us:int -> unit -> unit
(** Arm crash recovery: view changes in every shard's replication group
    (rebuilding leader state from the replicated log on activation, then
    resolving in-doubt 2PC participants), durable prepare/commit records,
    and the client terminate protocol. [rng] feeds retry jitter only — a
    run with no retries draws nothing from it. Until armed, nothing in the
    failure-free message pattern changes. *)

type rw_result = {
  rw_commit_ts : int;
  rw_txn_id : int;  (** id of the committed attempt *)
  rw_reads : (int * int option) list;  (** (key, stored value observed) *)
}

val rw_txn :
  ?on_attempt:(int -> unit) -> ?deadline_us:int -> ?view:Place.Directory.view ->
  ctx -> client_site:int ->
  proc:int -> read_keys:int list -> writes:(int * int) list ->
  (rw_result -> unit) -> unit
(** Runs to commit, retrying internally on wound-wait aborts with the
    original priority. [writes] are (key, value) pairs, non-empty, one per
    key (duplicates raise [Invalid_argument]); duplicate [read_keys] are
    deduplicated. The continuation receives the commit timestamp
    and the values observed by the execution-phase reads (valid at the
    commit timestamp, by 2PL).

    [on_attempt] fires with each attempt's transaction id as it starts.
    Under fault injection a client can lose the commit acknowledgement; the
    last attempt id lets the caller look the outcome up post-hoc
    ([Cluster.txn_outcome]) and record committed-but-unacknowledged
    transactions into the history as incomplete. *)

type ro_result = {
  ro_snap_ts : int;  (** witness serialization timestamp *)
  ro_reads : (int * int option) list;  (** (key, stored value) *)
  ro_slow : bool;  (** did the client have to wait for slow replies / blocking? *)
}

val ro_txn :
  ?deadline_us:int -> ?view:Place.Directory.view -> ctx -> client_site:int ->
  proc:int -> t_min:int ->
  keys:int list -> (ro_result -> unit) -> unit
(** The caller owns t_min tracking: pass the session's current t_min and
    update it to [max t_min ro_snap_ts] on completion (Client does this).
    With failover armed, [deadline_us] re-issues the read from scratch
    (fresh snapshot timestamp) if no reply lands in time. *)

val fence : ctx -> t_min:int -> (unit -> unit) -> unit
(** §5.1: block until t_min + L < TT.now.earliest. *)

(** {1 Overload & gray-failure controls}

    All default-off: with none armed, no extra event is scheduled and no
    random draw occurs, so seeded schedules are byte-identical. *)

val stations : ctx -> Sim.Station.t list
(** Every shard leader's station, for queue-depth / sojourn observation. *)

val set_site_slowdown : ctx -> site:int -> factor:int -> unit
(** Gray failure: shards currently led from [site] serve [factor]x slower.
    Drivers apply this from their fault hook on {!Chaos.Schedule.Slow}. *)

val clear_slowdowns : ctx -> unit

val set_admission : ctx -> Sim.Station.limits option -> unit
(** Arm (or disarm) bounded queues with load shedding at every shard
    leader. Shed requests NACK back to the client with a server-suggested
    backoff — only client-facing entry points (RW execution-phase reads,
    RO shard reads) are sheddable; 2PC internal traffic is always
    admitted, because refusing a commit-phase message strands prepared
    participants. *)

val set_drop_expired : ctx -> bool -> unit
(** Arm deadline propagation: ops issued with [deadline_us] stamp an
    absolute expiry on their requests, and shard leaders drop work whose
    expiry precedes its projected service start (an expired request NACKs
    on client-facing entry points so the client fast-fails; retries
    inherit the remaining deadline, never a fresh one). *)

val set_hedge_us : ctx -> int -> unit
(** Hedged RO reads: if a read has not completed after this many µs, issue
    one duplicate and let the first completion win (losers are cancelled
    client-side). 0 disables. Raises [Invalid_argument] if negative. *)

val set_retry_budget : ctx -> Sim.Rpc.Budget.t option -> unit
(** Install a (typically fleet-shared) retry token bucket: wound-wait
    retries and shed-read re-issues each take a token, and when the bucket
    is dry the op abandons instead of amplifying overload
    ([n_abandoned]). *)

val snapshot_read :
  ?view:Place.Directory.view -> ctx -> client_site:int -> ts:int ->
  keys:int list -> ((int * int option) list -> unit) -> unit
(** Spanner's read-at-timestamp API: a consistent multi-key snapshot as of
    [ts] (typically in the past). Blocks only on transactions prepared at or
    before [ts]. Deliberately outside the session/t_min machinery — it reads
    history — so it is not recorded into the run's consistency witness. *)

(** {1 Elastic placement}

    Requests are routed through the client's cached directory [?view]
    (falling back to the authoritative directory); the owning shard checks
    ownership authoritatively and bounces stale routes, which refresh the
    view and retry/re-issue. RW lock acquisition additionally respects the
    migration fence. With no migrations committed, every lookup returns
    exactly what static [Config.shard_of_key] dispatch did and no extra
    event or random draw occurs, so seeded schedules are unchanged. *)

val migrate :
  ?no_fence:bool -> ctx -> lo:int -> hi:int -> dst:int ->
  (Place.Migrate.result -> unit) -> unit
(** Live-migrate keys [\[lo, hi)] to shard [dst]: fence + drain each
    source, cut [t_m], ship snapshots (durably logged on both sides), wait
    the TrueTime barrier, re-verify fences, commit the directory epoch.
    [?no_fence] is the unsafe mutation control for tests: it skips fence,
    drain and barrier, and loses writes racing the snapshot. *)
