(** A Spanner / Spanner-RSS client session.

    Tracks the session's minimum read timestamp t_min (§5): after a
    read-write transaction it advances to the commit timestamp; after a
    read-only transaction to the snapshot timestamp. The paper's partly-open
    clients use one session — and hence one t_min — per arriving user
    session, which is what keeps t_min from advancing too quickly.

    The session records every completed transaction into the owning
    {!Cluster}'s history for witness checking. *)

type t

val create : Cluster.t -> site:int -> t
(** [site] is where the client runs; the session id (process id for history
    purposes) is assigned by the cluster. *)

val proc : t -> int
val site : t -> int
val t_min : t -> int

val view : t -> Place.Directory.view
(** The session's cached placement view. Ops route through it; a bounce
    off a moved range refreshes it transparently. *)

val rw :
  ?on_attempt:(int -> unit) -> ?deadline_us:int -> t -> read_keys:int list ->
  write_keys:int list -> (Protocol.rw_result -> unit) -> unit
(** Writes fresh unique values (history checking needs per-key-unique
    stored values). [on_attempt] is {!Protocol.rw_txn}'s attempt hook —
    chaos audits use it to track transactions whose acknowledgement a fault
    may swallow. [deadline_us] (failover mode only) bounds how long an
    attempt waits before querying its coordinator's outcome and retrying. *)

val rw_kv :
  ?on_attempt:(int -> unit) -> ?deadline_us:int -> t -> read_keys:int list ->
  writes:(int * int) list -> (Protocol.rw_result -> unit) -> unit
(** Explicit (key, value) writes — application code; values must stay unique
    per key across the run for history checking. *)

val rw_detached : t -> write_keys:int list -> unit
(** Issue a blind write transaction from a client that stops before its
    response arrives (a §3.2 stop failure): the transaction still commits and
    is recorded as incomplete (no response, no real-time obligations). The
    session must not be used afterwards. *)

val ro :
  ?deadline_us:int -> t -> keys:int list -> (Protocol.ro_result -> unit) -> unit

val snapshot_read :
  t -> ts:int -> keys:int list -> ((int * int option) list -> unit) -> unit
(** Read a consistent snapshot at an explicit (usually past) timestamp —
    Spanner's time-travel read. Not part of the session's RSS history. *)

val fence : t -> (unit -> unit) -> unit
(** §5.1 real-time fence: all future read-only transactions anywhere will
    observe state at least as recent as this session's t_min. *)

val absorb_t_min : t -> int -> unit
(** Context propagation (§4.2): merge causal metadata received out of band
    from another session. *)
