type mode = Strict | Rss

type t = {
  mode : mode;
  n_shards : int;
  rtt_ms : float array array;
  leader_site : int array;
  replica_sites : int list array;
  client_sites : int array;
  epsilon_us : int;
  service_time_us : int;
  jitter : float;
  fence_l_us : int;
  tee_pad_us : int;
}

let wan3 ~mode () =
  let rtt_ms = Sim.Topology.wan3.Sim.Topology.rtt_ms in
  {
    mode;
    n_shards = 3;
    rtt_ms;
    leader_site = [| 0; 1; 2 |];
    replica_sites = [| [ 1; 2 ]; [ 0; 2 ]; [ 0; 1 ] |];
    client_sites = [| 0; 1; 2 |];
    epsilon_us = 10_000;
    service_time_us = 0;
    jitter = 0.02;
    fence_l_us = 400_000;
    tee_pad_us = 0;
  }

let single_dc ~mode ~n_shards ~service_time_us () =
  (* Everything in one site; replicas are distinct machines but latency is
     the in-DC 0.2 ms. We keep a single logical site. *)
  let rtt_ms = (Sim.Topology.single_dc ~n:1).Sim.Topology.rtt_ms in
  {
    mode;
    n_shards;
    rtt_ms;
    leader_site = Array.make n_shards 0;
    replica_sites = Array.make n_shards [ 0; 0 ];
    client_sites = [| 0 |];
    epsilon_us = 0;
    service_time_us;
    jitter = 0.02;
    fence_l_us = 50_000;
    tee_pad_us = 0;
  }

let site_name t site =
  if Array.length t.rtt_ms = 3 then Sim.Topology.(site_name wan3 site)
  else Fmt.str "site%d" site

let shard_of_key t key = key mod t.n_shards

let rtt_us t a b = Sim.Engine.ms t.rtt_ms.(a).(b)

let one_way_us t a b = rtt_us t a b / 2

let replicate_us t ~shard =
  let leader = t.leader_site.(shard) in
  let rtts =
    List.map (fun site -> rtt_us t leader site) t.replica_sites.(shard)
    |> List.sort compare
  in
  let n = 1 + List.length t.replica_sites.(shard) in
  let needed = (n / 2) + 1 - 1 in
  if needed = 0 then 0
  else List.nth rtts (needed - 1)

let estimate_commit_latency_us t ~client_site ~participants =
  let latency_with_coord coord =
    let prepare_paths =
      List.filter_map
        (fun p ->
          if p = coord then None
          else
            Some
              (one_way_us t client_site t.leader_site.(p)
              + replicate_us t ~shard:p
              + one_way_us t t.leader_site.(p) t.leader_site.(coord)))
        participants
    in
    let to_coord = one_way_us t client_site t.leader_site.(coord) in
    let slowest = List.fold_left max to_coord prepare_paths in
    slowest
    + replicate_us t ~shard:coord
    + one_way_us t t.leader_site.(coord) client_site
  in
  match participants with
  | [] -> invalid_arg "estimate_commit_latency_us: no participants"
  | first :: rest ->
    List.fold_left
      (fun (best, best_lat) coord ->
        let lat = latency_with_coord coord in
        if lat < best_lat then (coord, lat) else (best, best_lat))
      (first, latency_with_coord first)
      rest
