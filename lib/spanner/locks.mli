(** Per-shard two-phase-locking lock table with wound-wait deadlock
    avoidance (Rosenkrantz et al. 1978), as used by Spanner's read-write
    transactions.

    Priorities are (first-attempt start time, txn id) — smaller = older =
    wins. On conflict, an older requester wounds (aborts) a younger holder
    unless the holder is already prepared at this shard (its fate then
    belongs to its 2PC coordinator); a younger requester waits. Readers also
    wait behind older queued writers, so writers are not starved.

    The table is callback-parameterized over shard state it must not own:
    whether a transaction is prepared here, whether it has been wounded
    anywhere, and how to wound. *)

type t

type grant = Granted of { blocked_us : int } | Aborted

val create :
  Sim.Engine.t ->
  is_prepared:(int -> bool) ->
  is_wounded:(int -> bool) ->
  wound:(int -> unit) ->
  wound_prepared:(int -> unit) ->
  t
(** [wound txn] must mark [txn] wounded globally; this table releases the
    victim's local locks itself. [wound_prepared txn] is called when an older
    requester conflicts with a {e prepared} holder: the table cannot abort it
    unilaterally (its fate belongs to 2PC), so the callback must route an
    abort request to the victim's coordinator — breaking the
    prepared-waits-for-older cycle that plain wound-wait would deadlock on.
    The requester still waits until the victim resolves. *)

val acquire_read : t -> key:int -> txn:int -> priority:int * int -> (grant -> unit) -> unit
val acquire_write : t -> key:int -> txn:int -> priority:int * int -> (grant -> unit) -> unit
(** Re-entrant: a transaction holding a read lock may upgrade; acquiring a
    lock already held succeeds immediately. The continuation may fire
    synchronously. *)

val release_all : t -> txn:int -> unit
(** Drop every lock and queued request of [txn], then re-process waiters. *)

val holds_read : t -> key:int -> txn:int -> bool
val holds_write : t -> key:int -> txn:int -> bool

val wounds_inflicted : t -> int

val any_busy_in : t -> lo:int -> hi:int -> bool
(** Does any key in [\[lo, hi)] have a lock holder (read or write) or a
    queued request? The placement drain polls this until the fenced range
    is quiescent. *)

val pp_state : Format.formatter -> t -> unit
(** Diagnostic dump of holders and queued requests per key (non-empty
    entries only). *)
