type coord_state = {
  mutable cs_expected : int option;  (* participant votes expected *)
  mutable cs_votes : int;
  mutable cs_max_tp : int;
  mutable cs_max_tee : int;
  mutable cs_abort : bool;
  mutable cs_local_ready : bool;  (* coordinator's own locks + prepare done *)
  mutable cs_decided : bool;
  mutable cs_client : (Types.outcome * int) -> unit;  (* outcome, max_tee *)
  mutable cs_participants : int list;
  mutable cs_coord : int;  (* coordinator shard id *)
  mutable cs_start_latest : int;
  mutable cs_vote_views : (int * int) list;  (* (shard, group view) at vote *)
  mutable cs_settled : bool;  (* outcome durable / fully aborted *)
}

type ctx = {
  engine : Sim.Engine.t;
  net : Sim.Net.t;
  tt : Sim.Truetime.t;
  config : Config.t;
  txns : Types.table;
  shards : Shard.t array;
  coord_states : (int, coord_state) Hashtbl.t;
  mutable n_rw_committed : int;
  mutable n_rw_aborted_attempts : int;
  mutable n_ro : int;
  mutable n_ro_slow : int;
  mutable failover : bool;
  mutable rpc : Sim.Rpc.t option;  (* terminate / status retransmission *)
  mutable n_terminates : int;
  mutable n_terminate_commits : int;
  mutable n_in_doubt_resolved : int;
  mutable tracer : Obs.Trace.t;
  directory : Place.Directory.t;  (* authoritative key -> shard ownership *)
  place_stats : Place.Migrate.stats;
  mutable n_redirects : int;  (* ops bounced off a non-owning shard *)
  mutable n_fence_blocked : int;  (* lock acquisitions refused by a fence *)
  fence_bounced : (int, unit) Hashtbl.t;
      (* attempts refused by a fence, marked shard-side and consumed by the
         client's retry — stands in for a "fenced" error code on the abort
         reply. A fence holds for the drain + barrier (seconds), so these
         retries must back off far beyond the wound-wait cadence: bounced
         sessions re-reading hot unfenced keys at retry speed hold a rolling
         stream of old-priority read locks that can starve the very writers
         the drain is waiting on. *)
  (* Overload robustness — all default-off; armed via Harness.Env.flow. *)
  mutable drop_expired : bool;
  mutable hedge_us : int;
  mutable retry_budget : Sim.Rpc.Budget.t option;
  mutable n_expired : int;  (* requests dropped expired at dequeue *)
  mutable n_shed : int;  (* requests NACKed by admission control *)
  mutable n_abandoned : int;  (* ops given up (expired / budget spent) *)
  mutable n_hedges : int;  (* hedge reads actually issued *)
  mutable n_hedge_wins : int;  (* hedges that beat the primary *)
}

(* A shard's refusal to serve a request, delivered back to the sender when
   it supplied a [reject] continuation: the work was either already past
   its deadline when the leader dequeued it, or shed by admission control
   with a server-suggested backoff. *)
type server_reject = Expired | Pushback of Sim.Station.pushback

(* Deliver a message to a shard leader: network hop + leader CPU. The
   leader site is read at send time, so clients rediscover a moved leader
   on their next send (a directory-service stand-in). With failover armed,
   a request is dropped at delivery unless the target site is still the
   serving leader — messages into a crashed or deposed leader vanish, and
   the sender's deadline machinery re-routes. *)
(* All shard-bound and client-bound traffic goes through [Sim.Net.post], so
   with a batching policy installed the whole 2PC data plane coalesces
   per directed link: prepare/commit requests batch on the way in,
   participant votes batch toward the coordinator, and a coordinator's
   outcome broadcasts share envelopes with the prepare traffic already
   flowing to each participant — the commit decision piggybacks on the
   link's next frame instead of paying its own. Members of one envelope
   amortize the destination leader's station cost ([Station.amortized]).
   With batching off, [post] is [send] — byte-identical to the unbatched
   protocol. *)
(* Deliver a reply to a client (client CPUs are not the modelled bottleneck). *)
let to_client ctx ~src ?(bytes = 96) ~dst handler =
  Sim.Net.post ~bytes ctx.net ~src ~dst (fun _env_idx -> handler ())

(* [expires] is the op's absolute deadline riding the request: once the
   leader would only *start* the work past it, the work is useless and is
   dropped before any station cost is charged. The station's queue is its
   [busy_until] horizon with deterministic FIFO service, so the projected
   start (now + backlog) at enqueue equals the dequeue-time state exactly —
   checking here is the dequeue-drop, just placed where it can still refuse
   the cost. [reject] is supplied only on client-facing entry points (the
   RW read phase and RO shard reads): those messages get an explicit NACK
   (expired or shed-with-backoff) posted back so the client fast-fails
   instead of timing out. Internal 2PC traffic never passes [reject] and is
   never shed — refusing a commit-phase message would strand prepared
   participants, the one queue where shedding costs more than serving. *)
let to_shard ctx ~src ?(bytes = 96) ?expires ?reject shard_id handler =
  let shard = ctx.shards.(shard_id) in
  let dst = shard.Shard.leader_site in
  Sim.Net.post ~bytes ctx.net ~src ~dst (fun env_idx ->
      if
        (not ctx.failover)
        || (dst = shard.Shard.leader_site
            && (not (Sim.Net.is_down ctx.net dst))
            && Replication.Group.serving shard.Shard.repl)
      then begin
        let station = shard.Shard.station in
        let nack r =
          match reject with
          | None -> ()
          | Some k -> to_client ctx ~src:dst ~bytes:32 ~dst:src (fun () -> k r)
        in
        let expired =
          ctx.drop_expired
          && (match expires with
             | Some e ->
               Sim.Engine.now ctx.engine + Sim.Station.backlog_us station > e
             | None -> false)
        in
        if expired then begin
          ctx.n_expired <- ctx.n_expired + 1;
          nack Expired
        end
        else begin
          let cost =
            Sim.Station.amortized
              ~full:(Sim.Station.service_time_us station)
              env_idx
          in
          let tr = ctx.tracer in
          let job =
            if Obs.Trace.enabled tr then begin
              (* Station queueing runs the handler from a fresh engine event,
                 which would lose the delivery hop as ambient parent — carry
                 it across explicitly. *)
              let sp = Obs.Trace.current tr in
              fun () -> Obs.Trace.with_current tr sp (fun () -> handler shard)
            end
            else fun () -> handler shard
          in
          match reject with
          | None -> Sim.Station.submit ~cost station job
          | Some _ -> (
            match Sim.Station.try_submit ~cost station job with
            | Sim.Station.Admitted -> ()
            | Sim.Station.Shed pb ->
              ctx.n_shed <- ctx.n_shed + 1;
              nack (Pushback pb))
        end
      end)

(* Authoritative ownership (the directory's current epoch). Clients route
   through their cached [?view] instead and get bounced + refreshed when it
   is stale; the owning shard's own check below is what makes a stale route
   harmless. *)
let shard_of_key ctx key = Place.Directory.owner ctx.directory key

let owns ctx (shard : Shard.t) key =
  Place.Directory.owner ctx.directory key = shard.Shard.shard_id

let route ?view ctx key =
  match view with
  | Some v -> Place.Directory.view_owner v key
  | None -> shard_of_key ctx key

let refresh_view = function Some v -> Place.Directory.refresh v | None -> ()

let group_by_shard ?view ctx keys =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun key ->
      let s = route ?view ctx key in
      let prev = try Hashtbl.find tbl s with Not_found -> [] in
      Hashtbl.replace tbl s (key :: prev))
    keys;
  Hashtbl.fold (fun s keys acc -> (s, keys) :: acc) tbl []

(* Wait until [ts] is definitely past: TT.now.earliest > ts. The sleep
   length is an estimate from the current ε, so re-check on wake: if ε was
   inflated while we slept, sleeping the stale amount would cut commit wait
   short and break the external-consistency invariant. *)
let rec wait_truetime ctx ts k =
  let iv = Sim.Truetime.now ctx.tt in
  if ts < iv.Sim.Truetime.earliest then k ()
  else
    let after =
      max 1 (ts + Sim.Truetime.epsilon ctx.tt - Sim.Engine.now ctx.engine + 1)
    in
    Sim.Engine.schedule ~kind:"tt.wait" ctx.engine ~after (fun () ->
        wait_truetime ctx ts k)

(* ------------------------------------------------------------------ *)
(* Read-write transactions: 2PL + 2PC with timestamps and commit wait  *)
(* ------------------------------------------------------------------ *)

type rw_result = {
  rw_commit_ts : int;
  rw_txn_id : int;
  rw_reads : (int * int option) list;
}

let coord_state ctx txn =
  match Hashtbl.find_opt ctx.coord_states txn with
  | Some cs -> cs
  | None ->
    let cs =
      {
        cs_expected = None;
        cs_votes = 0;
        cs_max_tp = 0;
        cs_max_tee = 0;
        cs_abort = false;
        cs_local_ready = false;
        cs_decided = false;
        cs_client = (fun _ -> ());
        cs_participants = [];
        cs_coord = -1;
        cs_start_latest = 0;
        cs_vote_views = [];
        cs_settled = false;
      }
    in
    Hashtbl.add ctx.coord_states txn cs;
    cs

(* Drop the 2PC state once no more messages can reference it. With failover
   armed, a decided-commit entry must additionally survive until its commit
   record is durable (cs_settled) — otherwise a terminate query arriving in
   that window would find neither the state nor a decided outcome and
   force-abort a transaction that is about to commit. *)
let coord_gc ctx txn cs =
  match cs.cs_expected with
  | Some e
    when cs.cs_decided
         && cs.cs_votes >= e
         && (cs.cs_settled || not ctx.failover) ->
    Hashtbl.remove ctx.coord_states txn
  | Some _ | None -> ()

(* Acquire write locks for [keys] one at a time (CPS). *)
let rec acquire_writes shard ~txn ~priority keys ~blocked k =
  match keys with
  | [] -> k (Ok blocked)
  | key :: rest ->
    Locks.acquire_write shard.Shard.locks ~key ~txn ~priority (function
      | Locks.Aborted -> k (Error ())
      | Locks.Granted { blocked_us } ->
        acquire_writes shard ~txn ~priority rest ~blocked:(blocked + blocked_us) k)

(* Deliver a 2PC outcome at a shard. Failure-free mode applies it directly
   (the pre-failover behavior). With failover armed, a commit is forced to
   the shard's replicated log before its side effects — locks are held
   until the record is durable, which also preserves the per-key commit
   order the monotonicity invariant needs — and every outcome leaves a
   tombstone in the decided table for dedup and status queries. *)
let release_at_shard ctx shard ~txn outcome =
  if not ctx.failover then begin
    Shard.resolve_prepared shard ~txn outcome;
    Locks.release_all shard.Shard.locks ~txn
  end
  else
    match outcome with
    | Types.Aborted ->
      if Shard.decided shard txn = None then
        Shard.set_decided shard ~txn Types.Aborted ~max_tee:0;
      Shard.resolve_prepared shard ~txn outcome;
      Locks.release_all shard.Shard.locks ~txn
    | Types.Committed _ ->
      if Shard.decided shard txn <> None then begin
        (* Already durable here (or replayed by a new leader): just settle
           whatever volatile state remains. *)
        Shard.resolve_prepared shard ~txn outcome;
        Locks.release_all shard.Shard.locks ~txn
      end
      else begin
        let writes =
          match Shard.prepared shard txn with
          | Some p -> p.Shard.p_writes
          | None -> []
        in
        Shard.set_decided shard ~txn outcome ~max_tee:0;
        Replication.Group.replicate shard.Shard.repl
          (Types.Routcome
             { r_txn = txn; r_out = outcome; r_writes = writes; r_max_tee = 0 })
          (fun () ->
            Shard.resolve_prepared shard ~txn outcome;
            Locks.release_all shard.Shard.locks ~txn)
      end

(* Non-forcing outcome lookup at the coordinator, for participants
   resolving in-doubt prepares. [`Pending] means 2PC state exists but no
   durable decision yet — the asker retries. *)
let handle_status ctx shard ~txn =
  match Shard.decided shard txn with
  | Some (out, _) -> `Decided out
  | None -> if Hashtbl.mem ctx.coord_states txn then `Pending else `Unknown

let rec handle_vote ctx coord_shard ~txn ~vote_view outcome =
  let cs = coord_state ctx txn in
  (match outcome with
  | `Abort -> cs.cs_abort <- true
  | `Ok (tp, tee) ->
    if tp > cs.cs_max_tp then cs.cs_max_tp <- tp;
    if tee > cs.cs_max_tee then cs.cs_max_tee <- tee);
  cs.cs_vote_views <- vote_view :: cs.cs_vote_views;
  cs.cs_votes <- cs.cs_votes + 1;
  maybe_decide ctx coord_shard ~txn;
  coord_gc ctx txn cs

and maybe_decide ctx coord_shard ~txn =
  let cs = coord_state ctx txn in
  match cs.cs_expected with
  | Some expected
    when (not cs.cs_decided) && cs.cs_local_ready && cs.cs_votes >= expected ->
    (* Decision-time view validation: a participant whose group elected a
       new leader since it voted has lost its volatile read locks (and the
       serialization they guaranteed), so its vote is void. *)
    let views_ok =
      (not ctx.failover)
      || List.for_all
           (fun (sid, v) ->
             Replication.Group.view ctx.shards.(sid).Shard.repl = v)
           cs.cs_vote_views
    in
    let tombstoned =
      ctx.failover
      &&
      match Shard.decided coord_shard txn with
      | Some (Types.Aborted, _) -> true
      | Some (Types.Committed _, _) | None -> false
    in
    if cs.cs_abort || Types.is_wounded ctx.txns txn || (not views_ok) || tombstoned
    then decide_abort ctx coord_shard ~txn
    else decide_commit ctx coord_shard ~txn
  | Some _ | None -> ()

and decide_abort ctx coord_shard ~txn =
  let cs = coord_state ctx txn in
  if not cs.cs_decided then begin
    cs.cs_decided <- true;
    if Obs.Trace.enabled ctx.tracer then
      Obs.Trace.instant ~site:coord_shard.Shard.leader_site ctx.tracer
        ~kind:Obs.Trace.Phase ~name:"2pc.abort" ~ts:(Sim.Engine.now ctx.engine);
    cs.cs_settled <- true;
    (Types.find ctx.txns txn).Types.outcome <- Some Types.Aborted;
    release_at_shard ctx coord_shard ~txn Types.Aborted;
    List.iter
      (fun p ->
        if p <> coord_shard.Shard.shard_id then
          to_shard ctx ~src:coord_shard.Shard.leader_site ~bytes:32 p (fun sh ->
              release_at_shard ctx sh ~txn Types.Aborted))
      cs.cs_participants;
    cs.cs_client (Types.Aborted, cs.cs_max_tee);
    coord_gc ctx txn cs
  end

and decide_commit ctx coord_shard ~txn =
  let cs = coord_state ctx txn in
  cs.cs_decided <- true;
  let tr = ctx.tracer in
  (* Spans decision -> commit record durable -> commit wait elapsed; the
     outcome broadcast and client reply hops parent to it via the ambient. *)
  let commit_sp =
    if Obs.Trace.enabled tr then
      Obs.Trace.begin_span ~site:coord_shard.Shard.leader_site tr
        ~kind:Obs.Trace.Phase ~name:"2pc.commit" ~ts:(Sim.Engine.now ctx.engine)
    else Obs.Trace.none
  in
  let now_latest = (Sim.Truetime.now ctx.tt).Sim.Truetime.latest in
  let tc =
    List.fold_left max 1
      [ cs.cs_max_tp; now_latest; cs.cs_start_latest + 1;
        coord_shard.Shard.max_write_ts + 1 ]
  in
  let own_writes =
    match Shard.prepared coord_shard txn with
    | Some p -> p.Shard.p_writes
    | None -> []
  in
  (* The commit record: forced to the coordinator group's log before any
     side effect, so the decision survives a coordinator leader crash. *)
  Replication.Group.replicate coord_shard.Shard.repl
    (Types.Routcome
       {
         r_txn = txn;
         r_out = Types.Committed tc;
         r_writes = own_writes;
         r_max_tee = cs.cs_max_tee;
       })
    (fun () ->
      cs.cs_settled <- true;
      if ctx.failover && Shard.decided coord_shard txn = None then
        Shard.set_decided coord_shard ~txn (Types.Committed tc)
          ~max_tee:cs.cs_max_tee;
      (* Commit wait: no server reveals the data before tc definitely
         passed. *)
      wait_truetime ctx tc (fun () ->
          Obs.Trace.with_current tr commit_sp (fun () ->
              (Types.find ctx.txns txn).Types.outcome <- Some (Types.Committed tc);
              release_at_shard ctx coord_shard ~txn (Types.Committed tc);
              List.iter
                (fun p ->
                  if p <> coord_shard.Shard.shard_id then
                    to_shard ctx ~src:coord_shard.Shard.leader_site p (fun sh ->
                        release_at_shard ctx sh ~txn (Types.Committed tc)))
                cs.cs_participants;
              cs.cs_client (Types.Committed tc, cs.cs_max_tee);
              coord_gc ctx txn cs);
          Obs.Trace.end_span tr commit_sp ~ts:(Sim.Engine.now ctx.engine)))

(* A participant with a prepared transaction and no outcome asks the
   coordinator, with retransmission: the coordinator may be mid-election.
   The soft probes turn forcing if the answer doesn't converge:

   - [`Unknown]: abort tombstones are volatile, so a coordinator view
     change can forget an abort it once decided, leaving the durable
     prepare with no record to converge on. No coordinator state and no
     durable commit record means no CommitRequest was acknowledged —
     presume abort, and tombstone so a late CommitRequest aborts rather
     than resurrects.
   - [`Pending]: the decision is stuck short of its expected vote count —
     typically a vote that died with a crashed leader (decision-time view
     validation would void a late copy of it anyway). Abort is always safe
     before a decision, and it frees the prepare's locks; the waiting
     client sees the abort and retries. *)
let resolve_in_doubt ctx shard txn =
  if Shard.prepared shard txn <> None && not (Hashtbl.mem shard.Shard.in_doubt txn)
  then
    match (ctx.rpc, Shard.prepared shard txn) with
    | Some rpc, Some p ->
      Hashtbl.replace shard.Shard.in_doubt txn ();
      Sim.Rpc.call ~name:"rpc.resolve_in_doubt" rpc
        ~attempt:(fun ~attempt:n ~ok ->
          to_shard ctx ~src:shard.Shard.leader_site ~bytes:32 p.Shard.p_coord
            (fun csh ->
              let reply out =
                to_shard ctx ~src:csh.Shard.leader_site ~bytes:32
                  shard.Shard.shard_id (fun _ -> ok out)
              in
              match handle_status ctx csh ~txn with
              | `Decided out -> reply out
              | `Unknown when n >= 3 ->
                Shard.set_decided csh ~txn Types.Aborted ~max_tee:0;
                let meta = Types.find ctx.txns txn in
                if meta.Types.outcome = None then
                  meta.Types.outcome <- Some Types.Aborted;
                reply Types.Aborted
              | `Pending when n >= 5 -> (
                match Hashtbl.find_opt ctx.coord_states txn with
                | Some cs when not cs.cs_decided ->
                  decide_abort ctx csh ~txn;
                  reply Types.Aborted
                | Some _ | None -> ())
              | `Pending | `Unknown -> ()))
        ~on_result:(fun res ->
          Hashtbl.remove shard.Shard.in_doubt txn;
          match res with
          | Some out ->
            ctx.n_in_doubt_resolved <- ctx.n_in_doubt_resolved + 1;
            release_at_shard ctx shard ~txn out
          | None -> ())
    | _ -> ()

(* Participant prepare: validate, lock, choose tp, replicate, vote. The §6
   wound-wait optimization advances the stored t_ee by the blocked time. *)
let participant_prepare ctx shard ~txn ~priority ~writes_here ~tee ~coord =
  let tr = ctx.tracer in
  let prep_sp =
    if Obs.Trace.enabled tr then
      Obs.Trace.begin_span ~site:shard.Shard.leader_site tr
        ~kind:Obs.Trace.Phase ~name:"2pc.prepare"
        ~ts:(Sim.Engine.now ctx.engine)
    else Obs.Trace.none
  in
  (* The vote carries the voter's group view so the coordinator can void it
     if this shard fails over before the decision. *)
  let vote outcome =
    let vote_view =
      (shard.Shard.shard_id, Replication.Group.view shard.Shard.repl)
    in
    Obs.Trace.with_current tr prep_sp (fun () ->
        to_shard ctx ~src:shard.Shard.leader_site coord (fun coord_shard ->
            handle_vote ctx coord_shard ~txn ~vote_view outcome));
    Obs.Trace.end_span tr prep_sp ~ts:(Sim.Engine.now ctx.engine)
  in
  if List.exists (fun (key, _) -> not (owns ctx shard key)) writes_here then begin
    (* Stale route: the range moved since the client picked participants. *)
    ctx.n_redirects <- ctx.n_redirects + 1;
    vote `Abort
  end
  else if List.exists (fun (key, _) -> Shard.fenced shard key) writes_here
  then begin
    ctx.n_fence_blocked <- ctx.n_fence_blocked + 1;
    Hashtbl.replace ctx.fence_bounced txn ();
    vote `Abort
  end
  else if Types.is_wounded ctx.txns txn then vote `Abort
  else
    let keys = List.map fst writes_here in
    acquire_writes shard ~txn ~priority keys ~blocked:0 (function
      | Error () -> vote `Abort
      | Ok blocked_us ->
        if Types.is_wounded ctx.txns txn then begin
          Locks.release_all shard.Shard.locks ~txn;
          vote `Abort
        end
        else begin
          let tp = Shard.choose_prepare_ts shard in
          let p =
            {
              Shard.p_txn = txn;
              p_tp = tp;
              p_tee = tee + blocked_us;
              p_writes = writes_here;
              p_waiters = [];
              p_coord = coord;
              p_participants = [];
            }
          in
          Shard.add_prepared shard p;
          if writes_here = [] then vote (`Ok (0, p.Shard.p_tee))
          else
            Replication.Group.replicate shard.Shard.repl
              (Types.Rprepare
                 {
                   r_txn = txn;
                   r_tp = tp;
                   r_tee = p.Shard.p_tee;
                   r_writes = writes_here;
                   r_coord = coord;
                   r_participants = [];
                 })
              (fun () -> vote (`Ok (tp, p.Shard.p_tee)))
        end)

(* Coordinator's half: its own locks and prepare timestamp, then decide once
   all votes arrive. Votes can overtake the CommitRequest on WANs that
   violate the triangle inequality, so the state may pre-exist. *)
let coordinator_request ctx coord_shard ~txn ~priority ~writes_here ~tee
    ~participants ~start_latest ~read_views
    ~(client : (Types.outcome * int) -> unit) =
  match Shard.decided coord_shard txn with
  | Some (out, mt) ->
    (* Already terminated (client gave up and forced an outcome) or decided
       by a predecessor leader whose log we replayed. *)
    client (out, mt)
  | None ->
    let cs = coord_state ctx txn in
    cs.cs_expected <- Some (List.length participants - 1);
    cs.cs_client <- client;
    cs.cs_participants <- participants;
    cs.cs_coord <- coord_shard.Shard.shard_id;
    cs.cs_start_latest <- start_latest;
    (* The views under which the execution-phase reads were served join the
       decision-time validation set: a read's 2PL lock dies with its
       leader, so a view change at any read shard between the read and the
       decision voids the serialization it promised. Vote views alone miss
       the read-to-vote window — a participant that fails over after
       serving a read but before voting re-votes from the new view and
       would validate cleanly while the read is stale. *)
    cs.cs_vote_views <- read_views @ cs.cs_vote_views;
    if tee > cs.cs_max_tee then cs.cs_max_tee <- tee;
    let local_ready () =
      if not cs.cs_decided then begin
        cs.cs_vote_views <-
          ( coord_shard.Shard.shard_id,
            Replication.Group.view coord_shard.Shard.repl )
          :: cs.cs_vote_views;
        cs.cs_local_ready <- true;
        maybe_decide ctx coord_shard ~txn
      end
    in
    let bounced =
      if List.exists (fun (key, _) -> not (owns ctx coord_shard key)) writes_here
      then begin
        ctx.n_redirects <- ctx.n_redirects + 1;
        true
      end
      else if List.exists (fun (key, _) -> Shard.fenced coord_shard key) writes_here
      then begin
        ctx.n_fence_blocked <- ctx.n_fence_blocked + 1;
        Hashtbl.replace ctx.fence_bounced txn ();
        true
      end
      else false
    in
    if cs.cs_decided then
      (* Aborted via a wound that raced ahead of this request. *)
      client (Types.Aborted, cs.cs_max_tee)
    else if Types.is_wounded ctx.txns txn then decide_abort ctx coord_shard ~txn
    else if bounced then begin
      (* Same shape as a lock-acquisition failure: vote abort locally and
         let the decision collect the remote votes. *)
      cs.cs_abort <- true;
      local_ready ()
    end
    else
      let keys = List.map fst writes_here in
      acquire_writes coord_shard ~txn ~priority keys ~blocked:0 (fun res ->
          if not cs.cs_decided then begin
            match res with
            | Error () ->
              cs.cs_abort <- true;
              local_ready ()
            | Ok blocked_us ->
              if Types.is_wounded ctx.txns txn then begin
                cs.cs_abort <- true;
                local_ready ()
              end
              else begin
                let tp = Shard.choose_prepare_ts coord_shard in
                if tp > cs.cs_max_tp then cs.cs_max_tp <- tp;
                let tee_local = tee + blocked_us in
                if tee_local > cs.cs_max_tee then cs.cs_max_tee <- tee_local;
                Shard.add_prepared coord_shard
                  {
                    Shard.p_txn = txn;
                    p_tp = tp;
                    p_tee = tee_local;
                    p_writes = writes_here;
                    p_waiters = [];
                    p_coord = coord_shard.Shard.shard_id;
                    p_participants = participants;
                  };
                if ctx.failover then
                  (* Make the coordinator's own promise durable too, so a
                     new leader can find (and presume-abort) the in-doubt
                     transactions this one coordinated. *)
                  Replication.Group.replicate coord_shard.Shard.repl
                    (Types.Rprepare
                       {
                         r_txn = txn;
                         r_tp = tp;
                         r_tee = tee_local;
                         r_writes = writes_here;
                         r_coord = coord_shard.Shard.shard_id;
                         r_participants = participants;
                       })
                    local_ready
                else local_ready ()
              end
          end)

(* A wound against a prepared holder: ask its coordinator to abort. If the
   decision already happened, the requester just waits out the commit. With
   failover armed the coordinator's volatile state may be gone entirely —
   then the prepare is in-doubt and is resolved by querying (the transaction
   cannot commit behind our back without the coordinator knowing). *)
let wound_prepared ctx shard txn =
  Types.wound ctx.txns txn;
  match Hashtbl.find_opt ctx.coord_states txn with
  | Some cs when (not cs.cs_decided) && cs.cs_coord >= 0 ->
    decide_abort ctx ctx.shards.(cs.cs_coord) ~txn
  | Some _ -> ()
  | None -> if ctx.failover then resolve_in_doubt ctx shard txn

(* A new leader took over [shard]'s group: install the replicated log,
   advance past any timestamp the old leader could have served under its
   lease, drop the volatile 2PC state that lived in the old leader's
   memory, and settle the in-doubt prepares — our own coordinated
   transactions without a commit record presume abort (the record is forced
   before any effect, so an unlogged commit never happened); foreign ones
   query their coordinator. *)
let on_shard_leader_change ctx shard ~leader_site ~committed =
  shard.Shard.leader_site <- leader_site;
  Shard.rebuild shard ~entries:committed;
  Shard.advance_max_write_ts shard (Sim.Truetime.now ctx.tt).Sim.Truetime.latest;
  let stale =
    Hashtbl.fold
      (fun txn cs acc ->
        if cs.cs_coord = shard.Shard.shard_id && not cs.cs_settled then
          txn :: acc
        else acc)
      ctx.coord_states []
  in
  List.iter (fun txn -> Hashtbl.remove ctx.coord_states txn) stale;
  let survivors =
    List.sort compare
      (Hashtbl.fold (fun txn _ acc -> txn :: acc) shard.Shard.prepared_tbl [])
  in
  List.iter
    (fun txn ->
      match Shard.prepared shard txn with
      | None -> ()
      | Some p ->
        if p.Shard.p_coord = shard.Shard.shard_id then begin
          ctx.n_in_doubt_resolved <- ctx.n_in_doubt_resolved + 1;
          let meta = Types.find ctx.txns txn in
          if meta.Types.outcome = None then
            meta.Types.outcome <- Some Types.Aborted;
          release_at_shard ctx shard ~txn Types.Aborted;
          List.iter
            (fun pid ->
              if pid <> shard.Shard.shard_id then
                to_shard ctx ~src:leader_site ~bytes:32 pid (fun sh ->
                    release_at_shard ctx sh ~txn Types.Aborted))
            p.Shard.p_participants
        end
        else resolve_in_doubt ctx shard txn)
    survivors

let make_ctx engine net tt txns config =
  let shards =
    Array.init config.Config.n_shards (fun shard_id ->
        Shard.create engine net tt txns config ~shard_id)
  in
  let ctx =
    {
      engine;
      net;
      tt;
      config;
      txns;
      shards;
      coord_states = Hashtbl.create 1024;
      n_rw_committed = 0;
      n_rw_aborted_attempts = 0;
      n_ro = 0;
      n_ro_slow = 0;
      failover = false;
      rpc = None;
      n_terminates = 0;
      n_terminate_commits = 0;
      n_in_doubt_resolved = 0;
      tracer = Obs.Trace.disabled;
      directory =
        Place.Directory.create ~n_shards:config.Config.n_shards
          ~base:(fun key -> Config.shard_of_key config key)
          ();
      place_stats = Place.Migrate.stats_create ();
      n_redirects = 0;
      n_fence_blocked = 0;
      fence_bounced = Hashtbl.create 64;
      drop_expired = false;
      hedge_us = 0;
      retry_budget = None;
      n_expired = 0;
      n_shed = 0;
      n_abandoned = 0;
      n_hedges = 0;
      n_hedge_wins = 0;
    }
  in
  Array.iter
    (fun sh -> sh.Shard.wound_prepared_hook := fun txn -> wound_prepared ctx sh txn)
    shards;
  ctx

let set_tracer ctx tracer =
  ctx.tracer <- tracer;
  Sim.Net.set_tracer ctx.net tracer;
  (match ctx.rpc with Some rpc -> Sim.Rpc.set_tracer rpc tracer | None -> ());
  Array.iter
    (fun sh -> Replication.Group.set_tracer sh.Shard.repl tracer)
    ctx.shards

let enable_failover ctx ~rng ?config ~until_us () =
  ctx.failover <- true;
  let rpc =
    Sim.Rpc.create ctx.engine ~rng ~timeout_us:300_000 ~max_attempts:15 ()
  in
  Sim.Rpc.set_tracer rpc ctx.tracer;
  ctx.rpc <- Some rpc;
  Array.iter
    (fun sh ->
      Replication.Group.enable_failover sh.Shard.repl ?config
        ~on_leader_change:(fun ~leader_site ~committed ->
          on_shard_leader_change ctx sh ~leader_site ~committed)
        ~until_us ())
    ctx.shards

(* Execution-phase read at a shard: 2PL read lock, then the newest version.
   Ownership and fence are checked before any lock is taken: a request for
   a key this shard no longer owns (the client routed on a stale view) or
   a key inside a migration fence bounces — the reply-None path the client
   already treats as an abort-and-retry, by which time the fence is down
   or the refreshed view routes to the new owner. *)
let handle_rw_read ctx shard ~txn ~priority ~keys
    ~(reply : (int * int option) list option -> unit) =
  let rec loop keys acc =
    match keys with
    | [] -> reply (Some acc)
    | key :: rest ->
      Locks.acquire_read shard.Shard.locks ~key ~txn ~priority (function
        | Locks.Aborted -> reply None
        | Locks.Granted _ ->
          let v = Shard.read_version_at shard ~key ~ts:max_int in
          let observed = Option.map (fun (v : Types.version) -> v.Types.value) v in
          loop rest ((key, observed) :: acc))
  in
  if List.exists (fun key -> not (owns ctx shard key)) keys then begin
    ctx.n_redirects <- ctx.n_redirects + 1;
    reply None
  end
  else if List.exists (Shard.fenced shard) keys then begin
    ctx.n_fence_blocked <- ctx.n_fence_blocked + 1;
    Hashtbl.replace ctx.fence_bounced txn ();
    reply None
  end
  else if Types.is_wounded ctx.txns txn then reply None
  else loop keys []

(* Forcing outcome query from a client that stopped hearing from its
   coordinator. If the transaction is known and undecided, abort it; if it
   was never heard of (the coordinator's volatile state died with the old
   leader, and no commit record survived), tombstone an abort so a late
   CommitRequest cannot resurrect it. [`Pending] — a commit record in
   flight — is the one state that must not be forced either way. *)
let handle_terminate ctx shard ~txn ~reply =
  match Shard.decided shard txn with
  | Some (out, mt) -> reply (`Decided (out, mt))
  | None -> (
    match Hashtbl.find_opt ctx.coord_states txn with
    | Some cs when cs.cs_decided -> reply `Pending
    | Some cs ->
      decide_abort ctx shard ~txn;
      reply (`Decided (Types.Aborted, cs.cs_max_tee))
    | None ->
      Shard.set_decided shard ~txn Types.Aborted ~max_tee:0;
      let meta = Types.find ctx.txns txn in
      if meta.Types.outcome = None then meta.Types.outcome <- Some Types.Aborted;
      reply (`Decided (Types.Aborted, 0)))

let rw_txn ?(on_attempt = fun (_ : int) -> ()) ?deadline_us ?view ctx
    ~client_site ~proc ~read_keys ~writes k =
  if writes = [] then invalid_arg "Protocol.rw_txn: empty write set";
  let write_keys = List.map fst writes in
  if List.length (List.sort_uniq compare write_keys) <> List.length write_keys then
    invalid_arg "Protocol.rw_txn: duplicate write keys";
  let read_keys = List.sort_uniq compare read_keys in
  (* Retries keep this first-attempt priority (classic wound-wait), and the
     tiebreak makes priorities a strict total order. *)
  let priority = (Sim.Engine.now ctx.engine, Types.tiebreak ctx.txns) in
  let attempts = ref 0 in
  (* Absolute expiry for deadline propagation: fixed at first issue, so
     retries inherit the remaining (not a fresh) deadline — the property
     that stops retry storms from doing useless work server-side. *)
  let expires =
    match deadline_us with
    | Some d when ctx.drop_expired -> Some (Sim.Engine.now ctx.engine + d)
    | Some _ | None -> None
  in
  let rec attempt () =
    (* Routing is re-derived per attempt from the client's cached view:
       an attempt bounced off a moved range refreshes the view in [retry]
       and the next attempt addresses the new owner. *)
    let write_shards = group_by_shard ?view ctx (List.map fst writes) in
    let read_shards = group_by_shard ?view ctx read_keys in
    let participant_ids =
      List.sort_uniq compare
        (List.map fst write_shards @ List.map fst read_shards)
    in
    let coord, est_latency =
      Config.estimate_commit_latency_us ctx.config ~client_site
        ~participants:(List.map fst write_shards)
    in
    let meta = Types.fresh ctx.txns ~proc ~priority in
    let txn = meta.Types.id in
    on_attempt txn;
    (* Server-suggested backoff from an admission-control pushback on this
       attempt's reads: folded into the retry backoff below so a shed
       client waits at least as long as the server asked. *)
    let pushback_us = ref 0 in
    (* Release everything this attempt still holds (at the shards this
       attempt actually addressed). *)
    let release_attempt txn =
      (Types.find ctx.txns txn).Types.outcome <- Some Types.Aborted;
      List.iter
        (fun shard_id ->
          to_shard ctx ~src:client_site ~bytes:32 shard_id (fun sh ->
              release_at_shard ctx sh ~txn Types.Aborted))
        participant_ids
    in
    (* Give up for good: past its deadline (a retry cannot meet it) or out
       of retry budget (a retry would amplify the very overload that failed
       it). Locks still release — an abandoned txn must not strand
       waiters. *)
    let abandon txn =
      ctx.n_abandoned <- ctx.n_abandoned + 1;
      release_attempt txn
    in
    let retry txn =
      release_attempt txn;
      (match view with
      | Some v when Place.Directory.stale v -> Place.Directory.refresh v
      | Some _ | None -> ());
      (* Exponential backoff, capped: retry storms on hot keys otherwise
         multiply wound-wait convoys. A fence bounce gets a much higher cap:
         the fence stands for the whole drain + barrier, and retrying at
         wound-wait cadence keeps a rolling stream of old-priority read
         locks on the hot keys that starves the writers the drain itself is
         waiting on (the retry keeps its first-attempt priority, so a
         fence-stuck session outranks every later transaction it touches). *)
      let fence_hit = Hashtbl.mem ctx.fence_bounced txn in
      Hashtbl.remove ctx.fence_bounced txn;
      incr attempts;
      let shift = min !attempts (if fence_hit then 9 else 5) in
      let backoff = (5_000 * (1 lsl shift)) + (txn mod 5_000) in
      let backoff = max backoff !pushback_us in
      match ctx.retry_budget with
      | Some b when not (Sim.Rpc.Budget.try_take b) ->
        (* Budget spent: fast-fail rather than join a retry storm. The
           release already ran above. *)
        ctx.n_abandoned <- ctx.n_abandoned + 1
      | Some _ | None ->
        Sim.Engine.schedule ~kind:"txn.backoff" ctx.engine ~after:backoff attempt
    in
    (* --- execution (read) phase --- *)
    let pending = ref (List.length read_shards) in
    let observed = ref [] in
    let read_views = ref [] in
    let failed = ref false in
    (* First settlement wins: the coordinator's reply, or — with failover
       armed and a deadline set — the client's terminate protocol. *)
    let settled = ref false in
    let terminate_attempt () =
      ctx.n_terminates <- ctx.n_terminates + 1;
      match ctx.rpc with
      | None -> retry txn
      | Some rpc ->
        Sim.Rpc.call ~name:"rpc.terminate" rpc
          ~attempt:(fun ~attempt:_ ~ok ->
            to_shard ctx ~src:client_site ~bytes:32 coord (fun csh ->
                handle_terminate ctx csh ~txn ~reply:(function
                  | `Decided (out, mt) ->
                    to_client ctx ~src:csh.Shard.leader_site ~bytes:32
                      ~dst:client_site (fun () -> ok (out, mt))
                  | `Pending -> ())))
          ~on_result:(function
            | Some (Types.Committed tc, mt) ->
              ctx.n_terminate_commits <- ctx.n_terminate_commits + 1;
              ctx.n_rw_committed <- ctx.n_rw_committed + 1;
              (* The coordinator (or its successor) holds a durable commit;
                 nudge any participant the outcome broadcast missed. *)
              List.iter
                (fun pid ->
                  if pid <> coord then
                    to_shard ctx ~src:client_site ~bytes:32 pid (fun sh ->
                        release_at_shard ctx sh ~txn (Types.Committed tc)))
                participant_ids;
              wait_truetime ctx
                (max tc (mt - Sim.Truetime.epsilon ctx.tt))
                (fun () ->
                  k { rw_commit_ts = tc; rw_txn_id = txn; rw_reads = !observed })
            | Some (Types.Aborted, _) | None ->
              ctx.n_rw_aborted_attempts <- ctx.n_rw_aborted_attempts + 1;
              retry txn)
    in
    (match deadline_us with
    | Some d when ctx.failover ->
      Sim.Engine.schedule ~kind:"txn.deadline" ctx.engine ~after:d (fun () ->
          if not !settled then begin
            settled := true;
            terminate_attempt ()
          end)
    | Some _ | None -> ());
    let commit_phase () =
      let start_latest = (Sim.Truetime.now ctx.tt).Sim.Truetime.latest in
      let tee =
        (Sim.Truetime.now ctx.tt).Sim.Truetime.earliest
        + est_latency
        + (2 * Sim.Truetime.epsilon ctx.tt)
        + ctx.config.Config.tee_pad_us
      in
      let on_outcome (outcome, max_tee) =
        if not !settled then begin
          settled := true;
          match outcome with
          | Types.Committed tc ->
            ctx.n_rw_committed <- ctx.n_rw_committed + 1;
            (* Complete only once every shard's stored t_ee is a definite
               lower bound on this (real) end time. *)
            wait_truetime ctx (max_tee - Sim.Truetime.epsilon ctx.tt) (fun () ->
                k { rw_commit_ts = tc; rw_txn_id = txn; rw_reads = !observed })
          | Types.Aborted ->
            ctx.n_rw_aborted_attempts <- ctx.n_rw_aborted_attempts + 1;
            retry txn
        end
      in
      let reply_to_client out =
        to_client ctx ~src:ctx.shards.(coord).Shard.leader_site ~dst:client_site
          (fun () -> on_outcome out)
      in
      List.iter
        (fun shard_id ->
          let writes_here =
            match List.assoc_opt shard_id write_shards with
            | None -> []
            | Some keys -> List.map (fun key -> (key, List.assoc key writes)) keys
          in
          if shard_id = coord then
            to_shard ctx ~src:client_site shard_id (fun sh ->
                coordinator_request ctx sh ~txn ~priority ~writes_here ~tee
                  ~participants:participant_ids ~start_latest
                  ~read_views:!read_views ~client:reply_to_client)
          else
            to_shard ctx ~src:client_site shard_id (fun sh ->
                participant_prepare ctx sh ~txn ~priority ~writes_here ~tee ~coord))
        participant_ids
    in
    let read_done () =
      decr pending;
      if !pending = 0 && not !settled then
        if !failed then begin
          settled := true;
          ctx.n_rw_aborted_attempts <- ctx.n_rw_aborted_attempts + 1;
          retry txn
        end
        else commit_phase ()
    in
    if read_shards = [] then commit_phase ()
    else
      List.iter
        (fun (shard_id, keys) ->
          (* Only the read phase carries the deadline and accepts pushback:
             it is the txn's front door, where refusing work is still
             cheap. Once prepares are out, messages must land. *)
          let reject = function
            | Expired ->
              if not !settled then begin
                settled := true;
                ctx.n_rw_aborted_attempts <- ctx.n_rw_aborted_attempts + 1;
                abandon txn
              end
            | Pushback pb ->
              pushback_us := max !pushback_us pb.retry_after_us;
              failed := true;
              read_done ()
          in
          to_shard ctx ~src:client_site ?expires ~reject shard_id (fun sh ->
              (* Conservative capture point: any view change after this —
                 even mid-batch, while later keys' locks are still being
                 granted — voids the whole attempt at decision time. *)
              let view_at_read = Replication.Group.view sh.Shard.repl in
              handle_rw_read ctx sh ~txn ~priority ~keys ~reply:(fun res ->
                  to_client ctx ~src:sh.Shard.leader_site ~dst:client_site
                    (fun () ->
                      (match res with
                      | None -> failed := true
                      | Some vals ->
                        observed := vals @ !observed;
                        read_views := (shard_id, view_at_read) :: !read_views);
                      read_done ()))))
        read_shards
  in
  attempt ()

(* ------------------------------------------------------------------ *)
(* Read-only transactions (Algorithms 1 and 2)                         *)
(* ------------------------------------------------------------------ *)

type ro_result = {
  ro_snap_ts : int;
  ro_reads : (int * int option) list;
  ro_slow : bool;
}

type fast_reply = {
  fr_values : (int * Types.version option) list;
  fr_skipped : (int * int * (int * int) list) list;
      (* (txn, tp, its writes to the requested keys) — §6 optimization 1 *)
}

type slow_reply = { sr_txn : int; sr_outcome : Types.outcome }

(* Shard-side RO handler (Algorithm 2). In Strict mode every conflicting
   prepared transaction with tp <= t_read blocks; in RSS mode only those
   that must be observed (tp <= t_min) or could have ended before the RO
   began (t_ee <= t_read). *)
let handle_ro ctx shard ~keys ~t_read ~t_min ~(fast : fast_reply -> unit)
    ~(slow : slow_reply -> unit) =
  shard.Shard.n_ro_served <- shard.Shard.n_ro_served + 1;
  (* Leader lease: advancing max_write_ts guarantees all future prepare
     timestamps exceed t_read, so Alg. 2's "wait until t_read <= MaxWriteTS"
     never blocks at a leader. *)
  Shard.advance_max_write_ts shard t_read;
  let p0 = Shard.conflicting_prepared shard ~keys ~max_tp:t_read in
  let blocking =
    match ctx.config.Config.mode with
    | Config.Strict -> p0
    | Config.Rss ->
      List.filter
        (fun (p : Shard.prepared) -> p.Shard.p_tp <= t_min || p.Shard.p_tee <= t_read)
        p0
  in
  if blocking <> [] then shard.Shard.n_ro_blocked <- shard.Shard.n_ro_blocked + 1;
  let tr = ctx.tracer in
  let block_sp =
    if Obs.Trace.enabled tr && blocking <> [] then
      Obs.Trace.begin_span ~site:shard.Shard.leader_site tr
        ~kind:Obs.Trace.Phase ~name:"ro.block" ~ts:(Sim.Engine.now ctx.engine)
    else Obs.Trace.none
  in
  (* With failover armed a conflicting prepare may be orphaned (its
     coordinator's leader died); kick off in-doubt resolution so the read
     does not wait on a decision nobody is driving. *)
  if ctx.failover then
    List.iter
      (fun (p : Shard.prepared) -> resolve_in_doubt ctx shard p.Shard.p_txn)
      p0;
  let finish () =
    Obs.Trace.end_span tr block_sp ~ts:(Sim.Engine.now ctx.engine);
    let remaining =
      List.filter
        (fun (p : Shard.prepared) -> Shard.prepared shard p.Shard.p_txn <> None)
        p0
    in
    let values =
      List.map (fun key -> (key, Shard.read_version_at shard ~key ~ts:t_read)) keys
    in
    let skipped =
      List.map
        (fun (p : Shard.prepared) ->
          let writes = List.filter (fun (k, _) -> List.mem k keys) p.Shard.p_writes in
          (p.Shard.p_txn, p.Shard.p_tp, writes))
        remaining
    in
    fast { fr_values = values; fr_skipped = skipped };
    List.iter
      (fun (p : Shard.prepared) ->
        Shard.wait_prepared shard p (fun outcome ->
            slow { sr_txn = p.Shard.p_txn; sr_outcome = outcome }))
      remaining
  in
  match blocking with
  | [] -> finish ()
  | _ ->
    let pending = ref (List.length blocking) in
    List.iter
      (fun p ->
        Shard.wait_prepared shard p (fun _ ->
            decr pending;
            if !pending = 0 then finish ()))
      blocking

let rec ro_once ?view ?expires ctx ~client_site ~t_min ~keys k =
  ctx.n_ro <- ctx.n_ro + 1;
  let t_read = (Sim.Truetime.now ctx.tt).Sim.Truetime.latest in
  let by_shard = group_by_shard ?view ctx keys in
  let pending_fast = ref (List.length by_shard) in
  let versions : (int, Types.version list) Hashtbl.t = Hashtbl.create 8 in
  (* Newest timestamp per key among the fast-path values only: t_snap must
     be computed from Alg. 2's V, not from slow-path resolutions (whose
     commit timestamps may exceed t_read). *)
  let fast_newest = ref 0 in
  let skipped : (int, int * (int * int) list) Hashtbl.t = Hashtbl.create 8 in
  (* Slow replies that overtook their shard's fast reply on the network. *)
  let early_outcomes : (int, Types.outcome) Hashtbl.t = Hashtbl.create 4 in
  let went_slow = ref false in
  let finished = ref false in
  let t_snap = ref 0 in
  let add_version key (v : Types.version) =
    let prev = try Hashtbl.find versions key with Not_found -> [] in
    Hashtbl.replace versions key (v :: prev)
  in
  let resolve txn outcome =
    match Hashtbl.find_opt skipped txn with
    | None -> Hashtbl.replace early_outcomes txn outcome
    | Some (_tp, writes) ->
      Hashtbl.remove skipped txn;
      (match outcome with
      | Types.Aborted -> ()
      | Types.Committed tc ->
        List.iter
          (fun (key, value) -> add_version key { Types.ts = tc; writer = txn; value })
          writes)
  in
  (* §6 optimization 1: a committed version returned by one shard reveals the
     commit timestamp of a transaction another shard skipped. *)
  let resolve_from_committed () =
    let found = ref [] in
    Hashtbl.iter
      (fun _ vs ->
        List.iter
          (fun (v : Types.version) ->
            if Hashtbl.mem skipped v.Types.writer then
              found := (v.Types.writer, v.Types.ts) :: !found)
          vs)
      versions;
    List.iter (fun (txn, tc) -> resolve txn (Types.Committed tc)) !found
  in
  let min_skipped_tp () = Hashtbl.fold (fun _ (tp, _) acc -> min tp acc) skipped max_int in
  let finish () =
    finished := true;
    let reads =
      List.map
        (fun key ->
          let vs = try Hashtbl.find versions key with Not_found -> [] in
          let best =
            List.fold_left
              (fun acc (v : Types.version) ->
                if v.Types.ts <= !t_snap then
                  match acc with
                  | Some (b : Types.version) when b.Types.ts >= v.Types.ts -> acc
                  | _ -> Some v
                else acc)
              None vs
          in
          (key, Option.map (fun (v : Types.version) -> v.Types.value) best))
        keys
    in
    if !went_slow then ctx.n_ro_slow <- ctx.n_ro_slow + 1;
    let witness_ts =
      match ctx.config.Config.mode with
      | Config.Strict -> t_read
      | Config.Rss -> max !t_snap t_min
    in
    k { ro_snap_ts = witness_ts; ro_reads = reads; ro_slow = !went_slow }
  in
  let check_done () =
    if (not !finished) && !pending_fast = 0 then
      if min_skipped_tp () > !t_snap then finish () else went_slow := true
  in
  let on_slow sr =
    resolve sr.sr_txn sr.sr_outcome;
    check_done ()
  in
  let on_fast fr =
    List.iter
      (fun (key, v) ->
        match v with
        | None -> ()
        | Some v ->
          add_version key v;
          if v.Types.ts > !fast_newest then fast_newest := v.Types.ts)
      fr.fr_values;
    List.iter
      (fun (txn, tp, writes) ->
        match Hashtbl.find_opt early_outcomes txn with
        | Some outcome ->
          Hashtbl.remove early_outcomes txn;
          (match outcome with
          | Types.Aborted -> ()
          | Types.Committed tc ->
            List.iter
              (fun (key, value) ->
                add_version key { Types.ts = tc; writer = txn; value })
              writes)
        | None -> Hashtbl.replace skipped txn (tp, writes))
      fr.fr_skipped;
    decr pending_fast;
    if !pending_fast = 0 then begin
      (* CalculateSnapshotTS: the earliest time at which a (fast) value is
         known for every key. *)
      t_snap := !fast_newest;
      resolve_from_committed ();
      check_done ()
    end
  in
  (* A shard that no longer owns some requested key bounces the whole RO:
     the client refreshes its view and re-issues with a fresh t_read.
     [finished] kills the dead attempt, so replies from its other shards
     are ignored. Note a fenced range still serves ROs at the source — the
     fence only blocks lock acquisition — so reads stay available through
     the whole handoff. *)
  let bounce () =
    if not !finished then begin
      finished := true;
      refresh_view view;
      ro_once ?view ?expires ctx ~client_site ~t_min ~keys k
    end
  in
  (* A shard's refusal kills this whole attempt ([finished] silences the
     other shards' replies — a partial RO is worthless). Expired: the
     deadline already passed, give up. Shed: re-issue the whole read after
     the server-suggested backoff, but only if the retry budget allows it
     and the deadline can still be met — otherwise fast-fail. *)
  let reject = function
    | Expired ->
      if not !finished then begin
        finished := true;
        ctx.n_abandoned <- ctx.n_abandoned + 1
      end
    | Pushback pb ->
      if not !finished then begin
        finished := true;
        let now = Sim.Engine.now ctx.engine in
        let in_time =
          match expires with None -> true | Some e -> now + pb.retry_after_us < e
        in
        let budgeted =
          match ctx.retry_budget with
          | None -> true
          | Some b -> Sim.Rpc.Budget.try_take b
        in
        if in_time && budgeted then
          Sim.Engine.schedule ~kind:"txn.backoff" ctx.engine
            ~after:pb.retry_after_us (fun () ->
              ro_once ?view ?expires ctx ~client_site ~t_min ~keys k)
        else ctx.n_abandoned <- ctx.n_abandoned + 1
      end
  in
  List.iter
    (fun (shard_id, shard_keys) ->
      to_shard ctx ~src:client_site ?expires ~reject shard_id (fun sh ->
          if List.exists (fun key -> not (owns ctx sh key)) shard_keys then begin
            ctx.n_redirects <- ctx.n_redirects + 1;
            to_client ctx ~src:sh.Shard.leader_site ~bytes:32 ~dst:client_site
              bounce
          end
          else
            handle_ro ctx sh ~keys:shard_keys ~t_read ~t_min
              ~fast:(fun fr ->
                to_client ctx ~src:sh.Shard.leader_site ~dst:client_site
                  (fun () -> on_fast fr))
              ~slow:(fun sr ->
                to_client ctx ~src:sh.Shard.leader_site ~dst:client_site
                  (fun () -> on_slow sr))))
    by_shard

(* A read-only transaction, optionally re-issued from scratch (fresh
   t_read, fresh closures) when a deadline passes without completion — a
   shard reply may have been lost to a crashed leader. First completion
   wins; the attempt budget bounds the tail so an unservable read does not
   keep the simulation alive forever. *)
let ro_txn ?deadline_us ?view ctx ~client_site ~proc:_ ~t_min ~keys k =
  let expires =
    match deadline_us with
    | Some d when ctx.drop_expired -> Some (Sim.Engine.now ctx.engine + d)
    | Some _ | None -> None
  in
  match deadline_us with
  | Some d when ctx.failover ->
    let done_ = ref false in
    let rec go attempts_left =
      if (not !done_) && attempts_left > 0 then begin
        (* A re-issue may be retrying a read whose reply died with a moved
           leader; catch the view up first so it addresses current owners. *)
        (match view with
        | Some v when Place.Directory.stale v -> Place.Directory.refresh v
        | Some _ | None -> ());
        ro_once ?view ?expires ctx ~client_site ~t_min ~keys (fun res ->
            if not !done_ then begin
              done_ := true;
              k res
            end);
        Sim.Engine.schedule ~kind:"txn.deadline" ctx.engine ~after:d (fun () ->
            go (attempts_left - 1))
      end
    in
    go 25
  | Some _ | None ->
    if ctx.hedge_us <= 0 then ro_once ?view ?expires ctx ~client_site ~t_min ~keys k
    else begin
      (* Hedged read: if the primary has not completed after [hedge_us]
         (sized to a healthy-run latency percentile), issue one duplicate
         and let the first completion win. Against a gray-failed leader the
         hedge re-routes through the client's refreshed view — and even on
         an unchanged route it re-queues behind a shorter backlog than the
         stuck primary. The loser is cancelled client-side ([done_]); its
         server work completes harmlessly (reads take no locks). *)
      let done_ = ref false in
      let primary_done = ref false in
      ro_once ?view ?expires ctx ~client_site ~t_min ~keys (fun res ->
          primary_done := true;
          if not !done_ then begin
            done_ := true;
            k res
          end);
      Sim.Engine.schedule ~kind:"txn.hedge" ctx.engine ~after:ctx.hedge_us
        (fun () ->
          if not !done_ then begin
            ctx.n_hedges <- ctx.n_hedges + 1;
            (match view with
            | Some v when Place.Directory.stale v -> Place.Directory.refresh v
            | Some _ | None -> ());
            ro_once ?view ?expires ctx ~client_site ~t_min ~keys (fun res ->
                if not !done_ then begin
                  done_ := true;
                  if not !primary_done then
                    ctx.n_hedge_wins <- ctx.n_hedge_wins + 1;
                  k res
                end)
          end)
    end

let fence ctx ~t_min k = wait_truetime ctx (t_min + ctx.config.Config.fence_l_us) k

(* ------------------------------------------------------------------ *)
(* Overload & gray-failure controls                                    *)
(* ------------------------------------------------------------------ *)

let stations ctx =
  Array.to_list (Array.map (fun sh -> sh.Shard.station) ctx.shards)

(* Gray failure: every shard whose leader currently serves from [site]
   slows down. The station models the leader's CPU wherever it serves, so
   if failover later moves the leader the slowdown rides along — an
   acceptable approximation while the fault window is short (nemesis
   windows undo with [Slow_clear] before leaders move in a no-crash
   preset). *)
let set_site_slowdown ctx ~site ~factor =
  Array.iter
    (fun sh ->
      if sh.Shard.leader_site = site then
        Sim.Station.set_slowdown sh.Shard.station factor)
    ctx.shards

let clear_slowdowns ctx =
  Array.iter (fun sh -> Sim.Station.set_slowdown sh.Shard.station 1) ctx.shards

let set_admission ctx limits =
  Array.iter (fun sh -> Sim.Station.set_limits sh.Shard.station limits) ctx.shards

let set_drop_expired ctx on = ctx.drop_expired <- on

let set_hedge_us ctx us =
  if us < 0 then invalid_arg "Protocol.set_hedge_us: negative delay";
  ctx.hedge_us <- us

let set_retry_budget ctx budget = ctx.retry_budget <- budget

(* Snapshot reads (Spanner's read-at-timestamp API): a consistent view as of
   a caller-chosen timestamp. Shards block on prepared transactions that
   might still commit at or before [ts], then serve the versioned read. *)
let rec snapshot_read ?view ctx ~client_site ~ts ~keys k =
  let by_shard = group_by_shard ?view ctx keys in
  let pending = ref (List.length by_shard) in
  let acc = ref [] in
  (* Stale route: refresh and re-issue the whole read; [dead] silences the
     old attempt's other shard replies. *)
  let dead = ref false in
  let bounce () =
    if not !dead then begin
      dead := true;
      refresh_view view;
      snapshot_read ?view ctx ~client_site ~ts ~keys k
    end
  in
  List.iter
    (fun (shard_id, shard_keys) ->
      to_shard ctx ~src:client_site shard_id (fun sh ->
          if List.exists (fun key -> not (owns ctx sh key)) shard_keys
          then begin
            ctx.n_redirects <- ctx.n_redirects + 1;
            to_client ctx ~src:sh.Shard.leader_site ~bytes:32 ~dst:client_site
              bounce
          end
          else begin
          Shard.advance_max_write_ts sh ts;
          let blocking = Shard.conflicting_prepared sh ~keys:shard_keys ~max_tp:ts in
          if ctx.failover then
            List.iter
              (fun (p : Shard.prepared) -> resolve_in_doubt ctx sh p.Shard.p_txn)
              blocking;
          let finish () =
            let values =
              List.map
                (fun key ->
                  ( key,
                    Option.map
                      (fun (v : Types.version) -> v.Types.value)
                      (Shard.read_version_at sh ~key ~ts) ))
                shard_keys
            in
            to_client ctx ~src:sh.Shard.leader_site ~dst:client_site (fun () ->
                acc := values @ !acc;
                decr pending;
                if !pending = 0 && not !dead then k !acc)
          in
          (match blocking with
          | [] -> finish ()
          | _ ->
            let waiting = ref (List.length blocking) in
            List.iter
              (fun prepared ->
                Shard.wait_prepared sh prepared (fun _ ->
                    decr waiting;
                    if !waiting = 0 then finish ()))
              blocking)
          end))
    by_shard

(* ------------------------------------------------------------------ *)
(* Live key-range migration (elastic placement)                        *)
(* ------------------------------------------------------------------ *)

(* Shards currently owning keys in [lo, hi), destination excluded; these
   are the sources the driver must fence and drain. Per-key lookup because
   earlier migrations may have fragmented the range across owners. *)
let migration_sources ctx ~lo ~hi ~dst =
  let seen = Hashtbl.create 8 in
  for key = lo to hi - 1 do
    let o = Place.Directory.owner ctx.directory key in
    if o <> dst && not (Hashtbl.mem seen o) then Hashtbl.add seen o ()
  done;
  List.sort compare (Hashtbl.fold (fun o () acc -> o :: acc) seen [])

(* Migrate [lo, hi) to [dst]. The control loop runs co-located with the
   shard leaders it manipulates (fence/drain/cut are direct state pokes, a
   directory-service stand-in like [to_shard]'s leader discovery); the
   snapshot ship is real traffic — durable log forces on both sides, a
   leader-to-leader hop sized by the snapshot, an ack hop back — and is
   what the driver's timeout/retry machinery covers. See Place.Migrate for
   the protocol and the RSS argument. *)
let migrate ?(no_fence = false) ctx ~lo ~hi ~dst k =
  if lo < 0 || hi <= lo then invalid_arg "Protocol.migrate: bad key range";
  if dst < 0 || dst >= Array.length ctx.shards then
    invalid_arg "Protocol.migrate: bad destination shard";
  let dir = ctx.directory in
  let hooks =
    {
      Place.Migrate.h_now = (fun () -> Sim.Engine.now ctx.engine);
      h_sleep =
        (fun us f ->
          Sim.Engine.schedule ~kind:"place.migrate" ctx.engine ~after:(max 1 us) f);
      h_sources = (fun ~lo ~hi ~dst -> migration_sources ctx ~lo ~hi ~dst);
      h_fence = (fun ~src ~lo ~hi -> Shard.set_fence ctx.shards.(src) ~lo ~hi);
      h_fence_ok =
        (fun ~src ~lo ~hi ->
          match ctx.shards.(src).Shard.fence with
          | Some f -> f.Shard.f_lo = lo && f.Shard.f_hi = hi
          | None -> false);
      h_drained =
        (fun ~src ~lo ~hi ->
          let sh = ctx.shards.(src) in
          (not (Locks.any_busy_in sh.Shard.locks ~lo ~hi))
          && not (Shard.prepared_in_range sh ~lo ~hi));
      h_cut =
        (fun ~src ->
          let sh = ctx.shards.(src) in
          let tm =
            max
              (sh.Shard.max_write_ts + 1)
              ((Sim.Truetime.now ctx.tt).Sim.Truetime.latest + 1)
          in
          Shard.advance_max_write_ts sh tm;
          tm);
      h_ship =
        (fun ~src ~lo ~hi ~tm ack ->
          let sh = ctx.shards.(src) in
          let snap =
            Shard.snapshot_range sh ~lo ~hi ~owned:(fun key ->
                Place.Directory.owner dir key = src)
          in
          let n_keys = List.length snap in
          let n_versions =
            List.fold_left (fun acc (_, vs) -> acc + List.length vs) 0 snap
          in
          let bytes = 96 + (24 * n_versions) in
          let driver_site = sh.Shard.leader_site in
          Replication.Group.replicate sh.Shard.repl
            (Types.Rmigrate_out { m_lo = lo; m_hi = hi; m_tm = tm })
            (fun () ->
              to_shard ctx ~src:driver_site ~bytes dst (fun dsh ->
                  ignore (Shard.install_versions dsh snap);
                  Shard.advance_max_write_ts dsh tm;
                  Replication.Group.replicate dsh.Shard.repl
                    (Types.Rmigrate_in
                       { m_lo = lo; m_hi = hi; m_tm = tm; m_versions = snap })
                    (fun () ->
                      to_client ctx ~src:dsh.Shard.leader_site ~bytes:32
                        ~dst:driver_site (fun () -> ack n_keys)))));
      h_barrier = (fun ~tm f -> wait_truetime ctx tm f);
      h_commit =
        (fun ~lo ~hi ~dst ~tm -> Place.Directory.commit dir ~lo ~hi ~owner:dst ~tm);
      h_unfence = (fun ~src -> Shard.clear_fence ctx.shards.(src));
    }
  in
  Place.Migrate.run hooks ~tracer:ctx.tracer ~no_fence ~stats:ctx.place_stats
    ~lo ~hi ~dst k
