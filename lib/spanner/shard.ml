type prepared = {
  p_txn : int;
  p_tp : int;
  mutable p_tee : int;
  p_writes : (int * int) list;
  mutable p_waiters : (Types.outcome -> unit) list;
}

type t = {
  shard_id : int;
  leader_site : int;
  engine : Sim.Engine.t;
  tt : Sim.Truetime.t;
  station : Sim.Station.t;
  repl : Replication.Group.t;
  locks : Locks.t;
  store : (int, Types.version list) Hashtbl.t;
  prepared_tbl : (int, prepared) Hashtbl.t;
  mutable max_write_ts : int;
  mutable n_ro_served : int;
  mutable n_ro_blocked : int;
  wound_prepared_hook : (int -> unit) ref;
}

let create engine net tt txns (config : Config.t) ~shard_id =
  let station =
    Sim.Station.create engine ~service_time_us:config.Config.service_time_us
  in
  let station_opt = if config.Config.service_time_us > 0 then Some station else None in
  let repl =
    Replication.Group.create net ?station:station_opt
      ~leader_site:config.Config.leader_site.(shard_id)
      ~replica_sites:config.Config.replica_sites.(shard_id)
      ()
  in
  let prepared_tbl = Hashtbl.create 64 in
  let wound_prepared_hook = ref (fun (_ : int) -> ()) in
  let locks =
    Locks.create engine
      ~is_prepared:(fun txn -> Hashtbl.mem prepared_tbl txn)
      ~is_wounded:(fun txn -> Types.is_wounded txns txn)
      ~wound:(fun txn -> Types.wound txns txn)
      ~wound_prepared:(fun txn -> !wound_prepared_hook txn)
  in
  {
    shard_id;
    leader_site = config.Config.leader_site.(shard_id);
    engine;
    tt;
    station;
    repl;
    locks;
    store = Hashtbl.create 4096;
    prepared_tbl;
    max_write_ts = 0;
    n_ro_served = 0;
    n_ro_blocked = 0;
    wound_prepared_hook;
  }

let read_version_at t ~key ~ts =
  match Hashtbl.find_opt t.store key with
  | None -> None
  | Some versions -> List.find_opt (fun (v : Types.version) -> v.Types.ts <= ts) versions

let apply_write t ~key ~ts ~writer ~value =
  let versions = try Hashtbl.find t.store key with Not_found -> [] in
  (match versions with
  | { Types.ts = newest; writer = prev; _ } :: _ when newest >= ts ->
    invalid_arg
      (Fmt.str
         "Shard.apply_write: non-monotonic commit ts %d (txn %d) after %d (txn %d) on key %d"
         ts writer newest prev key)
  | _ -> ());
  Hashtbl.replace t.store key ({ Types.ts; writer; value } :: versions)

let advance_max_write_ts t ts = if ts > t.max_write_ts then t.max_write_ts <- ts

let choose_prepare_ts t =
  let tp = t.max_write_ts + 1 in
  t.max_write_ts <- tp;
  tp

let trace_txn = ref (-1)

let add_prepared t p =
  if p.p_txn = !trace_txn then
    Fmt.epr "[shard %d] add_prepared txn %d tp=%d@." t.shard_id p.p_txn p.p_tp;
  Hashtbl.replace t.prepared_tbl p.p_txn p

let prepared t txn = Hashtbl.find_opt t.prepared_tbl txn

let conflicting_prepared t ~keys ~max_tp =
  Hashtbl.fold
    (fun _ p acc ->
      if p.p_tp <= max_tp && List.exists (fun (k, _) -> List.mem k keys) p.p_writes
      then p :: acc
      else acc)
    t.prepared_tbl []

let wait_prepared _t p k = p.p_waiters <- k :: p.p_waiters

let resolve_prepared t ~txn outcome =
  if txn = !trace_txn then
    Fmt.epr "[shard %d] resolve txn %d present=%b outcome=%s@." t.shard_id txn
      (Hashtbl.mem t.prepared_tbl txn)
      (match outcome with Types.Committed tc -> Fmt.str "commit@%d" tc | Types.Aborted -> "abort");
  match Hashtbl.find_opt t.prepared_tbl txn with
  | None -> ()
  | Some p ->
    Hashtbl.remove t.prepared_tbl txn;
    (match outcome with
    | Types.Committed tc ->
      List.iter (fun (key, value) -> apply_write t ~key ~ts:tc ~writer:txn ~value) p.p_writes;
      advance_max_write_ts t tc
    | Types.Aborted -> ());
    let waiters = p.p_waiters in
    p.p_waiters <- [];
    List.iter (fun k -> k outcome) waiters
