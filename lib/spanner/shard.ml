type prepared = {
  p_txn : int;
  p_tp : int;
  mutable p_tee : int;
  p_writes : (int * int) list;
  mutable p_waiters : (Types.outcome -> unit) list;
  p_coord : int;
  p_participants : int list;
}

(* Migration fence: while set, the protocol layer refuses new lock
   acquisitions on keys in [f_lo, f_hi) so the range can drain. Volatile by
   design — a rebuilt leader forgets it, and the migration driver detects
   the loss via its pre-commit fence re-check. *)
type fence = { f_lo : int; f_hi : int; f_since : int }

type t = {
  shard_id : int;
  mutable leader_site : int;
  engine : Sim.Engine.t;
  tt : Sim.Truetime.t;
  txns : Types.table;
  station : Sim.Station.t;
  repl : Types.repl_entry Replication.Group.t;
  mutable locks : Locks.t;
  store : (int, Types.version list) Hashtbl.t;
  prepared_tbl : (int, prepared) Hashtbl.t;
  decided_tbl : (int, Types.outcome * int) Hashtbl.t;  (* outcome, max_tee *)
  in_doubt : (int, unit) Hashtbl.t;  (* status queries in flight *)
  mutable max_write_ts : int;
  mutable fence : fence option;
  mutable n_ro_served : int;
  mutable n_ro_blocked : int;
  mutable n_rebuilds : int;
  wound_prepared_hook : (int -> unit) ref;
}

(* The lock table closes over the prepared table and wound hook, so a
   rebuild can install a fresh one (volatile lock state dies with the old
   leader) without re-wiring the shard. *)
let make_locks engine txns prepared_tbl wound_prepared_hook =
  Locks.create engine
    ~is_prepared:(fun txn -> Hashtbl.mem prepared_tbl txn)
    ~is_wounded:(fun txn -> Types.is_wounded txns txn)
    ~wound:(fun txn -> Types.wound txns txn)
    ~wound_prepared:(fun txn -> !wound_prepared_hook txn)

let create engine net tt txns (config : Config.t) ~shard_id =
  let station =
    Sim.Station.create engine ~service_time_us:config.Config.service_time_us
  in
  let station_opt = if config.Config.service_time_us > 0 then Some station else None in
  let repl =
    Replication.Group.create net ?station:station_opt
      ~leader_site:config.Config.leader_site.(shard_id)
      ~replica_sites:config.Config.replica_sites.(shard_id)
      ()
  in
  let prepared_tbl = Hashtbl.create 64 in
  let wound_prepared_hook = ref (fun (_ : int) -> ()) in
  let locks = make_locks engine txns prepared_tbl wound_prepared_hook in
  {
    shard_id;
    leader_site = config.Config.leader_site.(shard_id);
    engine;
    tt;
    txns;
    station;
    repl;
    locks;
    store = Hashtbl.create 4096;
    prepared_tbl;
    decided_tbl = Hashtbl.create 64;
    in_doubt = Hashtbl.create 8;
    max_write_ts = 0;
    fence = None;
    n_ro_served = 0;
    n_ro_blocked = 0;
    n_rebuilds = 0;
    wound_prepared_hook;
  }

let read_version_at t ~key ~ts =
  match Hashtbl.find_opt t.store key with
  | None -> None
  | Some versions -> List.find_opt (fun (v : Types.version) -> v.Types.ts <= ts) versions

let apply_write t ~key ~ts ~writer ~value =
  let versions = try Hashtbl.find t.store key with Not_found -> [] in
  (match versions with
  | { Types.ts = newest; writer = prev; _ } :: _ when newest >= ts ->
    invalid_arg
      (Fmt.str
         "Shard.apply_write: non-monotonic commit ts %d (txn %d) after %d (txn %d) on key %d"
         ts writer newest prev key)
  | _ -> ());
  Hashtbl.replace t.store key ({ Types.ts; writer; value } :: versions)

let advance_max_write_ts t ts = if ts > t.max_write_ts then t.max_write_ts <- ts

let choose_prepare_ts t =
  let tp = t.max_write_ts + 1 in
  t.max_write_ts <- tp;
  tp

let trace_txn = ref (-1)

let add_prepared t p =
  if p.p_txn = !trace_txn then
    Fmt.epr "[shard %d] add_prepared txn %d tp=%d@." t.shard_id p.p_txn p.p_tp;
  Hashtbl.replace t.prepared_tbl p.p_txn p

let prepared t txn = Hashtbl.find_opt t.prepared_tbl txn

let conflicting_prepared t ~keys ~max_tp =
  Hashtbl.fold
    (fun _ p acc ->
      if p.p_tp <= max_tp && List.exists (fun (k, _) -> List.mem k keys) p.p_writes
      then p :: acc
      else acc)
    t.prepared_tbl []

let wait_prepared _t p k = p.p_waiters <- k :: p.p_waiters

let resolve_prepared t ~txn outcome =
  if txn = !trace_txn then
    Fmt.epr "[shard %d] resolve txn %d present=%b outcome=%s@." t.shard_id txn
      (Hashtbl.mem t.prepared_tbl txn)
      (match outcome with Types.Committed tc -> Fmt.str "commit@%d" tc | Types.Aborted -> "abort");
  match Hashtbl.find_opt t.prepared_tbl txn with
  | None -> ()
  | Some p ->
    Hashtbl.remove t.prepared_tbl txn;
    (match outcome with
    | Types.Committed tc ->
      List.iter (fun (key, value) -> apply_write t ~key ~ts:tc ~writer:txn ~value) p.p_writes;
      advance_max_write_ts t tc
    | Types.Aborted -> ());
    let waiters = p.p_waiters in
    p.p_waiters <- [];
    List.iter (fun k -> k outcome) waiters

(* ------------------------------------------------------------------ *)
(* Placement: fence / snapshot / install                              *)
(* ------------------------------------------------------------------ *)

let set_fence t ~lo ~hi =
  t.fence <- Some { f_lo = lo; f_hi = hi; f_since = Sim.Engine.now t.engine }

let clear_fence t = t.fence <- None

let fenced t key =
  match t.fence with None -> false | Some f -> key >= f.f_lo && key < f.f_hi

let prepared_in_range t ~lo ~hi =
  Hashtbl.fold
    (fun _ p acc ->
      acc || List.exists (fun (k, _) -> k >= lo && k < hi) p.p_writes)
    t.prepared_tbl false

let snapshot_range t ~lo ~hi ~owned =
  Hashtbl.fold
    (fun key versions acc ->
      if key >= lo && key < hi && owned key then (key, versions) :: acc else acc)
    t.store []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Merge shipped versions into the store by timestamp (both lists are
   newest-first). Bypasses [apply_write]'s monotonicity check on purpose:
   installation back-fills history below t_m, and a retried ship may
   deliver the same versions twice — the merge makes that a no-op. *)
let install_versions t entries =
  let rec merge a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | (x : Types.version) :: xs, y :: ys ->
      if x.Types.ts > y.Types.ts then x :: merge xs (y :: ys)
      else if x.Types.ts < y.Types.ts then y :: merge (x :: xs) ys
      else x :: merge xs ys
  in
  List.iter
    (fun (key, versions) ->
      let existing = try Hashtbl.find t.store key with Not_found -> [] in
      Hashtbl.replace t.store key (merge existing versions))
    entries;
  List.length entries

let decided t txn = Hashtbl.find_opt t.decided_tbl txn

let set_decided t ~txn outcome ~max_tee =
  Hashtbl.replace t.decided_tbl txn (outcome, max_tee)

(* New leader: replace every volatile structure with what the replicated
   log supports. Prepares with a logged outcome resolve; the rest are the
   in-doubt set the protocol layer must settle with their coordinators.
   Write locks of surviving prepares are re-acquired (they are exclusive by
   construction, so every grant is immediate); read locks and lock waiters
   die with the old leader — coordinators void any attempt whose read or
   vote views no longer match at decision time, covering the reads those
   locks protected from the moment they were served. *)
let rebuild t ~entries =
  t.n_rebuilds <- t.n_rebuilds + 1;
  Hashtbl.reset t.prepared_tbl;
  Hashtbl.reset t.store;
  Hashtbl.reset t.decided_tbl;
  Hashtbl.reset t.in_doubt;
  t.max_write_ts <- 0;
  t.fence <- None;
  t.locks <- make_locks t.engine t.txns t.prepared_tbl t.wound_prepared_hook;
  List.iter
    (function
      | Types.Rprepare r ->
        if not (Hashtbl.mem t.decided_tbl r.r_txn) then
          add_prepared t
            {
              p_txn = r.r_txn;
              p_tp = r.r_tp;
              p_tee = r.r_tee;
              p_writes = r.r_writes;
              p_waiters = [];
              p_coord = r.r_coord;
              p_participants = r.r_participants;
            };
        advance_max_write_ts t r.r_tp
      | Types.Routcome r ->
        if not (Hashtbl.mem t.decided_tbl r.r_txn) then begin
          Hashtbl.replace t.decided_tbl r.r_txn (r.r_out, r.r_max_tee);
          Hashtbl.remove t.prepared_tbl r.r_txn;
          match r.r_out with
          | Types.Committed tc ->
            List.iter
              (fun (key, value) -> apply_write t ~key ~ts:tc ~writer:r.r_txn ~value)
              r.r_writes;
            advance_max_write_ts t tc
          | Types.Aborted -> ()
        end
      | Types.Rmigrate_out m -> advance_max_write_ts t m.m_tm
      | Types.Rmigrate_in m ->
        ignore (install_versions t m.m_versions);
        advance_max_write_ts t m.m_tm)
    entries;
  let survivors =
    List.sort compare (Hashtbl.fold (fun txn _ acc -> txn :: acc) t.prepared_tbl [])
  in
  List.iter
    (fun txn ->
      let p = Hashtbl.find t.prepared_tbl txn in
      let priority = (Types.find t.txns txn).Types.priority in
      List.iter
        (fun (key, _) ->
          Locks.acquire_write t.locks ~key ~txn ~priority (fun _ -> ()))
        p.p_writes)
    survivors
