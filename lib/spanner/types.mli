(** Shared Spanner types: transaction metadata, versions, 2PC outcomes. *)

type outcome = Committed of int  (** commit timestamp *) | Aborted

type version = { ts : int; writer : int; value : int }
(** One multi-version store entry; [writer] is the transaction id, which is
    also the (per-key unique) stored value used for history checking. *)

(** What a shard leader writes to its replicated log. [Rprepare] makes a
    2PC participant's promise durable; [Routcome] makes a decision durable
    (forced before any side effect of the decision). A new leader rebuilds
    its multi-version store and prepared-transaction table by replaying
    these in order; prepares with no logged outcome are the in-doubt set. *)
type repl_entry =
  | Rprepare of {
      r_txn : int;
      r_tp : int;  (** prepare timestamp *)
      r_tee : int;  (** earliest client end estimate *)
      r_writes : (int * int) list;
      r_coord : int;  (** coordinator shard id *)
      r_participants : int list;  (** meaningful in the coordinator's log *)
    }
  | Routcome of {
      r_txn : int;
      r_out : outcome;
      r_writes : (int * int) list;  (** this shard's writes, applied on commit *)
      r_max_tee : int;
    }
  | Rmigrate_out of { m_lo : int; m_hi : int; m_tm : int }
      (** placement epoch bump at the source: pins its write watermark at
          the migration timestamp across rebuilds *)
  | Rmigrate_in of {
      m_lo : int;
      m_hi : int;
      m_tm : int;
      m_versions : (int * version list) list;
    }
      (** placement epoch bump at the destination, carrying the shipped
          snapshot; replay re-installs it (idempotent merge by ts) *)

type meta = {
  id : int;
  proc : int;
  priority : int * int;  (** (first-attempt start time, first txn id) *)
  mutable wounded : bool;
  mutable outcome : outcome option;
}

type table
(** Global (cluster-wide) transaction metadata table — stands in for the
    client-driven abort/wound notifications of the real system. *)

val table_create : unit -> table

val tiebreak : table -> int
(** A run-unique integer. Wound-wait priorities are (start time, tiebreak):
    two transactions must never compare equal, or neither can wound the
    other and a mutual wait deadlocks — reachable when sessions share a
    client, so the tiebreak cannot be the process id. *)

val fresh : table -> proc:int -> priority:int * int -> meta
val find : table -> int -> meta
val wound : table -> int -> unit
val is_wounded : table -> int -> bool
val wounds : table -> int
