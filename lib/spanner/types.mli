(** Shared Spanner types: transaction metadata, versions, 2PC outcomes. *)

type outcome = Committed of int  (** commit timestamp *) | Aborted

type version = { ts : int; writer : int; value : int }
(** One multi-version store entry; [writer] is the transaction id, which is
    also the (per-key unique) stored value used for history checking. *)

type meta = {
  id : int;
  proc : int;
  priority : int * int;  (** (first-attempt start time, first txn id) *)
  mutable wounded : bool;
  mutable outcome : outcome option;
}

type table
(** Global (cluster-wide) transaction metadata table — stands in for the
    client-driven abort/wound notifications of the real system. *)

val table_create : unit -> table

val tiebreak : table -> int
(** A run-unique integer. Wound-wait priorities are (start time, tiebreak):
    two transactions must never compare equal, or neither can wound the
    other and a mutual wait deadlocks — reachable when sessions share a
    client, so the tiebreak cannot be the process id. *)

val fresh : table -> proc:int -> priority:int * int -> meta
val find : table -> int -> meta
val wound : table -> int -> unit
val is_wounded : table -> int -> bool
val wounds : table -> int
