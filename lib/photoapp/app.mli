(** The paper's motivating photo-sharing application (§2.2, Table 1), built
    against an abstract transactional store so the same application code runs
    over strict-serializable Spanner, Spanner-RSS, and the PO-serializable
    store — measuring which invariants hold and which anomalies occur.

    Data model: per user, ["album:<u>"] holds the number of photos and
    ["photo:<u>:<i>"] the i-th photo's data. Adding a photo writes both in
    one read-write transaction, then enqueues a processing request.

    - I1: a reader that sees [album = n] finds non-nil data for photos 1..n.
    - I2: a worker that dequeues photo i finds its data.
    - A2: Alice finishes adding a photo, calls Bob out of band; Bob's read
      misses it.
    - A3: Alice merely {e observes} a photo someone else is adding, calls
      Bob; Bob's read misses it (allowed "temporarily" under RSS/RSC).

    Causality across the queue and phone calls is configurable: none, the
    libRSS real-time fence before switching services, or §4.2's context
    propagation. *)

type causality = No_causality | Fence_on_switch | Context_propagation

(** Abstract store session: the application is store-agnostic. [capture] /
    [absorb] move the store's causal metadata across processes. *)
type session = {
  s_rw :
    reads:string list -> writes:(string * int) list ->
    ((string * int option) list -> unit) -> unit;
  s_ro : keys:string list -> ((string * int option) list -> unit) -> unit;
  s_fence : (unit -> unit) -> unit;
  s_capture : unit -> int;  (** opaque causal token (0 = none) *)
  s_absorb : int -> unit;
}

type store = { store_name : string; new_session : unit -> session }

(** {2 Store adapters} *)

val spanner_store : Spanner.Cluster.t -> store
(** Works for both modes; fences are Spanner-RSS's §5.1 fences (no-ops would
    also be sound for strict mode, but we keep the real implementation). The
    causal token is the session's t_min. *)

val po_store : Postore.Store.t -> store
(** No causal metadata — [capture] always returns 0. *)

(** {2 Scenario driver} *)

type tally = {
  mutable adds : int;
  mutable i1_checks : int;
  mutable i1_violations : int;
  mutable i2_checks : int;
  mutable i2_violations : int;
  mutable a2_trials : int;
  mutable a2_anomalies : int;
  mutable a3_trials : int;
  mutable a3_anomalies : int;
  mutable a3_window_us : int;
      (** summed A3 window durations (onset to a retrying reader's success) *)
}

val run_scenarios :
  Sim.Engine.t -> rng:Sim.Rng.t -> store:store -> causality:causality ->
  users:int -> rounds:int -> queue_rtt_us:int -> call_latency_us:int -> tally
(** Schedules [rounds] rounds of interleaved add-photo / observe-and-call /
    worker activity for [users] users; run the engine to completion, then
    read the tally. *)
