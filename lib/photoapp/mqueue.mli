(** The photo-sharing application's second service (§2.2): a linearizable
    FIFO message queue used to hand work to asynchronous workers.

    A centralized queue server with round-trip latency; payloads carry an
    opaque causal context (§4.2's context-propagation metadata). Being
    linearizable, its real-time fence is a no-op — composition with an RSS
    store only requires fencing on the {e store} side (§4.1). *)

type 'ctx t

val create : Sim.Engine.t -> rtt_us:int -> 'ctx t

val enqueue : 'ctx t -> payload:int -> ctx:'ctx -> (unit -> unit) -> unit

val dequeue : 'ctx t -> ((int * 'ctx) option -> unit) -> unit
(** [None] when empty at the time the request reaches the server. *)

val length : 'ctx t -> int
