type causality = No_causality | Fence_on_switch | Context_propagation

type session = {
  s_rw :
    reads:string list -> writes:(string * int) list ->
    ((string * int option) list -> unit) -> unit;
  s_ro : keys:string list -> ((string * int option) list -> unit) -> unit;
  s_fence : (unit -> unit) -> unit;
  s_capture : unit -> int;
  s_absorb : int -> unit;
}

type store = { store_name : string; new_session : unit -> session }

(* ------------------------------------------------------------------ *)
(* Store adapters                                                      *)
(* ------------------------------------------------------------------ *)

let spanner_store cluster =
  let keymap : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let next_key = ref 0 in
  let key_id k =
    match Hashtbl.find_opt keymap k with
    | Some i -> i
    | None ->
      let i = !next_key in
      incr next_key;
      Hashtbl.add keymap k i;
      i
  in
  let n_sites = Array.length (Spanner.Cluster.config cluster).Spanner.Config.client_sites in
  let next_site = ref 0 in
  let name =
    match (Spanner.Cluster.config cluster).Spanner.Config.mode with
    | Spanner.Config.Strict -> "spanner-strict"
    | Spanner.Config.Rss -> "spanner-rss"
  in
  let new_session () =
    let site = (Spanner.Cluster.config cluster).Spanner.Config.client_sites.(!next_site mod n_sites) in
    incr next_site;
    let c = Spanner.Client.create cluster ~site in
    {
      s_rw =
        (fun ~reads ~writes k ->
          let read_keys = List.map key_id reads in
          let writes = List.map (fun (key, v) -> (key_id key, v)) writes in
          Spanner.Client.rw_kv c ~read_keys ~writes (fun res ->
              let back = Hashtbl.create 4 in
              List.iter (fun key -> Hashtbl.replace back (key_id key) key) reads;
              k
                (List.map
                   (fun (ki, v) -> (Hashtbl.find back ki, v))
                   res.Spanner.Protocol.rw_reads)));
      s_ro =
        (fun ~keys k ->
          let kids = List.map key_id keys in
          Spanner.Client.ro c ~keys:kids (fun res ->
              let back = Hashtbl.create 4 in
              List.iter (fun key -> Hashtbl.replace back (key_id key) key) keys;
              k
                (List.map
                   (fun (ki, v) -> (Hashtbl.find back ki, v))
                   res.Spanner.Protocol.ro_reads)));
      s_fence = (fun k -> Spanner.Client.fence c k);
      s_capture = (fun () -> Spanner.Client.t_min c);
      s_absorb = (fun t_min -> Spanner.Client.absorb_t_min c t_min);
    }
  in
  { store_name = name; new_session }

let po_store store =
  let new_session () =
    let s = Postore.Store.session store in
    {
      s_rw = (fun ~reads ~writes k -> Postore.Store.rw s ~reads ~writes k);
      s_ro = (fun ~keys k -> Postore.Store.ro s ~keys k);
      s_fence = (fun k -> k ());  (* PO stores have no fence to offer *)
      s_capture = (fun () -> 0);
      s_absorb = (fun _ -> ());
    }
  in
  { store_name = "po-serializable"; new_session }

(* ------------------------------------------------------------------ *)
(* Application logic                                                   *)
(* ------------------------------------------------------------------ *)

type tally = {
  mutable adds : int;
  mutable i1_checks : int;
  mutable i1_violations : int;
  mutable i2_checks : int;
  mutable i2_violations : int;
  mutable a2_trials : int;
  mutable a2_anomalies : int;
  mutable a3_trials : int;
  mutable a3_anomalies : int;
  mutable a3_window_us : int;
      (** summed duration of observed A3 windows (anomaly onset until a
          retrying reader sees the photo) — the paper's "temporarily" *)
}

let album u = Fmt.str "album:%d" u

let photo u i = Fmt.str "photo:%d:%d" u i

(* Unique non-nil photo payloads; album values are photo counts, which the
   store requires to be unique per key — counts only grow, so they are. *)
let photo_payload u i = 7_000_000 + (u * 1_000) + i

(* Add photo #i for user u in one transaction, then enqueue processing. *)
let add_photo session queue ~causality ~user ~index k =
  session.s_rw
    ~reads:[ album user ]
    ~writes:[ (photo user index, photo_payload user index); (album user, index) ]
    (fun _ ->
      let enqueue () =
        let ctx =
          match causality with
          | Context_propagation -> session.s_capture ()
          | No_causality | Fence_on_switch -> 0
        in
        Mqueue.enqueue queue ~payload:(user * 1_000_000 + index) ~ctx k
      in
      match causality with
      | Fence_on_switch -> session.s_fence enqueue
      | No_causality | Context_propagation -> enqueue ())

(* Worker: dequeue one request and verify I2 (the photo must exist). *)
let worker_step session queue ~causality tally k =
  Mqueue.dequeue queue (fun item ->
      match item with
      | None -> k ()
      | Some (payload, ctx) ->
        let user = payload / 1_000_000 and index = payload mod 1_000_000 in
        (match causality with
        | Context_propagation -> session.s_absorb ctx
        | No_causality | Fence_on_switch -> ());
        session.s_ro ~keys:[ photo user index ] (fun values ->
            tally.i2_checks <- tally.i2_checks + 1;
            (match values with
            | [ (_, None) ] -> tally.i2_violations <- tally.i2_violations + 1
            | _ -> ());
            k ()))

(* Reader: list a user's album and fetch every referenced photo; I1 demands
   all of them exist. *)
let check_album session ~user tally k =
  session.s_ro ~keys:[ album user ] (fun values ->
      match values with
      | [ (_, None) ] | [] -> k ()
      | [ (_, Some n) ] ->
        let keys = List.init n (fun i -> photo user (i + 1)) in
        if keys = [] then k ()
        else
          session.s_ro ~keys (fun photos ->
              tally.i1_checks <- tally.i1_checks + 1;
              if List.exists (fun (_, v) -> v = None) photos then
                tally.i1_violations <- tally.i1_violations + 1;
              k ())
      | _ :: _ :: _ -> k ())

(* A2: Alice adds a photo, then calls Bob (out-of-band, after completion);
   Bob reads the album and must see it. *)
let a2_trial engine store queue ~causality ~call_latency_us ~user ~index tally k =
  let alice = store.new_session () in
  let bob = store.new_session () in
  add_photo alice queue ~causality ~user ~index (fun () ->
      Sim.Engine.schedule engine ~after:call_latency_us (fun () ->
          (* A phone call carries no store metadata in any configuration —
             the point of A2 is that completion alone must suffice. *)
          bob.s_ro ~keys:[ album user ] (fun values ->
              tally.a2_trials <- tally.a2_trials + 1;
              (match values with
              | [ (_, v) ] when v = Some index || (match v with Some n -> n > index | None -> false) -> ()
              | _ -> tally.a2_anomalies <- tally.a2_anomalies + 1);
              k ())))

(* A3: Charlie starts adding a photo; Alice polls the album until she
   observes the new entry, then calls Bob, who fetches the photo itself.
   The album and photo live on different shards: the commit may be applied
   at the album's shard (where Alice read) before the photo's — strict
   serializability forces Bob's read to wait it out; RSS lets Bob briefly
   return nothing. *)
let a3_trial engine store queue ~causality ~call_latency_us ~user ~index tally k =
  let charlie = store.new_session () in
  let alice = store.new_session () in
  let bob = store.new_session () in
  let charlie_done = ref false in
  add_photo charlie queue ~causality ~user ~index (fun () -> charlie_done := true);
  let rec alice_poll patience =
    alice.s_ro ~keys:[ album user ] (fun values ->
        let seen = match values with [ (_, Some n) ] -> n >= index | _ -> false in
        if seen then begin
          Sim.Engine.schedule engine ~after:call_latency_us (fun () ->
              let anomaly_onset = Sim.Engine.now engine in
              let rec bob_read first =
                bob.s_ro ~keys:[ photo user index ] (fun bvalues ->
                    let bob_sees =
                      match bvalues with [ (_, Some _) ] -> true | _ -> false
                    in
                    if first then begin
                      tally.a3_trials <- tally.a3_trials + 1;
                      if not bob_sees then
                        tally.a3_anomalies <- tally.a3_anomalies + 1
                    end;
                    if bob_sees then begin
                      if not first then
                        (* window: anomaly onset until Bob's retries see it *)
                        tally.a3_window_us <-
                          tally.a3_window_us
                          + (Sim.Engine.now engine - anomaly_onset);
                      k ()
                    end
                    else bob_read false)
              in
              bob_read true)
        end
        else if not !charlie_done then alice_poll patience
        else if patience > 0 then
          (* Keep refreshing for a while after the add completed (a real user
             reloading the page); bounded so runs terminate. *)
          alice_poll (patience - 1)
        else k ())
  in
  alice_poll 25

let run_scenarios engine ~rng ~store ~causality ~users ~rounds ~queue_rtt_us
    ~call_latency_us =
  let tally =
    {
      adds = 0;
      i1_checks = 0;
      i1_violations = 0;
      i2_checks = 0;
      i2_violations = 0;
      a2_trials = 0;
      a2_anomalies = 0;
      a3_trials = 0;
      a3_anomalies = 0;
      a3_window_us = 0;
    }
  in
  let queue = Mqueue.create engine ~rtt_us:queue_rtt_us in
  let worker_session = store.new_session () in
  (* Per-user photo counters; all regular adds for a user go through one
     uploader session so album counts stay sequential. The A2/A3 trials get
     a fresh user each — concurrent adds to one user would make the album
     counter non-monotone (an application race, not a consistency anomaly)
     and corrupt the detectors. *)
  let uploader = Array.init users (fun _ -> store.new_session ()) in
  let reader = Array.init users (fun _ -> store.new_session ()) in
  let photo_count = Array.make users 0 in
  let next_trial_user = ref users in
  for round = 1 to rounds do
    let user = Sim.Rng.int rng users in
    let jitter = Sim.Rng.int rng 50_000 in
    let at = (round * 120_000) + jitter in
    Sim.Engine.schedule engine ~after:at (fun () ->
        match Sim.Rng.int rng 4 with
        | 0 ->
          photo_count.(user) <- photo_count.(user) + 1;
          tally.adds <- tally.adds + 1;
          add_photo uploader.(user) queue ~causality ~user
            ~index:photo_count.(user) (fun () -> ())
        | 1 -> check_album reader.(user) ~user tally (fun () -> ())
        | 2 ->
          let user = !next_trial_user in
          incr next_trial_user;
          tally.adds <- tally.adds + 1;
          a2_trial engine store queue ~causality ~call_latency_us ~user ~index:1
            tally (fun () -> ())
        | _ ->
          let user = !next_trial_user in
          incr next_trial_user;
          tally.adds <- tally.adds + 1;
          a3_trial engine store queue ~causality ~call_latency_us ~user ~index:1
            tally (fun () -> ()));
    (* Interleave worker activity. *)
    Sim.Engine.schedule engine ~after:(at + 60_000) (fun () ->
        worker_step worker_session queue ~causality tally (fun () -> ()))
  done;
  (* Drain the queue at the end. *)
  Sim.Engine.schedule engine ~after:((rounds + 2) * 120_000) (fun () ->
      let rec drain () =
        worker_step worker_session queue ~causality tally (fun () ->
            if Mqueue.length queue > 0 then drain ())
      in
      drain ());
  tally
