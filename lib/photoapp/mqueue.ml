type 'ctx t = { engine : Sim.Engine.t; rtt_us : int; items : (int * 'ctx) Queue.t }

let create engine ~rtt_us = { engine; rtt_us; items = Queue.create () }

let enqueue t ~payload ~ctx k =
  Sim.Engine.schedule t.engine ~after:(t.rtt_us / 2) (fun () ->
      Queue.push (payload, ctx) t.items;
      Sim.Engine.schedule t.engine ~after:(t.rtt_us / 2) k)

let dequeue t k =
  Sim.Engine.schedule t.engine ~after:(t.rtt_us / 2) (fun () ->
      let item = if Queue.is_empty t.items then None else Some (Queue.pop t.items) in
      Sim.Engine.schedule t.engine ~after:(t.rtt_us / 2) (fun () -> k item))

let length t = Queue.length t.items
