type kind =
  | Client_op
  | Phase
  | Net_hop
  | Rpc
  | View_change
  | Fault
  | Mark
  | Migration
  | Repair
  | Search

let kind_name = function
  | Client_op -> "client"
  | Phase -> "phase"
  | Net_hop -> "net"
  | Rpc -> "rpc"
  | View_change -> "view_change"
  | Fault -> "fault"
  | Mark -> "mark"
  | Migration -> "migration"
  | Repair -> "repair"
  | Search -> "search"

let kind_tag = function
  | Client_op -> 0
  | Phase -> 1
  | Net_hop -> 2
  | Rpc -> 3
  | View_change -> 4
  | Fault -> 5
  | Mark -> 6
  | Migration -> 7
  | Repair -> 8
  | Search -> 9

let kind_of_tag = function
  | 0 -> Some Client_op
  | 1 -> Some Phase
  | 2 -> Some Net_hop
  | 3 -> Some Rpc
  | 4 -> Some View_change
  | 5 -> Some Fault
  | 6 -> Some Mark
  | 7 -> Some Migration
  | 8 -> Some Repair
  | 9 -> Some Search
  | _ -> None

type span = int

let none = 0

(* One flat struct-of-arrays-ish record per span; ids are [index + 1] so
   that 0 can mean "no span" without an option allocation. *)
type cell = {
  c_parent : int;
  c_kind : kind;
  c_name : string;
  c_site : int;
  c_start : int;
  mutable c_end : int;
  c_instant : bool;
}

type t = {
  live : bool;
  mutable cells : cell array;
  mutable len : int;
  mutable cur : span;
}

let dummy_cell =
  {
    c_parent = 0;
    c_kind = Mark;
    c_name = "";
    c_site = -1;
    c_start = 0;
    c_end = 0;
    c_instant = true;
  }

let disabled = { live = false; cells = [||]; len = 0; cur = none }
let create () = { live = true; cells = Array.make 256 dummy_cell; len = 0; cur = none }
let enabled t = t.live

let push t cell =
  let n = Array.length t.cells in
  if t.len = n then begin
    let bigger = Array.make (max 256 (2 * n)) dummy_cell in
    Array.blit t.cells 0 bigger 0 n;
    t.cells <- bigger
  end;
  t.cells.(t.len) <- cell;
  t.len <- t.len + 1;
  t.len (* id *)

let begin_span ?parent ?(site = -1) t ~kind ~name ~ts =
  if not t.live then none
  else
    let parent = match parent with Some p -> p | None -> t.cur in
    push t
      {
        c_parent = parent;
        c_kind = kind;
        c_name = name;
        c_site = site;
        c_start = ts;
        c_end = -1;
        c_instant = false;
      }

let end_span t span ~ts =
  if t.live && span > 0 && span <= t.len then begin
    let c = t.cells.(span - 1) in
    if c.c_end < 0 then c.c_end <- ts
  end

let instant ?parent ?(site = -1) ?(kind = Mark) t ~name ~ts =
  if t.live then begin
    let parent = match parent with Some p -> p | None -> t.cur in
    ignore
      (push t
         {
           c_parent = parent;
           c_kind = kind;
           c_name = name;
           c_site = site;
           c_start = ts;
           c_end = ts;
           c_instant = true;
         })
  end

let current t = t.cur

let with_current t sp f =
  if not t.live then f ()
  else begin
    let prev = t.cur in
    t.cur <- sp;
    match f () with
    | v ->
      t.cur <- prev;
      v
    | exception e ->
      t.cur <- prev;
      raise e
  end

type info = {
  id : int;
  parent : int;
  kind : kind;
  name : string;
  site : int;
  start_ts : int;
  end_ts : int;
  is_instant : bool;
}

let info_of_cell i c =
  {
    id = i + 1;
    parent = c.c_parent;
    kind = c.c_kind;
    name = c.c_name;
    site = c.c_site;
    start_ts = c.c_start;
    end_ts = c.c_end;
    is_instant = c.c_instant;
  }

let n_spans t = t.len
let spans t = Array.init t.len (fun i -> info_of_cell i t.cells.(i))

let iter t f =
  for i = 0 to t.len - 1 do
    f (info_of_cell i t.cells.(i))
  done

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                          *)
(* ------------------------------------------------------------------ *)

let escape_into buf s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let to_chrome_json t =
  let buf = Buffer.create (256 + (96 * t.len)) in
  Buffer.add_string buf "[";
  let first = ref true in
  for i = 0 to t.len - 1 do
    let c = t.cells.(i) in
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf "{\"name\":\"";
    escape_into buf c.c_name;
    Buffer.add_string buf "\",\"cat\":\"";
    Buffer.add_string buf (kind_name c.c_kind);
    Buffer.add_string buf "\",\"ph\":\"";
    if c.c_instant then begin
      Buffer.add_string buf "i\",\"s\":\"t";
      Buffer.add_string buf "\",\"ts\":";
      Buffer.add_string buf (string_of_int c.c_start)
    end
    else begin
      Buffer.add_string buf "X\",\"ts\":";
      Buffer.add_string buf (string_of_int c.c_start);
      Buffer.add_string buf ",\"dur\":";
      let dur = if c.c_end < 0 then 0 else c.c_end - c.c_start in
      Buffer.add_string buf (string_of_int dur)
    end;
    Buffer.add_string buf ",\"pid\":0,\"tid\":";
    Buffer.add_string buf (string_of_int (if c.c_site < 0 then 0 else c.c_site));
    Buffer.add_string buf ",\"args\":{\"span\":";
    Buffer.add_string buf (string_of_int (i + 1));
    Buffer.add_string buf ",\"parent\":";
    Buffer.add_string buf (string_of_int c.c_parent);
    Buffer.add_string buf "}}"
  done;
  Buffer.add_string buf "]\n";
  Buffer.contents buf

let save_chrome t ~path =
  let oc = open_out path in
  output_string oc (to_chrome_json t);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Compact binary log: magic, varint span count, then per span         *)
(* varint parent / kind byte / varint site+1 / instant byte /          *)
(* varint start / varint end+1 / varint |name| / name bytes.           *)
(* ------------------------------------------------------------------ *)

let magic = "OBSB1"

let add_varint buf n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let save_binary t ~path =
  let buf = Buffer.create (64 + (24 * t.len)) in
  Buffer.add_string buf magic;
  add_varint buf t.len;
  for i = 0 to t.len - 1 do
    let c = t.cells.(i) in
    add_varint buf c.c_parent;
    Buffer.add_char buf (Char.chr (kind_tag c.c_kind));
    add_varint buf (c.c_site + 1);
    Buffer.add_char buf (if c.c_instant then '\001' else '\000');
    add_varint buf c.c_start;
    add_varint buf (c.c_end + 1);
    add_varint buf (String.length c.c_name);
    Buffer.add_string buf c.c_name
  done;
  let oc = open_out_bin path in
  Buffer.output_buffer oc buf;
  close_out oc

exception Corrupt of string

let load_binary ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        let data = really_input_string ic len in
        let pos = ref 0 in
        let byte () =
          if !pos >= len then raise (Corrupt "truncated");
          let b = Char.code data.[!pos] in
          incr pos;
          b
        in
        let varint () =
          let v = ref 0 and shift = ref 0 and continue = ref true in
          while !continue do
            let b = byte () in
            v := !v lor ((b land 0x7f) lsl !shift);
            shift := !shift + 7;
            if b land 0x80 = 0 then continue := false
            else if !shift > 62 then raise (Corrupt "varint overflow")
          done;
          !v
        in
        if len < String.length magic || String.sub data 0 (String.length magic) <> magic
        then raise (Corrupt "bad magic");
        pos := String.length magic;
        let n = varint () in
        Array.init n (fun i ->
            let parent = varint () in
            let kind =
              match kind_of_tag (byte ()) with
              | Some k -> k
              | None -> raise (Corrupt "bad kind tag")
            in
            let site = varint () - 1 in
            let is_instant = byte () <> 0 in
            let start_ts = varint () in
            let end_ts = varint () - 1 in
            let name_len = varint () in
            if !pos + name_len > len then raise (Corrupt "truncated name");
            let name = String.sub data !pos name_len in
            pos := !pos + name_len;
            { id = i + 1; parent; kind; name; site; start_ts; end_ts; is_instant }))
  with
  | arr -> Ok arr
  | exception Corrupt m -> Error m
  | exception Sys_error m -> Error m
