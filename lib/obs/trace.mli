(** Structured span tracer for the deterministic simulator.

    A tracer is a passive sink: instrumentation sites in [Sim], the
    protocol implementations and the harness record spans into it, but
    recording never draws randomness, never schedules events and never
    reads the wall clock — timestamps are supplied by the caller from
    [Sim.Engine.now].  A run with tracing enabled therefore executes the
    exact same schedule as one without, and two runs with the same seed
    produce the same span ids in the same order.

    When the shared [disabled] sink is installed every entry point is a
    single-bool-check no-op, so instrumented hot paths stay
    allocation-free and seeded runs stay byte-identical to an
    uninstrumented build. *)

type kind =
  | Client_op  (** a client-visible operation: RO/RW txn, read/write/rmw *)
  | Phase  (** a protocol phase: 2PC prepare/commit, Gryff read round *)
  | Net_hop  (** one message in flight on a directed site link *)
  | Rpc  (** a [Sim.Rpc] call, parent of its retransmitted attempts *)
  | View_change  (** replication-group election, detection to StartView *)
  | Fault  (** a chaos fault injection marker *)
  | Mark  (** generic instant annotation *)
  | Migration  (** a placement change: key-range fence/ship/epoch commit *)
  | Repair
      (** a durable-storage integrity event: scrub flag, quarantine,
          torn-tail truncation, peer state-transfer repair *)
  | Search
      (** one schedule-explorer execution: an [Explore.Search] trial run
          of the simulator under a candidate input (appended last so the
          OBSB1 binary tags of earlier kinds are unchanged) *)

val kind_name : kind -> string

(** Span handle. [none] (= 0) is the absent span; real ids start at 1
    and are assigned sequentially, so they are deterministic. *)
type span = int

val none : span

type t

val disabled : t
(** Shared inert sink: [enabled disabled = false], every operation on it
    is a no-op returning [none]. *)

val create : unit -> t
(** A live sink that records spans. *)

val enabled : t -> bool

(** {1 Recording} *)

val begin_span :
  ?parent:span -> ?site:int -> t -> kind:kind -> name:string -> ts:int -> span
(** Open a span at simulated time [ts] (µs).  If [parent] is omitted the
    ambient {!current} span is used.  [site] tags the span with a
    site/process id (rendered as the Chrome trace [tid]); [-1]/omitted
    means "no site". Returns [none] on a disabled sink. *)

val end_span : t -> span -> ts:int -> unit
(** Close a span.  No-op for [none] or a disabled sink.  Spans still
    open at export time are rendered with zero duration. *)

val instant :
  ?parent:span -> ?site:int -> ?kind:kind -> t -> name:string -> ts:int -> unit
(** Record a zero-duration marker ([kind] defaults to [Mark]). *)

(** {1 Ambient current span}

    Protocol code is written in continuation-passing style; threading a
    span argument through every handler would be invasive.  Instead the
    tracer keeps an ambient "current" span which [Sim.Net] and [Sim.Rpc]
    set synchronously around handler invocation, so spans opened inside
    a delivery handler parent to the hop that delivered the message. *)

val current : t -> span

val with_current : t -> span -> (unit -> 'a) -> 'a
(** Run the thunk with the ambient span set to [span], restoring the
    previous value afterwards (also on exceptions).  On a disabled sink
    this is just [f ()]. *)

(** {1 Inspection} *)

type info = {
  id : int;
  parent : int;  (** [0] = root *)
  kind : kind;
  name : string;
  site : int;  (** [-1] = none *)
  start_ts : int;  (** µs *)
  end_ts : int;  (** µs; [-1] = never closed *)
  is_instant : bool;
}

val n_spans : t -> int
val spans : t -> info array
val iter : t -> (info -> unit) -> unit

(** {1 Export} *)

val to_chrome_json : t -> string
(** Chrome [trace_event] JSON (array form): ["X"] complete events for
    spans, ["i"] instants; [ts]/[dur] in µs (the simulator unit), [tid]
    is the site, [args] carry the span id and parent id so causal links
    survive the export.  Loadable in [chrome://tracing] and Perfetto. *)

val save_chrome : t -> path:string -> unit

val save_binary : t -> path:string -> unit
(** Compact varint-encoded binary log (magic ["OBSB1"]). *)

val load_binary : path:string -> (info array, string) result
(** Round-trips [save_binary]. *)
