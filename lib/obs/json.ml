type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("bad literal " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= n then fail "bad escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !pos + 4 >= n then fail "bad \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
          | Some _ -> Buffer.add_char buf '?'
          | None -> fail "bad \\u escape");
          pos := !pos + 4
        | _ -> fail "bad escape");
        advance ();
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (elems [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail m -> Error m

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_arr = function Arr l -> Some l | _ -> None
