type counter = { mutable n : int }
type gauge = { mutable g : float }

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  hists : (string, Stats.Recorder.t) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    hists = Hashtbl.create 8;
  }

let full_name name = function
  | None | Some [] -> name
  | Some labels ->
    let buf = Buffer.create (String.length name + 16) in
    Buffer.add_string buf name;
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_char buf '=';
        Buffer.add_string buf v)
      labels;
    Buffer.add_char buf '}';
    Buffer.contents buf

let counter t ?labels name =
  let key = full_name name labels in
  match Hashtbl.find_opt t.counters key with
  | Some c -> c
  | None ->
    let c = { n = 0 } in
    Hashtbl.add t.counters key c;
    c

let incr c = c.n <- c.n + 1
let add c v = c.n <- c.n + v
let value c = c.n

let gauge_cell t key =
  match Hashtbl.find_opt t.gauges key with
  | Some g -> g
  | None ->
    let g = { g = nan } in
    Hashtbl.add t.gauges key g;
    g

let set_gauge t ?labels name v = (gauge_cell t (full_name name labels)).g <- v

let max_gauge t ?labels name v =
  let cell = gauge_cell t (full_name name labels) in
  if Float.is_nan cell.g || v > cell.g then cell.g <- v

let histogram t ?labels name =
  let key = full_name name labels in
  match Hashtbl.find_opt t.hists key with
  | Some r -> r
  | None ->
    let r = Stats.Recorder.create () in
    Hashtbl.add t.hists key r;
    r

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * Stats.Recorder.t) list;
}

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot (t : t) =
  {
    counters = sorted_bindings t.counters (fun c -> c.n);
    gauges = sorted_bindings t.gauges (fun g -> g.g);
    histograms = sorted_bindings t.hists Fun.id;
  }

let empty = { counters = []; gauges = []; histograms = [] }

let of_counts counts =
  {
    empty with
    counters = List.sort (fun (a, _) (b, _) -> String.compare a b) counts;
  }

let counter_value s name =
  match List.assoc_opt name s.counters with Some n -> n | None -> 0

let gauge_value s name =
  match List.assoc_opt name s.gauges with Some v -> v | None -> nan

let histogram_of s name = List.assoc_opt name s.histograms

let print_table ?(header = "metrics") s =
  let counts =
    s.counters |> List.filter (fun (_, n) -> n <> 0)
  in
  if counts <> [] then Stats.Summary.print_count_table ~header ~rows:counts;
  if s.gauges <> [] then begin
    Fmt.pr "%s (gauges)@." header;
    List.iter
      (fun (name, v) ->
        if Float.is_nan v then Fmt.pr "  %-24s %10s@." name "n/a"
        else Fmt.pr "  %-24s %10.2f@." name v)
      s.gauges
  end;
  if s.histograms <> [] then
    Stats.Summary.print_latency_table
      ~header:(header ^ " (latency ms)")
      ~rows:s.histograms ()
