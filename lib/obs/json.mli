(** Minimal JSON parser — just enough to validate exported Chrome
    trace_event files in tests without an external dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete JSON document ([Error] carries position info). *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] otherwise. *)

val to_num : t -> float option
val to_str : t -> string option
val to_arr : t -> t list option
