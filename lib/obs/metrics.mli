(** Named metrics registry: counters, gauges and latency histograms.

    Replaces the per-driver ad-hoc stats records ([fault_stats],
    [failover_stats], per-cluster [stats]) with one registry whose
    snapshots are plain sorted association lists — deterministic for a
    given seed, cheap to diff in tests, and printable through a single
    Summary-style table renderer.

    Metric identity is [name] plus optional [labels]; labels render into
    the full name as [name{k=v,...}].  Histograms are backed by
    [Stats.Recorder]. *)

type t

val create : unit -> t

(** {1 Counters} *)

type counter

val counter : t -> ?labels:(string * string) list -> string -> counter
(** Get-or-create. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(** {1 Gauges} *)

val set_gauge : t -> ?labels:(string * string) list -> string -> float -> unit
val max_gauge : t -> ?labels:(string * string) list -> string -> float -> unit
(** [max_gauge] keeps the maximum of all observations. *)

(** {1 Histograms} *)

val histogram : t -> ?labels:(string * string) list -> string -> Stats.Recorder.t
(** Get-or-create a recorder registered under [name]. *)

(** {1 Snapshots} *)

type snapshot = {
  counters : (string * int) list;  (** sorted by full name *)
  gauges : (string * float) list;
  histograms : (string * Stats.Recorder.t) list;
}

val snapshot : t -> snapshot

val empty : snapshot

val of_counts : (string * int) list -> snapshot
(** Wrap a plain counter list (sorted on the way in). *)

val counter_value : snapshot -> string -> int
(** [0] when absent. *)

val gauge_value : snapshot -> string -> float
(** [nan] when absent. *)

val histogram_of : snapshot -> string -> Stats.Recorder.t option

val print_table : ?header:string -> snapshot -> unit
(** One Summary-style rendering for every driver: a count table for
    counters and gauges, then a latency table for histograms.  Empty
    histograms print [n/a] rather than raising. *)
