(** Experiment drivers shared by the benchmark harness (bench/) and the CLI
    (bin/): run one configured simulation to completion and return a single
    {!Run.t} — latency recorders, a metrics-registry snapshot, the run's
    history, and the history-verification verdict.

    Every driver takes an optional [?chaos] fault schedule. With one armed,
    the driver (a) injects the schedule's faults into the run's network and
    TrueTime, (b) tracks in-flight writes so attempts whose acknowledgement
    a fault swallowed can be swept into the history before checking (see
    {!Chaos.Audit}), and (c) reports fault accounting in the run's metrics.

    Every driver also takes an optional [?trace] span sink
    ({!Obs.Trace.t}, default disabled). Tracing is passive — it never draws
    randomness or schedules events — so a traced run follows the exact
    seeded schedule of an untraced one. *)

module Run : sig
  (** The run's execution history, protocol-shaped. *)
  type history =
    | Spanner_txns of Rss_core.Witness.txn array
    | Gryff_ops of Gryff.Cluster.record array

  (** The consistency verdict. [Unknown] surfaces exhausted checker budgets
      (and [`No_check] runs) as a value — a budget can silence the checker
      but never make it wrong. *)
  type verdict = Rss_core.Check_online.verdict =
    | Pass
    | Fail of string
    | Unknown of string

  type t = {
    latencies : (string * Stats.Recorder.t) list;
        (** named recorders in µs, e.g. [["ro"; "rw"]] for Spanner WAN runs,
            [["read"; "write"]] for Gryff WAN runs, one recorder for the
            single-DC saturation drivers *)
    metrics : Obs.Metrics.snapshot;
        (** protocol / network / fault / failover counters and gauges
            (single-DC drivers add ["throughput_tps"], ["p50_ms"], ...; all
            drivers add ["check.finish_s"], online-checked runs add
            ["check.added"], ["check.work"], ["check.max_displacement"]) *)
    check : verdict;
    records : history;
    duration_us : int;  (** simulated time at which the engine drained *)
  }

  val passed : t -> bool
  (** [check = Pass]. *)

  val latency : t -> string -> Stats.Recorder.t
  (** Recorder by name; an empty recorder when absent. *)

  val counter : t -> string -> int
  (** Metric counter by name; [0] when absent. *)

  val gauge : t -> string -> float
  (** Metric gauge by name; [nan] when absent. *)

  val gauge_opt : t -> string -> float option
  (** Like {!gauge} but [None] when the gauge is absent {e or} NaN (e.g. a
      p50 over an empty recorder) — so callers render "n/a" instead of
      leaking [nan] into tables and jq comparisons. *)

  val latency_opt : t -> string -> Stats.Recorder.t option
  (** Like {!latency} but [None] when the recorder is absent or empty. *)

  val completed : t -> int
  (** Total recorded (post-warm-up) operations across all recorders. *)

  val n_records : t -> int

  val print_latencies : ?header:string -> t -> unit

  val print_metrics : ?header:string -> t -> unit

  val print_summary : ?header:string -> t -> unit
  (** Latency table, metrics table, and a loud warning if the run's history
      failed verification. *)
end

type check_mode = [ `Offline | `Online | `No_check ]
(** How a driver verifies its history. [`Offline] (the default) buffers the
    run and checks post-hoc, exactly as before. [`Online] feeds every record
    into {!Rss_core.Check_online} as it happens, so million-op histories
    verify in near-linear time and the run's peak memory excludes the
    post-hoc sort. [`No_check] skips verification (the verdict is
    [Unknown]) — for benchmarking raw simulator speed. The mode never
    affects the simulation itself: record hooks draw no randomness and
    schedule no events, so seeded traces are identical across modes. *)

type reshard_spec = {
  rs_at : float;  (** when to start, as a fraction of the run's duration *)
  rs_lo : int;  (** key range [\[rs_lo, rs_hi)] to move *)
  rs_hi : int;
  rs_dst : int;  (** destination shard *)
  rs_no_fence : bool;
      (** skip the t_m real-time barrier — the {e unsafe} mutation control
          used by safety experiments; production paths pass [false] *)
}
(** A live migration armed partway through a [spanner_wan] run. *)

type flow_spec = {
  fl_admission : Sim.Station.limits option;
      (** bounded queues + load shedding at every server station (see
          {!Spanner.Cluster.set_admission} / {!Gryff.Cluster.set_admission}) *)
  fl_drop_expired : bool;
      (** servers drop request legs whose riding deadline has already
          passed at their projected service start — pair with
          [Env.deadline_us] or nothing rides the envelopes *)
  fl_hedge_us : int;
      (** hedge reads still unfinished after this many µs (0 = off):
          Spanner duplicates the RO read, Gryff widens a bare-quorum
          fan-out — see [fl_gryff_fanout] *)
  fl_budget : (int * int) option;
      (** fleet-wide retry token bucket as [(capacity,
          refill_period_us)]; a dry bucket turns retries of shed work into
          fast-fails instead of amplification *)
  fl_gryff_fanout : Gryff.Protocol.read_fanout option;
      (** Gryff read fan-out policy ([None] keeps the protocol default,
          [Fan_all]); Spanner drivers ignore it *)
}
(** The overload-protection policy a driver applies to its cluster before
    any traffic flows. Every field off ({!flow_default}) reproduces the
    unprotected run byte for byte. *)

val flow_default : flow_spec
(** No admission limits, no expiry drops, no hedging, no budget, default
    fan-out. *)

(** The cross-cutting run environment. Every driver used to take the same
    six optional keywords ([?chaos ?disk_faults ?failover ?trace ?check
    ?reshard]); they are one record now, built with {!Env.default} and the
    [with_*] combinators:

    {[ Harness.spanner_dc
         ~env:Env.(default |> with_check `Online
                   |> with_batching (Some policy)) ... ]}

    The old keywords remain as thin deprecated shims for one release: an
    explicitly passed keyword overrides the corresponding [env] field.
    [batching] has no legacy keyword — it is reachable only through [Env]. *)
module Env : sig
  type t = {
    chaos : Chaos.Schedule.t option;
    disk_faults : Chaos.Audit.disk_faults option;
    failover : bool;
    trace : Obs.Trace.t;
    check : check_mode;
    reshard : reshard_spec list;
        (** consumed by [spanner_wan] only; other drivers ignore it *)
    batching : Sim.Net.policy option;
        (** installed on the run's network before any traffic flows; [None]
            keeps seeded schedules byte-identical to unbatched runs *)
    deadline_us : int option;
        (** client deadline put on every operation. [None] (the default)
            keeps the historical behavior: no deadline, except the 10 s
            failover fallback [spanner_wan] arms with [failover]. An
            explicit value overrides that fallback too. *)
    flow : flow_spec option;
        (** overload protections applied to the cluster before any traffic
            flows; [None] runs unprotected and byte-identical to before *)
  }

  val default : t
  (** No chaos, no disk faults, no failover, tracing disabled, [`Offline]
      checking, no reshard, batching off, no deadline, no flow policy. *)

  val with_chaos : Chaos.Schedule.t -> t -> t
  val with_disk_faults : Chaos.Audit.disk_faults -> t -> t
  val with_failover : bool -> t -> t
  val with_trace : Obs.Trace.t -> t -> t
  val with_check : check_mode -> t -> t
  val with_reshard : reshard_spec list -> t -> t
  val with_batching : Sim.Net.policy option -> t -> t

  val with_deadline_us : int option -> t -> t
  (** Raises [Invalid_argument] on a non-positive deadline. *)

  val with_flow : flow_spec option -> t -> t

  val resolve :
    ?env:t -> ?chaos:Chaos.Schedule.t -> ?disk_faults:Chaos.Audit.disk_faults ->
    ?failover:bool -> ?trace:Obs.Trace.t -> ?check:check_mode ->
    ?reshard:reshard_spec list -> unit -> t
  (** The exact deprecated-keyword shim every driver applies: fold the
      legacy keywords over [?env] (default {!default}), an explicitly
      passed keyword winning over the corresponding field. [batching],
      [deadline_us] and [flow] have no keyword, so they always pass
      through. Exposed so the shim semantics can be property-tested —
      drivers behave as if called with [~env:(resolve ?env ?chaos ... ())]
      and no keywords. *)
end

val spanner_wan :
  ?config:Spanner.Config.t option -> ?env:Env.t -> ?chaos:Chaos.Schedule.t ->
  ?disk_faults:Chaos.Audit.disk_faults ->
  ?failover:bool -> ?trace:Obs.Trace.t -> ?check:check_mode ->
  ?reshard:reshard_spec list -> mode:Spanner.Config.mode ->
  theta:float -> n_keys:int -> arrival_rate_per_sec:float ->
  duration_s:float -> seed:int -> unit -> Run.t
(** §6.1: Retwis over the CA/VA/IR deployment with partly-open clients
    (a fresh session — and t_min — per arrival, stay probability 0.9).
    The first 10% of the run is warm-up and is not recorded. [failover]
    (default false) arms {!Spanner.Cluster.enable_failover} and puts client
    deadlines on every operation — required for liveness under
    leader-killing schedules. [reshard] (default none) arms live key-range
    migrations via {!Spanner.Cluster.migrate}; reshard statistics land in
    the run's [place.*] counters. [disk_faults] installs a
    {!Sim.Durable.Faults} control before the cluster is built, ties storage
    damage to the schedule's crash events, and arms the background scrub
    pass; accounting lands in the run's [durable.*] counters.
    Latencies: ["ro"], ["rw"]. *)

val spanner_dc :
  ?env:Env.t -> ?chaos:Chaos.Schedule.t -> ?trace:Obs.Trace.t ->
  ?check:check_mode -> mode:Spanner.Config.mode ->
  n_shards:int -> service_time_us:int -> n_clients:int -> n_keys:int ->
  duration_s:float -> seed:int -> unit -> Run.t
(** §6.2 saturation. Latencies: ["txn"]; gauges: ["throughput_tps"],
    ["p50_ms"], ["msgs_per_txn"]. *)

val gryff_wan :
  ?n_clients:int -> ?client_sites:int array -> ?env:Env.t ->
  ?chaos:Chaos.Schedule.t ->
  ?disk_faults:Chaos.Audit.disk_faults -> ?failover:bool ->
  ?trace:Obs.Trace.t -> ?check:check_mode -> mode:Gryff.Config.mode ->
  conflict:float ->
  write_ratio:float -> n_keys:int -> duration_s:float -> seed:int -> unit ->
  Run.t
(** §7.2: YCSB over the five-region deployment, closed-loop clients.
    [client_sites] restricts where clients run (e.g. off a slow-node
    victim); the default spreads them over all five regions. [failover]
    (default false) arms {!Gryff.Cluster.enable_retrans}. [disk_faults] is
    accepted for battery uniformity — Gryff keeps no durable stores, so
    the control registers nothing. Latencies: ["read"], ["write"]. *)

val gryff_dc :
  ?env:Env.t -> ?chaos:Chaos.Schedule.t -> ?trace:Obs.Trace.t ->
  ?check:check_mode -> mode:Gryff.Config.mode ->
  service_time_us:int -> n_clients:int -> conflict:float ->
  write_ratio:float -> n_keys:int -> duration_s:float -> seed:int -> unit ->
  Run.t
(** §7.4 overhead. Latencies: ["op"]; gauges: ["throughput_tps"],
    ["p50_ms"]. *)

val report_check : string -> Run.verdict -> unit
(** Print a loud warning if a run's history failed verification (or an
    unresolved-verdict note on [Unknown]). *)
