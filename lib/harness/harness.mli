(** Experiment drivers shared by the benchmark harness (bench/) and the CLI
    (bin/): run one configured simulation to completion and return latency
    recorders, protocol statistics, and the history-verification verdict.

    Every driver takes an optional [?chaos] fault schedule. With one armed,
    the driver (a) injects the schedule's faults into the run's network and
    TrueTime, (b) tracks in-flight writes so attempts whose acknowledgement
    a fault swallowed can be swept into the history before checking (see
    {!Chaos.Audit}), and (c) reports fault accounting in its result. *)

(** Fault accounting for a chaos-enabled run (all zero without a schedule). *)
type fault_stats = {
  faults_injected : int;  (** schedule events that fired *)
  dropped_crash : int;
  dropped_partition : int;
  dropped_loss : int;
  duplicated : int;
  delayed : int;
}

val no_faults : fault_stats

val print_fault_table : fault_stats -> unit
(** Print the accounting as a Summary-style count table. *)

(** Failover accounting for runs with [?failover:true] (all zero otherwise):
    leader elections across the run's replication groups, request
    retransmissions, 2PC participants settled by coordinator status queries,
    and the worst crash-detection-to-new-leader-activation gap. *)
type failover_stats = {
  view_changes : int;
  rpc_retries : int;
  in_doubt_resolved : int;
  max_election_us : int;
}

val no_failover : failover_stats

val print_failover_table : failover_stats -> unit
(** Print the failover accounting as a Summary-style count table. *)

type spanner_run = {
  sp_ro : Stats.Recorder.t;  (** read-only transaction latencies (µs) *)
  sp_rw : Stats.Recorder.t;
  sp_stats : Spanner.Cluster.stats;
  sp_committed : int;
  sp_duration_us : int;
  sp_check : (unit, string) result;
  sp_records : Rss_core.Witness.txn array;  (** full history of the run *)
  sp_faults : fault_stats;
  sp_failover : failover_stats;
}

val spanner_wan :
  ?config:Spanner.Config.t option -> ?chaos:Chaos.Schedule.t ->
  ?failover:bool -> mode:Spanner.Config.mode -> theta:float -> n_keys:int ->
  arrival_rate_per_sec:float -> duration_s:float -> seed:int -> unit ->
  spanner_run
(** §6.1: Retwis over the CA/VA/IR deployment with partly-open clients
    (a fresh session — and t_min — per arrival, stay probability 0.9).
    The first 10% of the run is warm-up and is not recorded. [failover]
    (default false) arms {!Spanner.Cluster.enable_failover} and puts client
    deadlines on every operation — required for liveness under
    leader-killing schedules. *)

val spanner_dc :
  ?chaos:Chaos.Schedule.t -> mode:Spanner.Config.mode -> n_shards:int ->
  service_time_us:int -> n_clients:int -> n_keys:int -> duration_s:float ->
  seed:int -> unit -> float * float * float * (unit, string) result
(** §6.2 saturation: returns (throughput tx/s, median latency ms,
    messages per transaction, check). *)

type gryff_run = {
  gr_read : Stats.Recorder.t;
  gr_write : Stats.Recorder.t;
  gr_stats : Gryff.Cluster.stats;
  gr_duration_us : int;
  gr_check : (unit, string) result;
  gr_faults : fault_stats;
  gr_failover : failover_stats;
}

val gryff_wan :
  ?n_clients:int -> ?chaos:Chaos.Schedule.t -> ?failover:bool ->
  mode:Gryff.Config.mode -> conflict:float -> write_ratio:float ->
  n_keys:int -> duration_s:float -> seed:int -> unit -> gryff_run
(** §7.2: YCSB over the five-region deployment, closed-loop clients.
    [failover] (default false) arms {!Gryff.Cluster.enable_retrans}. *)

val gryff_dc :
  ?chaos:Chaos.Schedule.t -> mode:Gryff.Config.mode -> service_time_us:int ->
  n_clients:int -> conflict:float -> write_ratio:float -> n_keys:int ->
  duration_s:float -> seed:int -> unit ->
  float * float * (unit, string) result
(** §7.4 overhead: returns (throughput ops/s, median latency ms, check). *)

val report_check : string -> (unit, string) result -> unit
(** Print a loud warning if a run's history failed verification. *)
