(** Experiment drivers shared by the benchmark harness (bench/) and the CLI
    (bin/): run one configured simulation to completion and return latency
    recorders, protocol statistics, and the history-verification verdict. *)

type spanner_run = {
  sp_ro : Stats.Recorder.t;  (** read-only transaction latencies (µs) *)
  sp_rw : Stats.Recorder.t;
  sp_stats : Spanner.Cluster.stats;
  sp_committed : int;
  sp_duration_us : int;
  sp_check : (unit, string) result;
  sp_records : Rss_core.Witness.txn array;  (** full history of the run *)
}

val spanner_wan :
  ?config:Spanner.Config.t option -> mode:Spanner.Config.mode -> theta:float ->
  n_keys:int -> arrival_rate_per_sec:float -> duration_s:float -> seed:int ->
  unit -> spanner_run
(** §6.1: Retwis over the CA/VA/IR deployment with partly-open clients
    (a fresh session — and t_min — per arrival, stay probability 0.9).
    The first 10% of the run is warm-up and is not recorded. *)

val spanner_dc :
  mode:Spanner.Config.mode -> n_shards:int -> service_time_us:int ->
  n_clients:int -> n_keys:int -> duration_s:float -> seed:int -> unit ->
  float * float * float * (unit, string) result
(** §6.2 saturation: returns (throughput tx/s, median latency ms,
    messages per transaction, check). *)

type gryff_run = {
  gr_read : Stats.Recorder.t;
  gr_write : Stats.Recorder.t;
  gr_stats : Gryff.Cluster.stats;
  gr_duration_us : int;
  gr_check : (unit, string) result;
}

val gryff_wan :
  ?n_clients:int -> mode:Gryff.Config.mode -> conflict:float ->
  write_ratio:float -> n_keys:int -> duration_s:float -> seed:int -> unit ->
  gryff_run
(** §7.2: YCSB over the five-region deployment, closed-loop clients. *)

val gryff_dc :
  mode:Gryff.Config.mode -> service_time_us:int -> n_clients:int ->
  conflict:float -> write_ratio:float -> n_keys:int -> duration_s:float ->
  seed:int -> unit -> float * float * (unit, string) result
(** §7.4 overhead: returns (throughput ops/s, median latency ms, check). *)

val report_check : string -> (unit, string) result -> unit
(** Print a loud warning if a run's history failed verification. *)
