(* Shared experiment drivers for the benchmark suite: each returns one
   {!Run.t} — latency recorders, a metrics-registry snapshot, the run's
   history, and the history-verification verdict (a bench that produced an
   inconsistent run would be measuring a broken system). *)

module Run = struct
  type history =
    | Spanner_txns of Rss_core.Witness.txn array
    | Gryff_ops of Gryff.Cluster.record array

  type verdict = Rss_core.Check_online.verdict =
    | Pass
    | Fail of string
    | Unknown of string

  type t = {
    latencies : (string * Stats.Recorder.t) list;
    metrics : Obs.Metrics.snapshot;
    check : verdict;
    records : history;
    duration_us : int;
  }

  let passed t = match t.check with Pass -> true | Fail _ | Unknown _ -> false

  let empty_recorder = Stats.Recorder.create ()

  let latency t name =
    match List.assoc_opt name t.latencies with
    | Some r -> r
    | None -> empty_recorder

  let counter t name = Obs.Metrics.counter_value t.metrics name

  let gauge t name = Obs.Metrics.gauge_value t.metrics name

  (* Option-returning accessors: absent (or NaN, e.g. a p50 over an empty
     recorder) gauges and empty recorders come back as [None], so callers
     render "n/a" instead of leaking [nan] into tables and jq gates. *)
  let gauge_opt t name =
    let v = Obs.Metrics.gauge_value t.metrics name in
    if Float.is_nan v then None else Some v

  let latency_opt t name =
    match List.assoc_opt name t.latencies with
    | Some r when not (Stats.Recorder.is_empty r) -> Some r
    | Some _ | None -> None

  let completed t =
    List.fold_left (fun acc (_, r) -> acc + Stats.Recorder.count r) 0 t.latencies

  let n_records t =
    match t.records with
    | Spanner_txns a -> Array.length a
    | Gryff_ops a -> Array.length a

  let print_latencies ?(header = "latency (ms)") t =
    Stats.Summary.print_latency_table ~header ~rows:t.latencies ()

  let print_metrics ?header t = Obs.Metrics.print_table ?header t.metrics

  let print_summary ?(header = "run") t =
    print_latencies ~header:(header ^ " latency (ms)") t;
    print_metrics ~header t;
    match t.check with
    | Pass -> ()
    | Fail m ->
      Fmt.pr "  !! %s: consistency violation in run history: %s@." header m
    | Unknown m -> Fmt.pr "  ?? %s: consistency verdict unknown: %s@." header m
end

type check_mode = [ `Offline | `Online | `No_check ]

(* Arm a chaos schedule on the run's engine; returns the injected-event
   counter to read after the run. With a disk-fault control installed
   ([dctl]), every Crash event also damages the crashed sites' durable
   stores, and [on_recover] lets drivers re-verify site-local storage (the
   placement directory) as sites come back. [Slow]/[Slow_clear] events are
   applied through [on_slow]/[on_slow_clear] — stations live in the
   protocol deployments, so the schedule itself cannot reach them. *)
let arm_chaos ?chaos ?(tracer = Obs.Trace.disabled) ?dctl ?on_recover ?on_slow
    ?on_slow_clear ~engine ~net ?tt () =
  match chaos with
  | None -> ref 0
  | Some schedule ->
    let faults = ref 0 in
    ignore
      (Chaos.Schedule.apply schedule ~engine ~net ?tt ~tracer
         ~on_fault:(fun (ev : Chaos.Schedule.event) ->
           incr faults;
           (match ev.Chaos.Schedule.fault with
           | Chaos.Schedule.Slow { site; factor } -> (
             match on_slow with Some f -> f ~site ~factor | None -> ())
           | Chaos.Schedule.Slow_clear -> (
             match on_slow_clear with Some f -> f () | None -> ())
           | _ -> ());
           match (dctl, ev.Chaos.Schedule.fault) with
           | Some ctl, Chaos.Schedule.Crash ss ->
             List.iter (Sim.Durable.Faults.crash_site ctl) ss
           | Some _, Chaos.Schedule.Recover ss -> (
             match on_recover with Some f -> f ss | None -> ())
           | _ -> ())
         ());
    faults

(* Disk-fault and scrub accounting for chaos-enabled drivers. Fault-free
   runs never install a control, so the counters stay absent. *)
let durable_metrics reg ~dctl ~scrub =
  match dctl with
  | None -> ()
  | Some ctl ->
    let c name v = Obs.Metrics.add (Obs.Metrics.counter reg name) v in
    let ds = Sim.Durable.Faults.stats ctl in
    c "durable.fault.torn" ds.Sim.Durable.Faults.fs_torn;
    c "durable.fault.corrupt" ds.Sim.Durable.Faults.fs_corrupt;
    c "durable.fault.resurfaced" ds.Sim.Durable.Faults.fs_resurfaced;
    c "durable.fault.lost_ints" ds.Sim.Durable.Faults.fs_lost_ints;
    c "durable.fault.crashes" ds.Sim.Durable.Faults.fs_crashes;
    (match scrub with
    | Some (s : Sim.Scrub.stats) ->
      c "durable.scrub.passes" s.Sim.Scrub.passes;
      c "durable.scrub.entries" s.Sim.Scrub.entries;
      c "durable.scrub.flagged" s.Sim.Scrub.flagged
    | None -> ())

(* Fold the network/fault accounting into a registry. All-zero counters are
   harmless: snapshots keep them, the table renderer filters them. *)
let net_metrics reg ~faults net =
  let c name v = Obs.Metrics.add (Obs.Metrics.counter reg name) v in
  c "net.messages" (Sim.Net.messages_sent net);
  c "net.bytes" (Sim.Net.bytes_sent net);
  c "fault.injected" faults;
  c "fault.dropped_crash" (Sim.Net.dropped_crash net);
  c "fault.dropped_partition" (Sim.Net.dropped_partition net);
  c "fault.dropped_loss" (Sim.Net.dropped_loss net);
  c "fault.duplicated" (Sim.Net.messages_duplicated net);
  c "fault.delayed" (Sim.Net.messages_delayed net);
  (* Batching accounting — absent on unbatched runs. *)
  if Sim.Net.batch_envelopes net > 0 then begin
    c "batch.envelopes" (Sim.Net.batch_envelopes net);
    c "batch.members" (Sim.Net.batch_members net);
    c "batch.flush.deadline" (Sim.Net.batch_flush_deadline net);
    c "batch.flush.size" (Sim.Net.batch_flush_size net);
    c "batch.flush.idle" (Sim.Net.batch_flush_idle net);
    c "batch.max_members" (Sim.Net.batch_max_members net);
    (* Members-per-envelope distribution. Registry histograms follow the
       µs convention and render in ms, so sizes are stored ×1000: the
       printed table and [Recorder.percentile_ms] read directly in whole
       members. *)
    let h = Obs.Metrics.histogram reg "batch.size" in
    Array.iter
      (fun n -> Stats.Recorder.add h (n * 1000))
      (Stats.Recorder.to_sorted_array (Sim.Net.batch_sizes net))
  end

let spanner_metrics ~faults ~failover cluster =
  let reg = Obs.Metrics.create () in
  let c name v = Obs.Metrics.add (Obs.Metrics.counter reg name) v in
  let s = Spanner.Cluster.stats cluster in
  c "rw.committed" s.Spanner.Cluster.rw_committed;
  c "rw.aborted_attempts" s.Spanner.Cluster.rw_aborted_attempts;
  c "rw.wounds" s.Spanner.Cluster.wounds;
  c "ro.count" s.Spanner.Cluster.ro_count;
  c "ro.slow" s.Spanner.Cluster.ro_slow;
  c "ro.blocked_at_shards" s.Spanner.Cluster.ro_blocked_at_shards;
  net_metrics reg ~faults (Spanner.Cluster.net cluster);
  let ps = Spanner.Cluster.place_stats cluster in
  c "place.epoch" ps.Spanner.Cluster.epoch;
  c "place.migrations" ps.Spanner.Cluster.migrations;
  c "place.migrations_failed" ps.Spanner.Cluster.migrations_failed;
  c "place.migration_retries" ps.Spanner.Cluster.migration_retries;
  c "place.keys_moved" ps.Spanner.Cluster.keys_moved;
  c "place.redirects" ps.Spanner.Cluster.redirects;
  c "place.fence_blocked" ps.Spanner.Cluster.fence_blocked;
  c "place.fence_hold_us" ps.Spanner.Cluster.fence_hold_us;
  c "place.max_fence_hold_us" ps.Spanner.Cluster.max_fence_hold_us;
  c "place.directory_appends" ps.Spanner.Cluster.directory_appends;
  if failover then begin
    let fs = Spanner.Cluster.failover_stats cluster in
    c "failover.view_changes" fs.Spanner.Cluster.view_changes;
    c "failover.heartbeats" fs.Spanner.Cluster.heartbeats;
    c "failover.catchups" fs.Spanner.Cluster.catchups;
    c "failover.dup_acks" fs.Spanner.Cluster.dup_acks;
    c "failover.max_election_us" fs.Spanner.Cluster.max_election_us;
    c "failover.terminates" fs.Spanner.Cluster.terminates;
    c "failover.terminate_commits" fs.Spanner.Cluster.terminate_commits;
    c "failover.in_doubt_resolved" fs.Spanner.Cluster.in_doubt_resolved;
    c "failover.rpc_retries" fs.Spanner.Cluster.rpc_retries;
    c "failover.rpc_exhausted" fs.Spanner.Cluster.rpc_exhausted;
    c "failover.durable_appends" fs.Spanner.Cluster.durable_appends;
    c "failover.durable_bytes" fs.Spanner.Cluster.durable_bytes;
    c "durable.repair.torn" fs.Spanner.Cluster.torn_repaired;
    c "durable.repair.quarantined" fs.Spanner.Cluster.corrupt_quarantined;
    c "durable.repair.peer" fs.Spanner.Cluster.peer_repairs;
    c "durable.repair.unrepaired" fs.Spanner.Cluster.unrepaired;
    c "durable.repair.place"
      (Place.Directory.repairs (Spanner.Cluster.directory cluster))
  end;
  reg

let gryff_metrics ~faults ~failover cluster =
  let reg = Obs.Metrics.create () in
  let c name v = Obs.Metrics.add (Obs.Metrics.counter reg name) v in
  let s = Gryff.Cluster.stats cluster in
  c "read.count" s.Gryff.Cluster.reads;
  c "read.second_round" s.Gryff.Cluster.read_second_round;
  c "read.deps_created" s.Gryff.Cluster.deps_created;
  c "write.count" s.Gryff.Cluster.writes;
  c "rmw.count" s.Gryff.Cluster.rmws;
  c "rmw.slow" s.Gryff.Cluster.rmw_slow;
  net_metrics reg ~faults (Gryff.Cluster.net cluster);
  if failover then begin
    let rs = Gryff.Cluster.retrans_stats cluster in
    c "failover.rpc_calls" rs.Gryff.Cluster.rpc_calls;
    c "failover.rpc_retries" rs.Gryff.Cluster.rpc_retries;
    c "failover.rpc_exhausted" rs.Gryff.Cluster.rpc_exhausted
  end;
  reg

(* {2 Consistency checking}

   [`Offline] buffers the whole history and verifies post-hoc
   (Cluster.check_history, as before). [`Online] hooks the cluster's record
   stream into {!Rss_core.Check_online} so verification overlaps the run and
   stays near-linear at million-op scale. [`No_check] skips verification —
   for benchmarking raw simulator speed; the verdict reports [Unknown]. *)

let verdict_of_result = function Ok () -> Run.Pass | Error m -> Run.Fail m

let arm_spanner_online cluster =
  let mode =
    match (Spanner.Cluster.config cluster).Spanner.Config.mode with
    | Spanner.Config.Strict -> `Strict
    | Spanner.Config.Rss -> `Rss
  in
  let oc = Rss_core.Check_online.create ~mode () in
  Spanner.Cluster.set_record_hook cluster (Rss_core.Check_online.add oc);
  oc

let gryff_witness_txn (r : Gryff.Cluster.record) =
  let key = string_of_int r.Gryff.Cluster.g_key in
  let reads =
    match r.Gryff.Cluster.g_kind with
    | Gryff.Cluster.Read | Gryff.Cluster.Rmw ->
      [ (key, r.Gryff.Cluster.g_observed) ]
    | Gryff.Cluster.Write -> []
  in
  let writes =
    match (r.Gryff.Cluster.g_kind, r.Gryff.Cluster.g_written) with
    | (Gryff.Cluster.Write | Gryff.Cluster.Rmw), Some v -> [ (key, v) ]
    | _ -> []
  in
  {
    Rss_core.Witness.proc = r.Gryff.Cluster.g_proc;
    reads;
    writes;
    inv = r.Gryff.Cluster.g_inv;
    resp = r.Gryff.Cluster.g_resp;
    ts = Gryff.Carstamp.pack r.Gryff.Cluster.g_cs;
    rank = (match r.Gryff.Cluster.g_kind with Gryff.Cluster.Read -> 1 | _ -> 0);
  }

(* Registers are per-key: carstamp order — hence the mode's real-time
   constraint — is only meaningful within a key, so each key gets its own
   online checker, mirroring Gryff.Cluster.check_history's per-key split. *)
let arm_gryff_online cluster =
  let mode =
    match (Gryff.Cluster.config cluster).Gryff.Config.mode with
    | Gryff.Config.Lin -> `Strict
    | Gryff.Config.Rsc -> `Rss
  in
  let tbl : (int, Rss_core.Check_online.t) Hashtbl.t = Hashtbl.create 256 in
  Gryff.Cluster.set_record_hook cluster (fun r ->
      let oc =
        match Hashtbl.find_opt tbl r.Gryff.Cluster.g_key with
        | Some oc -> oc
        | None ->
          let oc = Rss_core.Check_online.create ~mode () in
          Hashtbl.add tbl r.Gryff.Cluster.g_key oc;
          oc
      in
      Rss_core.Check_online.add oc (gryff_witness_txn r));
  tbl

let gryff_online_result tbl =
  Hashtbl.fold
    (fun key oc acc ->
      match acc with
      | Run.Fail _ -> acc
      | Run.Pass | Run.Unknown _ -> (
        match Rss_core.Check_online.result oc with
        | Rss_core.Check_online.Pass -> acc
        | Rss_core.Check_online.Fail m -> Run.Fail (Fmt.str "key %d: %s" key m)
        | Rss_core.Check_online.Unknown m -> (
          match acc with
          | Run.Unknown _ -> acc
          | _ -> Run.Unknown (Fmt.str "key %d: %s" key m))))
    tbl Run.Pass

let gryff_online_stats tbl =
  Hashtbl.fold
    (fun _ oc (a, w, d) ->
      ( a + Rss_core.Check_online.n_added oc,
        w + Rss_core.Check_online.work oc,
        max d (Rss_core.Check_online.max_displacement oc) ))
    tbl (0, 0, 0)

let online_counters reg ~added ~work ~max_displacement =
  let c name v = Obs.Metrics.add (Obs.Metrics.counter reg name) v in
  c "check.added" added;
  c "check.work" work;
  c "check.max_displacement" max_displacement

(* Chaos runs must sweep committed-but-unacknowledged attempts into the
   history before checking it (see Chaos.Audit); both trackers below record
   via the audit's shared sweep convention. *)
type pending_rw = {
  pr_proc : int;
  pr_inv : int;
  pr_writes : (int * int) list;
  mutable pr_last_txn : int;
  mutable pr_done : bool;
}

(* One live migration armed partway through a run: move [rs_lo, rs_hi) to
   [rs_dst] at fraction [rs_at] of the run. [rs_no_fence] skips the t_m
   real-time barrier — the unsafe mutation control for safety experiments. *)
type reshard_spec = {
  rs_at : float;
  rs_lo : int;
  rs_hi : int;
  rs_dst : int;
  rs_no_fence : bool;
}

(* The overload-protection policy a driver applies to its cluster: all
   fields off reproduce the unprotected run byte for byte. The budget is
   given as (capacity, refill_period_us) rather than a built bucket because
   the bucket needs the run's engine, which the driver owns. *)
type flow_spec = {
  fl_admission : Sim.Station.limits option;
      (* bounded queues + shedding at every server station *)
  fl_drop_expired : bool;  (* servers drop work already past its deadline *)
  fl_hedge_us : int;  (* hedge reads still unfinished after this; 0 = off *)
  fl_budget : (int * int) option;  (* retry bucket: capacity, refill µs *)
  fl_gryff_fanout : Gryff.Protocol.read_fanout option;
      (* read fan-out policy; None keeps each protocol's default *)
}

let flow_default =
  {
    fl_admission = None;
    fl_drop_expired = false;
    fl_hedge_us = 0;
    fl_budget = None;
    fl_gryff_fanout = None;
  }

(* One record for the cross-cutting run environment every driver used to
   take as six separate optional keywords. Drivers accept [?env]; the old
   keywords survive as thin shims that override the corresponding field. *)
module Env = struct
  type t = {
    chaos : Chaos.Schedule.t option;
    disk_faults : Chaos.Audit.disk_faults option;
    failover : bool;
    trace : Obs.Trace.t;
    check : check_mode;
    reshard : reshard_spec list;
    batching : Sim.Net.policy option;
    deadline_us : int option;
    flow : flow_spec option;
  }

  let default =
    {
      chaos = None;
      disk_faults = None;
      failover = false;
      trace = Obs.Trace.disabled;
      check = `Offline;
      reshard = [];
      batching = None;
      deadline_us = None;
      flow = None;
    }

  let with_chaos s t = { t with chaos = Some s }
  let with_disk_faults d t = { t with disk_faults = Some d }
  let with_failover b t = { t with failover = b }
  let with_trace tr t = { t with trace = tr }
  let with_check c t = { t with check = c }
  let with_reshard r t = { t with reshard = r }
  let with_batching p t = { t with batching = p }

  let with_deadline_us d t =
    (match d with
    | Some d when d <= 0 ->
      invalid_arg "Harness.Env.with_deadline_us: deadline must be positive"
    | _ -> ());
    { t with deadline_us = d }

  let with_flow f t = { t with flow = f }

  (* Fold the deprecated per-driver keywords over [?env]: an explicitly
     passed keyword wins, otherwise the env field stands. Exposed so the
     shim semantics can be property-tested directly. [batching],
     [deadline_us] and [flow] predate no keyword, so they pass through. *)
  let resolve ?env ?chaos ?disk_faults ?failover ?trace ?check ?reshard () =
    let e = Option.value env ~default in
    {
      chaos = (match chaos with Some _ -> chaos | None -> e.chaos);
      disk_faults =
        (match disk_faults with Some _ -> disk_faults | None -> e.disk_faults);
      failover = Option.value failover ~default:e.failover;
      trace = Option.value trace ~default:e.trace;
      check = Option.value check ~default:e.check;
      reshard = Option.value reshard ~default:e.reshard;
      batching = e.batching;
      deadline_us = e.deadline_us;
      flow = e.flow;
    }
end

let resolve_env = Env.resolve

let apply_batching env net = Sim.Net.set_batching net env.Env.batching

(* Build the run's retry bucket (if the policy asks for one) on the run's
   engine — returned so the driver can read taken/denied after the run. *)
let flow_budget env engine =
  match env.Env.flow with
  | None -> None
  | Some f ->
    Option.map
      (fun (capacity, refill_period_us) ->
        Sim.Rpc.Budget.create engine ~capacity ~refill_period_us)
      f.fl_budget

let apply_flow_spanner env ~budget cluster =
  match env.Env.flow with
  | None -> ()
  | Some f ->
    Spanner.Cluster.set_admission cluster f.fl_admission;
    Spanner.Cluster.set_drop_expired cluster f.fl_drop_expired;
    if f.fl_hedge_us > 0 then
      Spanner.Cluster.set_hedge_us cluster f.fl_hedge_us;
    Spanner.Cluster.set_retry_budget cluster budget

let apply_flow_gryff env ~budget cluster =
  match env.Env.flow with
  | None -> ()
  | Some f ->
    Gryff.Cluster.set_admission cluster f.fl_admission;
    Gryff.Cluster.set_drop_expired cluster f.fl_drop_expired;
    if f.fl_hedge_us > 0 then Gryff.Cluster.set_hedge_us cluster f.fl_hedge_us;
    (match f.fl_gryff_fanout with
    | Some fanout -> Gryff.Cluster.set_read_fanout cluster fanout
    | None -> ());
    Gryff.Cluster.set_retry_budget cluster budget

(* Flow-control accounting — absent unless a protection is armed or fired,
   mirroring the batch.* convention. Queue-depth samples follow the ×1000
   histogram convention (see batch.size above): the printed table reads in
   whole jobs. *)
let flow_metrics reg ~armed ~budget ~stations ~expired ~shed ~abandoned
    ~hedges ~hedge_wins =
  if armed || expired > 0 || shed > 0 || abandoned > 0 || hedges > 0 then begin
    let c name v = Obs.Metrics.add (Obs.Metrics.counter reg name) v in
    c "flow.expired" expired;
    c "flow.shed" shed;
    c "flow.abandoned" abandoned;
    c "flow.hedges" hedges;
    c "flow.hedge_wins" hedge_wins;
    (match budget with
    | Some b ->
      c "flow.budget.taken" (Sim.Rpc.Budget.taken b);
      c "flow.budget.denied" (Sim.Rpc.Budget.denied b)
    | None -> ());
    let qd = Obs.Metrics.histogram reg "flow.queue_depth" in
    let sj = Obs.Metrics.histogram reg "flow.sojourn_us" in
    List.iter
      (fun st ->
        Array.iter
          (fun d -> Stats.Recorder.add qd (d * 1000))
          (Stats.Recorder.to_sorted_array (Sim.Station.queue_depths st));
        Array.iter
          (fun s -> Stats.Recorder.add sj s)
          (Stats.Recorder.to_sorted_array (Sim.Station.sojourns st)))
      stations
  end

let spanner_flow_metrics reg ~env ~budget cluster =
  let fs = Spanner.Cluster.flow_stats cluster in
  flow_metrics reg
    ~armed:(env.Env.flow <> None)
    ~budget
    ~stations:(Spanner.Cluster.stations cluster)
    ~expired:fs.Spanner.Cluster.expired ~shed:fs.Spanner.Cluster.shed
    ~abandoned:fs.Spanner.Cluster.abandoned ~hedges:fs.Spanner.Cluster.hedges
    ~hedge_wins:fs.Spanner.Cluster.hedge_wins

let gryff_flow_metrics reg ~env ~budget cluster =
  let fs = Gryff.Cluster.flow_stats cluster in
  flow_metrics reg
    ~armed:(env.Env.flow <> None)
    ~budget
    ~stations:(Gryff.Cluster.stations cluster)
    ~expired:fs.Gryff.Cluster.expired ~shed:fs.Gryff.Cluster.shed
    ~abandoned:fs.Gryff.Cluster.abandoned ~hedges:fs.Gryff.Cluster.hedges
    ~hedge_wins:fs.Gryff.Cluster.hedge_wins

(* The paper's §6.1 wide-area Retwis experiment: partly-open clients
   (sessions at [arrival_rate_per_sec], stay probability 0.9, zero think
   time, a fresh t_min per session), Zipfian keys. *)
let spanner_wan ?(config = None) ?env ?chaos ?disk_faults ?failover ?trace
    ?check ?reshard ~mode ~theta ~n_keys ~arrival_rate_per_sec ~duration_s
    ~seed () =
  let env =
    resolve_env ?env ?chaos ?disk_faults ?failover ?trace ?check ?reshard ()
  in
  let chaos = env.Env.chaos in
  let disk_faults = env.Env.disk_faults in
  let failover = env.Env.failover in
  let trace = env.Env.trace in
  let check = env.Env.check in
  let reshard = env.Env.reshard in
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make seed in
  let dctl = Chaos.Audit.install_disk_faults disk_faults in
  Fun.protect ~finally:(fun () -> Option.iter Sim.Durable.Faults.retire dctl)
  @@ fun () ->
  let config =
    match config with Some c -> c | None -> Spanner.Config.wan3 ~mode ()
  in
  let cluster = Spanner.Cluster.create engine ~rng config in
  apply_batching env (Spanner.Cluster.net cluster);
  let budget = flow_budget env engine in
  apply_flow_spanner env ~budget cluster;
  if Obs.Trace.enabled trace then Spanner.Cluster.set_tracer cluster trace;
  if failover then
    Spanner.Cluster.enable_failover cluster
      ~rng:(Sim.Rng.make (0xfa11 + seed))
      ~until_us:(Sim.Engine.sec duration_s + Sim.Engine.sec 4.0) ();
  (* The failover fallback deadline exists to settle operations orphaned by
     a coordinator crash, not to bound normal latency — it must sit well
     above the workload's fault-free tail or deadline-aborts amplify load
     into congestion collapse. An explicit [Env.deadline_us] overrides it:
     that is the knob the overload experiments turn, with servers dropping
     already-expired work when [flow.fl_drop_expired] is armed. *)
  let deadline_us =
    match env.Env.deadline_us with
    | Some _ as d -> d
    | None -> if failover then Some 10_000_000 else None
  in
  let faults =
    arm_chaos ?chaos ~tracer:trace ?dctl
      ~on_recover:(fun ss ->
        if List.mem 0 ss then
          ignore (Place.Directory.recover (Spanner.Cluster.directory cluster)))
      ~on_slow:(fun ~site ~factor ->
        Spanner.Cluster.set_site_slowdown cluster ~site ~factor)
      ~on_slow_clear:(fun () -> Spanner.Cluster.clear_slowdowns cluster)
      ~engine ~net:(Spanner.Cluster.net cluster)
      ~tt:(Spanner.Cluster.truetime cluster) ()
  in
  let scrub =
    Chaos.Audit.arm_scrub engine ~tracer:trace ~dctl ~disk_faults ~duration_s
  in
  let online =
    match check with `Online -> Some (arm_spanner_online cluster) | _ -> None
  in
  let pending : pending_rw list ref = ref [] in
  let retwis = Workload.Retwis.create ~rng:(Sim.Rng.split rng) ~n_keys ~theta in
  let ro = Stats.Recorder.create () and rw = Stats.Recorder.create () in
  let n_sites = Array.length config.Spanner.Config.client_sites in
  let sessions : (int, Spanner.Client.t) Hashtbl.t = Hashtbl.create 1024 in
  let session_client s =
    match Hashtbl.find_opt sessions s with
    | Some c -> c
    | None ->
      let c =
        Spanner.Client.create cluster
          ~site:config.Spanner.Config.client_sites.(s mod n_sites)
      in
      Hashtbl.add sessions s c;
      c
  in
  let until = Sim.Engine.sec duration_s in
  let warmup = Sim.Engine.sec (duration_s /. 10.0) in
  List.iter
    (fun spec ->
      Sim.Engine.schedule engine ~kind:"place.reshard"
        ~after:(int_of_float (spec.rs_at *. float_of_int until))
        (fun () ->
          Spanner.Cluster.migrate ~no_fence:spec.rs_no_fence cluster
            ~lo:spec.rs_lo ~hi:spec.rs_hi ~dst:spec.rs_dst (fun _ -> ())))
    reshard;
  let body ~client k =
    let c = session_client client in
    let txn = Workload.Retwis.sample retwis in
    let t0 = Sim.Engine.now engine in
    let finish recorder () =
      if t0 >= warmup then Stats.Recorder.add recorder (Sim.Engine.now engine - t0);
      k ()
    in
    if Workload.Retwis.is_read_only txn then
      Spanner.Client.ro ?deadline_us c ~keys:txn.Workload.Retwis.read_keys
        (fun _ -> finish ro ())
    else if chaos = None then
      Spanner.Client.rw ?deadline_us c ~read_keys:txn.Workload.Retwis.read_keys
        ~write_keys:txn.Workload.Retwis.write_keys (fun _ -> finish rw ())
    else begin
      (* Same fresh values Client.rw would pick; tracked so an attempt whose
         acknowledgement a fault swallows can be swept into the history. *)
      let writes =
        List.map
          (fun key -> (key, Spanner.Cluster.fresh_value cluster))
          txn.Workload.Retwis.write_keys
      in
      let info =
        {
          pr_proc = Spanner.Client.proc c;
          pr_inv = t0;
          pr_writes = writes;
          pr_last_txn = -1;
          pr_done = false;
        }
      in
      pending := info :: !pending;
      Spanner.Client.rw_kv ?deadline_us c
        ~on_attempt:(fun id -> info.pr_last_txn <- id)
        ~read_keys:txn.Workload.Retwis.read_keys ~writes
        (fun _ ->
          info.pr_done <- true;
          finish rw ())
    end
  in
  ignore
    (Workload.Client_model.partly_open engine ~rng:(Sim.Rng.split rng)
       ~arrival_rate_per_sec ~stay:0.9 ~body ~until ());
  Sim.Engine.run ~max_events:600_000_000 engine;
  List.iter
    (fun info ->
      if (not info.pr_done) && info.pr_last_txn >= 0 then
        ignore
          (Chaos.Audit.sweep_spanner_txn cluster ~proc:info.pr_proc
             ~inv:info.pr_inv ~writes:info.pr_writes ~txn:info.pr_last_txn))
    (List.rev !pending);
  let reg = spanner_metrics ~faults:!faults ~failover cluster in
  spanner_flow_metrics reg ~env ~budget cluster;
  durable_metrics reg ~dctl ~scrub;
  let t0_check = Sys.time () in
  let verdict =
    match (check, online) with
    | `No_check, _ -> Run.Unknown "checking disabled"
    | `Online, Some oc -> Rss_core.Check_online.result oc
    | `Online, None -> assert false
    | `Offline, _ -> verdict_of_result (Spanner.Cluster.check_history cluster)
  in
  Obs.Metrics.set_gauge reg "check.finish_s" (Sys.time () -. t0_check);
  (match online with
  | Some oc ->
    online_counters reg
      ~added:(Rss_core.Check_online.n_added oc)
      ~work:(Rss_core.Check_online.work oc)
      ~max_displacement:(Rss_core.Check_online.max_displacement oc)
  | None -> ());
  {
    Run.latencies = [ ("ro", ro); ("rw", rw) ];
    metrics = Obs.Metrics.snapshot reg;
    check = verdict;
    records = Run.Spanner_txns (Spanner.Cluster.records cluster);
    duration_us = Sim.Engine.now engine;
  }

(* The §6.2 single-data-center saturation experiment: closed-loop clients,
   uniform keys, ε = 0, per-message CPU cost at shard leaders. *)
let spanner_dc ?env ?chaos ?trace ?check ~mode ~n_shards ~service_time_us
    ~n_clients ~n_keys ~duration_s ~seed () =
  let env = resolve_env ?env ?chaos ?trace ?check () in
  let chaos = env.Env.chaos in
  let trace = env.Env.trace in
  let check = env.Env.check in
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make seed in
  let config = Spanner.Config.single_dc ~mode ~n_shards ~service_time_us () in
  let cluster = Spanner.Cluster.create engine ~rng config in
  apply_batching env (Spanner.Cluster.net cluster);
  let budget = flow_budget env engine in
  apply_flow_spanner env ~budget cluster;
  let deadline_us = env.Env.deadline_us in
  if Obs.Trace.enabled trace then Spanner.Cluster.set_tracer cluster trace;
  let faults =
    arm_chaos ?chaos ~tracer:trace ~engine ~net:(Spanner.Cluster.net cluster)
      ~on_slow:(fun ~site ~factor ->
        Spanner.Cluster.set_site_slowdown cluster ~site ~factor)
      ~on_slow_clear:(fun () -> Spanner.Cluster.clear_slowdowns cluster)
      ~tt:(Spanner.Cluster.truetime cluster) ()
  in
  let online =
    match check with `Online -> Some (arm_spanner_online cluster) | _ -> None
  in
  let pending : pending_rw list ref = ref [] in
  let retwis = Workload.Retwis.create ~rng:(Sim.Rng.split rng) ~n_keys ~theta:0.0 in
  let lat = Stats.Recorder.create () in
  let completed = ref 0 in
  let until = Sim.Engine.sec duration_s in
  let warmup = Sim.Engine.sec (duration_s /. 5.0) in
  let clients = Array.init n_clients (fun _ -> Spanner.Client.create cluster ~site:0) in
  Workload.Client_model.closed_loop engine ~n_clients
    ~body:(fun ~client k ->
      let c = clients.(client) in
      let txn = Workload.Retwis.sample retwis in
      let t0 = Sim.Engine.now engine in
      let finish () =
        if t0 >= warmup && t0 < until then begin
          incr completed;
          Stats.Recorder.add lat (Sim.Engine.now engine - t0)
        end;
        k ()
      in
      if Workload.Retwis.is_read_only txn then
        Spanner.Client.ro ?deadline_us c ~keys:txn.Workload.Retwis.read_keys
          (fun _ -> finish ())
      else if chaos = None then
        Spanner.Client.rw ?deadline_us c ~read_keys:txn.Workload.Retwis.read_keys
          ~write_keys:txn.Workload.Retwis.write_keys (fun _ -> finish ())
      else begin
        let writes =
          List.map
            (fun key -> (key, Spanner.Cluster.fresh_value cluster))
            txn.Workload.Retwis.write_keys
        in
        let info =
          { pr_proc = Spanner.Client.proc c; pr_inv = t0; pr_writes = writes;
            pr_last_txn = -1; pr_done = false }
        in
        pending := info :: !pending;
        Spanner.Client.rw_kv ?deadline_us c
          ~on_attempt:(fun id -> info.pr_last_txn <- id)
          ~read_keys:txn.Workload.Retwis.read_keys ~writes
          (fun _ ->
            info.pr_done <- true;
            finish ())
      end)
    ~until ();
  Sim.Engine.run ~max_events:600_000_000 engine;
  List.iter
    (fun info ->
      if (not info.pr_done) && info.pr_last_txn >= 0 then
        ignore
          (Chaos.Audit.sweep_spanner_txn cluster ~proc:info.pr_proc
             ~inv:info.pr_inv ~writes:info.pr_writes ~txn:info.pr_last_txn))
    (List.rev !pending);
  let measured_us = until - warmup in
  let reg = spanner_metrics ~faults:!faults ~failover:false cluster in
  spanner_flow_metrics reg ~env ~budget cluster;
  let stats = Spanner.Cluster.stats cluster in
  let total_txns =
    stats.Spanner.Cluster.rw_committed + stats.Spanner.Cluster.ro_count
  in
  Obs.Metrics.set_gauge reg "throughput_tps"
    (Stats.Summary.throughput ~count:!completed ~duration_us:measured_us);
  Obs.Metrics.set_gauge reg "p50_ms"
    (match Stats.Recorder.percentile_ms_opt lat 50.0 with
    | Some m -> m
    | None -> Float.nan);
  Obs.Metrics.set_gauge reg "msgs_per_txn"
    (if total_txns = 0 then 0.0
     else
       float_of_int stats.Spanner.Cluster.messages /. float_of_int total_txns);
  let t0_check = Sys.time () in
  let verdict =
    match (check, online) with
    | `No_check, _ -> Run.Unknown "checking disabled"
    | `Online, Some oc -> Rss_core.Check_online.result oc
    | `Online, None -> assert false
    | `Offline, _ -> verdict_of_result (Spanner.Cluster.check_history cluster)
  in
  Obs.Metrics.set_gauge reg "check.finish_s" (Sys.time () -. t0_check);
  (match online with
  | Some oc ->
    online_counters reg
      ~added:(Rss_core.Check_online.n_added oc)
      ~work:(Rss_core.Check_online.work oc)
      ~max_displacement:(Rss_core.Check_online.max_displacement oc)
  | None -> ());
  {
    Run.latencies = [ ("txn", lat) ];
    metrics = Obs.Metrics.snapshot reg;
    check = verdict;
    records = Run.Spanner_txns (Spanner.Cluster.records cluster);
    duration_us = Sim.Engine.now engine;
  }

type pending_write = {
  pw_proc : int;
  pw_inv : int;
  pw_key : int;
  pw_value : int;
  mutable pw_cs : Gryff.Carstamp.t option;
  mutable pw_done : bool;
}

let sweep_gryff cluster pending =
  List.iter
    (fun info ->
      match (info.pw_done, info.pw_cs) with
      | false, Some cs ->
        Chaos.Audit.sweep_gryff_write cluster ~proc:info.pw_proc
          ~inv:info.pw_inv ~key:info.pw_key ~value:info.pw_value ~cs
      | _ -> ())
    (List.rev pending)

(* The §7.2 YCSB experiment: 16 closed-loop clients spread over five
   regions, tunable conflict percentage and write ratio. [client_sites]
   restricts where clients run (e.g. off a gray node); the default spreads
   them over all five regions exactly as before. *)
let gryff_wan ?(n_clients = 16) ?(client_sites = [| 0; 1; 2; 3; 4 |]) ?env
    ?chaos ?disk_faults ?failover ?trace ?check ~mode ~conflict ~write_ratio
    ~n_keys ~duration_s ~seed () =
  let env = resolve_env ?env ?chaos ?disk_faults ?failover ?trace ?check () in
  let chaos = env.Env.chaos in
  let disk_faults = env.Env.disk_faults in
  let failover = env.Env.failover in
  let trace = env.Env.trace in
  let check = env.Env.check in
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make seed in
  (* Gryff keeps no durable stores; the control registers nothing, but
     accepting the spec keeps chaos batteries uniform across protocols. *)
  let dctl = Chaos.Audit.install_disk_faults disk_faults in
  Fun.protect ~finally:(fun () -> Option.iter Sim.Durable.Faults.retire dctl)
  @@ fun () ->
  let config = Gryff.Config.wan5 ~mode () in
  let cluster = Gryff.Cluster.create engine ~rng config in
  apply_batching env (Gryff.Cluster.net cluster);
  let budget = flow_budget env engine in
  apply_flow_gryff env ~budget cluster;
  let deadline_us = env.Env.deadline_us in
  if Obs.Trace.enabled trace then Gryff.Cluster.set_tracer cluster trace;
  if failover then
    Gryff.Cluster.enable_retrans cluster ~rng:(Sim.Rng.make (0xfa11 + seed)) ();
  let faults =
    arm_chaos ?chaos ~tracer:trace ?dctl ~engine
      ~on_slow:(fun ~site ~factor ->
        Gryff.Cluster.set_site_slowdown cluster ~site ~factor)
      ~on_slow_clear:(fun () -> Gryff.Cluster.clear_slowdowns cluster)
      ~net:(Gryff.Cluster.net cluster) ()
  in
  let scrub =
    Chaos.Audit.arm_scrub engine ~tracer:trace ~dctl ~disk_faults ~duration_s
  in
  let online =
    match check with `Online -> Some (arm_gryff_online cluster) | _ -> None
  in
  let pending : pending_write list ref = ref [] in
  let ycsb = Workload.Ycsb.create ~rng:(Sim.Rng.split rng) ~n_keys ~write_ratio ~conflict in
  let read_lat = Stats.Recorder.create () and write_lat = Stats.Recorder.create () in
  let until = Sim.Engine.sec duration_s in
  let warmup = Sim.Engine.sec (duration_s /. 10.0) in
  let clients =
    Array.init n_clients (fun i ->
        Gryff.Client.create cluster
          ~site:client_sites.(i mod Array.length client_sites))
  in
  Workload.Client_model.closed_loop engine ~n_clients
    ~body:(fun ~client k ->
      let c = clients.(client) in
      let op = Workload.Ycsb.sample ycsb in
      let t0 = Sim.Engine.now engine in
      let finish recorder () =
        if t0 >= warmup then Stats.Recorder.add recorder (Sim.Engine.now engine - t0);
        k ()
      in
      if op.Workload.Ycsb.is_write then begin
        let value = Gryff.Cluster.fresh_value cluster in
        if chaos = None then
          Gryff.Client.write ?deadline_us c ~key:op.Workload.Ycsb.key ~value
            (fun _ -> finish write_lat ())
        else begin
          let info =
            { pw_proc = Gryff.Client.proc c; pw_inv = t0;
              pw_key = op.Workload.Ycsb.key; pw_value = value;
              pw_cs = None; pw_done = false }
          in
          pending := info :: !pending;
          Gryff.Client.write ?deadline_us c
            ~on_apply:(fun cs -> info.pw_cs <- Some cs)
            ~key:op.Workload.Ycsb.key ~value:info.pw_value
            (fun _ ->
              info.pw_done <- true;
              finish write_lat ())
        end
      end
      else
        Gryff.Client.read ?deadline_us c ~key:op.Workload.Ycsb.key (fun _ ->
            finish read_lat ()))
    ~until ();
  Sim.Engine.run ~max_events:600_000_000 engine;
  sweep_gryff cluster !pending;
  let reg = gryff_metrics ~faults:!faults ~failover cluster in
  gryff_flow_metrics reg ~env ~budget cluster;
  durable_metrics reg ~dctl ~scrub;
  let t0_check = Sys.time () in
  let verdict =
    match (check, online) with
    | `No_check, _ -> Run.Unknown "checking disabled"
    | `Online, Some tbl -> gryff_online_result tbl
    | `Online, None -> assert false
    | `Offline, _ -> verdict_of_result (Gryff.Cluster.check_history cluster)
  in
  Obs.Metrics.set_gauge reg "check.finish_s" (Sys.time () -. t0_check);
  (match online with
  | Some tbl ->
    let added, work, max_displacement = gryff_online_stats tbl in
    online_counters reg ~added ~work ~max_displacement
  | None -> ());
  {
    Run.latencies = [ ("read", read_lat); ("write", write_lat) ];
    metrics = Obs.Metrics.snapshot reg;
    check = verdict;
    records = Run.Gryff_ops (Gryff.Cluster.records cluster);
    duration_us = Sim.Engine.now engine;
  }

(* The §7.4 overhead experiment: in-DC latencies, per-message CPU cost. *)
let gryff_dc ?env ?chaos ?trace ?check ~mode ~service_time_us ~n_clients
    ~conflict ~write_ratio ~n_keys ~duration_s ~seed () =
  let env = resolve_env ?env ?chaos ?trace ?check () in
  let chaos = env.Env.chaos in
  let trace = env.Env.trace in
  let check = env.Env.check in
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make seed in
  let config = Gryff.Config.single_dc ~mode ~service_time_us () in
  let cluster = Gryff.Cluster.create engine ~rng config in
  apply_batching env (Gryff.Cluster.net cluster);
  let budget = flow_budget env engine in
  apply_flow_gryff env ~budget cluster;
  let deadline_us = env.Env.deadline_us in
  if Obs.Trace.enabled trace then Gryff.Cluster.set_tracer cluster trace;
  let faults =
    arm_chaos ?chaos ~tracer:trace ~engine
      ~on_slow:(fun ~site ~factor ->
        Gryff.Cluster.set_site_slowdown cluster ~site ~factor)
      ~on_slow_clear:(fun () -> Gryff.Cluster.clear_slowdowns cluster)
      ~net:(Gryff.Cluster.net cluster) ()
  in
  let online =
    match check with `Online -> Some (arm_gryff_online cluster) | _ -> None
  in
  let pending : pending_write list ref = ref [] in
  let ycsb = Workload.Ycsb.create ~rng:(Sim.Rng.split rng) ~n_keys ~write_ratio ~conflict in
  let lat = Stats.Recorder.create () in
  let completed = ref 0 in
  let until = Sim.Engine.sec duration_s in
  let warmup = Sim.Engine.sec (duration_s /. 5.0) in
  let clients = Array.init n_clients (fun i -> Gryff.Client.create cluster ~site:(i mod 5)) in
  Workload.Client_model.closed_loop engine ~n_clients
    ~body:(fun ~client k ->
      let c = clients.(client) in
      let op = Workload.Ycsb.sample ycsb in
      let t0 = Sim.Engine.now engine in
      let finish () =
        if t0 >= warmup && t0 < until then begin
          incr completed;
          Stats.Recorder.add lat (Sim.Engine.now engine - t0)
        end;
        k ()
      in
      if op.Workload.Ycsb.is_write then begin
        let value = Gryff.Cluster.fresh_value cluster in
        if chaos = None then
          Gryff.Client.write ?deadline_us c ~key:op.Workload.Ycsb.key ~value
            (fun _ -> finish ())
        else begin
          let info =
            { pw_proc = Gryff.Client.proc c; pw_inv = t0;
              pw_key = op.Workload.Ycsb.key; pw_value = value;
              pw_cs = None; pw_done = false }
          in
          pending := info :: !pending;
          Gryff.Client.write ?deadline_us c
            ~on_apply:(fun cs -> info.pw_cs <- Some cs)
            ~key:op.Workload.Ycsb.key ~value:info.pw_value
            (fun _ ->
              info.pw_done <- true;
              finish ())
        end
      end
      else
        Gryff.Client.read ?deadline_us c ~key:op.Workload.Ycsb.key (fun _ ->
            finish ()))
    ~until ();
  Sim.Engine.run ~max_events:600_000_000 engine;
  sweep_gryff cluster !pending;
  let measured_us = until - warmup in
  let reg = gryff_metrics ~faults:!faults ~failover:false cluster in
  gryff_flow_metrics reg ~env ~budget cluster;
  Obs.Metrics.set_gauge reg "throughput_tps"
    (Stats.Summary.throughput ~count:!completed ~duration_us:measured_us);
  Obs.Metrics.set_gauge reg "p50_ms"
    (match Stats.Recorder.percentile_ms_opt lat 50.0 with
    | Some m -> m
    | None -> Float.nan);
  let t0_check = Sys.time () in
  let verdict =
    match (check, online) with
    | `No_check, _ -> Run.Unknown "checking disabled"
    | `Online, Some tbl -> gryff_online_result tbl
    | `Online, None -> assert false
    | `Offline, _ -> verdict_of_result (Gryff.Cluster.check_history cluster)
  in
  Obs.Metrics.set_gauge reg "check.finish_s" (Sys.time () -. t0_check);
  (match online with
  | Some tbl ->
    let added, work, max_displacement = gryff_online_stats tbl in
    online_counters reg ~added ~work ~max_displacement
  | None -> ());
  {
    Run.latencies = [ ("op", lat) ];
    metrics = Obs.Metrics.snapshot reg;
    check = verdict;
    records = Run.Gryff_ops (Gryff.Cluster.records cluster);
    duration_us = Sim.Engine.now engine;
  }

let report_check name = function
  | Run.Pass -> ()
  | Run.Fail m ->
    Fmt.pr "  !! %s: consistency violation in run history: %s@." name m
  | Run.Unknown m ->
    Fmt.pr "  ?? %s: consistency verdict unknown: %s@." name m
