(* Shared experiment drivers for the benchmark suite: each returns latency
   recorders and run statistics, and verifies the run's history against its
   consistency model (a bench that produced an inconsistent run would be
   measuring a broken system). *)

(* Fault accounting for chaos-enabled runs (all zero without a schedule). *)
type fault_stats = {
  faults_injected : int;
  dropped_crash : int;
  dropped_partition : int;
  dropped_loss : int;
  duplicated : int;
  delayed : int;
}

let no_faults =
  {
    faults_injected = 0;
    dropped_crash = 0;
    dropped_partition = 0;
    dropped_loss = 0;
    duplicated = 0;
    delayed = 0;
  }

let fault_stats_of_net ~faults net =
  {
    faults_injected = faults;
    dropped_crash = Sim.Net.dropped_crash net;
    dropped_partition = Sim.Net.dropped_partition net;
    dropped_loss = Sim.Net.dropped_loss net;
    duplicated = Sim.Net.messages_duplicated net;
    delayed = Sim.Net.messages_delayed net;
  }

let print_fault_table fs =
  Stats.Summary.print_count_table ~header:"faults"
    ~rows:
      [
        ("events injected", fs.faults_injected);
        ("dropped (crash)", fs.dropped_crash);
        ("dropped (partition)", fs.dropped_partition);
        ("dropped (loss)", fs.dropped_loss);
        ("duplicated", fs.duplicated);
        ("delayed", fs.delayed);
      ]

(* Failover accounting for runs with [?failover:true] (all zero otherwise). *)
type failover_stats = {
  view_changes : int;
  rpc_retries : int;
  in_doubt_resolved : int;
  max_election_us : int;
}

let no_failover =
  { view_changes = 0; rpc_retries = 0; in_doubt_resolved = 0; max_election_us = 0 }

let print_failover_table fs =
  Stats.Summary.print_count_table ~header:"failover"
    ~rows:
      [
        ("view changes", fs.view_changes);
        ("rpc retries", fs.rpc_retries);
        ("in-doubt resolved", fs.in_doubt_resolved);
        ("max election (us)", fs.max_election_us);
      ]

(* Arm a chaos schedule on the run's engine; returns the injected-event
   counter to read after the run. *)
let arm_chaos ?chaos ~engine ~net ?tt () =
  match chaos with
  | None -> ref 0
  | Some schedule ->
    let faults = ref 0 in
    ignore
      (Chaos.Schedule.apply schedule ~engine ~net ?tt
         ~on_fault:(fun _ -> incr faults)
         ());
    faults

type spanner_run = {
  sp_ro : Stats.Recorder.t;
  sp_rw : Stats.Recorder.t;
  sp_stats : Spanner.Cluster.stats;
  sp_committed : int;
  sp_duration_us : int;
  sp_check : (unit, string) result;
  sp_records : Rss_core.Witness.txn array;
  sp_faults : fault_stats;
  sp_failover : failover_stats;
}

(* Chaos runs must sweep committed-but-unacknowledged attempts into the
   history before checking it (see Chaos.Audit); both trackers below record
   via the audit's shared sweep convention. *)
type pending_rw = {
  pr_proc : int;
  pr_inv : int;
  pr_writes : (int * int) list;
  mutable pr_last_txn : int;
  mutable pr_done : bool;
}

(* The paper's §6.1 wide-area Retwis experiment: partly-open clients
   (sessions at [arrival_rate_per_sec], stay probability 0.9, zero think
   time, a fresh t_min per session), Zipfian keys. *)
let spanner_wan ?(config = None) ?chaos ?(failover = false) ~mode ~theta
    ~n_keys ~arrival_rate_per_sec ~duration_s ~seed () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make seed in
  let config =
    match config with Some c -> c | None -> Spanner.Config.wan3 ~mode ()
  in
  let cluster = Spanner.Cluster.create engine ~rng config in
  if failover then
    Spanner.Cluster.enable_failover cluster
      ~rng:(Sim.Rng.make (0xfa11 + seed))
      ~until_us:(Sim.Engine.sec duration_s + Sim.Engine.sec 4.0) ();
  (* The deadline exists to settle operations orphaned by a coordinator
     crash, not to bound normal latency — it must sit well above the
     workload's fault-free tail or deadline-aborts amplify load into
     congestion collapse. *)
  let deadline_us = if failover then Some 10_000_000 else None in
  let faults =
    arm_chaos ?chaos ~engine ~net:(Spanner.Cluster.net cluster)
      ~tt:(Spanner.Cluster.truetime cluster) ()
  in
  let pending : pending_rw list ref = ref [] in
  let retwis = Workload.Retwis.create ~rng:(Sim.Rng.split rng) ~n_keys ~theta in
  let ro = Stats.Recorder.create () and rw = Stats.Recorder.create () in
  let n_sites = Array.length config.Spanner.Config.client_sites in
  let sessions : (int, Spanner.Client.t) Hashtbl.t = Hashtbl.create 1024 in
  let session_client s =
    match Hashtbl.find_opt sessions s with
    | Some c -> c
    | None ->
      let c =
        Spanner.Client.create cluster
          ~site:config.Spanner.Config.client_sites.(s mod n_sites)
      in
      Hashtbl.add sessions s c;
      c
  in
  let until = Sim.Engine.sec duration_s in
  let warmup = Sim.Engine.sec (duration_s /. 10.0) in
  let body ~client k =
    let c = session_client client in
    let txn = Workload.Retwis.sample retwis in
    let t0 = Sim.Engine.now engine in
    let finish recorder () =
      if t0 >= warmup then Stats.Recorder.add recorder (Sim.Engine.now engine - t0);
      k ()
    in
    if Workload.Retwis.is_read_only txn then
      Spanner.Client.ro ?deadline_us c ~keys:txn.Workload.Retwis.read_keys
        (fun _ -> finish ro ())
    else if chaos = None then
      Spanner.Client.rw ?deadline_us c ~read_keys:txn.Workload.Retwis.read_keys
        ~write_keys:txn.Workload.Retwis.write_keys (fun _ -> finish rw ())
    else begin
      (* Same fresh values Client.rw would pick; tracked so an attempt whose
         acknowledgement a fault swallows can be swept into the history. *)
      let writes =
        List.map
          (fun key -> (key, Spanner.Cluster.fresh_value cluster))
          txn.Workload.Retwis.write_keys
      in
      let info =
        {
          pr_proc = Spanner.Client.proc c;
          pr_inv = t0;
          pr_writes = writes;
          pr_last_txn = -1;
          pr_done = false;
        }
      in
      pending := info :: !pending;
      Spanner.Client.rw_kv ?deadline_us c
        ~on_attempt:(fun id -> info.pr_last_txn <- id)
        ~read_keys:txn.Workload.Retwis.read_keys ~writes
        (fun _ ->
          info.pr_done <- true;
          finish rw ())
    end
  in
  ignore
    (Workload.Client_model.partly_open engine ~rng:(Sim.Rng.split rng)
       ~arrival_rate_per_sec ~stay:0.9 ~body ~until ());
  Sim.Engine.run ~max_events:600_000_000 engine;
  List.iter
    (fun info ->
      if (not info.pr_done) && info.pr_last_txn >= 0 then
        ignore
          (Chaos.Audit.sweep_spanner_txn cluster ~proc:info.pr_proc
             ~inv:info.pr_inv ~writes:info.pr_writes ~txn:info.pr_last_txn))
    (List.rev !pending);
  let stats = Spanner.Cluster.stats cluster in
  {
    sp_ro = ro;
    sp_rw = rw;
    sp_stats = stats;
    sp_committed = stats.Spanner.Cluster.rw_committed + stats.Spanner.Cluster.ro_count;
    sp_duration_us = Sim.Engine.now engine;
    sp_check = Spanner.Cluster.check_history cluster;
    sp_records = Spanner.Cluster.records cluster;
    sp_faults = fault_stats_of_net ~faults:!faults (Spanner.Cluster.net cluster);
    sp_failover =
      (if failover then
         let fs = Spanner.Cluster.failover_stats cluster in
         {
           view_changes = fs.Spanner.Cluster.view_changes;
           rpc_retries = fs.Spanner.Cluster.rpc_retries;
           in_doubt_resolved = fs.Spanner.Cluster.in_doubt_resolved;
           max_election_us = fs.Spanner.Cluster.max_election_us;
         }
       else no_failover);
  }

(* The §6.2 single-data-center saturation experiment: closed-loop clients,
   uniform keys, ε = 0, per-message CPU cost at shard leaders. *)
let spanner_dc ?chaos ~mode ~n_shards ~service_time_us ~n_clients ~n_keys
    ~duration_s ~seed () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make seed in
  let config = Spanner.Config.single_dc ~mode ~n_shards ~service_time_us () in
  let cluster = Spanner.Cluster.create engine ~rng config in
  let faults =
    arm_chaos ?chaos ~engine ~net:(Spanner.Cluster.net cluster)
      ~tt:(Spanner.Cluster.truetime cluster) ()
  in
  ignore faults;
  let pending : pending_rw list ref = ref [] in
  let retwis = Workload.Retwis.create ~rng:(Sim.Rng.split rng) ~n_keys ~theta:0.0 in
  let lat = Stats.Recorder.create () in
  let completed = ref 0 in
  let until = Sim.Engine.sec duration_s in
  let warmup = Sim.Engine.sec (duration_s /. 5.0) in
  let clients = Array.init n_clients (fun _ -> Spanner.Client.create cluster ~site:0) in
  Workload.Client_model.closed_loop engine ~n_clients
    ~body:(fun ~client k ->
      let c = clients.(client) in
      let txn = Workload.Retwis.sample retwis in
      let t0 = Sim.Engine.now engine in
      let finish () =
        if t0 >= warmup && t0 < until then begin
          incr completed;
          Stats.Recorder.add lat (Sim.Engine.now engine - t0)
        end;
        k ()
      in
      if Workload.Retwis.is_read_only txn then
        Spanner.Client.ro c ~keys:txn.Workload.Retwis.read_keys (fun _ -> finish ())
      else if chaos = None then
        Spanner.Client.rw c ~read_keys:txn.Workload.Retwis.read_keys
          ~write_keys:txn.Workload.Retwis.write_keys (fun _ -> finish ())
      else begin
        let writes =
          List.map
            (fun key -> (key, Spanner.Cluster.fresh_value cluster))
            txn.Workload.Retwis.write_keys
        in
        let info =
          { pr_proc = Spanner.Client.proc c; pr_inv = t0; pr_writes = writes;
            pr_last_txn = -1; pr_done = false }
        in
        pending := info :: !pending;
        Spanner.Client.rw_kv c
          ~on_attempt:(fun id -> info.pr_last_txn <- id)
          ~read_keys:txn.Workload.Retwis.read_keys ~writes
          (fun _ ->
            info.pr_done <- true;
            finish ())
      end)
    ~until ();
  Sim.Engine.run ~max_events:600_000_000 engine;
  List.iter
    (fun info ->
      if (not info.pr_done) && info.pr_last_txn >= 0 then
        ignore
          (Chaos.Audit.sweep_spanner_txn cluster ~proc:info.pr_proc
             ~inv:info.pr_inv ~writes:info.pr_writes ~txn:info.pr_last_txn))
    (List.rev !pending);
  let measured_us = until - warmup in
  let throughput = Stats.Summary.throughput ~count:!completed ~duration_us:measured_us in
  let median = if Stats.Recorder.is_empty lat then 0.0 else Stats.Recorder.percentile_ms lat 50.0 in
  let stats = Spanner.Cluster.stats cluster in
  let total_txns = stats.Spanner.Cluster.rw_committed + stats.Spanner.Cluster.ro_count in
  let msgs_per_txn =
    if total_txns = 0 then 0.0
    else float_of_int stats.Spanner.Cluster.messages /. float_of_int total_txns
  in
  (throughput, median, msgs_per_txn, Spanner.Cluster.check_history cluster)

type gryff_run = {
  gr_read : Stats.Recorder.t;
  gr_write : Stats.Recorder.t;
  gr_stats : Gryff.Cluster.stats;
  gr_duration_us : int;
  gr_check : (unit, string) result;
  gr_faults : fault_stats;
  gr_failover : failover_stats;
}

type pending_write = {
  pw_proc : int;
  pw_inv : int;
  pw_key : int;
  pw_value : int;
  mutable pw_cs : Gryff.Carstamp.t option;
  mutable pw_done : bool;
}

let sweep_gryff cluster pending =
  List.iter
    (fun info ->
      match (info.pw_done, info.pw_cs) with
      | false, Some cs ->
        Chaos.Audit.sweep_gryff_write cluster ~proc:info.pw_proc
          ~inv:info.pw_inv ~key:info.pw_key ~value:info.pw_value ~cs
      | _ -> ())
    (List.rev pending)

(* The §7.2 YCSB experiment: 16 closed-loop clients spread over five
   regions, tunable conflict percentage and write ratio. *)
let gryff_wan ?(n_clients = 16) ?chaos ?(failover = false) ~mode ~conflict
    ~write_ratio ~n_keys ~duration_s ~seed () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make seed in
  let config = Gryff.Config.wan5 ~mode () in
  let cluster = Gryff.Cluster.create engine ~rng config in
  if failover then
    Gryff.Cluster.enable_retrans cluster ~rng:(Sim.Rng.make (0xfa11 + seed)) ();
  let faults = arm_chaos ?chaos ~engine ~net:(Gryff.Cluster.net cluster) () in
  let pending : pending_write list ref = ref [] in
  let ycsb = Workload.Ycsb.create ~rng:(Sim.Rng.split rng) ~n_keys ~write_ratio ~conflict in
  let read_lat = Stats.Recorder.create () and write_lat = Stats.Recorder.create () in
  let next_val = ref 0 in
  let until = Sim.Engine.sec duration_s in
  let warmup = Sim.Engine.sec (duration_s /. 10.0) in
  let clients = Array.init n_clients (fun i -> Gryff.Client.create cluster ~site:(i mod 5)) in
  Workload.Client_model.closed_loop engine ~n_clients
    ~body:(fun ~client k ->
      let c = clients.(client) in
      let op = Workload.Ycsb.sample ycsb in
      let t0 = Sim.Engine.now engine in
      let finish recorder () =
        if t0 >= warmup then Stats.Recorder.add recorder (Sim.Engine.now engine - t0);
        k ()
      in
      if op.Workload.Ycsb.is_write then begin
        incr next_val;
        if chaos = None then
          Gryff.Client.write c ~key:op.Workload.Ycsb.key ~value:!next_val
            (fun _ -> finish write_lat ())
        else begin
          let info =
            { pw_proc = Gryff.Client.proc c; pw_inv = t0;
              pw_key = op.Workload.Ycsb.key; pw_value = !next_val;
              pw_cs = None; pw_done = false }
          in
          pending := info :: !pending;
          Gryff.Client.write c
            ~on_apply:(fun cs -> info.pw_cs <- Some cs)
            ~key:op.Workload.Ycsb.key ~value:info.pw_value
            (fun _ ->
              info.pw_done <- true;
              finish write_lat ())
        end
      end
      else Gryff.Client.read c ~key:op.Workload.Ycsb.key (fun _ -> finish read_lat ()))
    ~until ();
  Sim.Engine.run ~max_events:600_000_000 engine;
  sweep_gryff cluster !pending;
  {
    gr_read = read_lat;
    gr_write = write_lat;
    gr_stats = Gryff.Cluster.stats cluster;
    gr_duration_us = Sim.Engine.now engine;
    gr_check = Gryff.Cluster.check_history cluster;
    gr_faults = fault_stats_of_net ~faults:!faults (Gryff.Cluster.net cluster);
    gr_failover =
      (if failover then
         let rs = Gryff.Cluster.retrans_stats cluster in
         {
           no_failover with
           rpc_retries = rs.Gryff.Cluster.rpc_retries;
         }
       else no_failover);
  }

(* The §7.4 overhead experiment: in-DC latencies, per-message CPU cost. *)
let gryff_dc ?chaos ~mode ~service_time_us ~n_clients ~conflict ~write_ratio
    ~n_keys ~duration_s ~seed () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make seed in
  let config = Gryff.Config.single_dc ~mode ~service_time_us () in
  let cluster = Gryff.Cluster.create engine ~rng config in
  let faults = arm_chaos ?chaos ~engine ~net:(Gryff.Cluster.net cluster) () in
  ignore faults;
  let pending : pending_write list ref = ref [] in
  let ycsb = Workload.Ycsb.create ~rng:(Sim.Rng.split rng) ~n_keys ~write_ratio ~conflict in
  let lat = Stats.Recorder.create () in
  let completed = ref 0 in
  let next_val = ref 0 in
  let until = Sim.Engine.sec duration_s in
  let warmup = Sim.Engine.sec (duration_s /. 5.0) in
  let clients = Array.init n_clients (fun i -> Gryff.Client.create cluster ~site:(i mod 5)) in
  Workload.Client_model.closed_loop engine ~n_clients
    ~body:(fun ~client k ->
      let c = clients.(client) in
      let op = Workload.Ycsb.sample ycsb in
      let t0 = Sim.Engine.now engine in
      let finish () =
        if t0 >= warmup && t0 < until then begin
          incr completed;
          Stats.Recorder.add lat (Sim.Engine.now engine - t0)
        end;
        k ()
      in
      if op.Workload.Ycsb.is_write then begin
        incr next_val;
        if chaos = None then
          Gryff.Client.write c ~key:op.Workload.Ycsb.key ~value:!next_val
            (fun _ -> finish ())
        else begin
          let info =
            { pw_proc = Gryff.Client.proc c; pw_inv = t0;
              pw_key = op.Workload.Ycsb.key; pw_value = !next_val;
              pw_cs = None; pw_done = false }
          in
          pending := info :: !pending;
          Gryff.Client.write c
            ~on_apply:(fun cs -> info.pw_cs <- Some cs)
            ~key:op.Workload.Ycsb.key ~value:info.pw_value
            (fun _ ->
              info.pw_done <- true;
              finish ())
        end
      end
      else Gryff.Client.read c ~key:op.Workload.Ycsb.key (fun _ -> finish ()))
    ~until ();
  Sim.Engine.run ~max_events:600_000_000 engine;
  sweep_gryff cluster !pending;
  let measured_us = until - warmup in
  let throughput = Stats.Summary.throughput ~count:!completed ~duration_us:measured_us in
  let median = if Stats.Recorder.is_empty lat then 0.0 else Stats.Recorder.percentile_ms lat 50.0 in
  (throughput, median, Gryff.Cluster.check_history cluster)

let report_check name = function
  | Ok () -> ()
  | Error m -> Fmt.pr "  !! %s: consistency violation in run history: %s@." name m
