(** Load-generation client models (§6 and §7).

    - {!closed_loop}: a fixed number of clients, each issuing its next
      operation as soon as the previous one completes (plus optional think
      time) — the Gryff evaluation and the throughput experiments.
    - {!partly_open}: Schroeder et al.'s partly-open model — sessions arrive
      as a Poisson process at rate λ; after each operation a session stays
      with probability [p] (thinking for [think_us]) or departs. The paper's
      Spanner experiments use p = 0.9 (mean session length 10) and H = 0,
      with a fresh t_min per session.

    The [body] callback issues exactly one operation/transaction and invokes
    the given continuation when it completes. *)

type body = client:int -> (unit -> unit) -> unit

val closed_loop :
  Sim.Engine.t -> n_clients:int -> ?think_us:int -> body:body -> until:int ->
  unit -> unit
(** Schedules the client loops; stops issuing new operations at [until]
    (in-flight operations still run to completion when the engine drains). *)

val partly_open :
  Sim.Engine.t -> rng:Sim.Rng.t -> arrival_rate_per_sec:float -> stay:float ->
  ?think_us:int -> body:body -> until:int -> unit -> int
(** Returns a conservative upper bound on the number of sessions that will
    have been created by [until]. The [client] id passed to [body] is the
    session id (fresh per session). Raises [Invalid_argument] for a
    non-positive arrival rate or a stay probability outside [\[0, 1)]. *)
