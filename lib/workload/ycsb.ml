type op = { is_write : bool; key : int }

type t = { rng : Sim.Rng.t; n_keys : int; write_ratio : float; conflict : float }

let hot_key = 0

let create ~rng ~n_keys ~write_ratio ~conflict =
  if write_ratio < 0.0 || write_ratio > 1.0 then
    invalid_arg "Ycsb.create: write_ratio out of range";
  if conflict < 0.0 || conflict > 1.0 then
    invalid_arg "Ycsb.create: conflict out of range";
  if n_keys < 2 then invalid_arg "Ycsb.create: need at least 2 keys";
  { rng; n_keys; write_ratio; conflict }

let sample t =
  let is_write = Sim.Rng.bool t.rng t.write_ratio in
  let key =
    if Sim.Rng.bool t.rng t.conflict then hot_key
    else 1 + Sim.Rng.int t.rng (t.n_keys - 1)
  in
  { is_write; key }
