(** The YCSB-style read/write workload used by the Gryff evaluation (§7):
    single-key reads and writes with a tunable write ratio and conflict
    percentage. Following the Gryff paper's methodology, a conflicting
    operation targets the single shared hot key; non-conflicting operations
    spread uniformly over a large private keyspace, so concurrent clients
    virtually never collide on them. *)

type op = { is_write : bool; key : int }

type t

val create :
  rng:Sim.Rng.t -> n_keys:int -> write_ratio:float -> conflict:float -> t
(** [conflict] is the probability an operation targets the hot key (key 0).
    Raises [Invalid_argument] if ratios are outside [\[0, 1\]]. *)

val sample : t -> op

val hot_key : int
(** = 0 *)
