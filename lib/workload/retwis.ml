type kind = Add_user | Follow | Post_tweet | Load_timeline

type txn = { kind : kind; read_keys : int list; write_keys : int list }

type t = { rng : Sim.Rng.t; zipf : Zipf.t }

let mix =
  [ (Add_user, 0.05); (Follow, 0.15); (Post_tweet, 0.30); (Load_timeline, 0.50) ]

let kind_name = function
  | Add_user -> "add-user"
  | Follow -> "follow"
  | Post_tweet -> "post-tweet"
  | Load_timeline -> "load-timeline"

let create ~rng ~n_keys ~theta = { rng; zipf = Zipf.create ~rng ~n:n_keys ~theta }

(* Draw [n] distinct Zipfian keys. *)
let distinct_keys t n =
  let rec draw acc remaining guard =
    if remaining = 0 then acc
    else begin
      let k = Zipf.sample t.zipf in
      if List.mem k acc && guard < 100 then draw acc remaining (guard + 1)
      else draw (k :: acc) (remaining - 1) 0
    end
  in
  draw [] n 0

let sample t =
  let p = Sim.Rng.uniform t.rng in
  (* Key counts per transaction type follow TAPIR's Retwis benchmark. *)
  if p < 0.05 then
    match distinct_keys t 4 with
    | a :: rest -> { kind = Add_user; read_keys = [ a ]; write_keys = a :: rest }
    | [] -> assert false
  else if p < 0.20 then
    let keys = distinct_keys t 2 in
    { kind = Follow; read_keys = keys; write_keys = keys }
  else if p < 0.50 then
    match distinct_keys t 5 with
    | a :: b :: c :: _ as keys ->
      { kind = Post_tweet; read_keys = [ a; b; c ]; write_keys = keys }
    | _ -> assert false
  else begin
    let n = 1 + Sim.Rng.int t.rng 10 in
    { kind = Load_timeline; read_keys = distinct_keys t n; write_keys = [] }
  end

let is_read_only txn = txn.write_keys = []
