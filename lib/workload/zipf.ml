(* Rejection-inversion sampling for the Zipf distribution, after Hörmann &
   Derflinger, "Rejection-inversion to generate variates from monotone
   discrete distributions" (1996). Mirrors the structure of Apache Commons'
   RejectionInversionZipfSampler. *)

type t = {
  rng : Sim.Rng.t;
  n : int;
  theta : float;
  h_integral_x1 : float;
  h_integral_n : float;
  s : float;
}

(* (log1p x) / x, stable near 0. *)
let helper1 x =
  if Float.abs x > 1e-8 then Float.log1p x /. x
  else 1.0 -. (x /. 2.0) +. (x *. x /. 3.0) -. (x *. x *. x /. 4.0)

(* (expm1 x) / x, stable near 0. *)
let helper2 x =
  if Float.abs x > 1e-8 then Float.expm1 x /. x
  else 1.0 +. (x /. 2.0) +. (x *. x /. 6.0) +. (x *. x *. x /. 24.0)

let h_integral ~theta x =
  let log_x = log x in
  helper2 ((1.0 -. theta) *. log_x) *. log_x

let h ~theta x = exp (-.theta *. log x)

let h_integral_inverse ~theta x =
  let t = x *. (1.0 -. theta) in
  let t = if t < -1.0 then -1.0 else t in
  exp (helper1 t *. x)

let create ~rng ~n ~theta =
  if n < 1 then invalid_arg "Zipf.create: n < 1";
  if theta < 0.0 then invalid_arg "Zipf.create: negative theta";
  {
    rng;
    n;
    theta;
    h_integral_x1 = h_integral ~theta 1.5 -. 1.0;
    h_integral_n = h_integral ~theta (float_of_int n +. 0.5);
    s = 2.0 -. h_integral_inverse ~theta (h_integral ~theta 2.5 -. h ~theta 2.0);
  }

let sample t =
  if t.n = 1 then 0
  else begin
    let theta = t.theta in
    let rec loop () =
      let u =
        t.h_integral_n
        +. (Sim.Rng.uniform t.rng *. (t.h_integral_x1 -. t.h_integral_n))
      in
      let x = h_integral_inverse ~theta u in
      let k =
        let k = int_of_float (x +. 0.5) in
        if k < 1 then 1 else if k > t.n then t.n else k
      in
      if
        float_of_int k -. x <= t.s
        || u >= h_integral ~theta (float_of_int k +. 0.5) -. h ~theta (float_of_int k)
      then k - 1
      else loop ()
    in
    loop ()
  end

let n t = t.n

let theta t = t.theta
