type body = client:int -> (unit -> unit) -> unit

let closed_loop engine ~n_clients ?(think_us = 0) ~body ~until () =
  let rec loop client () =
    if Sim.Engine.now engine < until then
      body ~client (fun () ->
          if think_us = 0 then loop client ()
          else Sim.Engine.schedule engine ~after:think_us (loop client))
  in
  for client = 0 to n_clients - 1 do
    Sim.Engine.schedule engine ~after:0 (loop client)
  done

let partly_open engine ~rng ~arrival_rate_per_sec ~stay ?(think_us = 0) ~body
    ~until () =
  if arrival_rate_per_sec <= 0.0 then
    invalid_arg "Client_model.partly_open: arrival rate must be positive";
  if stay < 0.0 || stay >= 1.0 then
    invalid_arg "Client_model.partly_open: stay probability must be in [0, 1)";
  let next_session = ref 0 in
  let mean_gap_us = 1_000_000.0 /. arrival_rate_per_sec in
  let rec session_step session () =
    body ~client:session (fun () ->
        if Sim.Rng.bool rng stay && Sim.Engine.now engine < until then
          if think_us = 0 then session_step session ()
          else Sim.Engine.schedule engine ~after:think_us (session_step session))
  in
  let rec arrivals () =
    if Sim.Engine.now engine < until then begin
      let session = !next_session in
      incr next_session;
      session_step session ();
      let gap = int_of_float (Sim.Rng.exponential rng ~mean:mean_gap_us) in
      Sim.Engine.schedule engine ~after:(max 1 gap) arrivals
    end
  in
  Sim.Engine.schedule engine ~after:0 arrivals;
  (* Upper bound: arrivals cannot outpace one per microsecond. *)
  min (until + 1) (int_of_float (arrival_rate_per_sec *. Sim.Engine.to_sec until) * 4 + 16)
