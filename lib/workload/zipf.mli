(** Zipfian key sampling by rejection-inversion (Hörmann & Derflinger 1996),
    the generator the paper cites for its Retwis key distribution.

    Draws ranks from [{1..n}] with P(k) ∝ k^-θ in O(1) expected time and O(1)
    memory — no precomputed tables, so ten-million-key keyspaces cost
    nothing. θ = 0 degenerates to uniform. *)

type t

val create : rng:Sim.Rng.t -> n:int -> theta:float -> t
(** Raises [Invalid_argument] if [n < 1] or [theta < 0]. *)

val sample : t -> int
(** A 0-based key index; 0 is the hottest key. *)

val n : t -> int
val theta : t -> float
