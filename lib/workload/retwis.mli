(** The Retwis workload (§6): a Twitter-clone transaction mix over a Zipfian
    key distribution, with the paper's proportions — 5% add-user,
    15% follow/unfollow, 30% post-tweet (all read-write) and
    50% load-timeline (read-only). Key counts per transaction follow the
    TAPIR benchmark the paper's implementation reuses. *)

type kind = Add_user | Follow | Post_tweet | Load_timeline

type txn = {
  kind : kind;
  read_keys : int list;  (** keys read (also read by RW transactions) *)
  write_keys : int list;  (** keys written; empty iff read-only *)
}

type t

val create : rng:Sim.Rng.t -> n_keys:int -> theta:float -> t

val sample : t -> txn
(** Keys within one transaction are distinct. *)

val is_read_only : txn -> bool

val kind_name : kind -> string

val mix : (kind * float) list
(** The paper's proportions, for reporting. *)
