(** Tabular reporting of latency distributions and throughput. *)

val tail_points : float list
(** The percentile ladder used by the figures:
    50, 90, 95, 99, 99.5, 99.9. *)

val row_ms : Recorder.t -> float list -> float list
(** Percentiles of the recorder, in milliseconds. *)

val print_latency_table :
  header:string -> rows:(string * Recorder.t) list -> ?points:float list -> unit -> unit
(** Print one row per named recorder, columns = percentile ladder (ms). *)

val print_count_table : header:string -> rows:(string * int) list -> unit
(** Print one labelled integer counter per row (chaos-audit fault and
    operation accounting). *)

val improvement : baseline:float -> variant:float -> float
(** Relative reduction in percent: [(baseline - variant) / baseline * 100]. *)

val throughput : count:int -> duration_us:int -> float
(** Operations per second. *)
