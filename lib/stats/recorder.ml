type t = {
  mutable data : int array;
  mutable len : int;
  mutable sorted : bool;
}

let create () = { data = [||]; len = 0; sorted = true }

let add t x =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let data = Array.make (if cap = 0 then 1024 else cap * 2) 0 in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.sorted <- false

let count t = t.len

let is_empty t = t.len = 0

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.data 0 t.len in
    Array.sort compare live;
    Array.blit live 0 t.data 0 t.len;
    t.sorted <- true
  end

let mean t =
  if t.len = 0 then 0.0
  else begin
    let sum = ref 0.0 in
    for i = 0 to t.len - 1 do
      sum := !sum +. float_of_int t.data.(i)
    done;
    !sum /. float_of_int t.len
  end

let min t =
  if t.len = 0 then invalid_arg "Recorder.min: empty";
  ensure_sorted t;
  t.data.(0)

let max t =
  if t.len = 0 then invalid_arg "Recorder.max: empty";
  ensure_sorted t;
  t.data.(t.len - 1)

let percentile t p =
  if t.len = 0 then invalid_arg "Recorder.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Recorder.percentile: p out of range";
  ensure_sorted t;
  if t.len = 1 then float_of_int t.data.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (t.len - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then float_of_int t.data.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      ((1.0 -. frac) *. float_of_int t.data.(lo))
      +. (frac *. float_of_int t.data.(hi))
    end
  end

let percentile_ms t p = percentile t p /. 1000.0

(* Total variants for summary paths: an empty recorder (a run that produced
   no samples, e.g. all-faults chaos) reports [None] instead of raising. *)
let min_opt t = if t.len = 0 then None else Some (min t)

let max_opt t = if t.len = 0 then None else Some (max t)

let percentile_opt t p = if t.len = 0 then None else Some (percentile t p)

let percentile_ms_opt t p = if t.len = 0 then None else Some (percentile_ms t p)

let to_sorted_array t =
  ensure_sorted t;
  Array.sub t.data 0 t.len

let merge a b =
  let t = create () in
  for i = 0 to a.len - 1 do
    add t a.data.(i)
  done;
  for i = 0 to b.len - 1 do
    add t b.data.(i)
  done;
  t
