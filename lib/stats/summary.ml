let tail_points = [ 50.0; 90.0; 95.0; 99.0; 99.5; 99.9 ]

let row_ms rec_ points = List.map (fun p -> Recorder.percentile_ms rec_ p) points

let print_latency_table ~header ~rows ?(points = tail_points) () =
  Fmt.pr "%s@." header;
  Fmt.pr "  %-16s %8s" "system" "count";
  List.iter (fun p -> Fmt.pr " %9s" (Fmt.str "p%g" p)) points;
  Fmt.pr "@.";
  List.iter
    (fun (name, r) ->
      Fmt.pr "  %-16s %8d" name (Recorder.count r);
      if Recorder.is_empty r then
        List.iter (fun _ -> Fmt.pr " %9s" "n/a") points
      else List.iter (fun v -> Fmt.pr " %9.1f" v) (row_ms r points);
      Fmt.pr "@.")
    rows

let print_count_table ~header ~rows =
  Fmt.pr "%s@." header;
  List.iter (fun (name, n) -> Fmt.pr "  %-24s %10d@." name n) rows

let improvement ~baseline ~variant =
  if baseline = 0.0 then 0.0 else (baseline -. variant) /. baseline *. 100.0

let throughput ~count ~duration_us =
  if duration_us = 0 then 0.0
  else float_of_int count /. (float_of_int duration_us /. 1_000_000.0)
