(** Growable sample recorder with exact percentiles.

    Samples are integers (we use microseconds). Percentiles use the
    nearest-rank-with-interpolation definition over the full sample set —
    experiments at p99.9 need exact tails, not sketch approximations. *)

type t

val create : unit -> t

val add : t -> int -> unit

val count : t -> int

val is_empty : t -> bool

val mean : t -> float

val min : t -> int
(** Raises [Invalid_argument] when empty. *)

val max : t -> int
(** Raises [Invalid_argument] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 100\]]; linear interpolation between
    ranks. Raises [Invalid_argument] when empty or [p] out of range. *)

val percentile_ms : t -> float -> float

val min_opt : t -> int option
(** [None] on an empty recorder (where {!min} raises). *)

val max_opt : t -> int option

val percentile_opt : t -> float -> float option

val percentile_ms_opt : t -> float -> float option
(** {!percentile} converted from µs to ms. *)

val to_sorted_array : t -> int array
(** A copy of the samples, sorted ascending. *)

val merge : t -> t -> t
(** A fresh recorder holding both sample sets. *)
