(** Transactional execution histories.

    A transaction records the values it observed for the keys it read and the
    values it wrote. Read-only transactions have an empty write set;
    read-write transactions may read and write. As with {!History}, written
    values must be distinct per key so that the reads-from relation is
    derivable, and out-of-band causality is recorded as [msg_edges]. *)

type key = string
type value = int

type txn = {
  id : int;
  proc : int;
  reads : (key * value option) list;  (** (key, value observed) *)
  writes : (key * value) list;
  inv : int;
  resp : int option;
}

type t = { txns : txn array; msg_edges : (int * int) list }

val make : ?msg_edges:(int * int) list -> txn list -> t
(** Ids must be dense [0..n-1]. Raises [Invalid_argument] on malformed
    histories (duplicate writes per key, overlapping ops within a process,
    bad msg edges). *)

val ro :
  id:int -> proc:int -> reads:(key * value option) list -> inv:int -> ?resp:int ->
  unit -> txn

val rw :
  id:int -> proc:int -> ?reads:(key * value option) list ->
  writes:(key * value) list -> inv:int -> ?resp:int -> unit -> txn

val n_txns : t -> int
val txn : t -> int -> txn
val is_complete : txn -> bool
val is_mutator : txn -> bool

val conflicts : txn -> txn -> bool
(** [conflicts w r]: does read-write [w] write a key that [r] reads? *)

val validate : t -> (unit, string) result

val of_history : History.t -> t
(** View a register history as a history of single-key transactions:
    reads become RO transactions, writes blind RW transactions, rmws RW
    transactions that read and write their key. This is how the register
    checkers reuse the transactional checker engine. *)

val pp_txn : Format.formatter -> txn -> unit
