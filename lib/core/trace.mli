(** Plain-text serialization of transactional histories, so runs can be
    saved, diffed, shipped in bug reports, and re-checked offline
    (`rss_repro check` in the CLI loads these).

    Format: one record per line,
    {v
    txn id=<n> proc=<n> inv=<n> resp=<n|-> reads=k:v|k:nil,... writes=k:v,...
    edge <a> <b>
    # comments and blank lines are ignored
    v}
    Keys must not contain [,:|] or whitespace. *)

val to_string : Txn_history.t -> string

val of_string : string -> (Txn_history.t, string) result
(** Parse and validate; errors carry the offending line. *)

val save : path:string -> Txn_history.t -> unit

val load : path:string -> (Txn_history.t, string) result
