type key = string
type value = int

type txn = {
  proc : int;
  reads : (key * value option) list;
  writes : (key * value) list;
  inv : int;
  resp : int;
  ts : int;
  rank : int;
}

type mode = [ `Strict | `Rss | `Sequential ]

let mutator_rank ~writes = if writes = [] then 1 else 0

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

(* Positions of txns sorted by (ts, rank, inv, index). *)
let order txns =
  let n = Array.length txns in
  let idx = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let ta = txns.(a) and tb = txns.(b) in
      let c = compare ta.ts tb.ts in
      if c <> 0 then c
      else
        let c = compare ta.rank tb.rank in
        if c <> 0 then c
        else
          let c = compare ta.inv tb.inv in
          if c <> 0 then c else compare a b)
    idx;
  let pos = Array.make n 0 in
  Array.iteri (fun p i -> pos.(i) <- p) idx;
  (idx, pos)

let check_legal txns idx =
  let store : (key, value) Hashtbl.t = Hashtbl.create 1024 in
  let exception Violation of string in
  try
    Array.iter
      (fun i ->
        let x = txns.(i) in
        if x.resp <> max_int then
          List.iter
            (fun (k, v) ->
              let cur = Hashtbl.find_opt store k in
              if cur <> v then
                raise
                  (Violation
                     (Fmt.str
                        "legality: txn %d read %s=%s but order implies %s (ts=%d)"
                        i k
                        (match v with None -> "nil" | Some v -> string_of_int v)
                        (match cur with None -> "nil" | Some v -> string_of_int v)
                        x.ts)))
            x.reads;
        List.iter (fun (k, v) -> Hashtbl.replace store k v) x.writes)
      idx;
    Ok ()
  with Violation m -> Error m

let check_sessions txns pos =
  let by_proc = Hashtbl.create 64 in
  let exception Violation of string in
  try
    Array.iteri
      (fun i x ->
        let prev = try Hashtbl.find by_proc x.proc with Not_found -> [] in
        Hashtbl.replace by_proc x.proc ((x.inv, i) :: prev))
      txns;
    Hashtbl.iter
      (fun proc ops ->
        let ops = List.sort compare ops in
        let rec walk = function
          | (_, a) :: ((_, b) :: _ as rest) ->
            if pos.(a) > pos.(b) then
              raise
                (Violation
                   (Fmt.str "session order: process %d's txns %d and %d inverted"
                      proc a b));
            walk rest
          | [ _ ] | [] -> ()
        in
        walk ops)
      by_proc;
    Ok ()
  with Violation m -> Error m

(* Regular real-time constraint among mutators: scanning the order, every
   completed mutator's response must not precede the invocation of any
   earlier-positioned mutator. *)
let check_rt_mutators txns idx =
  let exception Violation of string in
  try
    let max_inv = ref min_int in
    Array.iter
      (fun i ->
        let x = txns.(i) in
        if x.writes <> [] then begin
          if x.resp < !max_inv then
            raise
              (Violation
                 (Fmt.str
                    "real-time: mutator %d (resp=%d) serialized after a mutator invoked at %d"
                    i x.resp !max_inv));
          if x.inv > !max_inv then max_inv := x.inv
        end)
      idx;
    Ok ()
  with Violation m -> Error m

(* Regular real-time constraint between writers of a key and its readers. *)
let check_rt_conflicts txns idx =
  let exception Violation of string in
  (* max invocation among readers of each key, seen so far in order *)
  let max_reader_inv : (key, int) Hashtbl.t = Hashtbl.create 1024 in
  try
    Array.iter
      (fun i ->
        let x = txns.(i) in
        List.iter
          (fun (k, _) ->
            match Hashtbl.find_opt max_reader_inv k with
            | Some m when x.resp < m ->
              raise
                (Violation
                   (Fmt.str
                      "real-time: writer %d of %s (resp=%d) serialized after a reader invoked at %d"
                      i k x.resp m))
            | Some _ | None -> ())
          x.writes;
        List.iter
          (fun (k, _) ->
            match Hashtbl.find_opt max_reader_inv k with
            | Some m when m >= x.inv -> ()
            | Some _ | None -> Hashtbl.replace max_reader_inv k x.inv)
          x.reads)
      idx;
    Ok ()
  with Violation m -> Error m

(* Full real-time order: no txn may be serialized after one it entirely
   precedes in real time. *)
let check_rt_all txns idx =
  let exception Violation of string in
  try
    let max_inv = ref min_int in
    Array.iter
      (fun i ->
        let x = txns.(i) in
        if x.resp < !max_inv then
          raise
            (Violation
               (Fmt.str
                  "real-time: txn %d (resp=%d) serialized after a txn invoked at %d"
                  i x.resp !max_inv));
        if x.inv > !max_inv then max_inv := x.inv)
      idx;
    Ok ()
  with Violation m -> Error m

let check_edges pos edges =
  let rec walk = function
    | [] -> Ok ()
    | (a, b) :: rest ->
      if pos.(a) >= pos.(b) then
        Error (Fmt.str "causal edge: txn %d must be serialized before %d" a b)
      else walk rest
  in
  walk edges

let check ?(edges = []) ~mode txns =
  let idx, pos = order txns in
  let* () = check_legal txns idx in
  let* () = check_sessions txns pos in
  let* () = check_edges pos edges in
  match mode with
  | `Sequential -> Ok ()
  | `Rss ->
    let* () = check_rt_mutators txns idx in
    check_rt_conflicts txns idx
  | `Strict -> check_rt_all txns idx
