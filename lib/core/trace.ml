open Txn_history

let encode_reads reads =
  List.map
    (fun (k, v) ->
      match v with None -> Fmt.str "%s:nil" k | Some v -> Fmt.str "%s:%d" k v)
    reads
  |> String.concat ","

let encode_writes writes =
  List.map (fun (k, v) -> Fmt.str "%s:%d" k v) writes |> String.concat ","

let to_string (h : Txn_history.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# rss-repro transactional history v1\n";
  Array.iter
    (fun x ->
      Buffer.add_string buf
        (Fmt.str "txn id=%d proc=%d inv=%d resp=%s reads=%s writes=%s\n" x.id x.proc
           x.inv
           (match x.resp with None -> "-" | Some r -> string_of_int r)
           (encode_reads x.reads) (encode_writes x.writes)))
    h.txns;
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Fmt.str "edge %d %d\n" a b))
    h.msg_edges;
  Buffer.contents buf

let parse_kv ~with_nil s =
  if s = "" then Ok []
  else
    let parts = String.split_on_char ',' s in
    let parse_one part =
      match String.rindex_opt part ':' with
      | None -> Error (Fmt.str "malformed pair %S" part)
      | Some i ->
        let k = String.sub part 0 i in
        let v = String.sub part (i + 1) (String.length part - i - 1) in
        if with_nil && v = "nil" then Ok (k, None)
        else (
          match int_of_string_opt v with
          | Some n -> Ok (k, Some n)
          | None -> Error (Fmt.str "malformed value %S" v))
    in
    List.fold_left
      (fun acc part ->
        match (acc, parse_one part) with
        | Error _, _ -> acc
        | _, Error e -> Error e
        | Ok l, Ok kv -> Ok (kv :: l))
      (Ok []) parts
    |> Result.map List.rev

let parse_field line name =
  (* fields are space-separated name=value tokens *)
  let tokens = String.split_on_char ' ' line in
  let prefix = name ^ "=" in
  match
    List.find_opt (fun t -> String.length t > String.length prefix - 1
                            && String.sub t 0 (String.length prefix) = prefix)
      tokens
  with
  | None -> Error (Fmt.str "missing field %s" name)
  | Some t ->
    Ok (String.sub t (String.length prefix) (String.length t - String.length prefix))

let ( let* ) = Result.bind

let parse_txn line =
  let* id = parse_field line "id" in
  let* proc = parse_field line "proc" in
  let* inv = parse_field line "inv" in
  let* resp = parse_field line "resp" in
  let* reads_s = parse_field line "reads" in
  let* writes_s = parse_field line "writes" in
  let int_of name s =
    match int_of_string_opt s with
    | Some n -> Ok n
    | None -> Error (Fmt.str "bad %s: %S" name s)
  in
  let* id = int_of "id" id in
  let* proc = int_of "proc" proc in
  let* inv = int_of "inv" inv in
  let* resp =
    if resp = "-" then Ok None
    else Result.map (fun r -> Some r) (int_of "resp" resp)
  in
  let* reads = parse_kv ~with_nil:true reads_s in
  let* writes_opt = parse_kv ~with_nil:false writes_s in
  let writes =
    List.filter_map (fun (k, v) -> Option.map (fun v -> (k, v)) v) writes_opt
  in
  Ok { id; proc; reads; writes; inv; resp }

let of_string s =
  let lines = String.split_on_char '\n' s in
  let result =
    List.fold_left
      (fun acc raw ->
        let* txns, edges = acc in
        let line = String.trim raw in
        if line = "" || line.[0] = '#' then Ok (txns, edges)
        else if String.length line > 4 && String.sub line 0 4 = "txn " then
          let* t = parse_txn line in
          Ok (t :: txns, edges)
        else if String.length line > 5 && String.sub line 0 5 = "edge " then (
          match String.split_on_char ' ' line with
          | [ _; a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some a, Some b -> Ok (txns, (a, b) :: edges)
            | _ -> Error (Fmt.str "bad edge line %S" line))
          | _ -> Error (Fmt.str "bad edge line %S" line))
        else Error (Fmt.str "unrecognized line %S" line))
      (Ok ([], []))
      lines
  in
  let* txns, edges = result in
  match Txn_history.make ~msg_edges:(List.rev edges) (List.rev txns) with
  | h -> Ok h
  | exception Invalid_argument m -> Error m

let save ~path h =
  let oc = open_out path in
  output_string oc (to_string h);
  close_out oc

let load ~path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    of_string s
