(** Linear-time consistency verification for large simulated runs.

    The search checkers in {!Check_txn} are exponential; runs with hundreds
    of thousands of transactions need something cheaper. The protocols we
    simulate all produce a natural serialization witness — Spanner's commit /
    snapshot timestamps, Gryff's carstamps — so instead of searching for an
    order we {e verify the order the system claims}:

    + legality: replaying the order, every read sees the latest write;
    + session order: each process's transactions appear in program order;
    + the regular real-time constraint: a completed mutator precedes every
      mutator and every conflicting reader that follows it in real time
      (for [`Rss]); or full real-time order (for [`Strict]); or nothing
      beyond sessions (for [`Sequential]);
    + any explicitly supplied causal edges (message passing).

    All checks run in O(n log n). A pass proves the run satisfies the model
    (the witness order is an explicit serialization); a failure pinpoints the
    first violated obligation. *)

type key = string
type value = int

type txn = {
  proc : int;
  reads : (key * value option) list;
  writes : (key * value) list;
  inv : int;
  resp : int;  (** [max_int] when the response never arrived *)
  ts : int;  (** serialization timestamp claimed by the system *)
  rank : int;  (** tie-break within equal [ts]: lower first (mutators 0, readers 1) *)
}

type mode = [ `Strict | `Rss | `Sequential ]

val check : ?edges:(int * int) list -> mode:mode -> txn array -> (unit, string) result
(** [edges] are indices into the array: [(a, b)] requires [a] to be
    serialized before [b] (out-of-band causality). *)

val mutator_rank : writes:(key * value) list -> int
(** 0 for mutators, 1 for read-only — the conventional [rank]. *)
