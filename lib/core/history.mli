(** Non-transactional execution histories (reads, writes, read-modify-writes
    on a multi-key register store).

    An operation records its invocation and (optional) response times and the
    values involved. Checkers derive the reads-from relation from values, so
    histories must write {e distinct values per key}; {!validate} enforces
    this. Out-of-band communication between processes (the paper's
    message-passing causal edges, §3.3) is recorded explicitly as
    [msg_edges]: [(a, b)] means op [a]'s response happened-before op [b]'s
    invocation via a message. *)

type key = string
type value = int

type kind =
  | Read of value option  (** value returned; [None] = initial/absent *)
  | Write of value
  | Rmw of value option * value
      (** (value observed, value written) — e.g. an atomic increment *)

type op = {
  id : int;
  proc : int;
  key : key;
  kind : kind;
  inv : int;
  resp : int option;
}

type t = { ops : op array; msg_edges : (int * int) list }

(** {2 Construction} *)

val make : ?msg_edges:(int * int) list -> op list -> t
(** Ids must be dense [0..n-1]; ops are stored indexed by id.
    Raises [Invalid_argument] otherwise or if {!validate} fails. *)

val read :
  id:int -> proc:int -> key:key -> ?value:value -> inv:int -> ?resp:int -> unit -> op

val write :
  id:int -> proc:int -> key:key -> value:value -> inv:int -> ?resp:int -> unit -> op

val rmw :
  id:int -> proc:int -> key:key -> ?observed:value -> result:value -> inv:int ->
  ?resp:int -> unit -> op

(** {2 Accessors} *)

val n_ops : t -> int
val op : t -> int -> op
val is_complete : op -> bool
val is_mutator : op -> bool
(** Writes and rmws mutate; reads do not. *)

val written_value : op -> value option
val observed_value : op -> value option option
(** [Some v] for reads/rmws ([v] itself is the possibly-[None] value seen);
    [None] for writes. *)

val validate : t -> (unit, string) result
(** Distinct written values per key; well-formed per-process sequentiality
    (a process has at most one outstanding op); msg edges reference real ops
    and respect time. *)

val pp_op : Format.formatter -> op -> unit
