type key = string
type value = int

type kind =
  | Read of value option
  | Write of value
  | Rmw of value option * value

type op = {
  id : int;
  proc : int;
  key : key;
  kind : kind;
  inv : int;
  resp : int option;
}

type t = { ops : op array; msg_edges : (int * int) list }

let is_complete o = o.resp <> None

let is_mutator o =
  match o.kind with Read _ -> false | Write _ | Rmw _ -> true

let written_value o =
  match o.kind with
  | Read _ -> None
  | Write v -> Some v
  | Rmw (_, v) -> Some v

let observed_value o =
  match o.kind with
  | Read v -> Some v
  | Rmw (v, _) -> Some v
  | Write _ -> None

let read ~id ~proc ~key ?value ~inv ?resp () =
  { id; proc; key; kind = Read value; inv; resp }

let write ~id ~proc ~key ~value ~inv ?resp () =
  { id; proc; key; kind = Write value; inv; resp }

let rmw ~id ~proc ~key ?observed ~result ~inv ?resp () =
  { id; proc; key; kind = Rmw (observed, result); inv; resp }

let n_ops t = Array.length t.ops

let op t i = t.ops.(i)

let validate t =
  let n = Array.length t.ops in
  let exception Bad of string in
  try
    (* Distinct written values per key. *)
    let written = Hashtbl.create 64 in
    Array.iter
      (fun o ->
        match written_value o with
        | None -> ()
        | Some v ->
          let k = (o.key, v) in
          if Hashtbl.mem written k then
            raise (Bad (Fmt.str "duplicate write of %d to %s" v o.key));
          Hashtbl.add written k o.id)
      t.ops;
    (* Per-process sequentiality: sort a process's ops by invocation and
       require each response to precede the next invocation. *)
    let by_proc = Hashtbl.create 8 in
    Array.iter
      (fun o ->
        let prev = try Hashtbl.find by_proc o.proc with Not_found -> [] in
        Hashtbl.replace by_proc o.proc (o :: prev))
      t.ops;
    Hashtbl.iter
      (fun proc ops ->
        let ops = List.sort (fun a b -> compare a.inv b.inv) ops in
        let rec check = function
          | a :: (b :: _ as rest) ->
            (match a.resp with
            | None ->
              raise
                (Bad (Fmt.str "process %d continues after incomplete op %d" proc a.id))
            | Some r ->
              if r > b.inv then
                raise
                  (Bad
                     (Fmt.str "process %d: op %d overlaps op %d" proc a.id b.id)));
            check rest
          | [ _ ] | [] -> ()
        in
        check ops)
      by_proc;
    (* Message edges reference real, complete senders and respect time. *)
    List.iter
      (fun (a, b) ->
        if a < 0 || a >= n || b < 0 || b >= n then
          raise (Bad (Fmt.str "msg edge (%d,%d) out of range" a b));
        match t.ops.(a).resp with
        | None -> raise (Bad (Fmt.str "msg edge from incomplete op %d" a))
        | Some r ->
          if r > t.ops.(b).inv then
            raise (Bad (Fmt.str "msg edge (%d,%d) violates time" a b)))
      t.msg_edges;
    Ok ()
  with Bad m -> Error m

let make ?(msg_edges = []) ops =
  let n = List.length ops in
  let arr = Array.make n (List.hd ops) in
  List.iter
    (fun o ->
      if o.id < 0 || o.id >= n then invalid_arg "History.make: ids must be 0..n-1";
      arr.(o.id) <- o)
    ops;
  let ids = Hashtbl.create n in
  List.iter
    (fun o ->
      if Hashtbl.mem ids o.id then invalid_arg "History.make: duplicate id";
      Hashtbl.add ids o.id ())
    ops;
  let t = { ops = arr; msg_edges } in
  match validate t with Ok () -> t | Error m -> invalid_arg ("History.make: " ^ m)

let pp_op ppf o =
  let kind =
    match o.kind with
    | Read None -> "r->nil"
    | Read (Some v) -> Fmt.str "r->%d" v
    | Write v -> Fmt.str "w(%d)" v
    | Rmw (None, r) -> Fmt.str "rmw(nil->%d)" r
    | Rmw (Some v, r) -> Fmt.str "rmw(%d->%d)" v r
  in
  Fmt.pf ppf "#%d p%d %s[%s] @[%d,%s]" o.id o.proc kind o.key o.inv
    (match o.resp with None -> "?" | Some r -> string_of_int r)
