type model =
  | Linearizable
  | Sequential
  | Rsc
  | Regular_vv
  | Osc_u

let all_models = [ Linearizable; Sequential; Rsc; Regular_vv; Osc_u ]

let model_name = function
  | Linearizable -> "linearizable"
  | Sequential -> "sequential"
  | Rsc -> "rsc"
  | Regular_vv -> "vv-regular"
  | Osc_u -> "osc-u"

let to_txn_model = function
  | Linearizable -> Check_txn.Strict_serializable
  | Sequential -> Check_txn.Process_ordered
  | Rsc -> Check_txn.Rss
  | Regular_vv -> Check_txn.Regular_vv
  | Osc_u -> Check_txn.Osc_u

let check ?max_states h model =
  Check_txn.check ?max_states (Txn_history.of_history h) (to_txn_model model)

let satisfies ?max_states h model =
  Check_txn.satisfies ?max_states (Txn_history.of_history h) (to_txn_model model)

let causal h = Check_txn.causal (Txn_history.of_history h)
