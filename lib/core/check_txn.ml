open Txn_history

type model =
  | Strict_serializable
  | Process_ordered
  | Rss
  | Regular_vv
  | Crdb
  | Osc_u

let all_models =
  [ Strict_serializable; Process_ordered; Rss; Regular_vv; Crdb; Osc_u ]

let model_name = function
  | Strict_serializable -> "strict-serializable"
  | Process_ordered -> "process-ordered"
  | Rss -> "rss"
  | Regular_vv -> "vv-regular"
  | Crdb -> "crdb"
  | Osc_u -> "osc-u"

type result =
  | Sat of int list
  | Unsat
  | Unknown

(* Real-time order between two txns: a's response strictly precedes b's
   invocation. Incomplete txns impose no real-time constraints. *)
let rt_before a b =
  match a.resp with None -> false | Some r -> r < b.inv

let process_order_edges (h : Txn_history.t) =
  let by_proc = Hashtbl.create 8 in
  Array.iter
    (fun x ->
      let prev = try Hashtbl.find by_proc x.proc with Not_found -> [] in
      Hashtbl.replace by_proc x.proc (x :: prev))
    h.txns;
  Hashtbl.fold
    (fun _ txns acc ->
      let txns = List.sort (fun a b -> compare a.inv b.inv) txns in
      let rec pairs acc = function
        | a :: (b :: _ as rest) -> pairs ((a.id, b.id) :: acc) rest
        | [ _ ] | [] -> acc
      in
      pairs acc txns)
    by_proc []

(* Reads-from: a reads a value that b wrote (values unique per key). *)
let reads_from_edges (h : Txn_history.t) =
  let writer = Hashtbl.create 64 in
  Array.iter
    (fun x -> List.iter (fun (k, v) -> Hashtbl.replace writer (k, v) x.id) x.writes)
    h.txns;
  Array.fold_left
    (fun acc x ->
      if not (is_complete x) then acc
      else
        List.fold_left
          (fun acc (k, v) ->
            match v with
            | None -> acc
            | Some v -> (
              match Hashtbl.find_opt writer (k, v) with
              | Some w when w <> x.id -> (w, x.id) :: acc
              | Some _ | None -> acc))
          acc x.reads)
    [] h.txns

let causal (h : Txn_history.t) =
  let edges = process_order_edges h @ h.msg_edges @ reads_from_edges h in
  Causal.of_edges ~n:(n_txns h) edges

(* The "regular" real-time constraint shared by RSS and VV-regularity:
   a completed mutator precedes (i) every mutator and (ii) every conflicting
   reader that follows it in real time. *)
let regular_rt_edges (h : Txn_history.t) =
  let acc = ref [] in
  Array.iter
    (fun w ->
      if is_mutator w && is_complete w then
        Array.iter
          (fun o ->
            if o.id <> w.id && rt_before w o then
              if is_mutator o || conflicts w o then acc := (w.id, o.id) :: !acc)
          h.txns)
    h.txns;
  !acc

let share_conflicting_key a b =
  let touches_write w other =
    List.exists
      (fun (k, _) ->
        List.mem_assoc k other.reads || List.exists (fun (k', _) -> k' = k) other.writes)
      w.writes
  in
  touches_write a b || touches_write b a

let constraint_edges (h : Txn_history.t) model =
  let all_rt () =
    let acc = ref [] in
    Array.iter
      (fun a ->
        Array.iter
          (fun b -> if a.id <> b.id && rt_before a b then acc := (a.id, b.id) :: !acc)
          h.txns)
      h.txns;
    !acc
  in
  match model with
  | Strict_serializable -> all_rt ()
  | Process_ordered -> process_order_edges h
  | Rss -> Causal.edges (causal h) @ regular_rt_edges h
  | Regular_vv -> regular_rt_edges h
  | Crdb ->
    let rt_conflicting =
      let acc = ref [] in
      Array.iter
        (fun a ->
          Array.iter
            (fun b ->
              if a.id <> b.id && rt_before a b && share_conflicting_key a b then
                acc := (a.id, b.id) :: !acc)
            h.txns)
        h.txns;
      !acc
    in
    process_order_edges h @ rt_conflicting
  | Osc_u ->
    let rt_into_writes =
      let acc = ref [] in
      Array.iter
        (fun a ->
          Array.iter
            (fun b ->
              if a.id <> b.id && is_mutator b && rt_before a b then
                acc := (a.id, b.id) :: !acc)
            h.txns)
        h.txns;
      !acc
    in
    process_order_edges h @ rt_into_writes

(* Which transactions participate in the serialization search?
   All complete ones, plus incomplete mutators whose writes were observed by
   a complete transaction (they definitely took effect; per §3.4 the
   execution is extended with their responses). Unobserved incomplete
   transactions can always be appended at the end of any witness order, so
   dropping them is sound and complete. *)
let included_txns (h : Txn_history.t) =
  let observed = Hashtbl.create 64 in
  Array.iter
    (fun x ->
      if is_complete x then
        List.iter
          (fun (_, v) -> match v with None -> () | Some v -> Hashtbl.replace observed v ())
          x.reads)
    h.txns;
  Array.to_list h.txns
  |> List.filter (fun x ->
         is_complete x
         || List.exists (fun (_, v) -> Hashtbl.mem observed v) x.writes)
  |> List.map (fun x -> x.id)

exception Found of int list
exception Budget

let search (h : Txn_history.t) edges included max_states =
  let n = n_txns h in
  let in_search = Array.make n false in
  List.iter (fun id -> in_search.(id) <- true) included;
  let total = List.length included in
  (* Successors and indegrees restricted to included txns. *)
  let succs = Array.make n [] in
  let indeg = Array.make n 0 in
  List.iter
    (fun (a, b) ->
      if in_search.(a) && in_search.(b) then begin
        succs.(a) <- b :: succs.(a);
        indeg.(b) <- indeg.(b) + 1
      end)
    (List.sort_uniq compare edges);
  let appended = Array.make n false in
  let store : (key, value) Hashtbl.t = Hashtbl.create 16 in
  let states = ref 0 in
  let memo = Hashtbl.create 1024 in
  let fingerprint () =
    let bits = Bytes.make n '0' in
    Array.iteri (fun i v -> if v then Bytes.set bits i '1') appended;
    let kvs =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) store []
      |> List.sort compare
      |> List.map (fun (k, v) -> Fmt.str "%s=%d" k v)
      |> String.concat ";"
    in
    Bytes.to_string bits ^ "|" ^ kvs
  in
  let compatible x =
    (* Incomplete transactions never responded, so their reads constrain
       nothing; complete ones must have seen exactly the current store. *)
    (not (is_complete x))
    || List.for_all
         (fun (k, v) ->
           match (Hashtbl.find_opt store k, v) with
           | None, None -> true
           | Some sv, Some v -> sv = v
           | None, Some _ | Some _, None -> false)
         x.reads
  in
  let rec dfs depth path =
    if depth = total then raise (Found (List.rev path));
    incr states;
    if !states > max_states then raise Budget;
    let fp = fingerprint () in
    if not (Hashtbl.mem memo fp) then begin
      Hashtbl.add memo fp ();
      for id = 0 to n - 1 do
        if in_search.(id) && (not appended.(id)) && indeg.(id) = 0 then begin
          let x = txn h id in
          if compatible x then begin
            (* Apply: save overwritten values for undo. *)
            let saved =
              List.map (fun (k, _) -> (k, Hashtbl.find_opt store k)) x.writes
            in
            List.iter (fun (k, v) -> Hashtbl.replace store k v) x.writes;
            appended.(id) <- true;
            List.iter (fun s -> if in_search.(s) then indeg.(s) <- indeg.(s) - 1) succs.(id);
            dfs (depth + 1) (id :: path);
            List.iter (fun s -> if in_search.(s) then indeg.(s) <- indeg.(s) + 1) succs.(id);
            appended.(id) <- false;
            List.iter
              (fun (k, old) ->
                match old with
                | None -> Hashtbl.remove store k
                | Some v -> Hashtbl.replace store k v)
              saved
          end
        end
      done
    end
  in
  try
    dfs 0 [];
    Unsat
  with
  | Found order -> Sat order
  | Budget -> Unknown

let check ?(max_states = 2_000_000) h model =
  let edges = constraint_edges h model in
  (* A cycle in the mandatory edges means no total order exists at all. *)
  match Causal.of_edges ~n:(n_txns h) edges with
  | exception Invalid_argument _ -> Unsat
  | _ -> search h edges (included_txns h) max_states

let satisfies ?max_states h model =
  match check ?max_states h model with
  | Sat _ -> Some true
  | Unsat -> Some false
  | Unknown -> None
