type t = {
  n : int;
  reach : bool array array;
  direct : (int * int) list;
}

let of_edges ~n edges =
  let reach = Array.make_matrix n n false in
  let adj = Array.make n [] in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n then
        invalid_arg "Causal.of_edges: node out of range";
      adj.(a) <- b :: adj.(a))
    edges;
  (* DFS from each node; O(n * E), fine for checker-sized histories. *)
  for src = 0 to n - 1 do
    let stack = ref adj.(src) in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | v :: rest ->
        stack := rest;
        if not reach.(src).(v) then begin
          reach.(src).(v) <- true;
          stack := adj.(v) @ !stack
        end
    done
  done;
  for i = 0 to n - 1 do
    if reach.(i).(i) then invalid_arg "Causal.of_edges: cycle detected"
  done;
  let direct = List.sort_uniq compare edges in
  { n; reach; direct }

let precedes t a b = t.reach.(a).(b)

let n t = t.n

let edges t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    for j = t.n - 1 downto 0 do
      if t.reach.(i).(j) then acc := (i, j) :: !acc
    done
  done;
  !acc

let reduction_edges t = t.direct
