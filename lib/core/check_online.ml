(* Incremental (online) witness verification. Semantics are exactly
   {!Witness.check} — legality, session order, and the mode's real-time
   constraint over the order claimed by the system's timestamps — but
   transactions are consumed one at a time, as the harness records them,
   instead of buffered and checked post-hoc.

   The structure exploits what the simulator gives us for free: records
   arrive in response order, and the claimed serialization order tracks real
   time closely, so almost every insert is an append. Per-key version orders
   are kept as sorted arrays indexed by the global order key, which makes
   the reads-from obligation of a new transaction a binary search and makes
   a late-arriving write invalidate exactly the reads in its key's affected
   window. Total cost is O(n log n + D) where D is the total displacement
   (positions shifted by out-of-arrival-order inserts) — near-linear for the
   histories our protocols produce, and metered so a pathological history
   degrades to an explicit [Unknown] (with a bounded {!Check_txn} search
   over the ambiguous suffix) rather than to quadratic work.

   Precondition (shared with every reads-from derivation in this repo):
   written values are unique per key. Uniqueness is what makes an eager
   legality verdict definitive — once some other version sits between a read
   and the writer of its observed value, no future insert can legalise it. *)

module W = Witness

type verdict =
  | Pass
  | Fail of string
  | Unknown of string

(* Growable int vector: the only container on the hot path. *)
module Ivec = struct
  type t = { mutable a : int array; mutable len : int }

  let create () = { a = [||]; len = 0 }

  let length v = v.len

  let get v i = Array.unsafe_get v.a i

  let ensure v =
    if v.len = Array.length v.a then begin
      let a = Array.make (if v.len = 0 then 8 else v.len * 2) 0 in
      Array.blit v.a 0 a 0 v.len;
      v.a <- a
    end

  (* Insert at position [p], shifting the tail right. Returns positions
     displaced (the incremental-work meter). *)
  let insert v p x =
    ensure v;
    let shifted = v.len - p in
    if shifted > 0 then Array.blit v.a p v.a (p + 1) shifted;
    v.a.(p) <- x;
    v.len <- v.len + 1;
    shifted
end

type state =
  | Checking
  | Overflowed  (** work budget exhausted; remaining adds are buffered *)
  | Failed of string

type t = {
  mode : W.mode;
  work_budget : int;
  fallback_states : int;
  (* All transactions in arrival order; [n] of the slots are live. *)
  mutable txns : W.txn array;
  mutable n : int;
  (* Arrival indices sorted by the claimed order key (ts, rank, inv, arr). *)
  ord : Ivec.t;
  (* Per-key writer / reader indices, each sorted by the order key. *)
  kw : (W.key, Ivec.t) Hashtbl.t;
  kr : (W.key, Ivec.t) Hashtbl.t;
  (* (key, value) -> the arrival index that wrote it (values unique/key). *)
  writer_of : (W.key * W.value, int) Hashtbl.t;
  (* Reads whose writer had not arrived yet: (reader, key, value), settled
     at [result] once every record is in. *)
  mutable deferred : (int * W.key * W.value) list;
  (* Per-process transactions sorted by (inv, arrival). *)
  pr : (int, Ivec.t) Hashtbl.t;
  (* Append fast-path real-time watermarks. *)
  mutable max_inv_all : int;
  mutable max_inv_mut : int;
  (* Arrival-order sanity: responses non-decreasing, per-process invocations
     non-decreasing. Holds for harness record streams; when violated the
     suffix fallback can no longer soundly confirm, only stay Unknown. *)
  mutable arrival_monotone : bool;
  mutable last_resp : int;
  last_inv_by_proc : (int, int) Hashtbl.t;
  mutable state : state;
  mutable pending : W.txn list;  (** reversed; buffered after overflow *)
  mutable n_pending : int;
  mutable work : int;
  mutable max_displacement : int;
}

let dummy_txn =
  { W.proc = 0; reads = []; writes = []; inv = 0; resp = 0; ts = 0; rank = 0 }

let create ?(work_budget = max_int) ?(fallback_states = 500_000) ~mode () =
  {
    mode;
    work_budget;
    fallback_states;
    txns = [||];
    n = 0;
    ord = Ivec.create ();
    kw = Hashtbl.create 256;
    kr = Hashtbl.create 256;
    writer_of = Hashtbl.create 1024;
    deferred = [];
    pr = Hashtbl.create 64;
    max_inv_all = min_int;
    max_inv_mut = min_int;
    arrival_monotone = true;
    last_resp = min_int;
    last_inv_by_proc = Hashtbl.create 64;
    state = Checking;
    pending = [];
    n_pending = 0;
    work = 0;
    max_displacement = 0;
  }

let n_added t = t.n + t.n_pending

let work t = t.work

let max_displacement t = t.max_displacement

(* Claimed-order comparison between arrival indices: (ts, rank, inv)
   lexicographically, arrival index as the final tie-break — the same total
   order {!Witness.order} sorts by. Plain int comparisons: this runs a few
   dozen times per transaction. *)
let cmp t i j =
  let a = t.txns.(i) and b = t.txns.(j) in
  if a.W.ts <> b.W.ts then Stdlib.compare a.W.ts b.W.ts
  else if a.W.rank <> b.W.rank then Stdlib.compare a.W.rank b.W.rank
  else if a.W.inv <> b.W.inv then Stdlib.compare a.W.inv b.W.inv
  else Stdlib.compare i j

(* First position in [v] whose element does not precede arrival index [i]
   in claimed order — [i]'s insertion point. *)
let insertion_point t v i =
  let lo = ref 0 and hi = ref (Ivec.length v) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp t (Ivec.get v mid) i < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let vec_of tbl key =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
    let v = Ivec.create () in
    Hashtbl.add tbl key v;
    v

let pp_value ppf = function
  | None -> Fmt.pf ppf "nil"
  | Some v -> Fmt.pf ppf "%d" v

let fail t msg = match t.state with Failed _ -> () | _ -> t.state <- Failed msg

let is_complete (x : W.txn) = x.W.resp <> max_int

let is_mutator (x : W.txn) = x.W.writes <> []

(* The value arrival index [w] wrote to [key]. *)
let written_value t w key = List.assoc key t.txns.(w).W.writes

let store_txn t i x =
  if t.n = Array.length t.txns then begin
    let a = Array.make (if t.n = 0 then 64 else t.n * 2) dummy_txn in
    Array.blit t.txns 0 a 0 t.n;
    t.txns <- a
  end;
  t.txns.(i) <- x;
  t.n <- t.n + 1

let add_work t d =
  t.work <- t.work + d;
  if d > t.max_displacement then t.max_displacement <- d

(* Validate the reads of the (complete) new transaction [i]. A read is
   settled eagerly when its verdict cannot change — satisfied when it sees
   the latest preceding write, failed when its value's (unique) writer is
   already placed incompatibly — and deferred when the writer simply has
   not arrived yet. *)
(* Incomplete txns (resp = max_int) never responded: their reads constrain
   nothing, mirroring Witness.check_legal. *)
let check_reads t i =
  if is_complete t.txns.(i) then
  List.iter
    (fun (key, v) ->
      match t.state with
      | Failed _ | Overflowed -> ()
      | Checking -> (
        let writers = vec_of t.kw key in
        let p = insertion_point t writers i in
        let latest = if p = 0 then None else Some (Ivec.get writers (p - 1)) in
        match v with
        | None ->
          (* A nil read with any preceding writer can never become legal. *)
          (match latest with
          | None -> ()
          | Some w ->
            fail t
              (Fmt.str "legality: txn %d read %s=nil but txn %d wrote %s=%d \
                        before it"
                 i key w key (written_value t w key)))
        | Some v -> (
          match Hashtbl.find_opt t.writer_of (key, v) with
          | Some w when latest = Some w -> ()
          | Some w ->
            (* Present but not the latest predecessor: either another version
               interposes or the writer is ordered after the reader; no
               future insert can undo either. *)
            fail t
              (Fmt.str
                 "legality: txn %d read %s=%d from txn %d, but the order \
                  implies %a"
                 i key v w pp_value
                 (match latest with
                 | None -> None
                 | Some l -> Some (written_value t l key)))
          | None ->
            (* Writer not recorded yet (slow ack, unacknowledged commit swept
               in at the end): settle at finish. *)
            t.deferred <- (i, key, v) :: t.deferred)))
    t.txns.(i).W.reads

(* Insert the new transaction's writes. Readers strictly between the new
   version and the key's next writer were previously validated against an
   older version; with uniqueness, any of them that did not observe this
   value is now definitively illegal unless its own writer is still
   missing (then it stays deferred). *)
let insert_writes t i =
  List.iter
    (fun (key, v) ->
      let writers = vec_of t.kw key in
      let p = insertion_point t writers i in
      (match t.state with
      | Failed _ | Overflowed -> ()
      | Checking ->
        let readers = vec_of t.kr key in
        let q0 = insertion_point t readers i in
        let next_writer =
          if p < Ivec.length writers then Some (Ivec.get writers p) else None
        in
        let q = ref q0 in
        let continue = ref true in
        while !continue && !q < Ivec.length readers do
          let r = Ivec.get readers !q in
          (match next_writer with
          | Some w when cmp t r w > 0 -> continue := false
          | _ ->
            (* [r = i]: a txn's own reads precede its writes (Witness replay
               order) and were already validated against the pre-state. *)
            (if r <> i && is_complete t.txns.(r) then
               match List.assoc key t.txns.(r).W.reads with
               | Some u when u = v -> ()
               | None ->
                 fail t
                   (Fmt.str
                      "legality: txn %d read %s=nil but txn %d (ts=%d) wrote \
                       %s=%d before it"
                      r key i t.txns.(i).W.ts key v)
               | Some u ->
                 if Hashtbl.mem t.writer_of (key, u) then
                   fail t
                     (Fmt.str
                        "legality: txn %d read %s=%d but txn %d (ts=%d) \
                         interposes %s=%d"
                        r key u i t.txns.(i).W.ts key v));
            incr q)
        done);
      Hashtbl.replace t.writer_of (key, v) i;
      add_work t (Ivec.insert writers p i))
    t.txns.(i).W.writes

let insert_reads t i =
  (* Incomplete transactions never responded: their reads constrain nothing
     and are never re-validated (mirrors Witness.check_legal). *)
  if is_complete t.txns.(i) then
    List.iter
      (fun (key, _) ->
        let readers = vec_of t.kr key in
        let p = insertion_point t readers i in
        add_work t (Ivec.insert readers p i))
      t.txns.(i).W.reads

(* Session order: along each process's invocation order, claimed-order
   positions must increase. Checking both neighbours at the insertion point
   maintains the invariant inductively. *)
let check_sessions t i =
  let x = t.txns.(i) in
  let procs = vec_of t.pr x.W.proc in
  (* insertion point by (inv, arrival) *)
  let lo = ref 0 and hi = ref (Ivec.length procs) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let j = Ivec.get procs mid in
    let c =
      if t.txns.(j).W.inv <> x.W.inv then Stdlib.compare t.txns.(j).W.inv x.W.inv
      else Stdlib.compare j i
    in
    if c < 0 then lo := mid + 1 else hi := mid
  done;
  let p = !lo in
  (match t.state with
  | Failed _ | Overflowed -> ()
  | Checking ->
    if p > 0 && cmp t (Ivec.get procs (p - 1)) i > 0 then
      fail t
        (Fmt.str "session order: process %d's txns %d and %d inverted" x.W.proc
           (Ivec.get procs (p - 1)) i)
    else if p < Ivec.length procs && cmp t i (Ivec.get procs p) > 0 then
      fail t
        (Fmt.str "session order: process %d's txns %d and %d inverted" x.W.proc
           i (Ivec.get procs p)));
  add_work t (Ivec.insert procs p i)

let add t (x : W.txn) =
  match t.state with
  | Failed _ -> ()
  | Overflowed ->
    t.pending <- x :: t.pending;
    t.n_pending <- t.n_pending + 1
  | Checking ->
    let i = t.n in
    store_txn t i x;
    (* Arrival-order sanity for the suffix fallback. *)
    if is_complete x then begin
      if x.W.resp < t.last_resp then t.arrival_monotone <- false;
      if x.W.resp > t.last_resp then t.last_resp <- x.W.resp
    end;
    (match Hashtbl.find_opt t.last_inv_by_proc x.W.proc with
    | Some last when x.W.inv < last -> t.arrival_monotone <- false
    | _ -> Hashtbl.replace t.last_inv_by_proc x.W.proc x.W.inv);
    (* Global claimed order. *)
    let p = insertion_point t t.ord i in
    let appended = p = Ivec.length t.ord in
    add_work t (Ivec.insert t.ord p i);
    (* Append fast-path real-time check: when [i] lands at the end, every
       other transaction precedes it, so the scan condition of the offline
       checker applies directly. Mid-order inserts are caught by the exact
       scans in [result]. *)
    if appended then begin
      match t.mode with
      | `Strict ->
        if x.W.resp < t.max_inv_all then
          fail t
            (Fmt.str
               "real-time: txn %d (resp=%d) serialized after a txn invoked at \
                %d"
               i x.W.resp t.max_inv_all)
      | `Rss ->
        if is_mutator x && x.W.resp < t.max_inv_mut then
          fail t
            (Fmt.str
               "real-time: mutator %d (resp=%d) serialized after a mutator \
                invoked at %d"
               i x.W.resp t.max_inv_mut)
      | `Sequential -> ()
    end;
    if x.W.inv > t.max_inv_all then t.max_inv_all <- x.W.inv;
    if is_mutator x && x.W.inv > t.max_inv_mut then t.max_inv_mut <- x.W.inv;
    check_reads t i;
    insert_reads t i;
    insert_writes t i;
    check_sessions t i;
    (match t.state with
    | Checking when t.work > t.work_budget -> t.state <- Overflowed
    | _ -> ())

(* {2 Finish-time checks} — the deferred read obligations plus the exact
   real-time scans of {!Witness.check_rt_mutators} / [check_rt_conflicts] /
   [check_rt_all], run once over the maintained order. *)

(* [`Missing] separates "the writer never arrived" from a placement
   violation: with a buffered overflow suffix the writer may simply be in
   the unchecked tail, so the caller downgrades it to Unknown. *)
let settle_deferred t =
  let rec go = function
    | [] -> `Ok
    | (r, key, v) :: rest -> (
      match Hashtbl.find_opt t.writer_of (key, v) with
      | None ->
        `Missing
          (Fmt.str "legality: txn %d read %s=%d but no txn wrote it" r key v)
      | Some w ->
        let writers = vec_of t.kw key in
        let p = insertion_point t writers r in
        if p > 0 && Ivec.get writers (p - 1) = w then go rest
        else
          `Fail
            (Fmt.str
               "legality: txn %d read %s=%d from txn %d, but the order \
                implies %a"
               r key v w pp_value
               (if p = 0 then None
                else Some (written_value t (Ivec.get writers (p - 1)) key))))
  in
  go t.deferred

let scan_rt_mutators t =
  let max_inv = ref min_int in
  let i = ref 0 in
  let r = ref (Ok ()) in
  while !r = Ok () && !i < Ivec.length t.ord do
    let id = Ivec.get t.ord !i in
    let x = t.txns.(id) in
    if x.W.writes <> [] then begin
      if x.W.resp < !max_inv then
        r :=
          Error
            (Fmt.str
               "real-time: mutator %d (resp=%d) serialized after a mutator \
                invoked at %d"
               id x.W.resp !max_inv);
      if x.W.inv > !max_inv then max_inv := x.W.inv
    end;
    incr i
  done;
  !r

let scan_rt_conflicts t =
  let max_reader_inv : (W.key, int) Hashtbl.t = Hashtbl.create 1024 in
  let i = ref 0 in
  let r = ref (Ok ()) in
  while !r = Ok () && !i < Ivec.length t.ord do
    let id = Ivec.get t.ord !i in
    let x = t.txns.(id) in
    List.iter
      (fun (k, _) ->
        match Hashtbl.find_opt max_reader_inv k with
        | Some m when x.W.resp < m ->
          if !r = Ok () then
            r :=
              Error
                (Fmt.str
                   "real-time: writer %d of %s (resp=%d) serialized after a \
                    reader invoked at %d"
                   id k x.W.resp m)
        | Some _ | None -> ())
      x.W.writes;
    List.iter
      (fun (k, _) ->
        match Hashtbl.find_opt max_reader_inv k with
        | Some m when m >= x.W.inv -> ()
        | Some _ | None -> Hashtbl.replace max_reader_inv k x.W.inv)
      x.W.reads;
    incr i
  done;
  !r

let scan_rt_all t =
  let max_inv = ref min_int in
  let i = ref 0 in
  let r = ref (Ok ()) in
  while !r = Ok () && !i < Ivec.length t.ord do
    let id = Ivec.get t.ord !i in
    let x = t.txns.(id) in
    if x.W.resp < !max_inv then
      r :=
        Error
          (Fmt.str
             "real-time: txn %d (resp=%d) serialized after a txn invoked at %d"
             id x.W.resp !max_inv);
    if x.W.inv > !max_inv then max_inv := x.W.inv;
    incr i
  done;
  !r

let finish_scans t =
  match t.mode with
  | `Sequential -> Ok ()
  | `Rss -> (
    match scan_rt_mutators t with Error _ as e -> e | Ok () -> scan_rt_conflicts t)
  | `Strict -> scan_rt_all t

(* {2 Ambiguous-suffix fallback}

   When the claimed order diverges so far from arrival order that the
   incremental structure blew its work budget, the verified prefix and the
   buffered suffix are recombined as (prefix claimed order) ++ (any legal
   suffix order found by the bounded search). The composition is sound to
   {e confirm} because record streams are response-ordered: every suffix
   transaction responded after every prefix response, so no real-time or
   session edge can point from the suffix back into the prefix, and a
   synthetic initial transaction seeds the search with the prefix's final
   store. A suffix the search rejects is reported [Unknown], not [Fail] —
   serializations interleaving suffix transactions amid the prefix were
   never explored. *)

let prefix_store t =
  Hashtbl.fold
    (fun key writers acc ->
      if Ivec.length writers = 0 then acc
      else
        let last = Ivec.get writers (Ivec.length writers - 1) in
        (key, written_value t last key) :: acc)
    t.kw []

let fallback_model : W.mode -> Check_txn.model = function
  | `Strict -> Check_txn.Strict_serializable
  | `Rss -> Check_txn.Rss
  | `Sequential -> Check_txn.Process_ordered

let max_fallback_txns = 4096

let check_suffix t =
  let suffix = List.rev t.pending in
  if not t.arrival_monotone then
    Unknown
      "work budget exhausted and arrival order is not response-ordered; the \
       suffix cannot be soundly recombined"
  else if t.n_pending > max_fallback_txns then
    Unknown
      (Fmt.str
         "work budget exhausted with %d transactions still unchecked (suffix \
          search capped at %d)"
         t.n_pending max_fallback_txns)
  else begin
    let store = prefix_store t in
    let min_inv =
      List.fold_left (fun acc (x : W.txn) -> min acc x.W.inv) max_int suffix
    in
    let init =
      if store = [] then []
      else
        [
          Txn_history.rw ~id:0 ~proc:(-1) ~writes:store ~inv:(min_inv - 2)
            ~resp:(min_inv - 1) ();
        ]
    in
    let base = List.length init in
    let txns =
      init
      @ List.mapi
          (fun j (x : W.txn) ->
            {
              Txn_history.id = base + j;
              proc = x.W.proc;
              reads = x.W.reads;
              writes = x.W.writes;
              inv = x.W.inv;
              resp = (if x.W.resp = max_int then None else Some x.W.resp);
            })
          suffix
    in
    match Txn_history.make txns with
    | exception Invalid_argument m ->
      Unknown (Fmt.str "suffix fallback: malformed suffix history (%s)" m)
    | h -> (
      match
        Check_txn.check ~max_states:t.fallback_states h (fallback_model t.mode)
      with
      | Check_txn.Sat _ -> Pass
      | Check_txn.Unsat ->
        Unknown
          "suffix fallback: no serialization appending the suffix after the \
           prefix exists (interleavings unexplored)"
      | Check_txn.Unknown -> Unknown "suffix fallback: search budget exhausted")
  end

let result t =
  match t.state with
  | Failed m -> Fail m
  | Checking -> (
    match settle_deferred t with
    | `Fail m | `Missing m -> Fail m
    | `Ok -> (
      match finish_scans t with Ok () -> Pass | Error m -> Fail m))
  | Overflowed -> (
    (* The inserted prefix is still held to the exact scans; only the
       buffered suffix needs the bounded search. *)
    match settle_deferred t with
    | `Fail m -> Fail m
    | `Missing m ->
      Unknown (m ^ " (its writer may be in the unchecked suffix)")
    | `Ok -> (
      match finish_scans t with Error m -> Fail m | Ok () -> check_suffix t))

let check ?work_budget ?fallback_states ~mode txns =
  let t = create ?work_budget ?fallback_states ~mode () in
  Array.iter (fun x -> add t x) txns;
  result t
