type key = string
type value = int

type txn = {
  id : int;
  proc : int;
  reads : (key * value option) list;
  writes : (key * value) list;
  inv : int;
  resp : int option;
}

type t = { txns : txn array; msg_edges : (int * int) list }

let ro ~id ~proc ~reads ~inv ?resp () = { id; proc; reads; writes = []; inv; resp }

let rw ~id ~proc ?(reads = []) ~writes ~inv ?resp () =
  { id; proc; reads; writes; inv; resp }

let n_txns t = Array.length t.txns

let txn t i = t.txns.(i)

let is_complete x = x.resp <> None

let is_mutator x = x.writes <> []

let conflicts w r =
  List.exists (fun (k, _) -> List.mem_assoc k r.reads) w.writes

let validate t =
  let n = Array.length t.txns in
  let exception Bad of string in
  try
    let written = Hashtbl.create 64 in
    Array.iter
      (fun x ->
        List.iter
          (fun (k, v) ->
            if Hashtbl.mem written (k, v) then
              raise (Bad (Fmt.str "duplicate write of %d to %s" v k));
            Hashtbl.add written (k, v) x.id)
          x.writes)
      t.txns;
    let by_proc = Hashtbl.create 8 in
    Array.iter
      (fun x ->
        let prev = try Hashtbl.find by_proc x.proc with Not_found -> [] in
        Hashtbl.replace by_proc x.proc (x :: prev))
      t.txns;
    Hashtbl.iter
      (fun proc txns ->
        let txns = List.sort (fun a b -> compare a.inv b.inv) txns in
        let rec check = function
          | a :: (b :: _ as rest) ->
            (match a.resp with
            | None ->
              raise
                (Bad (Fmt.str "process %d continues after incomplete txn %d" proc a.id))
            | Some r ->
              if r > b.inv then
                raise (Bad (Fmt.str "process %d: txn %d overlaps %d" proc a.id b.id)));
            check rest
          | [ _ ] | [] -> ()
        in
        check txns)
      by_proc;
    List.iter
      (fun (a, b) ->
        if a < 0 || a >= n || b < 0 || b >= n then
          raise (Bad (Fmt.str "msg edge (%d,%d) out of range" a b));
        match t.txns.(a).resp with
        | None -> raise (Bad (Fmt.str "msg edge from incomplete txn %d" a))
        | Some r ->
          if r > t.txns.(b).inv then
            raise (Bad (Fmt.str "msg edge (%d,%d) violates time" a b)))
      t.msg_edges;
    Ok ()
  with Bad m -> Error m

let make ?(msg_edges = []) txns =
  match txns with
  | [] -> { txns = [||]; msg_edges }
  | first :: _ ->
    let n = List.length txns in
    let arr = Array.make n first in
    let ids = Hashtbl.create n in
    List.iter
      (fun x ->
        if x.id < 0 || x.id >= n then
          invalid_arg "Txn_history.make: ids must be 0..n-1";
        if Hashtbl.mem ids x.id then invalid_arg "Txn_history.make: duplicate id";
        Hashtbl.add ids x.id ();
        arr.(x.id) <- x)
      txns;
    let t = { txns = arr; msg_edges } in
    (match validate t with
    | Ok () -> t
    | Error m -> invalid_arg ("Txn_history.make: " ^ m))

let of_history (h : History.t) =
  let txns =
    Array.to_list h.History.ops
    |> List.map (fun (o : History.op) ->
           match o.History.kind with
           | History.Read v ->
             ro ~id:o.id ~proc:o.proc ~reads:[ (o.key, v) ] ~inv:o.inv
               ?resp:o.resp ()
           | History.Write v ->
             rw ~id:o.id ~proc:o.proc ~writes:[ (o.key, v) ] ~inv:o.inv
               ?resp:o.resp ()
           | History.Rmw (obs, res) ->
             rw ~id:o.id ~proc:o.proc ~reads:[ (o.key, obs) ]
               ~writes:[ (o.key, res) ] ~inv:o.inv ?resp:o.resp ())
  in
  make ~msg_edges:h.History.msg_edges txns

let pp_txn ppf x =
  let pp_read ppf (k, v) =
    match v with
    | None -> Fmt.pf ppf "%s->nil" k
    | Some v -> Fmt.pf ppf "%s->%d" k v
  in
  let pp_write ppf (k, v) = Fmt.pf ppf "%s:=%d" k v in
  Fmt.pf ppf "#%d p%d R{%a} W{%a} @[%d,%s]" x.id x.proc
    Fmt.(list ~sep:comma pp_read)
    x.reads
    Fmt.(list ~sep:comma pp_write)
    x.writes x.inv
    (match x.resp with None -> "?" | Some r -> string_of_int r)
