(** Search-based consistency checkers for transactional histories.

    A history satisfies a model iff there is a total order of its
    transactions that (a) is legal for a multi-key key-value store — every
    read returns the latest preceding write, or nothing — and (b) contains
    the model's mandatory order edges. The checkers enumerate candidate
    orders with memoized DFS, so they are exact but meant for small histories
    (tests, examples, paper figures — tens of transactions). Large simulated
    runs use {!Witness} instead.

    Models implemented (§3.4 and Appendix A):
    - {!Strict_serializable} — real-time order between all pairs.
    - {!Process_ordered} — each process's order only (PO serializability /
      sequential consistency for registers).
    - {!Rss} — causal order (process ∪ message ∪ reads-from, transitive)
      plus the regular real-time constraint: a completed read-write
      transaction precedes every conflicting read-only transaction and every
      read-write transaction that follows it in real time.
    - {!Regular_vv} — Viotti-Vukolić regularity: only the regular real-time
      constraint.
    - {!Crdb} — process order plus real-time order between conflicting pairs.
    - {!Osc_u} — process order plus real-time edges {e into} writes
      (operations preceding a write are ordered before it). *)

type model =
  | Strict_serializable
  | Process_ordered
  | Rss
  | Regular_vv
  | Crdb
  | Osc_u

val all_models : model list
val model_name : model -> string

type result =
  | Sat of int list  (** a witness order (txn ids) *)
  | Unsat
  | Unknown  (** search budget exhausted *)

val check : ?max_states:int -> Txn_history.t -> model -> result
(** [max_states] bounds the DFS (default 2_000_000 visited states). *)

val satisfies : ?max_states:int -> Txn_history.t -> model -> bool option
(** [Sat _ -> Some true], [Unsat -> Some false], [Unknown -> None] (search
    budget exhausted — never a wrong verdict). *)

val causal : Txn_history.t -> Causal.t
(** The potential-causality relation of the history (over all txns,
    including ones the checker would drop). *)

val constraint_edges : Txn_history.t -> model -> (int * int) list
(** The mandatory order edges a model imposes, for inspection/testing. *)
