(** Reachability (transitive closure) over small DAGs of operation ids.

    Used to materialize the paper's potential-causality relation (§3.3):
    process order ∪ message passing ∪ reads-from, closed transitively. *)

type t

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] closes [edges] transitively over nodes [0..n-1].
    Raises [Invalid_argument] if the edges contain a cycle (causality is an
    irreflexive partial order). *)

val precedes : t -> int -> int -> bool
(** [precedes t a b] — does [a] causally precede [b]? *)

val n : t -> int

val edges : t -> (int * int) list
(** All pairs in the closure. *)

val reduction_edges : t -> (int * int) list
(** A (not necessarily minimal) set of edges whose closure equals [t] —
    the direct edges supplied at construction, deduplicated. *)
