(** Multi-writer regular registers, after Shao, Pierce & Welch (Appendix A).

    MWR-Weak is the base of their lattice: {e each read individually} can be
    serialized among all writes, respecting the real-time order between the
    read and the writes (and among writes), such that it returns the value of
    the immediately preceding write to its key — different reads may assume
    different serializations of concurrent writes, so no global total order
    is implied. This is exactly why Fig. 15's execution is MWR-sat but
    RSC-unsat: each process's reads pick their own write order.

    The check is polynomial (per read, a forced-interleaving test), unlike
    the search checkers. The stronger variants (MWR-WO, MWR-RF, MWR-NI)
    constrain {e pairs} of serializations and are not implemented; see
    DESIGN.md. *)

val check_weak : History.t -> (unit, string) result
(** [Ok ()] iff every complete read (and rmw observation) admits such a
    serialization: the write it reads from is not forced to be overwritten
    before the read (no same-key write real-time-between them), reads-from
    never points real-time-backwards, and nil reads have no same-key write
    wholly before them. Incomplete operations impose nothing. *)

val satisfies_weak : History.t -> bool
