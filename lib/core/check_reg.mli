(** Consistency checkers for register (non-transactional) histories.

    Thin wrapper over {!Check_txn}: a read is a one-key read-only
    transaction, a write a blind one-key read-write transaction, an rmw a
    one-key transaction that reads and writes. Under this embedding the
    transactional models coincide with their register counterparts:
    strict serializability ↔ linearizability, PO serializability ↔
    sequential consistency, RSS ↔ RSC. *)

type model =
  | Linearizable
  | Sequential
  | Rsc
  | Regular_vv
  | Osc_u

val all_models : model list
val model_name : model -> string

val to_txn_model : model -> Check_txn.model

val check : ?max_states:int -> History.t -> model -> Check_txn.result

val satisfies : ?max_states:int -> History.t -> model -> bool option
(** [None] when the search budget is exhausted before a verdict. *)

val causal : History.t -> Causal.t
