(** Incremental (online) witness verification.

    Same semantics as {!Witness.check} — legality, session order, and the
    mode's real-time constraint over the serialization order claimed by the
    system's timestamps — but transactions are consumed one at a time as the
    harness records them. Cost is near-linear for histories whose claimed
    order tracks arrival order (which simulator record streams do); a
    pathological history exhausts the work budget and degrades to an
    explicit [Unknown] via a bounded {!Check_txn} search over the ambiguous
    suffix, never to quadratic work and never to a wrong verdict.

    Precondition: written values are unique per key (as everywhere reads-from
    is derived in this repo). *)

type verdict =
  | Pass  (** the claimed order is a valid witness for the mode *)
  | Fail of string  (** a definitive violation, with explanation *)
  | Unknown of string
      (** budgets exhausted before a verdict; never wrong, just unresolved *)

type t

val create : ?work_budget:int -> ?fallback_states:int -> mode:Witness.mode -> unit -> t
(** [create ~mode ()] starts an empty checker. [work_budget] bounds the total
    insertion displacement (default unlimited); once exceeded, remaining
    transactions are buffered and settled by a bounded search with at most
    [fallback_states] states (default 500k). *)

val add : t -> Witness.txn -> unit
(** Feed the next recorded transaction, in arrival (response) order. Cheap:
    amortised O(log n) plus displacement for out-of-order serialization. *)

val result : t -> verdict
(** Settle deferred read obligations, run the exact real-time scans, and — if
    the work budget was exhausted — attempt the suffix fallback. Idempotent
    in effect but intended to be called once, after the last [add]. *)

val n_added : t -> int
(** Transactions fed so far (including any buffered after overflow). *)

val work : t -> int
(** Total insertion displacement performed — the work meter. *)

val max_displacement : t -> int
(** Largest single-insert displacement seen. *)

val check :
  ?work_budget:int ->
  ?fallback_states:int ->
  mode:Witness.mode ->
  Witness.txn array ->
  verdict
(** One-shot convenience: feed the whole array in order, then {!result}. *)
