open History

(* Real-time: a completes before b is invoked. *)
let rt_before a b = match a.resp with None -> false | Some r -> r < b.inv

(* Feasibility of one read observing [value] (possibly None): among the
   writes to its key, is there a serialization (consistent with real time)
   placing its writer last before it?
   - value = Some v from writer w: infeasible iff the read wholly precedes w,
     or some same-key write is real-time-forced strictly between w and the
     read.
   - value = None: infeasible iff some same-key write wholly precedes the
     read. *)
let read_feasible ~key_writes reader value =
  match value with
  | None ->
    if List.exists (fun w -> rt_before w reader) key_writes then
      Error
        (Fmt.str "op %d read nil but a write to %s completed before it" reader.id
           reader.key)
    else Ok ()
  | Some v -> (
    match List.find_opt (fun w -> written_value w = Some v) key_writes with
    | None -> Error (Fmt.str "op %d read unwritten value %d" reader.id v)
    | Some w ->
      if rt_before reader w then
        Error (Fmt.str "op %d read from a write invoked after it returned" reader.id)
      else if
        List.exists
          (fun w' -> w'.id <> w.id && rt_before w w' && rt_before w' reader)
          key_writes
      then
        Error
          (Fmt.str
             "op %d read a value overwritten before it started (key %s)"
             reader.id reader.key)
      else Ok ())

let check_weak (h : History.t) =
  (* Writes per key (rmws both read and write). *)
  let writes_of_key = Hashtbl.create 16 in
  Array.iter
    (fun o ->
      if is_mutator o then
        Hashtbl.replace writes_of_key o.key
          (o :: (try Hashtbl.find writes_of_key o.key with Not_found -> [])))
    h.ops;
  let key_writes key = try Hashtbl.find writes_of_key key with Not_found -> [] in
  Array.fold_left
    (fun acc o ->
      match acc with
      | Error _ -> acc
      | Ok () ->
        if not (is_complete o) then Ok ()
        else (
          match observed_value o with
          | None -> Ok ()
          | Some value ->
            let others = List.filter (fun w -> w.id <> o.id) (key_writes o.key) in
            read_feasible ~key_writes:others o value))
    (Ok ()) h.ops

let satisfies_weak h = match check_weak h with Ok () -> true | Error _ -> false
