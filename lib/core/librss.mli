(** The libRSS composition meta-library (§4.1, Fig. 3, Appendix C.4).

    A set of individually-RSS services only guarantees RSS globally if a
    process issues a {e real-time fence} at the service it last used before
    interacting with a different one. libRSS automates this: each RSS
    service's client library registers a fence callback, and notifies the
    meta-library before starting a transaction; libRSS invokes the previous
    service's fence exactly when the process switches services.

    Fences may take time (Spanner-RSS's fence waits out a TrueTime window),
    so the interface is continuation-passing: callbacks complete
    asynchronously on the simulated clock.

    For processes that also communicate out of band (§4.2), {!capture} /
    {!absorb} implement the context-propagation metadata: the name of the
    last service touched travels with the message, so the receiver fences
    correctly before switching services. *)

type t

type fence = (unit -> unit) -> unit
(** A fence takes a completion continuation. *)

val create : unit -> t
(** One instance per application process (client-library registry). *)

val register_service : t -> name:string -> fence:fence -> unit
(** Raises [Invalid_argument] on duplicate names. *)

val unregister_service : t -> name:string -> unit

val is_registered : t -> name:string -> bool

val start_transaction : t -> name:string -> (unit -> unit) -> unit
(** [start_transaction t ~name k] runs the previous service's fence if the
    process is switching services, then continues with [k]. Raises
    [Invalid_argument] if [name] is not registered. *)

val last_service : t -> string option

val fences_issued : t -> int
(** How many fences this registry has invoked (overhead accounting). *)

(** {2 Context propagation (§4.2)} *)

type context

val capture : t -> context
(** Snapshot to attach to an outgoing message. *)

val absorb : t -> context -> unit
(** Merge an incoming message's context: the receiver behaves as if it had
    last touched the sender's last service, so the next
    {!start_transaction} fences if needed. *)

val context_service : context -> string option
