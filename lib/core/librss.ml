type fence = (unit -> unit) -> unit

type t = {
  services : (string, fence) Hashtbl.t;
  mutable last : string option;
  mutable n_fences : int;
}

type context = { last_service : string option }

let create () = { services = Hashtbl.create 8; last = None; n_fences = 0 }

let register_service t ~name ~fence =
  if Hashtbl.mem t.services name then
    invalid_arg (Fmt.str "Librss.register_service: %s already registered" name);
  Hashtbl.replace t.services name fence

let unregister_service t ~name =
  Hashtbl.remove t.services name;
  if t.last = Some name then t.last <- None

let is_registered t ~name = Hashtbl.mem t.services name

let start_transaction t ~name k =
  if not (Hashtbl.mem t.services name) then
    invalid_arg (Fmt.str "Librss.start_transaction: unknown service %s" name);
  match t.last with
  | Some prev when prev <> name && Hashtbl.mem t.services prev ->
    let fence = Hashtbl.find t.services prev in
    t.n_fences <- t.n_fences + 1;
    t.last <- Some name;
    fence k
  | Some _ | None ->
    t.last <- Some name;
    k ()

let last_service t = t.last

let fences_issued t = t.n_fences

let capture t = { last_service = t.last }

let absorb t ctx =
  (* The receiver now carries the sender's causal baggage: if the sender
     last touched a different service, the receiver must fence there before
     using any other service. We conservatively adopt the sender's last
     service when it differs from ours — the next start_transaction on any
     other service then triggers that fence. If both sides have touched
     different services, fencing at either is required before a third; we
     fence at the incoming one (the local one was already fenced when the
     process last switched, or will be on its own next switch). *)
  match ctx.last_service with
  | None -> ()
  | Some s -> if t.last <> Some s then t.last <- Some s

let context_service ctx = ctx.last_service
